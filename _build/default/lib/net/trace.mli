(** Timestamped event log of a protocol run — the audit trail the
    experiment harness and the examples print. *)

type entry = { at : float; label : string }

type t

val create : Simtime.t -> t
val record : t -> string -> unit
val recordf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
val entries : t -> entry list
(** Chronological order. *)

val find : t -> substring:string -> entry list
val pp : Format.formatter -> t -> unit
