(** A Dolev-Yao network: everything either party sends lands in the
    adversary's hands; nothing reaches a receiver unless someone calls
    {!deliver}. A benign network is the adversary that forwards promptly;
    the paper's `Adv_ext` drops, delays, reorders, replays (the full
    transcript stays available forever) and injects its own messages.

    ['msg] is the wire message type (defined in the attestation core). *)

type side = Verifier_side | Prover_side

type 'msg sent = { sent_at : float; src : side; payload : 'msg }

type 'msg t

val create : Simtime.t -> Trace.t -> 'msg t

val time : 'msg t -> Simtime.t
val trace : 'msg t -> Trace.t

val on_receive : 'msg t -> side -> ('msg -> unit) -> unit
(** Install the receiver callback for a side (replaces any previous). *)

val send : 'msg t -> src:side -> 'msg -> unit
(** Put a message on the wire: recorded in the transcript, given to
    nobody. Delivery is a separate, adversary-controlled step. *)

val transcript : 'msg t -> 'msg sent list
(** Everything ever sent, in order — the eavesdropper's notebook. *)

val undelivered : 'msg t -> 'msg sent list
(** Sent messages not yet delivered (nor explicitly dropped). *)

val deliver : 'msg t -> dst:side -> 'msg -> unit
(** Hand a message (genuine, replayed or forged) to a receiver. No-op
    with a trace record if the side has no receiver installed. *)

val forward_next : 'msg t -> dst:side -> bool
(** Convenience for benign runs: deliver the oldest undelivered message
    that was sent by the opposite side; [false] if none pending. *)

val drop_next : 'msg t -> src:side -> bool
(** Discard the oldest undelivered message from [src]. *)

val pp_side : Format.formatter -> side -> unit
