type t = { hops : int; per_hop_ms : float; jitter_per_hop_ms : float }

let make ~hops ~per_hop_ms ~jitter_per_hop_ms =
  if hops <= 0 then invalid_arg "Path.make: hops must be positive";
  if per_hop_ms < 0.0 || jitter_per_hop_ms < 0.0 then
    invalid_arg "Path.make: delays must be non-negative";
  { hops; per_hop_ms; jitter_per_hop_ms }

let direct = make ~hops:1 ~per_hop_ms:0.5 ~jitter_per_hop_ms:0.1
let lan = make ~hops:3 ~per_hop_ms:1.0 ~jitter_per_hop_ms:2.0
let internet = make ~hops:12 ~per_hop_ms:5.0 ~jitter_per_hop_ms:15.0

let min_rtt_ms t = 2.0 *. float_of_int t.hops *. t.per_hop_ms
let max_rtt_ms t = min_rtt_ms t +. (2.0 *. float_of_int t.hops *. t.jitter_per_hop_ms)
let jitter_span_ms t = max_rtt_ms t -. min_rtt_ms t

let sample_rtt_ms t prng =
  let jitter = ref 0.0 in
  for _ = 1 to 2 * t.hops do
    jitter := !jitter +. Ra_crypto.Prng.float prng t.jitter_per_hop_ms
  done;
  min_rtt_ms t +. !jitter
