lib/net/path.ml: Ra_crypto
