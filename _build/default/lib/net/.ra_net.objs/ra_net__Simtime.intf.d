lib/net/simtime.mli:
