lib/net/channel.ml: Format List Simtime Trace
