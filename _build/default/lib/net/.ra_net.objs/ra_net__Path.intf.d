lib/net/path.mli: Ra_crypto
