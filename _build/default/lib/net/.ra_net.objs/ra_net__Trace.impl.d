lib/net/trace.ml: Format List Simtime String
