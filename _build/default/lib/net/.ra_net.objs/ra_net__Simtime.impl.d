lib/net/simtime.ml:
