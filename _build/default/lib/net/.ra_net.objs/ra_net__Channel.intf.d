lib/net/channel.mli: Format Simtime Trace
