lib/net/trace.mli: Format Simtime
