type entry = { at : float; label : string }

type t = { time : Simtime.t; mutable entries : entry list (* newest first *) }

let create time = { time; entries = [] }

let record t label = t.entries <- { at = Simtime.now t.time; label } :: t.entries

let recordf t fmt = Format.kasprintf (record t) fmt

let entries t = List.rev t.entries

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  nl = 0 || loop 0

let find t ~substring =
  List.filter (fun e -> contains_substring ~needle:substring e.label) (entries t)

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "[%10.4f] %s@." e.at e.label) (entries t)
