(** A multi-hop network path model: per-hop base latency plus uniformly
    distributed jitter. Software-based attestation (§2) assumes "the
    verifier communicates directly to the prover, with no intermediate
    hops" — this module quantifies what each additional hop does to the
    round-trip timing uncertainty that such schemes must absorb. *)

type t = {
  hops : int;
  per_hop_ms : float; (* deterministic forwarding cost per hop *)
  jitter_per_hop_ms : float; (* max extra delay per hop, uniform *)
}

val direct : t
(** One hop, 0.5 ms, ±0.1 ms jitter — the bus/direct-link setting where
    timing-based attestation is viable. *)

val lan : t
(** 3 hops, 1 ms each, up to 2 ms jitter per hop. *)

val internet : t
(** 12 hops, 5 ms each, up to 15 ms jitter per hop. *)

val make : hops:int -> per_hop_ms:float -> jitter_per_hop_ms:float -> t
(** @raise Invalid_argument on non-positive hops or negative delays. *)

val min_rtt_ms : t -> float
(** 2 × hops × per-hop (there and back, no jitter). *)

val max_rtt_ms : t -> float

val jitter_span_ms : t -> float
(** [max_rtt - min_rtt]: the uncertainty a timing threshold must absorb. *)

val sample_rtt_ms : t -> Ra_crypto.Prng.t -> float
(** One random round trip. *)
