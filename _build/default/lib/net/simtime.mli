(** Simulated wall-clock time shared by the verifier, the network and the
    experiment harness. Monotone, in seconds. The prover's own notion of
    time comes from its (attackable) on-device clock, *not* from here —
    keeping the two separate is exactly what makes the paper's clock
    attacks expressible. *)

type t

val create : ?start:float -> unit -> t
val now : t -> float

val advance_by : t -> float -> unit
(** @raise Invalid_argument on negative delta. *)

val advance_to : t -> float -> unit
(** @raise Invalid_argument if the target is in the past. *)
