type side = Verifier_side | Prover_side

type 'msg sent = { sent_at : float; src : side; payload : 'msg }

type 'msg t = {
  time : Simtime.t;
  trace : Trace.t;
  mutable transcript : 'msg sent list; (* newest first *)
  mutable pending : 'msg sent list; (* newest first *)
  mutable rx_verifier : ('msg -> unit) option;
  mutable rx_prover : ('msg -> unit) option;
}

let pp_side fmt = function
  | Verifier_side -> Format.pp_print_string fmt "verifier"
  | Prover_side -> Format.pp_print_string fmt "prover"

let create time trace =
  { time; trace; transcript = []; pending = []; rx_verifier = None; rx_prover = None }

let time t = t.time
let trace t = t.trace

let on_receive t side f =
  match side with
  | Verifier_side -> t.rx_verifier <- Some f
  | Prover_side -> t.rx_prover <- Some f

let send t ~src payload =
  let entry = { sent_at = Simtime.now t.time; src; payload } in
  t.transcript <- entry :: t.transcript;
  t.pending <- entry :: t.pending;
  Trace.recordf t.trace "net: %a sent a message" pp_side src

let transcript t = List.rev t.transcript
let undelivered t = List.rev t.pending

let deliver t ~dst payload =
  let rx = match dst with Verifier_side -> t.rx_verifier | Prover_side -> t.rx_prover in
  match rx with
  | None -> Trace.recordf t.trace "net: delivery to %a lost (no receiver)" pp_side dst
  | Some f ->
    Trace.recordf t.trace "net: delivered to %a" pp_side dst;
    f payload

let take_oldest t ~src =
  match List.rev t.pending with
  | [] -> None
  | oldest_first ->
    let rec split acc = function
      | [] -> None
      | e :: rest when e.src = src -> Some (e, List.rev_append acc rest)
      | e :: rest -> split (e :: acc) rest
    in
    (match split [] oldest_first with
    | None -> None
    | Some (e, remaining_oldest_first) ->
      t.pending <- List.rev remaining_oldest_first;
      Some e)

let forward_next t ~dst =
  let src = match dst with Verifier_side -> Prover_side | Prover_side -> Verifier_side in
  match take_oldest t ~src with
  | None -> false
  | Some e ->
    deliver t ~dst e.payload;
    true

let drop_next t ~src =
  match take_oldest t ~src with
  | None -> false
  | Some _ ->
    Trace.recordf t.trace "net: adversary dropped a message from %a" pp_side src;
    true
