(** HMAC (RFC 2104) over a pluggable hash.

    §4.1 of the paper authenticates attestation requests with SHA1-HMAC;
    the attestation *response* is likewise an HMAC over prover memory. *)

type hash = {
  digest : string -> string;
  digest_size : int;
  block_size : int;
}
(** First-class hash description so HMAC is generic over SHA-1/SHA-256. *)

val sha1 : hash
val sha256 : hash

val mac : hash -> key:string -> string -> string
(** [mac h ~key msg] is HMAC_h(key, msg). Keys longer than the hash block
    are first hashed, as RFC 2104 requires. *)

val verify : hash -> key:string -> msg:string -> tag:string -> bool
(** Constant-time tag comparison. *)
