(* Jacobian-coordinate group law for y^2 = x^3 + ax + b. Formulae follow
   the standard dbl-2007-bl / add-2007-bl shapes specialized to the
   general-a case (secp160r1 has a = p-3 but we do not exploit it). *)

module B = Bignum

type curve = {
  field : Fp.field;
  a : B.t;
  b : B.t;
  g : B.t * B.t;
  n : B.t;
  key_bytes : int;
}

type point = Infinity | Jacobian of B.t * B.t * B.t

let secp160r1 =
  let p = B.of_hex "ffffffffffffffffffffffffffffffff7fffffff" in
  {
    field = Fp.make p;
    a = B.of_hex "ffffffffffffffffffffffffffffffff7ffffffc";
    b = B.of_hex "1c97befc54bd7a8b65acf89f81d4d4adc565fa45";
    g =
      ( B.of_hex "4a96b5688ef573284664698968c38bb913cbfc82",
        B.of_hex "23a628553168947d59dcc912042351377ac5fb32" );
    n = B.of_hex "0100000000000000000001f4c8f927aed3ca752257";
    key_bytes = 21;
  }

let infinity = Infinity
let is_infinity = function Infinity -> true | Jacobian _ -> false

let on_curve c (x, y) =
  let f = c.field in
  let lhs = Fp.sqr f y in
  let rhs = Fp.add f (Fp.add f (Fp.mul f (Fp.sqr f x) x) (Fp.mul f c.a x)) c.b in
  B.equal lhs rhs

let of_affine c (x, y) =
  if not (on_curve c (x, y)) then invalid_arg "Ec.of_affine: point not on curve";
  Jacobian (x, y, B.one)

let base c = of_affine c c.g

let to_affine c = function
  | Infinity -> None
  | Jacobian (x, y, z) ->
    let f = c.field in
    let zi = Fp.inv f z in
    let zi2 = Fp.sqr f zi in
    Some (Fp.mul f x zi2, Fp.mul f y (Fp.mul f zi2 zi))

let neg c = function
  | Infinity -> Infinity
  | Jacobian (x, y, z) -> Jacobian (x, Fp.neg c.field y, z)

let double c = function
  | Infinity -> Infinity
  | Jacobian (x, y, z) as pt ->
    let f = c.field in
    if B.is_zero y then Infinity
    else begin
      ignore pt;
      let ysq = Fp.sqr f y in
      let s = Fp.mul f (B.of_int 4) (Fp.mul f x ysq) in
      let z4 = Fp.sqr f (Fp.sqr f z) in
      let m = Fp.add f (Fp.mul f (B.of_int 3) (Fp.sqr f x)) (Fp.mul f c.a z4) in
      let x' = Fp.sub f (Fp.sqr f m) (Fp.mul f B.two s) in
      let y' = Fp.sub f (Fp.mul f m (Fp.sub f s x')) (Fp.mul f (B.of_int 8) (Fp.sqr f ysq)) in
      let z' = Fp.mul f B.two (Fp.mul f y z) in
      Jacobian (x', y', z')
    end

let add c p q =
  match (p, q) with
  | Infinity, q -> q
  | p, Infinity -> p
  | Jacobian (x1, y1, z1), Jacobian (x2, y2, z2) ->
    let f = c.field in
    let z1z1 = Fp.sqr f z1 and z2z2 = Fp.sqr f z2 in
    let u1 = Fp.mul f x1 z2z2 and u2 = Fp.mul f x2 z1z1 in
    let s1 = Fp.mul f y1 (Fp.mul f z2 z2z2) in
    let s2 = Fp.mul f y2 (Fp.mul f z1 z1z1) in
    if B.equal u1 u2 then
      if B.equal s1 s2 then double c p else Infinity
    else begin
      let h = Fp.sub f u2 u1 in
      let hh = Fp.sqr f h in
      let hhh = Fp.mul f h hh in
      let r = Fp.sub f s2 s1 in
      let v = Fp.mul f u1 hh in
      let x3 = Fp.sub f (Fp.sub f (Fp.sqr f r) hhh) (Fp.mul f B.two v) in
      let y3 = Fp.sub f (Fp.mul f r (Fp.sub f v x3)) (Fp.mul f s1 hhh) in
      let z3 = Fp.mul f h (Fp.mul f z1 z2) in
      Jacobian (x3, y3, z3)
    end

let mul c k pt =
  let k = B.rem k c.n in
  let bits = B.bit_length k in
  let acc = ref Infinity in
  for i = bits - 1 downto 0 do
    acc := double c !acc;
    if B.test_bit k i then acc := add c !acc pt
  done;
  !acc

let equal c p q =
  match (to_affine c p, to_affine c q) with
  | None, None -> true
  | Some (x1, y1), Some (x2, y2) -> B.equal x1 x2 && B.equal y1 y2
  | None, Some _ | Some _, None -> false

let coord_bytes c = c.key_bytes - 1

let compress c pt =
  match to_affine c pt with
  | None -> invalid_arg "Ec.compress: point at infinity"
  | Some (x, y) ->
    let parity = if B.is_odd y then '\x03' else '\x02' in
    String.make 1 parity ^ B.to_bytes_be ~pad:(coord_bytes c) x

let decompress c s =
  if String.length s <> coord_bytes c + 1 then None
  else
    match s.[0] with
    | '\x02' | '\x03' ->
      let want_odd = s.[0] = '\x03' in
      let x = B.of_bytes_be (String.sub s 1 (coord_bytes c)) in
      let f = c.field in
      if B.compare x (Fp.modulus f) >= 0 then None
      else begin
        let rhs = Fp.add f (Fp.add f (Fp.mul f (Fp.sqr f x) x) (Fp.mul f c.a x)) c.b in
        match Fp.sqrt f rhs with
        | None -> None
        | Some y ->
          let y = if B.is_odd y = want_odd then y else Fp.neg f y in
          Some (of_affine c (x, y))
      end
    | _ -> None
