type hash = {
  digest : string -> string;
  digest_size : int;
  block_size : int;
}

let sha1 =
  { digest = Sha1.digest; digest_size = Sha1.digest_size; block_size = Sha1.block_size }

let sha256 =
  {
    digest = Sha256.digest;
    digest_size = Sha256.digest_size;
    block_size = Sha256.block_size;
  }

let normalize_key h key =
  let key = if String.length key > h.block_size then h.digest key else key in
  key ^ String.make (h.block_size - String.length key) '\x00'

let mac h ~key msg =
  let key = normalize_key h key in
  let ipad = Hexutil.xor key (String.make h.block_size '\x36') in
  let opad = Hexutil.xor key (String.make h.block_size '\x5c') in
  h.digest (opad ^ h.digest (ipad ^ msg))

let verify h ~key ~msg ~tag = Hexutil.equal_ct (mac h ~key msg) tag
