(* SHA-256 with the same streaming skeleton as {!Sha1}. *)

let digest_size = 32
let block_size = 64

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
     0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
     0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
     0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
     0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
     0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
     0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
     0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

type ctx = {
  state : int32 array;
  buf : Bytes.t;
  mutable buf_len : int;
  mutable total : int64;
}

let init () =
  {
    state =
      [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
         0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |];
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
  }

let rotr32 x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let shr32 x n = Int32.shift_right_logical x n
let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand

let compress state block off =
  let w = Array.make 64 0l in
  for t = 0 to 15 do
    let base = off + (4 * t) in
    let b i = Int32.of_int (Char.code (Bytes.get block (base + i))) in
    w.(t) <-
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor
           (Int32.shift_left (b 1) 16)
           (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  done;
  for t = 16 to 63 do
    let s0 = rotr32 w.(t - 15) 7 ^% rotr32 w.(t - 15) 18 ^% shr32 w.(t - 15) 3 in
    let s1 = rotr32 w.(t - 2) 17 ^% rotr32 w.(t - 2) 19 ^% shr32 w.(t - 2) 10 in
    w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
  done;
  let a = ref state.(0) and b = ref state.(1) and c = ref state.(2)
  and d = ref state.(3) and e = ref state.(4) and f = ref state.(5)
  and g = ref state.(6) and h = ref state.(7) in
  for t = 0 to 63 do
    let s1 = rotr32 !e 6 ^% rotr32 !e 11 ^% rotr32 !e 25 in
    let ch = (!e &% !f) ^% (Int32.lognot !e &% !g) in
    let temp1 = !h +% s1 +% ch +% k.(t) +% w.(t) in
    let s0 = rotr32 !a 2 ^% rotr32 !a 13 ^% rotr32 !a 22 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let temp2 = s0 +% maj in
    h := !g;
    g := !f;
    f := !e;
    e := !d +% temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +% temp2
  done;
  state.(0) <- state.(0) +% !a;
  state.(1) <- state.(1) +% !b;
  state.(2) <- state.(2) +% !c;
  state.(3) <- state.(3) +% !d;
  state.(4) <- state.(4) +% !e;
  state.(5) <- state.(5) +% !f;
  state.(6) <- state.(6) +% !g;
  state.(7) <- state.(7) +% !h

let feed t s =
  let len = String.length s in
  t.total <- Int64.add t.total (Int64.of_int len);
  let pos = ref 0 in
  if t.buf_len > 0 then begin
    let take = min (block_size - t.buf_len) len in
    Bytes.blit_string s 0 t.buf t.buf_len take;
    t.buf_len <- t.buf_len + take;
    pos := take;
    if t.buf_len = block_size then begin
      compress t.state t.buf 0;
      t.buf_len <- 0
    end
  end;
  while len - !pos >= block_size do
    Bytes.blit_string s !pos t.buf 0 block_size;
    compress t.state t.buf 0;
    pos := !pos + block_size
  done;
  let rest = len - !pos in
  if rest > 0 then begin
    Bytes.blit_string s !pos t.buf t.buf_len rest;
    t.buf_len <- t.buf_len + rest
  end

let finalize t =
  let bits = Int64.mul t.total 8L in
  Bytes.set t.buf t.buf_len '\x80';
  t.buf_len <- t.buf_len + 1;
  if t.buf_len > block_size - 8 then begin
    Bytes.fill t.buf t.buf_len (block_size - t.buf_len) '\x00';
    compress t.state t.buf 0;
    t.buf_len <- 0
  end;
  Bytes.fill t.buf t.buf_len (block_size - 8 - t.buf_len) '\x00';
  for i = 0 to 7 do
    Bytes.set t.buf
      (block_size - 1 - i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done;
  compress t.state t.buf 0;
  String.init digest_size (fun i ->
      let word = t.state.(i / 4) in
      let shift = 8 * (3 - (i mod 4)) in
      Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical word shift) 0xFFl)))

let digest s =
  let t = init () in
  feed t s;
  finalize t
