lib/crypto/drbg.mli:
