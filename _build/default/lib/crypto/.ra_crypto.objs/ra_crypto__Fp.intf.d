lib/crypto/fp.mli: Bignum
