lib/crypto/ecdsa.mli: Bignum Ec
