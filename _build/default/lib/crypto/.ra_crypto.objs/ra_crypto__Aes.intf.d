lib/crypto/aes.mli:
