lib/crypto/hexutil.ml: Bytes Char List String
