lib/crypto/ec.ml: Bignum Fp String
