lib/crypto/ecdsa.ml: Bignum Drbg Ec Fp Sha1 String
