lib/crypto/simon.mli:
