lib/crypto/block_mode.ml: Aes Buffer Char Hexutil List Simon Speck String
