lib/crypto/speck.mli:
