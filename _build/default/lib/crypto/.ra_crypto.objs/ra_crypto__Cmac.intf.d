lib/crypto/cmac.mli: Aes
