lib/crypto/hmac.ml: Hexutil Sha1 Sha256 String
