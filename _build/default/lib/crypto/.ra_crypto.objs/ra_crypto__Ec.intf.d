lib/crypto/ec.mli: Bignum Fp
