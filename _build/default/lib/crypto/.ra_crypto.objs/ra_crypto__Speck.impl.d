lib/crypto/speck.ml: Array Char String
