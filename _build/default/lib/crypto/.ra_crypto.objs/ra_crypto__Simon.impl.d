lib/crypto/simon.ml: Array Char String
