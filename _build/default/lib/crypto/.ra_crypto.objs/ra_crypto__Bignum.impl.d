lib/crypto/bignum.ml: Array Char Format Hexutil List Stdlib String
