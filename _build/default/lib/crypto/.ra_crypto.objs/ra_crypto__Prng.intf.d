lib/crypto/prng.mli:
