lib/crypto/hkdf.mli:
