lib/crypto/hexutil.mli:
