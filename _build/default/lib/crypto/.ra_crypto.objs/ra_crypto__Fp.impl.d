lib/crypto/fp.ml: Bignum
