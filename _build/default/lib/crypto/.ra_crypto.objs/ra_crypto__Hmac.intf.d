lib/crypto/hmac.mli:
