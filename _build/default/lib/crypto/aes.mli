(** AES-128 block cipher (FIPS 197), from scratch.

    Table 1 of the paper reports separate costs for key expansion,
    per-block encryption and per-block decryption, so key expansion is a
    distinct, reusable step here too. *)

type key
(** Expanded 128-bit key schedule (valid for both directions). *)

val block_size : int
(** 16 bytes. *)

val key_size : int
(** 16 bytes. *)

val expand : string -> key
(** [expand k] expands a 16-byte key.
    @raise Invalid_argument if [k] is not 16 bytes. *)

val encrypt_block : key -> string -> string
(** Encrypt one 16-byte block.
    @raise Invalid_argument on wrong block length. *)

val decrypt_block : key -> string -> string
(** Decrypt one 16-byte block.
    @raise Invalid_argument on wrong block length. *)
