(* Little-endian limbs of [limb_bits] bits, normalized so the top limb is
   non-zero; zero is the empty array. 26-bit limbs keep limb products
   (52 bits) plus carries well inside 63-bit native ints. *)

let limb_bits = 26
let limb_mask = (1 lsl limb_bits) - 1

type t = int array

let zero : t = [||]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec loop n acc = if n = 0 then acc else loop (n lsr limb_bits) ((n land limb_mask) :: acc) in
  normalize (Array.of_list (List.rev (loop n [])))

let one = of_int 1
let two = of_int 2
let is_zero a = Array.length a = 0

let to_int a =
  let bits = Array.length a * limb_bits in
  if bits > 62 && Array.length a > 0 then begin
    (* allow values that still fit although the limb count is large *)
    let v = ref 0 in
    Array.iteri
      (fun i limb ->
        let shift = i * limb_bits in
        if limb <> 0 && shift >= 62 then failwith "Bignum.to_int: overflow";
        if shift < 62 then begin
          let contribution = limb lsl shift in
          if contribution lsr shift <> limb then failwith "Bignum.to_int: overflow";
          v := !v + contribution;
          if !v < 0 then failwith "Bignum.to_int: overflow"
        end)
      a;
    !v
  end
  else Array.fold_right (fun limb acc -> (acc lsl limb_bits) lor limb) a 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec loop i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else loop (i - 1)
    in
    loop (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize out

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + limb_mask + 1;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let v = out.(i + j) + (a.(i) * b.(j)) + !carry in
        out.(i + j) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = out.(!k) + !carry in
        out.(!k) <- v land limb_mask;
        carry := v lsr limb_bits;
        incr k
      done
    done;
    normalize out
  end

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec msb v acc = if v = 0 then acc else msb (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + msb top 0
  end

let test_bit a i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let shift_left a n =
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / limb_bits and bits = n mod limb_bits in
    let la = Array.length a in
    let out = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      out.(i + limbs) <- out.(i + limbs) lor (v land limb_mask);
      out.(i + limbs + 1) <- out.(i + limbs + 1) lor (v lsr limb_bits)
    done;
    normalize out
  end

let shift_right a n =
  if n = 0 then a
  else begin
    let limbs = n / limb_bits and bits = n mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let out = Array.make (la - limbs) 0 in
      for i = 0 to la - limbs - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi =
          if bits > 0 && i + limbs + 1 < la then
            (a.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask
          else 0
        in
        out.(i) <- lo lor hi
      done;
      normalize out
    end
  end

(* Shift-and-subtract long division: adequate for the <=400-bit operands of
   secp160r1 ECDSA. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let shift = bit_length a - bit_length b in
    let q = ref zero and r = ref a in
    for i = shift downto 0 do
      let d = shift_left b i in
      if compare !r d >= 0 then begin
        r := sub !r d;
        q := add !q (shift_left one i)
      end
    done;
    (!q, !r)
  end

let rem a b = snd (divmod a b)
let is_even a = Array.length a = 0 || a.(0) land 1 = 0
let is_odd a = not (is_even a)

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be ?(pad = 0) a =
  let rec loop a acc =
    if is_zero a then acc
    else begin
      let byte = (if Array.length a > 0 then a.(0) else 0) land 0xff in
      loop (shift_right a 8) (Char.chr byte :: acc)
    end
  in
  let chars = loop a [] in
  let s = String.init (List.length chars) (List.nth chars) in
  if String.length s >= pad then s
  else String.make (pad - String.length s) '\x00' ^ s

let of_hex h =
  let h = if String.length h mod 2 = 1 then "0" ^ h else h in
  of_bytes_be (Hexutil.of_hex h)

let to_hex a =
  if is_zero a then "0"
  else begin
    let s = Hexutil.to_hex (to_bytes_be a) in
    (* trim a single leading zero nibble for canonical output *)
    if String.length s > 1 && s.[0] = '0' then String.sub s 1 (String.length s - 1)
    else s
  end

let pp fmt a = Format.fprintf fmt "0x%s" (to_hex a)
