(** SHA-1 (FIPS 180-4), implemented from scratch.

    The paper's Table 1 measures SHA1-HMAC on the prover, and §3.1 costs a
    SHA1-HMAC over the prover's whole writable memory; this module is the
    functional core of both. Streaming interface plus one-shot digest. *)

type ctx
(** Mutable hashing context. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb bytes; may be called repeatedly. *)

val finalize : ctx -> string
(** Complete the hash and return the 20-byte digest. The context must not
    be used afterwards. *)

val digest : string -> string
(** One-shot: [digest s = finalize (feed (init ()) s)]. *)

val digest_size : int
(** 20 bytes. *)

val block_size : int
(** 64 bytes — the size the per-block cost in Table 1 refers to. *)
