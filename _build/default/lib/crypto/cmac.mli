(** AES-CMAC (OMAC1, RFC 4493): the standardized fix of raw CBC-MAC for
    variable-length messages, using GF(2^128)-doubled subkeys instead of
    the length prefix {!Block_mode.cbc_mac} uses. Both are "CBC-based
    functions" in the sense of the paper's §3.1; this one interoperates
    with other implementations. *)

type key

val derive : Aes.key -> key
(** Derive the CMAC subkeys from an expanded AES-128 key. *)

val mac : key -> string -> string
(** 16-byte tag over an arbitrary-length message. *)

val verify : key -> msg:string -> tag:string -> bool
(** Constant-time comparison. *)
