module B = Bignum

type keypair = { secret : B.t; public : Ec.point }
type signature = { r : B.t; s : B.t }

(* Reduce a byte string into [1, n-1] by interpretation mod (n-1) + 1. *)
let scalar_of_bytes n bytes =
  B.add (B.rem (B.of_bytes_be bytes) (B.sub n B.one)) B.one

let fresh_scalar curve drbg =
  scalar_of_bytes curve.Ec.n (Drbg.generate drbg (curve.Ec.key_bytes + 8))

let public_of_secret curve secret = Ec.mul curve secret (Ec.base curve)

let generate_keypair curve ~seed =
  let drbg = Drbg.create ~personalization:"ecdsa-keygen" ~seed () in
  let secret = fresh_scalar curve drbg in
  { secret; public = public_of_secret curve secret }

(* Digest truncated/interpreted as an integer mod n (FIPS 186-4 §6.4,
   with the left-most-bits rule applied via shifting). *)
let hash_to_int curve msg =
  let digest = Sha1.digest msg in
  let z = B.of_bytes_be digest in
  let qbits = B.bit_length curve.Ec.n in
  let hbits = 8 * String.length digest in
  let z = if hbits > qbits then B.shift_right z (hbits - qbits) else z in
  B.rem z curve.Ec.n

let sign curve ~secret msg =
  let fn = Fp.make curve.Ec.n in
  let z = hash_to_int curve msg in
  (* deterministic nonce stream keyed by (secret, message digest) *)
  let drbg =
    Drbg.create ~personalization:"ecdsa-nonce"
      ~seed:(B.to_bytes_be ~pad:curve.Ec.key_bytes secret ^ Sha1.digest msg)
      ()
  in
  let rec attempt () =
    let k = fresh_scalar curve drbg in
    match Ec.to_affine curve (Ec.mul curve k (Ec.base curve)) with
    | None -> attempt ()
    | Some (x, _) ->
      let r = B.rem x curve.Ec.n in
      if B.is_zero r then attempt ()
      else begin
        let s = Fp.mul fn (Fp.inv fn k) (Fp.add fn z (Fp.mul fn r secret)) in
        if B.is_zero s then attempt () else { r; s }
      end
  in
  attempt ()

let valid_scalar curve v = (not (B.is_zero v)) && B.compare v curve.Ec.n < 0

let verify curve ~public ~msg { r; s } =
  if not (valid_scalar curve r && valid_scalar curve s) then false
  else if Ec.is_infinity public then false
  else begin
    let fn = Fp.make curve.Ec.n in
    let z = hash_to_int curve msg in
    let w = Fp.inv fn s in
    let u1 = Fp.mul fn z w and u2 = Fp.mul fn r w in
    let pt = Ec.add curve (Ec.mul curve u1 (Ec.base curve)) (Ec.mul curve u2 public) in
    match Ec.to_affine curve pt with
    | None -> false
    | Some (x, _) -> B.equal (B.rem x curve.Ec.n) r
  end

let signature_to_bytes curve { r; s } =
  B.to_bytes_be ~pad:curve.Ec.key_bytes r ^ B.to_bytes_be ~pad:curve.Ec.key_bytes s

let signature_of_bytes curve bytes =
  let w = curve.Ec.key_bytes in
  if String.length bytes <> 2 * w then None
  else
    Some
      {
        r = B.of_bytes_be (String.sub bytes 0 w);
        s = B.of_bytes_be (String.sub bytes w w);
      }
