type t = { mutable state : int64 }

let create seed = { state = seed }

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bytes t n =
  String.init n (fun _ -> Char.chr (Int64.to_int (Int64.logand (next_int64 t) 0xFFL)))

let split t = create (next_int64 t)
