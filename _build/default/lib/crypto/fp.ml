module B = Bignum

type field = { p : B.t; p_minus_2 : B.t }

let make p = { p; p_minus_2 = B.sub p B.two }
let modulus f = f.p
let reduce f a = B.rem a f.p

let add f a b =
  let s = B.add a b in
  if B.compare s f.p >= 0 then B.sub s f.p else s

let sub f a b = if B.compare a b >= 0 then B.sub a b else B.sub f.p (B.sub b a)
let neg f a = if B.is_zero a then a else B.sub f.p a
let mul f a b = B.rem (B.mul a b) f.p
let sqr f a = mul f a a

let pow f base e =
  (* left-to-right square and multiply *)
  let bits = B.bit_length e in
  let acc = ref B.one in
  let base = reduce f base in
  for i = bits - 1 downto 0 do
    acc := sqr f !acc;
    if B.test_bit e i then acc := mul f !acc base
  done;
  !acc

let inv f a =
  let a = reduce f a in
  if B.is_zero a then raise Division_by_zero;
  pow f a f.p_minus_2

let sqrt f a =
  if B.to_int (B.rem f.p (B.of_int 4)) <> 3 then
    invalid_arg "Fp.sqrt: modulus not congruent to 3 mod 4";
  let a = reduce f a in
  let candidate = pow f a (B.shift_right (B.add f.p B.one) 2) in
  if B.equal (sqr f candidate) a then Some candidate else None
