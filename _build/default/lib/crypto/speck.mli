(** Speck 64/128 lightweight block cipher (Beaulieu et al., the variant
    the paper benchmarks in Table 1): 64-bit blocks, 128-bit keys,
    27 rounds. Key expansion is exposed separately because Table 1 costs
    it separately. *)

type key
(** Expanded round-key schedule. *)

val block_size : int
(** 8 bytes. *)

val key_size : int
(** 16 bytes. *)

val expand : string -> key
(** @raise Invalid_argument if the key is not 16 bytes. *)

val encrypt_block : key -> string -> string
(** Encrypt one 8-byte block. @raise Invalid_argument on bad length. *)

val decrypt_block : key -> string -> string
(** Decrypt one 8-byte block. @raise Invalid_argument on bad length. *)
