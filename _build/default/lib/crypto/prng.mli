(** SplitMix64 pseudorandom generator for simulation workloads (memory
    images, message jitter, fuzzed inputs). Not cryptographic — crypto
    randomness comes from {!Drbg}. Fully deterministic from the seed so
    every benchmark run is reproducible. *)

type t

val create : int64 -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bytes : t -> int -> string
(** [bytes t n] is [n] pseudorandom bytes. *)

val split : t -> t
(** Derive an independent stream (for per-device generators). *)
