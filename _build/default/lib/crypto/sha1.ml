(* SHA-1 over int32 state words, 64-byte blocks. The compression function
   follows FIPS 180-4 §6.1.2 with the usual 80-step expansion. *)

let digest_size = 20
let block_size = 64

type ctx = {
  state : int32 array; (* h0..h4 *)
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  mutable total : int64; (* bytes absorbed *)
}

let init () =
  {
    state =
      [| 0x67452301l; 0xEFCDAB89l; 0x98BADCFEl; 0x10325476l; 0xC3D2E1F0l |];
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
  }

let rotl32 x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let compress state block off =
  let w = Array.make 80 0l in
  for t = 0 to 15 do
    let base = off + (4 * t) in
    let b i = Int32.of_int (Char.code (Bytes.get block (base + i))) in
    w.(t) <-
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor
           (Int32.shift_left (b 1) 16)
           (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  done;
  for t = 16 to 79 do
    w.(t) <-
      rotl32
        (Int32.logxor
           (Int32.logxor w.(t - 3) w.(t - 8))
           (Int32.logxor w.(t - 14) w.(t - 16)))
        1
  done;
  let a = ref state.(0)
  and b = ref state.(1)
  and c = ref state.(2)
  and d = ref state.(3)
  and e = ref state.(4) in
  for t = 0 to 79 do
    let f, k =
      if t < 20 then
        (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d),
         0x5A827999l)
      else if t < 40 then (Int32.logxor !b (Int32.logxor !c !d), 0x6ED9EBA1l)
      else if t < 60 then
        (Int32.logor
           (Int32.logand !b !c)
           (Int32.logor (Int32.logand !b !d) (Int32.logand !c !d)),
         0x8F1BBCDCl)
      else (Int32.logxor !b (Int32.logxor !c !d), 0xCA62C1D6l)
    in
    let temp =
      Int32.add (rotl32 !a 5) (Int32.add f (Int32.add !e (Int32.add k w.(t))))
    in
    e := !d;
    d := !c;
    c := rotl32 !b 30;
    b := !a;
    a := temp
  done;
  state.(0) <- Int32.add state.(0) !a;
  state.(1) <- Int32.add state.(1) !b;
  state.(2) <- Int32.add state.(2) !c;
  state.(3) <- Int32.add state.(3) !d;
  state.(4) <- Int32.add state.(4) !e

let feed t s =
  let len = String.length s in
  t.total <- Int64.add t.total (Int64.of_int len);
  let pos = ref 0 in
  (* fill a partial buffered block first *)
  if t.buf_len > 0 then begin
    let take = min (block_size - t.buf_len) len in
    Bytes.blit_string s 0 t.buf t.buf_len take;
    t.buf_len <- t.buf_len + take;
    pos := take;
    if t.buf_len = block_size then begin
      compress t.state t.buf 0;
      t.buf_len <- 0
    end
  end;
  while len - !pos >= block_size do
    Bytes.blit_string s !pos t.buf 0 block_size;
    compress t.state t.buf 0;
    pos := !pos + block_size
  done;
  let rest = len - !pos in
  if rest > 0 then begin
    Bytes.blit_string s !pos t.buf t.buf_len rest;
    t.buf_len <- t.buf_len + rest
  end

let finalize t =
  let bits = Int64.mul t.total 8L in
  (* append 0x80, pad with zeros to 56 mod 64, then 64-bit length *)
  Bytes.set t.buf t.buf_len '\x80';
  t.buf_len <- t.buf_len + 1;
  if t.buf_len > block_size - 8 then begin
    Bytes.fill t.buf t.buf_len (block_size - t.buf_len) '\x00';
    compress t.state t.buf 0;
    t.buf_len <- 0
  end;
  Bytes.fill t.buf t.buf_len (block_size - 8 - t.buf_len) '\x00';
  for i = 0 to 7 do
    Bytes.set t.buf
      (block_size - 1 - i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done;
  compress t.state t.buf 0;
  String.init digest_size (fun i ->
      let word = t.state.(i / 4) in
      let shift = 8 * (3 - (i mod 4)) in
      Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical word shift) 0xFFl)))

let digest s =
  let t = init () in
  feed t s;
  finalize t
