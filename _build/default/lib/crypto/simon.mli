(** Simon 64/128 lightweight block cipher — the sibling of Speck from the
    paper's reference [4] (Beaulieu et al., "The SIMON and SPECK Families
    of Lightweight Block Ciphers"): 64-bit blocks, 128-bit keys,
    44 rounds. Simon is the hardware-leaning family member; it rounds out
    the lightweight-MAC options for request authentication. Byte
    conventions match {!Speck} (little-endian words, low word first). *)

type key

val block_size : int
(** 8 bytes. *)

val key_size : int
(** 16 bytes. *)

val expand : string -> key
(** @raise Invalid_argument if the key is not 16 bytes. *)

val encrypt_block : key -> string -> string
(** @raise Invalid_argument on bad block length. *)

val decrypt_block : key -> string -> string
(** @raise Invalid_argument on bad block length. *)
