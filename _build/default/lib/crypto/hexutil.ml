let hex_digit n = "0123456789abcdef".[n]

let to_hex s =
  let b = Bytes.create (2 * String.length s) in
  String.iteri
    (fun i c ->
      let v = Char.code c in
      Bytes.set b (2 * i) (hex_digit (v lsr 4));
      Bytes.set b ((2 * i) + 1) (hex_digit (v land 0xf)))
    s;
  Bytes.unsafe_to_string b

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hexutil.of_hex: bad digit"

let of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hexutil.of_hex: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((nibble h.[2 * i] lsl 4) lor nibble h.[(2 * i) + 1]))

let xor a b =
  if String.length a <> String.length b then invalid_arg "Hexutil.xor";
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let equal_ct a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

let chunks n s =
  if n <= 0 then invalid_arg "Hexutil.chunks";
  let len = String.length s in
  let rec loop off acc =
    if off >= len then List.rev acc
    else
      let size = min n (len - off) in
      loop (off + size) (String.sub s off size :: acc)
  in
  loop 0 []
