(** ECDSA over secp160r1 (or any {!Ec.curve}), with deterministic
    RFC 6979-style nonces derived by HMAC-DRBG so signing is reproducible
    and never reuses a nonce.

    This is the public-key option the paper rules out in §4.1 for
    request authentication — we implement it anyway, both because Table 1
    benchmarks it and because the cost comparison (bench [auth-cost])
    needs a real signer/verifier. *)

type keypair = { secret : Bignum.t; public : Ec.point }

type signature = { r : Bignum.t; s : Bignum.t }

val generate_keypair : Ec.curve -> seed:string -> keypair
(** Deterministic key generation from a seed (simulation-friendly). *)

val public_of_secret : Ec.curve -> Bignum.t -> Ec.point

val sign : Ec.curve -> secret:Bignum.t -> string -> signature
(** Sign the SHA-1 digest of the message. *)

val verify : Ec.curve -> public:Ec.point -> msg:string -> signature -> bool

val signature_to_bytes : Ec.curve -> signature -> string
(** Fixed-width [r || s] encoding (2 × key_bytes). *)

val signature_of_bytes : Ec.curve -> string -> signature option
