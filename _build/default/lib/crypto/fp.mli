(** Prime-field arithmetic over {!Bignum}, parameterized by the modulus.
    Used for both the secp160r1 coordinate field and arithmetic modulo the
    group order in ECDSA. *)

type field
(** A prime modulus together with cached constants. *)

val make : Bignum.t -> field
(** [make p] builds the field Z/pZ. [p] must be an odd prime > 2; primality
    is the caller's responsibility (we only use published curve constants). *)

val modulus : field -> Bignum.t
val reduce : field -> Bignum.t -> Bignum.t
val add : field -> Bignum.t -> Bignum.t -> Bignum.t
val sub : field -> Bignum.t -> Bignum.t -> Bignum.t
val neg : field -> Bignum.t -> Bignum.t
val mul : field -> Bignum.t -> Bignum.t -> Bignum.t
val sqr : field -> Bignum.t -> Bignum.t
val pow : field -> Bignum.t -> Bignum.t -> Bignum.t

val inv : field -> Bignum.t -> Bignum.t
(** Multiplicative inverse by Fermat's little theorem.
    @raise Division_by_zero on zero. *)

val sqrt : field -> Bignum.t -> Bignum.t option
(** A square root of the argument, if one exists. Implemented for
    p ≡ 3 (mod 4) — which holds for secp160r1 — as [a^((p+1)/4)].
    @raise Invalid_argument for other moduli. *)
