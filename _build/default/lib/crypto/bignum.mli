(** Arbitrary-precision natural numbers, from scratch (the sealed build
    environment has no zarith). Sized for the 160/161-bit values of
    secp160r1; little-endian 26-bit limbs so products fit in OCaml's
    63-bit ints.

    All values are non-negative; subtraction of a larger number raises. *)

type t
(** Immutable natural number. *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
(** @raise Failure if the value exceeds [max_int]. *)

val of_hex : string -> t
val to_hex : t -> string

val of_bytes_be : string -> t
val to_bytes_be : ?pad:int -> t -> string
(** Big-endian encoding; [pad] left-pads with zero bytes to a minimum
    width (as ECDSA's fixed-width wire format needs). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r], [0 <= r < b].
    @raise Division_by_zero if [b] is zero. *)

val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
val test_bit : t -> int -> bool

val is_even : t -> bool
val is_odd : t -> bool

val pp : Format.formatter -> t -> unit
