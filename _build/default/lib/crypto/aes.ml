(* Byte-oriented AES-128: 4x4 state, table-driven S-boxes, xtime-based
   MixColumns. Clarity over speed; host throughput is still far beyond the
   simulated 24 MHz MCU this models. *)

let block_size = 16
let key_size = 16
let rounds = 10

let sbox =
  [| 0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b;
     0xfe; 0xd7; 0xab; 0x76; 0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0;
     0xad; 0xd4; 0xa2; 0xaf; 0x9c; 0xa4; 0x72; 0xc0; 0xb7; 0xfd; 0x93; 0x26;
     0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5; 0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15;
     0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a; 0x07; 0x12; 0x80; 0xe2;
     0xeb; 0x27; 0xb2; 0x75; 0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e; 0x5a; 0xa0;
     0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84; 0x53; 0xd1; 0x00; 0xed;
     0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf;
     0xd0; 0xef; 0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f;
     0x50; 0x3c; 0x9f; 0xa8; 0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5;
     0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff; 0xf3; 0xd2; 0xcd; 0x0c; 0x13; 0xec;
     0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d; 0x64; 0x5d; 0x19; 0x73;
     0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee; 0xb8; 0x14;
     0xde; 0x5e; 0x0b; 0xdb; 0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c;
     0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79; 0xe7; 0xc8; 0x37; 0x6d;
     0x8d; 0xd5; 0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08;
     0xba; 0x78; 0x25; 0x2e; 0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f;
     0x4b; 0xbd; 0x8b; 0x8a; 0x70; 0x3e; 0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e;
     0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e; 0xe1; 0xf8; 0x98; 0x11;
     0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55; 0x28; 0xdf;
     0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f;
     0xb0; 0x54; 0xbb; 0x16 |]

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox;
  t

type key = { enc : int array array }
(* enc.(r) is round key r as 16 bytes in column order. *)

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

let expand k =
  if String.length k <> key_size then invalid_arg "Aes.expand: need 16 bytes";
  (* 44 words of 4 bytes *)
  let w = Array.make 44 [||] in
  for i = 0 to 3 do
    w.(i) <-
      [| Char.code k.[4 * i]; Char.code k.[(4 * i) + 1];
         Char.code k.[(4 * i) + 2]; Char.code k.[(4 * i) + 3] |]
  done;
  for i = 4 to 43 do
    let temp = Array.copy w.(i - 1) in
    if i mod 4 = 0 then begin
      (* rotword + subword + rcon *)
      let t0 = temp.(0) in
      temp.(0) <- sbox.(temp.(1)) lxor rcon.((i / 4) - 1);
      temp.(1) <- sbox.(temp.(2));
      temp.(2) <- sbox.(temp.(3));
      temp.(3) <- sbox.(t0)
    end;
    w.(i) <- Array.init 4 (fun j -> w.(i - 4).(j) lxor temp.(j))
  done;
  let enc =
    Array.init (rounds + 1) (fun r ->
        Array.init 16 (fun i -> w.((4 * r) + (i / 4)).(i mod 4)))
  in
  { enc }

let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1b) land 0xff else b2 land 0xff

let gmul a b =
  (* GF(2^8) multiply via shift-and-add; [a] is data, [b] a small constant. *)
  let acc = ref 0 in
  let a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 <> 0 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc

let add_round_key state rk =
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor rk.(i)
  done

(* State layout: state.(4*col + row), matching the key schedule above. *)

let shift_rows state =
  let s r c = state.((4 * c) + r) in
  let out = Array.make 16 0 in
  for c = 0 to 3 do
    for r = 0 to 3 do
      out.((4 * c) + r) <- s r ((c + r) mod 4)
    done
  done;
  Array.blit out 0 state 0 16

let inv_shift_rows state =
  let s r c = state.((4 * c) + r) in
  let out = Array.make 16 0 in
  for c = 0 to 3 do
    for r = 0 to 3 do
      out.((4 * c) + r) <- s r ((c - r + 4) mod 4)
    done
  done;
  Array.blit out 0 state 0 16

let mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.((4 * c) + 1)
    and a2 = state.((4 * c) + 2) and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- gmul a0 2 lxor gmul a1 3 lxor a2 lxor a3;
    state.((4 * c) + 1) <- a0 lxor gmul a1 2 lxor gmul a2 3 lxor a3;
    state.((4 * c) + 2) <- a0 lxor a1 lxor gmul a2 2 lxor gmul a3 3;
    state.((4 * c) + 3) <- gmul a0 3 lxor a1 lxor a2 lxor gmul a3 2
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.((4 * c) + 1)
    and a2 = state.((4 * c) + 2) and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9;
    state.((4 * c) + 1) <- gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13;
    state.((4 * c) + 2) <- gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11;
    state.((4 * c) + 3) <- gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14
  done

let sub_bytes state table =
  for i = 0 to 15 do
    state.(i) <- table.(state.(i))
  done

let of_string s = Array.init 16 (fun i -> Char.code s.[i])
let to_string a = String.init 16 (fun i -> Char.chr a.(i))

let encrypt_block k pt =
  if String.length pt <> block_size then invalid_arg "Aes.encrypt_block";
  let st = of_string pt in
  add_round_key st k.enc.(0);
  for r = 1 to rounds - 1 do
    sub_bytes st sbox;
    shift_rows st;
    mix_columns st;
    add_round_key st k.enc.(r)
  done;
  sub_bytes st sbox;
  shift_rows st;
  add_round_key st k.enc.(rounds);
  to_string st

let decrypt_block k ct =
  if String.length ct <> block_size then invalid_arg "Aes.decrypt_block";
  let st = of_string ct in
  add_round_key st k.enc.(rounds);
  for r = rounds - 1 downto 1 do
    inv_shift_rows st;
    sub_bytes st inv_sbox;
    add_round_key st k.enc.(r);
    inv_mix_columns st
  done;
  inv_shift_rows st;
  sub_bytes st inv_sbox;
  add_round_key st k.enc.(0);
  to_string st
