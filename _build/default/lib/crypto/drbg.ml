(* HMAC-DRBG with SHA-256: state is (K, V); update/generate follow
   SP 800-90A §10.1.2 (no prediction resistance, no explicit reseed
   counter enforcement — our seeds are test/simulation inputs). *)

type t = { mutable k : string; mutable v : string }

let hash = Hmac.sha256
let hmac ~key msg = Hmac.mac hash ~key msg

let update t provided =
  t.k <- hmac ~key:t.k (t.v ^ "\x00" ^ provided);
  t.v <- hmac ~key:t.k t.v;
  if String.length provided > 0 then begin
    t.k <- hmac ~key:t.k (t.v ^ "\x01" ^ provided);
    t.v <- hmac ~key:t.k t.v
  end

let create ?(personalization = "") ~seed () =
  let t =
    {
      k = String.make hash.Hmac.digest_size '\x00';
      v = String.make hash.Hmac.digest_size '\x01';
    }
  in
  update t (seed ^ personalization);
  t

let reseed t entropy = update t entropy

let generate t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- hmac ~key:t.k t.v;
    Buffer.add_string buf t.v
  done;
  update t "";
  Buffer.sub buf 0 n
