type key = { aes : Aes.key; k1 : string; k2 : string }

let block = 16

(* doubling in GF(2^128) with the x^128 + x^7 + x^2 + x + 1 polynomial *)
let dbl s =
  let out = Bytes.create block in
  let carry = ref 0 in
  for i = block - 1 downto 0 do
    let v = (Char.code s.[i] lsl 1) lor !carry in
    Bytes.set out i (Char.chr (v land 0xff));
    carry := (v lsr 8) land 1
  done;
  if Char.code s.[0] land 0x80 <> 0 then
    Bytes.set out (block - 1)
      (Char.chr (Char.code (Bytes.get out (block - 1)) lxor 0x87));
  Bytes.to_string out

let derive aes =
  let l = Aes.encrypt_block aes (String.make block '\x00') in
  let k1 = dbl l in
  { aes; k1; k2 = dbl k1 }

let mac key msg =
  let len = String.length msg in
  let full_blocks, last, last_complete =
    if len = 0 then (0, "", false)
    else begin
      let q = (len + block - 1) / block in
      let last_len = len - ((q - 1) * block) in
      (q - 1, String.sub msg ((q - 1) * block) last_len, last_len = block)
    end
  in
  let final =
    if last_complete then Hexutil.xor last key.k1
    else begin
      let padded = last ^ "\x80" ^ String.make (block - String.length last - 1) '\x00' in
      Hexutil.xor padded key.k2
    end
  in
  let state = ref (String.make block '\x00') in
  for i = 0 to full_blocks - 1 do
    state := Aes.encrypt_block key.aes (Hexutil.xor !state (String.sub msg (i * block) block))
  done;
  Aes.encrypt_block key.aes (Hexutil.xor !state final)

let verify key ~msg ~tag = Hexutil.equal_ct (mac key msg) tag
