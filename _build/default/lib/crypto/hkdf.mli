(** HKDF (RFC 5869) over HMAC-SHA256: extract-then-expand key derivation.

    Used for fleet provisioning: each prover's K_attest is derived from
    the operator's master secret and the device identity, so the verifier
    stores one secret and a compromise of one device (the roaming
    adversary's Phase II against an unprotected key) does not leak its
    siblings' keys. *)

val extract : ?salt:string -> ikm:string -> unit -> string
(** [extract ~salt ~ikm ()] is the 32-byte pseudorandom key
    HMAC(salt, ikm); an absent salt means 32 zero bytes, per the RFC. *)

val expand : prk:string -> info:string -> length:int -> string
(** @raise Invalid_argument if [length] exceeds 255·32 bytes or is
    non-positive. *)

val derive : ?salt:string -> ikm:string -> info:string -> length:int -> unit -> string
(** [expand (extract ...)] in one step. *)
