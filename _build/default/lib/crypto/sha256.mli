(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used by the secure-boot measurement (the boot ROM hashes the loaded
    image and compares it to the reference digest) and available as an
    alternative HMAC hash. *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit

val finalize : ctx -> string
(** 32-byte digest; the context must not be reused. *)

val digest : string -> string

val digest_size : int
(** 32 bytes. *)

val block_size : int
(** 64 bytes. *)
