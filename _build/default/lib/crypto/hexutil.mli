(** Byte-string helpers shared by the primitives: hex conversion, xor,
    and constant-time comparison (MAC verification must not leak via
    early-exit timing). *)

val to_hex : string -> string
(** [to_hex s] is the lowercase hexadecimal rendering of [s]. *)

val of_hex : string -> string
(** [of_hex h] decodes a hex string (case-insensitive, even length).
    @raise Invalid_argument on malformed input. *)

val xor : string -> string -> string
(** [xor a b] is the byte-wise xor of two equal-length strings.
    @raise Invalid_argument if lengths differ. *)

val equal_ct : string -> string -> bool
(** [equal_ct a b] compares in time independent of the position of the
    first difference. Unequal lengths compare unequal (length may leak;
    MAC lengths are public). *)

val chunks : int -> string -> string list
(** [chunks n s] splits [s] into [n]-byte pieces; the last piece may be
    shorter. [chunks n ""] is [[]].
    @raise Invalid_argument if [n <= 0]. *)
