(* Speck 64/128 as specified in ePrint 2013/404: word size 32, 27 rounds,
   rotations alpha=8 beta=3. Words are little-endian within the block, and
   the (y, x) word order follows the reference implementation, so the
   published test vectors check out (see test suite). *)

let block_size = 8
let key_size = 16
let rounds = 27
let mask = 0xFFFFFFFF

type key = { rk : int array }

let ror x n = ((x lsr n) lor (x lsl (32 - n))) land mask
let rol x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let round_enc k (x, y) =
  let x = (ror x 8 + y) land mask lxor k in
  let y = rol y 3 lxor x in
  (x, y)

let round_dec k (x, y) =
  let y = ror (y lxor x) 3 in
  let x = rol (((x lxor k) - y) land mask) 8 in
  (x, y)

let word_of_le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let le_of_word w =
  String.init 4 (fun i -> Char.chr ((w lsr (8 * i)) land 0xff))

let expand k =
  if String.length k <> key_size then invalid_arg "Speck.expand: need 16 bytes";
  (* key words: k0 is the low word, l0..l2 the rest *)
  let k0 = word_of_le k 0 in
  let l = Array.make (rounds + 2) 0 in
  l.(0) <- word_of_le k 4;
  l.(1) <- word_of_le k 8;
  l.(2) <- word_of_le k 12;
  let rk = Array.make rounds 0 in
  rk.(0) <- k0;
  for i = 0 to rounds - 2 do
    l.(i + 3) <- ((rk.(i) + ror l.(i) 8) land mask) lxor i;
    rk.(i + 1) <- rol rk.(i) 3 lxor l.(i + 3)
  done;
  { rk }

let encrypt_block k pt =
  if String.length pt <> block_size then invalid_arg "Speck.encrypt_block";
  let y = word_of_le pt 0 and x = word_of_le pt 4 in
  let x, y = Array.fold_left (fun st rk -> round_enc rk st) (x, y) k.rk in
  le_of_word y ^ le_of_word x

let decrypt_block k ct =
  if String.length ct <> block_size then invalid_arg "Speck.decrypt_block";
  let y = word_of_le ct 0 and x = word_of_le ct 4 in
  let st = ref (x, y) in
  for i = rounds - 1 downto 0 do
    st := round_dec k.rk.(i) !st
  done;
  let x, y = !st in
  le_of_word y ^ le_of_word x
