(** Elliptic-curve group arithmetic over a short-Weierstrass curve
    y² = x³ + ax + b, with the secp160r1 parameters the paper benchmarks
    (Table 1, "ECC (secp160r1)") built in.

    Internally points are kept in Jacobian coordinates so scalar
    multiplication needs a single field inversion. *)

type curve = {
  field : Fp.field; (* coordinate field *)
  a : Bignum.t;
  b : Bignum.t;
  g : Bignum.t * Bignum.t; (* base point, affine *)
  n : Bignum.t; (* order of g *)
  key_bytes : int; (* fixed-width encoding size, 21 for secp160r1 *)
}

type point
(** A point on the curve, including the point at infinity. *)

val secp160r1 : curve

val infinity : point
val is_infinity : point -> bool

val of_affine : curve -> Bignum.t * Bignum.t -> point
(** @raise Invalid_argument if the coordinates are not on the curve. *)

val to_affine : curve -> point -> (Bignum.t * Bignum.t) option
(** [None] for the point at infinity. *)

val base : curve -> point

val on_curve : curve -> Bignum.t * Bignum.t -> bool

val double : curve -> point -> point
val add : curve -> point -> point -> point
val neg : curve -> point -> point

val mul : curve -> Bignum.t -> point -> point
(** Scalar multiplication, double-and-add. *)

val equal : curve -> point -> point -> bool

val compress : curve -> point -> string
(** SEC1 compressed encoding: one parity byte (0x02/0x03) followed by the
    x coordinate (20 bytes for secp160r1).
    @raise Invalid_argument for the point at infinity. *)

val decompress : curve -> string -> point option
(** Inverse of {!compress}; [None] on bad length, bad prefix, or an x
    with no curve point. *)
