(** HMAC-DRBG (NIST SP 800-90A) over SHA-256.

    Deterministic randomness for ECDSA nonces (RFC 6979-style) and for
    reproducible simulation inputs: a given seed always yields the same
    stream, so every experiment in this repository is replayable. *)

type t

val create : ?personalization:string -> seed:string -> unit -> t
(** Instantiate with entropy [seed] (any length). *)

val reseed : t -> string -> unit

val generate : t -> int -> string
(** [generate t n] produces [n] pseudorandom bytes and advances the state. *)
