(* Simon 64/128 per ePrint 2013/404: word size 32, 44 rounds, constant
   sequence z3, m = 4 key words. *)

let block_size = 8
let key_size = 16
let rounds = 44
let mask = 0xFFFFFFFF

(* z3, 62 bits *)
let z3 = "11011011101011000110010111100000010010001010011100110100001111"

type key = { rk : int array }

let rol x n = ((x lsl n) lor (x lsr (32 - n))) land mask
let ror x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let word_of_le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let le_of_word w = String.init 4 (fun i -> Char.chr ((w lsr (8 * i)) land 0xff))

let expand k =
  if String.length k <> key_size then invalid_arg "Simon.expand: need 16 bytes";
  let rk = Array.make rounds 0 in
  for i = 0 to 3 do
    rk.(i) <- word_of_le k (4 * i)
  done;
  for i = 4 to rounds - 1 do
    let tmp = ror rk.(i - 1) 3 lxor rk.(i - 3) in
    let tmp = tmp lxor ror tmp 1 in
    let z = if z3.[(i - 4) mod 62] = '1' then 1 else 0 in
    rk.(i) <- mask land (lnot rk.(i - 4)) lxor tmp lxor z lxor 3
  done;
  { rk }

let f x = (rol x 1 land rol x 8) lxor rol x 2

let encrypt_block k pt =
  if String.length pt <> block_size then invalid_arg "Simon.encrypt_block";
  let y = ref (word_of_le pt 0) and x = ref (word_of_le pt 4) in
  for i = 0 to rounds - 1 do
    let tmp = !x in
    x := !y lxor f !x lxor k.rk.(i);
    y := tmp
  done;
  le_of_word !y ^ le_of_word !x

let decrypt_block k ct =
  if String.length ct <> block_size then invalid_arg "Simon.decrypt_block";
  let y = ref (word_of_le ct 0) and x = ref (word_of_le ct 4) in
  for i = rounds - 1 downto 0 do
    let tmp = !y in
    y := !x lxor f !y lxor k.rk.(i);
    x := tmp
  done;
  le_of_word !y ^ le_of_word !x
