(** Synthesis of a set of {!Component}s into total register/LUT counts
    and the §6.3 overhead comparison.

    A system is the Siskiyou Peak core + an EA-MPU sized to the summed
    rule demand + the components' direct logic. The paper's baseline is
    core + EA-MPU with two rules (its own lockdown rule and the
    attestation key's rule): 6038 registers / 15142 LUTs. *)

type totals = {
  rule_slots : int;
  registers : int;
  luts : int;
}

val synthesize : Component.t list -> totals
(** Core and EA-MPU base are implicit; pass only the protection
    components (lockdown, key, counter, clock, …). *)

val baseline_components : Component.t list
(** Lockdown + Attest-Key — the attestation-capable system with no
    prover-side DoS protection (§6.3). *)

val baseline : totals
(** 6038 registers, 15142 LUTs, 2 rules. *)

type overhead = {
  upgrade_name : string;
  added_rules : int;
  added_registers : int;
  added_luts : int;
  register_pct : float; (* vs baseline registers *)
  lut_pct : float;
}

val overhead : name:string -> Component.t list -> overhead
(** Cost of adding components on top of {!baseline_components}; the
    percentages are relative to the baseline totals, matching §6.3. *)

val upgrade_64bit_clock : overhead
(** Counter rule + 64-bit clock: +180 reg (2.98 %), +246 LUT (1.62 %). *)

val upgrade_32bit_clock : overhead
(** Counter rule + 32-bit clock: +148 reg (2.45 %), +214 LUT (1.41 %). *)

val upgrade_sw_clock : overhead
(** Counter rule + SW-clock's two rules: +348 reg (5.76 %), +546 LUT
    (3.61 %). *)

val pp_totals : Format.formatter -> totals -> unit
val pp_overhead : Format.formatter -> overhead -> unit
