lib/hwcost/component.mli: Format
