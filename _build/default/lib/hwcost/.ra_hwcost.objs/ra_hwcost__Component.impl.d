lib/hwcost/component.ml: Format Printf
