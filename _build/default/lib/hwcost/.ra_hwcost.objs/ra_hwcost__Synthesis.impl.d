lib/hwcost/synthesis.ml: Component Format List
