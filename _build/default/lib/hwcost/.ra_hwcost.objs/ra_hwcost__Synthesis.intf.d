lib/hwcost/synthesis.mli: Component Format
