type t = {
  component_name : string;
  mpu_rules : int;
  direct_registers : int;
  direct_luts : int;
}

let make component_name mpu_rules direct_registers direct_luts =
  { component_name; mpu_rules; direct_registers; direct_luts }

let siskiyou_peak = make "Siskiyou Peak" 0 5528 14361

let ea_mpu_base_registers = 278
let ea_mpu_base_luts = 417
let ea_mpu_registers_per_rule = 116
let ea_mpu_luts_per_rule = 182

let ea_mpu_registers ~rules = ea_mpu_base_registers + (ea_mpu_registers_per_rule * rules)
let ea_mpu_luts ~rules = ea_mpu_base_luts + (ea_mpu_luts_per_rule * rules)

let mpu_lockdown = make "EA-MPU lockdown" 1 0 0
let attest_key = make "Attest-Key" 1 0 0
let request_counter = make "Counter" 1 0 0
let clock_64bit = make "64 bit clock" 0 64 64
let clock_32bit = make "32 bit clock" 0 32 32
let sw_clock = make "SW-clock" 2 0 0

let clock_nbit ~width =
  if width <= 0 then invalid_arg "Component.clock_nbit: width must be positive";
  make (Printf.sprintf "%d bit clock" width) 0 width width

let pp fmt c =
  Format.fprintf fmt "%s: %d rule(s), %d reg, %d LUT" c.component_name c.mpu_rules
    c.direct_registers c.direct_luts
