type totals = { rule_slots : int; registers : int; luts : int }

let synthesize components =
  let rules =
    List.fold_left (fun acc c -> acc + c.Component.mpu_rules) 0 components
  in
  let direct_reg =
    List.fold_left (fun acc c -> acc + c.Component.direct_registers) 0 components
  in
  let direct_lut =
    List.fold_left (fun acc c -> acc + c.Component.direct_luts) 0 components
  in
  {
    rule_slots = rules;
    registers =
      Component.siskiyou_peak.Component.direct_registers
      + Component.ea_mpu_registers ~rules + direct_reg;
    luts =
      Component.siskiyou_peak.Component.direct_luts
      + Component.ea_mpu_luts ~rules + direct_lut;
  }

let baseline_components = [ Component.mpu_lockdown; Component.attest_key ]
let baseline = synthesize baseline_components

type overhead = {
  upgrade_name : string;
  added_rules : int;
  added_registers : int;
  added_luts : int;
  register_pct : float;
  lut_pct : float;
}

let overhead ~name components =
  let upgraded = synthesize (baseline_components @ components) in
  let added_registers = upgraded.registers - baseline.registers in
  let added_luts = upgraded.luts - baseline.luts in
  {
    upgrade_name = name;
    added_rules = upgraded.rule_slots - baseline.rule_slots;
    added_registers;
    added_luts;
    register_pct = 100.0 *. float_of_int added_registers /. float_of_int baseline.registers;
    lut_pct = 100.0 *. float_of_int added_luts /. float_of_int baseline.luts;
  }

let upgrade_64bit_clock =
  overhead ~name:"counter + 64 bit clock"
    [ Component.request_counter; Component.clock_64bit ]

let upgrade_32bit_clock =
  overhead ~name:"counter + 32 bit clock (divided)"
    [ Component.request_counter; Component.clock_32bit ]

let upgrade_sw_clock =
  overhead ~name:"counter + SW-clock" [ Component.request_counter; Component.sw_clock ]

let pp_totals fmt t =
  Format.fprintf fmt "%d rules, %d registers, %d LUTs" t.rule_slots t.registers t.luts

let pp_overhead fmt o =
  Format.fprintf fmt "%s: +%d rules, +%d reg (%.2f%%), +%d LUT (%.2f%%)" o.upgrade_name
    o.added_rules o.added_registers o.register_pct o.added_luts o.lut_pct
