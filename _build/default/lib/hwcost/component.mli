(** The hardware cost model of Table 3: every protectable component costs
    some number of EA-MPU rules (which in turn cost registers and LUTs in
    the synthesized rule table) plus direct registers/LUTs of its own.

    Constants are the paper's published synthesis results for the Intel
    Siskiyou Peak core with TrustLite's EA-MPU; we do not re-synthesize
    RTL, we make the paper's own cost arithmetic executable. *)

type t = {
  component_name : string;
  mpu_rules : int; (* EA-MPU rule slots the component occupies *)
  direct_registers : int;
  direct_luts : int;
}

(** {2 Table 3 constants} *)

val siskiyou_peak : t
(** The bare core: 5528 registers, 14361 LUTs, no rules. *)

val ea_mpu_base_registers : int (* 278 *)
val ea_mpu_base_luts : int (* 417 *)
val ea_mpu_registers_per_rule : int (* 116 *)
val ea_mpu_luts_per_rule : int (* 182 *)

val ea_mpu_registers : rules:int -> int
(** [278 + 116 * rules]. *)

val ea_mpu_luts : rules:int -> int
(** [417 + 182 * rules]. *)

val mpu_lockdown : t
(** The EA-MPU's own lockdown rule (Table 3 column "EA-MPU": 1 rule). *)

val attest_key : t
(** 1 rule, no direct cost (same whether the key lives in ROM or RAM). *)

val request_counter : t
(** 1 rule, no direct cost. *)

val clock_64bit : t
(** 64 direct registers + 64 LUTs, no rule (the register is hardwired
    read-only). *)

val clock_32bit : t
(** 32 direct registers + 32 LUTs. *)

val sw_clock : t
(** 2 rules (IDT lockdown + Clock_MSB), no direct cost. *)

val clock_nbit : width:int -> t
(** Generalization used by the clock-width sweep bench. *)

val pp : Format.formatter -> t -> unit
