(** The paper's two adversaries (§3.2).

    {b External adversary} [Adv_ext]: full Dolev-Yao control of the
    channel — eavesdrop, drop, delay, reorder, replay, inject — but no
    access to the prover's internals. Implemented as operations over the
    {!Ra_net.Channel} transcript.

    {b Roaming adversary} [Adv_roam]: additionally compromises the
    prover's *software* (never its hardware), manipulates internal state,
    then erases its traces (Phase II) before replaying recorded requests
    (Phase III). Every manipulation is attempted as a real, MPU-mediated
    memory access from the ["untrusted"] execution context, so whether a
    tamper "works" is decided by the architecture under test, not by this
    module. *)

(** {2 Adv_ext} *)

val recorded_requests : Session.t -> Message.attreq list
(** Phase-I style eavesdropping: every request ever put on the wire. *)

val forge_request :
  Session.t -> ?key_blob:string -> freshness:Message.freshness_field -> unit ->
  Message.attreq
(** Build a bogus request. Without [key_blob] the tag is absent (pure
    verifier impersonation); with a stolen blob the forgery carries a
    valid MAC under the prover's own scheme. *)

val inject : Session.t -> Message.attreq -> unit
(** Deliver a request of the adversary's choosing to the prover now. *)

val replay : Session.t -> Message.attreq -> unit
(** Re-deliver a previously recorded request verbatim. *)

val intercept_next_request : Session.t -> Message.attreq option
(** Remove the oldest undelivered verifier request from the wire (the
    prover never sees it) and hand it to the adversary. *)

val flood : Session.t -> count:int -> Message.attreq -> unit
(** Deliver [count] copies back-to-back (the DoS of §3.1). *)

(** {2 Adv_roam} *)

type tamper =
  | Try_key_read
  | Try_key_write of string
  | Try_counter_write of int64 (* §5: roll counter_R back *)
  | Try_clock_set_back_ms of int64 (* §5: set the clock to t - δ *)
  | Try_idt_tamper (* §6.2: stop Code_clock being invoked *)
  | Try_irq_disable
  | Try_mpu_reconfig (* remove all protection rules *)

type tamper_result =
  | Tamper_succeeded of string (* detail, e.g. extracted key hex *)
  | Blocked_by_mpu
  | Blocked_rom_immutable
  | Blocked_mpu_locked
  | Not_applicable of string

type compromise_report = {
  attempts : (tamper * tamper_result) list;
  malware_was_resident : bool; (* RAM was modified during the visit *)
  traces_erased : bool; (* RAM restored bit-exact before leaving *)
}

val compromise : Session.t -> tampers:tamper list -> compromise_report
(** Phase II: infect the prover (drop a malware marker into attested
    RAM), attempt each tamper as untrusted code, then erase the marker
    and restore RAM bit-exact. After this returns, attestation of memory
    contents can no longer see that the adversary was there — only
    protected-state side effects (or their absence) remain. *)

val stolen_key_blob : compromise_report -> string option
(** The key material exfiltrated by [Try_key_read], if it succeeded. *)

val tamper_result_ok : tamper_result -> bool

val pp_tamper : Format.formatter -> tamper -> unit
val pp_tamper_result : Format.formatter -> tamper_result -> unit
