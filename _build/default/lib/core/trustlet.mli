(** TrustLite-style {e trustlets} (paper §2): isolated code chunks whose
    private data "can be accessed only by the code of the trustlet to
    which the data belongs", enforced by EA-MPU rules, with declared
    entry points so other code can only call a trustlet at its gateway.

    [Code_attest] itself is the paper's primary trustlet; this module
    generalizes the pattern so a device can host several mutually
    isolated services (the attestation anchor, a key-store, a metering
    service, ...) on one EA-MPU. Registration is meant to run during
    secure boot, before the rule table is locked. *)

type spec = {
  trustlet_name : string;
  code_region : string; (* region whose PC owns the data *)
  data_base : int;
  data_size : int;
  entry_points : int list; (* gateway addresses inside the code region *)
  shared_read : bool; (* if true, anyone may read the data (e.g. a
                         published counter); writes stay exclusive *)
}

type t
(** A trustlet registry bound to one device. *)

val create : Ra_mcu.Device.t -> t

val register : t -> spec -> unit
(** Validate the spec and program its isolation rule into the device's
    EA-MPU.
    @raise Invalid_argument on an unknown code region, a data range that
    overlaps another trustlet's, or a duplicate name.
    @raise Ra_mcu.Ea_mpu.Locked / Capacity_exceeded from rule
    programming. *)

val registered : t -> spec list

val rule_of : spec -> Ra_mcu.Ea_mpu.rule
(** The EA-MPU rule [register] programs. *)

val bind_core : t -> Ra_isa.Core.t -> unit
(** Install every trustlet's entry points as the core's allowed entries
    (§6.2 entry-point limiting) — call per interpreted core. *)

val lockdown : t -> unit
(** Freeze the EA-MPU (end of secure boot). *)
