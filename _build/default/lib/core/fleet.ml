type health = Healthy | Compromised | Unresponsive | Unknown

type member = {
  name : string;
  session : Session.t;
  mutable health : health;
  mutable sweeps : int;
}

type t = { members : member list }

let member_name m = m.name
let member_session m = m.session
let member_health m = m.health
let sweeps_of m = m.sweeps

let stagger_seconds = 1.0

let create ?(spec = Architecture.trustlite_base) ?ram_size ~names () =
  if names = [] then invalid_arg "Fleet.create: no members";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then invalid_arg "Fleet.create: duplicate member name";
      Hashtbl.replace seen n ())
    names;
  {
    members =
      List.map
        (fun name ->
          { name; session = Session.create ~spec ?ram_size (); health = Unknown; sweeps = 0 })
        names;
  }

let members t = t.members

let find t name =
  match List.find_opt (fun m -> m.name = name) t.members with
  | Some m -> m
  | None -> raise Not_found

let advance t ~seconds =
  List.iter (fun m -> Session.advance_time m.session ~seconds) t.members

let classify = function
  | Some Verifier.Trusted -> Healthy
  | Some Verifier.Untrusted_state | Some Verifier.Invalid_response -> Compromised
  | None -> Unresponsive

let sweep_member m =
  let verdict = Session.attest_round m.session in
  m.health <- classify verdict;
  m.sweeps <- m.sweeps + 1;
  verdict

let sweep_one t name = sweep_member (find t name)

let sweep t =
  List.map
    (fun m ->
      advance t ~seconds:stagger_seconds;
      (m.name, sweep_member m))
    t.members

let summary t = List.map (fun m -> (m.name, m.health, m.sweeps)) t.members

let compromised t =
  List.filter_map
    (fun m -> match m.health with
      | Compromised -> Some m.name
      | Healthy | Unresponsive | Unknown -> None)
    t.members

let pp_health fmt = function
  | Healthy -> Format.pp_print_string fmt "healthy"
  | Compromised -> Format.pp_print_string fmt "COMPROMISED"
  | Unresponsive -> Format.pp_print_string fmt "unresponsive"
  | Unknown -> Format.pp_print_string fmt "unknown"
