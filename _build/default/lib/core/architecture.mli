(** Named prover configurations: which hardware the device has, which
    EA-MPU rules secure boot installs, and how the trust anchor is
    parameterized. These are the columns of the paper's security
    analysis:

    - {!unprotected}: attestation works, but no request authentication
      and no state protection at all — §3.1's DoS victim.
    - {!smart_like}: SMART's static protection — key in ROM behind a
      hard-wired rule, authenticated requests — but no counter/clock
      protection (SMART predates the prover-DoS analysis).
    - {!trustlite_base} (Fig. 1a): programmable EA-MPU set up by secure
      boot and locked; key + counter rules; a wide hardware clock.
    - {!trustlite_sw_clock} (Fig. 1b): same, with the SW-clock
      (Clock_LSB interrupt + Code_clock-maintained Clock_MSB) and the
      IDT/irq-control rules that protect it.
    - {!tytan_like}: TrustLite-base plus an interruptible trust anchor
      (modeled by leaving interrupts enabled during attestation; the
      distinction matters for real-time co-existence, not security).

    [build] returns a *booted* prover; secure boot measures the
    application image before installing rules, so a tampered image
    refuses to boot. *)

type spec = {
  spec_name : string;
  clock_impl : Ra_mcu.Device.clock_impl;
  key_location : Ra_mcu.Device.key_location;
  scheme : Ra_mcu.Timing.auth_scheme option;
  policy : Freshness.policy;
  protect_key : bool;
  protect_counter : bool;
  protect_clock_msb : bool;
  protect_idt : bool;
  protect_irq_ctrl : bool;
  lock_mpu : bool;
  attest_app_flash : bool; (* measurement covers application flash too *)
}

type prover = {
  spec : spec;
  device : Ra_mcu.Device.t;
  anchor : Code_attest.t;
  boot_outcome : Ra_mcu.Secure_boot.outcome;
}

val default_window_ms : int64
(** Acceptance window for timestamp freshness (5000 ms). *)

val unprotected : spec
val smart_like : spec
val trustlite_base : spec
val trustlite_sw_clock : spec
val tytan_like : spec

val all_specs : spec list

val with_policy : spec -> Freshness.policy -> spec
val with_scheme : spec -> Ra_mcu.Timing.auth_scheme option -> spec
val with_name : spec -> string -> spec

val app_image : Ra_mcu.Secure_boot.image
(** The canonical benign application image installed in flash. *)

val build : ?ram_seed:int64 -> ?ram_size:int -> key_blob:string -> spec -> prover
(** Manufacture, provision and boot a prover. [ram_seed] fills the
    attested RAM deterministically (default seed 42), so the verifier's
    reference image can be reproduced with {!Code_attest.measure_memory}.
    @raise Invalid_argument if the spec is inconsistent (e.g. timestamp
    policy without a clock). *)

val reboot : ?ram_seed:int64 -> prover -> prover
(** Power-cycle the prover and run secure boot again on the surviving
    non-volatile contents: protection rules are re-installed and
    re-locked, RAM is re-initialized from [ram_seed] (default 42 — the
    device reloading its working state), and a fresh trust anchor is
    bound. The request counter carries over (it lives in NVM), the clock
    restarts from zero. *)
