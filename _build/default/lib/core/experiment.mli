(** Executable security experiments.

    [table2] regenerates Table 2 of the paper by actually running each
    `Adv_ext` attack (replay / reorder / delay) against a prover using
    each freshness feature (nonce history / counter / timestamp) and
    observing whether the malicious delivery triggered an attestation.

    The [roam_*] scenarios regenerate the §5 analysis: the three-phase
    roaming adversary against protected and unprotected state, including
    the two subtleties the paper calls out — the counter rollback is
    undetectable after the fact while the clock rollback leaves the
    prover's clock behind, and the roaming adversary is delay-bound (must
    wait δ) in the timestamp case. *)

type feature = F_nonces | F_counter | F_timestamps
type attack = A_replay | A_reorder | A_delay

val feature_name : feature -> string
val attack_name : attack -> string

val table2_cell : feature -> attack -> bool
(** [true] iff the feature mitigated the attack (the malicious delivery
    did not cause an extra attestation). *)

val table2 : unit -> (attack * (feature * bool) list) list
(** The full matrix, attacks × features. *)

val expected_table2 : (attack * (feature * bool) list) list
(** Table 2 as printed in the paper, for cross-checking. *)

(** {2 Roaming adversary scenarios (§5, §6.2)} *)

type roam_outcome = {
  scenario : string;
  defended : bool; (* was the relevant protection in place? *)
  dos_blocked : bool; (* did the prover refuse the Phase-III replay? *)
  evidence_left : bool; (* post-hoc detectability (clock behind, MPU
                           fault log, inconsistent state) *)
  details : string;
}

val roam_counter_rollback : defended:bool -> roam_outcome
(** §5 "Adv_roam and Counters": roll counter_R back to i-1, replay
    attreq(i). Undefended: DoS succeeds with {e no} evidence. *)

val roam_clock_rollback : defended:bool -> roam_outcome
(** §5 "Adv_roam and Timestamps" on the SW-clock: set Clock_MSB back by
    δ, wait δ, deliver a withheld genuine request. Undefended: DoS
    succeeds but the prover's clock stays behind (evidence). *)

val roam_clock_rollback_hw : unit -> roam_outcome
(** Same attack against the dedicated 64-bit counter register: no
    software write path exists, the attack is inherently blocked. *)

val roam_key_extraction : defended:bool -> roam_outcome
(** Extract K_attest, then forge authenticated requests at will. *)

val roam_idt_freeze : defended:bool -> roam_outcome
(** Redirect the timer vector so Code_clock never runs: the SW-clock
    freezes and arbitrarily delayed requests look fresh. *)

val roam_mpu_lockdown : defended:bool -> roam_outcome
(** [defended = false] models boot *without* locking the EA-MPU: resident
    malware clears the rules and then reads the key. *)

val roaming_matrix : unit -> roam_outcome list
(** All scenarios, defended and undefended. *)

val pp_roam_outcome : Format.formatter -> roam_outcome -> unit
