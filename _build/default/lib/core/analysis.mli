(** Exhaustive validation of the paper's protection argument.

    §5/§6.2 argue per-asset: the key must be read/write-protected, the
    counter write-protected, the clock state write-protected, and the
    whole rule table locked at boot. This module enumerates {e every}
    combination of those four defences on a SW-clock prover, runs the
    roaming adversary's tampers against each, and compares the observed
    outcome with the security argument's prediction:

    - with the EA-MPU left unlocked, {e nothing} holds (resident malware
      clears the rules first and then takes everything);
    - with lockdown, each asset is tamperable exactly when its own rule
      is missing.

    [exhaustive_check] is the machine-checked version of the paper's
    case analysis — all 16 points of the protection lattice. *)

type config = {
  p_key : bool;
  p_counter : bool;
  p_clock : bool; (* Clock_MSB + IDT + IRQ-control rules *)
  p_lock : bool; (* EA-MPU locked at end of secure boot *)
}

type exposure = {
  key_extractable : bool;
  counter_rollbackable : bool;
  clock_rollbackable : bool;
}

val all_configs : config list
(** The 16 combinations. *)

val predict : config -> exposure
(** What the paper's argument says must happen. *)

val observe : config -> exposure
(** What the simulated roaming adversary actually achieves. *)

val exhaustive_check : unit -> (config * exposure * exposure * bool) list
(** For every config: (config, predicted, observed, agreement). *)

val pp_config : Format.formatter -> config -> unit
val pp_exposure : Format.formatter -> exposure -> unit
