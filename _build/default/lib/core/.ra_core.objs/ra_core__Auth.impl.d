lib/core/auth.ml: Message Ra_crypto Ra_mcu String
