lib/core/message.ml: Char Format Int64 Ra_crypto String
