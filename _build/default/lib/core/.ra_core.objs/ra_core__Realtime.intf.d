lib/core/realtime.mli:
