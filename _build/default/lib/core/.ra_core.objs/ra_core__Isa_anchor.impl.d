lib/core/isa_anchor.ml: Auth Code_attest Freshness Int64 List Message Ra_isa Ra_mcu String
