lib/core/realtime.ml: Float List Option
