lib/core/ablation.ml: Float Format Freshness Int64 List Message Ra_crypto Ra_mcu Ra_net String
