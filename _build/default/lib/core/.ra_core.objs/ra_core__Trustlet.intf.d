lib/core/trustlet.mli: Ra_isa Ra_mcu
