lib/core/clock_sync.mli: Format Message Ra_mcu Ra_net
