lib/core/trustlet.ml: Hashtbl List Option Ra_isa Ra_mcu
