lib/core/session.mli: Architecture Code_attest Message Ra_mcu Ra_net Service Verifier
