lib/core/clock_sync.ml: Auth Char Format Int64 Message Ra_crypto Ra_mcu Ra_net String
