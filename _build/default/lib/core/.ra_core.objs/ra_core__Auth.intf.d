lib/core/auth.mli: Message Ra_crypto Ra_mcu
