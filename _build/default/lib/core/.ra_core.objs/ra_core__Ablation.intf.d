lib/core/ablation.mli: Ra_net
