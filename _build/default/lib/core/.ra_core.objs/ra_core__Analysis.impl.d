lib/core/analysis.ml: Adversary Architecture Format Freshness List Ra_mcu Session
