lib/core/freshness.ml: Format Int64 List Message Ra_mcu String
