lib/core/code_attest.ml: Auth Format Freshness List Message Ra_mcu String
