lib/core/swatt.mli: Ra_mcu
