lib/core/session.ml: Architecture Clock_sync Code_attest Freshness Hashtbl Int64 List Message Ra_mcu Ra_net Service String Verifier
