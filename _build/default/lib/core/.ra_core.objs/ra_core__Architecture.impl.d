lib/core/architecture.ml: Code_attest Freshness List Printf Ra_mcu String
