lib/core/service.mli: Format Freshness Message Ra_mcu
