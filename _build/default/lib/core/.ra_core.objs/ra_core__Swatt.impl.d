lib/core/swatt.ml: Bytes Char Int64 Ra_crypto Ra_mcu String
