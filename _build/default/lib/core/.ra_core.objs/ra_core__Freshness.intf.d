lib/core/freshness.mli: Format Message Ra_mcu
