lib/core/experiment.ml: Adversary Architecture Code_attest Format Freshness Int64 List Message Option Printf Ra_mcu Ra_net Session Verifier
