lib/core/service.ml: Auth Format Freshness Int64 Message Option Ra_crypto Ra_mcu String
