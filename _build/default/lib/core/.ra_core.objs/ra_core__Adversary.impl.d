lib/core/adversary.ml: Auth Float Format Int64 List Message Option Printf Ra_crypto Ra_mcu Ra_net Session String Verifier
