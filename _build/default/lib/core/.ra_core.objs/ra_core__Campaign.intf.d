lib/core/campaign.mli: Architecture Format
