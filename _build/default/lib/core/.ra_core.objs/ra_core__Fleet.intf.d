lib/core/fleet.mli: Architecture Format Session Verifier
