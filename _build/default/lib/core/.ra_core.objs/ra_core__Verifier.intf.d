lib/core/verifier.mli: Format Message Ra_mcu Ra_net
