lib/core/campaign.ml: Adversary Architecture Code_attest Float Format Freshness List Message Ra_crypto Ra_mcu Session String Verifier
