lib/core/adversary.mli: Format Message Session
