lib/core/architecture.mli: Code_attest Freshness Ra_mcu
