lib/core/verifier.ml: Auth Format Int64 Message Option Ra_crypto Ra_mcu Ra_net String
