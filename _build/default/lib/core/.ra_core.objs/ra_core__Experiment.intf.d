lib/core/experiment.mli: Format
