lib/core/isa_anchor.mli: Code_attest Freshness Message Ra_mcu
