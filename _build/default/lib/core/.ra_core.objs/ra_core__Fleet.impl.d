lib/core/fleet.ml: Architecture Format Hashtbl List Session Verifier
