lib/core/code_attest.mli: Format Freshness Message Ra_mcu
