(** Future-work item 2 of the paper: "secure and reliable synchronization
    of verifier's and prover's clocks".

    The prover's hardware clock counts from power-on; to compare verifier
    timestamps against it, the prover keeps a signed-magnitude offset
    [wall_ms = clock_ms + offset] in protected non-volatile memory. The
    sync protocol is a one-round authenticated exchange:

    verifier → prover: [Sync_request (t_v, c, HMAC(K, t_v ‖ c))]
    prover  → verifier: [Sync_response (c, HMAC(K, c))]

    The sync counter [c] is strictly monotonic and stored in its own
    protected cell, so recorded sync requests cannot be replayed to drag
    the prover's clock back — otherwise clock synchronization would be
    exactly the rollback vector §5 warns about. *)

type reject =
  | Sync_bad_auth
  | Sync_stale_counter of { got : int64; stored : int64 }
  | Sync_no_clock

type t

val sync_counter_offset : int (* byte offset of the sync counter cell in NVRAM *)
val offset_offset : int (* byte offset of the clock-offset cell *)

val rule_protect_sync_state : Ra_mcu.Device.t -> Ra_mcu.Ea_mpu.rule
(** Both cells writable only by [Code_attest]. Install before lockdown. *)

val install : Ra_mcu.Device.t -> t
(** The prover-side endpoint; runs in the trust anchor's context and
    reads K_attest through the MPU. *)

val handle : t -> Message.wire -> (Message.wire, reject) result
(** Process a [Sync_request]; returns the acknowledgement.
    Non-sync messages are rejected as [Sync_bad_auth]. *)

val now_ms : t -> int64
(** Offset-corrected prover wall-clock (for use as a
    [Freshness.init ~now_ms_fn]). *)

val offset_ms : t -> int64

(** {2 Verifier side} *)

val make_sync_request :
  sym_key:string -> time:Ra_net.Simtime.t -> counter:int64 -> Message.wire

val check_sync_ack : sym_key:string -> counter:int64 -> Message.wire -> bool

val pp_reject : Format.formatter -> reject -> unit
