(** Long-horizon deployment campaigns: a fleet of provers swept
    periodically while a configurable adversarial load plays out —
    the paper's future-work "trial deployment" as a Monte-Carlo
    simulation. Deterministic from the seed.

    Each campaign day, every device is swept; between sweeps the
    adversary (per the mix probabilities) floods devices with bogus
    requests, replays recorded ones, or infects a device with resident
    malware (which the next sweep should flag). The report aggregates
    protocol and resource outcomes across the whole deployment. *)

type attack_mix = {
  p_flood : float; (* per device-day probability of a 100-request flood *)
  p_replay : float; (* per device-day probability of a replay attempt *)
  p_infect : float; (* per device-day probability of resident infection *)
}

val quiet : attack_mix
(** No adversary. *)

val hostile : attack_mix
(** 20 % flood, 30 % replay, 5 % infection per device-day. *)

type config = {
  devices : int;
  days : int;
  sweeps_per_day : int;
  mix : attack_mix;
  seed : int64;
  ram_size : int;
  spec : Architecture.spec;
}

val default_config : config
(** 8 trustlite-base devices (counter policy), 7 days, 4 sweeps/day,
    {!hostile} mix, 2 KB attested RAM. *)

type report = {
  device_days : int;
  sweeps : int;
  trusted_verdicts : int;
  compromised_verdicts : int; (* sweeps that flagged an infected device *)
  infections : int; (* infections the adversary planted *)
  missed_infections : int; (* infections present at sweep but not flagged *)
  floods : int;
  flood_requests_rejected : int;
  flood_requests_attested : int; (* DoS amplification; 0 when protected *)
  replays : int;
  replays_rejected : int;
  total_energy_joules : float;
  max_device_energy_joules : float;
}

val run : config -> report
(** @raise Invalid_argument on non-positive dimensions or probabilities
    outside [0,1]. *)

val pp_report : Format.formatter -> report -> unit
