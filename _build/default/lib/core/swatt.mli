(** A SWATT/Pioneer-style {e software-based} attestation baseline
    (paper §2, refs [32, 33]): no trust anchor, no key protection — the
    verifier sends a nonce, the prover computes a pseudorandom-walk
    checksum over its memory, and the verifier checks both the value and
    the {e response time}, because a cheating prover that redirects
    checksum reads around its malware pays a per-access time penalty.

    The paper dismisses this approach for networked provers: "all current
    software-only techniques … only work if the verifier communicates
    directly to the prover, with no intermediate hops". This module makes
    that argument quantitative: the cheater's overhead is a fixed number
    of cycles, so once network round-trip jitter exceeds it, the timing
    check must either miss cheaters or reject honest provers. The bench
    sweeps jitter to show the crossover. *)

type params = {
  iterations : int; (* pseudorandom accesses per attestation *)
  cycles_per_access : int; (* honest per-iteration cost *)
  cheat_extra_cycles : int; (* per-access penalty of the redirection check *)
  slack_factor : float; (* accepted time = honest time * slack *)
}

val default_params : params
(** 3·n accesses for an n-byte memory (the SWATT coupon-collector rule of
    thumb scaled down), 12 cycles/access honest, +3 cycles/access when
    cheating, 5 % timing slack. *)

type outcome =
  | Accepted
  | Rejected_wrong_checksum
  | Rejected_too_slow

type verification = {
  outcome : outcome;
  checksum_ok : bool;
  honest_ms : float; (* reference execution time *)
  measured_ms : float; (* prover time + network jitter *)
  budget_ms : float; (* acceptance threshold *)
}

val checksum : Ra_mcu.Device.t -> nonce:string -> iterations:int -> string
(** The prover-side computation: a nonce-seeded pseudorandom walk over
    the attested memory folded into a SHA-1 state, charged to the device
    at [cycles_per_access = 12] per touch. Runs in the untrusted context
    — software-based attestation has no protected code region. *)

val attest :
  ?cheating:bool ->
  params:params ->
  jitter_ms:float ->
  reference:Ra_mcu.Device.t ->
  prover:Ra_mcu.Device.t ->
  string (* nonce *) ->
  verification
(** One attestation: the verifier computes the expected checksum on its
    [reference] device image and times the [prover]. [cheating] makes the
    prover compute over a pristine shadow copy (so the checksum matches
    the reference even if its real memory is infected) at
    [cheat_extra_cycles] per access. [jitter_ms] is added to the measured
    time — the network the paper says this scheme cannot survive. *)

val detection_margin_ms :
  params:params -> memory_bytes:int -> hz:int -> float
(** The cheater's total time penalty: the jitter level beyond which
    timing-based attestation stops working. *)
