module Device = Ra_mcu.Device

type config = { p_key : bool; p_counter : bool; p_clock : bool; p_lock : bool }

type exposure = {
  key_extractable : bool;
  counter_rollbackable : bool;
  clock_rollbackable : bool;
}

let all_configs =
  let bools = [ false; true ] in
  List.concat_map
    (fun p_key ->
      List.concat_map
        (fun p_counter ->
          List.concat_map
            (fun p_clock ->
              List.map (fun p_lock -> { p_key; p_counter; p_clock; p_lock }) bools)
            bools)
        bools)
    bools

let predict config =
  if not config.p_lock then
    (* malware clears the rule table before tampering *)
    { key_extractable = true; counter_rollbackable = true; clock_rollbackable = true }
  else
    {
      key_extractable = not config.p_key;
      counter_rollbackable = not config.p_counter;
      clock_rollbackable = not config.p_clock;
    }

let spec_of config =
  {
    Architecture.trustlite_sw_clock with
    Architecture.spec_name = "lattice";
    policy = Freshness.Counter;
    protect_key = config.p_key;
    protect_counter = config.p_counter;
    protect_clock_msb = config.p_clock;
    protect_idt = config.p_clock;
    protect_irq_ctrl = config.p_clock;
    lock_mpu = config.p_lock;
  }

let observe config =
  let session = Session.create ~spec:(spec_of config) ~ram_size:2048 () in
  Session.advance_time session ~seconds:60.0;
  let report =
    Adversary.compromise session
      ~tampers:
        [
          Adversary.Try_mpu_reconfig (* the unlocked-table gambit, first *);
          Adversary.Try_key_read;
          Adversary.Try_counter_write 0L;
          Adversary.Try_clock_set_back_ms 30_000L;
        ]
  in
  let ok tamper =
    List.exists
      (fun (t, result) -> t = tamper && Adversary.tamper_result_ok result)
      report.Adversary.attempts
  in
  {
    key_extractable = ok Adversary.Try_key_read;
    counter_rollbackable = ok (Adversary.Try_counter_write 0L);
    clock_rollbackable = ok (Adversary.Try_clock_set_back_ms 30_000L);
  }

let exhaustive_check () =
  List.map
    (fun config ->
      let predicted = predict config in
      let observed = observe config in
      (config, predicted, observed, predicted = observed))
    all_configs

let pp_config fmt c =
  Format.fprintf fmt "key:%c counter:%c clock:%c lock:%c"
    (if c.p_key then 'Y' else '-')
    (if c.p_counter then 'Y' else '-')
    (if c.p_clock then 'Y' else '-')
    (if c.p_lock then 'Y' else '-')

let pp_exposure fmt e =
  Format.fprintf fmt "key:%s counter:%s clock:%s"
    (if e.key_extractable then "EXPOSED" else "safe")
    (if e.counter_rollbackable then "EXPOSED" else "safe")
    (if e.clock_rollbackable then "EXPOSED" else "safe")
