type anchor_mode = Non_interruptible | Interruptible

type config = {
  task_period_ms : float;
  task_wcet_ms : float;
  attestation_ms : float;
  anchor_mode : anchor_mode;
  horizon_ms : float;
  request_times_ms : float list;
}

type report = {
  task_jobs : int;
  deadline_misses : int;
  attestations_completed : int;
  attestations_pending : int;
  mean_attestation_latency_ms : float;
  max_attestation_latency_ms : float;
  busy_fraction : float;
}

type job = {
  release : float;
  deadline : float option; (* None for attestation jobs *)
  mutable remaining : float;
  mutable finished : float option;
}

let validate cfg =
  if cfg.task_period_ms <= 0.0 then invalid_arg "Realtime: period must be positive";
  if cfg.task_wcet_ms <= 0.0 then invalid_arg "Realtime: wcet must be positive";
  if cfg.attestation_ms < 0.0 then invalid_arg "Realtime: attestation cost negative";
  if cfg.horizon_ms <= 0.0 then invalid_arg "Realtime: horizon must be positive";
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | [ _ ] | [] -> true
  in
  if List.exists (fun t -> t < 0.0) cfg.request_times_ms || not (sorted cfg.request_times_ms)
  then invalid_arg "Realtime: request times must be sorted and non-negative"

(* only jobs whose deadline lies inside the horizon — a job cut off by
   the end of the simulation is not a deadline miss *)
let task_jobs_of cfg =
  let count = int_of_float ((cfg.horizon_ms /. cfg.task_period_ms) +. 1e-9) in
  List.init count (fun k ->
      let release = float_of_int k *. cfg.task_period_ms in
      {
        release;
        deadline = Some (release +. cfg.task_period_ms);
        remaining = cfg.task_wcet_ms;
        finished = None;
      })

let attestation_jobs_of cfg =
  List.map
    (fun t -> { release = t; deadline = None; remaining = cfg.attestation_ms; finished = None })
    cfg.request_times_ms

(* Fixed-priority preemptive scheduling of two FIFO streams. [high] and
   [low] are job lists sorted by release. Event-driven: at each step run
   the ready highest-priority job until it completes or the next release
   arrives. *)
let schedule ~horizon high low =
  let next_release jobs now =
    List.fold_left
      (fun acc j ->
        if j.finished = None && j.release > now then
          Some (match acc with None -> j.release | Some a -> Float.min a j.release)
        else acc)
      None jobs
  in
  let ready jobs now =
    List.find_opt (fun j -> j.finished = None && j.release <= now) jobs
  in
  let busy = ref 0.0 in
  let rec loop now =
    if now >= horizon then ()
    else begin
      let current =
        match ready high now with Some j -> Some j | None -> ready low now
      in
      match current with
      | None ->
        (* idle until the next release of either stream *)
        (match (next_release high now, next_release low now) with
        | None, None -> ()
        | Some a, None | None, Some a -> loop (Float.min a horizon)
        | Some a, Some b -> loop (Float.min (Float.min a b) horizon))
      | Some job ->
        (* a high-priority release can preempt a low-priority job *)
        let preemption =
          if List.memq job low then next_release high now else None
        in
        let until =
          let completion = now +. job.remaining in
          let t = match preemption with None -> completion | Some p -> Float.min completion p in
          Float.min t horizon
        in
        let ran = until -. now in
        job.remaining <- job.remaining -. ran;
        busy := !busy +. ran;
        if job.remaining <= 1e-9 then job.finished <- Some until;
        loop until
    end
  in
  loop 0.0;
  !busy

let simulate cfg =
  validate cfg;
  let tasks = task_jobs_of cfg in
  let attests = attestation_jobs_of cfg in
  let high, low =
    match cfg.anchor_mode with
    | Non_interruptible -> (attests, tasks)
    | Interruptible -> (tasks, attests)
  in
  let busy = schedule ~horizon:cfg.horizon_ms high low in
  let deadline_misses =
    List.length
      (List.filter
         (fun j ->
           match (j.deadline, j.finished) with
           | Some d, Some f -> f > d +. 1e-9
           | Some _, None -> true (* never finished: missed *)
           | None, (Some _ | None) -> false)
         tasks)
  in
  let latencies =
    List.filter_map
      (fun j -> Option.map (fun f -> f -. j.release) j.finished)
      attests
  in
  let completed = List.length latencies in
  {
    task_jobs = List.length tasks;
    deadline_misses;
    attestations_completed = completed;
    attestations_pending = List.length attests - completed;
    mean_attestation_latency_ms =
      (if completed = 0 then 0.0
       else List.fold_left ( +. ) 0.0 latencies /. float_of_int completed);
    max_attestation_latency_ms = List.fold_left Float.max 0.0 latencies;
    busy_fraction = busy /. cfg.horizon_ms;
  }

let periodic_requests ~every_ms ~horizon_ms =
  if every_ms <= 0.0 then invalid_arg "Realtime.periodic_requests";
  let rec build t acc = if t >= horizon_ms then List.rev acc else build (t +. every_ms) (t :: acc) in
  build 0.0 []

let miss_rate r =
  if r.task_jobs = 0 then 0.0
  else float_of_int r.deadline_misses /. float_of_int r.task_jobs
