module Device = Ra_mcu.Device
module Path = Ra_net.Path
module Prng = Ra_crypto.Prng

type point = {
  window_ms : int64;
  trials : int;
  false_rejects : int;
  exposure_ms : int64;
}

let false_reject_rate p =
  if p.trials = 0 then 0.0 else float_of_int p.false_rejects /. float_of_int p.trials

let key = String.make 60 'k'

let run_window ~trials ~path ~window_ms ~prng =
  let device = Device.create ~ram_size:1024 ~key () in
  (* prover time is supplied directly: the sweep isolates the window
     decision from clock drift (clock-sync handles drift separately) *)
  let now = ref 0L in
  let state =
    Freshness.init ~now_ms_fn:(fun () -> !now) device
      (Freshness.Timestamp { window_ms })
  in
  let false_rejects = ref 0 in
  let send_time = ref 0L in
  for _ = 1 to trials do
    (* genuine requests spaced 10 s apart; one-way delay = rtt/2 *)
    send_time := Int64.add !send_time 10_000L;
    let delay_ms = Path.sample_rtt_ms path prng /. 2.0 in
    now := Int64.add !send_time (Int64.of_float delay_ms);
    (match
       Ra_mcu.Cpu.with_context (Device.cpu device) Device.region_attest (fun () ->
           Freshness.check_and_update state (Message.F_timestamp !send_time))
     with
    | Ok () -> ()
    | Error (Freshness.Delayed_timestamp _) -> incr false_rejects
    | Error e ->
      invalid_arg
        (Format.asprintf "Ablation: unexpected reject %a" Freshness.pp_reject e))
  done;
  { window_ms; trials; false_rejects = !false_rejects; exposure_ms = window_ms }

let timestamp_window_sweep ?(trials = 500) ~path ~windows ~seed () =
  List.map
    (fun window_ms ->
      (* a fresh stream per window keeps points independent *)
      let prng = Prng.create (Int64.add seed window_ms) in
      run_window ~trials ~path ~window_ms ~prng)
    windows

let recommended_window_ms ~path =
  Int64.of_float (Float.ceil (Path.max_rtt_ms path /. 2.0))
