module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu
module C = Ra_crypto

type params = {
  iterations : int;
  cycles_per_access : int;
  cheat_extra_cycles : int;
  slack_factor : float;
}

let default_params =
  { iterations = 0 (* resolved per-device: 3x memory size *);
    cycles_per_access = 12;
    cheat_extra_cycles = 3;
    slack_factor = 1.05 }

type outcome = Accepted | Rejected_wrong_checksum | Rejected_too_slow

type verification = {
  outcome : outcome;
  checksum_ok : bool;
  honest_ms : float;
  measured_ms : float;
  budget_ms : float;
}

let resolve_iterations params device =
  if params.iterations > 0 then params.iterations else 3 * Device.attested_len device

(* Nonce-seeded pseudorandom walk folded into SHA-1. The walk itself
   reads through the MPU-mediated path in the *untrusted* context: there
   is no trust anchor in software-based attestation. *)
let walk ~read device ~nonce ~iterations =
  let seed =
    String.fold_left (fun acc c -> Int64.add (Int64.mul acc 131L) (Int64.of_int (Char.code c)))
      7L nonce
  in
  let prng = C.Prng.create seed in
  let base = Device.attested_base device in
  let len = Device.attested_len device in
  let ctx = C.Sha1.init () in
  C.Sha1.feed ctx nonce;
  let buf = Bytes.create 1 in
  for _ = 1 to iterations do
    let addr = base + C.Prng.int prng len in
    Bytes.set buf 0 (Char.chr (read addr));
    C.Sha1.feed ctx (Bytes.to_string buf)
  done;
  C.Sha1.finalize ctx

let checksum device ~nonce ~iterations =
  let cpu = Device.cpu device in
  Cpu.consume_cycles cpu (Int64.of_int (iterations * 12));
  walk ~read:(fun addr -> Cpu.load_byte cpu addr) device ~nonce ~iterations

let ms_of_cycles_at hz cycles = Int64.to_float cycles *. 1000.0 /. float_of_int hz

let attest ?(cheating = false) ~params ~jitter_ms ~reference ~prover nonce =
  let iterations = resolve_iterations params prover in
  (* verifier's expected value, from its reference image (free for us;
     the verifier is a powerful machine) *)
  let ref_mem = Device.memory reference in
  let expected =
    walk ~read:(Ra_mcu.Memory.read_byte ref_mem) reference ~nonce ~iterations
  in
  (* prover-side computation, with real cycle charging *)
  let cpu = Device.cpu prover in
  let before = Cpu.cycles cpu in
  let response =
    if cheating then begin
      (* the malware keeps a pristine shadow of the pages it modified and
         redirects the walk there: correct checksum, slower *)
      let pristine = Ra_mcu.Memory.read_bytes ref_mem (Device.attested_base reference)
          (Device.attested_len reference)
      in
      Cpu.consume_cycles cpu
        (Int64.of_int (iterations * (params.cycles_per_access + params.cheat_extra_cycles)));
      walk
        ~read:(fun addr -> Char.code pristine.[addr - Device.attested_base prover])
        prover ~nonce ~iterations
    end
    else begin
      Cpu.consume_cycles cpu (Int64.of_int (iterations * params.cycles_per_access));
      Cpu.with_context cpu Device.region_untrusted (fun () ->
          walk ~read:(fun addr -> Cpu.load_byte cpu addr) prover ~nonce ~iterations)
    end
  in
  let hz = Cpu.clock_hz cpu in
  let honest_ms =
    ms_of_cycles_at hz (Int64.of_int (iterations * params.cycles_per_access))
  in
  let compute_ms = ms_of_cycles_at hz (Int64.sub (Cpu.cycles cpu) before) in
  let measured_ms = compute_ms +. jitter_ms in
  let budget_ms = honest_ms *. params.slack_factor in
  let checksum_ok = C.Hexutil.equal_ct expected response in
  let outcome =
    if not checksum_ok then Rejected_wrong_checksum
    else if measured_ms > budget_ms then Rejected_too_slow
    else Accepted
  in
  { outcome; checksum_ok; honest_ms; measured_ms; budget_ms }

let detection_margin_ms ~params ~memory_bytes ~hz =
  let iterations = if params.iterations > 0 then params.iterations else 3 * memory_bytes in
  float_of_int (iterations * params.cheat_extra_cycles) *. 1000.0 /. float_of_int hz
