(** Real-time co-existence of attestation and the prover's primary task
    (§3.1: "current low-end device attestation techniques assume that
    attestation runs without interruption. Thus, gratuitous (malicious)
    invocation of attestation can be detrimental to the execution of
    prover's main (even critical) functions").

    A fixed-priority preemptive scheduler with two demand streams on one
    CPU: a periodic control task (implicit deadline = period) and
    attestation jobs. Under a SMART-style non-interruptible anchor the
    anchor outranks the task (its ROM code runs with interrupts
    disabled); under a TyTAN-style interruptible anchor the task outranks
    the anchor and attestation is computed in the gaps.

    This quantifies both §3.1 (an attestation flood starves a critical
    task) and the TyTAN trade-off (the task stays schedulable, the
    attestation latency grows). *)

type anchor_mode =
  | Non_interruptible (* SMART: attestation cannot be preempted *)
  | Interruptible (* TyTAN: the real-time task preempts the anchor *)

type config = {
  task_period_ms : float;
  task_wcet_ms : float; (* per-job execution demand *)
  attestation_ms : float; (* one attestation's execution demand *)
  anchor_mode : anchor_mode;
  horizon_ms : float;
  request_times_ms : float list; (* attestation request arrivals *)
}

type report = {
  task_jobs : int;
  deadline_misses : int;
  attestations_completed : int;
  attestations_pending : int; (* unfinished at the horizon *)
  mean_attestation_latency_ms : float; (* completion - arrival; 0 if none *)
  max_attestation_latency_ms : float;
  busy_fraction : float; (* CPU utilization over the horizon *)
}

val simulate : config -> report
(** @raise Invalid_argument on non-positive periods/costs or an
    unsorted/negative request list. *)

val periodic_requests : every_ms:float -> horizon_ms:float -> float list
(** Arrival times [0, every, 2*every, ...] below the horizon — a
    malicious flood or an aggressive verifier schedule. *)

val miss_rate : report -> float
(** Fraction of task jobs that missed their deadline. *)
