module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu
module Clock = Ra_mcu.Clock
module Timing = Ra_mcu.Timing

type feature = F_nonces | F_counter | F_timestamps
type attack = A_replay | A_reorder | A_delay

let feature_name = function
  | F_nonces -> "nonces"
  | F_counter -> "counter"
  | F_timestamps -> "timestamps"

let attack_name = function
  | A_replay -> "replay"
  | A_reorder -> "reorder"
  | A_delay -> "delay"

let window_ms = Architecture.default_window_ms
let window_s = Int64.to_float window_ms /. 1000.0

let policy_of_feature = function
  | F_nonces -> Freshness.Nonce_history { max_entries = None }
  | F_counter -> Freshness.Counter
  | F_timestamps -> Freshness.Timestamp { window_ms }

let session_for feature =
  let spec =
    Architecture.with_policy Architecture.trustlite_base (policy_of_feature feature)
  in
  (* a modest RAM keeps the experiments quick; the security outcome does
     not depend on the attested size *)
  Session.create ~spec ~ram_size:4096 ()

let attestations session =
  (Code_attest.stats (Session.anchor session)).Code_attest.attestations_performed

(* Run one attack scenario; [true] = the malicious delivery did NOT
   trigger an attestation (feature mitigated the attack). *)
let table2_cell feature attack =
  let session = session_for feature in
  match attack with
  | A_replay ->
    (* benign round, then replay the recorded genuine request *)
    Session.advance_time session ~seconds:1.0;
    let _ = Session.attest_round session in
    let baseline = attestations session in
    (match Adversary.recorded_requests session with
    | [ req ] ->
      Session.advance_time session ~seconds:1.0;
      Adversary.replay session req;
      attestations session = baseline
    | requests ->
      invalid_arg
        (Printf.sprintf "table2_cell: expected one recorded request, got %d"
           (List.length requests)))
  | A_reorder ->
    (* two genuine requests delivered in swapped order; mitigated iff the
       older one is rejected after the newer one was processed *)
    Session.advance_time session ~seconds:1.0;
    let req1 = Session.send_request session in
    Session.advance_time session ~seconds:1.0;
    let req2 = Session.send_request session in
    Session.deliver_to_prover session req2;
    let after_first = attestations session in
    Session.deliver_to_prover session req1;
    after_first = 1 && attestations session = after_first
  | A_delay ->
    (* a genuine request held back well beyond the freshness window *)
    Session.advance_time session ~seconds:1.0;
    let req = Session.send_request session in
    Session.advance_time session ~seconds:(6.0 *. window_s);
    Session.deliver_to_prover session req;
    attestations session = 0

let features = [ F_nonces; F_counter; F_timestamps ]
let attacks = [ A_replay; A_reorder; A_delay ]

let table2 () =
  List.map
    (fun attack ->
      (attack, List.map (fun feature -> (feature, table2_cell feature attack)) features))
    attacks

let expected_table2 =
  [
    (A_replay, [ (F_nonces, true); (F_counter, true); (F_timestamps, true) ]);
    (A_reorder, [ (F_nonces, false); (F_counter, true); (F_timestamps, true) ]);
    (A_delay, [ (F_nonces, false); (F_counter, false); (F_timestamps, true) ]);
  ]

(* ---- roaming adversary ---- *)

type roam_outcome = {
  scenario : string;
  defended : bool;
  dos_blocked : bool;
  evidence_left : bool;
  details : string;
}

let prover_clock_seconds session =
  match Device.clock (Session.device session) with
  | None -> 0.0
  | Some clock ->
    Cpu.with_context
      (Device.cpu (Session.device session))
      Device.region_attest
      (fun () -> Clock.seconds clock)

let clock_behind session =
  match Device.clock (Session.device session) with
  | None -> false
  | Some _ ->
    let real = Ra_net.Simtime.now (Session.time session) in
    (* more than two seconds of skew counts as forensic evidence *)
    real -. prover_clock_seconds session > 2.0

let mpu_faults session = List.length (Cpu.faults (Device.cpu (Session.device session)))

let counter_spec ~defended =
  {
    (Architecture.with_policy Architecture.trustlite_base Freshness.Counter) with
    Architecture.spec_name =
      (if defended then "counter/protected" else "counter/unprotected");
    clock_impl = Device.Clock_none;
    protect_counter = defended;
  }

let roam_counter_rollback ~defended =
  let session = Session.create ~spec:(counter_spec ~defended) ~ram_size:4096 () in
  Session.advance_time session ~seconds:1.0;
  let _ = Session.attest_round session in
  let baseline = attestations session in
  let report =
    Adversary.compromise session
      ~tampers:[ Adversary.Try_counter_write 0L ]
  in
  Session.advance_time session ~seconds:3600.0 (* wait arbitrarily long *);
  (match Adversary.recorded_requests session with
  | req :: _ -> Adversary.replay session req
  | [] -> invalid_arg "roam_counter_rollback: no recorded request");
  let dos_blocked = attestations session = baseline in
  let stored =
    Cpu.with_context
      (Device.cpu (Session.device session))
      Device.region_attest
      (fun () ->
        Cpu.load_u64 (Device.cpu (Session.device session))
          (Device.counter_addr (Session.device session)))
  in
  (* after a successful attack the counter is back at the expected value:
     nothing to see; a blocked attack leaves MPU faults in the log *)
  let evidence_left = mpu_faults session > 0 in
  {
    scenario = "counter rollback + replay (§5)";
    defended;
    dos_blocked;
    evidence_left;
    details =
      Printf.sprintf "counter_R=%Ld after phase III; tamper %s" stored
        (if Adversary.tamper_result_ok (snd (List.nth report.Adversary.attempts 0))
         then "succeeded"
         else "blocked");
  }

let sw_clock_spec ~protect_clock ~protect_idt ~name =
  {
    Architecture.trustlite_sw_clock with
    Architecture.spec_name = name;
    protect_clock_msb = protect_clock;
    protect_idt;
    protect_irq_ctrl = protect_idt;
  }

(* Shared shape of the two delay-style roaming attacks: a genuine request
   is withheld in Phase I, the prover's notion of time is sabotaged in
   Phase II, and the stale request is delivered after δ in Phase III. *)
let roam_delayed_delivery ~scenario ~spec ~tampers ~delta_s =
  let session = Session.create ~spec ~ram_size:4096 () in
  (* establish last-accepted-timestamp state with a benign round *)
  Session.advance_time session ~seconds:5.0;
  let _ = Session.attest_round session in
  let baseline = attestations session in
  (* phase I: eavesdrop and withhold a genuine request *)
  Session.advance_time session ~seconds:delta_s;
  let _ = Session.send_request session in
  let withheld =
    match Adversary.intercept_next_request session with
    | Some req -> req
    | None -> invalid_arg "roam_delayed_delivery: nothing to intercept"
  in
  (* phase II *)
  let _report = Adversary.compromise session ~tampers in
  (* phase III: wait δ, then deliver the stale request *)
  Session.advance_time session ~seconds:delta_s;
  Adversary.replay session withheld;
  let dos_blocked = attestations session = baseline in
  let behind = clock_behind session in
  {
    scenario;
    defended = spec.Architecture.protect_clock_msb && spec.Architecture.protect_idt;
    dos_blocked;
    evidence_left = behind || mpu_faults session > 0;
    details =
      Printf.sprintf "prover clock %.1fs vs real %.1fs" (prover_clock_seconds session)
        (Ra_net.Simtime.now (Session.time session));
  }

let delta_s = 30.0

let roam_clock_rollback ~defended =
  roam_delayed_delivery ~scenario:"clock rollback + delayed delivery (§5)"
    ~spec:
      (sw_clock_spec ~protect_clock:defended ~protect_idt:defended
         ~name:(if defended then "sw-clock/protected" else "sw-clock/unprotected"))
    ~tampers:[ Adversary.Try_clock_set_back_ms (Int64.of_float (delta_s *. 1000.0)) ]
    ~delta_s

let roam_idt_freeze ~defended =
  roam_delayed_delivery ~scenario:"IDT tamper freezes SW-clock (§6.2)"
    ~spec:
      (sw_clock_spec ~protect_clock:true ~protect_idt:defended
         ~name:(if defended then "idt/protected" else "idt/unprotected"))
    ~tampers:[ Adversary.Try_idt_tamper ]
    ~delta_s

let roam_clock_rollback_hw () =
  let spec =
    {
      (Architecture.with_name Architecture.trustlite_base "hw-clock-64bit") with
      Architecture.protect_counter = true;
    }
  in
  let outcome =
    roam_delayed_delivery ~scenario:"clock rollback vs 64-bit counter register (§6.3)"
      ~spec
      ~tampers:[ Adversary.Try_clock_set_back_ms (Int64.of_float (delta_s *. 1000.0)) ]
      ~delta_s
  in
  { outcome with defended = true }

let roam_key_extraction ~defended =
  let spec =
    {
      (Architecture.with_policy Architecture.trustlite_base Freshness.Counter) with
      Architecture.spec_name =
        (if defended then "key/protected" else "key/unprotected");
      clock_impl = Device.Clock_none;
      protect_key = defended;
      protect_counter = true;
    }
  in
  let session = Session.create ~spec ~ram_size:4096 () in
  Session.advance_time session ~seconds:1.0;
  let _ = Session.attest_round session in
  let baseline = attestations session in
  let report = Adversary.compromise session ~tampers:[ Adversary.Try_key_read ] in
  Session.advance_time session ~seconds:1.0;
  (* with the stolen blob, forge a perfectly fresh, authenticated request *)
  let next = Verifier.next_counter_value (Session.verifier session) in
  let forged =
    Adversary.forge_request session
      ?key_blob:(Adversary.stolen_key_blob report)
      ~freshness:(Message.F_counter next) ()
  in
  Adversary.inject session forged;
  let dos_blocked = attestations session = baseline in
  {
    scenario = "K_attest extraction + forged requests (§5)";
    defended;
    dos_blocked;
    evidence_left = mpu_faults session > 0;
    details =
      (match Adversary.stolen_key_blob report with
      | Some _ -> "key material exfiltrated"
      | None -> "key read blocked by EA-MPU");
  }

let roam_mpu_lockdown ~defended =
  let spec =
    {
      (Architecture.with_policy Architecture.trustlite_base Freshness.Counter) with
      Architecture.spec_name =
        (if defended then "lockdown/enabled" else "lockdown/missing");
      clock_impl = Device.Clock_none;
      protect_counter = true;
      lock_mpu = defended;
    }
  in
  let session = Session.create ~spec ~ram_size:4096 () in
  Session.advance_time session ~seconds:1.0;
  let _ = Session.attest_round session in
  let report =
    Adversary.compromise session
      ~tampers:[ Adversary.Try_mpu_reconfig; Adversary.Try_key_read ]
  in
  let key_stolen = Option.is_some (Adversary.stolen_key_blob report) in
  {
    scenario = "EA-MPU lockdown by secure boot (§6.2)";
    defended;
    dos_blocked = not key_stolen;
    evidence_left = mpu_faults session > 0;
    details =
      (if key_stolen then "rules cleared, key exfiltrated"
       else "reconfiguration rejected: table locked");
  }

let roaming_matrix () =
  [
    roam_counter_rollback ~defended:false;
    roam_counter_rollback ~defended:true;
    roam_clock_rollback ~defended:false;
    roam_clock_rollback ~defended:true;
    roam_clock_rollback_hw ();
    roam_idt_freeze ~defended:false;
    roam_idt_freeze ~defended:true;
    roam_key_extraction ~defended:false;
    roam_key_extraction ~defended:true;
    roam_mpu_lockdown ~defended:false;
    roam_mpu_lockdown ~defended:true;
  ]

let pp_roam_outcome fmt o =
  Format.fprintf fmt "%-45s %-11s dos=%-7s evidence=%-5b %s" o.scenario
    (if o.defended then "[defended]" else "[exposed]")
    (if o.dos_blocked then "blocked" else "SUCCESS")
    o.evidence_left o.details
