(** Design-choice ablation for the timestamp freshness policy: the
    acceptance window.

    §4.2 requires "sufficiently inter-spaced genuine attestation
    requests" and synchronized clocks; in practice the prover must also
    tolerate network delivery delay, so it accepts timestamps up to
    [window] old — and every millisecond of window is a millisecond an
    intercepted request stays replayable (the delay attack the window is
    supposed to stop). This module quantifies both sides:

    - {e false rejects}: genuine requests whose one-way network delay
      exceeded the window;
    - {e exposure}: the window itself — how stale a withheld genuine
      request can be and still be accepted.

    The sweep runs real {!Freshness} checks against delays sampled from a
    {!Ra_net.Path} model, deterministically from the seed. *)

type point = {
  window_ms : int64;
  trials : int;
  false_rejects : int; (* genuine but late -> rejected *)
  exposure_ms : int64; (* replayable staleness = the window *)
}

val false_reject_rate : point -> float

val timestamp_window_sweep :
  ?trials:int ->
  path:Ra_net.Path.t ->
  windows:int64 list ->
  seed:int64 ->
  unit ->
  point list
(** For each window: [trials] genuine requests (default 500), each
    stamped by the verifier, delayed by half a sampled round-trip, and
    evaluated by a prover-side timestamp policy with that window. *)

val recommended_window_ms : path:Ra_net.Path.t -> int64
(** The smallest window that never false-rejects on this path: the
    path's maximum one-way delay, rounded up. *)
