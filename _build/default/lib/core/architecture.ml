module Device = Ra_mcu.Device
module Timing = Ra_mcu.Timing
module Secure_boot = Ra_mcu.Secure_boot

type spec = {
  spec_name : string;
  clock_impl : Device.clock_impl;
  key_location : Device.key_location;
  scheme : Timing.auth_scheme option;
  policy : Freshness.policy;
  protect_key : bool;
  protect_counter : bool;
  protect_clock_msb : bool;
  protect_idt : bool;
  protect_irq_ctrl : bool;
  lock_mpu : bool;
  attest_app_flash : bool;
}

type prover = {
  spec : spec;
  device : Device.t;
  anchor : Code_attest.t;
  boot_outcome : Secure_boot.outcome;
}

let default_window_ms = 5000L

let unprotected =
  {
    spec_name = "unprotected";
    clock_impl = Device.Clock_none;
    key_location = Device.Key_in_rom;
    scheme = None;
    policy = Freshness.No_freshness;
    protect_key = false;
    protect_counter = false;
    protect_clock_msb = false;
    protect_idt = false;
    protect_irq_ctrl = false;
    lock_mpu = false;
    attest_app_flash = false;
  }

let smart_like =
  {
    unprotected with
    spec_name = "smart-like";
    scheme = Some Timing.Auth_hmac_sha1;
    policy = Freshness.Counter;
    protect_key = true;
    lock_mpu = true;
    (* static (hard-wired) rules: key only; counter state unprotected *)
  }

let trustlite_base =
  {
    spec_name = "trustlite-base";
    clock_impl = Device.Clock_hw { width = 64; divider_log2 = 0 };
    key_location = Device.Key_in_rom;
    scheme = Some Timing.Auth_hmac_sha1;
    policy = Freshness.Timestamp { window_ms = default_window_ms };
    protect_key = true;
    protect_counter = true;
    protect_clock_msb = false (* no SW clock share to protect *);
    protect_idt = false;
    protect_irq_ctrl = false;
    lock_mpu = true;
    attest_app_flash = false;
  }

let trustlite_sw_clock =
  {
    trustlite_base with
    spec_name = "trustlite-sw-clock";
    clock_impl = Device.Clock_sw { lsb_width = 24; divider_log2 = 0 };
    protect_clock_msb = true;
    protect_idt = true;
    protect_irq_ctrl = true;
  }

let tytan_like = { trustlite_base with spec_name = "tytan-like" }

let all_specs =
  [ unprotected; smart_like; trustlite_base; trustlite_sw_clock; tytan_like ]

let with_policy spec policy = { spec with policy }
let with_scheme spec scheme = { spec with scheme }
let with_name spec spec_name = { spec with spec_name }

let app_image =
  {
    Secure_boot.image_name = "benign-app-v1";
    code = String.concat "" (List.init 64 (fun i -> Printf.sprintf "APP%04d!" i));
  }

let rules_of_spec spec device =
  List.concat
    [
      (if spec.protect_key then [ Device.rule_protect_key device ] else []);
      (if spec.protect_counter then [ Device.rule_protect_counter device ] else []);
      (if spec.protect_clock_msb then [ Device.rule_protect_clock_msb device ] else []);
      (if spec.protect_idt then [ Device.rule_protect_idt device ] else []);
      (if spec.protect_irq_ctrl then [ Device.rule_protect_irq_ctrl device ] else []);
    ]

let boot_device ~ram_seed spec device =
  Device.fill_ram_deterministic device ~seed:ram_seed;
  let boot_config =
    {
      Secure_boot.reference_digest = Secure_boot.digest_image app_image;
      protection_rules = rules_of_spec spec device;
      lock_mpu = spec.lock_mpu;
      enable_interrupts = true;
    }
  in
  let boot_outcome =
    Secure_boot.boot (Device.cpu device)
      (Some (Device.interrupt device))
      boot_config ~region:Device.region_app
      ~image_len:(String.length app_image.Secure_boot.code)
  in
  let anchor = Code_attest.install device ~scheme:spec.scheme ~policy:spec.policy () in
  { spec; device; anchor; boot_outcome }

let build ?(ram_seed = 42L) ?ram_size ~key_blob spec =
  let device =
    Device.create ?ram_size ~clock_impl:spec.clock_impl
      ~key_location:spec.key_location ~attest_app_flash:spec.attest_app_flash
      ~key:key_blob ()
  in
  Secure_boot.install_image (Device.memory device) ~region:Device.region_app app_image;
  boot_device ~ram_seed spec device

let reboot ?(ram_seed = 42L) prover =
  boot_device ~ram_seed prover.spec (Device.power_cycle prover.device)
