module Device = Ra_mcu.Device
module Memory = Ra_mcu.Memory
module Region = Ra_mcu.Region
module Ea_mpu = Ra_mcu.Ea_mpu

type spec = {
  trustlet_name : string;
  code_region : string;
  data_base : int;
  data_size : int;
  entry_points : int list;
  shared_read : bool;
}

type t = { device : Device.t; mutable specs : spec list }

let create device = { device; specs = [] }

let rule_of spec =
  {
    Ea_mpu.rule_name = "trustlet:" ^ spec.trustlet_name;
    data_base = spec.data_base;
    data_size = spec.data_size;
    read_by =
      (if spec.shared_read then Ea_mpu.Anyone else Ea_mpu.Code_in [ spec.code_region ]);
    write_by = Ea_mpu.Code_in [ spec.code_region ];
  }

let ranges_overlap a b =
  a.data_base < b.data_base + b.data_size && b.data_base < a.data_base + a.data_size

let validate t spec =
  if spec.data_size <= 0 then invalid_arg "Trustlet.register: empty data range";
  (match Memory.region_of_addr (Device.memory t.device) spec.data_base with
  | Some _ -> ()
  | None -> invalid_arg "Trustlet.register: data range unmapped");
  (try ignore (Memory.region_named (Device.memory t.device) spec.code_region)
   with Not_found -> invalid_arg "Trustlet.register: unknown code region");
  let code = Memory.region_named (Device.memory t.device) spec.code_region in
  List.iter
    (fun entry ->
      if not (Region.contains code entry) then
        invalid_arg "Trustlet.register: entry point outside the code region")
    spec.entry_points;
  List.iter
    (fun existing ->
      if existing.trustlet_name = spec.trustlet_name then
        invalid_arg "Trustlet.register: duplicate name";
      if ranges_overlap existing spec then
        invalid_arg "Trustlet.register: data ranges overlap")
    t.specs

let register t spec =
  validate t spec;
  Ea_mpu.program (Device.mpu t.device) (rule_of spec);
  t.specs <- t.specs @ [ spec ]

let registered t = t.specs

let bind_core t core =
  (* several trustlets may share a code region; their entry sets merge *)
  let by_region = Hashtbl.create 4 in
  List.iter
    (fun spec ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_region spec.code_region) in
      Hashtbl.replace by_region spec.code_region (existing @ spec.entry_points))
    t.specs;
  Hashtbl.iter (fun region entries -> Ra_isa.Core.allow_entries core ~region entries)
    by_region

let lockdown t = Ea_mpu.lock (Device.mpu t.device)
