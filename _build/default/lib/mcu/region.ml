type kind = Rom | Ram | Flash | Mmio

type t = { name : string; base : int; size : int; kind : kind }

let make ~name ~base ~size ~kind =
  if size <= 0 then invalid_arg "Region.make: size must be positive";
  if base < 0 then invalid_arg "Region.make: base must be non-negative";
  { name; base; size; kind }

let limit r = r.base + r.size
let contains r addr = addr >= r.base && addr < limit r
let overlaps a b = a.base < limit b && b.base < limit a

let pp_kind fmt = function
  | Rom -> Format.pp_print_string fmt "ROM"
  | Ram -> Format.pp_print_string fmt "RAM"
  | Flash -> Format.pp_print_string fmt "Flash"
  | Mmio -> Format.pp_print_string fmt "MMIO"

let pp fmt r =
  Format.fprintf fmt "%s[%a 0x%06x..0x%06x]" r.name pp_kind r.kind r.base (limit r - 1)
