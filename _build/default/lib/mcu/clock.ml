type kind = Hw_counter | Sw_clock

type sw = {
  lsb_width : int;
  msb_addr : int;
  timer_vector : int;
  handler_entry : int;
}

type t = {
  cpu : Cpu.t;
  divider_log2 : int;
  kind : kind;
  width : int; (* hw register width, or lsb width *)
  sw : sw option;
}

let mask_to width v =
  if width >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let raw_ticks cpu divider_log2 =
  Int64.shift_right_logical (Cpu.cycles cpu) divider_log2

let create_hw_counter cpu ~width ~divider_log2 =
  if width < 1 || width > 64 then invalid_arg "Clock.create_hw_counter: width";
  if divider_log2 < 0 then invalid_arg "Clock.create_hw_counter: divider";
  { cpu; divider_log2; kind = Hw_counter; width; sw = None }

let create_sw_clock cpu interrupt ~lsb_width ~divider_log2 ~msb_addr ~timer_vector
    ~handler_entry ~handler_region =
  if lsb_width < 1 || lsb_width > 62 then invalid_arg "Clock.create_sw_clock: lsb_width";
  if divider_log2 < 0 then invalid_arg "Clock.create_sw_clock: divider";
  let t =
    {
      cpu;
      divider_log2;
      kind = Sw_clock;
      width = lsb_width;
      sw = Some { lsb_width; msb_addr; timer_vector; handler_entry };
    }
  in
  (* Code_clock: increment Clock_MSB; a protection fault silently stops
     the clock rather than crashing dispatch. *)
  let handler () =
    try
      let msb = Cpu.load_u64 cpu msb_addr in
      Cpu.store_u64 cpu msb_addr (Int64.add msb 1L)
    with Cpu.Protection_fault _ -> ()
  in
  Interrupt.register_handler interrupt ~entry_addr:handler_entry
    ~code_region:handler_region ~handler;
  Interrupt.set_vector_raw interrupt ~vector:timer_vector ~entry_addr:handler_entry;
  (* wrap-around detector on the hardware LSB counter *)
  let last = ref (raw_ticks cpu divider_log2) in
  Cpu.on_advance cpu (fun _ _ _ ->
      let now = raw_ticks cpu divider_log2 in
      let wraps =
        Int64.sub
          (Int64.shift_right_logical now lsb_width)
          (Int64.shift_right_logical !last lsb_width)
      in
      last := now;
      let rec fire n =
        if Int64.compare n 0L > 0 then begin
          Interrupt.raise_irq interrupt ~vector:timer_vector;
          fire (Int64.sub n 1L)
        end
      in
      fire wraps);
  t

let kind t = t.kind

let ticks t =
  match t.sw with
  | None -> mask_to t.width (raw_ticks t.cpu t.divider_log2)
  | Some sw ->
    let lsb = mask_to sw.lsb_width (raw_ticks t.cpu t.divider_log2) in
    let msb = Cpu.load_u64 t.cpu sw.msb_addr in
    Int64.logor (Int64.shift_left msb sw.lsb_width) lsb

let resolution_seconds t =
  Int64.to_float (Int64.shift_left 1L t.divider_log2) /. float_of_int (Cpu.clock_hz t.cpu)

let seconds t = Int64.to_float (ticks t) *. resolution_seconds t

let msb_addr t = Option.map (fun sw -> sw.msb_addr) t.sw
let lsb_width t = Option.map (fun sw -> sw.lsb_width) t.sw
let handler_entry t = Option.map (fun sw -> sw.handler_entry) t.sw
let timer_vector t = Option.map (fun sw -> sw.timer_vector) t.sw

let wraparound_seconds ~hz ~width ~divider_log2 =
  2.0 ** float_of_int (width + divider_log2) /. float_of_int hz

(* 365-day years: reproduces the paper's "24,372.6 years" for a 64-bit
   counter at 24 MHz (we get 24,373.0; the paper rounded differently). *)
let seconds_per_year = 365.0 *. 24.0 *. 3600.0

let wraparound_years ~hz ~width ~divider_log2 =
  wraparound_seconds ~hz ~width ~divider_log2 /. seconds_per_year
