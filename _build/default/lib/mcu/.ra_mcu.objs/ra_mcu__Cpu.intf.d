lib/mcu/cpu.mli: Ea_mpu Memory
