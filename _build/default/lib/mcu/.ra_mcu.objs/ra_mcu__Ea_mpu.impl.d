lib/mcu/ea_mpu.ml: List
