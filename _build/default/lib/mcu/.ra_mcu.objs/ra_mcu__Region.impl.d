lib/mcu/region.ml: Format
