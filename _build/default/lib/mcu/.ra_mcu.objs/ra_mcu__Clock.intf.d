lib/mcu/clock.mli: Cpu Interrupt
