lib/mcu/ea_mpu.mli:
