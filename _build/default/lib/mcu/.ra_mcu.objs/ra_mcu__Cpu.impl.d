lib/mcu/cpu.ml: Ea_mpu Fun Int64 List Memory String
