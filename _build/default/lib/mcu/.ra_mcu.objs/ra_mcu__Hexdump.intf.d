lib/mcu/hexdump.mli: Device Ea_mpu Memory
