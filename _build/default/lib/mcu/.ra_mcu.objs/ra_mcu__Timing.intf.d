lib/mcu/timing.mli: Format
