lib/mcu/region.mli: Format
