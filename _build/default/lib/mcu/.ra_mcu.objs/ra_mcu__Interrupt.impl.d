lib/mcu/interrupt.ml: Cpu Hashtbl Memory
