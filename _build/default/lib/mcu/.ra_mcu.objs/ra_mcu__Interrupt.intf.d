lib/mcu/interrupt.mli: Cpu
