lib/mcu/energy.mli:
