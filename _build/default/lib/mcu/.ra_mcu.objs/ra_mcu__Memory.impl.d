lib/mcu/memory.ml: Bytes Char Format Fun Hashtbl Int64 List Printf Region String
