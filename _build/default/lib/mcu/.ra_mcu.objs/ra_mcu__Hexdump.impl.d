lib/mcu/hexdump.ml: Buffer Char Clock Cpu Device Ea_mpu Energy Format List Memory Printf Region String
