lib/mcu/memory.mli: Region
