lib/mcu/secure_boot.ml: Cpu Ea_mpu Interrupt List Memory Ra_crypto Region String
