lib/mcu/device.mli: Clock Cpu Ea_mpu Energy Interrupt Memory
