lib/mcu/clock.ml: Cpu Int64 Interrupt Option
