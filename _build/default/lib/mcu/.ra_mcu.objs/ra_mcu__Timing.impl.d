lib/mcu/timing.ml: Float Format Int64
