lib/mcu/energy.ml: Float Int64
