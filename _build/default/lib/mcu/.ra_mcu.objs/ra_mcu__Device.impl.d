lib/mcu/device.ml: Clock Cpu Ea_mpu Energy Int64 Interrupt List Memory Printf Ra_crypto Region String Timing
