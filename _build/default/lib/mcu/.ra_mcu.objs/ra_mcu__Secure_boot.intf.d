lib/mcu/secure_boot.mli: Cpu Ea_mpu Interrupt Memory
