(** Human-readable views of device state for the CLI and debugging:
    classic hex+ASCII memory dumps and a whole-platform report (memory
    map, EA-MPU rules, protected cells, clock, battery). *)

val dump : Memory.t -> addr:int -> len:int -> string
(** 16-byte rows: offset, hex bytes, printable ASCII. *)

val region_table : Memory.t -> string
(** One row per region: name, kind, range, size. *)

val rule_table : Ea_mpu.t -> string
(** The EA-MPU's programmed rules and lock state. *)

val device_report : Device.t -> string
(** The full platform: regions, rules, counter/clock/battery state. *)
