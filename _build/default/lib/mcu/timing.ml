let siskiyou_hz = 24_000_000

let cycles_of_ms ?(hz = siskiyou_hz) ms =
  Int64.of_float (Float.round (ms *. float_of_int hz /. 1000.0))

let ms_of_cycles ?(hz = siskiyou_hz) cycles =
  Int64.to_float cycles *. 1000.0 /. float_of_int hz

let hmac_sha1_fixed_ms = 0.340
let hmac_sha1_per_block_ms = 0.092
let aes128_key_expansion_ms = 0.074
let aes128_encrypt_block_ms = 0.288
let aes128_decrypt_block_ms = 0.570
let speck64_key_expansion_ms = 0.016
let speck64_encrypt_block_ms = 0.017
let speck64_decrypt_block_ms = 0.015
let ecdsa_sign_ms = 183.464
let ecdsa_verify_ms = 170.907

let blocks_of ~block_size len = (len + block_size - 1) / block_size

let hmac_sha1_cycles ~bytes_len =
  let blocks = blocks_of ~block_size:64 bytes_len in
  Int64.add
    (cycles_of_ms hmac_sha1_fixed_ms)
    (Int64.mul (Int64.of_int blocks) (cycles_of_ms hmac_sha1_per_block_ms))

let block_cipher_cycles ~key_exp_ms ~per_block_ms ~block_size ~include_key_expansion
    ~bytes_len =
  let blocks = blocks_of ~block_size bytes_len in
  let base = if include_key_expansion then cycles_of_ms key_exp_ms else 0L in
  Int64.add base (Int64.mul (Int64.of_int blocks) (cycles_of_ms per_block_ms))

let aes128_cbc_cycles ?(include_key_expansion = true) ~bytes_len ~direction () =
  let per_block_ms =
    match direction with
    | `Encrypt -> aes128_encrypt_block_ms
    | `Decrypt -> aes128_decrypt_block_ms
  in
  block_cipher_cycles ~key_exp_ms:aes128_key_expansion_ms ~per_block_ms ~block_size:16
    ~include_key_expansion ~bytes_len

let speck64_cbc_cycles ?(include_key_expansion = true) ~bytes_len ~direction () =
  let per_block_ms =
    match direction with
    | `Encrypt -> speck64_encrypt_block_ms
    | `Decrypt -> speck64_decrypt_block_ms
  in
  block_cipher_cycles ~key_exp_ms:speck64_key_expansion_ms ~per_block_ms ~block_size:8
    ~include_key_expansion ~bytes_len

let ecdsa_sign_cycles = cycles_of_ms ecdsa_sign_ms
let ecdsa_verify_cycles = cycles_of_ms ecdsa_verify_ms

let memory_mac_cycles ~bytes_len = hmac_sha1_cycles ~bytes_len
let memory_mac_ms ~bytes_len = ms_of_cycles (memory_mac_cycles ~bytes_len)

type auth_scheme =
  | Auth_hmac_sha1
  | Auth_aes128_cbc_mac
  | Auth_speck64_cbc_mac
  | Auth_ecdsa_verify

let auth_scheme_message_bits = function
  | Auth_hmac_sha1 -> 512
  | Auth_aes128_cbc_mac -> 256
  | Auth_speck64_cbc_mac -> 64
  | Auth_ecdsa_verify -> 160

let request_auth_cycles ?(precomputed_key_schedule = false) scheme =
  let include_key_expansion = not precomputed_key_schedule in
  let bytes_len = auth_scheme_message_bits scheme / 8 in
  match scheme with
  | Auth_hmac_sha1 -> hmac_sha1_cycles ~bytes_len
  | Auth_aes128_cbc_mac ->
    aes128_cbc_cycles ~include_key_expansion ~bytes_len ~direction:`Encrypt ()
  | Auth_speck64_cbc_mac ->
    speck64_cbc_cycles ~include_key_expansion ~bytes_len ~direction:`Encrypt ()
  | Auth_ecdsa_verify -> ecdsa_verify_cycles

let request_auth_ms ?precomputed_key_schedule scheme =
  ms_of_cycles (request_auth_cycles ?precomputed_key_schedule scheme)

let pp_auth_scheme fmt = function
  | Auth_hmac_sha1 -> Format.pp_print_string fmt "SHA1-HMAC"
  | Auth_aes128_cbc_mac -> Format.pp_print_string fmt "AES-128 CBC-MAC"
  | Auth_speck64_cbc_mac -> Format.pp_print_string fmt "Speck 64/128 CBC-MAC"
  | Auth_ecdsa_verify -> Format.pp_print_string fmt "ECDSA secp160r1"
