(** Named address ranges of the simulated MCU's memory map (Figure 1 of
    the paper: ROM holding [Code_attest] and the boot code, RAM, Flash
    with application code, and memory-mapped I/O such as the EA-MPU's
    configuration registers). *)

type kind =
  | Rom (* mask ROM: inherently write-protected *)
  | Ram
  | Flash
  | Mmio (* memory-mapped peripheral registers *)

type t = {
  name : string;
  base : int;
  size : int;
  kind : kind;
}

val make : name:string -> base:int -> size:int -> kind:kind -> t
(** @raise Invalid_argument on non-positive size or negative base. *)

val limit : t -> int
(** One past the last valid address. *)

val contains : t -> int -> bool
val overlaps : t -> t -> bool

val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit
