type image = { image_name : string; code : string }

type config = {
  reference_digest : string;
  protection_rules : Ea_mpu.rule list;
  lock_mpu : bool;
  enable_interrupts : bool;
}

type outcome =
  | Booted
  | Rejected_bad_image of { expected : string; measured : string }

let digest_image image = Ra_crypto.Sha256.digest image.code

let install_image memory ~region image =
  let r = Memory.region_named memory region in
  if String.length image.code > r.Region.size then
    invalid_arg "Secure_boot.install_image: image larger than region";
  Memory.write_bytes memory r.Region.base image.code

let measure_region memory ~region ~image_len =
  let r = Memory.region_named memory region in
  Ra_crypto.Sha256.digest (Memory.read_bytes memory r.Region.base image_len)

let boot cpu interrupt config ~region ~image_len =
  Cpu.with_context cpu "rom_boot" (fun () ->
      let measured = measure_region (Cpu.memory cpu) ~region ~image_len in
      if not (Ra_crypto.Hexutil.equal_ct measured config.reference_digest) then
        Rejected_bad_image { expected = config.reference_digest; measured }
      else begin
        let mpu = Cpu.mpu cpu in
        List.iter (Ea_mpu.program mpu) config.protection_rules;
        if config.lock_mpu then Ea_mpu.lock mpu;
        (match interrupt with
        | Some intr when config.enable_interrupts -> Interrupt.enable_all_raw intr
        | Some _ | None -> ());
        Booted
      end)
