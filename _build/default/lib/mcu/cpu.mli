(** The execution engine of the simulated MCU: every software memory
    access is attributed to the *currently executing code region* and
    mediated by the {!Ea_mpu}. This is what makes the paper's protection
    claims testable — malware runs with a different execution context
    than [Code_attest] and really is denied access to the key, the
    counter, and the clock state.

    The CPU also carries the free-running cycle counter (24 MHz on the
    modeled Siskiyou Peak) from which clocks, timing and energy derive.
    Cycles advance for two reasons: executed work ({!consume_cycles},
    charged as active energy) and idle time passing ({!idle_cycles},
    charged as sleep energy) — the hardware clock keeps counting in
    sleep, which the paper's clock designs rely on. *)

type fault = {
  fault_code : string; (* executing region *)
  fault_addr : int;
  fault_mode : Ea_mpu.mode;
}

exception Protection_fault of fault

type advance = Work | Idle

type t

val create : Memory.t -> Ea_mpu.t -> clock_hz:int -> t

val memory : t -> Memory.t
val mpu : t -> Ea_mpu.t
val clock_hz : t -> int

val cycles : t -> int64
(** Free-running counter: work + idle. *)

val work_cycles : t -> int64
(** Cycles spent executing (the energy-relevant share). *)

val consume_cycles : t -> int64 -> unit
(** Advance the counter by executed work. *)

val idle_cycles : t -> int64 -> unit
(** Advance the counter by idle (sleeping) time. *)

val idle_seconds : t -> float -> unit
(** [idle_cycles] expressed in wall-clock time at the core frequency. *)

val on_advance : t -> (t -> int64 -> advance -> unit) -> unit
(** Register a callback fired after every advance (timer peripherals,
    energy meter), with the cycle delta and its nature. *)

val elapsed_seconds : t -> float

val context : t -> string
(** Name of the code region currently executing ("untrusted" initially). *)

val with_context : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk as code of the given region, restoring the previous
    context afterwards (even on exception). *)

val faults : t -> fault list
(** All protection faults observed so far, newest first. *)

(** Mediated accesses: raise {!Protection_fault} (and record it) when the
    EA-MPU denies, and propagate {!Memory.Bus_fault} on unmapped
    addresses. *)

val load_byte : t -> int -> int
val store_byte : t -> int -> int -> unit
val load_bytes : t -> int -> int -> string
val store_bytes : t -> int -> string -> unit
val load_u32 : t -> int -> int
val store_u32 : t -> int -> int -> unit
val load_u64 : t -> int -> int64
val store_u64 : t -> int -> int64 -> unit
