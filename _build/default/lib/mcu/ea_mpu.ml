type who = Anyone | Code_in of string list | Nobody

type rule = {
  rule_name : string;
  data_base : int;
  data_size : int;
  read_by : who;
  write_by : who;
}

type mode = Read | Write

exception Locked
exception Capacity_exceeded

type t = {
  capacity : int;
  mutable rules : rule list;
  mutable locked : bool;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Ea_mpu.create: negative capacity";
  { capacity; rules = []; locked = false }

let capacity t = t.capacity
let rules t = t.rules
let rule_count t = List.length t.rules
let is_locked t = t.locked

let program t rule =
  if t.locked then raise Locked;
  if List.length t.rules >= t.capacity then raise Capacity_exceeded;
  t.rules <- t.rules @ [ rule ]

let clear t =
  if t.locked then raise Locked;
  t.rules <- []

let lock t = t.locked <- true

let covers rule addr = addr >= rule.data_base && addr < rule.data_base + rule.data_size

let granted who ~code =
  match who with
  | Anyone -> true
  | Code_in names -> List.mem code names
  | Nobody -> false

let permits rule ~code mode =
  match mode with
  | Read -> granted rule.read_by ~code
  | Write -> granted rule.write_by ~code

let check t ~code ~addr mode =
  let covering = List.filter (fun r -> covers r addr) t.rules in
  match covering with
  | [] -> true (* unenrolled memory is unprotected *)
  | rules -> List.exists (fun r -> permits r ~code mode) rules

let check_range t ~code ~addr ~len mode =
  (* The decision is constant between rule boundaries, so checking one
     representative byte per segment suffices — this keeps whole-memory
     attestation sweeps (512 KB) cheap. *)
  if len <= 0 then invalid_arg "Ea_mpu.check_range: non-positive length";
  let last = addr + len - 1 in
  let boundaries =
    List.concat_map
      (fun r ->
        let points = [ r.data_base; r.data_base + r.data_size ] in
        List.filter (fun p -> p > addr && p <= last) points)
      t.rules
  in
  let samples = addr :: boundaries in
  List.for_all (fun a -> check t ~code ~addr:a mode) samples
