(** The flat physical memory of the simulated device, organized as
    non-overlapping {!Region}s. Access through this module is *raw*
    (hardware view, no protection) — software accesses are mediated by
    {!Cpu} + {!Ea_mpu}. ROM raw-writes are only allowed during device
    construction ("mask programming") and fault afterwards. *)

type t

exception Bus_fault of string
(** Raised on access outside any region, or on a ROM write after sealing. *)

val create : Region.t list -> t
(** @raise Invalid_argument on overlapping regions. *)

val regions : t -> Region.t list
val region_named : t -> string -> Region.t
(** @raise Not_found *)

val region_of_addr : t -> int -> Region.t option

val seal_rom : t -> unit
(** After sealing, raw writes to ROM regions raise {!Bus_fault}. *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit
val read_bytes : t -> int -> int -> string
val write_bytes : t -> int -> string -> unit

val read_u32 : t -> int -> int
(** Little-endian 32-bit load. *)

val write_u32 : t -> int -> int -> unit

val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit

val copy_raw : t -> base:int -> string -> unit
(** Write bytes ignoring ROM sealing. This is not a software path: it
    models physically persistent silicon contents carried across a power
    cycle (see [Device.power_cycle]). *)
