(** Interrupt machinery of the simulated MCU: an interrupt descriptor
    table (IDT) *held in ordinary memory* — so it can be protected by an
    EA-MPU rule or tampered with by malware, exactly the attack surface
    §6.2 discusses for the SW-clock — plus a registry binding entry-point
    addresses to trusted handler code.

    Dispatch model: when a vector fires, the hardware reads the 4-byte
    entry address from the IDT (raw read, hardware is not subject to the
    MPU), looks the address up in the registry of *installed code entry
    points*, and runs that handler in its own execution context. A
    tampered IDT entry that points at no registered entry point makes the
    interrupt vanish — which is how the adversary "effectively stops the
    real-time clock" in the paper. A global/timer enable bit lives at a
    memory-mapped control address so that "disabling the timer interrupt"
    is also a (protectable) memory write. *)

type t

type stats = {
  delivered : int;
  lost_no_handler : int; (* IDT pointed at unregistered code *)
  suppressed_disabled : int; (* enable bit was cleared *)
}

val create : Cpu.t -> idt_base:int -> vectors:int -> ctrl_addr:int -> t
(** [ctrl_addr] holds the enable bits; bit 0 = global enable. The boot
    code must call {!enable_all_raw} (or software must set the bit). *)

val idt_base : t -> int
val idt_size : t -> int
(** Bytes occupied by the IDT ([4 * vectors]). *)

val ctrl_addr : t -> int

val register_handler :
  t -> entry_addr:int -> code_region:string -> handler:(unit -> unit) -> unit
(** Declare that executable code with the given entry address exists and
    belongs to [code_region]. Dispatch runs [handler] inside
    [Cpu.with_context] for that region. *)

val set_vector_raw : t -> vector:int -> entry_addr:int -> unit
(** Write an IDT entry bypassing the MPU (boot-time initialization). *)

val set_vector : t -> vector:int -> entry_addr:int -> unit
(** Write an IDT entry as the currently executing software; subject to
    the EA-MPU (raises {!Cpu.Protection_fault} if the IDT is locked). *)

val vector_entry : t -> vector:int -> int

val enable_all_raw : t -> unit

val set_enabled : t -> bool -> unit
(** Software write of the enable bit (mediated; protectable). *)

val enabled : t -> bool

val raise_irq : t -> vector:int -> unit
(** Hardware raises the vector: dispatch per the model above. *)

val stats : t -> stats
