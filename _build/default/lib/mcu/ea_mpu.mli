(** Execution-aware memory protection (the EA-MAC primitive of §6.1,
    realized as TrustLite's EA-MPU): memory accesses are allowed or denied
    based on *which code region is currently executing*.

    Semantics: a rule protects a data range and says, per access mode, who
    may perform it. An address covered by at least one rule is accessible
    only if some covering rule grants the executing code region the
    requested mode; an address covered by no rule is unprotected
    (accessible to everybody). This is the TrustLite model where only
    security-critical state is enrolled.

    The rule table itself is programmable by software until [lock] — the
    paper's secure-boot step programs the rules and then locks the table
    by making its own configuration registers read-only. *)

type who =
  | Anyone
  | Code_in of string list (* names of code regions *)
  | Nobody

type rule = {
  rule_name : string;
  data_base : int;
  data_size : int;
  read_by : who;
  write_by : who;
}

type t

type mode = Read | Write

exception Locked
(** Raised when programming is attempted after lockdown. *)

exception Capacity_exceeded
(** Raised when more rules are added than the synthesized table holds. *)

val create : capacity:int -> t
(** [capacity] is the #r of Table 3: the number of rule slots synthesized
    into the hardware. *)

val capacity : t -> int
val rules : t -> rule list
val rule_count : t -> int
val is_locked : t -> bool

val program : t -> rule -> unit
(** Install a rule. @raise Locked after lockdown, @raise Capacity_exceeded
    when the table is full. *)

val clear : t -> unit
(** Remove all rules (e.g. malware disabling protection before lockdown).
    @raise Locked after lockdown. *)

val lock : t -> unit
(** Irreversibly freeze the rule table (Fig. 1: "EA-MPU set up at system
    start by a secure boot mechanism" then locked). *)

val check : t -> code:string -> addr:int -> mode -> bool
(** Access decision for one byte. *)

val check_range : t -> code:string -> addr:int -> len:int -> mode -> bool
(** Decision for a contiguous range (all bytes must be allowed).
    @raise Invalid_argument on non-positive length. *)
