(** The prover's real-time clock, in the paper's two hardware shapes
    (§6.2, Figure 1):

    - {b dedicated counter register} ([create_hw_counter]): a read-only
      hardware register incremented every [2^divider_log2] cycles. Wide
      enough (64 bit) it never wraps in the device lifetime; a 32-bit
      register needs a divider to push wrap-around out (§6.3's
      "divide by 2^20 → 6 years at 42 ms resolution" example).

    - {b SW-clock} ([create_sw_clock]): a short hardware counter
      [Clock_LSB] that interrupts on wrap-around; trusted [Code_clock]
      maintains the high-order share [Clock_MSB] in writable memory, so
      [Clock_MSB ++ Clock_LSB] forms the clock. The MSB cell and the IDT
      are ordinary memory — protect them with EA-MPU rules or the roaming
      adversary rolls the clock back / stops it.

    The hardware-counter register has no memory address and cannot be
    written by software at all; [Clock_MSB] writes go through the MPU. *)

type t

val create_hw_counter : Cpu.t -> width:int -> divider_log2:int -> t
(** @raise Invalid_argument unless [1 <= width <= 64] and divider ≥ 0. *)

val create_sw_clock :
  Cpu.t ->
  Interrupt.t ->
  lsb_width:int ->
  divider_log2:int ->
  msb_addr:int ->
  timer_vector:int ->
  handler_entry:int ->
  handler_region:string ->
  t
(** Installs the wrap-around listener on the CPU cycle counter, registers
    [Code_clock]'s entry point and points the IDT vector at it. The
    handler swallows protection faults (a misconfigured MPU silently
    stops the clock, it does not crash the device — that *is* the
    attack's effect). *)

type kind = Hw_counter | Sw_clock

val kind : t -> kind

val ticks : t -> int64
(** Current clock value in ticks. For the SW-clock this performs a
    software (MPU-mediated) read of [Clock_MSB] in the current execution
    context. *)

val seconds : t -> float
(** [ticks] scaled by the tick period. *)

val resolution_seconds : t -> float
val msb_addr : t -> int option
val lsb_width : t -> int option
val handler_entry : t -> int option
val timer_vector : t -> int option

val wraparound_seconds : hz:int -> width:int -> divider_log2:int -> float
(** Lifetime before a counter of [width] bits with the given divider
    wraps: [2^(width+divider) / hz]. *)

val wraparound_years : hz:int -> width:int -> divider_log2:int -> float
