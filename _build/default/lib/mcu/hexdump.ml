let printable c = if Char.code c >= 0x20 && Char.code c < 0x7f then c else '.'

let dump memory ~addr ~len =
  let buf = Buffer.create (len * 4) in
  let rec row off =
    if off < len then begin
      let n = min 16 (len - off) in
      let bytes = Memory.read_bytes memory (addr + off) n in
      Buffer.add_string buf (Printf.sprintf "%08x  " (addr + off));
      for i = 0 to 15 do
        if i < n then Buffer.add_string buf (Printf.sprintf "%02x " (Char.code bytes.[i]))
        else Buffer.add_string buf "   ";
        if i = 7 then Buffer.add_char buf ' '
      done;
      Buffer.add_string buf " |";
      String.iter (fun c -> Buffer.add_char buf (printable c)) bytes;
      Buffer.add_string buf "|\n";
      row (off + 16)
    end
  in
  row 0;
  Buffer.contents buf

let region_table memory =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-16s %-6s %-22s %s\n" "region" "kind" "range" "size");
  List.iter
    (fun r ->
      let kind = Format.asprintf "%a" Region.pp_kind r.Region.kind in
      Buffer.add_string buf
        (Printf.sprintf "%-16s %-6s 0x%06x .. 0x%06x   %6d B\n" r.Region.name kind
           r.Region.base
           (Region.limit r - 1)
           r.Region.size))
    (Memory.regions memory);
  Buffer.contents buf

let pp_who fmt = function
  | Ea_mpu.Anyone -> Format.pp_print_string fmt "anyone"
  | Ea_mpu.Nobody -> Format.pp_print_string fmt "nobody"
  | Ea_mpu.Code_in regions ->
    Format.pp_print_string fmt (String.concat "," regions)

let rule_table mpu =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "EA-MPU: %d/%d rules, %s\n" (Ea_mpu.rule_count mpu)
       (Ea_mpu.capacity mpu)
       (if Ea_mpu.is_locked mpu then "LOCKED" else "unlocked"));
  List.iter
    (fun r ->
      let who w = Format.asprintf "%a" pp_who w in
      Buffer.add_string buf
        (Printf.sprintf "  %-14s 0x%06x+%-5d read:%-18s write:%s\n" r.Ea_mpu.rule_name
           r.Ea_mpu.data_base r.Ea_mpu.data_size
           (who r.Ea_mpu.read_by)
           (who r.Ea_mpu.write_by)))
    (Ea_mpu.rules mpu);
  Buffer.contents buf

let device_report device =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (region_table (Device.memory device));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (rule_table (Device.mpu device));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "counter_R: %Ld\n"
       (Memory.read_u64 (Device.memory device) (Device.counter_addr device)));
  (match Device.clock device with
  | None -> Buffer.add_string buf "clock: none\n"
  | Some clock ->
    Buffer.add_string buf
      (Printf.sprintf "clock: %s, %.3f s (resolution %.2e s)\n"
         (match Clock.kind clock with
         | Clock.Hw_counter -> "hardware counter"
         | Clock.Sw_clock -> "SW-clock (LSB+MSB)")
         (Clock.seconds clock) (Clock.resolution_seconds clock)));
  let energy = Device.energy device in
  Buffer.add_string buf
    (Printf.sprintf "battery: %.6f J consumed, %.1f J remaining\n"
       (Energy.consumed_joules energy) (Energy.remaining_joules energy));
  Buffer.add_string buf
    (Printf.sprintf "cpu: %Ld cycles total, %Ld executing\n"
       (Cpu.cycles (Device.cpu device))
       (Cpu.work_cycles (Device.cpu device)));
  Buffer.contents buf
