(** Cycle-cost model of cryptographic primitives on the modeled prover,
    calibrated to Table 1 of the paper (Intel Siskiyou Peak at 24 MHz).

    All Table 1 entries are milliseconds; we store them as cycle counts at
    24 MHz so the simulated device does its own arithmetic, and [ms_*]
    accessors recover the paper's numbers exactly. The §3.1 memory-MAC
    formula and the §4.1 request-authentication comparison are derived
    functions, not constants. *)

val siskiyou_hz : int
(** 24 MHz. *)

val cycles_of_ms : ?hz:int -> float -> int64
val ms_of_cycles : ?hz:int -> int64 -> float

(** {2 Table 1 constants (ms on the 24 MHz prover)} *)

val hmac_sha1_fixed_ms : float (* 0.340 *)
val hmac_sha1_per_block_ms : float (* 0.092, per 64-byte block *)
val aes128_key_expansion_ms : float (* 0.074 *)
val aes128_encrypt_block_ms : float (* 0.288, per 16-byte block *)
val aes128_decrypt_block_ms : float (* 0.570 *)
val speck64_key_expansion_ms : float (* 0.016 *)
val speck64_encrypt_block_ms : float (* 0.017, per 8-byte block *)
val speck64_decrypt_block_ms : float (* 0.015 *)
val ecdsa_sign_ms : float (* 183.464 *)
val ecdsa_verify_ms : float (* 170.907 *)

(** {2 Derived costs, in cycles at 24 MHz} *)

val hmac_sha1_cycles : bytes_len:int -> int64
(** Fixed cost + one block cost per started 64-byte block. *)

val aes128_cbc_cycles : ?include_key_expansion:bool -> bytes_len:int -> direction:[ `Encrypt | `Decrypt ] -> unit -> int64

val speck64_cbc_cycles : ?include_key_expansion:bool -> bytes_len:int -> direction:[ `Encrypt | `Decrypt ] -> unit -> int64

val ecdsa_sign_cycles : int64
val ecdsa_verify_cycles : int64

val memory_mac_cycles : bytes_len:int -> int64
(** §3.1: SHA1-HMAC over the prover's writable memory. For the paper's
    512 KB this is ≈ 754 ms at 24 MHz. *)

val memory_mac_ms : bytes_len:int -> float

(** {2 §4.1 request-authentication comparison} *)

type auth_scheme =
  | Auth_hmac_sha1
  | Auth_aes128_cbc_mac
  | Auth_speck64_cbc_mac
  | Auth_ecdsa_verify

val auth_scheme_message_bits : auth_scheme -> int
(** The paper's one-block message assumption: HMAC 512, AES 256 (two
    128-bit blocks, as printed), Speck 64, ECC 160. *)

val request_auth_cycles : ?precomputed_key_schedule:bool -> auth_scheme -> int64
(** Cost for the prover to authenticate one attestation request. *)

val request_auth_ms : ?precomputed_key_schedule:bool -> auth_scheme -> float

val pp_auth_scheme : Format.formatter -> auth_scheme -> unit
