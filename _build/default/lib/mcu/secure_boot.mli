(** Secure boot (§6.2 "Secure Boot"): at reset, immutable boot code
    measures the software image, compares it with a reference digest
    provisioned in ROM, and only then runs the initialization that
    programs the EA-MPU protection rules and locks the table. If the
    adversary modified the image (e.g. to skip rule programming), boot is
    refused; if the rules were programmed but the table not locked, any
    later compromised software can simply reprogram them — which is the
    gap secure boot closes. *)

type image = { image_name : string; code : string }

type config = {
  reference_digest : string; (* SHA-256 of the trusted image *)
  protection_rules : Ea_mpu.rule list;
  lock_mpu : bool;
  enable_interrupts : bool;
}

type outcome =
  | Booted
  | Rejected_bad_image of { expected : string; measured : string }

val digest_image : image -> string
(** SHA-256 measurement of the image contents. *)

val install_image : Memory.t -> region:string -> image -> unit
(** Load the image into the given region (raw write; this is the external
    programmer / the adversary writing flash while the device is off).
    @raise Invalid_argument if the image exceeds the region. *)

val measure_region : Memory.t -> region:string -> image_len:int -> string
(** What the boot ROM actually hashes: the first [image_len] bytes of the
    region. *)

val boot :
  Cpu.t -> Interrupt.t option -> config -> region:string -> image_len:int -> outcome
(** Run the boot sequence in the "rom_boot" execution context. *)
