(** Interpreted interrupt handlers: binds an entry point in device memory
    to a routine executed by {!Core} when the vector fires, with full
    register-context save/restore (what ISR hardware does).

    This closes the loop on Figure 1b: [Clock_LSB] wraps → the interrupt
    controller consults the (tamperable, protectable) IDT → control
    enters an *interpreted* [Code_clock] routine in ROM whose [store] to
    [Clock_MSB] is mediated by the EA-MPU against the handler's PC
    region. Handler routines terminate with [halt]; the dispatcher
    restores the interrupted context. *)

val install_handler :
  Core.t ->
  Ra_mcu.Interrupt.t ->
  vector:int ->
  entry:int ->
  ?max_steps:int ->
  unit ->
  unit ->
  int
(** [install_handler core interrupt ~vector ~entry ()] registers the code
    at [entry] as the handler for [vector] and points the IDT at it
    (boot-time raw write). When the vector fires, the core's registers,
    PC and SP are saved, the routine runs from [entry] (bounded by
    [max_steps], default 10_000), and the context is restored. A handler
    that traps (e.g. its store is denied by the MPU) is abandoned
    silently — the interrupt's effect is simply lost, which is the
    failure mode the paper's clock-freezing attack produces.

    Returns a counter: calling it gives the number of activations that
    ran to completion so far. *)
