(** The instruction set of the interpreted MCU core.

    The paper's platforms (SMART's and TrustLite's cores, openMSP430 —
    its reference [11] for the clock design) are small 16-bit machines;
    the EA-MAC primitive is defined at the granularity of the *program
    counter*. This module defines a compact load/store ISA in that
    spirit, with a binary encoding so programs live in the device's real
    memory map and the PC walks real addresses — which is what lets the
    EA-MPU attribute every data access to the code region that issued it.

    Shape: 16-bit instruction words, sixteen 32-bit registers
    [r0]..[r15] (the device memory map is wider than 16 bits, as on
    MSP430X). The PC and SP are architectural state of {!Core}, not
    register-file entries, which keeps the encoding regular.

    Encoding: a first word [[15:12] opcode | [11:8] dst | [7:4] src |
    [3:0] mode], followed by 0–2 extension words: 32-bit immediates and
    jump targets take two little-endian words, load/store offsets one
    signed word. *)

type reg = int
(** Register index 0..15. *)

type operand =
  | Reg of reg
  | Imm of int (* 32-bit immediate, two extension words *)

type condition = Always | If_zero | If_not_zero | If_carry | If_not_carry | If_negative

type t =
  | Nop
  | Halt
  | Mov of reg * operand (* dst <- src *)
  | Add of reg * operand
  | Sub of reg * operand
  | Cmp of reg * operand (* flags only *)
  | And of reg * operand
  | Or of reg * operand
  | Xor of reg * operand
  | Shl of reg * operand (* logical shift left, amount mod 32 *)
  | Shr of reg * operand (* logical shift right *)
  | Rol of reg * operand (* rotate left *)
  | Load of reg * reg * int (* dst <- mem32[src + offset] *)
  | Store of reg * reg * int (* mem32[dst + offset] <- src *)
  | Loadb of reg * reg * int (* dst <- mem8[src + offset] *)
  | Storeb of reg * reg * int (* mem8[dst + offset] <- src *)
  | Jump of condition * int (* absolute byte address *)
  | Call of int
  | Ret
  | Push of reg
  | Pop of reg

val size_words : t -> int
(** 1, 2 or 3. *)

val encode : t -> int list
(** 16-bit words.
    @raise Invalid_argument on out-of-range fields (registers 0..15,
    offsets −32768..32767, addresses/immediates 32-bit). *)

val decode : fetch:(int -> int) -> at:int -> t * int
(** [decode ~fetch ~at] decodes the instruction whose first word is at
    word-index [at]; [fetch i] must return the 16-bit word at word-index
    [i]. Returns the instruction and its size in words.
    @raise Invalid_argument on an illegal encoding. *)

val pp : Format.formatter -> t -> unit
