type program = {
  origin : int;
  instructions : Insn.t list;
  labels : (string * int) list;
}

type error = { line : int; message : string }

exception Fail of string

(* ---- token-level helpers ---- *)

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let trim = String.trim

let split_operands s =
  (* split on commas, then trim *)
  String.split_on_char ',' s |> List.map trim |> List.filter (fun s -> s <> "")

let split_mnemonic line =
  let line = trim line in
  match String.index_opt line ' ' with
  | None ->
    (match String.index_opt line '\t' with
    | None -> (String.lowercase_ascii line, "")
    | Some i ->
      ( String.lowercase_ascii (String.sub line 0 i),
        trim (String.sub line i (String.length line - i)) ))
  | Some i ->
    ( String.lowercase_ascii (String.sub line 0 i),
      trim (String.sub line i (String.length line - i)) )

let parse_reg s =
  let s = String.lowercase_ascii (trim s) in
  if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r when r >= 0 && r <= 15 -> r
    | Some _ | None -> raise (Fail (Printf.sprintf "bad register %S" s))
  else raise (Fail (Printf.sprintf "expected register, got %S" s))

let parse_number s =
  match int_of_string_opt s (* handles 0x..., 0b..., negatives *) with
  | Some v -> v
  | None -> raise (Fail (Printf.sprintf "bad number %S" s))

let is_label_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let looks_like_label s = String.length s > 0 && String.for_all is_label_char s
                         && not (s.[0] >= '0' && s.[0] <= '9')

(* a value that may reference a label, resolved in pass two *)
type value = Number of int | Label_ref of string

let parse_value s =
  let s = trim s in
  if looks_like_label s then Label_ref s else Number (parse_number s)

let parse_operand s =
  let s = trim s in
  if String.length s > 0 && s.[0] = '#' then
    `Imm (parse_value (String.sub s 1 (String.length s - 1)))
  else `Reg (parse_reg s)

(* [rN], [rN+k], [rN-k] *)
let parse_mem s =
  let s = trim s in
  let n = String.length s in
  if n < 4 || s.[0] <> '[' || s.[n - 1] <> ']' then
    raise (Fail (Printf.sprintf "expected [reg+/-offset], got %S" s));
  let inner = String.sub s 1 (n - 2) in
  let plus = String.index_opt inner '+' in
  let minus =
    (* a '-' that is not the leading character of the register *)
    match String.index_opt inner '-' with Some 0 -> None | x -> x
  in
  match (plus, minus) with
  | Some i, _ ->
    (parse_reg (String.sub inner 0 i),
     parse_number (trim (String.sub inner (i + 1) (String.length inner - i - 1))))
  | None, Some i ->
    (parse_reg (String.sub inner 0 i),
     - parse_number (trim (String.sub inner (i + 1) (String.length inner - i - 1))))
  | None, None -> (parse_reg inner, 0)

(* ---- statement parsing (pass one: values unresolved) ---- *)

type stmt =
  | S_label of string
  | S_insn of pre_insn

and pre_insn =
  | P_simple of Insn.t (* fully resolved already *)
  | P_alu of string * int * [ `Reg of int | `Imm of value ]
  | P_jump of Insn.condition * value
  | P_call of value

let alu_of_name name d s =
  let operand = match s with `Reg r -> Insn.Reg r | `Imm (Number v) -> Insn.Imm v
    | `Imm (Label_ref _) -> raise (Fail "unresolved label")
  in
  match name with
  | "mov" -> Insn.Mov (d, operand)
  | "add" -> Insn.Add (d, operand)
  | "sub" -> Insn.Sub (d, operand)
  | "cmp" -> Insn.Cmp (d, operand)
  | "and" -> Insn.And (d, operand)
  | "or" -> Insn.Or (d, operand)
  | "xor" -> Insn.Xor (d, operand)
  | "shl" -> Insn.Shl (d, operand)
  | "shr" -> Insn.Shr (d, operand)
  | "rol" -> Insn.Rol (d, operand)
  | _ -> raise (Fail (Printf.sprintf "unknown mnemonic %S" name))

let jump_condition = function
  | "jmp" -> Some Insn.Always
  | "jz" -> Some Insn.If_zero
  | "jnz" -> Some Insn.If_not_zero
  | "jc" -> Some Insn.If_carry
  | "jnc" -> Some Insn.If_not_carry
  | "jn" -> Some Insn.If_negative
  | _ -> None

let parse_line line =
  let body = trim (strip_comment line) in
  if body = "" then []
  else if String.length body > 1 && body.[String.length body - 1] = ':' then begin
    let name = trim (String.sub body 0 (String.length body - 1)) in
    if not (looks_like_label name) then raise (Fail (Printf.sprintf "bad label %S" name));
    [ S_label name ]
  end
  else begin
    let mnemonic, rest = split_mnemonic body in
    let ops = split_operands rest in
    match (mnemonic, ops) with
    | "nop", [] -> [ S_insn (P_simple Insn.Nop) ]
    | "halt", [] -> [ S_insn (P_simple Insn.Halt) ]
    | "ret", [] -> [ S_insn (P_simple Insn.Ret) ]
    | "push", [ r ] -> [ S_insn (P_simple (Insn.Push (parse_reg r))) ]
    | "pop", [ r ] -> [ S_insn (P_simple (Insn.Pop (parse_reg r))) ]
    | ("mov" | "add" | "sub" | "cmp" | "and" | "or" | "xor" | "shl" | "shr" | "rol"),
      [ d; s ] ->
      let d = parse_reg d in
      (match parse_operand s with
      | `Reg r -> [ S_insn (P_alu (mnemonic, d, `Reg r)) ]
      | `Imm v -> [ S_insn (P_alu (mnemonic, d, `Imm v)) ])
    | "load", [ d; m ] ->
      let base, off = parse_mem m in
      [ S_insn (P_simple (Insn.Load (parse_reg d, base, off))) ]
    | "loadb", [ d; m ] ->
      let base, off = parse_mem m in
      [ S_insn (P_simple (Insn.Loadb (parse_reg d, base, off))) ]
    | "store", [ m; s ] ->
      let base, off = parse_mem m in
      [ S_insn (P_simple (Insn.Store (base, parse_reg s, off))) ]
    | "storeb", [ m; s ] ->
      let base, off = parse_mem m in
      [ S_insn (P_simple (Insn.Storeb (base, parse_reg s, off))) ]
    | "call", [ target ] -> [ S_insn (P_call (parse_value target)) ]
    | name, [ target ] when jump_condition name <> None ->
      (match jump_condition name with
      | Some cond -> [ S_insn (P_jump (cond, parse_value target)) ]
      | None -> assert false)
    | name, ops ->
      raise
        (Fail (Printf.sprintf "cannot parse %S with %d operand(s)" name (List.length ops)))
  end

(* conservative size estimate before label resolution: label immediates
   always encode as 32-bit, so sizes are exact in pass one *)
let pre_size = function
  | P_simple insn -> Insn.size_words insn
  | P_alu (_, _, `Reg _) -> 1
  | P_alu (_, _, `Imm _) -> 3
  | P_jump _ | P_call _ -> 3

let resolve labels = function
  | Number v -> v
  | Label_ref name ->
    (match List.assoc_opt name labels with
    | Some addr -> addr
    | None -> raise (Fail (Printf.sprintf "undefined label %S" name)))

let finalize labels = function
  | P_simple insn -> insn
  | P_alu (name, d, `Reg r) -> alu_of_name name d (`Reg r)
  | P_alu (name, d, `Imm v) -> alu_of_name name d (`Imm (Number (resolve labels v)))
  | P_jump (cond, v) -> Insn.Jump (cond, resolve labels v)
  | P_call v -> Insn.Call (resolve labels v)

let assemble ~origin source =
  let lines = String.split_on_char '\n' source in
  try
    (* pass one: parse, lay out, collect labels *)
    let stmts =
      List.concat
        (List.mapi
           (fun i line ->
             try List.map (fun s -> (i + 1, s)) (parse_line line)
             with Fail msg -> raise (Fail (Printf.sprintf "line %d: %s" (i + 1) msg)))
           lines)
    in
    let _, labels, pre_rev =
      List.fold_left
        (fun (addr, labels, acc) (lineno, stmt) ->
          match stmt with
          | S_label name ->
            if List.mem_assoc name labels then
              raise (Fail (Printf.sprintf "line %d: duplicate label %S" lineno name));
            (addr, (name, addr) :: labels, acc)
          | S_insn pre -> (addr + (2 * pre_size pre), labels, (lineno, pre) :: acc))
        (origin, [], []) stmts
    in
    let labels = List.rev labels in
    let instructions =
      List.rev_map
        (fun (lineno, pre) ->
          try finalize labels pre
          with Fail msg -> raise (Fail (Printf.sprintf "line %d: %s" lineno msg)))
        pre_rev
    in
    Ok { origin; instructions; labels }
  with Fail message -> Error { line = 0; message }

let to_bytes program =
  let buf = Buffer.create 64 in
  List.iter
    (fun insn ->
      List.iter
        (fun w ->
          Buffer.add_char buf (Char.chr (w land 0xff));
          Buffer.add_char buf (Char.chr ((w lsr 8) land 0xff)))
        (Insn.encode insn))
    program.instructions;
  Buffer.contents buf

let load memory program =
  Ra_mcu.Memory.write_bytes memory program.origin (to_bytes program)

let label program name =
  match List.assoc_opt name program.labels with
  | Some addr -> addr
  | None -> raise Not_found

let size_bytes program = String.length (to_bytes program)

let disassemble_bytes ~origin bytes =
  let words = String.length bytes / 2 in
  let fetch i = Char.code bytes.[2 * i] lor (Char.code bytes.[(2 * i) + 1] lsl 8) in
  let rec loop at acc =
    if at >= words then List.rev acc
    else
      match Insn.decode ~fetch ~at with
      | insn, size when at + size <= words ->
        loop (at + size) ((origin + (2 * at), insn) :: acc)
      | _, _ -> List.rev acc
      | exception Invalid_argument _ -> List.rev acc
  in
  loop 0 []

let listing program =
  let bytes = to_bytes program in
  let buf = Buffer.create 256 in
  let label_at addr =
    List.filter_map (fun (n, a) -> if a = addr then Some n else None) program.labels
  in
  List.iter
    (fun (addr, insn) ->
      List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "%s:\n" n)) (label_at addr);
      let words = Insn.encode insn in
      let hex = String.concat " " (List.map (Printf.sprintf "%04x") words) in
      Buffer.add_string buf
        (Format.asprintf "  0x%06x  %-15s %a\n" addr hex Insn.pp insn))
    (disassemble_bytes ~origin:program.origin bytes);
  Buffer.contents buf

let pp_error fmt e = Format.fprintf fmt "%s" e.message
