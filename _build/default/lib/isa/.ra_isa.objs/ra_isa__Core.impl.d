lib/isa/core.ml: Array Format Hashtbl Insn Int64 List Option Printf Ra_mcu
