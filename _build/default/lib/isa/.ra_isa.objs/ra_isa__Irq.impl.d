lib/isa/irq.ml: Array Core Ra_mcu
