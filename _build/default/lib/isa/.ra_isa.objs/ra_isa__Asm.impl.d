lib/isa/asm.ml: Buffer Char Format Insn List Printf Ra_mcu String
