lib/isa/irq.mli: Core Ra_mcu
