lib/isa/asm.mli: Format Insn Ra_mcu
