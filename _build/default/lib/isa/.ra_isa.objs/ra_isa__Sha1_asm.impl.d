lib/isa/sha1_asm.ml: Asm Buffer Char Core Format Int64 List Printf Ra_mcu String
