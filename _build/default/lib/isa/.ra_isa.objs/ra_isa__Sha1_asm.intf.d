lib/isa/sha1_asm.mli: Ra_mcu
