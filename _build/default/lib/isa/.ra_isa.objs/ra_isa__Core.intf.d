lib/isa/core.mli: Format Ra_mcu
