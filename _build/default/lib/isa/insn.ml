type reg = int

type operand = Reg of reg | Imm of int

type condition = Always | If_zero | If_not_zero | If_carry | If_not_carry | If_negative

type t =
  | Nop
  | Halt
  | Mov of reg * operand
  | Add of reg * operand
  | Sub of reg * operand
  | Cmp of reg * operand
  | And of reg * operand
  | Or of reg * operand
  | Xor of reg * operand
  | Shl of reg * operand
  | Shr of reg * operand
  | Rol of reg * operand
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Loadb of reg * reg * int
  | Storeb of reg * reg * int
  | Jump of condition * int
  | Call of int
  | Ret
  | Push of reg
  | Pop of reg

(* opcode map; class 0 uses the dst nibble as a sub-opcode *)
let op_misc = 0 (* 0=nop 1=halt 2=ret *)
let op_mov = 1
let op_add = 2
let op_sub = 3
let op_cmp = 4
let op_and = 5
let op_or = 6
let op_xor = 7
let op_load = 8
let op_store = 9
let op_shift = 10 (* sub-op in mode bits [3:1]: 0 Shl, 1 Shr, 2 Rol *)
let op_loadb = 11 (* mode bit 1 selects store *)
let op_jump = 12
let op_call = 13
let op_push = 14
let op_pop = 15

let size_words = function
  | Nop | Halt | Ret | Push _ | Pop _ -> 1
  | Mov (_, Reg _) | Add (_, Reg _) | Sub (_, Reg _) | Cmp (_, Reg _)
  | And (_, Reg _) | Or (_, Reg _) | Xor (_, Reg _) ->
    1
  | Load _ | Store _ | Loadb _ | Storeb _ -> 2
  | Shl (_, Reg _) | Shr (_, Reg _) | Rol (_, Reg _) -> 1
  | Shl (_, Imm _) | Shr (_, Imm _) | Rol (_, Imm _) -> 3
  | Mov (_, Imm _) | Add (_, Imm _) | Sub (_, Imm _) | Cmp (_, Imm _)
  | And (_, Imm _) | Or (_, Imm _) | Xor (_, Imm _) ->
    3
  | Jump _ | Call _ -> 3

let check_reg r = if r < 0 || r > 15 then invalid_arg "Insn: register out of range"

let check_offset off =
  if off < -32768 || off > 32767 then invalid_arg "Insn: offset out of range"

let check_addr a = if a < 0 || a > 0xFFFFFFFF then invalid_arg "Insn: address out of range"

let word op dst src mode =
  ((op land 0xF) lsl 12) lor ((dst land 0xF) lsl 8) lor ((src land 0xF) lsl 4)
  lor (mode land 0xF)

let imm_words v = [ v land 0xFFFF; (v lsr 16) land 0xFFFF ]

let cond_code = function
  | Always -> 0
  | If_zero -> 1
  | If_not_zero -> 2
  | If_carry -> 3
  | If_not_carry -> 4
  | If_negative -> 5

let cond_of_code = function
  | 0 -> Always
  | 1 -> If_zero
  | 2 -> If_not_zero
  | 3 -> If_carry
  | 4 -> If_not_carry
  | 5 -> If_negative
  | _ -> invalid_arg "Insn.decode: bad condition"

let alu_encode ?(mode_extra = 0) op dst operand =
  check_reg dst;
  match operand with
  | Reg src ->
    check_reg src;
    [ word op dst src mode_extra ]
  | Imm v ->
    check_addr (v land 0xFFFFFFFF);
    word op dst 0 (mode_extra lor 1) :: imm_words v

let mem_encode ?(mode_extra = 0) op a b off =
  check_reg a;
  check_reg b;
  check_offset off;
  [ word op a b mode_extra; off land 0xFFFF ]

let encode = function
  | Nop -> [ word op_misc 0 0 0 ]
  | Halt -> [ word op_misc 1 0 0 ]
  | Ret -> [ word op_misc 2 0 0 ]
  | Mov (d, s) -> alu_encode op_mov d s
  | Add (d, s) -> alu_encode op_add d s
  | Sub (d, s) -> alu_encode op_sub d s
  | Cmp (d, s) -> alu_encode op_cmp d s
  | And (d, s) -> alu_encode op_and d s
  | Or (d, s) -> alu_encode op_or d s
  | Xor (d, s) -> alu_encode op_xor d s
  | Shl (d, s) -> alu_encode ~mode_extra:0 op_shift d s
  | Shr (d, s) -> alu_encode ~mode_extra:2 op_shift d s
  | Rol (d, s) -> alu_encode ~mode_extra:4 op_shift d s
  | Load (d, base, off) -> mem_encode op_load d base off
  | Store (base, s, off) -> mem_encode op_store base s off
  | Loadb (d, base, off) -> mem_encode op_loadb d base off
  | Storeb (base, s, off) -> mem_encode ~mode_extra:2 op_loadb base s off
  | Jump (cond, target) ->
    check_addr target;
    word op_jump (cond_code cond) 0 0 :: imm_words target
  | Call target ->
    check_addr target;
    word op_call 0 0 0 :: imm_words target
  | Push r ->
    check_reg r;
    [ word op_push r 0 0 ]
  | Pop r ->
    check_reg r;
    [ word op_pop r 0 0 ]

let sign16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let decode ~fetch ~at =
  let w0 = fetch at in
  let op = (w0 lsr 12) land 0xF in
  let dst = (w0 lsr 8) land 0xF in
  let src = (w0 lsr 4) land 0xF in
  let mode = w0 land 0xF in
  let imm32 () = fetch (at + 1) lor (fetch (at + 2) lsl 16) in
  let alu make =
    if mode land 1 = 1 then (make dst (Imm (imm32 ())), 3) else (make dst (Reg src), 1)
  in
  if op = op_misc then
    match dst with
    | 0 -> (Nop, 1)
    | 1 -> (Halt, 1)
    | 2 -> (Ret, 1)
    | _ -> invalid_arg "Insn.decode: bad misc sub-opcode"
  else if op = op_mov then alu (fun d s -> Mov (d, s))
  else if op = op_add then alu (fun d s -> Add (d, s))
  else if op = op_sub then alu (fun d s -> Sub (d, s))
  else if op = op_cmp then alu (fun d s -> Cmp (d, s))
  else if op = op_and then alu (fun d s -> And (d, s))
  else if op = op_or then alu (fun d s -> Or (d, s))
  else if op = op_xor then alu (fun d s -> Xor (d, s))
  else if op = op_load then (Load (dst, src, sign16 (fetch (at + 1))), 2)
  else if op = op_store then (Store (dst, src, sign16 (fetch (at + 1))), 2)
  else if op = op_shift then begin
    let make =
      match (mode lsr 1) land 0x3 with
      | 0 -> fun d s -> Shl (d, s)
      | 1 -> fun d s -> Shr (d, s)
      | 2 -> fun d s -> Rol (d, s)
      | _ -> invalid_arg "Insn.decode: bad shift sub-opcode"
    in
    if mode land 1 = 1 then (make dst (Imm (imm32 ())), 3) else (make dst (Reg src), 1)
  end
  else if op = op_loadb then
    if mode land 2 = 2 then (Storeb (dst, src, sign16 (fetch (at + 1))), 2)
    else (Loadb (dst, src, sign16 (fetch (at + 1))), 2)
  else if op = op_jump then (Jump (cond_of_code dst, imm32 ()), 3)
  else if op = op_call then (Call (imm32 ()), 3)
  else if op = op_push then (Push dst, 1)
  else if op = op_pop then (Pop dst, 1)
  else invalid_arg "Insn.decode: bad opcode"

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm v -> Format.fprintf fmt "#0x%x" v

let pp_cond fmt = function
  | Always -> Format.pp_print_string fmt "jmp"
  | If_zero -> Format.pp_print_string fmt "jz"
  | If_not_zero -> Format.pp_print_string fmt "jnz"
  | If_carry -> Format.pp_print_string fmt "jc"
  | If_not_carry -> Format.pp_print_string fmt "jnc"
  | If_negative -> Format.pp_print_string fmt "jn"

let pp fmt = function
  | Nop -> Format.pp_print_string fmt "nop"
  | Halt -> Format.pp_print_string fmt "halt"
  | Ret -> Format.pp_print_string fmt "ret"
  | Mov (d, s) -> Format.fprintf fmt "mov r%d, %a" d pp_operand s
  | Add (d, s) -> Format.fprintf fmt "add r%d, %a" d pp_operand s
  | Sub (d, s) -> Format.fprintf fmt "sub r%d, %a" d pp_operand s
  | Cmp (d, s) -> Format.fprintf fmt "cmp r%d, %a" d pp_operand s
  | And (d, s) -> Format.fprintf fmt "and r%d, %a" d pp_operand s
  | Or (d, s) -> Format.fprintf fmt "or r%d, %a" d pp_operand s
  | Xor (d, s) -> Format.fprintf fmt "xor r%d, %a" d pp_operand s
  | Shl (d, s) -> Format.fprintf fmt "shl r%d, %a" d pp_operand s
  | Shr (d, s) -> Format.fprintf fmt "shr r%d, %a" d pp_operand s
  | Rol (d, s) -> Format.fprintf fmt "rol r%d, %a" d pp_operand s
  | Load (d, b, off) -> Format.fprintf fmt "load r%d, [r%d%+d]" d b off
  | Store (b, s, off) -> Format.fprintf fmt "store [r%d%+d], r%d" b off s
  | Loadb (d, b, off) -> Format.fprintf fmt "loadb r%d, [r%d%+d]" d b off
  | Storeb (b, s, off) -> Format.fprintf fmt "storeb [r%d%+d], r%d" b off s
  | Jump (c, t) -> Format.fprintf fmt "%a 0x%x" pp_cond c t
  | Call t -> Format.fprintf fmt "call 0x%x" t
  | Push r -> Format.fprintf fmt "push r%d" r
  | Pop r -> Format.fprintf fmt "pop r%d" r
