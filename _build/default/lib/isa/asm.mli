(** A small two-pass assembler for {!Insn}, so trust-anchor routines and
    malware payloads can be written as readable programs rather than
    instruction lists.

    Syntax (one instruction or label per line, [;] starts a comment):

    {v
        ; r1 = base, r2 = accumulator
        mov   r1, #0x100000
        mov   r2, #0
    loop:
        loadb r3, [r1]       ; or [r1+4], [r1-2]
        add   r2, r3
        add   r1, #1
        cmp   r1, r5
        jnz   loop
        halt
    v}

    Immediates are decimal or [0x]-hex, and may be [label] references
    (resolved to the label's absolute byte address). Jump/call targets
    may be labels or addresses. *)

type program = {
  origin : int; (* byte address of the first instruction *)
  instructions : Insn.t list;
  labels : (string * int) list; (* label -> absolute byte address *)
}

type error = { line : int; message : string }

val assemble : origin:int -> string -> (program, error) result

val to_bytes : program -> string
(** Little-endian instruction stream, ready to place at [origin]. *)

val load : Ra_mcu.Memory.t -> program -> unit
(** Write the encoded program into device memory at its origin (raw
    write — the external programmer). *)

val label : program -> string -> int
(** Absolute byte address of a label. @raise Not_found *)

val size_bytes : program -> int

val disassemble_bytes : origin:int -> string -> (int * Insn.t) list
(** Decode an instruction stream sequentially; each element is
    (absolute byte address, instruction). Stops at the first undecodable
    word or when fewer than a full instruction's words remain. *)

val listing : program -> string
(** Human-readable listing: address, encoded words, mnemonic. *)

val pp_error : Format.formatter -> error -> unit
