examples/iot_fleet.mli:
