examples/interpreted_anchor.mli:
