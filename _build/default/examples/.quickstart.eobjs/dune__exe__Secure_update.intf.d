examples/secure_update.mli:
