examples/dos_battery.ml: Adversary Architecture Code_attest Int64 Message Printf Ra_core Ra_mcu Session
