examples/roaming_adversary.ml: Adversary Architecture Code_attest Format List Printf Ra_core Ra_mcu Ra_net Session Verifier
