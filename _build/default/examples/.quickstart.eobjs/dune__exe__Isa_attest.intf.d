examples/isa_attest.mli:
