examples/quickstart.ml: Format Printf Ra_core Ra_mcu Ra_net Session Verifier
