examples/dos_battery.mli:
