examples/iot_fleet.ml: Adversary Code_attest Format List Message Printf Ra_core Ra_mcu Session Verifier
