examples/secure_update.ml: Auth Clock_sync Format Freshness Message Printf Ra_core Ra_mcu Ra_net Service Session String
