examples/isa_attest.ml: Asm Char Core Format List Printf Ra_isa Ra_mcu String
