examples/quickstart.mli:
