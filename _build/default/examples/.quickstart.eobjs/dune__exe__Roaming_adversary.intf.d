examples/roaming_adversary.mli:
