examples/interpreted_anchor.ml: Auth Code_attest Format Freshness Isa_anchor Printf Ra_core Ra_isa Ra_mcu Ra_net String Verifier
