(* The §3.1 denial-of-service: an adversary impersonating the verifier
   floods the prover with bogus attestation requests. On an
   unauthenticated prover every request triggers a full memory MAC
   (~94 ms of CPU for 64 KB); with §4.1 request authentication the prover
   spends only the MAC-check cost before rejecting.

   Run with: dune exec examples/dos_battery.exe *)

open Ra_core
module Device = Ra_mcu.Device
module Energy = Ra_mcu.Energy
module Timing = Ra_mcu.Timing

let flood_and_report ~label spec ~count =
  let session = Session.create ~spec ~ram_size:(64 * 1024) () in
  let bogus = Adversary.forge_request session ~freshness:Message.F_none () in
  Adversary.flood session ~count bogus;
  let device = Session.device session in
  let stats = Code_attest.stats (Session.anchor session) in
  let consumed = Energy.consumed_joules (Device.energy device) in
  Printf.printf "%-24s %9d %9d %9d %14.6f %14.2f\n" label
    stats.Code_attest.requests_seen stats.Code_attest.attestations_performed
    stats.Code_attest.requests_rejected consumed
    (Timing.ms_of_cycles (Ra_mcu.Cpu.work_cycles (Device.cpu device)));
  consumed

let () =
  let count = 500 in
  Printf.printf "flooding each prover with %d bogus attestation requests\n\n" count;
  Printf.printf "%-24s %9s %9s %9s %14s %14s\n" "prover" "seen" "attested" "rejected"
    "energy (J)" "cpu (ms)";
  let unauth = flood_and_report ~label:"unprotected (no auth)" Architecture.unprotected ~count in
  let hmac =
    flood_and_report ~label:"smart-like (HMAC auth)" Architecture.smart_like ~count
  in
  let speck_spec =
    Architecture.with_name
      (Architecture.with_scheme Architecture.smart_like (Some Timing.Auth_speck64_cbc_mac))
      "speck auth"
  in
  let speck = flood_and_report ~label:"smart-like (Speck auth)" speck_spec ~count in
  Printf.printf "\nenergy ratios: no-auth/HMAC = %.0fx, no-auth/Speck = %.0fx\n"
    (unauth /. hmac) (unauth /. speck);
  (* project onto a battery: how long until a 1 req/s flood kills it? *)
  let battery = Energy.create () in
  let days kind_cycles =
    Energy.lifetime_seconds battery ~duty_cycles_per_second:(Int64.to_float kind_cycles)
    /. 86400.0
  in
  Printf.printf "\nCR2032-class battery under a sustained 1 bogus-request/s flood:\n";
  Printf.printf "  unauthenticated prover (full 512 KB MAC each): %.1f days\n"
    (days (Timing.memory_mac_cycles ~bytes_len:(512 * 1024)));
  Printf.printf "  HMAC-authenticating prover (reject in 0.43 ms): %.1f days\n"
    (days (Timing.request_auth_cycles Timing.Auth_hmac_sha1))
