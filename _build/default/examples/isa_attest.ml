(* Execution-aware memory access control at true instruction granularity:
   an interpreted Code_attest routine (assembly, in ROM) sums the key
   into a keyed checksum over RAM, while interpreted malware (in flash)
   tries to read the key directly and is trapped by the EA-MPU — with the
   fault attributed to the *program counter region* that issued the load,
   exactly the EA-MAC mechanism of §6.1.

   Run with: dune exec examples/isa_attest.exe *)

module Device = Ra_mcu.Device
module Memory = Ra_mcu.Memory
module Ea_mpu = Ra_mcu.Ea_mpu
module Cpu = Ra_mcu.Cpu
open Ra_isa

let assemble_or_die ~origin src =
  match Asm.assemble ~origin src with
  | Ok p -> p
  | Error e -> Format.kasprintf failwith "assembly failed: %a" Asm.pp_error e

(* Code_attest (interpreted): keyed additive checksum.
     inputs:  r1 = region base, r2 = region limit
     output:  r3 = checksum
   Reads the first 4 key bytes — allowed only because the PC is inside
   rom_attest when the loads execute. *)
let code_attest_src key_addr =
  Printf.sprintf
    {|
    entry:
      mov r3, #0
      mov r4, #0x%x    ; K_attest location (EA-MPU guarded)
      loadb r5, [r4]
      add r3, r5
      loadb r5, [r4+1]
      add r3, r5
    sweep:
      loadb r5, [r1]
      add r3, r5
      add r1, #1
      cmp r1, r2
      jnz sweep
      ret
    |}
    key_addr

(* malware (interpreted, in flash): tries to exfiltrate the key *)
let malware_src key_addr =
  Printf.sprintf {|
      mov r1, #0x%x
      load r2, [r1]    ; direct key read from app code
      halt
    |} key_addr

let () =
  let attest_entry = 0x001000 (* base of rom_attest *) in
  let key = String.init 20 (fun i -> Char.chr (0x30 + i)) ^ String.make 40 '\x00' in
  let code_attest =
    assemble_or_die ~origin:attest_entry (code_attest_src 0x004000)
  in
  let device =
    Device.create ~ram_size:4096
      ~rom_images:[ (Device.region_attest, Asm.to_bytes code_attest) ]
      ~key ()
  in
  (* install protection and lock, as secure boot would *)
  Ea_mpu.program (Device.mpu device) (Device.rule_protect_key device);
  Ea_mpu.lock (Device.mpu device);
  Memory.write_bytes (Device.memory device) (Device.attested_base device) "hello";

  (* a benign caller in flash invokes the anchor at its entry point *)
  let caller =
    assemble_or_die ~origin:0x010000
      (Printf.sprintf {|
        mov r1, #0x%x
        mov r2, #0x%x
        call 0x%x
        halt
      |}
         (Device.attested_base device)
         (Device.attested_base device + 5)
         attest_entry)
  in
  Memory.write_bytes (Device.memory device) 0x010000 (Asm.to_bytes caller);

  let core = Core.create (Device.cpu device) ~pc:0x010000 ~sp:(Device.attested_base device + 4096) in
  Core.allow_entries core ~region:Device.region_attest [ attest_entry ];
  let state, steps = Core.run core in
  Format.printf "== trusted sweep ==@.";
  Format.printf "state: %a after %d instructions@." Core.pp_state state steps;
  let expected =
    Char.code key.[0] + Char.code key.[1]
    + String.fold_left (fun acc c -> acc + Char.code c) 0 "hello"
  in
  Format.printf "keyed checksum r3 = %d (expected %d)@." (Core.reg core 3) expected;

  (* malware in flash tries the same key load *)
  Format.printf "@.== malware attempts a direct key read ==@.";
  let malware = assemble_or_die ~origin:0x010100 (malware_src 0x004000) in
  Memory.write_bytes (Device.memory device) 0x010100 (Asm.to_bytes malware);
  let evil = Core.create (Device.cpu device) ~pc:0x010100 ~sp:(Device.attested_base device + 4096) in
  let state, _ = Core.run evil in
  Format.printf "state: %a@." Core.pp_state state;

  (* malware jumps into the middle of Code_attest, past the entry point *)
  Format.printf "@.== malware jumps past the anchor's entry point ==@.";
  let hijack =
    assemble_or_die ~origin:0x010200
      (Printf.sprintf {|
        mov r1, #0x%x
        mov r2, #0x%x
        call 0x%x      ; NOT the entry point
        halt
      |}
         (Device.attested_base device)
         (Device.attested_base device + 5)
         (attest_entry + 10))
  in
  Memory.write_bytes (Device.memory device) 0x010200 (Asm.to_bytes hijack);
  let hijacker = Core.create (Device.cpu device) ~pc:0x010200 ~sp:(Device.attested_base device + 4096) in
  Core.allow_entries hijacker ~region:Device.region_attest [ attest_entry ];
  let state, _ = Core.run hijacker in
  Format.printf "state: %a@." Core.pp_state state;
  Format.printf "@.EA-MPU fault log: %d software access(es) denied@."
    (List.length (Cpu.faults (Device.cpu device)))
