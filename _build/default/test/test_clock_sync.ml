open Ra_core
module Device = Ra_mcu.Device
module Simtime = Ra_net.Simtime

let sym_key = String.make 20 's'
let blob = Auth.prover_key_blob ~sym_key ~public:None

let make () =
  let device =
    Device.create ~ram_size:1024
      ~clock_impl:(Device.Clock_hw { width = 64; divider_log2 = 0 })
      ~key:blob ()
  in
  let sync = Clock_sync.install device in
  let time = Simtime.create () in
  (device, sync, time)

let test_sync_corrects_offset () =
  let device, sync, time = make () in
  (* device booted late: verifier wall clock is 100 s ahead *)
  Simtime.advance_to time 100.0;
  Device.idle device ~seconds:2.0 (* prover clock: 2s *);
  Simtime.advance_to time 102.0;
  let req = Clock_sync.make_sync_request ~sym_key ~time ~counter:1L in
  (match Clock_sync.handle sync req with
  | Ok ack -> Alcotest.(check bool) "ack verifies" true
      (Clock_sync.check_sync_ack ~sym_key ~counter:1L ack)
  | Error e -> Alcotest.failf "sync failed: %a" Clock_sync.pp_reject e);
  Alcotest.(check int64) "offset ≈ 100s" 100_000L (Clock_sync.offset_ms sync);
  Alcotest.(check bool) "now tracks verifier" true
    (Int64.abs (Int64.sub (Clock_sync.now_ms sync) 102_000L) < 100L)

let test_sync_replay_rejected () =
  let _, sync, time = make () in
  Simtime.advance_to time 50.0;
  let req = Clock_sync.make_sync_request ~sym_key ~time ~counter:1L in
  (match Clock_sync.handle sync req with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first sync failed: %a" Clock_sync.pp_reject e);
  (* a recorded sync request replayed later must not drag the clock back *)
  (match Clock_sync.handle sync req with
  | Error (Clock_sync.Sync_stale_counter { got = 1L; stored = 1L }) -> ()
  | Ok _ -> Alcotest.fail "replayed sync accepted"
  | Error e -> Alcotest.failf "wrong reject: %a" Clock_sync.pp_reject e)

let test_sync_bad_tag_rejected () =
  let _, sync, time = make () in
  let req =
    match Clock_sync.make_sync_request ~sym_key:(String.make 20 'x') ~time ~counter:1L with
    | Message.Sync_request _ as r -> r
    | _ -> assert false
  in
  (match Clock_sync.handle sync req with
  | Error Clock_sync.Sync_bad_auth -> ()
  | Ok _ -> Alcotest.fail "forged sync accepted"
  | Error e -> Alcotest.failf "wrong reject: %a" Clock_sync.pp_reject e)

let test_sync_counter_must_increase () =
  let _, sync, time = make () in
  let ok c =
    match Clock_sync.handle sync (Clock_sync.make_sync_request ~sym_key ~time ~counter:c) with
    | Ok _ -> true
    | Error _ -> false
  in
  Alcotest.(check bool) "c=5" true (ok 5L);
  Alcotest.(check bool) "c=4 rejected" false (ok 4L);
  Alcotest.(check bool) "c=6" true (ok 6L)

let test_offset_protected_by_rule () =
  let device, sync, time = make () in
  Ra_mcu.Ea_mpu.program (Device.mpu device) (Clock_sync.rule_protect_sync_state device);
  Ra_mcu.Ea_mpu.lock (Device.mpu device);
  Simtime.advance_to time 30.0;
  (match Clock_sync.handle sync (Clock_sync.make_sync_request ~sym_key ~time ~counter:1L) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "trusted path blocked: %a" Clock_sync.pp_reject e);
  (* malware cannot overwrite the offset cell *)
  let offset_addr = Device.counter_addr device + Clock_sync.offset_offset in
  (try
     Ra_mcu.Cpu.store_u64 (Device.cpu device) offset_addr 0L;
     Alcotest.fail "offset write should fault"
   with Ra_mcu.Cpu.Protection_fault _ -> ())

let test_no_clock_rejected () =
  let device = Device.create ~ram_size:1024 ~key:blob () in
  let sync = Clock_sync.install device in
  let time = Simtime.create () in
  (match Clock_sync.handle sync (Clock_sync.make_sync_request ~sym_key ~time ~counter:1L) with
  | Error Clock_sync.Sync_no_clock -> ()
  | Ok _ -> Alcotest.fail "clock-less sync accepted"
  | Error e -> Alcotest.failf "wrong reject: %a" Clock_sync.pp_reject e)

let tests =
  [
    Alcotest.test_case "sync corrects offset" `Quick test_sync_corrects_offset;
    Alcotest.test_case "sync replay rejected" `Quick test_sync_replay_rejected;
    Alcotest.test_case "bad tag rejected" `Quick test_sync_bad_tag_rejected;
    Alcotest.test_case "counter must increase" `Quick test_sync_counter_must_increase;
    Alcotest.test_case "offset protected by rule" `Quick test_offset_protected_by_rule;
    Alcotest.test_case "no clock" `Quick test_no_clock_rejected;
  ]
