test/test_fuzz.ml: Adversary Alcotest Architecture Code_attest Freshness Int64 List Message Printexc Printf QCheck QCheck_alcotest Ra_core Ra_mcu Session String
