test/test_isa.ml: Alcotest Array Asm Char Core Format Gen Insn List Printf QCheck QCheck_alcotest Ra_isa Ra_mcu String
