test/test_architecture.ml: Alcotest Architecture Auth Code_attest Freshness List Message Ra_core Ra_mcu String
