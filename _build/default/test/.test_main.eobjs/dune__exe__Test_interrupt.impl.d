test/test_interrupt.ml: Alcotest Cpu Ea_mpu Interrupt Memory Ra_mcu Region
