test/test_rand.ml: Alcotest Drbg List Printf Prng QCheck QCheck_alcotest Ra_crypto String
