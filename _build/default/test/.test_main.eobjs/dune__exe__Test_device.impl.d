test/test_device.ml: Alcotest Clock Cpu Device Ea_mpu Energy Memory Ra_mcu String
