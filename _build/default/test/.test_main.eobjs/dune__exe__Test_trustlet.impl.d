test/test_trustlet.ml: Alcotest Ra_core Ra_isa Ra_mcu String Trustlet
