test/test_hkdf.ml: Alcotest Hexutil Hkdf List Printf QCheck QCheck_alcotest Ra_crypto String
