test/test_timing.ml: Alcotest Int64 QCheck QCheck_alcotest Ra_mcu Timing
