test/test_campaign.ml: Alcotest Architecture Campaign Ra_core
