test/test_protocol.ml: Alcotest Architecture Code_attest Freshness Int64 List Message Ra_core Ra_mcu Ra_net Service Session String Verifier
