test/test_analysis.ml: Alcotest Analysis List Ra_core
