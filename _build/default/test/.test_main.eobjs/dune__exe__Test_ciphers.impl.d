test/test_ciphers.ml: Aes Alcotest Bytes Char Gen Hexutil List QCheck QCheck_alcotest Ra_crypto Simon Speck String
