test/test_bignum.ml: Alcotest Bignum Gen QCheck QCheck_alcotest Ra_crypto
