test/test_message.ml: Alcotest Format Gen Int64 Message QCheck QCheck_alcotest Ra_core String
