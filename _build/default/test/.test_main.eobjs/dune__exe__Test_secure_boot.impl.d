test/test_secure_boot.ml: Alcotest Cpu Ea_mpu Memory Ra_crypto Ra_mcu Region Secure_boot String
