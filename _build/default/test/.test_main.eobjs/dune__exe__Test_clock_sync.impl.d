test/test_clock_sync.ml: Alcotest Auth Clock_sync Int64 Message Ra_core Ra_mcu Ra_net String
