test/test_memory.ml: Alcotest Memory QCheck QCheck_alcotest Ra_mcu Region
