test/test_ea_mpu.ml: Alcotest Ea_mpu List QCheck QCheck_alcotest Ra_mcu
