test/test_path.ml: Alcotest Path QCheck QCheck_alcotest Ra_core Ra_crypto Ra_net
