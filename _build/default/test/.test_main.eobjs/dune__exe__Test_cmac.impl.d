test/test_cmac.ml: Aes Alcotest Cmac Gen Hexutil QCheck QCheck_alcotest Ra_crypto String
