test/test_hwcost.ml: Alcotest Component QCheck QCheck_alcotest Ra_hwcost Synthesis
