test/test_realtime.ml: Alcotest List QCheck QCheck_alcotest Ra_core Realtime
