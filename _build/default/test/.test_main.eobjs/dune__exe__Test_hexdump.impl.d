test/test_hexdump.ml: Alcotest Device Ea_mpu Hexdump List Memory Ra_mcu String
