test/test_freshness.ml: Alcotest Freshness Gen Int64 List Message QCheck QCheck_alcotest Ra_core Ra_mcu String
