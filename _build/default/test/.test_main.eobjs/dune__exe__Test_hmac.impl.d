test/test_hmac.ml: Alcotest Gen Hexutil Hmac QCheck QCheck_alcotest Ra_crypto String
