test/test_fleet.ml: Alcotest Fleet List Ra_core Ra_mcu Ra_net Session Verifier
