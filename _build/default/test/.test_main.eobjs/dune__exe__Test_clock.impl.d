test/test_clock.ml: Alcotest Clock Cpu Ea_mpu Int64 Interrupt Memory QCheck QCheck_alcotest Ra_mcu Region
