test/test_ec.ml: Alcotest Bignum Ec Ecdsa Gen QCheck QCheck_alcotest Ra_crypto String
