test/test_sha1_asm.ml: Alcotest Gen Int64 Printf QCheck QCheck_alcotest Ra_crypto Ra_isa Ra_mcu Sha1_asm String
