test/test_isa_anchor.ml: Alcotest Auth Code_attest Freshness Int64 Isa_anchor Message Ra_core Ra_crypto Ra_isa Ra_mcu Ra_net Verifier
