test/test_hash.ml: Alcotest Bytes Char Gen Hexutil List Printf QCheck QCheck_alcotest Ra_crypto Sha1 Sha256 String
