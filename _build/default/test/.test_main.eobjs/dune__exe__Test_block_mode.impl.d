test/test_block_mode.ml: Aes Alcotest Block_mode Gen Hexutil QCheck QCheck_alcotest Ra_crypto Speck String
