test/test_power_cycle.ml: Alcotest Auth Clock_sync Freshness Int64 Message Ra_core Ra_crypto Ra_mcu Ra_net String
