test/test_hexutil.ml: Alcotest Gen Hexutil QCheck QCheck_alcotest Ra_crypto String
