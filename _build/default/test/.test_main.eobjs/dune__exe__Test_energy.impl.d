test/test_energy.ml: Alcotest Energy QCheck QCheck_alcotest Ra_mcu
