test/test_service.ml: Alcotest Auth Code_attest Freshness Int64 Message Ra_core Ra_mcu Service String
