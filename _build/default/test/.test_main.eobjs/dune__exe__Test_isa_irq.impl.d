test/test_isa_irq.ml: Alcotest Asm Core Int64 Irq Printf Ra_isa Ra_mcu String
