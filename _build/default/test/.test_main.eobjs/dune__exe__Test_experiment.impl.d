test/test_experiment.ml: Alcotest Experiment List Ra_core
