test/test_adversary.ml: Adversary Alcotest Architecture Code_attest Freshness List Message Ra_core Ra_mcu Session String
