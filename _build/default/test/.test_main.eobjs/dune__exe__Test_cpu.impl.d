test/test_cpu.ml: Alcotest Cpu Ea_mpu List Memory Ra_mcu Region
