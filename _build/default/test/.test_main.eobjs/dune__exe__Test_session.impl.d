test/test_session.ml: Alcotest Architecture Freshness List Message Ra_core Ra_mcu Ra_net Service Session String Verifier
