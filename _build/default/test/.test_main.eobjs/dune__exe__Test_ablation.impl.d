test/test_ablation.ml: Ablation Alcotest List Ra_core Ra_net
