test/test_auth.ml: Alcotest Auth Char Format Gen List Message QCheck QCheck_alcotest Ra_core Ra_crypto Ra_mcu String
