test/test_net.ml: Alcotest Channel List Ra_net Simtime Trace
