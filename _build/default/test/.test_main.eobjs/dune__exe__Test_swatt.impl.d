test/test_swatt.ml: Alcotest Gen Int64 QCheck QCheck_alcotest Ra_core Ra_mcu String Swatt
