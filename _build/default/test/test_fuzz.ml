(* Protocol fuzzing: random Dolev-Yao adversary behaviours against a
   protected prover, with the paper's security goals as invariants.

   Invariants checked after arbitrary interleavings of sends, deliveries,
   replays, forgeries, interceptions and time jumps:

   I1  the prover never attests more often than the verifier asked
       (no amplification: replay/forge never buys the adversary work);
   I2  forged (unauthenticated or wrong-key) requests are never attested;
   I3  the freshness cell (counter / last timestamp) never decreases;
   I4  the trust anchor never crashes — every request terminates in an
       accept or a classified reject. *)

open Ra_core
module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu

type action =
  | Send_genuine
  | Deliver_oldest
  | Replay_recorded of int (* index into the transcript *)
  | Forge_and_inject
  | Intercept
  | Advance of int (* seconds, 1..60 *)
  | Garbage_frame of string (* raw bytes straight into the radio *)

let action_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Send_genuine);
        (3, return Deliver_oldest);
        (2, map (fun i -> Replay_recorded i) (int_range 0 20));
        (2, return Forge_and_inject);
        (1, return Intercept);
        (2, map (fun s -> Advance s) (int_range 1 60));
        (2, map (fun s -> Garbage_frame s) (string_size (int_range 0 80)));
      ])

let show_action = function
  | Send_genuine -> "send"
  | Deliver_oldest -> "deliver"
  | Replay_recorded i -> Printf.sprintf "replay[%d]" i
  | Forge_and_inject -> "forge"
  | Intercept -> "intercept"
  | Advance s -> Printf.sprintf "advance(%ds)" s
  | Garbage_frame s -> Printf.sprintf "garbage(%d bytes)" (String.length s)

let actions_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map show_action l))
    QCheck.Gen.(list_size (int_range 1 40) action_gen)

let counter_spec =
  {
    (Architecture.with_policy Architecture.trustlite_base Freshness.Counter) with
    Architecture.spec_name = "fuzz-counter";
    clock_impl = Device.Clock_none;
  }

let timestamp_spec = Architecture.trustlite_base

let freshness_cell session =
  Cpu.with_context
    (Device.cpu (Session.device session))
    Device.region_attest
    (fun () ->
      Cpu.load_u64 (Device.cpu (Session.device session))
        (Device.counter_addr (Session.device session)))

let run_actions spec actions =
  let session = Session.create ~spec ~ram_size:2048 () in
  let sent = ref 0 in
  let ok = ref true in
  let note = ref "" in
  let fail msg = ok := false; note := msg in
  let apply action =
    let cell_before = freshness_cell session in
    let attested_before =
      (Code_attest.stats (Session.anchor session)).Code_attest.attestations_performed
    in
    (match action with
    | Send_genuine ->
      ignore (Session.send_request session);
      incr sent
    | Deliver_oldest -> ignore (Session.deliver_next_to_prover session)
    | Replay_recorded i ->
      (match Adversary.recorded_requests session with
      | [] -> ()
      | recorded -> Adversary.replay session (List.nth recorded (i mod List.length recorded)))
    | Forge_and_inject ->
      let forged =
        Adversary.forge_request session
          ~freshness:(Message.F_counter (Int64.add (freshness_cell session) 1L))
          ()
      in
      Adversary.inject session forged;
      (* I2: a forgery must never be attested *)
      let now =
        (Code_attest.stats (Session.anchor session)).Code_attest.attestations_performed
      in
      if now <> attested_before then fail "forged request was attested"
    | Intercept -> ignore (Adversary.intercept_next_request session)
    | Advance s -> Session.advance_time session ~seconds:(float_of_int s)
    | Garbage_frame frame ->
      Session.deliver_frame_to_prover session frame;
      (* I2 covers garbage too: raw bytes must never produce attestation *)
      let now =
        (Code_attest.stats (Session.anchor session)).Code_attest.attestations_performed
      in
      if now <> attested_before then fail "garbage frame was attested");
    (* I3: the freshness cell never decreases *)
    if Int64.unsigned_compare (freshness_cell session) cell_before < 0 then
      fail "freshness cell decreased"
  in
  (try List.iter apply actions
   with exn -> fail (Printf.sprintf "anchor crashed: %s" (Printexc.to_string exn)));
  (* I1: no amplification *)
  let attested =
    (Code_attest.stats (Session.anchor session)).Code_attest.attestations_performed
  in
  if attested > !sent then fail (Printf.sprintf "amplification: %d attested > %d sent" attested !sent);
  if not !ok then QCheck.Test.fail_report !note;
  true

let fuzz_counter =
  QCheck.Test.make ~name:"fuzz: invariants under random Adv_ext (counter policy)"
    ~count:120 actions_arb (run_actions counter_spec)

let fuzz_timestamp =
  QCheck.Test.make ~name:"fuzz: invariants under random Adv_ext (timestamp policy)"
    ~count:120 actions_arb (run_actions timestamp_spec)

(* the same fuzz against the unprotected prover must find amplification:
   this guards against the invariant checker being vacuous *)
let test_unprotected_is_amplifiable () =
  let session = Session.create ~spec:Architecture.unprotected ~ram_size:2048 () in
  let bogus = Adversary.forge_request session ~freshness:Message.F_none () in
  Adversary.flood session ~count:5 bogus;
  let attested =
    (Code_attest.stats (Session.anchor session)).Code_attest.attestations_performed
  in
  Alcotest.(check int) "unprotected prover amplifies" 5 attested

let tests =
  [
    QCheck_alcotest.to_alcotest fuzz_counter;
    QCheck_alcotest.to_alcotest fuzz_timestamp;
    Alcotest.test_case "checker is not vacuous" `Quick test_unprotected_is_amplifiable;
  ]
