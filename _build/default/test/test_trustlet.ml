open Ra_core
module Device = Ra_mcu.Device
module Memory = Ra_mcu.Memory
module Cpu = Ra_mcu.Cpu
module Ea_mpu = Ra_mcu.Ea_mpu

let key = String.make 60 'k'

let spec_a base =
  {
    Trustlet.trustlet_name = "metering";
    code_region = Device.region_attest;
    data_base = base;
    data_size = 64;
    entry_points = [ 0x001000 ];
    shared_read = false;
  }

let spec_b base =
  {
    Trustlet.trustlet_name = "keystore";
    code_region = Device.region_clock;
    data_base = base + 64;
    data_size = 64;
    entry_points = [ 0x003000 ];
    shared_read = true;
  }

let make () =
  let device = Device.create ~ram_size:4096 ~key () in
  let registry = Trustlet.create device in
  let base = Device.attested_base device in
  Trustlet.register registry (spec_a base);
  Trustlet.register registry (spec_b base);
  (device, registry, base)

let test_isolation_between_trustlets () =
  let device, _, base = make () in
  let cpu = Device.cpu device in
  (* trustlet A's code may use A's data *)
  Cpu.with_context cpu Device.region_attest (fun () -> Cpu.store_byte cpu base 1);
  (* trustlet B's code may not touch A's data *)
  (try
     Cpu.with_context cpu Device.region_clock (fun () -> Cpu.store_byte cpu base 2);
     Alcotest.fail "cross-trustlet write should fault"
   with Cpu.Protection_fault _ -> ());
  (try
     ignore (Cpu.with_context cpu Device.region_clock (fun () -> Cpu.load_byte cpu base));
     Alcotest.fail "cross-trustlet read should fault"
   with Cpu.Protection_fault _ -> ());
  Alcotest.(check int) "A's write landed" 1 (Memory.read_byte (Device.memory device) base)

let test_shared_read () =
  let device, _, base = make () in
  let cpu = Device.cpu device in
  (* B's data is published read-only: everyone reads, only B writes *)
  Cpu.with_context cpu Device.region_clock (fun () -> Cpu.store_byte cpu (base + 64) 9);
  Alcotest.(check int) "untrusted read allowed" 9 (Cpu.load_byte cpu (base + 64));
  (try
     Cpu.store_byte cpu (base + 64) 0;
     Alcotest.fail "untrusted write should fault"
   with Cpu.Protection_fault _ -> ())

let test_validation () =
  let device = Device.create ~ram_size:4096 ~key () in
  let registry = Trustlet.create device in
  let base = Device.attested_base device in
  Trustlet.register registry (spec_a base);
  Alcotest.check_raises "duplicate name" (Invalid_argument "Trustlet.register: duplicate name")
    (fun () -> Trustlet.register registry { (spec_a base) with Trustlet.data_base = base + 512 });
  Alcotest.check_raises "overlap" (Invalid_argument "Trustlet.register: data ranges overlap")
    (fun () ->
      Trustlet.register registry
        { (spec_b base) with Trustlet.data_base = base + 32 });
  Alcotest.check_raises "unknown region"
    (Invalid_argument "Trustlet.register: unknown code region") (fun () ->
      Trustlet.register registry
        { (spec_b base) with Trustlet.code_region = "nonexistent" });
  Alcotest.check_raises "entry outside region"
    (Invalid_argument "Trustlet.register: entry point outside the code region")
    (fun () ->
      Trustlet.register registry
        { (spec_b base) with Trustlet.entry_points = [ 0x999999 ] });
  Alcotest.check_raises "unmapped data"
    (Invalid_argument "Trustlet.register: data range unmapped") (fun () ->
      Trustlet.register registry
        { (spec_b base) with Trustlet.data_base = 0x700000 })

let test_lockdown () =
  let device, registry, base = make () in
  Trustlet.lockdown registry;
  Alcotest.(check bool) "mpu locked" true (Ea_mpu.is_locked (Device.mpu device));
  Alcotest.check_raises "no post-lock registration" Ea_mpu.Locked (fun () ->
      Trustlet.register registry
        {
          Trustlet.trustlet_name = "late";
          code_region = Device.region_app;
          data_base = base + 256;
          data_size = 16;
          entry_points = [];
          shared_read = false;
        })

let test_bind_core_entries () =
  let device, registry, _ = make () in
  let core = Ra_isa.Core.create (Device.cpu device) ~pc:0x010000 ~sp:0x101000 in
  Trustlet.bind_core registry core;
  (* entering trustlet A anywhere but its gateway traps *)
  let prog src origin =
    match Ra_isa.Asm.assemble ~origin src with
    | Ok p ->
      Memory.write_bytes (Device.memory device) origin (Ra_isa.Asm.to_bytes p)
    | Error e -> Alcotest.failf "asm: %a" Ra_isa.Asm.pp_error e
  in
  prog "call 0x1004\nhalt" 0x010000;
  let state, _ = Ra_isa.Core.run core in
  (match state with
  | Ra_isa.Core.Trapped (Ra_isa.Core.Trap_entry { target = 0x1004; _ }) -> ()
  | s -> Alcotest.failf "expected entry trap, got %a" Ra_isa.Core.pp_state s)

let tests =
  [
    Alcotest.test_case "isolation between trustlets" `Quick test_isolation_between_trustlets;
    Alcotest.test_case "shared-read data" `Quick test_shared_read;
    Alcotest.test_case "spec validation" `Quick test_validation;
    Alcotest.test_case "lockdown" `Quick test_lockdown;
    Alcotest.test_case "entry gateways on the core" `Quick test_bind_core_entries;
  ]
