open Ra_isa
module Memory = Ra_mcu.Memory
module Region = Ra_mcu.Region
module Ea_mpu = Ra_mcu.Ea_mpu
module Cpu = Ra_mcu.Cpu

(* a small machine: code at 0x0000 (app) and 0x2000 (trusted), data RAM
   at 0x4000, a protected secret at 0x6000, stack at top of RAM *)
let make () =
  let memory =
    Memory.create
      [
        Region.make ~name:"app" ~base:0x0000 ~size:0x1000 ~kind:Region.Flash;
        Region.make ~name:"trusted" ~base:0x2000 ~size:0x1000 ~kind:Region.Rom;
        Region.make ~name:"ram" ~base:0x4000 ~size:0x1000 ~kind:Region.Ram;
        Region.make ~name:"secret" ~base:0x6000 ~size:0x20 ~kind:Region.Ram;
      ]
  in
  let mpu = Ea_mpu.create ~capacity:4 in
  Ea_mpu.program mpu
    {
      Ea_mpu.rule_name = "secret";
      data_base = 0x6000;
      data_size = 0x20;
      read_by = Ea_mpu.Code_in [ "trusted" ];
      write_by = Ea_mpu.Code_in [ "trusted" ];
    };
  let cpu = Cpu.create memory mpu ~clock_hz:24_000_000 in
  (memory, cpu)

let assemble_at origin src =
  match Asm.assemble ~origin src with
  | Ok p -> p
  | Error e -> Alcotest.failf "assembly failed: %a" Asm.pp_error e

let run_app ?(sp = 0x5000) src =
  let memory, cpu = make () in
  let program = assemble_at 0x0000 src in
  Asm.load memory program;
  Memory.seal_rom memory;
  let core = Core.create cpu ~pc:0x0000 ~sp in
  let state, steps = Core.run core in
  (core, state, steps, memory)

let check_state = Alcotest.testable Core.pp_state (fun a b -> a = b)

(* ---- encode/decode ---- *)

let arbitrary_insn =
  let open QCheck.Gen in
  let reg = int_range 0 15 in
  let operand = oneof [ map (fun r -> Insn.Reg r) reg; map (fun v -> Insn.Imm v) (int_range 0 0xFFFFFF) ] in
  let offset = int_range (-1000) 1000 in
  let addr = map (fun v -> v * 2) (int_range 0 0x7FFF) in
  let cond =
    oneofl
      [ Insn.Always; Insn.If_zero; Insn.If_not_zero; Insn.If_carry; Insn.If_not_carry;
        Insn.If_negative ]
  in
  QCheck.make ~print:(Format.asprintf "%a" Insn.pp)
    (oneof
       [
         return Insn.Nop;
         return Insn.Halt;
         return Insn.Ret;
         map2 (fun d s -> Insn.Mov (d, s)) reg operand;
         map2 (fun d s -> Insn.Add (d, s)) reg operand;
         map2 (fun d s -> Insn.Sub (d, s)) reg operand;
         map2 (fun d s -> Insn.Cmp (d, s)) reg operand;
         map2 (fun d s -> Insn.And (d, s)) reg operand;
         map2 (fun d s -> Insn.Or (d, s)) reg operand;
         map2 (fun d s -> Insn.Xor (d, s)) reg operand;
         map2 (fun d s -> Insn.Shl (d, s)) reg operand;
         map2 (fun d s -> Insn.Shr (d, s)) reg operand;
         map2 (fun d s -> Insn.Rol (d, s)) reg operand;
         map3 (fun a b o -> Insn.Load (a, b, o)) reg reg offset;
         map3 (fun a b o -> Insn.Store (a, b, o)) reg reg offset;
         map3 (fun a b o -> Insn.Loadb (a, b, o)) reg reg offset;
         map3 (fun a b o -> Insn.Storeb (a, b, o)) reg reg offset;
         map2 (fun c t -> Insn.Jump (c, t)) cond addr;
         map (fun t -> Insn.Call t) addr;
         map (fun r -> Insn.Push r) reg;
         map (fun r -> Insn.Pop r) reg;
       ])

let qcheck_encode_decode =
  QCheck.Test.make ~name:"isa: decode . encode = id" ~count:500 arbitrary_insn
    (fun insn ->
      let words = Array.of_list (Insn.encode insn) in
      let decoded, size = Insn.decode ~fetch:(fun i -> words.(i)) ~at:0 in
      decoded = insn && size = Array.length words)

(* ---- arithmetic & flags ---- *)

let test_arithmetic () =
  let core, state, _, _ =
    run_app
      {|
        mov r1, #10
        add r1, #32
        mov r2, r1
        sub r2, #2
        halt
      |}
  in
  Alcotest.check check_state "halted" Core.Halted state;
  Alcotest.(check int) "r1" 42 (Core.reg core 1);
  Alcotest.(check int) "r2" 40 (Core.reg core 2)

let test_flags () =
  let core, _, _, _ =
    run_app {|
      mov r1, #5
      cmp r1, #5
      halt
    |}
  in
  Alcotest.(check bool) "zero set" true (Core.zero_flag core);
  Alcotest.(check bool) "carry set (no borrow)" true (Core.carry_flag core);
  let core2, _, _, _ =
    run_app {|
      mov r1, #3
      sub r1, #5
      halt
    |}
  in
  Alcotest.(check bool) "borrow clears carry" false (Core.carry_flag core2);
  Alcotest.(check bool) "negative set" true (Core.negative_flag core2);
  Alcotest.(check int) "wraparound" ((3 - 5) land 0xFFFFFFFF) (Core.reg core2 1)

let test_logic () =
  let core, _, _, _ =
    run_app
      {|
        mov r1, #0xF0
        and r1, #0x3C
        mov r2, #0xF0
        or  r2, #0x0F
        mov r3, #0xFF
        xor r3, #0x0F
        halt
      |}
  in
  Alcotest.(check int) "and" 0x30 (Core.reg core 1);
  Alcotest.(check int) "or" 0xFF (Core.reg core 2);
  Alcotest.(check int) "xor" 0xF0 (Core.reg core 3)

let test_shifts () =
  let core, _, _, _ =
    run_app
      {|
        mov r1, #1
        shl r1, #4        ; 16
        mov r2, #0x80
        shr r2, #3        ; 16
        mov r3, #0x80000001
        rol r3, #1        ; 3
        mov r4, #5
        mov r5, #2
        shl r4, r5        ; 20
        halt
      |}
  in
  Alcotest.(check int) "shl imm" 16 (Core.reg core 1);
  Alcotest.(check int) "shr imm" 16 (Core.reg core 2);
  Alcotest.(check int) "rol wraps bit 31" 3 (Core.reg core 3);
  Alcotest.(check int) "shl reg" 20 (Core.reg core 4)

let test_rotate_checksum () =
  (* a rotate-xor checksum — the shape of a real software-attestation
     inner loop — over 4 RAM bytes *)
  let memory, cpu = make () in
  Memory.write_bytes memory 0x4000 "\x01\x02\x03\x04";
  let app =
    assemble_at 0x0000
      {|
        mov r1, #0x4000
        mov r2, #0x4004
        mov r3, #0
      loop:
        loadb r4, [r1]
        xor r3, r4
        rol r3, #5
        add r1, #1
        cmp r1, r2
        jnz loop
        halt
      |}
  in
  Asm.load memory app;
  Memory.seal_rom memory;
  let core = Core.create cpu ~pc:0x0000 ~sp:0x5000 in
  let state, _ = Core.run core in
  Alcotest.check check_state "halted" Core.Halted state;
  (* reference computation *)
  let expected =
    List.fold_left
      (fun acc b -> let v = acc lxor b in ((v lsl 5) lor (v lsr 27)) land 0xFFFFFFFF)
      0 [ 1; 2; 3; 4 ]
  in
  Alcotest.(check int) "matches reference" expected (Core.reg core 3)

(* ---- control flow ---- *)

let test_loop () =
  (* sum 1..10 *)
  let core, state, steps, _ =
    run_app
      {|
        mov r1, #0      ; acc
        mov r2, #1      ; i
      loop:
        add r1, r2
        add r2, #1
        cmp r2, #11
        jnz loop
        halt
      |}
  in
  Alcotest.check check_state "halted" Core.Halted state;
  Alcotest.(check int) "sum" 55 (Core.reg core 1);
  Alcotest.(check bool) "looped" true (steps > 30)

let test_call_ret_stack () =
  let core, state, _, _ =
    run_app
      {|
        mov r1, #7
        call double
        add r1, #1
        halt
      double:
        add r1, r1
        ret
      |}
  in
  Alcotest.check check_state "halted" Core.Halted state;
  Alcotest.(check int) "2*7+1" 15 (Core.reg core 1)

let test_push_pop () =
  let core, _, _, _ =
    run_app
      {|
        mov r1, #111
        mov r2, #222
        push r1
        push r2
        pop r3
        pop r4
        halt
      |}
  in
  Alcotest.(check int) "lifo r3" 222 (Core.reg core 3);
  Alcotest.(check int) "lifo r4" 111 (Core.reg core 4)

(* ---- memory ---- *)

let test_load_store () =
  let core, _, _, memory =
    run_app
      {|
        mov r1, #0x4000
        mov r2, #0xDEAD
        store [r1], r2
        load r3, [r1]
        mov r4, #0x41
        storeb [r1+8], r4
        loadb r5, [r1+8]
        halt
      |}
  in
  Alcotest.(check int) "store/load" 0xDEAD (Core.reg core 3);
  Alcotest.(check int) "byte" 0x41 (Core.reg core 5);
  Alcotest.(check int) "in memory" 0xDEAD (Memory.read_u32 memory 0x4000)

(* ---- EA-MPU at instruction granularity ---- *)

let test_app_denied_secret () =
  let _, state, _, _ =
    run_app {|
      mov r1, #0x6000
      load r2, [r1]
      halt
    |}
  in
  (match state with
  | Core.Trapped (Core.Trap_protection f) ->
    Alcotest.(check string) "attributed to app code" "app" f.Cpu.fault_code;
    Alcotest.(check int) "faulting address" 0x6000 f.Cpu.fault_addr
  | s -> Alcotest.failf "expected protection trap, got %a" Core.pp_state s)

let trusted_reader_src = {|
      mov r1, #0x6000
      load r2, [r1]
      mov r3, #0x4000
      store [r3], r2
      ret
    |}

let test_trusted_code_allowed () =
  let memory, cpu = make () in
  (* trusted routine in ROM reads the secret and copies it to RAM *)
  let trusted = assemble_at 0x2000 trusted_reader_src in
  Asm.load memory trusted;
  let app =
    assemble_at 0x0000 {|
      call 0x2000
      halt
    |}
  in
  Asm.load memory app;
  Memory.write_u32 memory 0x6000 0xC0FFEE;
  Memory.seal_rom memory;
  let core = Core.create cpu ~pc:0x0000 ~sp:0x5000 in
  let state, _ = Core.run core in
  Alcotest.check check_state "halted" Core.Halted state;
  Alcotest.(check int) "secret copied by trusted code" 0xC0FFEE
    (Memory.read_u32 memory 0x4000)

let test_entry_point_enforcement () =
  let memory, cpu = make () in
  let trusted = assemble_at 0x2000 trusted_reader_src in
  Asm.load memory trusted;
  (* the app jumps PAST the entry point, into the middle of the trusted
     routine (the §6.2 runtime attack) *)
  let app = assemble_at 0x0000 {|
      call 0x2008
      halt
    |} in
  Asm.load memory app;
  Memory.seal_rom memory;
  let core = Core.create cpu ~pc:0x0000 ~sp:0x5000 in
  Core.allow_entries core ~region:"trusted" [ 0x2000 ];
  let state, _ = Core.run core in
  (match state with
  | Core.Trapped (Core.Trap_entry { target = 0x2008; region = "trusted"; _ }) -> ()
  | s -> Alcotest.failf "expected entry trap, got %a" Core.pp_state s);
  (* the declared entry point still works *)
  let core2 = Core.create cpu ~pc:0x0000 ~sp:0x5000 in
  Core.allow_entries core2 ~region:"trusted" [ 0x2000 ];
  let app2 = assemble_at 0x0000 {|
      call 0x2000
      halt
    |} in
  Asm.load memory app2 (* fails: ROM sealed? app is Flash, fine *);
  let state2, _ = Core.run core2 in
  Alcotest.check check_state "legitimate entry ok" Core.Halted state2

let test_rom_store_traps () =
  let _, state, _, _ =
    run_app {|
      mov r1, #0x2000
      mov r2, #1
      store [r1], r2
      halt
    |}
  in
  (match state with
  | Core.Trapped (Core.Trap_bus _) -> ()
  | s -> Alcotest.failf "expected bus trap, got %a" Core.pp_state s)

let test_unmapped_traps () =
  let _, state, _, _ = run_app {|
      jmp 0x9000
    |} in
  (match state with
  | Core.Trapped (Core.Trap_bus _) -> ()
  | s -> Alcotest.failf "expected bus trap, got %a" Core.pp_state s)

let test_cycles_charged () =
  let memory, cpu = make () in
  let app = assemble_at 0x0000 {|
      mov r1, #1
      add r1, #2
      halt
    |} in
  Asm.load memory app;
  Memory.seal_rom memory;
  let core = Core.create cpu ~pc:0x0000 ~sp:0x5000 in
  let _ = Core.run core in
  (* mov-imm (3w) + add-imm (3w) + halt (1w) = 7 cycles *)
  Alcotest.(check int64) "cycle count" 7L (Cpu.cycles cpu)

(* ---- checksum routine: a miniature software attestation sweep ---- *)

let test_checksum_program () =
  let memory, cpu = make () in
  Memory.write_bytes memory 0x4000 "abcdef";
  let app =
    assemble_at 0x0000
      {|
        mov r1, #0x4000   ; cursor
        mov r2, #0x4006   ; limit
        mov r3, #0        ; checksum
      loop:
        loadb r4, [r1]
        add r3, r4
        add r1, #1
        cmp r1, r2
        jnz loop
        halt
      |}
  in
  Asm.load memory app;
  Memory.seal_rom memory;
  let core = Core.create cpu ~pc:0x0000 ~sp:0x5000 in
  let state, _ = Core.run core in
  Alcotest.check check_state "halted" Core.Halted state;
  let expected = Char.code 'a' + Char.code 'b' + Char.code 'c' + Char.code 'd'
                 + Char.code 'e' + Char.code 'f' in
  Alcotest.(check int) "checksum" expected (Core.reg core 3)

(* ---- assembler errors ---- *)

let test_asm_errors () =
  let bad src =
    match Asm.assemble ~origin:0 src with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "bad mnemonic" true (bad "frobnicate r1, r2");
  Alcotest.(check bool) "bad register" true (bad "mov r99, #1");
  Alcotest.(check bool) "undefined label" true (bad "jmp nowhere");
  Alcotest.(check bool) "duplicate label" true (bad "a:\na:\nhalt");
  Alcotest.(check bool) "good program" false (bad "halt")

let test_asm_labels () =
  let p = assemble_at 0x100 "start:\n  nop\n  jmp start\n  halt" in
  Alcotest.(check int) "label address" 0x100 (Asm.label p "start");
  Alcotest.(check int) "size: nop(1w) jmp(3w) halt(1w)" 10 (Asm.size_bytes p)

let test_disassemble_roundtrip () =
  let src = {|
    start:
      mov r1, #0x4000
      loadb r2, [r1+3]
      push r2
      call fn
      halt
    fn:
      pop r3
      ret
  |} in
  let p = assemble_at 0x200 src in
  let listing = Asm.disassemble_bytes ~origin:0x200 (Asm.to_bytes p) in
  Alcotest.(check int) "all instructions recovered" (List.length p.Asm.instructions)
    (List.length listing);
  List.iteri
    (fun i (addr, insn) ->
      Alcotest.(check bool) (Printf.sprintf "insn %d decodes identically" i) true
        (insn = List.nth p.Asm.instructions i);
      if i = 0 then Alcotest.(check int) "first address" 0x200 addr)
    listing

let test_disassemble_stops_on_garbage () =
  (* word 0x0000 is nop; word 0x0F00 is an illegal misc sub-opcode *)
  let bytes = "\x00\x00\x00\x0f" in
  let listing = Asm.disassemble_bytes ~origin:0 bytes in
  Alcotest.(check int) "stops after the nop" 1 (List.length listing)

let test_listing_contains_labels () =
  let p = assemble_at 0 "start:\n  nop\n  jmp start\n  halt" in
  let text = Asm.listing p in
  Alcotest.(check bool) "label shown" true
    (String.length text > 0
    && (let re = "start:" in
        let rec find i =
          i + String.length re <= String.length text
          && (String.sub text i (String.length re) = re || find (i + 1))
        in
        find 0))

let qcheck_disassemble_inverse_of_assemble =
  QCheck.Test.make ~name:"isa: disassemble . encode = id over programs" ~count:100
    QCheck.(list_of_size Gen.(1 -- 10) arbitrary_insn)
    (fun instructions ->
      let bytes =
        String.concat ""
          (List.map
             (fun insn ->
               String.concat ""
                 (List.map
                    (fun w ->
                      String.init 2 (fun i -> Char.chr ((w lsr (8 * i)) land 0xff)))
                    (Insn.encode insn)))
             instructions)
      in
      List.map snd (Asm.disassemble_bytes ~origin:0 bytes) = instructions)

let test_run_bound () =
  let _, state, steps, _ = run_app ~sp:0x5000 "spin:\n  jmp spin" in
  Alcotest.check check_state "still running at bound" Core.Running state;
  Alcotest.(check int) "hit the bound" 1_000_000 steps

let tests =
  [
    QCheck_alcotest.to_alcotest qcheck_encode_decode;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "flags" `Quick test_flags;
    Alcotest.test_case "logic" `Quick test_logic;
    Alcotest.test_case "shifts/rotates" `Quick test_shifts;
    Alcotest.test_case "rotate-xor checksum" `Quick test_rotate_checksum;
    Alcotest.test_case "loop" `Quick test_loop;
    Alcotest.test_case "call/ret" `Quick test_call_ret_stack;
    Alcotest.test_case "push/pop" `Quick test_push_pop;
    Alcotest.test_case "load/store" `Quick test_load_store;
    Alcotest.test_case "EA-MPU denies app" `Quick test_app_denied_secret;
    Alcotest.test_case "EA-MPU allows trusted" `Quick test_trusted_code_allowed;
    Alcotest.test_case "entry-point enforcement (§6.2)" `Quick
      test_entry_point_enforcement;
    Alcotest.test_case "ROM store traps" `Quick test_rom_store_traps;
    Alcotest.test_case "unmapped jump traps" `Quick test_unmapped_traps;
    Alcotest.test_case "cycles charged" `Quick test_cycles_charged;
    Alcotest.test_case "checksum sweep" `Quick test_checksum_program;
    Alcotest.test_case "assembler errors" `Quick test_asm_errors;
    Alcotest.test_case "assembler labels & sizes" `Quick test_asm_labels;
    Alcotest.test_case "disassemble roundtrip" `Quick test_disassemble_roundtrip;
    Alcotest.test_case "disassemble stops on garbage" `Quick
      test_disassemble_stops_on_garbage;
    Alcotest.test_case "listing shows labels" `Quick test_listing_contains_labels;
    QCheck_alcotest.to_alcotest qcheck_disassemble_inverse_of_assemble;
    Alcotest.test_case "run bound" `Slow test_run_bound;
  ]
