open Ra_crypto
module B = Bignum

let of_i = B.of_int

let test_basics () =
  Alcotest.(check bool) "zero is zero" true (B.is_zero B.zero);
  Alcotest.(check int) "roundtrip small" 12345 (B.to_int (of_i 12345));
  Alcotest.(check int) "roundtrip large" max_int (B.to_int (of_i max_int));
  Alcotest.check_raises "negative" (Invalid_argument "Bignum.of_int: negative")
    (fun () -> ignore (of_i (-1)))

let test_hex () =
  Alcotest.(check string) "zero" "0" (B.to_hex B.zero);
  Alcotest.(check string) "ff" "ff" (B.to_hex (of_i 255));
  Alcotest.(check string) "deadbeef" "deadbeef" (B.to_hex (B.of_hex "deadbeef"));
  Alcotest.(check string) "odd nibbles" "f" (B.to_hex (B.of_hex "F"));
  Alcotest.(check int) "parse" 4096 (B.to_int (B.of_hex "1000"))

let test_bytes () =
  Alcotest.(check string) "be encoding" "\x01\x02" (B.to_bytes_be (of_i 258));
  Alcotest.(check string) "padded" "\x00\x00\x01\x02" (B.to_bytes_be ~pad:4 (of_i 258));
  Alcotest.(check int) "decode" 258 (B.to_int (B.of_bytes_be "\x01\x02"))

let test_arith () =
  let a = B.of_hex "ffffffffffffffffffffffffffffffff" in
  Alcotest.(check string) "add carry chain" "100000000000000000000000000000000"
    (B.to_hex (B.add a B.one));
  Alcotest.(check string) "sub undoes add" (B.to_hex a)
    (B.to_hex (B.sub (B.add a B.one) B.one));
  Alcotest.check_raises "negative sub" (Invalid_argument "Bignum.sub: negative result")
    (fun () -> ignore (B.sub B.one B.two));
  Alcotest.(check string) "square" "fffffffffffffffffffffffffffffffe00000000000000000000000000000001"
    (B.to_hex (B.mul a a))

let test_divmod () =
  let a = B.of_hex "123456789abcdef0123456789abcdef" in
  let b = B.of_hex "fedcba987" in
  let q, r = B.divmod a b in
  Alcotest.(check string) "a = q*b + r" (B.to_hex a) (B.to_hex (B.add (B.mul q b) r));
  Alcotest.(check bool) "r < b" true (B.compare r b < 0);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod a B.zero));
  let q0, r0 = B.divmod b a in
  Alcotest.(check bool) "small/large: q=0" true (B.is_zero q0);
  Alcotest.(check string) "small/large: r=a" (B.to_hex b) (B.to_hex r0)

let test_to_int_overflow () =
  let big = B.of_hex "ffffffffffffffffffffffffffffffff" in
  Alcotest.check_raises "overflow detected" (Failure "Bignum.to_int: overflow")
    (fun () -> ignore (B.to_int big));
  (* a value with many limbs but small magnitude still converts *)
  Alcotest.(check int) "small value with headroom" 7
    (B.to_int (B.shift_right (B.shift_left (of_i 7) 100) 100))

let test_unsigned_counter_range () =
  (* counters are compared as unsigned 64-bit on the device; the bignum
     layer must handle 2^63..2^64-1 magnitudes the wire can carry *)
  let top = B.of_hex "ffffffffffffffff" in
  Alcotest.(check int) "64 bits" 64 (B.bit_length top);
  Alcotest.(check string) "round trip" "ffffffffffffffff"
    (B.to_hex (B.of_bytes_be (B.to_bytes_be top)))

let test_bits () =
  Alcotest.(check int) "bitlen 0" 0 (B.bit_length B.zero);
  Alcotest.(check int) "bitlen 1" 1 (B.bit_length B.one);
  Alcotest.(check int) "bitlen 256" 9 (B.bit_length (of_i 256));
  Alcotest.(check bool) "bit 8 of 256" true (B.test_bit (of_i 256) 8);
  Alcotest.(check bool) "bit 0 of 256" false (B.test_bit (of_i 256) 0);
  Alcotest.(check int) "shl" 1024 (B.to_int (B.shift_left B.one 10));
  Alcotest.(check int) "shr" 1 (B.to_int (B.shift_right (of_i 1024) 10));
  Alcotest.(check bool) "shr to zero" true (B.is_zero (B.shift_right (of_i 3) 2));
  Alcotest.(check bool) "parity" true (B.is_even (of_i 4) && B.is_odd (of_i 5))

(* properties over moderately sized random numbers *)
let gen_big =
  QCheck.map
    (fun s -> B.of_bytes_be s)
    QCheck.(string_of_size Gen.(1 -- 24))

let qcheck_add_comm =
  QCheck.Test.make ~name:"bignum: a+b = b+a" ~count:200 (QCheck.pair gen_big gen_big)
    (fun (a, b) -> B.equal (B.add a b) (B.add b a))

let qcheck_mul_comm =
  QCheck.Test.make ~name:"bignum: a*b = b*a" ~count:200 (QCheck.pair gen_big gen_big)
    (fun (a, b) -> B.equal (B.mul a b) (B.mul b a))

let qcheck_mul_distributes =
  QCheck.Test.make ~name:"bignum: a*(b+c) = a*b + a*c" ~count:100
    (QCheck.triple gen_big gen_big gen_big)
    (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let qcheck_divmod_law =
  QCheck.Test.make ~name:"bignum: divmod reconstruction" ~count:200
    (QCheck.pair gen_big gen_big)
    (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r) && B.compare r b < 0)

let qcheck_bytes_roundtrip =
  QCheck.Test.make ~name:"bignum: bytes roundtrip" ~count:200 gen_big (fun a ->
      B.equal a (B.of_bytes_be (B.to_bytes_be a)))

let qcheck_shift_inverse =
  QCheck.Test.make ~name:"bignum: shr . shl = id" ~count:200
    (QCheck.pair gen_big (QCheck.int_range 0 64))
    (fun (a, n) -> B.equal a (B.shift_right (B.shift_left a n) n))

let qcheck_int_consistency =
  QCheck.Test.make ~name:"bignum: mirrors int arithmetic" ~count:200
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 1_000_000))
    (fun (a, b) ->
      B.to_int (B.add (of_i a) (of_i b)) = a + b
      && B.to_int (B.mul (of_i a) (of_i b)) = a * b
      && B.to_int (B.rem (of_i a) (of_i b)) = a mod b)

let tests =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "hex" `Quick test_hex;
    Alcotest.test_case "bytes" `Quick test_bytes;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "divmod" `Quick test_divmod;
    Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
    Alcotest.test_case "unsigned counter range" `Quick test_unsigned_counter_range;
    Alcotest.test_case "bits" `Quick test_bits;
    QCheck_alcotest.to_alcotest qcheck_add_comm;
    QCheck_alcotest.to_alcotest qcheck_mul_comm;
    QCheck_alcotest.to_alcotest qcheck_mul_distributes;
    QCheck_alcotest.to_alcotest qcheck_divmod_law;
    QCheck_alcotest.to_alcotest qcheck_bytes_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_shift_inverse;
    QCheck_alcotest.to_alcotest qcheck_int_consistency;
  ]
