open Ra_mcu

let rule ?(name = "r") ?(read = Ea_mpu.Anyone) ?(write = Ea_mpu.Nobody) base size =
  { Ea_mpu.rule_name = name; data_base = base; data_size = size; read_by = read; write_by = write }

let test_unenrolled_open () =
  let m = Ea_mpu.create ~capacity:4 in
  Alcotest.(check bool) "read anywhere" true (Ea_mpu.check m ~code:"x" ~addr:0 Ea_mpu.Read);
  Alcotest.(check bool) "write anywhere" true (Ea_mpu.check m ~code:"x" ~addr:0 Ea_mpu.Write)

let test_execution_awareness () =
  let m = Ea_mpu.create ~capacity:4 in
  Ea_mpu.program m (rule ~read:(Ea_mpu.Code_in [ "attest" ]) ~write:Ea_mpu.Nobody 100 16);
  Alcotest.(check bool) "attest reads" true
    (Ea_mpu.check m ~code:"attest" ~addr:100 Ea_mpu.Read);
  Alcotest.(check bool) "malware cannot read" false
    (Ea_mpu.check m ~code:"untrusted" ~addr:100 Ea_mpu.Read);
  Alcotest.(check bool) "nobody writes" false
    (Ea_mpu.check m ~code:"attest" ~addr:100 Ea_mpu.Write);
  Alcotest.(check bool) "outside the range all open" true
    (Ea_mpu.check m ~code:"untrusted" ~addr:116 Ea_mpu.Read)

let test_write_only_subject () =
  let m = Ea_mpu.create ~capacity:4 in
  Ea_mpu.program m (rule ~read:Ea_mpu.Anyone ~write:(Ea_mpu.Code_in [ "clock" ]) 0 8);
  Alcotest.(check bool) "anyone reads" true (Ea_mpu.check m ~code:"app" ~addr:3 Ea_mpu.Read);
  Alcotest.(check bool) "clock writes" true (Ea_mpu.check m ~code:"clock" ~addr:3 Ea_mpu.Write);
  Alcotest.(check bool) "app cannot write" false
    (Ea_mpu.check m ~code:"app" ~addr:3 Ea_mpu.Write)

let test_lockdown () =
  let m = Ea_mpu.create ~capacity:4 in
  Ea_mpu.program m (rule 0 8);
  Ea_mpu.lock m;
  Alcotest.(check bool) "locked" true (Ea_mpu.is_locked m);
  Alcotest.check_raises "program after lock" Ea_mpu.Locked (fun () ->
      Ea_mpu.program m (rule 16 8));
  Alcotest.check_raises "clear after lock" Ea_mpu.Locked (fun () -> Ea_mpu.clear m);
  Alcotest.(check int) "rules intact" 1 (Ea_mpu.rule_count m)

let test_capacity () =
  let m = Ea_mpu.create ~capacity:2 in
  Ea_mpu.program m (rule 0 8);
  Ea_mpu.program m (rule 16 8);
  Alcotest.check_raises "table full" Ea_mpu.Capacity_exceeded (fun () ->
      Ea_mpu.program m (rule 32 8))

let test_clear_before_lock () =
  (* the gap secure boot must close: malware clears rules pre-lockdown *)
  let m = Ea_mpu.create ~capacity:2 in
  Ea_mpu.program m (rule ~read:(Ea_mpu.Code_in [ "attest" ]) 0 8);
  Alcotest.(check bool) "protected" false (Ea_mpu.check m ~code:"mal" ~addr:0 Ea_mpu.Read);
  Ea_mpu.clear m;
  Alcotest.(check bool) "exposed after clear" true
    (Ea_mpu.check m ~code:"mal" ~addr:0 Ea_mpu.Read)

let test_overlapping_rules_grant_union () =
  let m = Ea_mpu.create ~capacity:4 in
  Ea_mpu.program m (rule ~name:"a" ~read:(Ea_mpu.Code_in [ "a" ]) 0 16);
  Ea_mpu.program m (rule ~name:"b" ~read:(Ea_mpu.Code_in [ "b" ]) 8 16);
  Alcotest.(check bool) "a in own range" true (Ea_mpu.check m ~code:"a" ~addr:4 Ea_mpu.Read);
  Alcotest.(check bool) "a in overlap" true (Ea_mpu.check m ~code:"a" ~addr:10 Ea_mpu.Read);
  Alcotest.(check bool) "b in overlap" true (Ea_mpu.check m ~code:"b" ~addr:10 Ea_mpu.Read);
  Alcotest.(check bool) "c denied" false (Ea_mpu.check m ~code:"c" ~addr:10 Ea_mpu.Read)

let test_check_range () =
  let m = Ea_mpu.create ~capacity:4 in
  Ea_mpu.program m (rule ~read:(Ea_mpu.Code_in [ "attest" ]) 100 16);
  Alcotest.(check bool) "range fully outside" true
    (Ea_mpu.check_range m ~code:"mal" ~addr:0 ~len:100 Ea_mpu.Read);
  Alcotest.(check bool) "range straddling denied" false
    (Ea_mpu.check_range m ~code:"mal" ~addr:90 ~len:20 Ea_mpu.Read);
  Alcotest.(check bool) "range straddling allowed for attest" true
    (Ea_mpu.check_range m ~code:"attest" ~addr:90 ~len:20 Ea_mpu.Read);
  Alcotest.(check bool) "range ending at boundary" true
    (Ea_mpu.check_range m ~code:"mal" ~addr:90 ~len:10 Ea_mpu.Read);
  Alcotest.(check bool) "range starting at limit" true
    (Ea_mpu.check_range m ~code:"mal" ~addr:116 ~len:10 Ea_mpu.Read);
  Alcotest.check_raises "bad length"
    (Invalid_argument "Ea_mpu.check_range: non-positive length") (fun () ->
      ignore (Ea_mpu.check_range m ~code:"mal" ~addr:0 ~len:0 Ea_mpu.Read))

let qcheck_range_equals_bytewise =
  (* the boundary-sampling optimization must agree with the byte-by-byte
     semantics *)
  let gen =
    QCheck.quad (QCheck.int_range 0 40) (QCheck.int_range 1 40) (QCheck.int_range 0 40)
      (QCheck.int_range 1 40)
  in
  QCheck.Test.make ~name:"ea_mpu: check_range = forall bytes" ~count:300 gen
    (fun (rule_base, rule_size, addr, len) ->
      let m = Ea_mpu.create ~capacity:2 in
      Ea_mpu.program m (rule ~read:(Ea_mpu.Code_in [ "a" ]) rule_base rule_size);
      let fast = Ea_mpu.check_range m ~code:"b" ~addr ~len Ea_mpu.Read in
      let slow =
        List.for_all
          (fun i -> Ea_mpu.check m ~code:"b" ~addr:(addr + i) Ea_mpu.Read)
          (List.init len (fun i -> i))
      in
      fast = slow)

let tests =
  [
    Alcotest.test_case "unenrolled memory open" `Quick test_unenrolled_open;
    Alcotest.test_case "execution awareness" `Quick test_execution_awareness;
    Alcotest.test_case "write-only subject" `Quick test_write_only_subject;
    Alcotest.test_case "lockdown" `Quick test_lockdown;
    Alcotest.test_case "capacity" `Quick test_capacity;
    Alcotest.test_case "clear before lock" `Quick test_clear_before_lock;
    Alcotest.test_case "overlapping rules" `Quick test_overlapping_rules_grant_union;
    Alcotest.test_case "check_range" `Quick test_check_range;
    QCheck_alcotest.to_alcotest qcheck_range_equals_bytewise;
  ]
