open Ra_mcu

let make () =
  let memory =
    Memory.create
      [
        Region.make ~name:"idt" ~base:0x100 ~size:256 ~kind:Region.Ram;
        Region.make ~name:"ctrl" ~base:0x200 ~size:16 ~kind:Region.Mmio;
        Region.make ~name:"ram" ~base:0x1000 ~size:256 ~kind:Region.Ram;
      ]
  in
  let mpu = Ea_mpu.create ~capacity:4 in
  let cpu = Cpu.create memory mpu ~clock_hz:24_000_000 in
  let intr = Interrupt.create cpu ~idt_base:0x100 ~vectors:8 ~ctrl_addr:0x200 in
  (cpu, mpu, intr)

let test_dispatch () =
  let cpu, _, intr = make () in
  Interrupt.enable_all_raw intr;
  let fired = ref 0 in
  let seen_ctx = ref "" in
  Interrupt.register_handler intr ~entry_addr:0xBEEF ~code_region:"handler_code"
    ~handler:(fun () ->
      incr fired;
      seen_ctx := Cpu.context cpu);
  Interrupt.set_vector_raw intr ~vector:3 ~entry_addr:0xBEEF;
  Interrupt.raise_irq intr ~vector:3;
  Alcotest.(check int) "fired" 1 !fired;
  Alcotest.(check string) "handler context" "handler_code" !seen_ctx;
  Alcotest.(check int) "delivered stat" 1 (Interrupt.stats intr).Interrupt.delivered

let test_tampered_idt_loses_interrupt () =
  let _, _, intr = make () in
  Interrupt.enable_all_raw intr;
  let fired = ref 0 in
  Interrupt.register_handler intr ~entry_addr:0xBEEF ~code_region:"h"
    ~handler:(fun () -> incr fired);
  Interrupt.set_vector_raw intr ~vector:3 ~entry_addr:0xBEEF;
  (* malware redirects the vector to an address with no registered code *)
  Interrupt.set_vector intr ~vector:3 ~entry_addr:0xDEAD;
  Interrupt.raise_irq intr ~vector:3;
  Alcotest.(check int) "handler never ran" 0 !fired;
  Alcotest.(check int) "lost stat" 1 (Interrupt.stats intr).Interrupt.lost_no_handler

let test_idt_protection_blocks_tamper () =
  let _, mpu, intr = make () in
  Interrupt.enable_all_raw intr;
  Ea_mpu.program mpu
    {
      Ea_mpu.rule_name = "IDT";
      data_base = 0x100;
      data_size = 256;
      read_by = Ea_mpu.Anyone;
      write_by = Ea_mpu.Nobody;
    };
  Interrupt.register_handler intr ~entry_addr:0xBEEF ~code_region:"h" ~handler:(fun () -> ());
  (try
     Interrupt.set_vector intr ~vector:3 ~entry_addr:0xDEAD;
     Alcotest.fail "tamper should fault"
   with Cpu.Protection_fault _ -> ());
  (* raw (hardware/boot) writes still work *)
  Interrupt.set_vector_raw intr ~vector:3 ~entry_addr:0xBEEF;
  Alcotest.(check int) "vector intact" 0xBEEF (Interrupt.vector_entry intr ~vector:3)

let test_disabled_interrupts_suppressed () =
  let _, _, intr = make () in
  let fired = ref 0 in
  Interrupt.register_handler intr ~entry_addr:0xBEEF ~code_region:"h"
    ~handler:(fun () -> incr fired);
  Interrupt.set_vector_raw intr ~vector:1 ~entry_addr:0xBEEF;
  (* never enabled *)
  Interrupt.raise_irq intr ~vector:1;
  Alcotest.(check int) "suppressed" 0 !fired;
  Alcotest.(check int) "suppressed stat" 1
    (Interrupt.stats intr).Interrupt.suppressed_disabled;
  Interrupt.enable_all_raw intr;
  Interrupt.raise_irq intr ~vector:1;
  Alcotest.(check int) "fires once enabled" 1 !fired

let test_software_disable_is_mediated () =
  let _, mpu, intr = make () in
  Interrupt.enable_all_raw intr;
  Ea_mpu.program mpu
    {
      Ea_mpu.rule_name = "ctrl";
      data_base = 0x200;
      data_size = 16;
      read_by = Ea_mpu.Anyone;
      write_by = Ea_mpu.Nobody;
    };
  (try
     Interrupt.set_enabled intr false;
     Alcotest.fail "disable should fault"
   with Cpu.Protection_fault _ -> ());
  Alcotest.(check bool) "still enabled" true (Interrupt.enabled intr)

let test_bad_vector () =
  let _, _, intr = make () in
  Alcotest.check_raises "out of range" (Invalid_argument "Interrupt: bad vector")
    (fun () -> Interrupt.raise_irq intr ~vector:64)

let tests =
  [
    Alcotest.test_case "dispatch" `Quick test_dispatch;
    Alcotest.test_case "tampered IDT loses interrupt" `Quick
      test_tampered_idt_loses_interrupt;
    Alcotest.test_case "IDT rule blocks tamper" `Quick test_idt_protection_blocks_tamper;
    Alcotest.test_case "disabled interrupts suppressed" `Quick
      test_disabled_interrupts_suppressed;
    Alcotest.test_case "software disable is mediated" `Quick
      test_software_disable_is_mediated;
    Alcotest.test_case "bad vector" `Quick test_bad_vector;
  ]
