open Ra_net

let test_presets () =
  Alcotest.(check (float 1e-9)) "direct min rtt" 1.0 (Path.min_rtt_ms Path.direct);
  Alcotest.(check bool) "internet jitter dwarfs direct" true
    (Path.jitter_span_ms Path.internet > 100.0 *. Path.jitter_span_ms Path.direct)

let test_validation () =
  Alcotest.check_raises "zero hops" (Invalid_argument "Path.make: hops must be positive")
    (fun () -> ignore (Path.make ~hops:0 ~per_hop_ms:1.0 ~jitter_per_hop_ms:0.0));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Path.make: delays must be non-negative") (fun () ->
      ignore (Path.make ~hops:1 ~per_hop_ms:(-1.0) ~jitter_per_hop_ms:0.0))

let qcheck_samples_within_bounds =
  QCheck.Test.make ~name:"path: samples stay within [min,max] rtt" ~count:300
    QCheck.(triple (int_range 1 16) (float_range 0.1 10.0) int64)
    (fun (hops, jitter, seed) ->
      let p = Path.make ~hops ~per_hop_ms:1.0 ~jitter_per_hop_ms:jitter in
      let prng = Ra_crypto.Prng.create seed in
      let rtt = Path.sample_rtt_ms p prng in
      rtt >= Path.min_rtt_ms p -. 1e-9 && rtt <= Path.max_rtt_ms p +. 1e-9)

let qcheck_more_hops_more_uncertainty =
  QCheck.Test.make ~name:"path: jitter span grows with hops" ~count:100
    QCheck.(pair (int_range 1 10) (int_range 1 10))
    (fun (h1, h2) ->
      let span h =
        Path.jitter_span_ms (Path.make ~hops:h ~per_hop_ms:1.0 ~jitter_per_hop_ms:2.0)
      in
      let lo = min h1 h2 and hi = max h1 h2 in
      span lo <= span hi)

let test_swatt_breaks_beyond_direct_links () =
  (* the §2 claim, end to end: the cheater's margin on a 16 KB prover
     beats direct-link jitter but loses to LAN/Internet paths *)
  let margin =
    Ra_core.Swatt.detection_margin_ms ~params:Ra_core.Swatt.default_params
      ~memory_bytes:(16 * 1024) ~hz:24_000_000
  in
  Alcotest.(check bool) "viable on a direct link" true
    (Path.jitter_span_ms Path.direct < margin);
  Alcotest.(check bool) "broken over the internet" true
    (Path.jitter_span_ms Path.internet > margin)

let tests =
  [
    Alcotest.test_case "presets" `Quick test_presets;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "SWATT viability per path (§2)" `Quick
      test_swatt_breaks_beyond_direct_links;
    QCheck_alcotest.to_alcotest qcheck_samples_within_bounds;
    QCheck_alcotest.to_alcotest qcheck_more_hops_more_uncertainty;
  ]
