open Ra_core
module Device = Ra_mcu.Device
module Memory = Ra_mcu.Memory

let key = String.make 60 'k'

let make_pair () =
  let mk () =
    let d = Device.create ~ram_size:4096 ~key () in
    Device.fill_ram_deterministic d ~seed:99L;
    d
  in
  (mk (), mk ())

let params = { Swatt.default_params with Swatt.iterations = 8192 }

let test_honest_accepted () =
  let reference, prover = make_pair () in
  let v = Swatt.attest ~params ~jitter_ms:0.0 ~reference ~prover "n1" in
  Alcotest.(check bool) "checksum ok" true v.Swatt.checksum_ok;
  Alcotest.(check bool) "accepted" true (v.Swatt.outcome = Swatt.Accepted)

let test_nonce_changes_checksum () =
  let reference, prover = make_pair () in
  let c1 = Swatt.checksum prover ~nonce:"n1" ~iterations:2048 in
  let c2 = Swatt.checksum prover ~nonce:"n2" ~iterations:2048 in
  Alcotest.(check bool) "different walks" true (c1 <> c2);
  ignore reference

let test_naive_infection_caught () =
  let reference, prover = make_pair () in
  Memory.write_bytes (Device.memory prover) (Device.attested_base prover) "MALWARE!";
  let v = Swatt.attest ~params ~jitter_ms:0.0 ~reference ~prover "n1" in
  Alcotest.(check bool) "wrong checksum" true
    (v.Swatt.outcome = Swatt.Rejected_wrong_checksum)

let test_cheater_caught_by_timing () =
  let reference, prover = make_pair () in
  Memory.write_bytes (Device.memory prover) (Device.attested_base prover) "MALWARE!";
  let v = Swatt.attest ~cheating:true ~params ~jitter_ms:0.0 ~reference ~prover "n1" in
  Alcotest.(check bool) "checksum forged successfully" true v.Swatt.checksum_ok;
  Alcotest.(check bool) "but too slow" true (v.Swatt.outcome = Swatt.Rejected_too_slow);
  (* the overhead is exactly the detection margin *)
  Alcotest.(check (float 1e-6)) "margin arithmetic"
    (Swatt.detection_margin_ms ~params ~memory_bytes:4096 ~hz:24_000_000)
    (v.Swatt.measured_ms -. v.Swatt.honest_ms)

let test_jitter_defeats_timing () =
  (* a multi-hop network: jitter exceeds the cheat margin, so the slack
     needed to accept honest provers also admits the cheater — §2's
     "not viable for attestation performed over a network" *)
  let margin = Swatt.detection_margin_ms ~params ~memory_bytes:4096 ~hz:24_000_000 in
  let jitter = 3.0 *. margin in
  let honest_time = float_of_int (8192 * params.Swatt.cycles_per_access) *. 1000.0 /. 24e6 in
  let tolerant = { params with Swatt.slack_factor = (honest_time +. jitter) /. honest_time } in
  (* honest prover arriving with full jitter is (just) accepted *)
  let reference, prover = make_pair () in
  let honest = Swatt.attest ~params:tolerant ~jitter_ms:jitter ~reference ~prover "n" in
  Alcotest.(check bool) "honest accepted under jitter" true
    (honest.Swatt.outcome = Swatt.Accepted);
  (* the cheater on a fast path sails through the same threshold *)
  let reference2, prover2 = make_pair () in
  Memory.write_bytes (Device.memory prover2) (Device.attested_base prover2) "MALWARE!";
  let cheat =
    Swatt.attest ~cheating:true ~params:tolerant ~jitter_ms:0.5 ~reference:reference2
      ~prover:prover2 "n"
  in
  Alcotest.(check bool) "cheater accepted: timing check broken" true
    (cheat.Swatt.outcome = Swatt.Accepted)

let test_prover_pays_cycles () =
  let reference, prover = make_pair () in
  let before = Ra_mcu.Cpu.work_cycles (Device.cpu prover) in
  let _ = Swatt.attest ~params ~jitter_ms:0.0 ~reference ~prover "n" in
  let spent = Int64.sub (Ra_mcu.Cpu.work_cycles (Device.cpu prover)) before in
  Alcotest.(check int64) "12 cycles per access" (Int64.of_int (8192 * 12)) spent

let qcheck_honest_always_accepted_without_jitter =
  QCheck.Test.make ~name:"swatt: honest prover always accepted at zero jitter" ~count:20
    QCheck.(string_of_size Gen.(1 -- 16))
    (fun nonce ->
      let reference, prover = make_pair () in
      (Swatt.attest ~params ~jitter_ms:0.0 ~reference ~prover nonce).Swatt.outcome
      = Swatt.Accepted)

let tests =
  [
    Alcotest.test_case "honest accepted" `Quick test_honest_accepted;
    Alcotest.test_case "nonce changes the walk" `Quick test_nonce_changes_checksum;
    Alcotest.test_case "naive infection caught" `Quick test_naive_infection_caught;
    Alcotest.test_case "cheater caught by timing" `Quick test_cheater_caught_by_timing;
    Alcotest.test_case "network jitter defeats timing (§2)" `Quick
      test_jitter_defeats_timing;
    Alcotest.test_case "prover pays cycles" `Quick test_prover_pays_cycles;
    QCheck_alcotest.to_alcotest qcheck_honest_always_accepted_without_jitter;
  ]
