(* Region and Memory: mapping, bus faults, ROM sealing, word accessors. *)
open Ra_mcu

let make_mem () =
  Memory.create
    [
      Region.make ~name:"rom" ~base:0x0000 ~size:0x100 ~kind:Region.Rom;
      Region.make ~name:"ram" ~base:0x1000 ~size:0x200 ~kind:Region.Ram;
    ]

let test_region_basics () =
  let r = Region.make ~name:"r" ~base:16 ~size:16 ~kind:Region.Ram in
  Alcotest.(check int) "limit" 32 (Region.limit r);
  Alcotest.(check bool) "contains base" true (Region.contains r 16);
  Alcotest.(check bool) "contains last" true (Region.contains r 31);
  Alcotest.(check bool) "excludes limit" false (Region.contains r 32);
  Alcotest.check_raises "zero size" (Invalid_argument "Region.make: size must be positive")
    (fun () -> ignore (Region.make ~name:"x" ~base:0 ~size:0 ~kind:Region.Ram))

let test_overlap_rejected () =
  Alcotest.check_raises "overlap"
    (Invalid_argument
       "Memory.create: a[RAM 0x000000..0x00000f] overlaps b[RAM 0x000008..0x000017]")
    (fun () ->
      ignore
        (Memory.create
           [
             Region.make ~name:"a" ~base:0 ~size:16 ~kind:Region.Ram;
             Region.make ~name:"b" ~base:8 ~size:16 ~kind:Region.Ram;
           ]))

let test_read_write () =
  let m = make_mem () in
  Memory.write_byte m 0x1000 0xAB;
  Alcotest.(check int) "byte" 0xAB (Memory.read_byte m 0x1000);
  Memory.write_bytes m 0x1010 "hello";
  Alcotest.(check string) "bytes" "hello" (Memory.read_bytes m 0x1010 5);
  Memory.write_u32 m 0x1020 0xDEADBEEF;
  Alcotest.(check int) "u32 little-endian" 0xDEADBEEF (Memory.read_u32 m 0x1020);
  Alcotest.(check int) "u32 byte order" 0xEF (Memory.read_byte m 0x1020);
  Memory.write_u64 m 0x1030 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Memory.read_u64 m 0x1030)

let test_bus_fault () =
  let m = make_mem () in
  Alcotest.check_raises "unmapped read"
    (Memory.Bus_fault "no region at address 0x005000") (fun () ->
      ignore (Memory.read_byte m 0x5000))

let test_rom_sealing () =
  let m = make_mem () in
  Memory.write_byte m 0x10 0x42 (* manufacture-time programming *);
  Memory.seal_rom m;
  Alcotest.(check int) "rom readable" 0x42 (Memory.read_byte m 0x10);
  Alcotest.check_raises "rom write after seal"
    (Memory.Bus_fault "ROM write at 0x000010 (rom)") (fun () ->
      Memory.write_byte m 0x10 0);
  (* RAM unaffected by sealing *)
  Memory.write_byte m 0x1000 1;
  Alcotest.(check int) "ram still writable" 1 (Memory.read_byte m 0x1000)

let test_region_lookup () =
  let m = make_mem () in
  Alcotest.(check string) "by name" "ram" (Memory.region_named m "ram").Region.name;
  (match Memory.region_of_addr m 0x1005 with
  | Some r -> Alcotest.(check string) "by addr" "ram" r.Region.name
  | None -> Alcotest.fail "lookup failed");
  Alcotest.(check bool) "miss" true (Memory.region_of_addr m 0x9999 = None)

let qcheck_u32_roundtrip =
  QCheck.Test.make ~name:"memory: u32 roundtrip" ~count:200
    QCheck.(int_bound 0xFFFFFFF)
    (fun v ->
      let m = make_mem () in
      Memory.write_u32 m 0x1000 v;
      Memory.read_u32 m 0x1000 = v)

let qcheck_u64_roundtrip =
  QCheck.Test.make ~name:"memory: u64 roundtrip" ~count:200 QCheck.int64 (fun v ->
      let m = make_mem () in
      Memory.write_u64 m 0x1000 v;
      Memory.read_u64 m 0x1000 = v)

let tests =
  [
    Alcotest.test_case "region basics" `Quick test_region_basics;
    Alcotest.test_case "overlap rejected" `Quick test_overlap_rejected;
    Alcotest.test_case "read/write" `Quick test_read_write;
    Alcotest.test_case "bus fault" `Quick test_bus_fault;
    Alcotest.test_case "rom sealing" `Quick test_rom_sealing;
    Alcotest.test_case "region lookup" `Quick test_region_lookup;
    QCheck_alcotest.to_alcotest qcheck_u32_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_u64_roundtrip;
  ]
