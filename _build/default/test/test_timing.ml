(* The Table-1 calibration: our cycle model must reproduce the paper's
   published numbers exactly. *)
open Ra_mcu

let ms = Alcotest.(check (float 1e-3))

let test_table1_constants () =
  ms "hmac fix" 0.340 Timing.hmac_sha1_fixed_ms;
  ms "hmac per block" 0.092 Timing.hmac_sha1_per_block_ms;
  ms "aes keyexp" 0.074 Timing.aes128_key_expansion_ms;
  ms "aes enc" 0.288 Timing.aes128_encrypt_block_ms;
  ms "aes dec" 0.570 Timing.aes128_decrypt_block_ms;
  ms "speck keyexp" 0.016 Timing.speck64_key_expansion_ms;
  ms "speck enc" 0.017 Timing.speck64_encrypt_block_ms;
  ms "speck dec" 0.015 Timing.speck64_decrypt_block_ms;
  ms "ecc sign" 183.464 Timing.ecdsa_sign_ms;
  ms "ecc verify" 170.907 Timing.ecdsa_verify_ms

let test_cycle_conversion () =
  Alcotest.(check int64) "1ms at 24MHz" 24000L (Timing.cycles_of_ms 1.0);
  ms "roundtrip" 0.340 (Timing.ms_of_cycles (Timing.cycles_of_ms 0.340));
  Alcotest.(check int64) "other hz" 1000L (Timing.cycles_of_ms ~hz:1_000_000 1.0)

let test_memory_mac_512kb () =
  (* §3.1: MACing 512 KB of RAM ≈ 754 ms (8192 blocks x 0.092 + 0.340) *)
  let t = Timing.memory_mac_ms ~bytes_len:(512 * 1024) in
  ms "754 ms" 754.004 t

let test_request_auth_costs () =
  (* §4.1: "a SHA-1-based HMAC can be validated in 0.430 ms" *)
  ms "hmac request" 0.432 (Timing.request_auth_ms Timing.Auth_hmac_sha1);
  (* AES: one-block message of 256 bits = 2 AES blocks + key expansion *)
  ms "aes request" (0.074 +. (2.0 *. 0.288))
    (Timing.request_auth_ms Timing.Auth_aes128_cbc_mac);
  ms "speck request" (0.016 +. 0.017)
    (Timing.request_auth_ms Timing.Auth_speck64_cbc_mac);
  ms "speck precomputed" 0.017
    (Timing.request_auth_ms ~precomputed_key_schedule:true Timing.Auth_speck64_cbc_mac);
  ms "ecdsa request" 170.907 (Timing.request_auth_ms Timing.Auth_ecdsa_verify)

let test_ecdsa_is_dos_grade () =
  (* the §4.1 argument: ECDSA authentication costs ~400x HMAC *)
  let ecdsa = Timing.request_auth_ms Timing.Auth_ecdsa_verify in
  let hmac = Timing.request_auth_ms Timing.Auth_hmac_sha1 in
  Alcotest.(check bool) "ratio > 300" true (ecdsa /. hmac > 300.0)

let test_block_rounding () =
  let one = Timing.hmac_sha1_cycles ~bytes_len:1 in
  let sixty_four = Timing.hmac_sha1_cycles ~bytes_len:64 in
  let sixty_five = Timing.hmac_sha1_cycles ~bytes_len:65 in
  Alcotest.(check int64) "partial block = full block" sixty_four one;
  Alcotest.(check bool) "next block starts at 65" true
    (Int64.compare sixty_five sixty_four > 0)

let qcheck_mac_monotone =
  QCheck.Test.make ~name:"timing: memory mac cost is monotone" ~count:100
    QCheck.(pair (int_range 0 100000) (int_range 0 100000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Int64.compare
        (Timing.memory_mac_cycles ~bytes_len:lo)
        (Timing.memory_mac_cycles ~bytes_len:hi)
      <= 0)

let tests =
  [
    Alcotest.test_case "Table 1 constants" `Quick test_table1_constants;
    Alcotest.test_case "cycle conversion" `Quick test_cycle_conversion;
    Alcotest.test_case "512KB memory MAC (§3.1)" `Quick test_memory_mac_512kb;
    Alcotest.test_case "request auth costs (§4.1)" `Quick test_request_auth_costs;
    Alcotest.test_case "ECDSA is DoS-grade (§4.1)" `Quick test_ecdsa_is_dos_grade;
    Alcotest.test_case "block rounding" `Quick test_block_rounding;
    QCheck_alcotest.to_alcotest qcheck_mac_monotone;
  ]
