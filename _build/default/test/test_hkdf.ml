(* HKDF against RFC 5869 test vectors, plus derivation properties. *)
open Ra_crypto

let hex = Hexutil.to_hex
let unhex = Hexutil.of_hex
let check = Alcotest.(check string)

let test_rfc5869_case1 () =
  let ikm = String.make 22 '\x0b' in
  let salt = unhex "000102030405060708090a0b0c" in
  let info = unhex "f0f1f2f3f4f5f6f7f8f9" in
  let prk = Hkdf.extract ~salt ~ikm () in
  check "PRK" "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5" (hex prk);
  check "OKM"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (hex (Hkdf.expand ~prk ~info ~length:42))

let test_rfc5869_case3 () =
  (* no salt, empty info *)
  let ikm = String.make 22 '\x0b' in
  let prk = Hkdf.extract ~ikm () in
  check "PRK" "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04" (hex prk);
  check "OKM"
    "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
    (hex (Hkdf.expand ~prk ~info:"" ~length:42))

let test_lengths () =
  let prk = Hkdf.extract ~ikm:"k" () in
  List.iter
    (fun n -> Alcotest.(check int) (Printf.sprintf "%d bytes" n) n
        (String.length (Hkdf.expand ~prk ~info:"i" ~length:n)))
    [ 1; 20; 32; 33; 64; 100 ];
  Alcotest.check_raises "zero" (Invalid_argument "Hkdf.expand: bad length") (fun () ->
      ignore (Hkdf.expand ~prk ~info:"" ~length:0));
  Alcotest.check_raises "too long" (Invalid_argument "Hkdf.expand: bad length") (fun () ->
      ignore (Hkdf.expand ~prk ~info:"" ~length:(256 * 32)))

let test_device_key_separation () =
  (* the fleet-provisioning property: per-device keys are pairwise
     distinct and recomputable *)
  let master = "operator-master-secret" in
  let key_for device_id =
    Hkdf.derive ~salt:"ra-fleet-v1" ~ikm:master ~info:device_id ~length:20 ()
  in
  Alcotest.(check bool) "distinct" true (key_for "dev-1" <> key_for "dev-2");
  Alcotest.(check string) "recomputable" (key_for "dev-1") (key_for "dev-1")

let qcheck_prefix_consistency =
  QCheck.Test.make ~name:"hkdf: shorter output is a prefix of longer" ~count:100
    QCheck.(triple small_string small_string (int_range 1 60))
    (fun (ikm, info, n) ->
      let prk = Hkdf.extract ~ikm () in
      let long = Hkdf.expand ~prk ~info ~length:(n + 10) in
      Hkdf.expand ~prk ~info ~length:n = String.sub long 0 n)

let qcheck_info_separation =
  QCheck.Test.make ~name:"hkdf: different info, different keys" ~count:100
    QCheck.(triple small_string small_string small_string)
    (fun (ikm, i1, i2) ->
      QCheck.assume (i1 <> i2);
      Hkdf.derive ~ikm ~info:i1 ~length:20 () <> Hkdf.derive ~ikm ~info:i2 ~length:20 ())

let tests =
  [
    Alcotest.test_case "RFC 5869 case 1" `Quick test_rfc5869_case1;
    Alcotest.test_case "RFC 5869 case 3" `Quick test_rfc5869_case3;
    Alcotest.test_case "output lengths" `Quick test_lengths;
    Alcotest.test_case "per-device key separation" `Quick test_device_key_separation;
    QCheck_alcotest.to_alcotest qcheck_prefix_consistency;
    QCheck_alcotest.to_alcotest qcheck_info_separation;
  ]
