(* AES-CMAC against the RFC 4493 test vectors. *)
open Ra_crypto

let hex = Hexutil.to_hex
let unhex = Hexutil.of_hex
let check = Alcotest.(check string)

let key () = Cmac.derive (Aes.expand (unhex "2b7e151628aed2a6abf7158809cf4f3c"))

(* RFC 4493 message material (the AES test vector plaintext) *)
let m64 =
  unhex
    ("6bc1bee22e409f96e93d7e117393172a" ^ "ae2d8a571e03ac9c9eb76fac45af8e51"
   ^ "30c81c46a35ce411e5fbc1191a0a52ef" ^ "f69f2445df4f9b17ad2b417be66c3710")

let test_rfc4493_vectors () =
  let k = key () in
  check "empty message" "bb1d6929e95937287fa37d129b756746" (hex (Cmac.mac k ""));
  check "16 bytes" "070a16b46b4d4144f79bdd9dd04a287c"
    (hex (Cmac.mac k (String.sub m64 0 16)));
  check "40 bytes" "dfa66747de9ae63030ca32611497c827"
    (hex (Cmac.mac k (String.sub m64 0 40)));
  check "64 bytes" "51f0bebf7e3b9d92fc49741779363cfe" (hex (Cmac.mac k m64))

let test_verify () =
  let k = key () in
  let tag = Cmac.mac k "hello" in
  Alcotest.(check bool) "accepts" true (Cmac.verify k ~msg:"hello" ~tag);
  Alcotest.(check bool) "rejects" false (Cmac.verify k ~msg:"hellO" ~tag)

let qcheck_distinct_messages =
  QCheck.Test.make ~name:"cmac: distinct messages, distinct tags" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 80)) (string_of_size Gen.(0 -- 80)))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let k = key () in
      Cmac.mac k a <> Cmac.mac k b)

let qcheck_boundary_lengths =
  QCheck.Test.make ~name:"cmac: stable across block boundaries" ~count:50
    QCheck.(int_range 0 70)
    (fun n ->
      let k = key () in
      let m = String.make n 'x' in
      String.length (Cmac.mac k m) = 16 && Cmac.verify k ~msg:m ~tag:(Cmac.mac k m))

let tests =
  [
    Alcotest.test_case "RFC 4493 vectors" `Quick test_rfc4493_vectors;
    Alcotest.test_case "verify" `Quick test_verify;
    QCheck_alcotest.to_alcotest qcheck_distinct_messages;
    QCheck_alcotest.to_alcotest qcheck_boundary_lengths;
  ]
