open Ra_mcu

let key = String.make 20 'K' ^ String.make 40 '\x00'

let test_construction () =
  let d = Device.create ~ram_size:8192 ~key () in
  Alcotest.(check int) "attested len" 8192 (Device.attested_len d);
  Alcotest.(check int) "key len" 60 (Device.key_len d);
  Alcotest.(check bool) "no clock by default" true (Device.clock d = None)

let test_key_provisioned_and_sealed () =
  let d = Device.create ~key () in
  Alcotest.(check string) "key readable raw" key
    (Memory.read_bytes (Device.memory d) (Device.key_addr d) (Device.key_len d));
  (* ROM sealed at manufacture: even raw writes fault *)
  (try
     Memory.write_byte (Device.memory d) (Device.key_addr d) 0;
     Alcotest.fail "ROM must be sealed"
   with Memory.Bus_fault _ -> ())

let test_key_in_flash_is_writable_without_rule () =
  let d = Device.create ~key_location:Device.Key_in_flash ~key () in
  (* flash is not inherently write-protected — without an EA-MPU rule the
     key can be overwritten (the §6.2 point) *)
  Cpu.store_byte (Device.cpu d) (Device.key_addr d) 0;
  Alcotest.(check int) "overwritten" 0
    (Memory.read_byte (Device.memory d) (Device.key_addr d))

let test_bad_key_rejected () =
  Alcotest.check_raises "empty key"
    (Invalid_argument "Device.create: key must be 1..64 bytes") (fun () ->
      ignore (Device.create ~key:"" ()))

let test_clock_variants () =
  let d64 = Device.create ~clock_impl:(Device.Clock_hw { width = 64; divider_log2 = 0 }) ~key () in
  (match Device.clock d64 with
  | Some c -> Alcotest.(check bool) "hw kind" true (Clock.kind c = Clock.Hw_counter)
  | None -> Alcotest.fail "expected clock");
  let dsw =
    Device.create ~clock_impl:(Device.Clock_sw { lsb_width = 24; divider_log2 = 0 }) ~key ()
  in
  (match Device.clock dsw with
  | Some c ->
    Alcotest.(check bool) "sw kind" true (Clock.kind c = Clock.Sw_clock);
    Alcotest.(check (option int)) "msb addr" (Some (Device.clock_msb_addr dsw))
      (Clock.msb_addr c)
  | None -> Alcotest.fail "expected clock")

let test_idle_advances_clock_and_sleep_energy () =
  let energy = Energy.create ~capacity_joules:10.0 ~active_nj_per_cycle:1000.0 ~sleep_microwatt:1.0 () in
  let d =
    Device.create ~clock_impl:(Device.Clock_hw { width = 64; divider_log2 = 0 }) ~energy ~key ()
  in
  Device.idle d ~seconds:10.0;
  (match Device.clock d with
  | Some c -> Alcotest.(check (float 0.01)) "clock advanced" 10.0 (Clock.seconds c)
  | None -> Alcotest.fail "expected clock");
  (* 10 s at 1 µW = 10 µJ, far below what 10s of *active* cycles would cost *)
  Alcotest.(check (float 1e-7)) "sleep energy only" 1e-5 (Energy.consumed_joules energy)

let test_deterministic_ram () =
  let d1 = Device.create ~ram_size:4096 ~key () in
  let d2 = Device.create ~ram_size:4096 ~key () in
  Device.fill_ram_deterministic d1 ~seed:7L;
  Device.fill_ram_deterministic d2 ~seed:7L;
  let img d = Memory.read_bytes (Device.memory d) (Device.attested_base d) 4096 in
  Alcotest.(check bool) "same seed, same image" true (img d1 = img d2);
  Device.fill_ram_deterministic d2 ~seed:8L;
  Alcotest.(check bool) "different seed differs" true (img d1 <> img d2)

let test_actuator_protection () =
  let d = Device.create ~key () in
  Ea_mpu.program (Device.mpu d) (Device.rule_protect_actuator d);
  Ea_mpu.lock (Device.mpu d);
  let cpu = Device.cpu d in
  (* the application region may drive the peripheral *)
  Cpu.with_context cpu Device.region_app (fun () ->
      Cpu.store_byte cpu (Device.actuator_addr d) 0xAA);
  Alcotest.(check int) "app actuated" 0xAA
    (Memory.read_byte (Device.memory d) (Device.actuator_addr d));
  (* compromised code elsewhere cannot *)
  (try
     Cpu.store_byte cpu (Device.actuator_addr d) 0x00;
     Alcotest.fail "malware actuation should fault"
   with Cpu.Protection_fault _ -> ());
  (* anyone may read back the peripheral state *)
  Alcotest.(check int) "readable" 0xAA (Cpu.load_byte cpu (Device.actuator_addr d))

let test_rom_image_provisioning () =
  let d = Device.create ~rom_images:[ (Device.region_attest, "TRUSTED-CODE") ] ~key () in
  let r = Memory.region_named (Device.memory d) Device.region_attest in
  Alcotest.(check string) "image present" "TRUSTED-CODE"
    (Memory.read_bytes (Device.memory d) r.Ra_mcu.Region.base 12);
  Alcotest.check_raises "oversized image"
    (Invalid_argument "Device.create: image for rom_clock exceeds region") (fun () ->
      ignore
        (Device.create ~rom_images:[ ("rom_clock", String.make 2048 'x') ] ~key ()))

let test_protection_rule_constructors () =
  let d = Device.create ~key () in
  let r = Device.rule_protect_key d in
  Alcotest.(check int) "key rule base" (Device.key_addr d) r.Ea_mpu.data_base;
  Alcotest.(check bool) "key readable only by attest" true
    (r.Ea_mpu.read_by = Ea_mpu.Code_in [ Device.region_attest ]);
  let c = Device.rule_protect_counter d in
  Alcotest.(check int) "counter rule base" (Device.counter_addr d) c.Ea_mpu.data_base;
  let i = Device.rule_protect_idt d in
  Alcotest.(check int) "idt rule size" (Device.idt_size d) i.Ea_mpu.data_size

let tests =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "key provisioning + ROM seal" `Quick test_key_provisioned_and_sealed;
    Alcotest.test_case "flash key writable without rule" `Quick
      test_key_in_flash_is_writable_without_rule;
    Alcotest.test_case "bad key rejected" `Quick test_bad_key_rejected;
    Alcotest.test_case "clock variants" `Quick test_clock_variants;
    Alcotest.test_case "idle: clock + sleep energy" `Quick
      test_idle_advances_clock_and_sleep_energy;
    Alcotest.test_case "deterministic RAM" `Quick test_deterministic_ram;
    Alcotest.test_case "actuator peripheral protection" `Quick test_actuator_protection;
    Alcotest.test_case "ROM image provisioning" `Quick test_rom_image_provisioning;
    Alcotest.test_case "protection rule constructors" `Quick
      test_protection_rule_constructors;
  ]
