(* Table 3 and §6.3 overhead arithmetic must match the paper digit for
   digit. *)
open Ra_hwcost

let ci = Alcotest.(check int)
let cf = Alcotest.(check (float 0.005))

let test_table3_constants () =
  ci "core registers" 5528 Component.siskiyou_peak.Component.direct_registers;
  ci "core luts" 14361 Component.siskiyou_peak.Component.direct_luts;
  ci "mpu regs for 2 rules" (278 + 232) (Component.ea_mpu_registers ~rules:2);
  ci "mpu luts for 2 rules" (417 + 364) (Component.ea_mpu_luts ~rules:2);
  ci "key rules" 1 Component.attest_key.Component.mpu_rules;
  ci "counter rules" 1 Component.request_counter.Component.mpu_rules;
  ci "64-bit clock regs" 64 Component.clock_64bit.Component.direct_registers;
  ci "32-bit clock luts" 32 Component.clock_32bit.Component.direct_luts;
  ci "sw-clock rules" 2 Component.sw_clock.Component.mpu_rules

let test_baseline () =
  (* §6.3: 5528+278+116*2 = 6038 registers; 14361+417+182*2 = 15142 LUTs *)
  ci "baseline registers" 6038 Synthesis.baseline.Synthesis.registers;
  ci "baseline luts" 15142 Synthesis.baseline.Synthesis.luts;
  ci "baseline rules" 2 Synthesis.baseline.Synthesis.rule_slots

let test_overhead_64bit () =
  let o = Synthesis.upgrade_64bit_clock in
  ci "regs +180" 180 o.Synthesis.added_registers;
  ci "luts +246" 246 o.Synthesis.added_luts;
  cf "2.98%" 2.98 o.Synthesis.register_pct;
  cf "1.62%" 1.62 o.Synthesis.lut_pct

let test_overhead_32bit () =
  let o = Synthesis.upgrade_32bit_clock in
  ci "regs +148" 148 o.Synthesis.added_registers;
  ci "luts +214" 214 o.Synthesis.added_luts;
  cf "2.45%" 2.45 o.Synthesis.register_pct;
  cf "1.41%" 1.41 o.Synthesis.lut_pct

let test_overhead_sw_clock () =
  let o = Synthesis.upgrade_sw_clock in
  ci "3 new rules" 3 o.Synthesis.added_rules;
  ci "regs +348" 348 o.Synthesis.added_registers;
  ci "luts +546" 546 o.Synthesis.added_luts;
  cf "5.76%" 5.76 o.Synthesis.register_pct;
  cf "3.61%" 3.61 o.Synthesis.lut_pct

let test_clock_nbit () =
  let c = Component.clock_nbit ~width:48 in
  ci "width regs" 48 c.Component.direct_registers;
  Alcotest.check_raises "bad width"
    (Invalid_argument "Component.clock_nbit: width must be positive") (fun () ->
      ignore (Component.clock_nbit ~width:0))

let qcheck_synthesis_additive =
  QCheck.Test.make ~name:"synthesis: component order irrelevant" ~count:50
    QCheck.(int_range 1 64)
    (fun width ->
      let a =
        Synthesis.synthesize
          [ Component.mpu_lockdown; Component.attest_key; Component.clock_nbit ~width ]
      in
      let b =
        Synthesis.synthesize
          [ Component.clock_nbit ~width; Component.attest_key; Component.mpu_lockdown ]
      in
      a = b)

let qcheck_overhead_monotone_in_width =
  QCheck.Test.make ~name:"overhead grows with clock width" ~count:50
    QCheck.(pair (int_range 1 64) (int_range 1 64))
    (fun (w1, w2) ->
      let lo = min w1 w2 and hi = max w1 w2 in
      let o w =
        (Synthesis.overhead ~name:"w" [ Component.request_counter; Component.clock_nbit ~width:w ])
          .Synthesis.added_registers
      in
      o lo <= o hi)

let tests =
  [
    Alcotest.test_case "Table 3 constants" `Quick test_table3_constants;
    Alcotest.test_case "baseline (§6.3)" `Quick test_baseline;
    Alcotest.test_case "64-bit clock overhead" `Quick test_overhead_64bit;
    Alcotest.test_case "32-bit clock overhead" `Quick test_overhead_32bit;
    Alcotest.test_case "SW-clock overhead" `Quick test_overhead_sw_clock;
    Alcotest.test_case "clock_nbit" `Quick test_clock_nbit;
    QCheck_alcotest.to_alcotest qcheck_synthesis_additive;
    QCheck_alcotest.to_alcotest qcheck_overhead_monotone_in_width;
  ]
