(* The interpreted SHA-1 must agree bit-for-bit with the native one, and
   its per-block cycle count must land in the neighbourhood of Table 1's
   figure for the real 24 MHz core. *)
open Ra_isa
module Memory = Ra_mcu.Memory
module Region = Ra_mcu.Region
module Cpu = Ra_mcu.Cpu
module Ea_mpu = Ra_mcu.Ea_mpu

let make () =
  let memory =
    Memory.create
      [
        Region.make ~name:"rom_attest" ~base:0x1000 ~size:8192 ~kind:Region.Rom;
        Region.make ~name:"ram" ~base:0x10000 ~size:4096 ~kind:Region.Ram;
      ]
  in
  let sha = Sha1_asm.install memory ~origin:0x1000 ~scratch_addr:0x10000 in
  Memory.seal_rom memory;
  let cpu = Cpu.create memory (Ea_mpu.create ~capacity:4) ~clock_hz:24_000_000 in
  (sha, cpu)

let test_known_vectors () =
  let sha, cpu = make () in
  let hex s = Ra_crypto.Hexutil.to_hex s in
  Alcotest.(check string) "abc" "a9993e364706816aba3e25717850c26c9cd0d89d"
    (hex (Sha1_asm.digest sha cpu "abc"));
  Alcotest.(check string) "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709"
    (hex (Sha1_asm.digest sha cpu ""));
  Alcotest.(check string) "two blocks" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (hex (Sha1_asm.digest sha cpu "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))

let test_hmac_matches_native () =
  let sha, cpu = make () in
  let key = String.make 20 '\x0b' in
  Alcotest.(check string) "RFC 2202 tc1"
    (Ra_crypto.Hexutil.to_hex (Ra_crypto.Hmac.mac Ra_crypto.Hmac.sha1 ~key "Hi There"))
    (Ra_crypto.Hexutil.to_hex (Sha1_asm.hmac sha cpu ~key "Hi There"))

let test_cycle_count_plausible () =
  let sha, cpu = make () in
  let _ = Sha1_asm.digest sha cpu "abc" in
  let per_block = Int64.to_int (Sha1_asm.last_run_cycles sha) in
  (* Table 1: 0.092 ms/block at 24 MHz = 2208 cycles on the real core.
     The interpreted routine should land within a small factor. *)
  Alcotest.(check bool)
    (Printf.sprintf "per-block cycles plausible (%d)" per_block)
    true
    (per_block > 2_000 && per_block < 40_000)

let test_runs_under_protection_rule () =
  (* grant the scratch exclusively to rom_attest: the interpreted hash
     still works (its PC is in rom_attest), while other code is locked
     out of the buffer that holds intermediate state *)
  let sha, cpu = make () in
  Ea_mpu.program (Cpu.mpu cpu)
    {
      Ea_mpu.rule_name = "sha-scratch";
      data_base = 0x10000;
      data_size = Sha1_asm.scratch_bytes;
      read_by = Ea_mpu.Code_in [ "rom_attest" ];
      write_by = Ea_mpu.Code_in [ "rom_attest" ];
    };
  Ea_mpu.lock (Cpu.mpu cpu);
  Alcotest.(check string) "digest still correct"
    (Ra_crypto.Hexutil.to_hex (Ra_crypto.Sha1.digest "abc"))
    (Ra_crypto.Hexutil.to_hex (Sha1_asm.digest sha cpu "abc"));
  (try
     ignore (Cpu.load_byte cpu 0x10000);
     Alcotest.fail "outsider read of the scratch should fault"
   with Cpu.Protection_fault _ -> ())

let test_code_size () =
  let sha, _ = make () in
  Alcotest.(check bool) "fits in a SMART-sized ROM" true
    (Sha1_asm.code_size_bytes sha < 2048)

let qcheck_matches_native =
  QCheck.Test.make ~name:"sha1_asm: equals native SHA-1 on random inputs" ~count:30
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun msg ->
      let sha, cpu = make () in
      Sha1_asm.digest sha cpu msg = Ra_crypto.Sha1.digest msg)

let qcheck_hmac_matches_native =
  QCheck.Test.make ~name:"sha1_asm: interpreted HMAC equals native" ~count:10
    QCheck.(pair (string_of_size Gen.(1 -- 40)) (string_of_size Gen.(0 -- 120)))
    (fun (key, msg) ->
      let sha, cpu = make () in
      Sha1_asm.hmac sha cpu ~key msg = Ra_crypto.Hmac.mac Ra_crypto.Hmac.sha1 ~key msg)

let tests =
  [
    Alcotest.test_case "FIPS vectors" `Quick test_known_vectors;
    Alcotest.test_case "HMAC matches native" `Quick test_hmac_matches_native;
    Alcotest.test_case "cycle count plausible" `Quick test_cycle_count_plausible;
    Alcotest.test_case "runs under an EA-MPU rule" `Quick test_runs_under_protection_rule;
    Alcotest.test_case "code size" `Quick test_code_size;
    QCheck_alcotest.to_alcotest qcheck_matches_native;
    QCheck_alcotest.to_alcotest qcheck_hmac_matches_native;
  ]
