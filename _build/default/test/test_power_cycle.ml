(* Power-cycle semantics: what survives a reboot decides which freshness
   mechanisms are deployable (§4.2's non-volatile-memory requirements and
   the clock-resynchronization problem of future-work item 2). *)
open Ra_core
module Device = Ra_mcu.Device
module Memory = Ra_mcu.Memory
module Cpu = Ra_mcu.Cpu
module Clock = Ra_mcu.Clock

let key = String.make 60 'k'

let test_nv_state_survives () =
  let d = Device.create ~ram_size:2048 ~key () in
  (* counter_R lives in NVM; application code in flash *)
  Memory.write_u64 (Device.memory d) (Device.counter_addr d) 41L;
  Memory.write_bytes (Device.memory d) 0x010000 "app-v1";
  let d' = Device.power_cycle d in
  Alcotest.(check int64) "counter survives" 41L
    (Memory.read_u64 (Device.memory d') (Device.counter_addr d'));
  Alcotest.(check string) "flash survives" "app-v1"
    (Memory.read_bytes (Device.memory d') 0x010000 6);
  Alcotest.(check string) "key survives (ROM)" key
    (Memory.read_bytes (Device.memory d') (Device.key_addr d') (Device.key_len d'))

let test_volatile_state_cleared () =
  let d = Device.create ~ram_size:2048 ~key () in
  Device.fill_ram_deterministic d ~seed:3L;
  Ra_mcu.Ea_mpu.program (Device.mpu d) (Device.rule_protect_key d);
  Ra_mcu.Ea_mpu.lock (Device.mpu d);
  let d' = Device.power_cycle d in
  Alcotest.(check string) "RAM zeroed" (String.make 2048 '\x00')
    (Memory.read_bytes (Device.memory d') (Device.attested_base d') 2048);
  Alcotest.(check int) "MPU rules gone" 0 (Ra_mcu.Ea_mpu.rule_count (Device.mpu d'));
  Alcotest.(check bool) "MPU unlocked (secure boot must rerun)" false
    (Ra_mcu.Ea_mpu.is_locked (Device.mpu d'));
  Alcotest.(check int64) "cycle counter reset" 0L (Cpu.cycles (Device.cpu d'))

let test_battery_charge_not_reset () =
  let d = Device.create ~ram_size:2048 ~key () in
  Cpu.consume_cycles (Device.cpu d) 1_000_000L;
  let used = Ra_mcu.Energy.consumed_joules (Device.energy d) in
  Alcotest.(check bool) "some energy used" true (used > 0.0);
  let d' = Device.power_cycle d in
  Alcotest.(check (float 1e-12)) "same battery" used
    (Ra_mcu.Energy.consumed_joules (Device.energy d'))

let test_clock_restarts_breaking_timestamps () =
  let d =
    Device.create ~ram_size:2048
      ~clock_impl:(Device.Clock_hw { width = 64; divider_log2 = 0 })
      ~key ()
  in
  Device.idle d ~seconds:100.0;
  (match Device.clock d with
  | Some c -> Alcotest.(check bool) "clock ran" true (Clock.seconds c > 99.0)
  | None -> Alcotest.fail "expected clock");
  let d' = Device.power_cycle d in
  (match Device.clock d' with
  | Some c -> Alcotest.(check (float 0.001)) "clock restarted at 0" 0.0 (Clock.seconds c)
  | None -> Alcotest.fail "expected clock");
  (* timestamp freshness now rejects anything the verifier sends: the
     prover's clock says ~0 while the verifier's says ~100 s *)
  let fresh = Freshness.init d' (Freshness.Timestamp { window_ms = 5000L }) in
  (match
     Cpu.with_context (Device.cpu d') Device.region_attest (fun () ->
         Freshness.check_and_update fresh (Message.F_timestamp 100_000L))
   with
  | Error (Freshness.Future_timestamp _) -> ()
  | Ok () -> Alcotest.fail "stale clock accepted a future timestamp"
  | Error e -> Alcotest.failf "unexpected reject: %a" Freshness.pp_reject e)

let test_clock_sync_restores_operation () =
  let sym_key = String.sub key 0 20 in
  let blob = Auth.prover_key_blob ~sym_key ~public:None in
  let d =
    Device.create ~ram_size:2048
      ~clock_impl:(Device.Clock_hw { width = 64; divider_log2 = 0 })
      ~key:blob ()
  in
  let time = Ra_net.Simtime.create () in
  (* pre-reboot: synchronized at t=50 with sync counter 1 *)
  Ra_net.Simtime.advance_to time 50.0;
  let sync = Clock_sync.install d in
  (match Clock_sync.handle sync (Clock_sync.make_sync_request ~sym_key ~time ~counter:1L) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pre-reboot sync failed: %a" Clock_sync.pp_reject e);
  (* reboot at t=120; clock restarts, but the sync counter survived NVM *)
  Ra_net.Simtime.advance_to time 120.0;
  let d' = Device.power_cycle d in
  let sync' = Clock_sync.install d' in
  (* replaying the pre-reboot sync request cannot set the clock back *)
  (match
     Clock_sync.handle sync'
       (Message.Sync_request
          {
            verifier_time_ms = 50_000L;
            sync_counter = 1L;
            sync_tag =
              Ra_crypto.Hmac.mac Ra_crypto.Hmac.sha1 ~key:sym_key
                ("SYNC"
                ^ Message.freshness_bytes (Message.F_counter 50_000L)
                (* wrong body on purpose; a real replay uses the recorded
                   message — tested via counter below *));
          })
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed sync accepted");
  (* fresh sync with counter 2 resynchronizes *)
  (match Clock_sync.handle sync' (Clock_sync.make_sync_request ~sym_key ~time ~counter:2L) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-reboot sync failed: %a" Clock_sync.pp_reject e);
  Alcotest.(check bool) "prover wall time restored" true
    (Int64.abs (Int64.sub (Clock_sync.now_ms sync') 120_000L) < 200L);
  (* and the counter-1 replay (correctly formed) is still rejected *)
  Ra_net.Simtime.advance_to time 121.0;
  let old_style =
    Clock_sync.make_sync_request ~sym_key
      ~time:(Ra_net.Simtime.create ~start:50.0 ())
      ~counter:1L
  in
  (match Clock_sync.handle sync' old_style with
  | Error (Clock_sync.Sync_stale_counter _) -> ()
  | Ok _ -> Alcotest.fail "pre-reboot sync replay accepted after reboot"
  | Error e -> Alcotest.failf "unexpected reject: %a" Clock_sync.pp_reject e)

let test_ram_nonce_history_is_lost_conceptually () =
  (* the nonce history lives in RAM-backed state: after a reboot it is
     empty and every pre-reboot nonce replays successfully — one more
     §4.2 argument for the counter-in-NVM design *)
  let d = Device.create ~ram_size:2048 ~key () in
  let st = Freshness.init d (Freshness.Nonce_history { max_entries = None }) in
  Alcotest.(check bool) "accepted" true
    (Freshness.check_and_update st (Message.F_nonce "n1") = Ok ());
  let d' = Device.power_cycle d in
  let st' = Freshness.init d' (Freshness.Nonce_history { max_entries = None }) in
  Alcotest.(check bool) "pre-reboot nonce replays" true
    (Freshness.check_and_update st' (Message.F_nonce "n1") = Ok ())

let tests =
  [
    Alcotest.test_case "non-volatile state survives" `Quick test_nv_state_survives;
    Alcotest.test_case "volatile state cleared" `Quick test_volatile_state_cleared;
    Alcotest.test_case "battery charge not reset" `Quick test_battery_charge_not_reset;
    Alcotest.test_case "clock restart breaks timestamps" `Quick
      test_clock_restarts_breaking_timestamps;
    Alcotest.test_case "clock sync restores operation" `Quick
      test_clock_sync_restores_operation;
    Alcotest.test_case "RAM nonce history lost" `Quick
      test_ram_nonce_history_is_lost_conceptually;
  ]
