(* HMAC-DRBG and SplitMix64 determinism / stream properties. *)
open Ra_crypto

let test_drbg_deterministic () =
  let d1 = Drbg.create ~seed:"seed" () in
  let d2 = Drbg.create ~seed:"seed" () in
  Alcotest.(check string) "same seed, same stream" (Drbg.generate d1 32)
    (Drbg.generate d2 32);
  let d3 = Drbg.create ~seed:"other" () in
  Alcotest.(check bool) "different seed, different stream" true
    (Drbg.generate d3 32 <> Drbg.generate (Drbg.create ~seed:"seed" ()) 32)

let test_drbg_personalization () =
  let a = Drbg.create ~personalization:"a" ~seed:"s" () in
  let b = Drbg.create ~personalization:"b" ~seed:"s" () in
  Alcotest.(check bool) "personalization separates streams" true
    (Drbg.generate a 16 <> Drbg.generate b 16)

let test_drbg_advances () =
  let d = Drbg.create ~seed:"s" () in
  let x = Drbg.generate d 16 in
  let y = Drbg.generate d 16 in
  Alcotest.(check bool) "consecutive outputs differ" true (x <> y)

let test_drbg_reseed () =
  let d1 = Drbg.create ~seed:"s" () in
  let d2 = Drbg.create ~seed:"s" () in
  Drbg.reseed d1 "entropy";
  Alcotest.(check bool) "reseed changes stream" true
    (Drbg.generate d1 16 <> Drbg.generate d2 16)

let test_drbg_lengths () =
  let d = Drbg.create ~seed:"s" () in
  List.iter
    (fun n -> Alcotest.(check int) (Printf.sprintf "%d bytes" n) n
        (String.length (Drbg.generate d n)))
    [ 1; 16; 31; 32; 33; 100 ]

let test_prng_deterministic () =
  let p1 = Prng.create 7L and p2 = Prng.create 7L in
  Alcotest.(check bool) "same stream" true
    (List.init 10 (fun _ -> Prng.next_int64 p1)
    = List.init 10 (fun _ -> Prng.next_int64 p2))

let test_prng_split () =
  let p = Prng.create 7L in
  let q = Prng.split p in
  Alcotest.(check bool) "split stream differs" true
    (Prng.next_int64 p <> Prng.next_int64 q)

let qcheck_prng_int_bounds =
  QCheck.Test.make ~name:"prng: int respects bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let p = Prng.create seed in
      let v = Prng.int p bound in
      v >= 0 && v < bound)

let qcheck_prng_float_bounds =
  QCheck.Test.make ~name:"prng: float respects bounds" ~count:500 QCheck.int64
    (fun seed ->
      let p = Prng.create seed in
      let v = Prng.float p 3.5 in
      v >= 0.0 && v < 3.5)

let qcheck_prng_bytes_len =
  QCheck.Test.make ~name:"prng: bytes length" ~count:100
    QCheck.(pair int64 (int_range 0 100))
    (fun (seed, n) -> String.length (Prng.bytes (Prng.create seed) n) = n)

let tests =
  [
    Alcotest.test_case "drbg deterministic" `Quick test_drbg_deterministic;
    Alcotest.test_case "drbg personalization" `Quick test_drbg_personalization;
    Alcotest.test_case "drbg advances" `Quick test_drbg_advances;
    Alcotest.test_case "drbg reseed" `Quick test_drbg_reseed;
    Alcotest.test_case "drbg lengths" `Quick test_drbg_lengths;
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng split" `Quick test_prng_split;
    QCheck_alcotest.to_alcotest qcheck_prng_int_bounds;
    QCheck_alcotest.to_alcotest qcheck_prng_float_bounds;
    QCheck_alcotest.to_alcotest qcheck_prng_bytes_len;
  ]
