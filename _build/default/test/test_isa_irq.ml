(* Figure 1b at instruction granularity: an interpreted Code_clock ISR in
   ROM maintains Clock_MSB when the hardware LSB counter wraps. *)
open Ra_isa
module Device = Ra_mcu.Device
module Memory = Ra_mcu.Memory
module Cpu = Ra_mcu.Cpu
module Ea_mpu = Ra_mcu.Ea_mpu
module Interrupt = Ra_mcu.Interrupt

let key = String.make 60 'k'

(* Code_clock, interpreted: Clock_MSB++ then halt (dispatcher restores
   the interrupted context) *)
let code_clock_src msb_addr =
  Printf.sprintf {|
    mov r14, #0x%x
    load r13, [r14]
    add r13, #1
    store [r14], r13
    halt
  |} msb_addr

let make ~protect =
  (* Clock_sw with a 16-bit LSB so wraps are cheap to trigger *)
  let device =
    Device.create ~ram_size:4096
      ~clock_impl:(Device.Clock_sw { lsb_width = 16; divider_log2 = 0 })
      ~rom_images:[]
      ~key ()
  in
  let msb = Device.clock_msb_addr device in
  let program =
    match Asm.assemble ~origin:0x003000 (code_clock_src msb) with
    | Ok p -> p
    | Error e -> Alcotest.failf "asm: %a" Asm.pp_error e
  in
  (* ROM is sealed post-manufacture; this test writes Code_clock into the
     rom_clock region by rebuilding the device with the image *)
  let device =
    Device.create ~ram_size:4096
      ~clock_impl:(Device.Clock_sw { lsb_width = 16; divider_log2 = 0 })
      ~rom_images:[ (Device.region_clock, Asm.to_bytes program) ]
      ~key ()
  in
  if protect then begin
    Ea_mpu.program (Device.mpu device) (Device.rule_protect_clock_msb device);
    Ea_mpu.program (Device.mpu device) (Device.rule_protect_idt device);
    Ea_mpu.lock (Device.mpu device)
  end;
  Interrupt.enable_all_raw (Device.interrupt device);
  let core = Core.create (Device.cpu device) ~pc:0x010000 ~sp:0x101000 in
  let completions =
    Irq.install_handler core (Device.interrupt device) ~vector:Device.timer_vector
      ~entry:0x003000 ()
  in
  (device, core, completions)

let msb_value device =
  Memory.read_u64 (Device.memory device) (Device.clock_msb_addr device)

let test_interpreted_code_clock_counts_wraps () =
  let device, _, completions = make ~protect:false in
  (* 3.5 wraps of the 16-bit LSB *)
  Cpu.idle_cycles (Device.cpu device) (Int64.of_int ((3 * 65536) + 1000));
  Alcotest.(check int64) "MSB incremented per wrap" 3L (msb_value device);
  Alcotest.(check int) "three completed activations" 3 (completions ())

let test_interpreted_handler_writes_through_mpu_rule () =
  let device, _, completions = make ~protect:true in
  Cpu.idle_cycles (Device.cpu device) (Int64.of_int (2 * 65536));
  (* the rule names rom_clock as writer, and the PC of the interpreted
     store is inside rom_clock, so the write is allowed *)
  Alcotest.(check int64) "protected MSB still advances" 2L (msb_value device);
  Alcotest.(check int) "completions" 2 (completions ());
  (* malware's direct rollback of Clock_MSB faults *)
  (try
     Cpu.store_u64 (Device.cpu device) (Device.clock_msb_addr device) 0L;
     Alcotest.fail "rollback should fault"
   with Cpu.Protection_fault _ -> ())

let test_idt_tamper_starves_interpreted_handler () =
  let device, _, completions = make ~protect:false in
  Cpu.idle_cycles (Device.cpu device) 65536L;
  Alcotest.(check int64) "first wrap counted" 1L (msb_value device);
  (* unprotected IDT: redirect the vector; the interpreted Code_clock
     never runs again — the clock's high share freezes *)
  Interrupt.set_vector (Device.interrupt device) ~vector:Device.timer_vector
    ~entry_addr:0xDEAD;
  Cpu.idle_cycles (Device.cpu device) (Int64.of_int (5 * 65536));
  Alcotest.(check int64) "MSB frozen" 1L (msb_value device);
  Alcotest.(check int) "no further completions" 1 (completions ())

let test_context_restored_around_interrupt () =
  let device, core, _ = make ~protect:false in
  (* run a foreground program long enough to cross an LSB wrap; its
     registers must be untouched by the ISR *)
  let program_src = {|
      mov r1, #0
      mov r2, #40000    ; x ~2 cycles/iteration crosses the 65536 wrap
    loop:
      add r1, #1
      cmp r1, r2
      jnz loop
      halt
    |}
  in
  let program =
    match Asm.assemble ~origin:0x010000 program_src with
    | Ok p -> p
    | Error e -> Alcotest.failf "asm: %a" Asm.pp_error e
  in
  Memory.write_bytes (Device.memory device) 0x010000 (Asm.to_bytes program);
  let state, _ = Core.run ~max_steps:1_000_000 core in
  Alcotest.(check bool) "halted cleanly" true (state = Core.Halted);
  Alcotest.(check int) "foreground result intact" 40000 (Core.reg core 1);
  Alcotest.(check bool) "at least one wrap serviced mid-program" true
    (Int64.compare (msb_value device) 1L >= 0)

let tests =
  [
    Alcotest.test_case "interpreted Code_clock counts wraps" `Quick
      test_interpreted_code_clock_counts_wraps;
    Alcotest.test_case "handler writes through MPU rule" `Quick
      test_interpreted_handler_writes_through_mpu_rule;
    Alcotest.test_case "IDT tamper starves handler" `Quick
      test_idt_tamper_starves_interpreted_handler;
    Alcotest.test_case "context restored around interrupt" `Quick
      test_context_restored_around_interrupt;
  ]
