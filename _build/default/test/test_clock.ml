open Ra_mcu

let hz = 24_000_000

let make_cpu () =
  let memory =
    Memory.create
      [
        Region.make ~name:"idt" ~base:0x100 ~size:256 ~kind:Region.Ram;
        Region.make ~name:"ctrl" ~base:0x200 ~size:16 ~kind:Region.Mmio;
        Region.make ~name:"msb" ~base:0x300 ~size:8 ~kind:Region.Ram;
      ]
  in
  Cpu.create memory (Ea_mpu.create ~capacity:4) ~clock_hz:hz

let test_hw_counter () =
  let cpu = make_cpu () in
  let clock = Clock.create_hw_counter cpu ~width:64 ~divider_log2:0 in
  Alcotest.(check int64) "starts at 0" 0L (Clock.ticks clock);
  Cpu.consume_cycles cpu 1000L;
  Alcotest.(check int64) "counts cycles" 1000L (Clock.ticks clock);
  Cpu.idle_cycles cpu 24_000_000L;
  Alcotest.(check (float 1e-6)) "seconds" (1.0 +. (1000.0 /. 24e6)) (Clock.seconds clock)

let test_divider () =
  let cpu = make_cpu () in
  let clock = Clock.create_hw_counter cpu ~width:32 ~divider_log2:20 in
  Cpu.consume_cycles cpu (Int64.shift_left 1L 20);
  Alcotest.(check int64) "one tick per 2^20 cycles" 1L (Clock.ticks clock);
  Alcotest.(check (float 1e-4)) "resolution ≈ 43.7 ms" 0.0437
    (Clock.resolution_seconds clock)

let test_width_wrap () =
  let cpu = make_cpu () in
  let clock = Clock.create_hw_counter cpu ~width:8 ~divider_log2:0 in
  Cpu.consume_cycles cpu 300L;
  Alcotest.(check int64) "wraps at 2^8" (Int64.of_int (300 mod 256)) (Clock.ticks clock)

let test_wraparound_arithmetic () =
  (* §6.3's numbers *)
  Alcotest.(check (float 5.0)) "64-bit: ~24,373 years" 24373.0
    (Clock.wraparound_years ~hz ~width:64 ~divider_log2:0);
  Alcotest.(check (float 2.0)) "32-bit: ~179 s (≈3 min)" 179.0
    (Clock.wraparound_seconds ~hz ~width:32 ~divider_log2:0);
  Alcotest.(check (float 0.05)) "32-bit/2^20: ~6 years" 5.95
    (Clock.wraparound_years ~hz ~width:32 ~divider_log2:20)

let make_sw_clock () =
  let cpu = make_cpu () in
  let intr = Interrupt.create cpu ~idt_base:0x100 ~vectors:8 ~ctrl_addr:0x200 in
  Interrupt.enable_all_raw intr;
  let clock =
    Clock.create_sw_clock cpu intr ~lsb_width:10 ~divider_log2:0 ~msb_addr:0x300
      ~timer_vector:1 ~handler_entry:0xC0DE ~handler_region:"code_clock"
  in
  (cpu, intr, clock)

let test_sw_clock_accumulates () =
  let cpu, _, clock = make_sw_clock () in
  (* 3.5 LSB periods: MSB must have been bumped 3 times *)
  Cpu.consume_cycles cpu (Int64.of_int ((3 * 1024) + 512));
  Alcotest.(check int64) "msb||lsb" (Int64.of_int ((3 * 1024) + 512)) (Clock.ticks clock)

let test_sw_clock_freezes_without_handler () =
  let cpu, intr, clock = make_sw_clock () in
  Cpu.consume_cycles cpu 1024L;
  Alcotest.(check int64) "one wrap counted" 1024L (Clock.ticks clock);
  (* malware redirects the timer vector: wraps get lost, the clock's
     high-order share stops advancing *)
  Interrupt.set_vector intr ~vector:1 ~entry_addr:0xBAD;
  Cpu.consume_cycles cpu (Int64.of_int (10 * 1024));
  Alcotest.(check int64) "clock frozen at msb=1" 1024L (Clock.ticks clock)

let test_sw_clock_msb_protection () =
  let cpu, _, clock = make_sw_clock () in
  Ea_mpu.program (Cpu.mpu cpu)
    {
      Ea_mpu.rule_name = "msb";
      data_base = 0x300;
      data_size = 8;
      read_by = Ea_mpu.Anyone;
      write_by = Ea_mpu.Code_in [ "code_clock" ];
    };
  Cpu.consume_cycles cpu 2048L;
  Alcotest.(check int64) "handler still writes through rule" 2048L (Clock.ticks clock);
  (* direct software rollback attempt faults *)
  (try
     Cpu.store_u64 cpu 0x300 0L;
     Alcotest.fail "rollback should fault"
   with Cpu.Protection_fault _ -> ())

let test_validation () =
  let cpu = make_cpu () in
  Alcotest.check_raises "bad width" (Invalid_argument "Clock.create_hw_counter: width")
    (fun () -> ignore (Clock.create_hw_counter cpu ~width:0 ~divider_log2:0))

let qcheck_hw_ticks_match_cycles =
  QCheck.Test.make ~name:"clock: hw ticks = cycles >> divider" ~count:100
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 8))
    (fun (cycles, divider) ->
      let cpu = make_cpu () in
      let clock = Clock.create_hw_counter cpu ~width:64 ~divider_log2:divider in
      Cpu.consume_cycles cpu (Int64.of_int cycles);
      Clock.ticks clock = Int64.of_int (cycles lsr divider))

let tests =
  [
    Alcotest.test_case "hw counter" `Quick test_hw_counter;
    Alcotest.test_case "divider" `Quick test_divider;
    Alcotest.test_case "width wrap" `Quick test_width_wrap;
    Alcotest.test_case "wraparound arithmetic (§6.3)" `Quick test_wraparound_arithmetic;
    Alcotest.test_case "sw clock accumulates" `Quick test_sw_clock_accumulates;
    Alcotest.test_case "sw clock freezes without handler" `Quick
      test_sw_clock_freezes_without_handler;
    Alcotest.test_case "sw clock msb protection" `Quick test_sw_clock_msb_protection;
    Alcotest.test_case "parameter validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest qcheck_hw_ticks_match_cycles;
  ]
