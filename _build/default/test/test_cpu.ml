open Ra_mcu

let make () =
  let memory =
    Memory.create
      [
        Region.make ~name:"ram" ~base:0x1000 ~size:0x100 ~kind:Region.Ram;
        Region.make ~name:"secret" ~base:0x2000 ~size:0x10 ~kind:Region.Ram;
      ]
  in
  let mpu = Ea_mpu.create ~capacity:4 in
  Ea_mpu.program mpu
    {
      Ea_mpu.rule_name = "secret";
      data_base = 0x2000;
      data_size = 0x10;
      read_by = Ea_mpu.Code_in [ "trusted" ];
      write_by = Ea_mpu.Nobody;
    };
  Cpu.create memory mpu ~clock_hz:24_000_000

let test_context_switching () =
  let cpu = make () in
  Alcotest.(check string) "initial" "untrusted" (Cpu.context cpu);
  let inner = Cpu.with_context cpu "trusted" (fun () -> Cpu.context cpu) in
  Alcotest.(check string) "inside" "trusted" inner;
  Alcotest.(check string) "restored" "untrusted" (Cpu.context cpu)

let test_context_restored_on_exception () =
  let cpu = make () in
  (try Cpu.with_context cpu "trusted" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check string) "restored after raise" "untrusted" (Cpu.context cpu)

let test_mediated_access () =
  let cpu = make () in
  Cpu.store_byte cpu 0x1000 7;
  Alcotest.(check int) "open ram" 7 (Cpu.load_byte cpu 0x1000);
  (* untrusted read of the secret faults and is recorded *)
  (try
     ignore (Cpu.load_byte cpu 0x2000);
     Alcotest.fail "expected fault"
   with Cpu.Protection_fault f ->
     Alcotest.(check string) "fault context" "untrusted" f.Cpu.fault_code;
     Alcotest.(check int) "fault addr" 0x2000 f.Cpu.fault_addr);
  Alcotest.(check int) "fault recorded" 1 (List.length (Cpu.faults cpu));
  (* trusted read succeeds *)
  let v = Cpu.with_context cpu "trusted" (fun () -> Cpu.load_byte cpu 0x2000) in
  Alcotest.(check int) "trusted read" 0 v

let test_cycle_accounting () =
  let cpu = make () in
  Cpu.consume_cycles cpu 1000L;
  Cpu.idle_cycles cpu 500L;
  Alcotest.(check int64) "total" 1500L (Cpu.cycles cpu);
  Alcotest.(check int64) "work only" 1000L (Cpu.work_cycles cpu);
  Alcotest.check_raises "negative work" (Invalid_argument "Cpu: negative cycle advance")
    (fun () -> Cpu.consume_cycles cpu (-1L))

let test_elapsed_seconds () =
  let cpu = make () in
  Cpu.idle_seconds cpu 2.0;
  Alcotest.(check (float 1e-6)) "two seconds" 2.0 (Cpu.elapsed_seconds cpu)

let test_listeners () =
  let cpu = make () in
  let events = ref [] in
  Cpu.on_advance cpu (fun _ n kind -> events := (n, kind) :: !events);
  Cpu.consume_cycles cpu 10L;
  Cpu.idle_cycles cpu 20L;
  Alcotest.(check int) "two events" 2 (List.length !events);
  (match !events with
  | [ (20L, Cpu.Idle); (10L, Cpu.Work) ] -> ()
  | _ -> Alcotest.fail "unexpected event sequence")

let test_zero_length_access () =
  let cpu = make () in
  Alcotest.(check string) "empty load" "" (Cpu.load_bytes cpu 0x2000 0);
  (* zero-length store of protected memory is a no-op, not a fault *)
  Cpu.store_bytes cpu 0x2000 "";
  Alcotest.(check int) "no faults" 0 (List.length (Cpu.faults cpu))

let tests =
  [
    Alcotest.test_case "context switching" `Quick test_context_switching;
    Alcotest.test_case "context restored on exception" `Quick
      test_context_restored_on_exception;
    Alcotest.test_case "mediated access" `Quick test_mediated_access;
    Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
    Alcotest.test_case "elapsed seconds" `Quick test_elapsed_seconds;
    Alcotest.test_case "advance listeners" `Quick test_listeners;
    Alcotest.test_case "zero-length access" `Quick test_zero_length_access;
  ]
