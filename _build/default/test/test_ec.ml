(* secp160r1 group laws and ECDSA behaviour. *)
open Ra_crypto
module B = Bignum

let curve = Ec.secp160r1
let g () = Ec.base curve

let test_curve_parameters () =
  Alcotest.(check bool) "G on curve" true (Ec.on_curve curve curve.Ec.g);
  Alcotest.(check bool) "n*G = infinity" true
    (Ec.is_infinity (Ec.mul curve curve.Ec.n (g ())));
  Alcotest.(check bool) "(n-1)*G = -G" true
    (Ec.equal curve
       (Ec.mul curve (B.sub curve.Ec.n B.one) (g ()))
       (Ec.neg curve (g ())))

let test_group_laws () =
  let p2 = Ec.double curve (g ()) in
  let p3 = Ec.add curve p2 (g ()) in
  Alcotest.(check bool) "2G + G = 3G" true
    (Ec.equal curve p3 (Ec.mul curve (B.of_int 3) (g ())));
  Alcotest.(check bool) "G + inf = G" true
    (Ec.equal curve (g ()) (Ec.add curve (g ()) Ec.infinity));
  Alcotest.(check bool) "G + (-G) = inf" true
    (Ec.is_infinity (Ec.add curve (g ()) (Ec.neg curve (g ()))));
  Alcotest.(check bool) "double inf = inf" true (Ec.is_infinity (Ec.double curve Ec.infinity))

let test_of_affine_validates () =
  Alcotest.check_raises "rejects off-curve point"
    (Invalid_argument "Ec.of_affine: point not on curve") (fun () ->
      ignore (Ec.of_affine curve (B.one, B.one)))

let qcheck_scalar_distributes =
  QCheck.Test.make ~name:"ec: (a+b)G = aG + bG" ~count:15
    QCheck.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (a, b) ->
      let lhs = Ec.mul curve (B.of_int (a + b)) (g ()) in
      let rhs = Ec.add curve (Ec.mul curve (B.of_int a) (g ())) (Ec.mul curve (B.of_int b) (g ())) in
      Ec.equal curve lhs rhs)

let qcheck_scalar_assoc =
  QCheck.Test.make ~name:"ec: a(bG) = (ab)G" ~count:10
    QCheck.(pair (int_range 2 1000) (int_range 2 1000))
    (fun (a, b) ->
      let lhs = Ec.mul curve (B.of_int a) (Ec.mul curve (B.of_int b) (g ())) in
      let rhs = Ec.mul curve (B.of_int (a * b)) (g ()) in
      Ec.equal curve lhs rhs)

let test_point_compression () =
  let pt = Ec.mul curve (B.of_int 12345) (g ()) in
  let compressed = Ec.compress curve pt in
  Alcotest.(check int) "21 bytes" 21 (String.length compressed);
  (match Ec.decompress curve compressed with
  | Some decoded -> Alcotest.(check bool) "roundtrip" true (Ec.equal curve decoded pt)
  | None -> Alcotest.fail "decompress failed");
  (* negated point has the other parity byte *)
  let neg_compressed = Ec.compress curve (Ec.neg curve pt) in
  Alcotest.(check bool) "parity differs" true (compressed.[0] <> neg_compressed.[0]);
  Alcotest.(check string) "x identical" (String.sub compressed 1 20)
    (String.sub neg_compressed 1 20);
  Alcotest.(check bool) "bad prefix rejected" true
    (Ec.decompress curve ("\x05" ^ String.sub compressed 1 20) = None);
  Alcotest.(check bool) "bad length rejected" true (Ec.decompress curve "\x02" = None);
  Alcotest.check_raises "infinity" (Invalid_argument "Ec.compress: point at infinity")
    (fun () -> ignore (Ec.compress curve Ec.infinity))

let qcheck_compression_roundtrip =
  QCheck.Test.make ~name:"ec: decompress . compress = id" ~count:10
    QCheck.(int_range 2 1_000_000)
    (fun k ->
      let pt = Ec.mul curve (B.of_int k) (g ()) in
      match Ec.decompress curve (Ec.compress curve pt) with
      | Some decoded -> Ec.equal curve decoded pt
      | None -> false)

let test_fp_sqrt () =
  let f = curve.Ec.field in
  let a = B.of_int 123456789 in
  let sq = Ra_crypto.Fp.sqr f a in
  (match Ra_crypto.Fp.sqrt f sq with
  | Some root -> Alcotest.(check bool) "root squares back" true
      (B.equal (Ra_crypto.Fp.sqr f root) sq)
  | None -> Alcotest.fail "square must have a root");
  (* roughly half of field elements are non-residues; find one *)
  let rec non_residue v =
    match Ra_crypto.Fp.sqrt f (B.of_int v) with
    | None -> v
    | Some _ -> non_residue (v + 1)
  in
  Alcotest.(check bool) "non-residue detected" true (non_residue 2 > 0)

let test_ecdsa_roundtrip () =
  let kp = Ecdsa.generate_keypair curve ~seed:"test-device" in
  let signature = Ecdsa.sign curve ~secret:kp.Ecdsa.secret "attest me" in
  Alcotest.(check bool) "verifies" true
    (Ecdsa.verify curve ~public:kp.Ecdsa.public ~msg:"attest me" signature);
  Alcotest.(check bool) "wrong message" false
    (Ecdsa.verify curve ~public:kp.Ecdsa.public ~msg:"attest mE" signature);
  let other = Ecdsa.generate_keypair curve ~seed:"other" in
  Alcotest.(check bool) "wrong key" false
    (Ecdsa.verify curve ~public:other.Ecdsa.public ~msg:"attest me" signature)

let test_ecdsa_deterministic () =
  let kp = Ecdsa.generate_keypair curve ~seed:"test-device" in
  let s1 = Ecdsa.sign curve ~secret:kp.Ecdsa.secret "m" in
  let s2 = Ecdsa.sign curve ~secret:kp.Ecdsa.secret "m" in
  Alcotest.(check bool) "same msg, same sig" true (s1.Ecdsa.r = s2.Ecdsa.r && s1.Ecdsa.s = s2.Ecdsa.s);
  let s3 = Ecdsa.sign curve ~secret:kp.Ecdsa.secret "m'" in
  Alcotest.(check bool) "different msg, different nonce" true (s1.Ecdsa.r <> s3.Ecdsa.r)

let test_ecdsa_wire () =
  let kp = Ecdsa.generate_keypair curve ~seed:"wire" in
  let signature = Ecdsa.sign curve ~secret:kp.Ecdsa.secret "msg" in
  let bytes = Ecdsa.signature_to_bytes curve signature in
  Alcotest.(check int) "fixed width" (2 * curve.Ec.key_bytes) (String.length bytes);
  (match Ecdsa.signature_of_bytes curve bytes with
  | Some decoded ->
    Alcotest.(check bool) "roundtrip verifies" true
      (Ecdsa.verify curve ~public:kp.Ecdsa.public ~msg:"msg" decoded)
  | None -> Alcotest.fail "decode failed");
  Alcotest.(check bool) "bad length rejected" true
    (Ecdsa.signature_of_bytes curve "short" = None)

let test_ecdsa_rejects_zero_sig () =
  let kp = Ecdsa.generate_keypair curve ~seed:"zero" in
  let bogus = { Ecdsa.r = B.zero; s = B.one } in
  Alcotest.(check bool) "r=0 rejected" false
    (Ecdsa.verify curve ~public:kp.Ecdsa.public ~msg:"m" bogus);
  let bogus2 = { Ecdsa.r = curve.Ec.n; s = B.one } in
  Alcotest.(check bool) "r=n rejected" false
    (Ecdsa.verify curve ~public:kp.Ecdsa.public ~msg:"m" bogus2)

let qcheck_ecdsa_random_messages =
  QCheck.Test.make ~name:"ecdsa: sign/verify over random messages" ~count:8
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun msg ->
      let kp = Ecdsa.generate_keypair curve ~seed:"qc" in
      let signature = Ecdsa.sign curve ~secret:kp.Ecdsa.secret msg in
      Ecdsa.verify curve ~public:kp.Ecdsa.public ~msg signature)

let tests =
  [
    Alcotest.test_case "curve parameters" `Quick test_curve_parameters;
    Alcotest.test_case "group laws" `Quick test_group_laws;
    Alcotest.test_case "of_affine validates" `Quick test_of_affine_validates;
    Alcotest.test_case "point compression" `Quick test_point_compression;
    Alcotest.test_case "fp sqrt" `Quick test_fp_sqrt;
    QCheck_alcotest.to_alcotest qcheck_compression_roundtrip;
    Alcotest.test_case "ecdsa roundtrip" `Quick test_ecdsa_roundtrip;
    Alcotest.test_case "ecdsa deterministic nonces" `Quick test_ecdsa_deterministic;
    Alcotest.test_case "ecdsa wire format" `Quick test_ecdsa_wire;
    Alcotest.test_case "ecdsa rejects out-of-range" `Quick test_ecdsa_rejects_zero_sig;
    QCheck_alcotest.to_alcotest qcheck_scalar_distributes;
    QCheck_alcotest.to_alcotest qcheck_scalar_assoc;
    QCheck_alcotest.to_alcotest qcheck_ecdsa_random_messages;
  ]
