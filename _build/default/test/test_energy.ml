open Ra_mcu

let test_active_consumption () =
  let e = Energy.create ~capacity_joules:1.0 ~active_nj_per_cycle:1.0 ~sleep_microwatt:0.0 () in
  Energy.consume_cycles e 1_000_000L (* 1e6 cycles x 1 nJ = 1 mJ *);
  Alcotest.(check (float 1e-9)) "1 mJ" 0.001 (Energy.consumed_joules e);
  Alcotest.(check bool) "not depleted" false (Energy.depleted e)

let test_sleep_consumption () =
  let e = Energy.create ~capacity_joules:1.0 ~active_nj_per_cycle:0.0 ~sleep_microwatt:2.0 () in
  Energy.consume_sleep e ~seconds:1000.0;
  Alcotest.(check (float 1e-9)) "2 mJ" 0.002 (Energy.consumed_joules e)

let test_depletion () =
  let e = Energy.create ~capacity_joules:0.001 ~active_nj_per_cycle:1.0 ~sleep_microwatt:0.0 () in
  Energy.consume_cycles e 2_000_000L;
  Alcotest.(check bool) "depleted" true (Energy.depleted e);
  Alcotest.(check (float 1e-9)) "remaining floors at 0" 0.0 (Energy.remaining_joules e)

let test_lifetime_model () =
  let e = Energy.create ~capacity_joules:2340.0 ~active_nj_per_cycle:0.5 ~sleep_microwatt:2.0 () in
  let idle_life = Energy.lifetime_seconds e ~duty_cycles_per_second:0.0 in
  (* 2340 J / 2 µW = 1.17e9 s ≈ 37 years on sleep alone *)
  Alcotest.(check (float 1e3)) "idle lifetime" 1.17e9 idle_life;
  let busy_life = Energy.lifetime_seconds e ~duty_cycles_per_second:24e6 in
  Alcotest.(check bool) "full duty is much shorter" true (busy_life < idle_life /. 1000.0)

let test_radio_consumption () =
  let e = Energy.create ~capacity_joules:1.0 ~radio_uj_per_byte:2.0 () in
  Energy.consume_radio e ~bytes:500;
  Alcotest.(check (float 1e-9)) "1 mJ for 500 B" 0.001 (Energy.consumed_joules e);
  Alcotest.check_raises "negative size"
    (Invalid_argument "Energy.consume_radio: negative size") (fun () ->
      Energy.consume_radio e ~bytes:(-1))

let test_invalid_args () =
  Alcotest.check_raises "bad capacity" (Invalid_argument "Energy.create: capacity")
    (fun () -> ignore (Energy.create ~capacity_joules:0.0 ()));
  let e = Energy.create () in
  Alcotest.check_raises "negative sleep"
    (Invalid_argument "Energy.consume_sleep: negative time") (fun () ->
      Energy.consume_sleep e ~seconds:(-1.0))

let qcheck_lifetime_monotone =
  QCheck.Test.make ~name:"energy: more duty, shorter life" ~count:100
    QCheck.(pair (float_range 0.0 1e7) (float_range 0.0 1e7))
    (fun (a, b) ->
      let e = Energy.create () in
      let lo = min a b and hi = max a b in
      Energy.lifetime_seconds e ~duty_cycles_per_second:hi
      <= Energy.lifetime_seconds e ~duty_cycles_per_second:lo)

let tests =
  [
    Alcotest.test_case "active consumption" `Quick test_active_consumption;
    Alcotest.test_case "sleep consumption" `Quick test_sleep_consumption;
    Alcotest.test_case "depletion" `Quick test_depletion;
    Alcotest.test_case "lifetime model" `Quick test_lifetime_model;
    Alcotest.test_case "radio consumption" `Quick test_radio_consumption;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
    QCheck_alcotest.to_alcotest qcheck_lifetime_monotone;
  ]
