open Ra_core
module Path = Ra_net.Path

let windows = [ 1L; 5L; 20L; 100L; 1000L ]

let test_monotone_in_window () =
  let points =
    Ablation.timestamp_window_sweep ~trials:200 ~path:Path.lan ~windows ~seed:7L ()
  in
  let rates = List.map Ablation.false_reject_rate points in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "wider window, fewer false rejects" true (non_increasing rates)

let test_recommended_window_suffices () =
  List.iter
    (fun path ->
      let window = Ablation.recommended_window_ms ~path in
      let [@warning "-8"] [ point ] =
        Ablation.timestamp_window_sweep ~trials:300 ~path ~windows:[ window ] ~seed:3L ()
      in
      Alcotest.(check int) "no false rejects at the recommended window" 0
        point.Ablation.false_rejects)
    [ Path.direct; Path.lan; Path.internet ]

let test_tiny_window_rejects_on_slow_paths () =
  let [@warning "-8"] [ point ] =
    Ablation.timestamp_window_sweep ~trials:300 ~path:Path.internet ~windows:[ 30L ]
      ~seed:3L ()
  in
  (* internet min one-way delay is 60 ms: a 30 ms window rejects all *)
  Alcotest.(check int) "everything late" 300 point.Ablation.false_rejects

let test_exposure_is_window () =
  let [@warning "-8"] [ point ] =
    Ablation.timestamp_window_sweep ~trials:10 ~path:Path.direct ~windows:[ 250L ]
      ~seed:1L ()
  in
  Alcotest.(check int64) "exposure" 250L point.Ablation.exposure_ms

let test_deterministic () =
  let run () =
    Ablation.timestamp_window_sweep ~trials:100 ~path:Path.lan ~windows:[ 5L ] ~seed:11L ()
  in
  Alcotest.(check bool) "reproducible" true (run () = run ())

let tests =
  [
    Alcotest.test_case "monotone in window" `Quick test_monotone_in_window;
    Alcotest.test_case "recommended window suffices" `Quick
      test_recommended_window_suffices;
    Alcotest.test_case "tiny window on slow paths" `Quick
      test_tiny_window_rejects_on_slow_paths;
    Alcotest.test_case "exposure = window" `Quick test_exposure_is_window;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
