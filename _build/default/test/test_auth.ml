open Ra_core
module Timing = Ra_mcu.Timing
module C = Ra_crypto

let sym_key = String.init 20 (fun i -> Char.chr (i + 65))
let blob = Auth.prover_key_blob ~sym_key ~public:None
let body = Message.request_body ~challenge:"ch" ~freshness:(Message.F_counter 9L)

let symmetric_schemes =
  [ Timing.Auth_hmac_sha1; Timing.Auth_aes128_cbc_mac; Timing.Auth_speck64_cbc_mac ]

let test_symmetric_roundtrip () =
  List.iter
    (fun scheme ->
      let tag = Auth.tag_request scheme (Auth.Vs_symmetric sym_key) ~body in
      Alcotest.(check bool)
        (Format.asprintf "%a verifies" Timing.pp_auth_scheme scheme)
        true
        (Auth.verify_request scheme ~key_blob:blob ~body tag);
      Alcotest.(check bool) "rejects other body" false
        (Auth.verify_request scheme ~key_blob:blob ~body:(body ^ "x") tag))
    symmetric_schemes

let test_wrong_key_rejected () =
  let other = Auth.prover_key_blob ~sym_key:(String.make 20 'z') ~public:None in
  List.iter
    (fun scheme ->
      let tag = Auth.tag_request scheme (Auth.Vs_symmetric sym_key) ~body in
      Alcotest.(check bool) "wrong key" false
        (Auth.verify_request scheme ~key_blob:other ~body tag))
    symmetric_schemes

let test_scheme_confusion_rejected () =
  (* a valid HMAC tag presented to an AES-CBC-MAC prover must not pass *)
  let tag = Auth.tag_request Timing.Auth_hmac_sha1 (Auth.Vs_symmetric sym_key) ~body in
  Alcotest.(check bool) "cross-scheme" false
    (Auth.verify_request Timing.Auth_aes128_cbc_mac ~key_blob:blob ~body tag);
  Alcotest.(check bool) "missing tag" false
    (Auth.verify_request Timing.Auth_hmac_sha1 ~key_blob:blob ~body Message.Tag_none)

let test_ecdsa_roundtrip () =
  let kp = C.Ecdsa.generate_keypair C.Ec.secp160r1 ~seed:"vrf" in
  let blob = Auth.prover_key_blob ~sym_key ~public:(Some kp.C.Ecdsa.public) in
  let tag = Auth.tag_request Timing.Auth_ecdsa_verify (Auth.Vs_ecdsa kp) ~body in
  Alcotest.(check bool) "verifies" true
    (Auth.verify_request Timing.Auth_ecdsa_verify ~key_blob:blob ~body tag);
  Alcotest.(check bool) "rejects other body" false
    (Auth.verify_request Timing.Auth_ecdsa_verify ~key_blob:blob ~body:(body ^ "x") tag);
  (* prover without a provisioned public key rejects all signatures *)
  let no_pub = Auth.prover_key_blob ~sym_key ~public:None in
  Alcotest.(check bool) "no public key" false
    (Auth.verify_request Timing.Auth_ecdsa_verify ~key_blob:no_pub ~body tag)

let test_blob_layout () =
  Alcotest.(check int) "blob length" Auth.blob_len (String.length blob);
  Alcotest.(check string) "sym part" sym_key (Auth.blob_sym_key blob);
  Alcotest.(check bool) "empty pub slot" true (Auth.blob_public blob = None);
  Alcotest.check_raises "bad sym length"
    (Invalid_argument "Auth.prover_key_blob: sym_key must be 20 bytes") (fun () ->
      ignore (Auth.prover_key_blob ~sym_key:"short" ~public:None))

let test_point_encoding () =
  let kp = C.Ecdsa.generate_keypair C.Ec.secp160r1 ~seed:"p" in
  let bytes = Auth.point_to_bytes kp.C.Ecdsa.public in
  Alcotest.(check int) "40 bytes" Auth.public_len (String.length bytes);
  (match Auth.point_of_bytes bytes with
  | Some p -> Alcotest.(check bool) "roundtrip" true (C.Ec.equal C.Ec.secp160r1 p kp.C.Ecdsa.public)
  | None -> Alcotest.fail "decode failed");
  Alcotest.(check bool) "garbage rejected" true
    (Auth.point_of_bytes (String.make Auth.public_len '\x07') = None)

let test_response_report_binding () =
  let r1 = Auth.response_report ~sym_key ~body:"b" ~memory_image:"m" in
  Alcotest.(check bool) "body bound" true
    (r1 <> Auth.response_report ~sym_key ~body:"b'" ~memory_image:"m");
  Alcotest.(check bool) "memory bound" true
    (r1 <> Auth.response_report ~sym_key ~body:"b" ~memory_image:"m'");
  Alcotest.(check bool) "key bound" true
    (r1 <> Auth.response_report ~sym_key:(String.make 20 'q') ~body:"b" ~memory_image:"m")

let qcheck_tags_differ_across_bodies =
  QCheck.Test.make ~name:"auth: tag binds the body (speck)" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 50)) (string_of_size Gen.(0 -- 50)))
    (fun (b1, b2) ->
      QCheck.assume (b1 <> b2);
      Auth.tag_request Timing.Auth_speck64_cbc_mac (Auth.Vs_symmetric sym_key) ~body:b1
      <> Auth.tag_request Timing.Auth_speck64_cbc_mac (Auth.Vs_symmetric sym_key) ~body:b2)

let tests =
  [
    Alcotest.test_case "symmetric roundtrip" `Quick test_symmetric_roundtrip;
    Alcotest.test_case "wrong key rejected" `Quick test_wrong_key_rejected;
    Alcotest.test_case "scheme confusion rejected" `Quick test_scheme_confusion_rejected;
    Alcotest.test_case "ecdsa roundtrip" `Quick test_ecdsa_roundtrip;
    Alcotest.test_case "blob layout" `Quick test_blob_layout;
    Alcotest.test_case "point encoding" `Quick test_point_encoding;
    Alcotest.test_case "response report binding" `Quick test_response_report_binding;
    QCheck_alcotest.to_alcotest qcheck_tags_differ_across_bodies;
  ]
