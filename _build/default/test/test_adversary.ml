open Ra_core
module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu

let counter_spec ~protect =
  {
    (Architecture.with_policy Architecture.trustlite_base Freshness.Counter) with
    Architecture.clock_impl = Device.Clock_none;
    protect_counter = protect;
    protect_key = protect;
  }

let session ~protect = Session.create ~spec:(counter_spec ~protect) ~ram_size:2048 ()

let test_eavesdropping () =
  let s = session ~protect:true in
  let _ = Session.attest_round s in
  let _ = Session.attest_round s in
  Alcotest.(check int) "recorded both requests" 2
    (List.length (Adversary.recorded_requests s))

let test_intercept () =
  let s = session ~protect:true in
  let sent = Session.send_request s in
  (match Adversary.intercept_next_request s with
  | Some req -> Alcotest.(check bool) "got the request" true (req = sent)
  | None -> Alcotest.fail "interception failed");
  Alcotest.(check bool) "wire empty" false (Session.deliver_next_to_prover s);
  Alcotest.(check int) "prover saw nothing" 0
    (Code_attest.stats (Session.anchor s)).Code_attest.requests_seen

let test_compromise_erases_traces () =
  let s = session ~protect:true in
  let d = Session.device s in
  let image_before =
    Ra_mcu.Memory.read_bytes (Device.memory d) (Device.attested_base d) 2048
  in
  let report = Adversary.compromise s ~tampers:[ Adversary.Try_counter_write 0L ] in
  Alcotest.(check bool) "was resident" true report.Adversary.malware_was_resident;
  Alcotest.(check bool) "traces erased" true report.Adversary.traces_erased;
  let image_after =
    Ra_mcu.Memory.read_bytes (Device.memory d) (Device.attested_base d) 2048
  in
  Alcotest.(check bool) "RAM bit-exact" true (image_before = image_after)

let test_tamper_results_depend_on_protection () =
  let attempted s =
    (Adversary.compromise s
       ~tampers:
         [
           Adversary.Try_key_read;
           Adversary.Try_counter_write 0L;
           Adversary.Try_mpu_reconfig;
         ])
      .Adversary.attempts
  in
  let exposed = attempted (session ~protect:false) in
  List.iter
    (fun (tamper, result) ->
      match tamper with
      | Adversary.Try_mpu_reconfig ->
        (* trustlite specs lock the MPU even when rules are absent *)
        Alcotest.(check bool) "mpu locked" false (Adversary.tamper_result_ok result)
      | Adversary.Try_key_read | Adversary.Try_counter_write _ ->
        Alcotest.(check bool) "exposed: tampering works" true
          (Adversary.tamper_result_ok result)
      | Adversary.Try_key_write _ | Adversary.Try_clock_set_back_ms _
      | Adversary.Try_idt_tamper | Adversary.Try_irq_disable ->
        Alcotest.fail "unexpected tamper in report")
    exposed;
  let defended = attempted (session ~protect:true) in
  List.iter
    (fun (_, result) ->
      Alcotest.(check bool) "defended: everything blocked" false
        (Adversary.tamper_result_ok result))
    defended

let test_key_write_blocked_in_rom () =
  let s = session ~protect:false in
  let report =
    Adversary.compromise s ~tampers:[ Adversary.Try_key_write (String.make 60 'x') ]
  in
  (match report.Adversary.attempts with
  | [ (_, Adversary.Blocked_rom_immutable) ] -> ()
  | [ (_, r) ] ->
    Alcotest.failf "expected ROM block, got %a" Adversary.pp_tamper_result r
  | _ -> Alcotest.fail "expected one attempt")

let test_stolen_key_enables_forgery () =
  let s = session ~protect:false in
  let report = Adversary.compromise s ~tampers:[ Adversary.Try_key_read ] in
  (match Adversary.stolen_key_blob report with
  | Some blob ->
    let forged =
      Adversary.forge_request s ~key_blob:blob ~freshness:(Message.F_counter 1L) ()
    in
    Adversary.inject s forged;
    Alcotest.(check int) "forged request accepted" 1
      (Code_attest.stats (Session.anchor s)).Code_attest.attestations_performed
  | None -> Alcotest.fail "key should be extractable")

let test_forgery_without_key_fails () =
  let s = session ~protect:true in
  let forged = Adversary.forge_request s ~freshness:(Message.F_counter 1L) () in
  Adversary.inject s forged;
  Alcotest.(check int) "rejected" 0
    (Code_attest.stats (Session.anchor s)).Code_attest.attestations_performed

let test_flash_key_needs_write_rule () =
  (* §6.2: "if [the key] is stored in writable memory (e.g., RAM or
     Flash), it must be write-protected by a dedicated EA-MAC rule" *)
  let spec ~protect =
    {
      (counter_spec ~protect) with
      Architecture.key_location = Device.Key_in_flash;
      spec_name = (if protect then "flashkey/rule" else "flashkey/bare");
    }
  in
  let overwrite s =
    (Adversary.compromise s ~tampers:[ Adversary.Try_key_write (String.make 60 'e') ])
      .Adversary.attempts
  in
  (* without the rule the flash key is overwritable — from then on the
     adversary's own key authenticates its requests *)
  let s = Session.create ~spec:(spec ~protect:false) ~ram_size:2048 () in
  (match overwrite s with
  | [ (_, Adversary.Tamper_succeeded _) ] -> ()
  | [ (_, r) ] -> Alcotest.failf "expected success, got %a" Adversary.pp_tamper_result r
  | _ -> Alcotest.fail "expected one attempt");
  let evil_blob = String.make 60 'e' in
  let forged =
    Adversary.forge_request s ~key_blob:evil_blob ~freshness:(Message.F_counter 1L) ()
  in
  Adversary.inject s forged;
  Alcotest.(check int) "forgery under planted key accepted" 1
    (Code_attest.stats (Session.anchor s)).Code_attest.attestations_performed;
  (* with the rule, the overwrite faults *)
  let s2 = Session.create ~spec:(spec ~protect:true) ~ram_size:2048 () in
  (match overwrite s2 with
  | [ (_, Adversary.Blocked_by_mpu) ] -> ()
  | [ (_, r) ] -> Alcotest.failf "expected MPU block, got %a" Adversary.pp_tamper_result r
  | _ -> Alcotest.fail "expected one attempt")

let test_clock_tamper_not_applicable_without_clock () =
  let s = session ~protect:false in
  let report =
    Adversary.compromise s ~tampers:[ Adversary.Try_clock_set_back_ms 1000L ]
  in
  (match report.Adversary.attempts with
  | [ (_, Adversary.Not_applicable _) ] -> ()
  | _ -> Alcotest.fail "expected not-applicable")

let test_flood_counts () =
  let s = session ~protect:true in
  let bogus = Adversary.forge_request s ~freshness:Message.F_none () in
  Adversary.flood s ~count:50 bogus;
  let stats = Code_attest.stats (Session.anchor s) in
  Alcotest.(check int) "all seen" 50 stats.Code_attest.requests_seen;
  Alcotest.(check int) "all rejected" 50 stats.Code_attest.requests_rejected

let tests =
  [
    Alcotest.test_case "eavesdropping" `Quick test_eavesdropping;
    Alcotest.test_case "interception" `Quick test_intercept;
    Alcotest.test_case "compromise erases traces" `Quick test_compromise_erases_traces;
    Alcotest.test_case "tampering vs protection" `Quick
      test_tamper_results_depend_on_protection;
    Alcotest.test_case "ROM key immutable" `Quick test_key_write_blocked_in_rom;
    Alcotest.test_case "stolen key enables forgery" `Quick test_stolen_key_enables_forgery;
    Alcotest.test_case "forgery without key fails" `Quick test_forgery_without_key_fails;
    Alcotest.test_case "flash key needs write rule (§6.2)" `Quick
      test_flash_key_needs_write_rule;
    Alcotest.test_case "clock tamper without clock" `Quick
      test_clock_tamper_not_applicable_without_clock;
    Alcotest.test_case "flood statistics" `Quick test_flood_counts;
  ]
