open Ra_core

let base =
  {
    Realtime.task_period_ms = 10.0;
    task_wcet_ms = 4.0;
    attestation_ms = 754.0 (* the §3.1 512 KB memory MAC *);
    anchor_mode = Realtime.Non_interruptible;
    horizon_ms = 10_000.0;
    request_times_ms = [];
  }

let test_no_attestation_no_misses () =
  let r = Realtime.simulate base in
  Alcotest.(check int) "jobs" 1000 r.Realtime.task_jobs;
  Alcotest.(check int) "no misses" 0 r.Realtime.deadline_misses;
  Alcotest.(check (float 0.01)) "utilization 40%" 0.4 r.Realtime.busy_fraction

let test_single_attestation_starves_task () =
  (* one 754 ms uninterruptible attestation blocks ~75 task periods *)
  let r =
    Realtime.simulate { base with Realtime.request_times_ms = [ 1000.0 ] }
  in
  Alcotest.(check bool) "many misses" true (r.Realtime.deadline_misses >= 70);
  Alcotest.(check int) "attestation done" 1 r.Realtime.attestations_completed;
  (* the same attestation under an interruptible anchor: no misses *)
  let r2 =
    Realtime.simulate
      { base with Realtime.anchor_mode = Realtime.Interruptible;
        request_times_ms = [ 1000.0 ] }
  in
  Alcotest.(check int) "interruptible: no misses" 0 r2.Realtime.deadline_misses;
  Alcotest.(check int) "still completes" 1 r2.Realtime.attestations_completed;
  (* ...but the attestation takes longer than its pure execution time *)
  Alcotest.(check bool) "latency stretched" true
    (r2.Realtime.max_attestation_latency_ms > 754.0 +. 1.0)

let test_flood_starvation_scales () =
  let flood every =
    Realtime.miss_rate
      (Realtime.simulate
         { base with
           Realtime.request_times_ms =
             Realtime.periodic_requests ~every_ms:every ~horizon_ms:base.Realtime.horizon_ms
         })
  in
  let sparse = flood 5000.0 in
  let dense = flood 1000.0 in
  Alcotest.(check bool) "denser flood, more misses" true (dense > sparse);
  Alcotest.(check bool) "dense flood starves most jobs" true (dense > 0.6)

let test_interruptible_flood_never_misses () =
  let r =
    Realtime.simulate
      { base with Realtime.anchor_mode = Realtime.Interruptible;
        request_times_ms = Realtime.periodic_requests ~every_ms:1000.0 ~horizon_ms:10_000.0
      }
  in
  Alcotest.(check int) "no misses" 0 r.Realtime.deadline_misses;
  (* 10 x 754 ms of anchor work cannot fit in 10 s of 60% slack: some
     attestations are still pending at the horizon *)
  Alcotest.(check bool) "backlog builds" true (r.Realtime.attestations_pending > 0)

let test_validation () =
  Alcotest.check_raises "bad period" (Invalid_argument "Realtime: period must be positive")
    (fun () -> ignore (Realtime.simulate { base with Realtime.task_period_ms = 0.0 }));
  Alcotest.check_raises "unsorted requests"
    (Invalid_argument "Realtime: request times must be sorted and non-negative")
    (fun () ->
      ignore (Realtime.simulate { base with Realtime.request_times_ms = [ 5.0; 1.0 ] }))

let test_periodic_requests () =
  Alcotest.(check (list (float 0.0))) "grid" [ 0.0; 100.0; 200.0 ]
    (Realtime.periodic_requests ~every_ms:100.0 ~horizon_ms:300.0)

let qcheck_interruptible_feasible_task_never_misses =
  (* with the task at top priority and wcet <= period, a single periodic
     task is always schedulable regardless of attestation load *)
  QCheck.Test.make ~name:"realtime: interruptible anchor never starves a feasible task"
    ~count:50
    QCheck.(triple (float_range 1.0 20.0) (float_range 50.0 400.0) (int_range 1 8))
    (fun (wcet, attest_ms, n_req) ->
      let period = wcet +. 5.0 in
      let cfg =
        {
          Realtime.task_period_ms = period;
          task_wcet_ms = wcet;
          attestation_ms = attest_ms;
          anchor_mode = Realtime.Interruptible;
          horizon_ms = 2_000.0;
          request_times_ms =
            List.init n_req (fun i -> float_of_int i *. (2000.0 /. float_of_int n_req));
        }
      in
      (Realtime.simulate cfg).Realtime.deadline_misses = 0)

let qcheck_busy_fraction_bounded =
  QCheck.Test.make ~name:"realtime: utilization within [0,1]" ~count:50
    QCheck.(pair (float_range 1.0 9.0) (int_range 0 5))
    (fun (wcet, n_req) ->
      let cfg =
        {
          base with
          Realtime.task_wcet_ms = wcet;
          request_times_ms = List.init n_req (fun i -> float_of_int (i * 997));
        }
      in
      let r = Realtime.simulate cfg in
      r.Realtime.busy_fraction >= 0.0 && r.Realtime.busy_fraction <= 1.0 +. 1e-9)

let tests =
  [
    Alcotest.test_case "no attestation, no misses" `Quick test_no_attestation_no_misses;
    Alcotest.test_case "uninterruptible attestation starves (§3.1)" `Quick
      test_single_attestation_starves_task;
    Alcotest.test_case "flood starvation scales" `Quick test_flood_starvation_scales;
    Alcotest.test_case "interruptible flood: no misses, backlog" `Quick
      test_interruptible_flood_never_misses;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "periodic requests" `Quick test_periodic_requests;
    QCheck_alcotest.to_alcotest qcheck_interruptible_feasible_task_never_misses;
    QCheck_alcotest.to_alcotest qcheck_busy_fraction_bounded;
  ]
