(* The machine-checked protection lattice: all 16 defence combinations
   behave exactly as the paper's §5/§6.2 argument predicts. *)
open Ra_core

let test_sixteen_points () =
  Alcotest.(check int) "16 configs" 16 (List.length Analysis.all_configs)

let test_exhaustive_agreement () =
  List.iter
    (fun (config, predicted, observed, agree) ->
      if not agree then
        Alcotest.failf "%a: predicted %a but observed %a" Analysis.pp_config config
          Analysis.pp_exposure predicted Analysis.pp_exposure observed)
    (Analysis.exhaustive_check ())

let test_prediction_structure () =
  (* the unlocked half of the lattice is uniformly exposed *)
  List.iter
    (fun config ->
      if not config.Analysis.p_lock then begin
        let p = Analysis.predict config in
        Alcotest.(check bool) "unlocked => all exposed" true
          (p.Analysis.key_extractable && p.Analysis.counter_rollbackable
         && p.Analysis.clock_rollbackable)
      end)
    Analysis.all_configs;
  (* the fully-defended point is fully safe *)
  let full =
    Analysis.predict
      { Analysis.p_key = true; p_counter = true; p_clock = true; p_lock = true }
  in
  Alcotest.(check bool) "fully defended => fully safe" true
    ((not full.Analysis.key_extractable)
    && (not full.Analysis.counter_rollbackable)
    && not full.Analysis.clock_rollbackable)

let tests =
  [
    Alcotest.test_case "sixteen lattice points" `Quick test_sixteen_points;
    Alcotest.test_case "prediction structure" `Quick test_prediction_structure;
    Alcotest.test_case "exhaustive agreement (§5/§6.2)" `Slow test_exhaustive_agreement;
  ]
