(* The headline reproduction: Table 2 and the §5 roaming-adversary
   results as machine-checked facts. *)
open Ra_core

let test_table2_matches_paper () =
  Alcotest.(check bool) "full matrix" true (Experiment.table2 () = Experiment.expected_table2)

let cell f a = Experiment.table2_cell f a

let test_table2_cells_individually () =
  Alcotest.(check bool) "nonces stop replay" true (cell Experiment.F_nonces Experiment.A_replay);
  Alcotest.(check bool) "nonces miss reorder" false (cell Experiment.F_nonces Experiment.A_reorder);
  Alcotest.(check bool) "nonces miss delay" false (cell Experiment.F_nonces Experiment.A_delay);
  Alcotest.(check bool) "counter stops reorder" true (cell Experiment.F_counter Experiment.A_reorder);
  Alcotest.(check bool) "counter misses delay" false (cell Experiment.F_counter Experiment.A_delay);
  Alcotest.(check bool) "timestamps stop delay" true
    (cell Experiment.F_timestamps Experiment.A_delay)

let outcome_checks name (o : Experiment.roam_outcome) ~dos_blocked ~evidence =
  Alcotest.(check bool) (name ^ ": dos_blocked") dos_blocked o.Experiment.dos_blocked;
  match evidence with
  | Some e -> Alcotest.(check bool) (name ^ ": evidence") e o.Experiment.evidence_left
  | None -> ()

let test_counter_rollback () =
  (* §5: undefended roll-back succeeds and is undetectable afterwards *)
  outcome_checks "exposed"
    (Experiment.roam_counter_rollback ~defended:false)
    ~dos_blocked:false ~evidence:(Some false);
  outcome_checks "defended"
    (Experiment.roam_counter_rollback ~defended:true)
    ~dos_blocked:true ~evidence:(Some true)

let test_clock_rollback () =
  (* §5: undefended clock roll-back succeeds but leaves the clock behind *)
  outcome_checks "exposed"
    (Experiment.roam_clock_rollback ~defended:false)
    ~dos_blocked:false ~evidence:(Some true);
  outcome_checks "defended"
    (Experiment.roam_clock_rollback ~defended:true)
    ~dos_blocked:true ~evidence:None

let test_hw_clock_immune () =
  outcome_checks "hw clock"
    (Experiment.roam_clock_rollback_hw ())
    ~dos_blocked:true ~evidence:None

let test_idt_freeze () =
  outcome_checks "exposed" (Experiment.roam_idt_freeze ~defended:false)
    ~dos_blocked:false ~evidence:(Some true);
  outcome_checks "defended" (Experiment.roam_idt_freeze ~defended:true)
    ~dos_blocked:true ~evidence:None

let test_key_extraction () =
  outcome_checks "exposed"
    (Experiment.roam_key_extraction ~defended:false)
    ~dos_blocked:false ~evidence:(Some false);
  outcome_checks "defended"
    (Experiment.roam_key_extraction ~defended:true)
    ~dos_blocked:true ~evidence:(Some true)

let test_mpu_lockdown () =
  outcome_checks "missing lockdown"
    (Experiment.roam_mpu_lockdown ~defended:false)
    ~dos_blocked:false ~evidence:None;
  outcome_checks "with lockdown"
    (Experiment.roam_mpu_lockdown ~defended:true)
    ~dos_blocked:true ~evidence:None

let test_matrix_shape () =
  let outcomes = Experiment.roaming_matrix () in
  Alcotest.(check int) "eleven scenarios" 11 (List.length outcomes);
  (* every defended scenario blocks; every exposed one succeeds *)
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (o.Experiment.scenario ^ " defended<->blocked")
        o.Experiment.defended o.Experiment.dos_blocked)
    outcomes

let tests =
  [
    Alcotest.test_case "Table 2 matches paper" `Slow test_table2_matches_paper;
    Alcotest.test_case "Table 2 cells" `Slow test_table2_cells_individually;
    Alcotest.test_case "counter rollback (§5)" `Quick test_counter_rollback;
    Alcotest.test_case "clock rollback (§5)" `Quick test_clock_rollback;
    Alcotest.test_case "64-bit hw clock immune" `Quick test_hw_clock_immune;
    Alcotest.test_case "IDT freeze (§6.2)" `Quick test_idt_freeze;
    Alcotest.test_case "key extraction (§5)" `Quick test_key_extraction;
    Alcotest.test_case "MPU lockdown (§6.2)" `Quick test_mpu_lockdown;
    Alcotest.test_case "matrix shape" `Quick test_matrix_shape;
  ]
