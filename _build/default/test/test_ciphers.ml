(* AES-128 (FIPS 197 / SP 800-38A) and Speck 64/128 (ePrint 2013/404)
   known-answer tests plus round-trip properties. *)
open Ra_crypto

let hex = Hexutil.to_hex
let unhex = Hexutil.of_hex
let check = Alcotest.(check string)

let test_aes_fips197 () =
  let key = Aes.expand (unhex "000102030405060708090a0b0c0d0e0f") in
  let pt = unhex "00112233445566778899aabbccddeeff" in
  let ct = Aes.encrypt_block key pt in
  check "encrypt" "69c4e0d86a7b0430d8cdb78070b4c55a" (hex ct);
  check "decrypt" (hex pt) (hex (Aes.decrypt_block key ct))

let test_aes_sp80038a () =
  (* AES-128 ECB vectors from SP 800-38A F.1.1 *)
  let key = Aes.expand (unhex "2b7e151628aed2a6abf7158809cf4f3c") in
  let cases =
    [
      ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97");
      ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf");
      ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688");
      ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4");
    ]
  in
  List.iter
    (fun (pt, expected) ->
      check pt expected (hex (Aes.encrypt_block key (unhex pt))))
    cases

let test_aes_bad_lengths () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes.expand: need 16 bytes")
    (fun () -> ignore (Aes.expand "short"));
  let key = Aes.expand (String.make 16 'k') in
  Alcotest.check_raises "short block" (Invalid_argument "Aes.encrypt_block") (fun () ->
      ignore (Aes.encrypt_block key "short"))

let test_speck_vector () =
  (* Speck64/128 test vector from the SIMON & SPECK paper appendix *)
  let key = Speck.expand (unhex "0001020308090a0b1011121318191a1b") in
  let pt = unhex "2d4375747465723b" in
  let ct = Speck.encrypt_block key pt in
  check "encrypt" "8b024e4548a56f8c" (hex ct);
  check "decrypt" (hex pt) (hex (Speck.decrypt_block key ct))

let test_simon_vector () =
  (* Simon64/128 test vector from the SIMON & SPECK paper appendix *)
  let key = Simon.expand (unhex "0001020308090a0b1011121318191a1b") in
  let pt = unhex "756e64206c696b65" in
  let ct = Simon.encrypt_block key pt in
  check "encrypt" "7aa0dfb920fcc844" (hex ct);
  check "decrypt" (hex pt) (hex (Simon.decrypt_block key ct))

let test_simon_bad_lengths () =
  Alcotest.check_raises "short key" (Invalid_argument "Simon.expand: need 16 bytes")
    (fun () -> ignore (Simon.expand "short"));
  let key = Simon.expand (String.make 16 'k') in
  Alcotest.check_raises "bad block" (Invalid_argument "Simon.encrypt_block") (fun () ->
      ignore (Simon.encrypt_block key "bad"))

let test_speck_bad_lengths () =
  Alcotest.check_raises "short key" (Invalid_argument "Speck.expand: need 16 bytes")
    (fun () -> ignore (Speck.expand "short"));
  let key = Speck.expand (String.make 16 'k') in
  Alcotest.check_raises "bad block" (Invalid_argument "Speck.encrypt_block") (fun () ->
      ignore (Speck.encrypt_block key "bad"))

let qcheck_aes_roundtrip =
  QCheck.Test.make ~name:"aes: decrypt . encrypt = id" ~count:100
    QCheck.(pair (string_of_size Gen.(return 16)) (string_of_size Gen.(return 16)))
    (fun (k, pt) ->
      let key = Aes.expand k in
      Aes.decrypt_block key (Aes.encrypt_block key pt) = pt)

let qcheck_simon_roundtrip =
  QCheck.Test.make ~name:"simon: decrypt . encrypt = id" ~count:200
    QCheck.(pair (string_of_size Gen.(return 16)) (string_of_size Gen.(return 8)))
    (fun (k, pt) ->
      let key = Simon.expand k in
      Simon.decrypt_block key (Simon.encrypt_block key pt) = pt)

let qcheck_speck_roundtrip =
  QCheck.Test.make ~name:"speck: decrypt . encrypt = id" ~count:200
    QCheck.(pair (string_of_size Gen.(return 16)) (string_of_size Gen.(return 8)))
    (fun (k, pt) ->
      let key = Speck.expand k in
      Speck.decrypt_block key (Speck.encrypt_block key pt) = pt)

let qcheck_aes_key_avalanche =
  QCheck.Test.make ~name:"aes: key bit flip changes ciphertext" ~count:50
    QCheck.(string_of_size Gen.(return 16))
    (fun k ->
      let k' = Bytes.of_string k in
      Bytes.set k' 0 (Char.chr (Char.code (Bytes.get k' 0) lxor 0x80));
      let pt = String.make 16 'p' in
      Aes.encrypt_block (Aes.expand k) pt
      <> Aes.encrypt_block (Aes.expand (Bytes.to_string k')) pt)

let tests =
  [
    Alcotest.test_case "AES FIPS-197 vector" `Quick test_aes_fips197;
    Alcotest.test_case "AES SP800-38A vectors" `Quick test_aes_sp80038a;
    Alcotest.test_case "AES bad lengths" `Quick test_aes_bad_lengths;
    Alcotest.test_case "Speck 64/128 vector" `Quick test_speck_vector;
    Alcotest.test_case "Speck bad lengths" `Quick test_speck_bad_lengths;
    Alcotest.test_case "Simon 64/128 vector" `Quick test_simon_vector;
    Alcotest.test_case "Simon bad lengths" `Quick test_simon_bad_lengths;
    QCheck_alcotest.to_alcotest qcheck_aes_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_speck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_simon_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_aes_key_avalanche;
  ]
