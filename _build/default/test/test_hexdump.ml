open Ra_mcu

let key = String.make 60 'k'

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

let test_dump_layout () =
  let d = Device.create ~ram_size:1024 ~key () in
  Memory.write_bytes (Device.memory d) (Device.attested_base d) "Hello, world!";
  let text = Hexdump.dump (Device.memory d) ~addr:(Device.attested_base d) ~len:32 in
  Alcotest.(check int) "two rows" 2
    (List.length (String.split_on_char '\n' (String.trim text)));
  Alcotest.(check bool) "ascii column" true (contains ~needle:"|Hello, world!" text);
  Alcotest.(check bool) "hex bytes" true (contains ~needle:"48 65 6c 6c 6f" text);
  Alcotest.(check bool) "address" true (contains ~needle:"00100000" text)

let test_dump_nonprintable () =
  let d = Device.create ~ram_size:1024 ~key () in
  let text = Hexdump.dump (Device.memory d) ~addr:(Device.attested_base d) ~len:16 in
  Alcotest.(check bool) "zeros shown as dots" true
    (contains ~needle:"|................|" text)

let test_region_table () =
  let d = Device.create ~ram_size:1024 ~key () in
  let text = Hexdump.region_table (Device.memory d) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains ~needle text))
    [ "rom_attest"; "flash_app"; "nvram"; "anchor_scratch"; "ROM"; "MMIO" ]

let test_rule_table () =
  let d = Device.create ~ram_size:1024 ~key () in
  Ea_mpu.program (Device.mpu d) (Device.rule_protect_key d);
  Ea_mpu.lock (Device.mpu d);
  let text = Hexdump.rule_table (Device.mpu d) in
  Alcotest.(check bool) "lock state" true (contains ~needle:"LOCKED" text);
  Alcotest.(check bool) "subject" true (contains ~needle:"read:rom_attest" text);
  Alcotest.(check bool) "write nobody" true (contains ~needle:"write:nobody" text)

let test_device_report () =
  let d =
    Device.create ~ram_size:1024
      ~clock_impl:(Device.Clock_hw { width = 64; divider_log2 = 0 })
      ~key ()
  in
  Device.idle d ~seconds:1.0;
  let text = Hexdump.device_report d in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle text))
    [ "counter_R: 0"; "hardware counter"; "battery:"; "cpu: 24000000 cycles" ]

let tests =
  [
    Alcotest.test_case "dump layout" `Quick test_dump_layout;
    Alcotest.test_case "dump nonprintable" `Quick test_dump_nonprintable;
    Alcotest.test_case "region table" `Quick test_region_table;
    Alcotest.test_case "rule table" `Quick test_rule_table;
    Alcotest.test_case "device report" `Quick test_device_report;
  ]
