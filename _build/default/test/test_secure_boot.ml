open Ra_mcu

let image = { Secure_boot.image_name = "app"; code = "trusted application code v1" }

let make () =
  let memory =
    Memory.create
      [ Region.make ~name:"flash" ~base:0x1000 ~size:4096 ~kind:Region.Flash ]
  in
  let mpu = Ea_mpu.create ~capacity:4 in
  let cpu = Cpu.create memory mpu ~clock_hz:24_000_000 in
  (memory, mpu, cpu)

let config ?(rules = []) ?(lock = true) () =
  {
    Secure_boot.reference_digest = Secure_boot.digest_image image;
    protection_rules = rules;
    lock_mpu = lock;
    enable_interrupts = false;
  }

let test_good_boot () =
  let memory, mpu, cpu = make () in
  Secure_boot.install_image memory ~region:"flash" image;
  let rule =
    {
      Ea_mpu.rule_name = "key";
      data_base = 0x1800;
      data_size = 16;
      read_by = Ea_mpu.Code_in [ "attest" ];
      write_by = Ea_mpu.Nobody;
    }
  in
  (match
     Secure_boot.boot cpu None (config ~rules:[ rule ] ()) ~region:"flash"
       ~image_len:(String.length image.Secure_boot.code)
   with
  | Secure_boot.Booted -> ()
  | Secure_boot.Rejected_bad_image _ -> Alcotest.fail "boot should succeed");
  Alcotest.(check int) "rule installed" 1 (Ea_mpu.rule_count mpu);
  Alcotest.(check bool) "mpu locked" true (Ea_mpu.is_locked mpu)

let test_tampered_image_rejected () =
  let memory, mpu, cpu = make () in
  Secure_boot.install_image memory ~region:"flash" image;
  (* flip one byte of the installed image *)
  Memory.write_byte memory 0x1000 (Memory.read_byte memory 0x1000 lxor 1);
  (match
     Secure_boot.boot cpu None (config ()) ~region:"flash"
       ~image_len:(String.length image.Secure_boot.code)
   with
  | Secure_boot.Booted -> Alcotest.fail "tampered image must not boot"
  | Secure_boot.Rejected_bad_image { expected; measured } ->
    Alcotest.(check bool) "digests differ" true (expected <> measured));
  Alcotest.(check int) "no rules installed" 0 (Ea_mpu.rule_count mpu);
  Alcotest.(check bool) "mpu not locked" false (Ea_mpu.is_locked mpu)

let test_unlocked_boot () =
  let memory, mpu, cpu = make () in
  Secure_boot.install_image memory ~region:"flash" image;
  (match
     Secure_boot.boot cpu None (config ~lock:false ()) ~region:"flash"
       ~image_len:(String.length image.Secure_boot.code)
   with
  | Secure_boot.Booted -> ()
  | Secure_boot.Rejected_bad_image _ -> Alcotest.fail "boot should succeed");
  Alcotest.(check bool) "left unlocked" false (Ea_mpu.is_locked mpu)

let test_image_too_large () =
  let memory, _, _ = make () in
  Alcotest.check_raises "oversized"
    (Invalid_argument "Secure_boot.install_image: image larger than region") (fun () ->
      Secure_boot.install_image memory ~region:"flash"
        { Secure_boot.image_name = "big"; code = String.make 8192 'x' })

let test_measure_matches_digest () =
  let memory, _, _ = make () in
  Secure_boot.install_image memory ~region:"flash" image;
  Alcotest.(check string) "measurement = digest"
    (Ra_crypto.Hexutil.to_hex (Secure_boot.digest_image image))
    (Ra_crypto.Hexutil.to_hex
       (Secure_boot.measure_region memory ~region:"flash"
          ~image_len:(String.length image.Secure_boot.code)))

let tests =
  [
    Alcotest.test_case "good boot installs rules and locks" `Quick test_good_boot;
    Alcotest.test_case "tampered image rejected" `Quick test_tampered_image_rejected;
    Alcotest.test_case "boot without lockdown" `Quick test_unlocked_boot;
    Alcotest.test_case "image too large" `Quick test_image_too_large;
    Alcotest.test_case "measurement" `Quick test_measure_matches_digest;
  ]
