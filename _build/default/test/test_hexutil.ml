open Ra_crypto

let check = Alcotest.(check string)

let test_to_hex () =
  check "empty" "" (Hexutil.to_hex "");
  check "abc" "616263" (Hexutil.to_hex "abc");
  check "binary" "00ff10" (Hexutil.to_hex "\x00\xff\x10")

let test_of_hex () =
  check "round" "attest" (Hexutil.of_hex (Hexutil.to_hex "attest"));
  check "upper" "\xde\xad\xbe\xef" (Hexutil.of_hex "DEADBEEF");
  Alcotest.check_raises "odd length" (Invalid_argument "Hexutil.of_hex: odd length")
    (fun () -> ignore (Hexutil.of_hex "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hexutil.of_hex: bad digit")
    (fun () -> ignore (Hexutil.of_hex "zz"))

let test_xor () =
  check "self is zero" "\x00\x00" (Hexutil.xor "ab" "ab");
  check "identity" "ab" (Hexutil.xor "ab" "\x00\x00");
  Alcotest.check_raises "length mismatch" (Invalid_argument "Hexutil.xor") (fun () ->
      ignore (Hexutil.xor "a" "ab"))

let test_equal_ct () =
  Alcotest.(check bool) "equal" true (Hexutil.equal_ct "secret" "secret");
  Alcotest.(check bool) "differs" false (Hexutil.equal_ct "secret" "secreT");
  Alcotest.(check bool) "length" false (Hexutil.equal_ct "secret" "secrets");
  Alcotest.(check bool) "empty" true (Hexutil.equal_ct "" "")

let test_chunks () =
  Alcotest.(check (list string)) "exact" [ "ab"; "cd" ] (Hexutil.chunks 2 "abcd");
  Alcotest.(check (list string)) "ragged" [ "abc"; "d" ] (Hexutil.chunks 3 "abcd");
  Alcotest.(check (list string)) "empty" [] (Hexutil.chunks 4 "");
  Alcotest.check_raises "bad size" (Invalid_argument "Hexutil.chunks") (fun () ->
      ignore (Hexutil.chunks 0 "x"))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"of_hex/to_hex roundtrip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> Hexutil.of_hex (Hexutil.to_hex s) = s)

let qcheck_xor_involution =
  QCheck.Test.make ~name:"xor is an involution" ~count:200
    QCheck.(pair (string_of_size Gen.(return 16)) (string_of_size Gen.(return 16)))
    (fun (a, b) -> Hexutil.xor (Hexutil.xor a b) b = a)

let qcheck_chunks_concat =
  QCheck.Test.make ~name:"chunks concatenate back" ~count:200
    QCheck.(pair (int_range 1 17) (string_of_size Gen.(0 -- 100)))
    (fun (n, s) -> String.concat "" (Hexutil.chunks n s) = s)

let tests =
  [
    Alcotest.test_case "to_hex" `Quick test_to_hex;
    Alcotest.test_case "of_hex" `Quick test_of_hex;
    Alcotest.test_case "xor" `Quick test_xor;
    Alcotest.test_case "equal_ct" `Quick test_equal_ct;
    Alcotest.test_case "chunks" `Quick test_chunks;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_xor_involution;
    QCheck_alcotest.to_alcotest qcheck_chunks_concat;
  ]
