open Ra_core

let small mix =
  { Campaign.default_config with Campaign.devices = 3; days = 2; sweeps_per_day = 2; mix }

let test_quiet_campaign () =
  let r = Campaign.run (small Campaign.quiet) in
  Alcotest.(check int) "device-days" 6 r.Campaign.device_days;
  Alcotest.(check int) "sweeps" 12 r.Campaign.sweeps;
  Alcotest.(check int) "all trusted" 12 r.Campaign.trusted_verdicts;
  Alcotest.(check int) "no attacks" 0 (r.Campaign.floods + r.Campaign.replays);
  Alcotest.(check bool) "energy accounted" true (r.Campaign.total_energy_joules > 0.0)

let test_hostile_campaign_contained () =
  let r = Campaign.run (small Campaign.hostile) in
  (* with the protected spec: every flood request and replay rejected *)
  Alcotest.(check int) "no amplification" 0 r.Campaign.flood_requests_attested;
  Alcotest.(check int) "replays all rejected" r.Campaign.replays r.Campaign.replays_rejected;
  (* every infection present at sweep time is flagged *)
  Alcotest.(check int) "no missed infections" 0 r.Campaign.missed_infections;
  Alcotest.(check int) "flagged = planted" r.Campaign.infections
    r.Campaign.compromised_verdicts

let test_unprotected_campaign_amplifies () =
  let cfg =
    { (small { Campaign.p_flood = 1.0; p_replay = 0.0; p_infect = 0.0 }) with
      Campaign.spec = Architecture.unprotected }
  in
  let r = Campaign.run cfg in
  Alcotest.(check bool) "unauthenticated prover attests the flood" true
    (r.Campaign.flood_requests_attested > 0);
  (* the DoS shows up as extra active energy over the identical protected
     schedule (sleep power dominates both totals over two simulated days,
     so compare the difference, not the ratio) *)
  let protected_run =
    Campaign.run (small { Campaign.p_flood = 1.0; p_replay = 0.0; p_infect = 0.0 })
  in
  Alcotest.(check bool) "DoS costs extra energy" true
    (r.Campaign.total_energy_joules -. protected_run.Campaign.total_energy_joules > 0.01)

let test_deterministic () =
  let a = Campaign.run (small Campaign.hostile) in
  let b = Campaign.run (small Campaign.hostile) in
  Alcotest.(check bool) "same seed, same report" true (a = b);
  let c = Campaign.run { (small Campaign.hostile) with Campaign.seed = 99L } in
  Alcotest.(check bool) "different seed differs somewhere" true (a <> c)

let test_validation () =
  Alcotest.check_raises "bad devices"
    (Invalid_argument "Campaign.run: dimensions must be positive") (fun () ->
      ignore (Campaign.run { Campaign.default_config with Campaign.devices = 0 }));
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Campaign.run: probabilities must be in [0,1]") (fun () ->
      ignore
        (Campaign.run
           { Campaign.default_config with
             Campaign.mix = { Campaign.p_flood = 1.5; p_replay = 0.0; p_infect = 0.0 } }))

let tests =
  [
    Alcotest.test_case "quiet campaign" `Quick test_quiet_campaign;
    Alcotest.test_case "hostile campaign contained" `Quick test_hostile_campaign_contained;
    Alcotest.test_case "unprotected campaign amplifies" `Quick
      test_unprotected_campaign_amplifies;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
