(* ra_asm: assemble, list and run programs for the interpreted MCU core.

     ra_asm --list prog.s              assemble + print a listing
     ra_asm --run prog.s               run on a bare machine, print regs
     ra_asm --origin 0x1000 --list -   read source from stdin

   The bare machine: 64 KB flash at 0x000000 (the program), 64 KB RAM at
   0x100000, stack at the top of RAM, no protection rules. *)

module Memory = Ra_mcu.Memory
module Region = Ra_mcu.Region
module Ea_mpu = Ra_mcu.Ea_mpu
module Cpu = Ra_mcu.Cpu
open Ra_isa

let read_source path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

let run_program program =
  let memory =
    Memory.create
      [
        Region.make ~name:"flash" ~base:0x000000 ~size:0x10000 ~kind:Region.Flash;
        Region.make ~name:"ram" ~base:0x100000 ~size:0x10000 ~kind:Region.Ram;
      ]
  in
  let cpu = Cpu.create memory (Ea_mpu.create ~capacity:0) ~clock_hz:24_000_000 in
  Asm.load memory program;
  let core = Core.create cpu ~pc:program.Asm.origin ~sp:0x110000 in
  let state, steps = Core.run core in
  Format.printf "%a after %d instruction(s), %Ld cycle(s)@." Core.pp_state state steps
    (Cpu.cycles cpu);
  for i = 0 to 15 do
    if Core.reg core i <> 0 then Format.printf "  r%-2d = 0x%x (%d)@." i (Core.reg core i) (Core.reg core i)
  done;
  match state with Core.Halted -> 0 | Core.Running | Core.Trapped _ -> 1

let () =
  let origin = ref 0 in
  let mode = ref `List in
  let path = ref None in
  let rec parse = function
    | [] -> ()
    | "--list" :: rest ->
      mode := `List;
      parse rest
    | "--run" :: rest ->
      mode := `Run;
      parse rest
    | "--origin" :: v :: rest ->
      origin := int_of_string v;
      parse rest
    | p :: rest ->
      path := Some p;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !path with
  | None ->
    prerr_endline "usage: ra_asm [--origin N] (--list | --run) <file.s | ->";
    exit 2
  | Some p ->
    (match Asm.assemble ~origin:!origin (read_source p) with
    | Error e ->
      Format.eprintf "error: %a@." Asm.pp_error e;
      exit 1
    | Ok program ->
      (match !mode with
      | `List ->
        print_string (Asm.listing program);
        Printf.printf "; %d bytes at 0x%06x\n" (Asm.size_bytes program) program.Asm.origin
      | `Run -> exit (run_program program)))
