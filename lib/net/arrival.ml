module Prng = Ra_crypto.Prng

type process =
  | Poisson of { rate : float }
  | Bursty of {
      rate : float;
      burst_factor : float;
      p_quiet_to_burst : float;
      p_burst_to_quiet : float;
    }

(* bursts hold ~10% of arrivals: p_qb = p_bq / 9 keeps the stationary
   per-arrival burst share at 1/10 for any mean burst length *)
let bursty ?(burst_factor = 8.0) ?(mean_burst = 16.0) ~rate () =
  if rate <= 0.0 then invalid_arg "Arrival.bursty: rate must be > 0";
  if burst_factor < 1.0 then invalid_arg "Arrival.bursty: burst_factor must be >= 1";
  if mean_burst < 1.0 then invalid_arg "Arrival.bursty: mean_burst must be >= 1";
  let p_burst_to_quiet = 1.0 /. mean_burst in
  Bursty
    { rate; burst_factor; p_quiet_to_burst = p_burst_to_quiet /. 9.0; p_burst_to_quiet }

type state = Quiet | Burst

type t = {
  prng : Prng.t;
  quiet_rate : float;
  burst_rate : float;
  p_qb : float; (* 0 for Poisson: the chain never leaves Quiet *)
  p_bq : float;
  mutable state : state;
  mutable next_at : float;
}

let check_prob name p =
  if not (p > 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Arrival.create: %s must be in (0, 1]" name)

(* exponential gap at [rate]; u=0 is skipped so the gap is strictly
   positive and arrival instants never collide *)
let rec gap t ~rate =
  let u = Prng.float t.prng 1.0 in
  if u = 0.0 then gap t ~rate else -.log (1.0 -. u) /. rate

let current_rate t = match t.state with Quiet -> t.quiet_rate | Burst -> t.burst_rate

let step t =
  (match t.state with
  | Quiet -> if t.p_qb > 0.0 && Prng.float t.prng 1.0 < t.p_qb then t.state <- Burst
  | Burst -> if Prng.float t.prng 1.0 < t.p_bq then t.state <- Quiet);
  gap t ~rate:(current_rate t)

let create ?(start = 0.0) ~seed process =
  let quiet_rate, burst_rate, p_qb, p_bq =
    match process with
    | Poisson { rate } ->
      if rate <= 0.0 then invalid_arg "Arrival.create: rate must be > 0";
      (rate, rate, 0.0, 1.0)
    | Bursty { rate; burst_factor; p_quiet_to_burst; p_burst_to_quiet } ->
      if rate <= 0.0 then invalid_arg "Arrival.create: rate must be > 0";
      if burst_factor < 1.0 then
        invalid_arg "Arrival.create: burst_factor must be >= 1";
      check_prob "p_quiet_to_burst" p_quiet_to_burst;
      check_prob "p_burst_to_quiet" p_burst_to_quiet;
      (* time-average rate q·(pi_q + pi_b/f)⁻¹... inverted: pick the quiet
         rate so the stationary time-average equals [rate] *)
      let pi_b = p_quiet_to_burst /. (p_quiet_to_burst +. p_burst_to_quiet) in
      let q = rate *. (1.0 -. pi_b +. (pi_b /. burst_factor)) in
      (q, q *. burst_factor, p_quiet_to_burst, p_burst_to_quiet)
  in
  let t =
    {
      prng = Prng.create seed;
      quiet_rate;
      burst_rate;
      p_qb;
      p_bq;
      state = Quiet;
      next_at = start;
    }
  in
  t.next_at <- start +. step t;
  t

let peek t = t.next_at

let next t =
  let at = t.next_at in
  t.next_at <- at +. step t;
  at
