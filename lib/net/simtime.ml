type t = { mutable now : float }

let create ?(start = 0.0) () = { now = start }
let now t = t.now

let advance_by t dt =
  if dt < 0.0 then invalid_arg "Simtime.advance_by: negative delta";
  t.now <- t.now +. dt

let advance_to t target =
  if target < t.now then invalid_arg "Simtime.advance_to: target in the past";
  t.now <- target

type deadline = float

let deadline t ~after =
  if after < 0.0 then invalid_arg "Simtime.deadline: negative delay";
  t.now +. after

let expired t d = t.now >= d

let remaining t d = Float.max 0.0 (d -. t.now)
