(** A Dolev-Yao network: everything either party sends lands in the
    adversary's hands; nothing reaches a receiver unless someone calls
    {!deliver}. A benign network is the adversary that forwards promptly;
    the paper's `Adv_ext` drops, delays, reorders, replays (the full
    transcript stays available forever) and injects its own messages.

    On top of the adversary, an optional {!Impairment} model chaos-tests
    the {e benign} forwarding path ({!forward_next}): seeded loss,
    duplication, reordering, corruption and delay, with
    [ra_channel_impairments_total] counters per kind. With no impairment
    installed, behaviour is byte-identical to the unimpaired channel.

    ['msg] is the wire message type (defined in the attestation core). *)

type side = Verifier_side | Prover_side

type 'msg sent = { sent_at : float; src : side; payload : 'msg }

type 'msg t

val create : Simtime.t -> Trace.t -> 'msg t

val time : 'msg t -> Simtime.t
val trace : 'msg t -> Trace.t

(** {2 Endpoints}

    Receivers are attached as explicit handles. The newest attached
    handle on a side receives deliveries; detaching it restores the
    previously attached one (attachments nest like a stack), which fixes
    the old setter API's silent-replacement bug: installing a receiver no
    longer destroys the previous one with no way back. *)

module Endpoint : sig
  type 'msg handle

  val attach : 'msg t -> side -> ('msg -> unit) -> 'msg handle
  (** Attach a receiver; it shadows (does not destroy) any receiver
      already attached on that side. *)

  val detach : 'msg handle -> unit
  (** Detach; the most recently attached still-active receiver on that
      side (if any) resumes receiving. Idempotent.

      Re-entrancy contract: [attach] and [detach] may be called from
      inside a receive callback — on the running handle itself or on a
      sibling. The frame being delivered is affected only if the handle
      {e receiving it} detaches before the callback is invoked (it then
      falls through to the handler below); it is never delivered twice,
      and a handle attached mid-delivery sees only subsequent frames. *)

  val is_attached : 'msg handle -> bool
  val side : 'msg handle -> side
end

val send : 'msg t -> src:side -> 'msg -> unit
(** Put a message on the wire: recorded in the transcript, given to
    nobody. Delivery is a separate, adversary-controlled step. *)

val transcript : 'msg t -> 'msg sent list
(** Everything ever sent, in order — the eavesdropper's notebook. *)

val transcript_length : 'msg t -> int
(** Entries in the transcript, O(1). A [(transcript_length before,
    transcript_length after)] pair brackets a window of wire activity —
    the forensic capture layer records these to digest exactly one
    round's frames without copying the whole transcript. *)

val transcript_from : 'msg t -> pos:int -> 'msg sent list
(** The transcript suffix starting at entry [pos] (clamped to the valid
    range), in order — the window companion of {!transcript_length}. *)

val undelivered : 'msg t -> 'msg sent list
(** Sent messages not yet delivered (nor explicitly dropped). *)

val deliver : 'msg t -> dst:side -> 'msg -> unit
(** Hand a message (genuine, replayed or forged) to a receiver. No-op
    with a trace record if the side has no receiver installed. Never
    impaired: adversarial delivery is the adversary's own choice. *)

val forward_next : 'msg t -> dst:side -> bool
(** Convenience for benign runs: deliver the oldest undelivered message
    that was sent by the opposite side; [false] if none pending. When an
    impairment model is installed the delivery may be dropped, duplicated,
    reordered behind the next pending message, corrupted (via the mangle
    hook) or delayed (simulated time advances); [true] still means one
    pending message was consumed or re-queued. *)

val drop_next : 'msg t -> src:side -> bool
(** Discard the oldest undelivered message from [src]. *)

(** {2 Impairment} *)

val set_impairment :
  'msg t -> ?mangle:('msg -> salt:int -> 'msg) -> Impairment.t option -> unit
(** Install (or, with [None], remove) the impairment model consulted by
    {!forward_next}. [mangle] realizes the [Corrupt] action on the
    message representation; when omitted, corrupt decisions drop the
    message instead (the receiver cannot be handed a frame nobody can
    flip a byte of). *)

val impairment : 'msg t -> Impairment.t option

val set_defer : 'msg t -> (float -> (unit -> unit) -> unit) option -> unit
(** Install (or, with [None], remove) a deferral hook for [Delay]
    impairments. Without a hook, a delayed delivery advances the
    channel's {!Simtime.t} inline and delivers immediately — correct
    when the session owns its own timeline. With a hook installed (by an
    event scheduler), the channel instead calls [defer extra deliver]:
    the scheduler enqueues [deliver] at [now + extra] and becomes
    responsible for advancing the clock before firing it. The hook must
    eventually run the thunk or the message is lost. *)

val mangle_string : string -> salt:int -> string
(** XOR one salt-chosen byte with a salt-derived non-zero mask — the
    [mangle] hook for [string]-framed channels. Empty strings pass
    through unchanged. *)

val pp_side : Format.formatter -> side -> unit
