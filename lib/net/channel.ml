type side = Verifier_side | Prover_side

type 'msg sent = { sent_at : float; src : side; payload : 'msg }

type 'msg t = {
  time : Simtime.t;
  trace : Trace.t;
  mutable transcript : 'msg sent list; (* newest first *)
  mutable pending : 'msg sent list; (* newest first *)
  seen : ('msg, unit) Hashtbl.t; (* every payload ever sent *)
  mutable rx_verifier : ('msg -> unit) option;
  mutable rx_prover : ('msg -> unit) option;
}

(* Handles are created once at module init; per-event cost is one
   atomic add. *)
module M = struct
  open Ra_obs.Registry

  let sent_verifier = Counter.get ~labels:[ ("side", "verifier") ] "ra_channel_sent_total"
  let sent_prover = Counter.get ~labels:[ ("side", "prover") ] "ra_channel_sent_total"

  let delivered kind =
    Counter.get ~labels:[ ("kind", kind) ] "ra_channel_delivered_total"

  let delivered_forwarded = delivered "forwarded"
  let delivered_injected = delivered "injected"
  let delivered_replayed = delivered "replayed"
  let dropped = Counter.get "ra_channel_dropped_total"
  let lost = Counter.get "ra_channel_lost_total"
end

let pp_side fmt = function
  | Verifier_side -> Format.pp_print_string fmt "verifier"
  | Prover_side -> Format.pp_print_string fmt "prover"

let create time trace =
  {
    time;
    trace;
    transcript = [];
    pending = [];
    seen = Hashtbl.create 64;
    rx_verifier = None;
    rx_prover = None;
  }

let time t = t.time
let trace t = t.trace

let on_receive t side f =
  match side with
  | Verifier_side -> t.rx_verifier <- Some f
  | Prover_side -> t.rx_prover <- Some f

let send t ~src payload =
  let entry = { sent_at = Simtime.now t.time; src; payload } in
  t.transcript <- entry :: t.transcript;
  t.pending <- entry :: t.pending;
  if not (Hashtbl.mem t.seen payload) then Hashtbl.replace t.seen payload ();
  Ra_obs.Registry.Counter.inc
    (match src with Verifier_side -> M.sent_verifier | Prover_side -> M.sent_prover);
  Trace.recordf t.trace "net: %a sent a message" pp_side src

let transcript t = List.rev t.transcript
let undelivered t = List.rev t.pending

type delivery_kind = Forwarded | Adversarial

let deliver_kind t ~kind ~dst payload =
  let rx = match dst with Verifier_side -> t.rx_verifier | Prover_side -> t.rx_prover in
  match rx with
  | None ->
    Ra_obs.Registry.Counter.inc M.lost;
    Trace.recordf t.trace "net: delivery to %a lost (no receiver)" pp_side dst
  | Some f ->
    let counter, label =
      match kind with
      | Forwarded -> (M.delivered_forwarded, "forwarded")
      | Adversarial ->
        if Hashtbl.mem t.seen payload then (M.delivered_replayed, "replayed")
        else (M.delivered_injected, "injected")
    in
    Ra_obs.Registry.Counter.inc counter;
    Trace.recordf t.trace "net: delivered to %a" pp_side dst;
    Trace.with_span t.trace ~labels:[ ("kind", label) ] "channel.deliver" (fun () ->
        f payload)

let deliver t ~dst payload = deliver_kind t ~kind:Adversarial ~dst payload

let take_oldest t ~src =
  match List.rev t.pending with
  | [] -> None
  | oldest_first ->
    let rec split acc = function
      | [] -> None
      | e :: rest when e.src = src -> Some (e, List.rev_append acc rest)
      | e :: rest -> split (e :: acc) rest
    in
    (match split [] oldest_first with
    | None -> None
    | Some (e, remaining_oldest_first) ->
      t.pending <- List.rev remaining_oldest_first;
      Some e)

let forward_next t ~dst =
  let src = match dst with Verifier_side -> Prover_side | Prover_side -> Verifier_side in
  match take_oldest t ~src with
  | None -> false
  | Some e ->
    deliver_kind t ~kind:Forwarded ~dst e.payload;
    true

let drop_next t ~src =
  match take_oldest t ~src with
  | None -> false
  | Some _ ->
    Ra_obs.Registry.Counter.inc M.dropped;
    Trace.recordf t.trace "net: adversary dropped a message from %a" pp_side src;
    true
