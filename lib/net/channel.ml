type side = Verifier_side | Prover_side

type 'msg sent = { sent_at : float; src : side; payload : 'msg }

(* Growable buffers instead of newest-first lists: campaign runs append
   hundreds of thousands of entries, and List-based appends made every
   transcript/pending access an O(n) reverse (O(n^2) across a run). The
   transcript is append-only; pending entries are consumed possibly out
   of order (take-oldest-from-src skips the other side's messages), so
   its cells carry a [taken] flag and a head index skips the consumed
   prefix. *)
type 'msg cell = { entry : 'msg sent; mutable taken : bool }

type 'msg handle = {
  h_side : side;
  h_fn : 'msg -> unit;
  mutable h_active : bool;
  h_owner : 'msg t;
}

and 'msg t = {
  time : Simtime.t;
  trace : Trace.t;
  mutable transcript : 'msg sent array; (* first t_len slots are live *)
  mutable t_len : int;
  mutable pending : 'msg cell array; (* live window is [p_head, p_len) *)
  mutable p_len : int;
  mutable p_head : int;
  seen : ('msg, unit) Hashtbl.t; (* every payload ever sent *)
  mutable rx_verifier : 'msg handle list; (* newest-attached first *)
  mutable rx_prover : 'msg handle list;
  mutable impairment : Impairment.t option;
  mutable mangle : ('msg -> salt:int -> 'msg) option;
  mutable defer : (float -> (unit -> unit) -> unit) option;
}

(* Handles are created once at module init; per-event cost is one
   atomic add. *)
module M = struct
  open Ra_obs.Registry

  let sent_verifier = Counter.get ~labels:[ ("side", "verifier") ] "ra_channel_sent_total"
  let sent_prover = Counter.get ~labels:[ ("side", "prover") ] "ra_channel_sent_total"

  let delivered kind =
    Counter.get ~labels:[ ("kind", kind) ] "ra_channel_delivered_total"

  let delivered_forwarded = delivered "forwarded"
  let delivered_injected = delivered "injected"
  let delivered_replayed = delivered "replayed"
  let dropped = Counter.get "ra_channel_dropped_total"
  let lost = Counter.get "ra_channel_lost_total"
end

let pp_side fmt = function
  | Verifier_side -> Format.pp_print_string fmt "verifier"
  | Prover_side -> Format.pp_print_string fmt "prover"

let side_label = function Verifier_side -> "verifier" | Prover_side -> "prover"

let create time trace =
  {
    time;
    trace;
    transcript = [||];
    t_len = 0;
    pending = [||];
    p_len = 0;
    p_head = 0;
    seen = Hashtbl.create 64;
    rx_verifier = [];
    rx_prover = [];
    impairment = None;
    mangle = None;
    defer = None;
  }

let time t = t.time
let trace t = t.trace

(* ---- endpoints ---- *)

module Endpoint = struct
  type nonrec 'msg handle = 'msg handle

  let stack t side =
    match side with Verifier_side -> t.rx_verifier | Prover_side -> t.rx_prover

  let set_stack t side v =
    match side with Verifier_side -> t.rx_verifier <- v | Prover_side -> t.rx_prover <- v

  let attach t side f =
    let h = { h_side = side; h_fn = f; h_active = true; h_owner = t } in
    set_stack t side (h :: stack t side);
    h

  let detach h =
    if h.h_active then begin
      h.h_active <- false;
      let t = h.h_owner in
      set_stack t h.h_side (List.filter (fun h' -> h' != h) (stack t h.h_side))
    end

  let is_attached h = h.h_active
  let side h = h.h_side
end

(* Dispatch resolves the newest {e still-active} handle, and re-checks
   activity at invocation time. Handlers detach/attach themselves and
   siblings from inside receive callbacks (secure-session teardown does
   exactly that), so correctness must not depend on [detach]'s list
   surgery alone: skipping on [h_active] keeps a half-detached handle
   from swallowing a frame, and the invocation-time re-resolve hands the
   frame to the handler below instead of a dead closure. *)
let rec first_active = function
  | [] -> None
  | h :: rest -> if h.h_active then Some h else first_active rest

(* ---- growable buffers ---- *)

let push_transcript t entry =
  if t.t_len = Array.length t.transcript then begin
    let grown = Array.make (max 16 (2 * t.t_len)) entry in
    Array.blit t.transcript 0 grown 0 t.t_len;
    t.transcript <- grown
  end;
  t.transcript.(t.t_len) <- entry;
  t.t_len <- t.t_len + 1

let push_pending t entry =
  let cell = { entry; taken = false } in
  if t.p_len = Array.length t.pending then begin
    (* compact the consumed prefix before growing *)
    if t.p_head > 0 then begin
      Array.blit t.pending t.p_head t.pending 0 (t.p_len - t.p_head);
      t.p_len <- t.p_len - t.p_head;
      t.p_head <- 0
    end;
    if t.p_len = Array.length t.pending then begin
      let grown = Array.make (max 16 (2 * t.p_len)) cell in
      Array.blit t.pending 0 grown 0 t.p_len;
      t.pending <- grown
    end
  end;
  t.pending.(t.p_len) <- cell;
  t.p_len <- t.p_len + 1

let send t ~src payload =
  let entry = { sent_at = Simtime.now t.time; src; payload } in
  push_transcript t entry;
  push_pending t entry;
  if not (Hashtbl.mem t.seen payload) then Hashtbl.replace t.seen payload ();
  Ra_obs.Registry.Counter.inc
    (match src with Verifier_side -> M.sent_verifier | Prover_side -> M.sent_prover);
  Trace.recordf t.trace "net: %a sent a message" pp_side src;
  Trace.causal_instant t.trace ~cat:"net" ~labels:[ ("src", side_label src) ] "net.tx"

let transcript t = List.init t.t_len (fun i -> t.transcript.(i))

let transcript_length t = t.t_len

let transcript_from t ~pos =
  let pos = max 0 (min pos t.t_len) in
  List.init (t.t_len - pos) (fun i -> t.transcript.(pos + i))

let undelivered t =
  let out = ref [] in
  for i = t.p_len - 1 downto t.p_head do
    let cell = t.pending.(i) in
    if not cell.taken then out := cell.entry :: !out
  done;
  !out

type delivery_kind = Forwarded | Adversarial

let deliver_kind t ~kind ~dst payload =
  match first_active (Endpoint.stack t dst) with
  | None ->
    Ra_obs.Registry.Counter.inc M.lost;
    Trace.recordf t.trace "net: delivery to %a lost (no receiver)" pp_side dst;
    Trace.causal_instant t.trace ~cat:"net"
      ~labels:[ ("dst", side_label dst) ]
      "net.lost"
  | Some h ->
    let counter, label =
      match kind with
      | Forwarded -> (M.delivered_forwarded, "forwarded")
      | Adversarial ->
        if Hashtbl.mem t.seen payload then (M.delivered_replayed, "replayed")
        else (M.delivered_injected, "injected")
    in
    Ra_obs.Registry.Counter.inc counter;
    Trace.recordf t.trace "net: delivered to %a" pp_side dst;
    Trace.causal_span t.trace ~cat:"net"
      ~labels:[ ("kind", label); ("dst", side_label dst) ]
      "net.deliver"
      (fun () ->
        Trace.with_span t.trace ~labels:[ ("kind", label) ] "channel.deliver"
          (fun () ->
            let target =
              if h.h_active then Some h else first_active (Endpoint.stack t dst)
            in
            match target with
            | Some h -> h.h_fn payload
            | None ->
              Trace.recordf t.trace
                "net: receiver on %a detached before invocation; frame lost"
                pp_side dst))

let deliver t ~dst payload = deliver_kind t ~kind:Adversarial ~dst payload

let skip_taken t =
  while t.p_head < t.p_len && t.pending.(t.p_head).taken do
    t.p_head <- t.p_head + 1
  done;
  if t.p_head = t.p_len then begin
    (* everything consumed: recycle the window *)
    t.p_head <- 0;
    t.p_len <- 0
  end

let take_oldest t ~src =
  skip_taken t;
  let rec scan i =
    if i >= t.p_len then None
    else begin
      let cell = t.pending.(i) in
      if (not cell.taken) && cell.entry.src = src then begin
        cell.taken <- true;
        skip_taken t;
        Some cell.entry
      end
      else scan (i + 1)
    end
  in
  scan t.p_head

let has_pending t ~src =
  let rec scan i =
    if i >= t.p_len then false
    else begin
      let cell = t.pending.(i) in
      ((not cell.taken) && cell.entry.src = src) || scan (i + 1)
    end
  in
  scan t.p_head

(* ---- impairment ---- *)

let set_impairment t ?mangle imp =
  t.impairment <- imp;
  t.mangle <- mangle

let impairment t = t.impairment
let set_defer t f = t.defer <- f

let mangle_string s ~salt =
  let len = String.length s in
  if len = 0 then s
  else begin
    let i = salt mod len in
    let mask = 1 + ((salt lsr 8) mod 255) in
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
    Bytes.unsafe_to_string b
  end

let forward_impaired t imp ~dst entry =
  let dir =
    match dst with
    | Prover_side -> Impairment.To_prover
    | Verifier_side -> Impairment.To_verifier
  in
  let src = entry.src in
  let impaired ?(labels = []) what event =
    Trace.recordf t.trace "net: impairment %s a message to %a" what pp_side dst;
    Trace.causal_instant t.trace ~cat:"impairment"
      ~labels:(("dst", side_label dst) :: labels)
      event
  in
  match Impairment.decide imp ~dir with
  | Impairment.Pass -> deliver_kind t ~kind:Forwarded ~dst entry.payload
  | Impairment.Drop -> impaired "dropped" "net.drop"
  | Impairment.Duplicate ->
    impaired "duplicated" "net.duplicate";
    deliver_kind t ~kind:Forwarded ~dst entry.payload;
    deliver_kind t ~kind:Forwarded ~dst entry.payload
  | Impairment.Reorder ->
    if has_pending t ~src then begin
      (* overtaken by the next message: back of the queue it goes *)
      impaired "reordered" "net.reorder";
      push_pending t entry
    end
    else deliver_kind t ~kind:Forwarded ~dst entry.payload
  | Impairment.Corrupt { salt } ->
    (match t.mangle with
    | Some mangle ->
      impaired "corrupted" "net.corrupt";
      deliver_kind t ~kind:Forwarded ~dst (mangle entry.payload ~salt)
    | None -> impaired "dropped (corrupt, no mangler)" "net.corrupt_drop")
  | Impairment.Delay extra ->
    impaired ~labels:[ ("delay_s", Printf.sprintf "%.6f" extra) ] "delayed"
      "net.delay";
    (match t.defer with
    | Some defer ->
      (* a scheduler owns the timeline: delivery becomes a future event,
         and the clock advances when that event fires, not here *)
      defer extra (fun () -> deliver_kind t ~kind:Forwarded ~dst entry.payload)
    | None ->
      Simtime.advance_by t.time extra;
      deliver_kind t ~kind:Forwarded ~dst entry.payload)

let forward_next t ~dst =
  let src = match dst with Verifier_side -> Prover_side | Prover_side -> Verifier_side in
  match take_oldest t ~src with
  | None -> false
  | Some e ->
    (match t.impairment with
    | None -> deliver_kind t ~kind:Forwarded ~dst e.payload
    | Some imp -> forward_impaired t imp ~dst e);
    true

let drop_next t ~src =
  match take_oldest t ~src with
  | None -> false
  | Some _ ->
    Ra_obs.Registry.Counter.inc M.dropped;
    Trace.recordf t.trace "net: adversary dropped a message from %a" pp_side src;
    Trace.causal_instant t.trace ~cat:"net"
      ~labels:[ ("src", side_label src) ]
      "net.adv_drop";
    true
