type entry = { at : float; label : string }

type t = {
  time : Simtime.t;
  mutable entries : entry list; (* newest first *)
  spans : Ra_obs.Span.t;
  mutable tracer : Ra_obs.Trace.t option; (* causal flight recorder, off by default *)
}

let create time =
  let spans = Ra_obs.Span.create ~clock:(fun () -> Simtime.now time) () in
  let t = { time; entries = []; spans; tracer = None } in
  Ra_obs.Span.on_finish spans (fun f ->
      t.entries <-
        {
          at = f.Ra_obs.Span.f_stop;
          label =
            Printf.sprintf "span %s: %.3f ms" f.Ra_obs.Span.f_name
              (Ra_obs.Span.duration_ms f);
        }
        :: t.entries);
  t

let record t label = t.entries <- { at = Simtime.now t.time; label } :: t.entries

let recordf t fmt = Format.kasprintf (record t) fmt

let entries t = List.rev t.entries

let spans t = t.spans

let with_span t ?labels name f = Ra_obs.Span.with_span t.spans ?labels name f

(* ---- Causal tracing hooks --------------------------------------------- *)

let set_tracer t tracer = t.tracer <- tracer
let tracer t = t.tracer

(* The disabled path is a single option match — cheap enough to leave the
   calls unconditionally in channel/session hot paths. *)
let causal_instant t ?labels ~cat name =
  match t.tracer with
  | None -> ()
  | Some tr -> Ra_obs.Trace.instant tr ~cat ?labels name

let causal_span t ?labels ~cat name f =
  match t.tracer with
  | None -> f ()
  | Some tr -> Ra_obs.Trace.with_span tr ~cat ?labels name f

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else begin
    (* allocation-free: compare characters in place instead of carving a
       [String.sub] out of the haystack at every candidate offset *)
    let rec matches_at i j = j >= nl || (haystack.[i + j] = needle.[j] && matches_at i (j + 1)) in
    let rec loop i = i + nl <= hl && (matches_at i 0 || loop (i + 1)) in
    loop 0
  end

let find t ~substring =
  List.filter (fun e -> contains_substring ~needle:substring e.label) (entries t)

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "[%10.4f] %s@." e.at e.label) (entries t)
