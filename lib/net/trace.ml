type entry = { at : float; label : string }

type t = {
  time : Simtime.t;
  mutable entries : entry list; (* newest first *)
  spans : Ra_obs.Span.t;
}

let create time =
  let spans = Ra_obs.Span.create ~clock:(fun () -> Simtime.now time) () in
  let t = { time; entries = []; spans } in
  Ra_obs.Span.on_finish spans (fun f ->
      t.entries <-
        {
          at = f.Ra_obs.Span.f_stop;
          label =
            Printf.sprintf "span %s: %.3f ms" f.Ra_obs.Span.f_name
              (Ra_obs.Span.duration_ms f);
        }
        :: t.entries);
  t

let record t label = t.entries <- { at = Simtime.now t.time; label } :: t.entries

let recordf t fmt = Format.kasprintf (record t) fmt

let entries t = List.rev t.entries

let spans t = t.spans

let with_span t ?labels name f = Ra_obs.Span.with_span t.spans ?labels name f

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else begin
    (* allocation-free: compare characters in place instead of carving a
       [String.sub] out of the haystack at every candidate offset *)
    let rec matches_at i j = j >= nl || (haystack.[i + j] = needle.[j] && matches_at i (j + 1)) in
    let rec loop i = i + nl <= hl && (matches_at i 0 || loop (i + 1)) in
    loop 0
  end

let find t ~substring =
  List.filter (fun e -> contains_substring ~needle:substring e.label) (entries t)

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "[%10.4f] %s@." e.at e.label) (entries t)
