(** Simulated wall-clock time shared by the verifier, the network and the
    experiment harness. Monotone, in seconds. The prover's own notion of
    time comes from its (attackable) on-device clock, *not* from here —
    keeping the two separate is exactly what makes the paper's clock
    attacks expressible. *)

type t

val create : ?start:float -> unit -> t
val now : t -> float

val advance_by : t -> float -> unit
(** @raise Invalid_argument on negative delta. *)

val advance_to : t -> float -> unit
(** @raise Invalid_argument if the target is in the past. *)

(** {2 Timers}

    A deadline is an absolute instant on this clock; the retry engine
    arms one per attempt and sleeps the remaining simulated time when the
    wire goes quiet. *)

type deadline = private float

val deadline : t -> after:float -> deadline
(** The instant [after] seconds from now.
    @raise Invalid_argument on a negative delay. *)

val expired : t -> deadline -> bool

val remaining : t -> deadline -> float
(** Seconds until the deadline; 0 once it has passed. *)
