(** Seeded network-impairment model: the chaos the paper's deployment
    reality implies but the Dolev-Yao {!Channel} alone does not exercise.
    Adversarial delivery ({!Channel.deliver}) stays untouched — this
    module impairs only the {e benign} forwarding path
    ({!Channel.forward_next}), so a protocol stack can be measured
    against loss, duplication, reordering, corruption and delay without
    giving the adversary any new powers.

    Every decision is drawn from a SplitMix64 stream derived from the
    creation seed, one independent stream per direction, so a schedule is
    fully deterministic and replayable: the same seed and the same
    sequence of {!decide} calls produce the same actions. *)

type loss_model =
  | Iid of float  (** independent loss with the given probability *)
  | Gilbert_elliott of {
      p_good_to_bad : float;  (** transition probability Good -> Bad *)
      p_bad_to_good : float;  (** transition probability Bad -> Good *)
      loss_good : float;  (** loss probability while in Good *)
      loss_bad : float;  (** loss probability while in Bad (burst) *)
    }
      (** Two-state Markov burst-loss channel: long stretches of
          near-perfect delivery punctuated by loss bursts, with the same
          long-run loss rate an [Iid] model would smear uniformly. *)

type profile = {
  loss : loss_model;
  duplicate : float;  (** probability a delivery happens twice *)
  reorder : float;  (** probability a message is overtaken by the next *)
  corrupt : float;  (** probability of a flipped byte in the frame *)
  delay : float;  (** probability of extra latency before delivery *)
  delay_s : float;  (** maximum extra latency, uniform in [0, delay_s) *)
}

val pristine : profile
(** No impairment at all (every decision is [Pass]). *)

val lossy : float -> profile
(** Independent loss at the given rate, nothing else.
    @raise Invalid_argument if the rate is outside [0, 1]. *)

val bursty : float -> profile
(** Gilbert–Elliott bursts tuned to the given long-run loss rate:
    lossless Good state, 50%-loss Bad state, mean burst length 5.
    @raise Invalid_argument if the rate is outside [0, 0.5]. *)

val noisy : profile
(** A little of everything: 10% iid loss, 5% duplicate, 5% reorder,
    2% corruption, 10% chance of up to 250 ms extra delay. *)

type direction = To_prover | To_verifier

type action =
  | Pass
  | Drop
  | Duplicate
  | Reorder
  | Corrupt of { salt : int }
      (** [salt] seeds the caller's mangling function (the channel is
          polymorphic in its message type, so the byte-flip itself lives
          with whoever knows the representation). *)
  | Delay of float  (** extra seconds of latency before delivery *)

type t

val derive_seed : root:int64 -> index:int -> int64
(** The impairment seed for position [index] under root seed [root]: a
    pure function of the pair (one SplitMix64 step at offset [index]),
    {e not} a draw from a shared sequential stream. The fleet engines
    seed member [i]'s wire with [derive_seed ~root ~index:i], so the
    schedule member [i] experiences is identical however the member
    range is partitioned — one domain, many shards, or a streaming sweep
    that never materialises the whole fleet.
    @raise Invalid_argument on a negative index. *)

val create : ?to_prover:profile -> ?to_verifier:profile -> seed:int64 -> unit -> t
(** Both directions default to {!pristine}; probabilities are validated.
    @raise Invalid_argument on a probability outside [0, 1] or a
    negative [delay_s]. *)

val profile : t -> direction -> profile

val decide : t -> dir:direction -> action
(** Draw the next action for one message in the given direction,
    advancing that direction's deterministic stream (and its
    Gilbert–Elliott state, if any). Each non-[Pass] action increments
    [ra_channel_impairments_total{kind=...,dir=...}]. *)

val action_label : action -> string
(** ["pass"], ["drop"], ["duplicate"], ["reorder"], ["corrupt"],
    ["delay"]. *)

val direction_label : direction -> string
(** ["to_prover"] / ["to_verifier"]. *)

val pp_action : Format.formatter -> action -> unit
