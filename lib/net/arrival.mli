(** Open-loop arrival processes for load generation.

    The fleet engines so far drive the world sweep-at-a-time: every
    device attests once per staggered slot. A verifier-as-a-service
    instead sees an {e open-loop} stream — reports arrive whether or not
    the server has finished the previous one. This module produces those
    arrival instants deterministically from a seed:

    - [Poisson]: memoryless arrivals at a fixed rate (exponential
      inter-arrival gaps), the classic open-loop benchmark load.
    - [Bursty]: a Gilbert–Elliott-modulated Poisson process — the same
      two-state Markov chain {!Impairment} uses for burst loss, here
      switching the instantaneous rate between a quiet Good state and a
      [burst_factor]-times-hotter Bad state. Long-run average rate stays
      [rate]; short-run the server sees flash crowds.

    Streams draw from a private SplitMix64 generator, so a process is
    fully determined by [(process, seed, start)] and independent of any
    other stream — the positional-seed discipline the sharded engines
    rely on. *)

type process =
  | Poisson of { rate : float }  (** arrivals per second, > 0 *)
  | Bursty of {
      rate : float;  (** long-run average arrivals per second, > 0 *)
      burst_factor : float;  (** Bad-state rate multiplier, >= 1 *)
      p_quiet_to_burst : float;  (** per-arrival Good -> Bad probability *)
      p_burst_to_quiet : float;  (** per-arrival Bad -> Good probability *)
    }

val bursty : ?burst_factor:float -> ?mean_burst:float -> rate:float -> unit -> process
(** A [Bursty] process tuned like {!Impairment.bursty}: bursts of mean
    length [mean_burst] arrivals (default 16) at [burst_factor] (default
    8) times the quiet rate, entered rarely enough that the long-run
    average stays [rate].
    @raise Invalid_argument on a non-positive rate or factor < 1. *)

type t

val create : ?start:float -> seed:int64 -> process -> t
(** A fresh stream beginning at [start] (default 0) simulated seconds.
    @raise Invalid_argument on non-positive rates, [burst_factor < 1] or
    transition probabilities outside (0, 1]. *)

val next : t -> float
(** The next arrival instant, in simulated seconds. Strictly increasing
    across calls on one stream. *)

val peek : t -> float
(** The instant {!next} will return, without consuming it. *)
