(** Timestamped event log of a protocol run — the audit trail the
    experiment harness and the examples print. *)

type entry = { at : float; label : string }

type t

val create : Simtime.t -> t
val record : t -> string -> unit
val recordf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
val entries : t -> entry list
(** Chronological order. *)

val find : t -> substring:string -> entry list
val pp : Format.formatter -> t -> unit

val contains_substring : needle:string -> string -> bool
(** Allocation-free substring search (exposed for property tests). *)

(** {2 Spans}

    Each trace owns a {!Ra_obs.Span} context clocked by its
    {!Simtime.t}. Finished spans are mirrored into the event log as
    ["span <name>: <ms> ms"] entries and into the process-wide metrics
    registry as [ra_span_ms{span="<name>"}] observations. *)

val spans : t -> Ra_obs.Span.t
val with_span : t -> ?labels:Ra_obs.Registry.labels -> string -> (unit -> 'a) -> 'a

(** {2 Causal tracing}

    An optional {!Ra_obs.Trace} flight recorder rides on the trace as
    the out-of-band causal context: the channel and the session handlers
    all reach the same [Trace.t], so per-round trace ids propagate
    through the whole protocol path without ever appearing in a wire
    message. With no tracer attached (the default) the [causal_*]
    helpers are a single option match. *)

val set_tracer : t -> Ra_obs.Trace.t option -> unit
val tracer : t -> Ra_obs.Trace.t option

val causal_instant :
  t -> ?labels:Ra_obs.Registry.labels -> cat:string -> string -> unit
(** Point event under the tracer's innermost open span; no-op when no
    tracer is attached or no round is open. *)

val causal_span :
  t -> ?labels:Ra_obs.Registry.labels -> cat:string -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a causal child span (plain call when tracing is
    off). *)
