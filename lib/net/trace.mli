(** Timestamped event log of a protocol run — the audit trail the
    experiment harness and the examples print. *)

type entry = { at : float; label : string }

type t

val create : Simtime.t -> t
val record : t -> string -> unit
val recordf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
val entries : t -> entry list
(** Chronological order. *)

val find : t -> substring:string -> entry list
val pp : Format.formatter -> t -> unit

val contains_substring : needle:string -> string -> bool
(** Allocation-free substring search (exposed for property tests). *)

(** {2 Spans}

    Each trace owns a {!Ra_obs.Span} context clocked by its
    {!Simtime.t}. Finished spans are mirrored into the event log as
    ["span <name>: <ms> ms"] entries and into the process-wide metrics
    registry as [ra_span_ms{span="<name>"}] observations. *)

val spans : t -> Ra_obs.Span.t
val with_span : t -> ?labels:Ra_obs.Registry.labels -> string -> (unit -> 'a) -> 'a
