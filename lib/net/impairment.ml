module Prng = Ra_crypto.Prng

type loss_model =
  | Iid of float
  | Gilbert_elliott of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
    }

type profile = {
  loss : loss_model;
  duplicate : float;
  reorder : float;
  corrupt : float;
  delay : float;
  delay_s : float;
}

let check_prob what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Impairment: %s probability %g outside [0,1]" what p)

let check_profile p =
  (match p.loss with
  | Iid r -> check_prob "loss" r
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
    check_prob "good->bad" p_good_to_bad;
    check_prob "bad->good" p_bad_to_good;
    check_prob "loss (good)" loss_good;
    check_prob "loss (bad)" loss_bad);
  check_prob "duplicate" p.duplicate;
  check_prob "reorder" p.reorder;
  check_prob "corrupt" p.corrupt;
  check_prob "delay" p.delay;
  if p.delay_s < 0.0 then invalid_arg "Impairment: negative delay_s"

let pristine =
  { loss = Iid 0.0; duplicate = 0.0; reorder = 0.0; corrupt = 0.0; delay = 0.0;
    delay_s = 0.0 }

let lossy rate =
  check_prob "loss" rate;
  { pristine with loss = Iid rate }

(* Bad state loses half its messages and lasts 5 messages on average
   (p_bad_to_good = 1/5); choose p_good_to_bad so the stationary share of
   Bad, pi_b = p_gb / (p_gb + p_bg), gives pi_b * 0.5 = rate. *)
let bursty rate =
  if not (rate >= 0.0 && rate <= 0.5) then
    invalid_arg "Impairment.bursty: long-run rate outside [0, 0.5]";
  let loss_bad = 0.5 and p_bad_to_good = 0.2 in
  let pi_b = rate /. loss_bad in
  let p_good_to_bad =
    if pi_b >= 1.0 then 1.0 else p_bad_to_good *. pi_b /. (1.0 -. pi_b)
  in
  {
    pristine with
    loss = Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good = 0.0; loss_bad };
  }

let noisy =
  {
    loss = Iid 0.10;
    duplicate = 0.05;
    reorder = 0.05;
    corrupt = 0.02;
    delay = 0.10;
    delay_s = 0.25;
  }

type direction = To_prover | To_verifier

type action =
  | Pass
  | Drop
  | Duplicate
  | Reorder
  | Corrupt of { salt : int }
  | Delay of float

type ge_state = Good | Bad

type lane = {
  lane_profile : profile;
  lane_prng : Prng.t;
  mutable lane_ge : ge_state;
}

type t = { to_prover : lane; to_verifier : lane }

let direction_label = function To_prover -> "to_prover" | To_verifier -> "to_verifier"

(* counter handles precreated at module init: decide is on the benign
   forwarding path of every impaired campaign message *)
module M = struct
  let kinds = [ "drop"; "duplicate"; "reorder"; "corrupt"; "delay" ]

  let table dir =
    List.map
      (fun kind ->
        ( kind,
          Ra_obs.Registry.Counter.get
            ~labels:[ ("kind", kind); ("dir", direction_label dir) ]
            "ra_channel_impairments_total" ))
      kinds

  let to_prover = table To_prover
  let to_verifier = table To_verifier

  let count dir kind =
    let table = match dir with To_prover -> to_prover | To_verifier -> to_verifier in
    Ra_obs.Registry.Counter.inc (List.assoc kind table)
end

(* Positional seed derivation: member [index]'s impairment seed is a pure
   function of (root, index) — one SplitMix64 step at offset index, never
   a draw from a shared sequential stream. Whatever partition of the
   member range runs where (one domain, four shards, a streaming sweep
   that never materialises the fleet), member i sees the same wire. *)
let splitmix_gamma = 0x9E3779B97F4A7C15L (* Prng's SplitMix64 increment *)

let derive_seed ~root ~index =
  if index < 0 then invalid_arg "Impairment.derive_seed: negative index";
  Prng.next_int64
    (Prng.create (Int64.add root (Int64.mul (Int64.of_int index) splitmix_gamma)))

let lane profile prng = { lane_profile = profile; lane_prng = prng; lane_ge = Good }

let create ?(to_prover = pristine) ?(to_verifier = pristine) ~seed () =
  check_profile to_prover;
  check_profile to_verifier;
  let root = Prng.create seed in
  let p1 = Prng.split root in
  let p2 = Prng.split root in
  { to_prover = lane to_prover p1; to_verifier = lane to_verifier p2 }

let profile t dir =
  (match dir with To_prover -> t.to_prover | To_verifier -> t.to_verifier).lane_profile

let roll lane p = p > 0.0 && Prng.float lane.lane_prng 1.0 < p

let lost lane =
  match lane.lane_profile.loss with
  | Iid rate -> roll lane rate
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
    (* advance the chain once per message, then draw from the new state *)
    (match lane.lane_ge with
    | Good -> if roll lane p_good_to_bad then lane.lane_ge <- Bad
    | Bad -> if roll lane p_bad_to_good then lane.lane_ge <- Good);
    roll lane (match lane.lane_ge with Good -> loss_good | Bad -> loss_bad)

let decide t ~dir =
  let lane = match dir with To_prover -> t.to_prover | To_verifier -> t.to_verifier in
  let p = lane.lane_profile in
  let action =
    if lost lane then Drop
    else if roll lane p.corrupt then
      Corrupt { salt = Prng.int lane.lane_prng 0x3FFFFFFF }
    else if roll lane p.duplicate then Duplicate
    else if roll lane p.reorder then Reorder
    else if roll lane p.delay then Delay (Prng.float lane.lane_prng p.delay_s)
    else Pass
  in
  (match action with
  | Pass -> ()
  | Drop -> M.count dir "drop"
  | Duplicate -> M.count dir "duplicate"
  | Reorder -> M.count dir "reorder"
  | Corrupt _ -> M.count dir "corrupt"
  | Delay _ -> M.count dir "delay");
  action

let action_label = function
  | Pass -> "pass"
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Reorder -> "reorder"
  | Corrupt _ -> "corrupt"
  | Delay _ -> "delay"

let pp_action fmt = function
  | Delay s -> Format.fprintf fmt "delay(%.3fs)" s
  | Corrupt { salt } -> Format.fprintf fmt "corrupt(salt=%d)" salt
  | (Pass | Drop | Duplicate | Reorder) as a ->
    Format.pp_print_string fmt (action_label a)
