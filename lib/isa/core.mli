(** The execution core: fetch/decode/execute over the device's memory,
    with every data access attributed to the code region the PC is in —
    EA-MAC at true instruction granularity.

    Additionally implements the §6.2 mitigation "limiting code entry
    points": a control transfer from outside into a region registered
    with {!allow_entries} must land on one of its declared entry points,
    otherwise the core traps. (Without this, malware could jump into the
    middle of [Code_attest] — past the authentication check — and abuse
    its access rights; that is the runtime attack the paper points to
    CFI/entry-point enforcement for.)

    Cycle accounting: one cycle per fetched instruction word plus two per
    memory operand, charged to the underlying {!Ra_mcu.Cpu} — so ISA
    programs drain the same battery and drive the same clocks as the
    modeled trust anchor. *)

type trap =
  | Trap_protection of Ra_mcu.Cpu.fault (* EA-MPU denied a data access *)
  | Trap_bus of string (* unmapped address / ROM write *)
  | Trap_illegal of string (* bad opcode or misaligned PC *)
  | Trap_entry of { source : int; target : int; region : string }

type state = Running | Halted | Trapped of trap

type t

val create : Ra_mcu.Cpu.t -> pc:int -> sp:int -> t
(** [sp] is the initial stack pointer (grows downward; 32-bit slots). *)

val pc : t -> int
val sp : t -> int
val reg : t -> int -> int
val set_reg : t -> int -> int -> unit
val zero_flag : t -> bool
val carry_flag : t -> bool
val negative_flag : t -> bool

val force_pc : t -> int -> unit
(** Hardware-level PC write (interrupt dispatch / context restore) —
    not subject to entry-point enforcement, exactly like a real core's
    exception machinery. *)

val force_sp : t -> int -> unit

val allow_entries : t -> region:string -> int list -> unit
(** Declare the only addresses at which control may enter [region] from
    outside it. Regions never registered are unconstrained. *)

val current_region : t -> string option
(** Region the PC currently points into. *)

type hook = {
  h_period : int;
      (** Sampling period in cycles (>= 1). The core accumulates each
          retired instruction's cycle cost into its sample credit and
          fires {!h_sample} only when the credit reaches the period, so
          the closure cost is per-sample, not per-instruction. *)
  h_sample : pc:int -> cycles:int -> unit;
      (** Fired when the accumulated credit crosses [h_period]: the PC of
          the instruction that crossed it and the {e whole} credit (which
          the core has just reset to zero). *)
  h_call : target:int -> unit;  (** A [Call] is about to transfer. *)
  h_ret : unit -> unit;  (** A [Ret] is about to transfer. *)
  h_irq_enter : entry:int -> unit;
      (** Interrupt dispatch is entering a handler (fired by [Irq]). *)
  h_irq_exit : unit -> unit;  (** Handler finished; context restored. *)
}
(** Out-of-band execution observation for the profiler ([Ra_isa.Sampler]).
    Costs exactly one [option] match per retired instruction when unset;
    hooks must not mutate core or CPU state (observation only), so the
    executed program — transcripts, cycle counts, battery — is
    bit-for-bit identical with the hook on or off. *)

val set_hook : t -> hook option -> unit
val hook : t -> hook option

val sample_credit : t -> int
(** Cycles accumulated toward the next sample but not yet reported. An
    attached sampler drains this when the core is retired (see
    [Ra_isa.Sampler.flush]) so cycle attribution stays exact. *)

val set_sample_credit : t -> int -> unit
(** Seed or reset the sample credit — used by [Ra_isa.Sampler.attach] to
    carry a partial period across the short-lived cores a routine like
    [Sha1_asm] creates per run. *)

val step : t -> state
(** Execute one instruction. *)

val run : ?max_steps:int -> t -> state * int
(** Step until halt or trap (or [max_steps], default 1_000_000, returning
    [Running]); also returns the number of instructions executed. *)

val pp_trap : Format.formatter -> trap -> unit
val pp_state : Format.formatter -> state -> unit
