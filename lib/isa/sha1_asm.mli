(** SHA-1 written in the interpreted instruction set — the compression
    function a real SMART/TrustLite trust anchor executes from ROM,
    here actually running instruction-by-instruction on {!Core} with
    every memory access mediated by the EA-MPU.

    The driver (padding, block scheduling, HMAC structure) is host code
    preparing data; all hashing work — message schedule expansion and the
    80 rounds — executes on the core. Output is bit-identical to
    {!Ra_crypto.Sha1} (property-tested), and the interpreted cycle count
    lands in the same order of magnitude as Table 1's per-block figure
    for the 24 MHz Siskiyou Peak. *)

type t

val scratch_bytes : int
(** RAM the routine needs at [scratch_addr]: a 64-byte block buffer,
    20 bytes of state, and the 320-byte W schedule. *)

val install : Ra_mcu.Memory.t -> origin:int -> scratch_addr:int -> t
(** Assemble the compression routine, load it at [origin] (raw write —
    mask programming), and bind its scratch area.
    @raise Invalid_argument if assembly fails (a bug, not an input
    error). *)

val attach : origin:int -> scratch_addr:int -> t
(** Bind to a routine already present in memory (e.g. mask-programmed
    via [Device.create ~rom_images]) without writing anything. *)

val code_bytes : origin:int -> scratch_addr:int -> string
(** The routine's encoded bytes, for ROM provisioning. *)

val code_size_bytes : t -> int

val entry : t -> int
(** The routine's entry point, e.g. for {!Core.allow_entries}. *)

val digest : t -> Ra_mcu.Cpu.t -> string -> string
(** Full SHA-1 of a message, compressions executed on a fresh core over
    the given CPU. @raise Failure if the core traps (e.g. the EA-MPU
    denies the routine its scratch — a misconfiguration). *)

type segment =
  | Bytes of string (* data the anchor already holds (pads, headers) *)
  | Range of int * int (* (base, len): device memory, read by the
                          interpreted copy routine — every byte crosses
                          the EA-MPU attributed to this code's region *)

val digest_segments : t -> Ra_mcu.Cpu.t -> segment list -> string
(** SHA-1 over the concatenation of the segments. [Range] bytes never
    enter host code before being staged by the interpreted [copy]
    routine, so a rule protecting the range is honoured or faulted
    exactly as for any other software. *)

val hmac_segments : t -> Ra_mcu.Cpu.t -> key:string -> segment list -> string
(** HMAC-SHA1 with the same segment semantics; bit-identical to
    [Ra_crypto.Hmac.mac sha1 ~key (concatenation)]. *)

val hmac : t -> Ra_mcu.Cpu.t -> key:string -> string -> string
(** HMAC-SHA1 with both inner and outer hashes on the core. *)

val last_run_cycles : t -> int64
(** Cycles the most recent compression consumed (for the Table-1
    comparison). *)

val program : t -> Asm.program
(** The assembled routine — e.g. to register its labels as profiler
    symbols. *)

val set_sampler : t -> Sampler.t option -> unit
(** Attach a PC sampler to every core this routine spins up (compression
    and copy blocks alike); registers the routine's labels as symbols.
    [None] turns sampling back off. Observation only — digests, cycle
    counts, and battery drain are identical either way. *)
