module Memory = Ra_mcu.Memory
module Region = Ra_mcu.Region
module Profiler = Ra_obs.Profiler

let default_period = 64

(* One registered program: its extent and its labels sorted by address,
   for nearest-preceding-label symbolization. *)
type symrange = { sr_lo : int; sr_hi : int; sr_syms : (int * string) array }

type t = {
  s_period : int;
  memory : Memory.t;
  profile : Profiler.Pc.t;
  mutable ranges : symrange list; (* most recently added first *)
  mutable credit : int;
  mutable stack : string list; (* call frames, innermost first *)
  mutable last_pc : int; (* -1 before the first instruction *)
  (* sample-path memo: the accumulator cell for the current
     (region, stack, leaf symbol), valid while the sampled pc stays in
     [cur_lo, cur_hi) — the address range over which region, leaf and
     stack are all constant. Invalidated on any stack change, so the
     steady-state sample is a range check and two field writes. *)
  mutable cur_lo : int;
  mutable cur_hi : int;
  mutable cur_handle : Profiler.Pc.handle option;
  (* the core currently counting cycle credit on our behalf; a partial
     period left inside it is pulled back on re-attach and flush so
     attribution stays exact across short-lived cores *)
  mutable cur_core : Core.t option;
}

let create ?(period = default_period) ~memory profile =
  if period < 1 then invalid_arg "Sampler.create: period must be >= 1";
  {
    s_period = period;
    memory;
    profile;
    ranges = [];
    credit = 0;
    stack = [];
    last_pc = -1;
    cur_lo = 0;
    cur_hi = 0;
    cur_handle = None;
    cur_core = None;
  }

let period t = t.s_period

let add_program t (program : Asm.program) =
  let syms =
    List.sort (fun (_, a) (_, b) -> compare a b) program.Asm.labels
    |> List.map (fun (name, addr) -> (addr, name))
    |> Array.of_list
  in
  let lo = program.Asm.origin in
  let hi = lo + Asm.size_bytes program in
  t.ranges <- { sr_lo = lo; sr_hi = hi; sr_syms = syms } :: t.ranges;
  (* symbolization just changed; drop any memoized resolution *)
  t.cur_handle <- None

(* Index of the greatest label address <= pc, by binary search. *)
let nearest_label_idx syms pc =
  let n = Array.length syms in
  if n = 0 || fst syms.(0) > pc then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if fst syms.(mid) <= pc then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

let nearest_label syms pc =
  match nearest_label_idx syms pc with
  | Some i -> Some (snd syms.(i))
  | None -> None

let symbolize t pc =
  let rec in_ranges = function
    | [] -> None
    | r :: rest ->
      if pc >= r.sr_lo && pc < r.sr_hi then
        match nearest_label r.sr_syms pc with
        | Some _ as s -> s
        | None -> in_ranges rest
      else in_ranges rest
  in
  match in_ranges t.ranges with
  | Some name -> name
  | None -> Printf.sprintf "0x%06x" pc

(* Resolve pc to (leaf, lo, hi): the symbol name plus the address range
   [lo, hi) over which that leaf (and the enclosing region) is constant,
   clipped to the region extent. An unsymbolized or unmapped pc gets the
   degenerate range [pc, pc+1) — its hex leaf is per-address anyway. *)
let resolve_range t pc =
  let leaf_range =
    let rec in_ranges = function
      | [] -> None
      | r :: rest -> (
        if pc >= r.sr_lo && pc < r.sr_hi then
          match nearest_label_idx r.sr_syms pc with
          | Some i ->
            let lo = fst r.sr_syms.(i) in
            let hi =
              if i + 1 < Array.length r.sr_syms then fst r.sr_syms.(i + 1)
              else r.sr_hi
            in
            Some (r, snd r.sr_syms.(i), lo, hi)
          | None -> in_ranges rest
        else in_ranges rest)
    in
    in_ranges t.ranges
  in
  match (leaf_range, Memory.region_of_addr t.memory pc) with
  | Some (matched, leaf, lo, hi), Some r ->
    (* if another registered program overlaps the candidate range, clip
       it so the memo never spans an address where that program would
       shadow (or fall through to) a different symbol *)
    let lo, hi =
      List.fold_left
        (fun (lo, hi) r' ->
          if r' == matched || r'.sr_hi <= lo || r'.sr_lo >= hi then (lo, hi)
          else if pc < r'.sr_lo then (lo, min hi r'.sr_lo)
          else if pc >= r'.sr_hi then (max lo r'.sr_hi, hi)
          else (pc, pc + 1))
        (lo, hi) t.ranges
    in
    (leaf, r.Region.name, max lo r.Region.base, min hi (Region.limit r))
  | Some (_, leaf, _, _), None -> (leaf, "unmapped", pc, pc + 1)
  | None, region ->
    let name = match region with Some r -> r.Region.name | None -> "unmapped" in
    (Printf.sprintf "0x%06x" pc, name, pc, pc + 1)

let take_sample t =
  (* the memo only invalidates at call/ret/irq or when the pc leaves the
     current symbol's address range, so the steady-state sample is one
     range check and two field writes *)
  (match t.cur_handle with
  | Some h when t.last_pc >= t.cur_lo && t.last_pc < t.cur_hi ->
    Profiler.Pc.bump h ~cycles:t.credit
  | _ ->
    let leaf, region, lo, hi = resolve_range t t.last_pc in
    let frames = region :: List.rev_append t.stack [ leaf ] in
    let h = Profiler.Pc.handle t.profile ~frames in
    t.cur_lo <- lo;
    t.cur_hi <- hi;
    t.cur_handle <- Some h;
    Profiler.Pc.bump h ~cycles:t.credit);
  t.credit <- 0

(* The core fires this once per crossed period with the whole credit. *)
let on_sample t ~pc ~cycles =
  t.last_pc <- pc;
  t.credit <- cycles;
  take_sample t

(* Pull back the partial period still counting inside the attached core. *)
let drain t =
  match t.cur_core with
  | None -> ()
  | Some core ->
    t.credit <- t.credit + Core.sample_credit core;
    Core.set_sample_credit core 0;
    t.last_pc <- Core.pc core

let flush t =
  drain t;
  if t.credit > 0 && t.last_pc >= 0 then take_sample t

let invalidate t = t.cur_handle <- None

let attach t core =
  (match t.cur_core with
  | Some old when old == core -> () (* already counting on this core *)
  | prev ->
    (match prev with Some _ -> drain t | None -> ());
    (* any carried residue seeds the new core's credit, so whatever the
       period, flushed attribution equals executed cycles exactly *)
    Core.set_sample_credit core t.credit;
    t.credit <- 0;
    t.cur_core <- Some core);
  Core.set_hook core
    (Some
       {
         Core.h_period = t.s_period;
         h_sample = (fun ~pc ~cycles -> on_sample t ~pc ~cycles);
         h_call =
           (fun ~target ->
             t.stack <- symbolize t target :: t.stack;
             invalidate t);
         h_ret =
           (fun () ->
             (match t.stack with [] -> () | _ :: rest -> t.stack <- rest);
             invalidate t);
         h_irq_enter =
           (fun ~entry ->
             t.stack <- ("irq:" ^ symbolize t entry) :: t.stack;
             invalidate t);
         h_irq_exit =
           (fun () ->
             (match t.stack with [] -> () | _ :: rest -> t.stack <- rest);
             invalidate t);
       })
