(** Cycle-exact PC sampler over {!Core}.

    Samples every [period] {e cycles} — never wall time — so a profile
    is a pure function of the executed instruction stream and replays
    bit-for-bit under a seed. The sampler keeps a cycle credit: each
    retired instruction adds its cycle cost, and when the credit reaches
    the period the {e whole} credit is attributed to the current
    symbolized call stack and reset. After a final {!flush}, the sum of
    all attributed cycles equals the total cycles executed by hooked
    cores exactly — nothing is lost to rounding.

    Call stacks are reconstructed from the core's Call/Ret/IRQ-dispatch
    notifications; frames are symbolized against {!Asm} program labels
    (nearest label at or before the PC, within that program's extent)
    and fall back to ["0x%06x"]. The root frame is always the
    {!Ra_mcu.Region} name the PC executes from, so flame graphs group
    by memory region even for label-free code.

    Observation only: a sampler never mutates core, CPU, memory, or
    battery state, so transcripts are identical with sampling on or off. *)

type t

val create : ?period:int -> memory:Ra_mcu.Memory.t -> Ra_obs.Profiler.Pc.t -> t
(** [period] defaults to {!default_period} cycles.
    @raise Invalid_argument when [period < 1]. *)

val default_period : int
(** 64 cycles — fine enough to split the SHA-1 round phases, coarse
    enough that sampling overhead stays within the bench gate. *)

val add_program : t -> Asm.program -> unit
(** Register a program's labels as symbols for PCs within its extent.
    Programs may be added in any order; overlapping extents resolve to
    the most recently added program. *)

val attach : t -> Core.t -> unit
(** Install this sampler as the core's execution hook (replacing any
    previous hook). Many cores — including short-lived ones like the
    per-block cores inside [Sha1_asm] — may share one sampler; the
    cycle credit and call stack carry across them. *)

val flush : t -> unit
(** Attribute any remaining cycle credit to the last sampled stack.
    Call once at the end of a measured run to make attribution exact. *)

val period : t -> int
