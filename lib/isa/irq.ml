module Interrupt = Ra_mcu.Interrupt

let install_handler core interrupt ~vector ~entry ?(max_steps = 10_000) () =
  let completions = ref 0 in
  Interrupt.register_handler interrupt ~entry_addr:entry
    ~code_region:"interpreted-isr"
    ~handler:(fun () ->
      (* hardware context save *)
      let saved_regs = Array.init 16 (Core.reg core) in
      let saved_pc = Core.pc core in
      let saved_sp = Core.sp core in
      (match Core.hook core with
      | None -> ()
      | Some h -> h.Core.h_irq_enter ~entry);
      Core.force_pc core entry;
      (match Core.run ~max_steps core with
      | Core.Halted, _ -> incr completions
      | (Core.Running | Core.Trapped _), _ -> () (* abandoned *));
      (* hardware context restore *)
      Array.iteri (Core.set_reg core) saved_regs;
      Core.force_pc core saved_pc;
      Core.force_sp core saved_sp;
      match Core.hook core with
      | None -> ()
      | Some h -> h.Core.h_irq_exit ());
  Interrupt.set_vector_raw interrupt ~vector ~entry_addr:entry;
  fun () -> !completions
