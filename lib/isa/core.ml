module Cpu = Ra_mcu.Cpu
module Memory = Ra_mcu.Memory
module Region = Ra_mcu.Region

type trap =
  | Trap_protection of Cpu.fault
  | Trap_bus of string
  | Trap_illegal of string
  | Trap_entry of { source : int; target : int; region : string }

type state = Running | Halted | Trapped of trap

let mask32 = 0xFFFFFFFF

type hook = {
  h_period : int;
  h_sample : pc:int -> cycles:int -> unit;
  h_call : target:int -> unit;
  h_ret : unit -> unit;
  h_irq_enter : entry:int -> unit;
  h_irq_exit : unit -> unit;
}

type t = {
  cpu : Cpu.t;
  regs : int array;
  mutable pc : int;
  mutable sp : int;
  mutable z : bool;
  mutable c : bool;
  mutable n : bool;
  entries : (string, int list) Hashtbl.t;
  mutable hook : hook option;
  mutable scredit : int; (* cycles accumulated toward the next sample *)
}

let create cpu ~pc ~sp =
  { cpu; regs = Array.make 16 0; pc; sp; z = false; c = false; n = false;
    entries = Hashtbl.create 4; hook = None; scredit = 0 }

let set_hook t hook = t.hook <- hook
let hook t = t.hook
let sample_credit t = t.scredit
let set_sample_credit t credit = t.scredit <- credit

let pc t = t.pc
let sp t = t.sp

let reg t i =
  if i < 0 || i > 15 then invalid_arg "Core.reg";
  t.regs.(i)

let set_reg t i v =
  if i < 0 || i > 15 then invalid_arg "Core.set_reg";
  t.regs.(i) <- v land mask32

let zero_flag t = t.z
let carry_flag t = t.c
let negative_flag t = t.n

let force_pc t pc = t.pc <- pc
let force_sp t sp = t.sp <- sp

let allow_entries t ~region addrs = Hashtbl.replace t.entries region addrs

let region_of t addr = Memory.region_of_addr (Cpu.memory t.cpu) addr

let current_region t = Option.map (fun r -> r.Region.name) (region_of t t.pc)

(* instruction fetch is a hardware bus read, not an MPU-mediated data
   access; word index i addresses bytes 2i, 2i+1 *)
let fetch_word t i =
  let m = Cpu.memory t.cpu in
  Memory.read_byte m (2 * i) lor (Memory.read_byte m ((2 * i) + 1) lsl 8)

let set_flags_logical t result =
  t.z <- result land mask32 = 0;
  t.n <- result land 0x80000000 <> 0

(* Control transfer with §6.2 entry-point enforcement: entering a
   registered region from outside it must hit a declared entry point. *)
let transfer t ~target =
  match region_of t target with
  | None -> Trapped (Trap_bus (Printf.sprintf "jump to unmapped 0x%06x" target))
  | Some dest ->
    let crossing =
      match region_of t t.pc with
      | Some src -> src.Region.name <> dest.Region.name
      | None -> true
    in
    (match Hashtbl.find_opt t.entries dest.Region.name with
    | Some allowed when crossing && not (List.mem target allowed) ->
      Trapped (Trap_entry { source = t.pc; target; region = dest.Region.name })
    | Some _ | None ->
      t.pc <- target;
      Running)

let operand_value t = function
  | Insn.Reg r -> t.regs.(r)
  | Insn.Imm v -> v land mask32

let condition_met t = function
  | Insn.Always -> true
  | Insn.If_zero -> t.z
  | Insn.If_not_zero -> not t.z
  | Insn.If_carry -> t.c
  | Insn.If_not_carry -> not t.c
  | Insn.If_negative -> t.n

let cycles_of insn =
  let base = Insn.size_words insn in
  match insn with
  | Insn.Load _ | Insn.Store _ | Insn.Loadb _ | Insn.Storeb _ -> base + 2
  | Insn.Push _ | Insn.Pop _ -> base + 2
  | Insn.Call _ | Insn.Ret -> base + 2
  | Insn.Nop | Insn.Halt | Insn.Mov _ | Insn.Add _ | Insn.Sub _ | Insn.Cmp _
  | Insn.And _ | Insn.Or _ | Insn.Xor _ | Insn.Shl _ | Insn.Shr _ | Insn.Rol _
  | Insn.Jump _ ->
    base

let step t =
  if t.pc land 1 <> 0 then
    Trapped (Trap_illegal (Printf.sprintf "misaligned PC 0x%06x" t.pc))
  else
    match region_of t t.pc with
    | None -> Trapped (Trap_bus (Printf.sprintf "execute from unmapped 0x%06x" t.pc))
    | Some region ->
      (* all effects of this instruction are attributed to the region the
         PC is in — this is the execution-aware part of EA-MAC *)
      Cpu.with_context t.cpu region.Region.name (fun () ->
          match
            let insn, words = Insn.decode ~fetch:(fetch_word t) ~at:(t.pc / 2) in
            let cyc = cycles_of insn in
            Cpu.consume_cycles t.cpu (Int64.of_int cyc);
            (* out-of-band observation: one option match when off; when on,
               the core counts cycle credit itself so the sampler closure
               only fires once per crossed period, not per instruction *)
            (match t.hook with
            | None -> ()
            | Some h ->
              let credit = t.scredit + cyc in
              if credit >= h.h_period then begin
                t.scredit <- 0;
                h.h_sample ~pc:t.pc ~cycles:credit
              end
              else t.scredit <- credit);
            let next = t.pc + (2 * words) in
            (match insn with
            | Insn.Nop ->
              t.pc <- next;
              Running
            | Insn.Halt -> Halted
            | Insn.Mov (d, s) ->
              t.regs.(d) <- operand_value t s;
              t.pc <- next;
              Running
            | Insn.Add (d, s) ->
              let sum = t.regs.(d) + operand_value t s in
              t.c <- sum > mask32;
              t.regs.(d) <- sum land mask32;
              set_flags_logical t t.regs.(d);
              t.pc <- next;
              Running
            | Insn.Sub (d, s) ->
              let a = t.regs.(d) and b = operand_value t s in
              t.c <- a >= b (* MSP430-style: carry = no borrow *);
              t.regs.(d) <- (a - b) land mask32;
              set_flags_logical t t.regs.(d);
              t.pc <- next;
              Running
            | Insn.Cmp (d, s) ->
              let a = t.regs.(d) and b = operand_value t s in
              t.c <- a >= b;
              set_flags_logical t ((a - b) land mask32);
              t.pc <- next;
              Running
            | Insn.And (d, s) ->
              t.regs.(d) <- t.regs.(d) land operand_value t s;
              set_flags_logical t t.regs.(d);
              t.pc <- next;
              Running
            | Insn.Or (d, s) ->
              t.regs.(d) <- t.regs.(d) lor operand_value t s;
              set_flags_logical t t.regs.(d);
              t.pc <- next;
              Running
            | Insn.Xor (d, s) ->
              t.regs.(d) <- t.regs.(d) lxor operand_value t s;
              set_flags_logical t t.regs.(d);
              t.pc <- next;
              Running
            | Insn.Shl (d, s) ->
              let n = operand_value t s land 31 in
              t.regs.(d) <- (t.regs.(d) lsl n) land mask32;
              set_flags_logical t t.regs.(d);
              t.pc <- next;
              Running
            | Insn.Shr (d, s) ->
              let n = operand_value t s land 31 in
              t.regs.(d) <- t.regs.(d) lsr n;
              set_flags_logical t t.regs.(d);
              t.pc <- next;
              Running
            | Insn.Rol (d, s) ->
              let n = operand_value t s land 31 in
              let v = t.regs.(d) in
              t.regs.(d) <- ((v lsl n) lor (v lsr (32 - n))) land mask32;
              set_flags_logical t t.regs.(d);
              t.pc <- next;
              Running
            | Insn.Load (d, base, off) ->
              t.regs.(d) <- Cpu.load_u32 t.cpu (t.regs.(base) + off);
              t.pc <- next;
              Running
            | Insn.Store (base, s, off) ->
              Cpu.store_u32 t.cpu (t.regs.(base) + off) t.regs.(s);
              t.pc <- next;
              Running
            | Insn.Loadb (d, base, off) ->
              t.regs.(d) <- Cpu.load_byte t.cpu (t.regs.(base) + off);
              t.pc <- next;
              Running
            | Insn.Storeb (base, s, off) ->
              Cpu.store_byte t.cpu (t.regs.(base) + off) (t.regs.(s) land 0xff);
              t.pc <- next;
              Running
            | Insn.Jump (cond, target) ->
              if condition_met t cond then transfer t ~target
              else begin
                t.pc <- next;
                Running
              end
            | Insn.Call target ->
              t.sp <- t.sp - 4;
              Cpu.store_u32 t.cpu t.sp next;
              (match t.hook with None -> () | Some h -> h.h_call ~target);
              transfer t ~target
            | Insn.Ret ->
              let target = Cpu.load_u32 t.cpu t.sp in
              t.sp <- t.sp + 4;
              (match t.hook with None -> () | Some h -> h.h_ret ());
              transfer t ~target
            | Insn.Push r ->
              t.sp <- t.sp - 4;
              Cpu.store_u32 t.cpu t.sp t.regs.(r);
              t.pc <- next;
              Running
            | Insn.Pop r ->
              t.regs.(r) <- Cpu.load_u32 t.cpu t.sp;
              t.sp <- t.sp + 4;
              t.pc <- next;
              Running)
          with
          | state -> state
          | exception Cpu.Protection_fault fault -> Trapped (Trap_protection fault)
          | exception Memory.Bus_fault msg -> Trapped (Trap_bus msg)
          | exception Invalid_argument msg -> Trapped (Trap_illegal msg))

let run ?(max_steps = 1_000_000) t =
  let rec loop steps =
    if steps >= max_steps then (Running, steps)
    else
      match step t with
      | Running -> loop (steps + 1)
      | (Halted | Trapped _) as final -> (final, steps + 1)
  in
  loop 0

let pp_trap fmt = function
  | Trap_protection f ->
    Format.fprintf fmt "protection fault: %s touched 0x%06x" f.Cpu.fault_code
      f.Cpu.fault_addr
  | Trap_bus msg -> Format.fprintf fmt "bus fault: %s" msg
  | Trap_illegal msg -> Format.fprintf fmt "illegal instruction: %s" msg
  | Trap_entry { source; target; region } ->
    Format.fprintf fmt "entry violation: 0x%06x -> 0x%06x (%s)" source target region

let pp_state fmt = function
  | Running -> Format.pp_print_string fmt "running"
  | Halted -> Format.pp_print_string fmt "halted"
  | Trapped trap -> Format.fprintf fmt "trapped (%a)" pp_trap trap
