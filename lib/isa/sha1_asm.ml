module Memory = Ra_mcu.Memory
module Cpu = Ra_mcu.Cpu

(* Scratch layout at [scratch_addr]:
     +0    .. +63   message block (big-endian bytes, as SHA-1 reads them)
     +64   .. +83   state h0..h4 (little-endian u32 cells)
     +96   .. +415  W[0..79] schedule *)
let block_off = 0
let state_off = 64
let w_off = 96
let stage_off = 416
let scratch_bytes = 480

type t = {
  origin : int;
  scratch_addr : int;
  code_size : int;
  copy_entry : int;
  program : Asm.program;
  mutable last_cycles : int64;
  mutable sampler : Sampler.t option;
}

(* Registers: r1 block addr, r2 state addr, r9 W base; r3..r7 = a..e;
   r10 = t; r11..r13 scratch; r14 = f; r15 = k. *)
let source ~block ~state ~w =
  Printf.sprintf
    {|
    compress:
      mov r1, #%d          ; block
      mov r2, #%d          ; state
      mov r9, #%d          ; W
      ; ---- W[0..15] <- big-endian words of the block ----
      mov r10, #0
    w_init:
      mov r11, r10
      shl r11, #2
      add r11, r1
      loadb r12, [r11]
      shl r12, #8
      loadb r13, [r11+1]
      or  r12, r13
      shl r12, #8
      loadb r13, [r11+2]
      or  r12, r13
      shl r12, #8
      loadb r13, [r11+3]
      or  r12, r13
      mov r11, r10
      shl r11, #2
      add r11, r9
      store [r11], r12
      add r10, #1
      cmp r10, #16
      jnz w_init
      ; ---- W[16..79] <- rol1(W[t-3]^W[t-8]^W[t-14]^W[t-16]) ----
    w_expand:
      mov r11, r10
      shl r11, #2
      add r11, r9          ; &W[t]
      load r12, [r11-12]   ; W[t-3]
      load r13, [r11-32]   ; W[t-8]
      xor r12, r13
      load r13, [r11-56]   ; W[t-14]
      xor r12, r13
      load r13, [r11-64]   ; W[t-16]
      xor r12, r13
      rol r12, #1
      store [r11], r12
      add r10, #1
      cmp r10, #80
      jnz w_expand
      ; ---- load working variables ----
      load r3, [r2]        ; a
      load r4, [r2+4]      ; b
      load r5, [r2+8]      ; c
      load r6, [r2+12]     ; d
      load r7, [r2+16]     ; e
      mov r10, #0
    rounds:
      cmp r10, #20
      jnc phase1
      cmp r10, #40
      jnc phase2
      cmp r10, #60
      jnc phase3
      ; ---- t in 60..79: f = b^c^d ----
      mov r14, r4
      xor r14, r5
      xor r14, r6
      mov r15, #0xCA62C1D6
      jmp do_round
    phase1:
      ; f = (b & c) | (~b & d)
      mov r14, r4
      and r14, r5
      mov r12, r4
      xor r12, #0xFFFFFFFF
      and r12, r6
      or  r14, r12
      mov r15, #0x5A827999
      jmp do_round
    phase2:
      mov r14, r4
      xor r14, r5
      xor r14, r6
      mov r15, #0x6ED9EBA1
      jmp do_round
    phase3:
      ; f = (b & c) | (b & d) | (c & d)
      mov r14, r4
      and r14, r5
      mov r12, r4
      and r12, r6
      or  r14, r12
      mov r12, r5
      and r12, r6
      or  r14, r12
      mov r15, #0x8F1BBCDC
      jmp do_round
    do_round:
      ; temp = rol5(a) + f + e + k + W[t]
      mov r11, r3
      rol r11, #5
      add r11, r14
      add r11, r7
      add r11, r15
      mov r12, r10
      shl r12, #2
      add r12, r9
      load r12, [r12]
      add r11, r12
      ; shift the pipeline
      mov r7, r6
      mov r6, r5
      mov r5, r4
      rol r5, #30
      mov r4, r3
      mov r3, r11
      add r10, #1
      cmp r10, #80
      jnz rounds
      ; ---- state += working variables ----
      load r11, [r2]
      add r11, r3
      store [r2], r11
      load r11, [r2+4]
      add r11, r4
      store [r2+4], r11
      load r11, [r2+8]
      add r11, r5
      store [r2+8], r11
      load r11, [r2+12]
      add r11, r6
      store [r2+12], r11
      load r11, [r2+16]
      add r11, r7
      store [r2+16], r11
      halt
      ; ---- copy: r1 = src, r2 = dst, r8 = byte count ----
    copy:
      cmp r8, #0
      jz copy_done
    copy_loop:
      loadb r11, [r1]
      storeb [r2], r11
      add r1, #1
      add r2, #1
      sub r8, #1
      jnz copy_loop
    copy_done:
      halt
    |}
    block state w

let assemble_program ~origin ~scratch_addr =
  let block = scratch_addr + block_off in
  let state = scratch_addr + state_off in
  let w = scratch_addr + w_off in
  match Asm.assemble ~origin (source ~block ~state ~w) with
  | Error e ->
    invalid_arg (Format.asprintf "Sha1_asm.install: assembly failed: %a" Asm.pp_error e)
  | Ok program -> program

let attach ~origin ~scratch_addr =
  let program = assemble_program ~origin ~scratch_addr in
  {
    origin;
    scratch_addr;
    code_size = Asm.size_bytes program;
    copy_entry = Asm.label program "copy";
    program;
    last_cycles = 0L;
    sampler = None;
  }

let code_bytes ~origin ~scratch_addr =
  Asm.to_bytes (assemble_program ~origin ~scratch_addr)

let install memory ~origin ~scratch_addr =
  let t = attach ~origin ~scratch_addr in
  Memory.write_bytes memory origin (code_bytes ~origin ~scratch_addr);
  t

let code_size_bytes t = t.code_size
let entry t = t.origin
let last_run_cycles t = t.last_cycles
let program t = t.program

let set_sampler t sampler =
  (match sampler with
  | None -> ()
  | Some s -> Sampler.add_program s t.program);
  t.sampler <- sampler

let initial_state = [ 0x67452301; 0xEFCDAB89; 0x98BADCFE; 0x10325476; 0xC3D2E1F0 ]

let pad message =
  (* standard SHA-1 padding: 0x80, zeros, 64-bit big-endian bit length *)
  let len = String.length message in
  let bits = Int64.of_int (8 * len) in
  let zero_pad = (119 - (len mod 64)) mod 64 in
  let length_bytes =
    String.init 8 (fun i ->
        Char.chr
          (Int64.to_int
             (Int64.logand (Int64.shift_right_logical bits (8 * (7 - i))) 0xFFL)))
  in
  message ^ "\x80" ^ String.make zero_pad '\x00' ^ length_bytes

let run_compress t cpu =
  let core = Core.create cpu ~pc:t.origin ~sp:(t.scratch_addr + scratch_bytes) in
  (match t.sampler with None -> () | Some s -> Sampler.attach s core);
  let before = Cpu.cycles cpu in
  match Core.run ~max_steps:100_000 core with
  | Core.Halted, _ -> t.last_cycles <- Int64.sub (Cpu.cycles cpu) before
  | state, _ ->
    failwith (Format.asprintf "Sha1_asm: compression %a" Core.pp_state state)

let digest t cpu message =
  let memory = Cpu.memory cpu in
  let state_addr = t.scratch_addr + state_off in
  List.iteri
    (fun i h -> Memory.write_u32 memory (state_addr + (4 * i)) h)
    initial_state;
  let padded = pad message in
  let blocks = String.length padded / 64 in
  for b = 0 to blocks - 1 do
    Memory.write_bytes memory (t.scratch_addr + block_off) (String.sub padded (b * 64) 64);
    run_compress t cpu
  done;
  String.init 20 (fun i ->
      let word = Memory.read_u32 memory (state_addr + (4 * (i / 4))) in
      Char.chr ((word lsr (8 * (3 - (i mod 4)))) land 0xff))

type segment = Bytes of string | Range of int * int

(* run the interpreted copy routine: stage [len] bytes from device
   memory into the scratch staging area, reading through the MPU *)
let run_copy t cpu ~src ~len =
  let core = Core.create cpu ~pc:t.copy_entry ~sp:(t.scratch_addr + scratch_bytes) in
  (match t.sampler with None -> () | Some s -> Sampler.attach s core);
  Core.set_reg core 1 src;
  Core.set_reg core 2 (t.scratch_addr + stage_off);
  Core.set_reg core 8 len;
  match Core.run ~max_steps:100_000 core with
  | Core.Halted, _ -> ()
  | state, _ -> failwith (Format.asprintf "Sha1_asm: copy %a" Core.pp_state state)

let digest_segments t cpu segments =
  let memory = Cpu.memory cpu in
  let state_addr = t.scratch_addr + state_off in
  List.iteri
    (fun i h -> Memory.write_u32 memory (state_addr + (4 * i)) h)
    initial_state;
  let pending = Buffer.create 128 in
  let total = ref 0 in
  let flush_blocks () =
    while Buffer.length pending >= 64 do
      let block = Buffer.sub pending 0 64 in
      let rest = Buffer.sub pending 64 (Buffer.length pending - 64) in
      Buffer.clear pending;
      Buffer.add_string pending rest;
      Memory.write_bytes memory (t.scratch_addr + block_off) block;
      run_compress t cpu
    done
  in
  let feed_bytes s =
    total := !total + String.length s;
    Buffer.add_string pending s;
    flush_blocks ()
  in
  List.iter
    (fun segment ->
      match segment with
      | Bytes s -> feed_bytes s
      | Range (base, len) ->
        let stage = t.scratch_addr + stage_off in
        let rec chunks off =
          if off < len then begin
            let n = min 64 (len - off) in
            run_copy t cpu ~src:(base + off) ~len:n;
            feed_bytes (Memory.read_bytes memory stage n);
            chunks (off + n)
          end
        in
        chunks 0)
    segments;
  (* padding for the streamed length *)
  let len = !total in
  let bits = Int64.of_int (8 * len) in
  let zero_pad = (119 - (len mod 64)) mod 64 in
  let length_bytes =
    String.init 8 (fun i ->
        Char.chr
          (Int64.to_int
             (Int64.logand (Int64.shift_right_logical bits (8 * (7 - i))) 0xFFL)))
  in
  feed_bytes ("\x80" ^ String.make zero_pad '\x00' ^ length_bytes);
  assert (Buffer.length pending = 0);
  String.init 20 (fun i ->
      let word = Memory.read_u32 memory (state_addr + (4 * (i / 4))) in
      Char.chr ((word lsr (8 * (3 - (i mod 4)))) land 0xff))

let hmac_key_pads key =
  let block_size = 64 in
  let key = key ^ String.make (block_size - String.length key) '\x00' in
  let xor_with pad_byte =
    String.map (fun c -> Char.chr (Char.code c lxor pad_byte)) key
  in
  (xor_with 0x36, xor_with 0x5c)

let hmac_segments t cpu ~key segments =
  let key = if String.length key > 64 then digest t cpu key else key in
  let ipad, opad = hmac_key_pads key in
  let inner = digest_segments t cpu (Bytes ipad :: segments) in
  digest_segments t cpu [ Bytes opad; Bytes inner ]

let hmac t cpu ~key message =
  let block_size = 64 in
  let key = if String.length key > block_size then digest t cpu key else key in
  let key = key ^ String.make (block_size - String.length key) '\x00' in
  let xor_with pad_byte =
    String.map (fun c -> Char.chr (Char.code c lxor pad_byte)) key
  in
  let ipad = xor_with 0x36 in
  let opad = xor_with 0x5c in
  digest t cpu (opad ^ digest t cpu (ipad ^ message))
