(** A trust anchor whose attestation report is computed by the
    {e interpreted} SHA-1 routine ({!Ra_isa.Sha1_asm}) residing in the
    [rom_attest] region: the measurement sweep reads every attested byte
    through the EA-MPU with the PC inside [Code_attest]'s region, and
    the resulting HMAC is bit-identical to the host-crypto anchor's — so
    the standard {!Verifier} accepts it unchanged.

    Differences from {!Code_attest}:
    - the memory-MAC cost is not charged from the Table-1 model; it is
      whatever the interpreted routine actually executes (reported by
      {!last_mac_cycles} — a few× the real core's cost, same order);
    - the device must be created with the SHA-1 routine as a
      [rom_images] entry for {!Ra_mcu.Device.region_attest} and a free
      RAM scratch area (see {!install}).

    This is the closest this repository gets to SMART's actual shape: a
    ROM routine, a key readable only by that ROM's PC range, and a MAC
    computed instruction by instruction. *)

type t

val rom_image : unit -> string
(** The SHA-1 routine's code bytes, to pass as
    [(Ra_mcu.Device.region_attest, rom_image ())] in [rom_images].
    The routine is position-assembled for the standard device map. *)

val scratch_addr : Ra_mcu.Device.t -> int
(** Where the routine's working memory lives: the top
    [Ra_isa.Sha1_asm.scratch_bytes] of attested RAM. *)

val install :
  Ra_mcu.Device.t ->
  scheme:Ra_mcu.Timing.auth_scheme option ->
  policy:Freshness.policy ->
  t
(** Bind the anchor to a device whose [rom_attest] holds {!rom_image}.
    @raise Invalid_argument if the ROM content does not match (the
    routine would execute garbage). *)

val handle_request : t -> Message.attreq -> (Message.attresp, Code_attest.reject) result
(** Same contract as the anchor's request handler; the report is
    computed by interpreted code. *)

val handle_request_r : t -> Message.attreq -> (Message.attresp, Verdict.t) result
(** {!handle_request} with the error in the unified {!Verdict.t}
    vocabulary. *)

val measure_memory : t -> string
(** The attested image (for provisioning the verifier), read through the
    interpreted copy path. *)

val last_mac_cycles : t -> int64
(** Cycles the most recent interpreted measurement consumed. *)

val sha : t -> Ra_isa.Sha1_asm.t
(** The interpreted routine — e.g. to attach a {!Ra_isa.Sampler} for
    PC-sampled flame graphs of the measurement sweep. *)
