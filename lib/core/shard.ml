(* Shard partitioning and the parallel shard runner.

   A shard is a contiguous slice of the member index range. Contiguity
   is what makes the merge trivial and deterministic: every per-member
   output (verdict, ledger entry, transcript, clock) is written at the
   member's own index, shards write disjoint ranges, and reading the
   array back in index order reproduces the sequential oracle's order
   exactly — there is no cross-shard ordering decision left to make.
   Whatever does not index by member (metrics arenas, aggregate
   accumulators) is merged by the coordinator in shard order after the
   shards quiesce.

   The partition function itself is the standard balanced split:
   shard s of S owns [s*n/S, (s+1)*n/S). Sizes differ by at most one,
   every member is covered exactly once, and the mapping depends only on
   (n, S) — never on which domain runs the shard. *)

type range = { sh_lo : int; sh_hi : int } (* [lo, hi) *)

let partition ~members ~shards =
  if members < 0 then invalid_arg "Shard.partition: negative member count";
  if shards < 1 then invalid_arg "Shard.partition: shards must be >= 1";
  Array.init shards (fun s ->
      { sh_lo = members * s / shards; sh_hi = members * (s + 1) / shards })

let size r = r.sh_hi - r.sh_lo

(* Run [f s] for every shard id s in [0, shards) on the caller plus
   pool helpers. Shard ids are handed out through an atomic counter, so
   with more shards than domains the surplus queues naturally; which
   domain runs which shard is *not* deterministic — which is exactly why
   shard bodies may only touch their own range and their own arena. *)
let run ?pool ~shards f =
  if shards < 1 then invalid_arg "Shard.run: shards must be >= 1";
  let pool = match pool with Some p -> p | None -> Pool.shared () in
  if shards = 1 then f 0
  else begin
    let next = Atomic.make 0 in
    Pool.run pool ~helpers:(shards - 1) (fun () ->
        let rec go () =
          let s = Atomic.fetch_and_add next 1 in
          if s < shards then begin
            f s;
            go ()
          end
        in
        go ())
  end
