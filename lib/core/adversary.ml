module Channel = Ra_net.Channel
module Trace = Ra_net.Trace
module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu
module Memory = Ra_mcu.Memory
module Clock = Ra_mcu.Clock
module Ea_mpu = Ra_mcu.Ea_mpu
module Interrupt = Ra_mcu.Interrupt

(* ---- Adv_ext ---- *)

let recorded_requests session =
  List.filter_map
    (fun sent ->
      match Message.wire_of_bytes sent.Channel.payload with
      | Some (Message.Request req) -> Some req
      | Some (Message.Response _ | Message.Sync_request _ | Message.Sync_response _
             | Message.Service_request _ | Message.Service_ack _
             | Message.Hs_init _ | Message.Hs_resp _ | Message.Hs_fin _
             | Message.Record _)
      | None ->
        None)
    (Channel.transcript (Session.channel session))

let forge_request session ?key_blob ~freshness () =
  let challenge = "bogus-challenge-" ^ String.make 4 '!' in
  let tag =
    match (key_blob, Verifier.scheme (Session.verifier session)) with
    | Some blob, Some scheme ->
      (* with stolen key material the adversary signs like a verifier *)
      let body = Message.request_body ~challenge ~freshness in
      Auth.tag_request scheme (Auth.Vs_symmetric (Auth.blob_sym_key blob)) ~body
    | Some _, None | None, (Some _ | None) -> Message.Tag_none
  in
  { Message.challenge; freshness; tag }

let inject session req =
  Trace.recordf (Session.trace session) "adv_ext: injected %a" Message.pp_attreq req;
  Session.deliver_to_prover session req

let replay session req =
  Trace.recordf (Session.trace session) "adv_ext: replayed %a" Message.pp_attreq req;
  (* verbatim bit-for-bit replay of the recorded frame *)
  Session.deliver_frame_to_prover session (Message.wire_to_bytes (Message.Request req))

let intercept_next_request session =
  let channel = Session.channel session in
  let rec grab () =
    match
      List.find_opt
        (fun s -> s.Channel.src = Channel.Verifier_side)
        (Channel.undelivered channel)
    with
    | None -> None
    | Some sent ->
      if Channel.drop_next channel ~src:Channel.Verifier_side then
        match Message.wire_of_bytes sent.Channel.payload with
        | Some (Message.Request req) ->
          Trace.recordf (Session.trace session) "adv_ext: intercepted %a"
            Message.pp_attreq req;
          Some req
        | Some (Message.Response _ | Message.Sync_request _ | Message.Sync_response _
               | Message.Service_request _ | Message.Service_ack _
               | Message.Hs_init _ | Message.Hs_resp _ | Message.Hs_fin _
               | Message.Record _)
        | None ->
          grab ()
      else None
  in
  grab ()

let flood session ~count req =
  for _ = 1 to count do
    Session.deliver_to_prover session req
  done

(* ---- Adv_roam ---- *)

type tamper =
  | Try_key_read
  | Try_key_write of string
  | Try_counter_write of int64
  | Try_clock_set_back_ms of int64
  | Try_idt_tamper
  | Try_irq_disable
  | Try_mpu_reconfig

type tamper_result =
  | Tamper_succeeded of string
  | Blocked_by_mpu
  | Blocked_rom_immutable
  | Blocked_mpu_locked
  | Not_applicable of string

type compromise_report = {
  attempts : (tamper * tamper_result) list;
  malware_was_resident : bool;
  traces_erased : bool;
}

let tamper_result_ok = function
  | Tamper_succeeded _ -> true
  | Blocked_by_mpu | Blocked_rom_immutable | Blocked_mpu_locked | Not_applicable _ ->
    false

let as_untrusted device f =
  Cpu.with_context (Device.cpu device) Device.region_untrusted f

let catching f =
  try f () with
  | Cpu.Protection_fault _ -> Blocked_by_mpu
  | Memory.Bus_fault _ -> Blocked_rom_immutable
  | Ea_mpu.Locked -> Blocked_mpu_locked

let attempt device tamper =
  let cpu = Device.cpu device in
  match tamper with
  | Try_key_read ->
    catching (fun () ->
        let blob = Cpu.load_bytes cpu (Device.key_addr device) (Device.key_len device) in
        Tamper_succeeded (Ra_crypto.Hexutil.to_hex blob))
  | Try_key_write junk ->
    catching (fun () ->
        Cpu.store_bytes cpu (Device.key_addr device) junk;
        Tamper_succeeded "key overwritten")
  | Try_counter_write v ->
    catching (fun () ->
        Cpu.store_u64 cpu (Device.counter_addr device) v;
        Tamper_succeeded (Printf.sprintf "counter_R := %Ld" v))
  | Try_clock_set_back_ms delta_ms ->
    (match Device.clock device with
    | None -> Not_applicable "device has no clock"
    | Some clock ->
      (match Clock.msb_addr clock with
      | None -> Not_applicable "hardware counter register: no software write path"
      | Some msb_addr ->
        catching (fun () ->
            (* convert δ to Clock_MSB increments; the MSB granularity
               (one LSB wrap-around period) bounds the precision *)
            let lsb_bits = Option.value ~default:24 (Clock.lsb_width clock) in
            let per_msb_seconds =
              Clock.resolution_seconds clock *. (2.0 ** float_of_int lsb_bits)
            in
            let delta_msb =
              Int64.of_float
                (Float.max 1.0
                   (Int64.to_float delta_ms /. 1000.0 /. per_msb_seconds))
            in
            let msb = Cpu.load_u64 cpu msb_addr in
            let target =
              if Int64.compare msb delta_msb >= 0 then Int64.sub msb delta_msb else 0L
            in
            Cpu.store_u64 cpu msb_addr target;
            Tamper_succeeded (Printf.sprintf "Clock_MSB %Ld -> %Ld" msb target))))
  | Try_idt_tamper ->
    catching (fun () ->
        let interrupt = Device.interrupt device in
        Interrupt.set_vector interrupt ~vector:Device.timer_vector ~entry_addr:0xDEAD;
        Tamper_succeeded "timer vector redirected")
  | Try_irq_disable ->
    catching (fun () ->
        Interrupt.set_enabled (Device.interrupt device) false;
        Tamper_succeeded "interrupts disabled")
  | Try_mpu_reconfig ->
    catching (fun () ->
        Ea_mpu.clear (Device.mpu device);
        Tamper_succeeded "all EA-MPU rules cleared")

let malware_marker = "MALWARE-IMPLANT-v1"

let compromise session ~tampers =
  let device = Session.device session in
  let trace = Session.trace session in
  let cpu = Device.cpu device in
  let base = Device.attested_base device in
  Trace.record trace "adv_roam: phase II begins (prover compromised)";
  as_untrusted device (fun () ->
      (* infect: malware becomes resident in attested RAM *)
      let original = Cpu.load_bytes cpu base (String.length malware_marker) in
      Cpu.store_bytes cpu base malware_marker;
      let attempts =
        List.map
          (fun tamper ->
            let result = attempt device tamper in
            Trace.recordf trace "adv_roam: tamper -> %s"
              (match result with
              | Tamper_succeeded d -> "succeeded: " ^ d
              | Blocked_by_mpu -> "blocked by EA-MPU"
              | Blocked_rom_immutable -> "blocked: ROM immutable"
              | Blocked_mpu_locked -> "blocked: EA-MPU locked"
              | Not_applicable why -> "n/a: " ^ why);
            (tamper, result))
          tampers
      in
      (* cover tracks: restore the attested image bit-exact and leave *)
      Cpu.store_bytes cpu base original;
      let erased =
        Cpu.load_bytes cpu base (String.length malware_marker) = original
      in
      Trace.record trace "adv_roam: phase II ends (traces erased, malware gone)";
      { attempts; malware_was_resident = true; traces_erased = erased })

let stolen_key_blob report =
  List.find_map
    (fun (tamper, result) ->
      match (tamper, result) with
      | Try_key_read, Tamper_succeeded hex -> Some (Ra_crypto.Hexutil.of_hex hex)
      | _, (Tamper_succeeded _ | Blocked_by_mpu | Blocked_rom_immutable
           | Blocked_mpu_locked | Not_applicable _) ->
        None)
    report.attempts

let pp_tamper fmt = function
  | Try_key_read -> Format.pp_print_string fmt "read K_attest"
  | Try_key_write _ -> Format.pp_print_string fmt "overwrite K_attest"
  | Try_counter_write v -> Format.fprintf fmt "set counter_R to %Ld" v
  | Try_clock_set_back_ms d -> Format.fprintf fmt "set clock back %Ld ms" d
  | Try_idt_tamper -> Format.pp_print_string fmt "redirect timer IDT entry"
  | Try_irq_disable -> Format.pp_print_string fmt "disable interrupts"
  | Try_mpu_reconfig -> Format.pp_print_string fmt "clear EA-MPU rules"

let pp_tamper_result fmt = function
  | Tamper_succeeded d -> Format.fprintf fmt "succeeded (%s)" d
  | Blocked_by_mpu -> Format.pp_print_string fmt "blocked by EA-MPU"
  | Blocked_rom_immutable -> Format.pp_print_string fmt "blocked (ROM immutable)"
  | Blocked_mpu_locked -> Format.pp_print_string fmt "blocked (EA-MPU locked)"
  | Not_applicable why -> Format.fprintf fmt "not applicable (%s)" why
