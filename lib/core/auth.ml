module C = Ra_crypto
module Timing = Ra_mcu.Timing

type scheme = Timing.auth_scheme

type verifier_secret =
  | Vs_symmetric of string
  | Vs_ecdsa of C.Ecdsa.keypair

let k_attest_len = 20
let coord_len = 20
let public_len = 2 * coord_len
let blob_len = k_attest_len + public_len

let point_to_bytes point =
  match C.Ec.to_affine C.Ec.secp160r1 point with
  | None -> invalid_arg "Auth.point_to_bytes: point at infinity"
  | Some (x, y) ->
    C.Bignum.to_bytes_be ~pad:coord_len x ^ C.Bignum.to_bytes_be ~pad:coord_len y

let point_of_bytes s =
  if String.length s <> public_len then None
  else begin
    let x = C.Bignum.of_bytes_be (String.sub s 0 coord_len) in
    let y = C.Bignum.of_bytes_be (String.sub s coord_len coord_len) in
    if C.Ec.on_curve C.Ec.secp160r1 (x, y) then
      Some (C.Ec.of_affine C.Ec.secp160r1 (x, y))
    else None
  end

let prover_key_blob ~sym_key ~public =
  if String.length sym_key <> k_attest_len then
    invalid_arg "Auth.prover_key_blob: sym_key must be 20 bytes";
  let pub_bytes =
    match public with
    | None -> String.make public_len '\x00'
    | Some point -> point_to_bytes point
  in
  sym_key ^ pub_bytes

let blob_sym_key blob = String.sub blob 0 k_attest_len
let blob_public blob = point_of_bytes (String.sub blob k_attest_len public_len)

let sym_of_secret = function
  | Vs_symmetric k -> k
  | Vs_ecdsa _ -> invalid_arg "Auth.tag_request: symmetric scheme needs Vs_symmetric"

(* Block-cipher keys are derived from the 20-byte K_attest by truncation
   to the cipher's key size (16 bytes). *)
let cipher_key k = String.sub k 0 16

let keyed sym_key = C.Hmac.key C.Hmac.sha1 ~key:sym_key

let tag_request ?hmac_keyed scheme secret ~body =
  match scheme with
  | Timing.Auth_hmac_sha1 ->
    let kc =
      match hmac_keyed with Some kc -> kc | None -> keyed (sym_of_secret secret)
    in
    Message.Tag_hmac_sha1 (C.Hmac.mac_with kc body)
  | Timing.Auth_aes128_cbc_mac ->
    let key = C.Aes.expand (cipher_key (sym_of_secret secret)) in
    Message.Tag_aes_cbc_mac (C.Block_mode.cbc_mac (C.Block_mode.aes key) body)
  | Timing.Auth_speck64_cbc_mac ->
    let key = C.Speck.expand (cipher_key (sym_of_secret secret)) in
    Message.Tag_speck_cbc_mac (C.Block_mode.cbc_mac (C.Block_mode.speck key) body)
  | Timing.Auth_ecdsa_verify ->
    (match secret with
    | Vs_ecdsa kp ->
      let signature = C.Ecdsa.sign C.Ec.secp160r1 ~secret:kp.C.Ecdsa.secret body in
      Message.Tag_ecdsa (C.Ecdsa.signature_to_bytes C.Ec.secp160r1 signature)
    | Vs_symmetric _ -> invalid_arg "Auth.tag_request: ECDSA scheme needs Vs_ecdsa")

let scheme_label = function
  | Timing.Auth_hmac_sha1 -> "hmac_sha1"
  | Timing.Auth_aes128_cbc_mac -> "aes128_cbc_mac"
  | Timing.Auth_speck64_cbc_mac -> "speck64_cbc_mac"
  | Timing.Auth_ecdsa_verify -> "ecdsa_verify"

(* Per-verification cost on the hot path is one atomic add: the 4x2
   scheme/result counter handles are created once here. *)
let verification_counters =
  let counter scheme result =
    Ra_obs.Registry.Counter.get
      ~labels:[ ("scheme", scheme_label scheme); ("result", result) ]
      "ra_auth_verifications_total"
  in
  List.map
    (fun scheme -> (scheme, (counter scheme "ok", counter scheme "fail")))
    [
      Timing.Auth_hmac_sha1;
      Timing.Auth_aes128_cbc_mac;
      Timing.Auth_speck64_cbc_mac;
      Timing.Auth_ecdsa_verify;
    ]

let count_verification scheme ok =
  let ok_c, fail_c = List.assoc scheme verification_counters in
  Ra_obs.Registry.Counter.inc (if ok then ok_c else fail_c)

let verify_request_raw ?hmac_keyed scheme ~key_blob ~body tag =
  match (scheme, tag) with
  | Timing.Auth_hmac_sha1, Message.Tag_hmac_sha1 t ->
    let kc =
      match hmac_keyed with Some kc -> kc | None -> keyed (blob_sym_key key_blob)
    in
    C.Hmac.verify_with kc ~msg:body ~tag:t
  | Timing.Auth_aes128_cbc_mac, Message.Tag_aes_cbc_mac t ->
    let key = C.Aes.expand (cipher_key (blob_sym_key key_blob)) in
    C.Block_mode.cbc_mac_verify (C.Block_mode.aes key) ~msg:body ~tag:t
  | Timing.Auth_speck64_cbc_mac, Message.Tag_speck_cbc_mac t ->
    let key = C.Speck.expand (cipher_key (blob_sym_key key_blob)) in
    C.Block_mode.cbc_mac_verify (C.Block_mode.speck key) ~msg:body ~tag:t
  | Timing.Auth_ecdsa_verify, Message.Tag_ecdsa t ->
    (match (blob_public key_blob, C.Ecdsa.signature_of_bytes C.Ec.secp160r1 t) with
    | Some public, Some signature ->
      C.Ecdsa.verify C.Ec.secp160r1 ~public ~msg:body signature
    | None, _ | _, None -> false)
  | ( ( Timing.Auth_hmac_sha1 | Timing.Auth_aes128_cbc_mac | Timing.Auth_speck64_cbc_mac
      | Timing.Auth_ecdsa_verify ),
      ( Message.Tag_none | Message.Tag_hmac_sha1 _ | Message.Tag_aes_cbc_mac _
      | Message.Tag_speck_cbc_mac _ | Message.Tag_ecdsa _ ) ) ->
    false

let verify_request ?hmac_keyed scheme ~key_blob ~body tag =
  let ok = verify_request_raw ?hmac_keyed scheme ~key_blob ~body tag in
  count_verification scheme ok;
  ok

let response_report_keyed ~keyed ~body ~memory_image =
  (* stream the two parts through the inner hash instead of materializing
     [body ^ memory_image] — the image is the prover's whole writable RAM *)
  C.Hmac.mac_parts keyed [ body; memory_image ]

let response_report ~sym_key ~body ~memory_image =
  response_report_keyed ~keyed:(keyed sym_key) ~body ~memory_image
