(** Request-authentication schemes (§4.1): the verifier proves to the
    prover that an attestation request is genuine, with symmetric MACs
    (HMAC-SHA1, AES-128 CBC-MAC, Speck 64/128 CBC-MAC) or a public-key
    signature (ECDSA over secp160r1 — the option §4.1 rules out as itself
    DoS-grade expensive, included for the cost comparison).

    Key blob layout on the prover ({!prover_key_blob}): 20 bytes of
    symmetric K_attest followed by the verifier's 40-byte public key
    (x||y, zero when unused); K_attest always exists because the
    attestation *response* is authenticated symmetrically. *)

type scheme = Ra_mcu.Timing.auth_scheme

val scheme_label : scheme -> string
(** Stable lower-snake-case name used as the [scheme] metric label
    (["hmac_sha1"], ["aes128_cbc_mac"], ["speck64_cbc_mac"],
    ["ecdsa_verify"]). *)

type verifier_secret =
  | Vs_symmetric of string (* shared K_attest *)
  | Vs_ecdsa of Ra_crypto.Ecdsa.keypair

val k_attest_len : int (* 20 *)
val public_len : int (* 40 *)
val blob_len : int (* 60 *)

val prover_key_blob : sym_key:string -> public:Ra_crypto.Ec.point option -> string
(** @raise Invalid_argument if [sym_key] is not 20 bytes. *)

val blob_sym_key : string -> string
val blob_public : string -> Ra_crypto.Ec.point option
(** [None] if the public-key slot is all zeros or not a curve point. *)

val point_to_bytes : Ra_crypto.Ec.point -> string
val point_of_bytes : string -> Ra_crypto.Ec.point option

val keyed : string -> Ra_crypto.Hmac.key_ctx
(** Precomputed HMAC-SHA1 midstates for a long-lived K_attest
    ({!Ra_crypto.Hmac.key}). Deriving this once per key and passing it as
    [?hmac_keyed] below skips the per-message ipad/opad hashing — the
    "fixed" part of Table 1's SHA1-HMAC cost. *)

val tag_request :
  ?hmac_keyed:Ra_crypto.Hmac.key_ctx ->
  scheme ->
  verifier_secret ->
  body:string ->
  Message.auth_tag
(** Compute the tag the verifier attaches. [?hmac_keyed] (used only by the
    HMAC-SHA1 scheme) must match the secret's K_attest.
    @raise Invalid_argument on a scheme/secret mismatch. *)

val verify_request :
  ?hmac_keyed:Ra_crypto.Hmac.key_ctx ->
  scheme ->
  key_blob:string ->
  body:string ->
  Message.auth_tag ->
  bool
(** The prover-side check, given the raw key blob read from protected
    storage. Wrong-scheme tags verify as [false]. [?hmac_keyed] must match
    the blob's K_attest when given. *)

val response_report : sym_key:string -> body:string -> memory_image:string -> string
(** The attestation report: HMAC-SHA1 under K_attest over the response
    body and the measured memory. *)

val response_report_keyed :
  keyed:Ra_crypto.Hmac.key_ctx -> body:string -> memory_image:string -> string
(** {!response_report} against a precomputed key context; the memory image
    streams through the hash without being concatenated to the body. *)
