(* Persistent domain pool.

   `Domain.spawn` is not cheap: a fresh OS thread, a fresh minor heap,
   and a round of runtime handshakes per domain, paid again on every
   sweep. BENCH_hotpath.json showed the old spawn-per-sweep parallel
   engines *losing* to sequential (0.89x at 2 domains, 0.76x at 4) —
   per-sweep setup dominated the useful work. The pool spawns helper
   domains once, parks them on a condition variable, and reuses them for
   every subsequent batch: steady-state dispatch is one mutex
   lock/broadcast, no spawns.

   A batch runs the same thunk on the caller plus [helpers] pool
   domains; work distribution happens inside the thunk (the callers all
   pull indices from a shared [Atomic] counter, exactly as the old
   spawn-per-sweep engines did). [run] returns only after every
   participant finished; the first exception any participant raised is
   re-raised on the caller.

   One batch at a time per pool: batches from the fleet engines are
   strictly sequential (cells of a chaos grid, sweeps of a bench loop),
   so the pool deliberately has no job queue — [run] from two domains at
   once is a programming error and raises. *)

type t = {
  mutex : Mutex.t;
  work : Condition.t; (* workers park here between batches *)
  idle : Condition.t; (* the caller parks here until the batch drains *)
  mutable job : (unit -> unit) option; (* the current batch's thunk *)
  mutable to_start : int; (* workers that must still pick up the batch *)
  mutable active : int; (* workers currently inside the thunk *)
  mutable busy : bool; (* a batch is in flight *)
  mutable failure : exn option; (* first worker exception of the batch *)
  mutable workers : unit Domain.t list; (* persistent helper domains *)
  mutable stop : bool;
}

let create () =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    job = None;
    to_start = 0;
    active = 0;
    busy = false;
    failure = None;
    workers = [];
    stop = false;
  }

let size t =
  Mutex.lock t.mutex;
  let n = List.length t.workers in
  Mutex.unlock t.mutex;
  n

let rec worker_loop t =
  Mutex.lock t.mutex;
  while (not t.stop) && t.to_start = 0 do
    Condition.wait t.work t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.to_start <- t.to_start - 1;
    t.active <- t.active + 1;
    let job = match t.job with Some j -> j | None -> assert false in
    Mutex.unlock t.mutex;
    let result = try Ok (job ()) with e -> Error e in
    Mutex.lock t.mutex;
    (match result with
    | Ok () -> ()
    | Error e -> if t.failure = None then t.failure <- Some e);
    t.active <- t.active - 1;
    if t.to_start = 0 && t.active = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.mutex;
    worker_loop t
  end

(* Grow to at least [helpers] parked domains. Called with the batch not
   yet published, so new workers park immediately. *)
let ensure t helpers =
  let missing = helpers - List.length t.workers in
  if missing > 0 then
    for _ = 1 to missing do
      t.workers <- Domain.spawn (fun () -> worker_loop t) :: t.workers
    done

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join workers;
  (* drop the flag once the old helpers are gone, so a later [run] can
     spawn fresh ones instead of watching them exit immediately *)
  Mutex.lock t.mutex;
  t.stop <- false;
  Mutex.unlock t.mutex

(* Helper domains beyond this point stop buying anything on any machine
   this code meets; it also keeps a runaway [~domains] argument from
   exhausting the runtime's 128-domain budget. *)
let max_helpers = 63

let run t ~helpers job =
  let helpers = min (max 0 helpers) max_helpers in
  if helpers = 0 then job ()
  else begin
    Mutex.lock t.mutex;
    if t.busy then begin
      Mutex.unlock t.mutex;
      invalid_arg "Ra_core.Pool.run: pool already running a batch"
    end;
    t.busy <- true;
    ensure t helpers;
    t.job <- Some job;
    t.failure <- None;
    t.to_start <- helpers;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* the caller is a participant, not just a dispatcher *)
    let mine = try Ok (job ()) with e -> Error e in
    Mutex.lock t.mutex;
    while t.to_start > 0 || t.active > 0 do
      Condition.wait t.idle t.mutex
    done;
    t.job <- None;
    t.busy <- false;
    let theirs = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match (mine, theirs) with
    | Error e, _ -> raise e
    | Ok (), Some e -> raise e
    | Ok (), None -> ()
  end

(* The process-wide pool the fleet engines share. Domains spawn on first
   parallel use and are joined at exit so the runtime shuts down clean. *)
let shared_pool = lazy (
  let t = create () in
  at_exit (fun () -> shutdown t);
  t)

let shared () = Lazy.force shared_pool
