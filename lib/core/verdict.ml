module Json = Ra_obs.Json

type freshness_reject =
  | Missing_field
  | Wrong_field
  | Replayed_nonce
  | Stale_counter of { got : int64; stored : int64 }
  | Stale_or_reordered_timestamp of { got : int64; last : int64 }
  | Delayed_timestamp of { got : int64; now : int64; window : int64 }
  | Future_timestamp of { got : int64; now : int64; window : int64 }

type t =
  | Trusted
  | Untrusted_state
  | Invalid_response
  | Bad_auth
  | Not_fresh of freshness_reject
  | Fault of { fault_addr : int; fault_code : string }
  | Timed_out of { attempts : int; waited_s : float }

let accepted = function
  | Trusted -> true
  | Untrusted_state | Invalid_response | Bad_auth | Not_fresh _ | Fault _
  | Timed_out _ ->
    false

(* ---- payload-free rejection vocabulary ---- *)

module Reason = struct
  type t =
    | Untrusted_state
    | Invalid_response
    | Bad_auth
    | Not_fresh
    | Fault
    | Timed_out
    | Malformed
    | Rate_limited
    | Queue_full
    | Bad_record

  let all =
    [
      Untrusted_state; Invalid_response; Bad_auth; Not_fresh; Fault; Timed_out;
      Malformed; Rate_limited; Queue_full; Bad_record;
    ]

  let count = List.length all

  let index = function
    | Untrusted_state -> 0
    | Invalid_response -> 1
    | Bad_auth -> 2
    | Not_fresh -> 3
    | Fault -> 4
    | Timed_out -> 5
    | Malformed -> 6
    | Rate_limited -> 7
    | Queue_full -> 8
    | Bad_record -> 9

  let label = function
    | Untrusted_state -> "untrusted_state"
    | Invalid_response -> "invalid_response"
    | Bad_auth -> "bad_auth"
    | Not_fresh -> "not_fresh"
    | Fault -> "fault"
    | Timed_out -> "timed_out"
    | Malformed -> "malformed"
    | Rate_limited -> "rate_limited"
    | Queue_full -> "queue_full"
    | Bad_record -> "bad_record"

  let pp fmt r = Format.pp_print_string fmt (label r)
end

type reason = Reason.t

let reason_of = function
  | Trusted -> None
  | Untrusted_state -> Some Reason.Untrusted_state
  | Invalid_response -> Some Reason.Invalid_response
  | Bad_auth -> Some Reason.Bad_auth
  | Not_fresh _ -> Some Reason.Not_fresh
  | Fault _ -> Some Reason.Fault
  | Timed_out _ -> Some Reason.Timed_out

module Tally = struct
  type t = int array (* indexed by Reason.index *)

  let create () = Array.make Reason.count 0
  let add t r = t.(Reason.index r) <- t.(Reason.index r) + 1
  let get t r = t.(Reason.index r)
  let total t = Array.fold_left ( + ) 0 t

  let to_list t =
    List.filter_map
      (fun r ->
        let n = get t r in
        if n = 0 then None else Some (r, n))
      Reason.all
end

let label = function
  | Trusted -> "trusted"
  | Untrusted_state -> "untrusted_state"
  | Invalid_response -> "invalid_response"
  | Bad_auth -> "bad_auth"
  | Not_fresh _ -> "not_fresh"
  | Fault _ -> "fault"
  | Timed_out _ -> "timed_out"

let freshness_label = function
  | Missing_field -> "missing_field"
  | Wrong_field -> "wrong_field"
  | Replayed_nonce -> "replayed_nonce"
  | Stale_counter _ -> "stale_counter"
  | Stale_or_reordered_timestamp _ -> "stale_or_reordered_timestamp"
  | Delayed_timestamp _ -> "delayed_timestamp"
  | Future_timestamp _ -> "future_timestamp"

let pp_freshness_reject fmt = function
  | Missing_field -> Format.pp_print_string fmt "missing freshness field"
  | Wrong_field -> Format.pp_print_string fmt "freshness field of wrong kind"
  | Replayed_nonce -> Format.pp_print_string fmt "replayed nonce"
  | Stale_counter { got; stored } ->
    Format.fprintf fmt "stale counter (got %Ld, stored %Ld)" got stored
  | Stale_or_reordered_timestamp { got; last } ->
    Format.fprintf fmt "stale/reordered timestamp (got %Ld, last %Ld)" got last
  | Delayed_timestamp { got; now; window } ->
    Format.fprintf fmt "delayed timestamp (got %Ld, prover now %Ld, window %Ld)" got now
      window
  | Future_timestamp { got; now; window } ->
    Format.fprintf fmt "future timestamp (got %Ld, prover now %Ld, window %Ld)" got now
      window

let pp fmt = function
  | Trusted -> Format.pp_print_string fmt "trusted"
  | Untrusted_state -> Format.pp_print_string fmt "untrusted state"
  | Invalid_response -> Format.pp_print_string fmt "invalid response"
  | Bad_auth -> Format.pp_print_string fmt "authentication failed"
  | Not_fresh r -> Format.fprintf fmt "not fresh: %a" pp_freshness_reject r
  | Fault { fault_addr; fault_code } ->
    Format.fprintf fmt "denied access at 0x%06x (context %s)" fault_addr fault_code
  | Timed_out { attempts; waited_s } ->
    Format.fprintf fmt "timed out after %d attempt%s (%.3f s waited)" attempts
      (if attempts = 1 then "" else "s")
      waited_s

(* ---- obs JSON sink ---- *)

let i64 v = Json.Str (Int64.to_string v)

let freshness_to_json r =
  let fields =
    match r with
    | Missing_field | Wrong_field | Replayed_nonce -> []
    | Stale_counter { got; stored } -> [ ("got", i64 got); ("stored", i64 stored) ]
    | Stale_or_reordered_timestamp { got; last } ->
      [ ("got", i64 got); ("last", i64 last) ]
    | Delayed_timestamp { got; now; window } | Future_timestamp { got; now; window } ->
      [ ("got", i64 got); ("now", i64 now); ("window", i64 window) ]
  in
  Json.Obj (("kind", Json.Str (freshness_label r)) :: fields)

let to_json v =
  let fields =
    match v with
    | Trusted | Untrusted_state | Invalid_response | Bad_auth -> []
    | Not_fresh r -> [ ("reject", freshness_to_json r) ]
    | Fault { fault_addr; fault_code } ->
      [ ("addr", Json.Num (float_of_int fault_addr)); ("code", Json.Str fault_code) ]
    | Timed_out { attempts; waited_s } ->
      [ ("attempts", Json.Num (float_of_int attempts)); ("waited_s", Json.Num waited_s) ]
  in
  Json.Obj (("verdict", Json.Str (label v)) :: fields)

let ( let* ) = Option.bind

let member_i64 name j =
  let* f = Json.member name j in
  let* s = Json.as_string f in
  Int64.of_string_opt s

let freshness_of_json j =
  let* kind = Json.member "kind" j in
  let* kind = Json.as_string kind in
  match kind with
  | "missing_field" -> Some Missing_field
  | "wrong_field" -> Some Wrong_field
  | "replayed_nonce" -> Some Replayed_nonce
  | "stale_counter" ->
    let* got = member_i64 "got" j in
    let* stored = member_i64 "stored" j in
    Some (Stale_counter { got; stored })
  | "stale_or_reordered_timestamp" ->
    let* got = member_i64 "got" j in
    let* last = member_i64 "last" j in
    Some (Stale_or_reordered_timestamp { got; last })
  | "delayed_timestamp" | "future_timestamp" ->
    let* got = member_i64 "got" j in
    let* now = member_i64 "now" j in
    let* window = member_i64 "window" j in
    Some
      (if kind = "delayed_timestamp" then Delayed_timestamp { got; now; window }
       else Future_timestamp { got; now; window })
  | _ -> None

let of_json j =
  let* v = Json.member "verdict" j in
  let* v = Json.as_string v in
  match v with
  | "trusted" -> Some Trusted
  | "untrusted_state" -> Some Untrusted_state
  | "invalid_response" -> Some Invalid_response
  | "bad_auth" -> Some Bad_auth
  | "not_fresh" ->
    let* r = Json.member "reject" j in
    let* r = freshness_of_json r in
    Some (Not_fresh r)
  | "fault" ->
    let* addr = Json.member "addr" j in
    let* addr = Json.as_float addr in
    let* code = Json.member "code" j in
    let* code = Json.as_string code in
    Some (Fault { fault_addr = int_of_float addr; fault_code = code })
  | "timed_out" ->
    let* attempts = Json.member "attempts" j in
    let* attempts = Json.as_float attempts in
    let* waited = Json.member "waited_s" j in
    let* waited = Json.as_float waited in
    Some (Timed_out { attempts = int_of_float attempts; waited_s = waited })
  | _ -> None
