(** Wire messages of the attestation protocol.

    A request [attreq] carries a challenge, an optional freshness field
    (§4.2: nonce, counter or timestamp) and an optional authentication
    tag (§4.1: MAC or signature over the request body). A response
    carries the prover's measurement report authenticated under
    K_attest. Serialization is a fixed, unambiguous tag-length-value
    concatenation so MACs have a well-defined byte string to cover. *)

type freshness_field =
  | F_none
  | F_nonce of string
  | F_counter of int64
  | F_timestamp of int64 (* verifier wall-clock, milliseconds *)

type auth_tag =
  | Tag_none
  | Tag_hmac_sha1 of string
  | Tag_aes_cbc_mac of string
  | Tag_speck_cbc_mac of string
  | Tag_ecdsa of string (* fixed-width r||s *)

type attreq = {
  challenge : string;
  freshness : freshness_field;
  tag : auth_tag;
}

type attresp = {
  echo_challenge : string;
  echo_freshness : freshness_field;
  report : string; (* HMAC-SHA1 over prover memory, keyed by K_attest *)
}

type wire =
  | Request of attreq
  | Response of attresp
  | Sync_request of { verifier_time_ms : int64; sync_counter : int64; sync_tag : string }
  | Sync_response of { acked_counter : int64; ack_tag : string }
  | Service_request of {
      command_name : string;
      payload : string;
      service_freshness : freshness_field;
      service_tag : auth_tag;
    }
  | Service_ack of { acked_command : string; ack_report : string }
  | Hs_init of { hs_nonce : string; hs_req : attreq }
      (** Secure-session handshake open: initiator nonce plus a regular
          authenticated attestation request — the session is refused
          unless the prover passes a fresh attestation. *)
  | Hs_resp of { hs_rnonce : string; hs_report : attresp; hs_bind : string }
      (** Responder nonce, the attestation report, and a MAC binding the
          report to the running handshake transcript hash. *)
  | Hs_fin of { fin_tag : string }
      (** Initiator's confirmation MAC over the full transcript hash. *)
  | Record of { rec_seq : int64; rec_ct : string; rec_tag : string }
      (** Encrypt-then-MAC session record: AES-CTR ciphertext under the
          per-direction channel key, CMAC tag over seq + ciphertext. *)

val request_body : challenge:string -> freshness:freshness_field -> string
(** The byte string an authentication tag covers. *)

val response_body : attresp -> string
(** The byte string the response report covers, minus the report itself
    (used when the report doubles as the authenticator). *)

val freshness_bytes : freshness_field -> string

val pp_freshness : Format.formatter -> freshness_field -> unit
val pp_tag : Format.formatter -> auth_tag -> unit
val pp_attreq : Format.formatter -> attreq -> unit
val pp_wire : Format.formatter -> wire -> unit

val wire_to_bytes : wire -> string
(** Full binary serialization (what actually crosses the radio). *)

val wire_of_bytes : string -> wire option
(** Parse a received frame; [None] on anything malformed (truncated,
    bad tags, trailing garbage). Total: never raises. *)

val wire_size : wire -> int
(** Serialized size in bytes (for energy/bandwidth accounting);
    equals [String.length (wire_to_bytes w)]. *)
