(** Attested secure sessions over the impaired channel: an encrypted,
    replay-windowed record layer whose keys exist only because a fresh
    attestation succeeded.

    The one-shot protocol ({!Session.attest_round_r}) answers "is the
    prover healthy {e now}?" — every round pays the full
    request-authentication + freshness + report cost. A secure session
    amortizes that: one handshake carries a regular authenticated
    attestation request, binds the resulting report to the handshake
    transcript hash with a MAC under K_attest, and derives per-direction
    channel keys (HKDF with labeled info strings, the transcript hash as
    salt) — after which attestation rounds stream as encrypt-then-MAC
    records that cost symmetric crypto only.

    {b Two timebases, one rule.} Handshake freshness rides the anchor's
    monotone cell (counter/timestamp — {e cross}-session replay dies
    there); record freshness rides a per-session RFC 6479 sliding window
    over sequence numbers ({e in}-session replay dies there, while
    legitimate frames survive the channel's duplication and reordering).
    Neither mechanism ever consults the other's clock.

    Everything here runs over the session's existing Dolev-Yao channel
    and retry engine; the machine shape mirrors {!Session.round_begin},
    so all three fleet engines drive it to byte-identical transcripts. *)

(** RFC 6479-style sliding anti-replay window: a block-based bitmap over
    the last [bits] sequence numbers below the highest accepted one.
    {!check} is non-mutating — the record layer consults it on the public
    sequence number {e before} verifying the MAC, and only {!accept}s
    (marks) after the tag holds, so forged frames never advance or poison
    the window. *)
module Window : sig
  type t
  type result = Fresh | Replayed | Stale

  val create : ?bits:int -> unit -> t
  (** [bits] (default 128) must be a positive multiple of 32.
      @raise Invalid_argument otherwise. *)

  val capacity : t -> int
  (** Usable window width in sequence numbers (= [bits]). *)

  val max_seq : t -> int64
  (** Highest sequence number accepted so far; [0L] before the first. *)

  val check : t -> int64 -> result
  (** Classify without mutating. Sequence numbers start at 1; [0] and
      anything [capacity] or more below {!max_seq} are [Stale]. *)

  val accept : t -> int64 -> result
  (** {!check}, and on [Fresh] slide the window forward (zeroing the
      blocks it moves over) and mark the number as seen. *)
end

(** {2 Endpoints}

    The responder rides the session's prover (trust anchor, modeled CPU,
    radio energy); the initiator rides its verifier. Both attach handles
    on top of the plain protocol handlers and detach at teardown. *)

type responder
type initiator

(** Per-endpoint event counts, all monotone. [s_bad_record] is the single
    uniform decrypt-side reject — tampered tag, tampered ciphertext and
    garbled inner frames are indistinguishable in every observable
    (counter, trace line, silence on the wire). *)
type stats = {
  mutable s_established : int;
  mutable s_hs_rejected : int;
  mutable s_refused : int;
  mutable s_accepted : int;
  mutable s_bad_record : int;
  mutable s_replayed : int;
  mutable s_stale : int;
}

val listen : ?window_bits:int -> Session.t -> responder
(** Attach the prover-side responder. On [Hs_init] it runs the embedded
    request through the full one-shot anchor path (auth + strict
    freshness — a replayed handshake dies in the anchor's freshness
    cell), answers with report + transcript-bind MAC, and derives its
    channel keys. Valid records are answered via
    {!Code_attest.handle_channel_request_r}; a [Close] record is acked
    and the handle detaches from inside its own receive callback. *)

val connect : ?window_bits:int -> Session.t -> initiator
(** Attach the verifier-side initiator (sends nothing yet — see
    {!handshake_send}). On [Hs_resp] it verifies the transcript-bind MAC,
    then the attestation report: [Trusted] establishes the session (keys
    derived, [Hs_fin] sent); [Untrusted_state] refuses it outright
    (retrying cannot change the prover's memory); anything else is
    dropped as a stale retry artifact. *)

val handshake_send : initiator -> unit
(** (Re)start the handshake with a fresh [Hs_init] — fresh challenge,
    advanced freshness field, fresh nonce. Safe to call again as a
    retransmission; each flight is a new request, never a byte replay. *)

val request_round : initiator -> bool
(** Seal and send one in-session attestation request record; [false]
    unless the session is established. Each call is a fresh challenge
    and a fresh (never reused) record sequence number. *)

val close_begin : initiator -> bool
(** Send the close record; [false] unless established. The responder
    acks and detaches; the ack flips {!close_acked}. *)

val established : initiator -> bool
val refused : initiator -> Verdict.t option
val closed : initiator -> bool
val close_acked : initiator -> bool
val verdict_count : initiator -> int

val session_verdicts : initiator -> (float * Verdict.t) list
(** Every in-session round verdict with its time, chronological. *)

val initiator_stats : initiator -> stats
val responder_stats : responder -> stats

val confirmed : responder -> bool
(** [Hs_fin] verified — or any valid record arrived (implicit key
    confirmation, so a lost [Hs_fin] never wedges the session). *)

val responder_session_up : responder -> bool

val teardown_initiator : initiator -> unit
val teardown_responder : responder -> unit
(** Detach the endpoint's channel handle (idempotent) and drop session
    state. *)

(** {2 The session round machine}

    One "round" = one full session lifecycle: handshake (with per-phase
    retry under the session's {!Retry} policy), [records] streaming
    attestation rounds (each a fresh sealed request, retransmitted on
    its own reply windows), then a best-effort close. Yields
    {!Session.Round_wait} whenever simulated time must pass, exactly
    like {!Session.round_begin}, so the sequential and event-scheduled
    fleet engines execute the identical operation sequence. *)

val round_begin :
  ?policy:Retry.policy ->
  ?records:int ->
  ?window_bits:int ->
  Session.t ->
  Session.step
(** Start the machine ([records] defaults to 4). The verdict is
    [Trusted] when the handshake established and every streamed round
    verified; a refused handshake or a non-trusted in-session verdict
    decides the round immediately; exhausted reply windows yield
    [Timed_out]. [r_attempts] counts {e transmissions} across all
    phases. *)

val run_r :
  ?policy:Retry.policy ->
  ?records:int ->
  ?window_bits:int ->
  Session.t ->
  Session.round
(** {!round_begin} driven synchronously ({!Session.drive_round}). *)
