(** Retransmission policy for attestation rounds over a lossy channel.

    Timeouts grow exponentially and carry jitter so a fleet of provers
    that lost the same burst does not retransmit in lockstep:

    {v timeout(n) = min(base * multiplier^(n-1), cap) * (1 - j/2 + j*u) v}

    with [u] uniform in [0,1). With the {!default} policy (8 attempts)
    and 20% loss in each direction — per-attempt success 0.8 * 0.8 =
    0.64 — a round fails only with probability 0.36^8 ≈ 3e-4, which is
    what makes the ≥99% convergence target of the chaos sweeps hold. *)

type policy = {
  max_attempts : int;  (** total transmissions, including the first *)
  base_timeout_s : float;  (** reply window for attempt 1 *)
  multiplier : float;  (** window growth per attempt, ≥ 1 *)
  max_timeout_s : float;  (** cap on the un-jittered window *)
  jitter : float;  (** full width of the jitter band, in [0, 1] *)
}

val default : policy
(** 8 attempts, 0.5 s base, ×2 growth capped at 30 s, 10% jitter. *)

val no_retry : policy
(** A single attempt — the pre-retry-engine behaviour. *)

val impatient : policy
(** 3 attempts, 0.2 s base — gives up fast; for latency-sensitive
    services that prefer a quick [Timed_out] over a long stall. *)

val validate : policy -> unit
(** @raise Invalid_argument on non-positive attempts/timeouts,
    [multiplier < 1] or [jitter] outside [0, 1]. *)

val timeout_s : policy -> attempt:int -> u:float -> float
(** The jittered reply window for [attempt] (1-based), with [u] the
    uniform draw in [0, 1). *)

val max_total_s : policy -> float
(** Upper bound on the simulated time a round can spend waiting: the sum
    of every attempt's capped window at the jitter ceiling ([u = 1]).
    Schedulers use it to bound event horizons ([Sched.run ~until]) — a
    round scheduled at [t] is guaranteed quiescent by
    [t +. max_total_s policy]. *)
