module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu
module Energy = Ra_mcu.Energy
module Prng = Ra_crypto.Prng

type attack_mix = { p_flood : float; p_replay : float; p_infect : float }

let quiet = { p_flood = 0.0; p_replay = 0.0; p_infect = 0.0 }
let hostile = { p_flood = 0.2; p_replay = 0.3; p_infect = 0.05 }

type config = {
  devices : int;
  days : int;
  sweeps_per_day : int;
  mix : attack_mix;
  seed : int64;
  ram_size : int;
  spec : Architecture.spec;
}

let default_config =
  {
    devices = 8;
    days = 7;
    sweeps_per_day = 4;
    mix = hostile;
    seed = 2016L;
    ram_size = 2048;
    spec =
      {
        (Architecture.with_policy Architecture.trustlite_base Freshness.Counter) with
        Architecture.spec_name = "campaign";
        clock_impl = Device.Clock_none;
      };
  }

type report = {
  device_days : int;
  sweeps : int;
  trusted_verdicts : int;
  compromised_verdicts : int;
  infections : int;
  missed_infections : int;
  floods : int;
  flood_requests_rejected : int;
  flood_requests_attested : int;
  replays : int;
  replays_rejected : int;
  total_energy_joules : float;
  max_device_energy_joules : float;
}

type device_state = {
  session : Session.t;
  mutable infected : bool;
  mutable clean_prefix : string; (* bytes to restore on remediation *)
}

let marker = "CAMPAIGN-IMPLANT"

let validate cfg =
  if cfg.devices <= 0 || cfg.days <= 0 || cfg.sweeps_per_day <= 0 then
    invalid_arg "Campaign.run: dimensions must be positive";
  let ok p = p >= 0.0 && p <= 1.0 in
  if not (ok cfg.mix.p_flood && ok cfg.mix.p_replay && ok cfg.mix.p_infect) then
    invalid_arg "Campaign.run: probabilities must be in [0,1]"

let attestations session =
  (Code_attest.stats (Session.anchor session)).Code_attest.attestations_performed

let rejected session =
  (Code_attest.stats (Session.anchor session)).Code_attest.requests_rejected

let run cfg =
  validate cfg;
  let prng = Prng.create cfg.seed in
  let fleet =
    List.init cfg.devices (fun _ ->
        let session = Session.create ~spec:cfg.spec ~ram_size:cfg.ram_size () in
        { session; infected = false; clean_prefix = "" })
  in
  let totals =
    ref
      {
        device_days = cfg.devices * cfg.days;
        sweeps = 0;
        trusted_verdicts = 0;
        compromised_verdicts = 0;
        infections = 0;
        missed_infections = 0;
        floods = 0;
        flood_requests_rejected = 0;
        flood_requests_attested = 0;
        replays = 0;
        replays_rejected = 0;
        total_energy_joules = 0.0;
        max_device_energy_joules = 0.0;
      }
  in
  let sweep_gap = 86_400.0 /. float_of_int cfg.sweeps_per_day in
  let event_probability p = Prng.float prng 1.0 < p in
  let infect d =
    if not d.infected then begin
      let device = Session.device d.session in
      let base = Device.attested_base device in
      d.clean_prefix <-
        Ra_mcu.Memory.read_bytes (Device.memory device) base (String.length marker);
      Cpu.store_bytes (Device.cpu device) base marker;
      d.infected <- true;
      totals := { !totals with infections = !totals.infections + 1 }
    end
  in
  let remediate d =
    if d.infected then begin
      let device = Session.device d.session in
      Cpu.store_bytes (Device.cpu device) (Device.attested_base device) d.clean_prefix;
      d.infected <- false
    end
  in
  let flood d =
    let before_rej = rejected d.session and before_att = attestations d.session in
    let bogus = Adversary.forge_request d.session ~freshness:Message.F_none () in
    Adversary.flood d.session ~count:100 bogus;
    totals :=
      {
        !totals with
        floods = !totals.floods + 1;
        flood_requests_rejected =
          !totals.flood_requests_rejected + (rejected d.session - before_rej);
        flood_requests_attested =
          !totals.flood_requests_attested + (attestations d.session - before_att);
      }
  in
  let replay d =
    match Adversary.recorded_requests d.session with
    | [] -> ()
    | recorded ->
      let req = List.nth recorded (Prng.int prng (List.length recorded)) in
      let before = attestations d.session in
      Adversary.replay d.session req;
      totals :=
        {
          !totals with
          replays = !totals.replays + 1;
          replays_rejected =
            (!totals.replays_rejected + if attestations d.session = before then 1 else 0);
        }
  in
  let sweep d =
    let verdict = Session.attest_round d.session in
    totals := { !totals with sweeps = !totals.sweeps + 1 };
    (match verdict with
    | Some Verdict.Trusted ->
      totals := { !totals with trusted_verdicts = !totals.trusted_verdicts + 1 };
      if d.infected then
        totals := { !totals with missed_infections = !totals.missed_infections + 1 }
    | Some _ ->
      totals := { !totals with compromised_verdicts = !totals.compromised_verdicts + 1 };
      remediate d (* the operator reflashes flagged devices *)
    | None -> ())
  in
  for _day = 1 to cfg.days do
    List.iter
      (fun d ->
        for _slot = 1 to cfg.sweeps_per_day do
          Session.advance_time d.session ~seconds:sweep_gap;
          if event_probability cfg.mix.p_infect then infect d;
          if event_probability cfg.mix.p_flood then flood d;
          if event_probability cfg.mix.p_replay then replay d;
          sweep d
        done)
      fleet
  done;
  let energies =
    List.map
      (fun d -> Energy.consumed_joules (Device.energy (Session.device d.session)))
      fleet
  in
  {
    !totals with
    total_energy_joules = List.fold_left ( +. ) 0.0 energies;
    max_device_energy_joules = List.fold_left Float.max 0.0 energies;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%d device-days, %d sweeps: %d trusted, %d flagged (%d infections planted, %d \
     missed)@,\
     %d floods: %d requests rejected, %d attested@,\
     %d replays: %d rejected@,\
     energy: %.4f J total, %.4f J worst device@]"
    r.device_days r.sweeps r.trusted_verdicts r.compromised_verdicts r.infections
    r.missed_infections r.floods r.flood_requests_rejected r.flood_requests_attested
    r.replays r.replays_rejected r.total_energy_joules r.max_device_energy_joules
