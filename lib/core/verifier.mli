(** The verifier: issues authenticated, fresh attestation requests and
    validates the prover's reports against a known-good reference image
    of the prover's memory. *)

type freshness_kind = Fk_none | Fk_nonce | Fk_counter | Fk_timestamp

type verdict =
  | Trusted (* report matches the reference state *)
  | Untrusted_state (* authentic-looking response, wrong memory *)
  | Invalid_response (* echo mismatch / malformed *)

type t

val create :
  scheme:Ra_mcu.Timing.auth_scheme option ->
  freshness_kind:freshness_kind ->
  sym_key:string ->
  ?ecdsa_seed:string ->
  time:Ra_net.Simtime.t ->
  reference_image:string ->
  unit ->
  t
(** [sym_key] is the 20-byte K_attest shared with the prover. The ECDSA
    keypair (for [Auth_ecdsa_verify]) is derived deterministically from
    [ecdsa_seed] (default ["verifier"]).
    @raise Invalid_argument on a bad key length. *)

val prover_key_blob : t -> string
(** The blob to provision into the prover's protected key storage. *)

val scheme : t -> Ra_mcu.Timing.auth_scheme option
val next_counter_value : t -> int64
(** The counter the next request will carry (monotonically increasing). *)

val make_request : t -> Message.attreq
(** Build the next request: fresh challenge, freshness field per
    [freshness_kind] (counter incremented, timestamp = current simulated
    time), authenticated per [scheme]. *)

val check_response : t -> request:Message.attreq -> Message.attresp -> verdict

val to_verdict : verdict -> Verdict.t
(** Embed the verifier-local verdict into the unified {!Verdict.t}. *)

val check_response_r : t -> request:Message.attreq -> Message.attresp -> Verdict.t
(** {!check_response} expressed in the unified vocabulary; the retry
    engine and new callers should prefer this. *)

val set_reference_image : t -> string -> unit
(** Update the known-good state (e.g. after an authorized code update). *)

val pp_verdict : Format.formatter -> verdict -> unit
