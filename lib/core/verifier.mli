(** The verifier: issues authenticated, fresh attestation requests and
    validates the prover's reports against a known-good reference image
    of the prover's memory.

    Construction goes through {!Config} + {!of_config}; verdicts come
    back as the unified {!Verdict.t} ({!check_response_r},
    {!check_report_r}). The historical [create]/[check_response] pair
    survives as deprecated shims. *)

type freshness_kind = Fk_none | Fk_nonce | Fk_counter | Fk_timestamp

type verdict =
  | Trusted (* report matches the reference state *)
  | Untrusted_state (* authentic-looking response, wrong memory *)
  | Invalid_response (* echo mismatch / malformed *)

type t

(** How to build a verifier. A plain record (build one literally, or via
    {!Config.v}); {!of_config} validates it. [Server] accepts only this. *)
module Config : sig
  type t = {
    scheme : Ra_mcu.Timing.auth_scheme option;
        (** request-authentication scheme; [None] = unauthenticated *)
    freshness_kind : freshness_kind;
    sym_key : string;  (** 20-byte K_attest shared with the prover *)
    ecdsa_seed : string;
        (** deterministic seed for the [Auth_ecdsa_verify] keypair *)
    time : Ra_net.Simtime.t;
    reference_image : string;  (** known-good prover memory *)
  }

  val v :
    ?scheme:Ra_mcu.Timing.auth_scheme ->
    ?freshness_kind:freshness_kind ->
    ?ecdsa_seed:string ->
    ?reference_image:string ->
    sym_key:string ->
    time:Ra_net.Simtime.t ->
    unit ->
    t
  (** Record builder with the common defaults: no scheme, [Fk_nonce],
      seed ["verifier"], empty reference image. *)
end

val of_config : Config.t -> (t, string) result
(** Validate and build. [Error] (not an exception) on a [sym_key] that is
    not exactly [Auth.k_attest_len] bytes or an empty [ecdsa_seed]. *)

val prover_key_blob : t -> string
(** The blob to provision into the prover's protected key storage. *)

val scheme : t -> Ra_mcu.Timing.auth_scheme option

val next_counter_value : t -> int64
(** The counter the next request will carry (monotonically increasing). *)

val make_request : t -> Message.attreq
(** Build the next request: fresh challenge, freshness field per
    [freshness_kind] (counter incremented, timestamp = current simulated
    time), authenticated per [scheme]. *)

val make_session_request : t -> Message.attreq
(** Build a request for delivery {e inside} an established secure
    session: fresh challenge, but no freshness field and no auth tag —
    the record layer (CMAC + anti-replay window) supplies both, and the
    challenge echo binds each response to its round. *)

val session_nonce : t -> string
(** 16 fresh bytes from the verifier's DRBG — handshake nonces. *)

val check_response_r : t -> request:Message.attreq -> Message.attresp -> Verdict.t
(** The primary closed-loop check: echo fields must match [request], then
    the report MAC decides [Trusted] vs [Untrusted_state]. *)

val check_report_r : t -> Message.attresp -> Verdict.t
(** Open-loop (server-side) check: report MAC only, no echo matching —
    the caller has already bound the response to a request (or accepts
    counter-based freshness instead). Never returns [Invalid_response]. *)

val check_reports_r : t -> Message.attresp array -> Verdict.t array
(** Batch form of {!check_report_r}: the HMAC key context (ipad/opad
    midstates) is derived once per verifier and shared across the batch,
    so per-report cost drops to the report MAC itself. *)

val to_verdict : verdict -> Verdict.t
(** Embed the verifier-local verdict into the unified {!Verdict.t}. *)

val set_reference_image : t -> string -> unit
(** Update the known-good state (e.g. after an authorized code update). *)

val pp_verdict : Format.formatter -> verdict -> unit
