(** Persistent domain pool: spawn helper domains once, reuse them for
    every parallel batch.

    [Domain.spawn] per sweep is what made the old parallel engines lose
    to sequential (BENCH_hotpath.json: 0.89x at 2 domains, 0.76x at 4) —
    a fresh OS thread, minor heap and runtime handshake per domain per
    sweep. Pool helpers park on a condition variable between batches;
    steady-state dispatch is one lock + broadcast.

    A batch runs one thunk on the caller {e and} [helpers] pool domains;
    the thunk distributes work itself (typically by pulling indices from
    a shared [Atomic] counter). One batch at a time per pool — the fleet
    engines' batches are strictly sequential, so there is no job queue. *)

type t

val create : unit -> t
(** An empty pool; helper domains spawn lazily on first {!run}. *)

val shared : unit -> t
(** The process-wide pool the fleet engines share. Its helpers are
    joined automatically at process exit. *)

val max_helpers : int
(** Upper bound on helpers per batch (63): keeps a runaway [~domains]
    argument inside the runtime's 128-domain budget. *)

val run : t -> helpers:int -> (unit -> unit) -> unit
(** [run t ~helpers job] executes [job ()] on the calling domain and on
    [helpers] pool domains (clamped to [0 .. max_helpers]; [0] degrades
    to a plain call), returning once all participants finish. The first
    exception raised by any participant is re-raised on the caller
    (caller's own exception wins), after all participants have quiesced.
    @raise Invalid_argument when the pool is already running a batch. *)

val size : t -> int
(** Helper domains currently alive (monotone; they persist until
    {!shutdown}). *)

val shutdown : t -> unit
(** Stop and join every helper. Idempotent; the pool can spawn fresh
    helpers afterwards. Called automatically at exit for {!shared}. *)
