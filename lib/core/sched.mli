(** Deterministic discrete-event scheduler: one shared virtual timeline
    for an entire fleet.

    Events live in a binary min-heap keyed on [(time, seq)] where [seq]
    is insertion order — ties fire in the order they were scheduled, so
    a run is a pure function of the schedule, never of hash order or
    wall-clock. {!step} pops the earliest event, jumps the shared clock
    to it and runs it; events scheduled into the past are clamped to
    [now] (the timeline is monotone by construction).

    The intended shape (used by [Fleet ~engine:`Events]): each session
    keeps its private {!Ra_net.Simtime.t} and runs its round machine
    ({!Session.round_begin}) inside events; every [Round_wait] becomes a
    new event at [member_now + wait_s]. Member clocks run {e ahead} of
    the shared timeline by the un-scheduled work their events performed
    (anchor cycles, pump deliveries); [ra_sched_lag_seconds] measures
    that lead when {!observe_lag} is called at fire time.

    Metrics: [ra_sched_events_total{kind=scheduled|fired}],
    [ra_sched_queue_depth] (gauge, post-pop depth),
    [ra_sched_lag_seconds] (histogram, seconds). With a trace attached,
    every fire also emits a [sched.fire] causal instant (cat ["sched"])
    — a no-op unless that trace has a tracer installed. *)

type t

type metrics
(** A metrics sink: where the scheduler reports scheduled/fired counts,
    queue depth and member lag. *)

val global_metrics : metrics
(** The default sink — the precreated atomic handles on the shared
    registry ([ra_sched_events_total], [ra_sched_queue_depth],
    [ra_sched_lag_seconds]). *)

val arena_metrics : Ra_obs.Arena.t -> metrics
(** A sink buffering into [arena] with no atomics: the per-event hot
    path touches only domain-local memory, and the same metric families
    receive one bulk merge when the arena is flushed. One scheduler per
    arena sink; flush after the owning domain quiesces. *)

val create :
  ?start:float ->
  ?trace:Ra_net.Trace.t ->
  ?metrics:metrics ->
  ?track:Ra_obs.Profiler.Track.t ->
  unit ->
  t
(** Empty queue with the shared clock at [start] (default 0), reporting
    into [metrics] (default {!global_metrics}). With [track], every
    schedule/fire also appends a [(sim_time, depth)] point to it —
    the raw series behind a Perfetto [ra_sched_queue_depth] counter
    track; per-shard tracks merge deterministically via
    {!Ra_obs.Profiler.Track.merge}. *)

val now : t -> float
(** The shared virtual clock: the time of the most recently fired event. *)

val at : t -> at:float -> (unit -> unit) -> unit
(** Schedule a thunk at an absolute time, clamped to [now] if in the
    past. O(log n). *)

val after : t -> delay:float -> (unit -> unit) -> unit
(** [at t ~at:(now t +. delay)].
    @raise Invalid_argument on a negative delay. *)

val next_at : t -> float option
(** Fire time of the earliest pending event. *)

val pending : t -> int
(** Events currently queued. *)

val fired : t -> int
(** Events fired over the scheduler's lifetime. *)

val step : t -> bool
(** Fire the earliest event (advancing [now] to it); [false] when the
    queue is empty. Events the thunk schedules are eligible
    immediately. *)

val run : ?until:float -> t -> int
(** Fire events in order until the queue is empty, or — with [until] —
    until the earliest pending event lies strictly beyond the horizon.
    Returns the number of events fired. [Retry.max_total_s] bounds how
    far past its scheduling time a round can still have events, giving a
    natural horizon for partial runs. *)

val observe_lag : t -> member_now:float -> unit
(** Record [member_now - now t] (clamped at 0) into
    [ra_sched_lag_seconds] — how far a member's private clock leads the
    shared timeline. *)
