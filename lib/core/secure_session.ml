module Simtime = Ra_net.Simtime
module Trace = Ra_net.Trace
module Channel = Ra_net.Channel
module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu
module C = Ra_crypto

(* ---- RFC 6479-style sliding anti-replay window ----------------------- *)

module Window = struct
  (* Block-based bitmap (RFC 6479): one extra 32-bit block beyond the
     requested width, because the block being cleared while the window
     slides is never usable. Capacity is therefore exactly [bits]. *)
  type t = {
    words : int array; (* 32-bit blocks, indexed by seq / 32 mod blocks *)
    mutable w_max : int64; (* highest accepted sequence number; 0 = none *)
  }

  type result = Fresh | Replayed | Stale

  let word_bits = 32

  let create ?(bits = 128) () =
    if bits < word_bits || bits mod word_bits <> 0 then
      invalid_arg "Secure_session.Window.create: bits must be a positive multiple of 32";
    { words = Array.make ((bits / word_bits) + 1) 0; w_max = 0L }

  let capacity t = (Array.length t.words - 1) * word_bits
  let max_seq t = t.w_max

  let index t seq =
    let seq = Int64.to_int seq in
    (seq / word_bits mod Array.length t.words, seq mod word_bits)

  let test t seq =
    let block, bit = index t seq in
    t.words.(block) land (1 lsl bit) <> 0

  let mark t seq =
    let block, bit = index t seq in
    t.words.(block) <- t.words.(block) lor (1 lsl bit)

  (* Non-mutating: the record layer consults the window {e before} the
     MAC check (on the public sequence number — no secret is touched) and
     only marks after the tag verifies, so a forged frame can never
     advance or poison the window. *)
  let check t seq =
    if Int64.compare seq 1L < 0 then Stale (* sequence numbers start at 1 *)
    else if Int64.compare seq t.w_max > 0 then Fresh
    else
      let diff = Int64.to_int (Int64.sub t.w_max seq) in
      if diff >= capacity t then Stale
      else if test t seq then Replayed
      else Fresh

  let accept t seq =
    match check t seq with
    | (Replayed | Stale) as r -> r
    | Fresh ->
      if Int64.compare seq t.w_max > 0 then begin
        (* slide forward: zero every block the window moves over *)
        let cur = Int64.to_int t.w_max / word_bits in
        let tgt = Int64.to_int seq / word_bits in
        let blocks = Array.length t.words in
        let span = min (tgt - cur) blocks in
        for b = cur + 1 to cur + span do
          t.words.(b mod blocks) <- 0
        done;
        t.w_max <- seq
      end;
      mark t seq;
      Fresh
end

(* ---- transcript hash, binding MACs, key schedule ---------------------- *)

let u64_be v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (7 - i))) 0xFFL)))

let lv s = u64_be (Int64.of_int (String.length s)) ^ s

(* The transcript hash covers the exact frame bytes each side saw, so a
   man-in-the-middle that rewrites either handshake flight desynchronizes
   the two hashes and every binding MAC derived from them. *)
let transcript_hash ~init ~resp =
  C.Sha256.digest ("ra/ss1 transcript" ^ lv init ^ lv resp)

let bind_tag ~sym_key ~th = C.Hmac.mac C.Hmac.sha256 ~key:sym_key ("ra/ss1 bind" ^ th)
let fin_tag_of ~fin_key ~th = C.Hmac.mac C.Hmac.sha256 ~key:fin_key ("ra/ss1 fin" ^ th)

type keys = { k_enc : C.Block_mode.cipher; k_mac : C.Cmac.key }

let dir_keys ~prk dir =
  let material info = C.Hkdf.expand ~prk ~info ~length:16 in
  {
    k_enc = C.Block_mode.aes (C.Aes.expand (material ("ra/ss1 " ^ dir ^ " enc")));
    k_mac = C.Cmac.derive (C.Aes.expand (material ("ra/ss1 " ^ dir ^ " mac")));
  }

type peer = {
  p_send : keys;
  p_recv : keys;
  p_fin_key : string;
  p_th : string; (* full transcript hash, both flights *)
  mutable p_seq : int64; (* last sequence number sent *)
  p_window : Window.t; (* receive-side anti-replay window *)
}

(* One HKDF extract over (transcript hash as salt, K_attest as IKM), then
   a labeled expand per direction and per use — initiator-to-responder
   and responder-to-initiator never share a key, so a record can never be
   reflected back to its sender. *)
let derive_peer ~sym_key ~th ~bits role =
  let prk = C.Hkdf.extract ~salt:th ~ikm:sym_key () in
  let i2r = dir_keys ~prk "i2r" and r2i = dir_keys ~prk "r2i" in
  let fin_key = C.Hkdf.expand ~prk ~info:"ra/ss1 fin key" ~length:16 in
  let p_send, p_recv =
    match role with `Initiator -> (i2r, r2i) | `Responder -> (r2i, i2r)
  in
  { p_send; p_recv; p_fin_key = fin_key; p_th = th; p_seq = 0L;
    p_window = Window.create ~bits () }

(* ---- record layer ----------------------------------------------------- *)

let rec_mac_body ~seq ct = "ra/ss1 rec" ^ u64_be seq ^ lv ct

let seal peer inner =
  let seq = Int64.add peer.p_seq 1L in
  peer.p_seq <- seq;
  (* CTR nonce = big-endian sequence number; sequences are unique per
     direction and directions have distinct keys, so nonces never repeat
     under one key *)
  let ct = C.Block_mode.ctr_crypt peer.p_send.k_enc ~nonce:(u64_be seq) inner in
  let tag = C.Cmac.mac peer.p_send.k_mac (rec_mac_body ~seq ct) in
  Message.Record { rec_seq = seq; rec_ct = ct; rec_tag = tag }

(* inner plaintext framing: one discriminator byte *)
let inner_msg w = "M" ^ Message.wire_to_bytes w
let inner_close = "C"
let inner_close_ack = "A"

type opened = Msg of Message.wire | Close | Close_ack
type open_error = Bad_record | Replayed | Stale

(* Encrypt-then-MAC open. Order is fixed: window check on the public
   sequence number (no crypto touched for replays), CMAC verify {e before}
   any decryption, window mark only after the tag holds, then CTR
   decrypt — which is total, there is no padding to fail on — and the
   inner parse. Every failure past the window check collapses into the
   single [Bad_record]: a tampered tag, a tampered ciphertext and a
   garbled inner frame are indistinguishable to anyone watching the
   prover, so the reject channel has no padding-oracle shape. *)
let open_record peer ~seq ~ct ~tag =
  match Window.check peer.p_window seq with
  | Window.Replayed -> Error Replayed
  | Window.Stale -> Error Stale
  | Window.Fresh ->
    if not (C.Cmac.verify peer.p_recv.k_mac ~msg:(rec_mac_body ~seq ct) ~tag) then
      Error Bad_record
    else begin
      ignore (Window.accept peer.p_window seq);
      let pt = C.Block_mode.ctr_crypt peer.p_recv.k_enc ~nonce:(u64_be seq) ct in
      if String.length pt = 0 then Error Bad_record
      else
        match pt.[0] with
        | 'M' -> (
          match Message.wire_of_bytes (String.sub pt 1 (String.length pt - 1)) with
          | Some w -> Ok (Msg w)
          | None -> Error Bad_record)
        | 'C' when String.length pt = 1 -> Ok Close
        | 'A' when String.length pt = 1 -> Ok Close_ack
        | _ -> Error Bad_record
    end

(* ---- metrics (handles precreated at module init) ---------------------- *)

module M = struct
  open Ra_obs.Registry

  let hs result = Counter.get ~labels:[ ("result", result) ] "ra_secure_handshakes_total"
  let hs_established = hs "established"
  let hs_refused = hs "refused"
  let hs_rejected = hs "rejected"

  let record result = Counter.get ~labels:[ ("result", result) ] "ra_secure_records_total"
  let rec_accepted = record "accepted"
  let rec_bad = record "bad_record"
  let rec_replayed = record "replayed"
  let rec_stale = record "stale"

  let round v = Counter.get ~labels:[ ("verdict", v) ] "ra_secure_rounds_total"

  let round_handles =
    List.map
      (fun v -> (v, round v))
      [
        "trusted";
        "untrusted_state";
        "invalid_response";
        "bad_auth";
        "not_fresh";
        "fault";
        "timed_out";
      ]

  let count_round verdict =
    Counter.inc (List.assoc (Verdict.label verdict) round_handles)
end

type stats = {
  mutable s_established : int;
  mutable s_hs_rejected : int; (* bind / report / fin verification failures *)
  mutable s_refused : int; (* handshake report said untrusted: session refused *)
  mutable s_accepted : int; (* records opened successfully *)
  mutable s_bad_record : int; (* the uniform decrypt-side reject *)
  mutable s_replayed : int; (* window hit: sequence number already seen *)
  mutable s_stale : int; (* sequence number fell off the window's left edge *)
}

let stats_zero () =
  { s_established = 0; s_hs_rejected = 0; s_refused = 0; s_accepted = 0;
    s_bad_record = 0; s_replayed = 0; s_stale = 0 }

(* The one place a record rejection is turned into observable behavior;
   both endpoints route through it, so tampered-tag and tampered-payload
   rejects are literally the same code path. *)
let count_open_error stats trace = function
  | Bad_record ->
    stats.s_bad_record <- stats.s_bad_record + 1;
    Ra_obs.Registry.Counter.inc M.rec_bad;
    Trace.record trace "secure: record rejected";
    Trace.causal_instant trace ~cat:"secure"
      ~labels:[ ("reason", Verdict.Reason.label Verdict.Reason.Bad_record) ]
      "secure.record_reject"
  | Replayed ->
    stats.s_replayed <- stats.s_replayed + 1;
    Ra_obs.Registry.Counter.inc M.rec_replayed;
    Trace.record trace "secure: record replayed (window hit)";
    Trace.causal_instant trace ~cat:"secure"
      ~labels:[ ("reason", "replayed") ]
      "secure.record_reject"
  | Stale ->
    stats.s_stale <- stats.s_stale + 1;
    Ra_obs.Registry.Counter.inc M.rec_stale;
    Trace.record trace "secure: record stale (outside window)";
    Trace.causal_instant trace ~cat:"secure"
      ~labels:[ ("reason", "stale") ]
      "secure.record_reject"

(* ---- responder (prover side) ------------------------------------------ *)

type responder = {
  r_session : Session.t;
  r_bits : int;
  r_stats : stats;
  r_drbg : C.Drbg.t;
  mutable r_handle : string Channel.Endpoint.handle option;
  mutable r_peer : peer option;
  mutable r_confirmed : bool; (* Hs_fin verified (records also confirm) *)
  mutable r_closed : bool;
}

let prover_radio session ~bytes =
  Ra_mcu.Energy.consume_radio (Device.energy (Session.device session)) ~bytes

let responder_send r wire =
  let bytes = Message.wire_to_bytes wire in
  prover_radio r.r_session ~bytes:(String.length bytes);
  Channel.send (Session.channel r.r_session) ~src:Channel.Prover_side bytes

(* Run the trust anchor under the modeled CPU and keep the shared wall
   clock in lock-step with the consumed cycles — same discipline as the
   plain prover handler in [Session.create]. *)
let anchored session name f =
  let trace = Session.trace session in
  Trace.causal_span trace ~cat:"secure" name (fun () ->
      let cpu = Device.cpu (Session.device session) in
      let before = Cpu.elapsed_seconds cpu in
      let span = Ra_obs.Span.enter (Trace.spans trace) name in
      let result = f () in
      let spent = Cpu.elapsed_seconds cpu -. before in
      Simtime.advance_by (Session.time session) spent;
      let result_label =
        match result with Ok _ -> "attested" | Error v -> Verdict.label v
      in
      Ra_obs.Span.exit (Trace.spans trace) ~labels:[ ("result", result_label) ] span;
      result)

let responder_stats r = r.r_stats
let confirmed r = r.r_confirmed
let responder_session_up r = r.r_peer <> None

let teardown_responder r =
  (match r.r_handle with Some h -> Channel.Endpoint.detach h | None -> ());
  r.r_handle <- None;
  r.r_peer <- None

let listen ?(window_bits = 128) session =
  let r =
    {
      r_session = session;
      r_bits = window_bits;
      r_stats = stats_zero ();
      (* seeded from the shared key: deterministic under seed, and fleet
         members diverge through their impairment seeds, not here *)
      r_drbg =
        C.Drbg.create ~personalization:"secure-session responder"
          ~seed:(Session.sym_key session) ();
      r_handle = None;
      r_peer = None;
      r_confirmed = false;
      r_closed = false;
    }
  in
  let trace = Session.trace session in
  let sym_key = Session.sym_key session in
  let handle =
    Channel.Endpoint.attach (Session.channel session) Channel.Prover_side (fun frame ->
        prover_radio session ~bytes:(String.length frame);
        match Message.wire_of_bytes frame with
        | None -> Trace.record trace "secure: malformed frame dropped"
        | Some (Message.Hs_init { hs_nonce = _; hs_req }) -> (
          (* A fresh handshake, or an initiator retry. The embedded
             request goes through the {e full} one-shot anchor path —
             request authentication plus strict freshness — so a replayed
             Hs_init dies in the anchor's freshness cell, before any
             session state exists. *)
          match
            anchored session "secure.hs.attest" (fun () ->
                Code_attest.handle_request_r (Session.anchor session) hs_req)
          with
          | Error reject ->
            Trace.recordf trace "secure: handshake attestation rejected: %a"
              Verdict.pp reject
          | Ok report ->
            let hs_rnonce = C.Drbg.generate r.r_drbg 16 in
            (* bind covers the response core (report + nonce) so the
               initiator authenticates the report before trusting it;
               the full hash — bind included — keys the channel *)
            let core =
              Message.wire_to_bytes
                (Message.Hs_resp { hs_rnonce; hs_report = report; hs_bind = "" })
            in
            let th_core = transcript_hash ~init:frame ~resp:core in
            let hs_bind = bind_tag ~sym_key ~th:th_core in
            let full = Message.Hs_resp { hs_rnonce; hs_report = report; hs_bind } in
            let th = transcript_hash ~init:frame ~resp:(Message.wire_to_bytes full) in
            r.r_peer <- Some (derive_peer ~sym_key ~th ~bits:r.r_bits `Responder);
            r.r_confirmed <- false;
            r.r_closed <- false;
            Trace.record trace "secure: handshake response sent";
            responder_send r full)
        | Some (Message.Hs_fin { fin_tag }) -> (
          match r.r_peer with
          | None -> Trace.record trace "secure: unexpected hs_fin ignored"
          | Some peer ->
            if C.Hexutil.equal_ct (fin_tag_of ~fin_key:peer.p_fin_key ~th:peer.p_th) fin_tag
            then begin
              r.r_confirmed <- true;
              Trace.record trace "secure: handshake confirmed"
            end
            else begin
              r.r_stats.s_hs_rejected <- r.r_stats.s_hs_rejected + 1;
              Ra_obs.Registry.Counter.inc M.hs_rejected;
              r.r_peer <- None;
              Trace.record trace "secure: handshake confirmation rejected"
            end)
        | Some (Message.Record { rec_seq; rec_ct; rec_tag }) -> (
          match r.r_peer with
          | None -> Trace.record trace "secure: record outside session dropped"
          | Some peer -> (
            match open_record peer ~seq:rec_seq ~ct:rec_ct ~tag:rec_tag with
            | Error e -> count_open_error r.r_stats trace e
            | Ok opened -> (
              r.r_stats.s_accepted <- r.r_stats.s_accepted + 1;
              Ra_obs.Registry.Counter.inc M.rec_accepted;
              (* a valid record is implicit key confirmation: a lost
                 Hs_fin never wedges the session *)
              r.r_confirmed <- true;
              match opened with
              | Msg (Message.Request req) -> (
                match
                  anchored session "secure.record.attest" (fun () ->
                      Code_attest.handle_channel_request_r (Session.anchor session) req)
                with
                | Ok resp ->
                  responder_send r (seal peer (inner_msg (Message.Response resp)))
                | Error reject ->
                  Trace.recordf trace "secure: in-session attestation rejected: %a"
                    Verdict.pp reject)
              | Close ->
                (* acknowledge, then detach — from {e inside} this very
                   receive callback: the endpoint re-entrancy contract
                   (frame never re-dispatched, later frames fall through
                   to the handler below) is what makes this teardown
                   shape safe *)
                responder_send r (seal peer inner_close_ack);
                r.r_closed <- true;
                r.r_peer <- None;
                (match r.r_handle with
                | Some h -> Channel.Endpoint.detach h
                | None -> ());
                r.r_handle <- None;
                Trace.record trace "secure: session closed by initiator"
              | Close_ack -> Trace.record trace "secure: unexpected close-ack ignored"
              | Msg _ -> Trace.record trace "secure: unexpected inner message ignored")))
        | Some
            ( Message.Request _ | Message.Response _ | Message.Sync_request _
            | Message.Sync_response _ | Message.Service_request _
            | Message.Service_ack _ | Message.Hs_resp _ ) ->
          Trace.record trace "secure: non-session frame ignored (responder)")
  in
  r.r_handle <- Some handle;
  r

(* ---- initiator (verifier side) ---------------------------------------- *)

type istate =
  | Connecting of { init_frame : string; hs_req : Message.attreq }
  | Established of peer
  | Refused of Verdict.t (* report failed: fail fast, no retry *)
  | Closed

type initiator = {
  i_session : Session.t;
  i_bits : int;
  i_stats : stats;
  i_pending : (string, Message.attreq) Hashtbl.t; (* challenge -> request *)
  mutable i_handle : string Channel.Endpoint.handle option;
  mutable i_state : istate;
  mutable i_verdicts : (float * Verdict.t) list; (* newest first *)
  mutable i_verdict_count : int;
  mutable i_close_acked : bool;
}

let initiator_stats i = i.i_stats
let verdict_count i = i.i_verdict_count
let session_verdicts i = List.rev i.i_verdicts
let established i = match i.i_state with Established _ -> true | _ -> false
let refused i = match i.i_state with Refused v -> Some v | _ -> None
let closed i = match i.i_state with Closed -> true | _ -> false
let close_acked i = i.i_close_acked

let handshake_send i =
  let verifier = Session.verifier i.i_session in
  let hs_req = Verifier.make_request verifier in
  let hs_nonce = Verifier.session_nonce verifier in
  let frame = Message.wire_to_bytes (Message.Hs_init { hs_nonce; hs_req }) in
  i.i_state <- Connecting { init_frame = frame; hs_req };
  Trace.record (Session.trace i.i_session) "secure: handshake initiated";
  Channel.send (Session.channel i.i_session) ~src:Channel.Verifier_side frame

let teardown_initiator i =
  (match i.i_handle with Some h -> Channel.Endpoint.detach h | None -> ());
  i.i_handle <- None;
  match i.i_state with
  | Established _ | Connecting _ -> i.i_state <- Closed
  | Refused _ | Closed -> ()

let connect ?(window_bits = 128) session =
  let i =
    {
      i_session = session;
      i_bits = window_bits;
      i_stats = stats_zero ();
      i_pending = Hashtbl.create 8;
      i_handle = None;
      i_state = Closed;
      i_verdicts = [];
      i_verdict_count = 0;
      i_close_acked = false;
    }
  in
  let trace = Session.trace session in
  let sym_key = Session.sym_key session in
  let verifier = Session.verifier session in
  let handle =
    Channel.Endpoint.attach (Session.channel session) Channel.Verifier_side (fun frame ->
        match Message.wire_of_bytes frame with
        | None -> Trace.record trace "secure: malformed frame dropped (initiator)"
        | Some (Message.Hs_resp { hs_rnonce; hs_report; hs_bind }) -> (
          match i.i_state with
          | Connecting { init_frame; hs_req } ->
            (* recompute the bind over {e our} view of the transcript: a
               substituted or cross-attempt Hs_init/Hs_resp desyncs the
               hashes and dies here *)
            let core =
              Message.wire_to_bytes
                (Message.Hs_resp { hs_rnonce; hs_report; hs_bind = "" })
            in
            let th_core = transcript_hash ~init:init_frame ~resp:core in
            if not (C.Hexutil.equal_ct (bind_tag ~sym_key ~th:th_core) hs_bind) then begin
              i.i_stats.s_hs_rejected <- i.i_stats.s_hs_rejected + 1;
              Ra_obs.Registry.Counter.inc M.hs_rejected;
              Trace.record trace "secure: handshake bind rejected"
            end
            else (
              match Verifier.check_response_r verifier ~request:hs_req hs_report with
              | Verdict.Trusted ->
                let th = transcript_hash ~init:init_frame ~resp:frame in
                let peer = derive_peer ~sym_key ~th ~bits:i.i_bits `Initiator in
                i.i_state <- Established peer;
                i.i_stats.s_established <- i.i_stats.s_established + 1;
                Ra_obs.Registry.Counter.inc M.hs_established;
                Trace.record trace "secure: session established";
                Trace.causal_instant trace ~cat:"secure" "secure.established";
                Channel.send (Session.channel session) ~src:Channel.Verifier_side
                  (Message.wire_to_bytes
                     (Message.Hs_fin
                        { fin_tag = fin_tag_of ~fin_key:peer.p_fin_key ~th }))
              | Verdict.Untrusted_state ->
                (* authentic report, wrong memory: retrying cannot help,
                   so the session is refused outright *)
                i.i_state <- Refused Verdict.Untrusted_state;
                i.i_stats.s_refused <- i.i_stats.s_refused + 1;
                Ra_obs.Registry.Counter.inc M.hs_refused;
                Trace.record trace "secure: session refused (untrusted report)"
              | other ->
                (* echo mismatch — usually a response to an earlier
                   retry attempt; reject and keep waiting *)
                i.i_stats.s_hs_rejected <- i.i_stats.s_hs_rejected + 1;
                Ra_obs.Registry.Counter.inc M.hs_rejected;
                Trace.recordf trace "secure: handshake report rejected: %a"
                  Verdict.pp other)
          | Established _ | Refused _ | Closed ->
            Trace.record trace "secure: unexpected hs_resp ignored")
        | Some (Message.Record { rec_seq; rec_ct; rec_tag }) -> (
          match i.i_state with
          | Established peer -> (
            match open_record peer ~seq:rec_seq ~ct:rec_ct ~tag:rec_tag with
            | Error e -> count_open_error i.i_stats trace e
            | Ok opened -> (
              i.i_stats.s_accepted <- i.i_stats.s_accepted + 1;
              Ra_obs.Registry.Counter.inc M.rec_accepted;
              match opened with
              | Msg (Message.Response resp) -> (
                match Hashtbl.find_opt i.i_pending resp.Message.echo_challenge with
                | None ->
                  Trace.record trace "secure: unsolicited session response ignored"
                | Some req ->
                  Hashtbl.remove i.i_pending resp.Message.echo_challenge;
                  let verdict =
                    Trace.causal_span trace ~cat:"secure" "secure.check" (fun () ->
                        Verifier.check_response_r verifier ~request:req resp)
                  in
                  i.i_verdicts <-
                    (Simtime.now (Session.time session), verdict) :: i.i_verdicts;
                  i.i_verdict_count <- i.i_verdict_count + 1;
                  Trace.causal_instant trace ~cat:"secure"
                    ~labels:[ ("verdict", Verdict.label verdict) ]
                    "secure.verdict";
                  Trace.recordf trace "secure: verdict %a" Verdict.pp verdict)
              | Close_ack ->
                i.i_close_acked <- true;
                i.i_state <- Closed;
                (match i.i_handle with
                | Some h -> Channel.Endpoint.detach h
                | None -> ());
                i.i_handle <- None;
                Trace.record trace "secure: close acknowledged"
              | Close | Msg _ ->
                Trace.record trace "secure: unexpected inner message ignored"))
          | Connecting _ | Refused _ | Closed ->
            Trace.record trace "secure: record outside session dropped (initiator)")
        | Some
            ( Message.Request _ | Message.Response _ | Message.Sync_request _
            | Message.Sync_response _ | Message.Service_request _
            | Message.Service_ack _ | Message.Hs_init _ | Message.Hs_fin _ ) ->
          Trace.record trace "secure: non-session frame ignored (initiator)")
  in
  i.i_handle <- Some handle;
  i

let request_round i =
  match i.i_state with
  | Established peer ->
    let req = Verifier.make_session_request (Session.verifier i.i_session) in
    Hashtbl.replace i.i_pending req.Message.challenge req;
    Channel.send (Session.channel i.i_session) ~src:Channel.Verifier_side
      (Message.wire_to_bytes (seal peer (inner_msg (Message.Request req))));
    true
  | Connecting _ | Refused _ | Closed -> false

let close_begin i =
  match i.i_state with
  | Established peer ->
    Channel.send (Session.channel i.i_session) ~src:Channel.Verifier_side
      (Message.wire_to_bytes (seal peer inner_close));
    true
  | Connecting _ | Refused _ | Closed -> false

(* ---- the session round machine ---------------------------------------- *)

(* Fixed jitter seed, one stream per machine — like [Session]'s retry
   PRNG, per-member divergence comes from impairment seeds. *)
let jitter_seed = 0x5EC5E551L

let round_begin ?(policy = Retry.default) ?(records = 4) ?(window_bits = 128) t =
  Retry.validate policy;
  if records < 0 then invalid_arg "Secure_session.round_begin: records < 0";
  Session.set_in_flight t true;
  let time = Session.time t in
  let trace = Session.trace t in
  let started = Simtime.now time in
  let tracer = Trace.tracer trace in
  let prng = C.Prng.create jitter_seed in
  let total_sends = ref 0 in
  let responder = listen ~window_bits t in
  let initiator = connect ~window_bits t in
  let cspan ?(labels = []) name =
    Option.map (fun tr -> Ra_obs.Trace.span tr ~cat:"secure" ~labels name) tracer
  in
  let cfinish ?labels sp =
    match (tracer, sp) with
    | Some tr, Some sp -> Ra_obs.Trace.finish_span tr ?labels sp
    | _ -> ()
  in
  Option.iter (fun tr -> ignore (Ra_obs.Trace.begin_round tr)) tracer;
  let root_sp = Ra_obs.Span.enter (Trace.spans trace) "secure.session" in
  let round_done verdict =
    teardown_initiator initiator;
    teardown_responder responder;
    Session.set_in_flight t false;
    M.count_round verdict;
    (match tracer with
    | Some tr ->
      Trace.causal_instant trace ~cat:"verdict"
        ~labels:[ ("verdict", Verdict.label verdict) ]
        "verdict";
      Ra_obs.Trace.end_round tr ~verdict:(Verdict.label verdict)
        ~attempts:!total_sends
    | None -> ());
    let r =
      {
        Session.r_verdict = verdict;
        r_attempts = !total_sends;
        r_elapsed_s = Simtime.now time -. started;
      }
    in
    Ra_obs.Span.exit (Trace.spans trace) root_sp;
    Session.Round_done r
  in
  (* Pump both directions until the phase condition holds or the wire
     goes quiet — same loop (and the same pathological-impairment step
     cap) as the plain retry engine. *)
  let pump done_ =
    let channel = Session.channel t in
    let rec go steps =
      if not (done_ ()) then begin
        let fwd = Channel.forward_next channel ~dst:Channel.Prover_side in
        let back = Channel.forward_next channel ~dst:Channel.Verifier_side in
        if (not (done_ ())) && (fwd || back) then
          if steps < 100_000 then go (steps + 1)
          else Trace.record trace "secure: pump step cap hit, backing off"
      end
    in
    go 0
  in
  (* One retried phase of the machine. [send] must put a {e fresh} flight
     on the wire (new challenge / new record sequence — never a
     byte-identical retransmission); the caller performs the first send
     itself before calling, so attempt [n]'s window opens right after
     transmission [n]. *)
  let phase ~name ~send ~done_ ~fail ~next =
    let rec attempt n =
      let attempt_sp =
        cspan
          ~labels:[ ("attempt", string_of_int n); ("phase", name) ]
          "secure.attempt"
      in
      let window = Retry.timeout_s policy ~attempt:n ~u:(C.Prng.float prng 1.0) in
      let deadline = Simtime.deadline time ~after:window in
      pump done_;
      if done_ () then begin
        cfinish ~labels:[ ("outcome", "done") ] attempt_sp;
        next ()
      end
      else begin
        let rest = Simtime.remaining time deadline in
        if rest > 0.0 then
          Session.Round_wait
            {
              wait_s = rest;
              resume =
                (fun () ->
                  Session.advance_time t ~seconds:rest;
                  if done_ () then begin
                    cfinish ~labels:[ ("outcome", "done") ] attempt_sp;
                    next ()
                  end
                  else attempt_over n attempt_sp);
            }
        else attempt_over n attempt_sp
      end
    and attempt_over n attempt_sp =
      cfinish ~labels:[ ("outcome", "timeout") ] attempt_sp;
      if n < policy.Retry.max_attempts then begin
        Trace.recordf trace "secure: %s attempt %d timed out, retransmitting" name n;
        incr total_sends;
        send ();
        attempt (n + 1)
      end
      else begin
        Trace.recordf trace "secure: %s gave up after %d attempts" name n;
        fail n
      end
    in
    attempt 1
  in
  let start_phase ~name ~send ~done_ ~fail ~next =
    incr total_sends;
    send ();
    phase ~name ~send ~done_ ~fail ~next
  in
  let timed_out _n =
    round_done
      (Verdict.Timed_out
         { attempts = !total_sends; waited_s = Simtime.now time -. started })
  in
  (* close is best-effort: one flight, pump, done — a lost close frame
     must not wedge a session whose verdict is already decided, and
     [round_done] force-detaches both endpoints regardless *)
  let close_phase verdict =
    if close_begin initiator then begin
      incr total_sends;
      pump (fun () -> initiator.i_close_acked)
    end;
    round_done verdict
  in
  let rec stream r =
    if r > records then close_phase Verdict.Trusted
    else begin
      let before = initiator.i_verdict_count in
      start_phase
        ~name:(Printf.sprintf "record %d/%d" r records)
        ~send:(fun () -> ignore (request_round initiator))
        ~done_:(fun () -> initiator.i_verdict_count > before)
        ~fail:timed_out
        ~next:(fun () ->
          match initiator.i_verdicts with
          | (_, Verdict.Trusted) :: _ -> stream (r + 1)
          | (_, v) :: _ ->
            (* a non-trusted in-session verdict decides the whole round:
               the session's device state is what it is *)
            close_phase v
          | [] -> stream (r + 1))
    end
  in
  start_phase ~name:"handshake"
    ~send:(fun () -> handshake_send initiator)
    ~done_:(fun () ->
      match initiator.i_state with Connecting _ -> false | _ -> true)
    ~fail:timed_out
    ~next:(fun () ->
      match initiator.i_state with
      | Refused v -> round_done v
      | Established _ -> stream 1
      | Connecting _ | Closed ->
        round_done
          (Verdict.Timed_out
             { attempts = !total_sends; waited_s = Simtime.now time -. started }))

let run_r ?policy ?records ?window_bits t =
  Session.drive_round (round_begin ?policy ?records ?window_bits t)
