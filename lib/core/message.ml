type freshness_field =
  | F_none
  | F_nonce of string
  | F_counter of int64
  | F_timestamp of int64

type auth_tag =
  | Tag_none
  | Tag_hmac_sha1 of string
  | Tag_aes_cbc_mac of string
  | Tag_speck_cbc_mac of string
  | Tag_ecdsa of string

type attreq = {
  challenge : string;
  freshness : freshness_field;
  tag : auth_tag;
}

type attresp = {
  echo_challenge : string;
  echo_freshness : freshness_field;
  report : string;
}

type wire =
  | Request of attreq
  | Response of attresp
  | Sync_request of { verifier_time_ms : int64; sync_counter : int64; sync_tag : string }
  | Sync_response of { acked_counter : int64; ack_tag : string }
  | Service_request of {
      command_name : string;
      payload : string;
      service_freshness : freshness_field;
      service_tag : auth_tag;
    }
  | Service_ack of { acked_command : string; ack_report : string }
  | Hs_init of { hs_nonce : string; hs_req : attreq }
  | Hs_resp of { hs_rnonce : string; hs_report : attresp; hs_bind : string }
  | Hs_fin of { fin_tag : string }
  | Record of { rec_seq : int64; rec_ct : string; rec_tag : string }

let u64_be v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (7 - i))) 0xFFL)))

let lv s = u64_be (Int64.of_int (String.length s)) ^ s

let freshness_bytes = function
  | F_none -> "F0"
  | F_nonce n -> "F1" ^ lv n
  | F_counter c -> "F2" ^ u64_be c
  | F_timestamp t -> "F3" ^ u64_be t

let request_body ~challenge ~freshness = "REQ" ^ lv challenge ^ freshness_bytes freshness

let response_body r = "RSP" ^ lv r.echo_challenge ^ freshness_bytes r.echo_freshness

let tag_bytes = function
  | Tag_none -> "T0"
  | Tag_hmac_sha1 s -> "T1" ^ lv s
  | Tag_aes_cbc_mac s -> "T2" ^ lv s
  | Tag_speck_cbc_mac s -> "T3" ^ lv s
  | Tag_ecdsa s -> "T4" ^ lv s

let attreq_fields r = lv r.challenge ^ freshness_bytes r.freshness ^ tag_bytes r.tag

let attresp_fields r =
  lv r.echo_challenge ^ freshness_bytes r.echo_freshness ^ lv r.report

let wire_to_bytes = function
  | Request r -> "Q" ^ attreq_fields r
  | Response r -> "P" ^ attresp_fields r
  | Sync_request { verifier_time_ms; sync_counter; sync_tag } ->
    "S" ^ u64_be verifier_time_ms ^ u64_be sync_counter ^ lv sync_tag
  | Sync_response { acked_counter; ack_tag } -> "A" ^ u64_be acked_counter ^ lv ack_tag
  | Service_request { command_name; payload; service_freshness; service_tag } ->
    "V" ^ lv command_name ^ lv payload
    ^ freshness_bytes service_freshness
    ^ tag_bytes service_tag
  | Service_ack { acked_command; ack_report } -> "K" ^ lv acked_command ^ lv ack_report
  | Hs_init { hs_nonce; hs_req } -> "H" ^ lv hs_nonce ^ attreq_fields hs_req
  | Hs_resp { hs_rnonce; hs_report; hs_bind } ->
    "E" ^ lv hs_rnonce ^ attresp_fields hs_report ^ lv hs_bind
  | Hs_fin { fin_tag } -> "F" ^ lv fin_tag
  | Record { rec_seq; rec_ct; rec_tag } -> "R" ^ u64_be rec_seq ^ lv rec_ct ^ lv rec_tag

(* --- total parser: a cursor over the frame; any violation aborts --- *)

exception Malformed

type cursor = { data : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.data then raise Malformed

let take c n =
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let take_u64 c =
  let s = take c 8 in
  let v = ref 0L in
  String.iter
    (fun ch -> v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code ch)))
    s;
  !v

let take_lv c =
  let len = Int64.to_int (take_u64 c) in
  if len < 0 || len > String.length c.data then raise Malformed;
  take c len

let take_freshness c =
  match take c 2 with
  | "F0" -> F_none
  | "F1" -> F_nonce (take_lv c)
  | "F2" -> F_counter (take_u64 c)
  | "F3" -> F_timestamp (take_u64 c)
  | _ -> raise Malformed

let take_tag c =
  match take c 2 with
  | "T0" -> Tag_none
  | "T1" -> Tag_hmac_sha1 (take_lv c)
  | "T2" -> Tag_aes_cbc_mac (take_lv c)
  | "T3" -> Tag_speck_cbc_mac (take_lv c)
  | "T4" -> Tag_ecdsa (take_lv c)
  | _ -> raise Malformed

let take_attreq c =
  let challenge = take_lv c in
  let freshness = take_freshness c in
  let tag = take_tag c in
  { challenge; freshness; tag }

let take_attresp c =
  let echo_challenge = take_lv c in
  let echo_freshness = take_freshness c in
  let report = take_lv c in
  { echo_challenge; echo_freshness; report }

let wire_of_bytes data =
  let c = { data; pos = 0 } in
  try
    let wire =
      match take c 1 with
      | "Q" -> Request (take_attreq c)
      | "P" -> Response (take_attresp c)
      | "S" ->
        let verifier_time_ms = take_u64 c in
        let sync_counter = take_u64 c in
        let sync_tag = take_lv c in
        Sync_request { verifier_time_ms; sync_counter; sync_tag }
      | "A" ->
        let acked_counter = take_u64 c in
        let ack_tag = take_lv c in
        Sync_response { acked_counter; ack_tag }
      | "V" ->
        let command_name = take_lv c in
        let payload = take_lv c in
        let service_freshness = take_freshness c in
        let service_tag = take_tag c in
        Service_request { command_name; payload; service_freshness; service_tag }
      | "K" ->
        let acked_command = take_lv c in
        let ack_report = take_lv c in
        Service_ack { acked_command; ack_report }
      | "H" ->
        let hs_nonce = take_lv c in
        let hs_req = take_attreq c in
        Hs_init { hs_nonce; hs_req }
      | "E" ->
        let hs_rnonce = take_lv c in
        let hs_report = take_attresp c in
        let hs_bind = take_lv c in
        Hs_resp { hs_rnonce; hs_report; hs_bind }
      | "F" -> Hs_fin { fin_tag = take_lv c }
      | "R" ->
        let rec_seq = take_u64 c in
        let rec_ct = take_lv c in
        let rec_tag = take_lv c in
        Record { rec_seq; rec_ct; rec_tag }
      | _ -> raise Malformed
    in
    if c.pos <> String.length data then None (* trailing garbage *) else Some wire
  with Malformed -> None

let wire_size w = String.length (wire_to_bytes w)

let pp_freshness fmt = function
  | F_none -> Format.pp_print_string fmt "none"
  | F_nonce n -> Format.fprintf fmt "nonce=%s" (Ra_crypto.Hexutil.to_hex n)
  | F_counter c -> Format.fprintf fmt "counter=%Ld" c
  | F_timestamp t -> Format.fprintf fmt "timestamp=%Ldms" t

let pp_tag fmt = function
  | Tag_none -> Format.pp_print_string fmt "unauthenticated"
  | Tag_hmac_sha1 _ -> Format.pp_print_string fmt "hmac-sha1"
  | Tag_aes_cbc_mac _ -> Format.pp_print_string fmt "aes-cbc-mac"
  | Tag_speck_cbc_mac _ -> Format.pp_print_string fmt "speck-cbc-mac"
  | Tag_ecdsa _ -> Format.pp_print_string fmt "ecdsa"

let pp_attreq fmt r =
  Format.fprintf fmt "attreq{%a, %a}" pp_freshness r.freshness pp_tag r.tag

let pp_wire fmt = function
  | Request r -> pp_attreq fmt r
  | Response _ -> Format.pp_print_string fmt "attresp"
  | Sync_request { verifier_time_ms; sync_counter; _ } ->
    Format.fprintf fmt "sync_req{t=%Ldms, c=%Ld}" verifier_time_ms sync_counter
  | Sync_response { acked_counter; _ } ->
    Format.fprintf fmt "sync_resp{c=%Ld}" acked_counter
  | Service_request { command_name; _ } -> Format.fprintf fmt "svc_req{%s}" command_name
  | Service_ack { acked_command; _ } -> Format.fprintf fmt "svc_ack{%s}" acked_command
  | Hs_init { hs_req; _ } -> Format.fprintf fmt "hs_init{%a}" pp_attreq hs_req
  | Hs_resp _ -> Format.pp_print_string fmt "hs_resp"
  | Hs_fin _ -> Format.pp_print_string fmt "hs_fin"
  | Record { rec_seq; rec_ct; _ } ->
    Format.fprintf fmt "record{seq=%Ld, %dB}" rec_seq (String.length rec_ct)
