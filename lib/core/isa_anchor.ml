module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu
module Memory = Ra_mcu.Memory
module Timing = Ra_mcu.Timing
module Sha1_asm = Ra_isa.Sha1_asm

(* the routine is position-assembled for the canonical device map *)
let rom_origin = 0x001000

let scratch_addr device = Device.anchor_scratch_addr device

let rom_image () = Sha1_asm.code_bytes ~origin:rom_origin ~scratch_addr:0x800400

type t = {
  device : Device.t;
  sha : Sha1_asm.t;
  scheme : Timing.auth_scheme option;
  freshness : Freshness.state;
  mutable mac_cycles : int64;
}

let install device ~scheme ~policy =
  if scratch_addr device <> 0x800400 then
    invalid_arg "Isa_anchor.install: unexpected anchor-scratch location";
  let image = rom_image () in
  let present =
    Memory.read_bytes (Device.memory device) rom_origin (String.length image)
  in
  if not (String.equal image present) then
    invalid_arg
      "Isa_anchor.install: rom_attest does not hold the SHA-1 routine (pass \
       rom_images at Device.create)";
  let sha = Sha1_asm.attach ~origin:rom_origin ~scratch_addr:(scratch_addr device) in
  { device; sha; scheme; freshness = Freshness.init device policy; mac_cycles = 0L }

let cpu t = Device.cpu t.device

let read_key_blob t =
  Cpu.load_bytes (cpu t) (Device.key_addr t.device) (Device.key_len t.device)

let measure_memory t =
  Cpu.with_context (cpu t) Device.region_attest (fun () ->
      String.concat ""
        (List.map
           (fun (base, len) -> Cpu.load_bytes (cpu t) base len)
           (Device.attested_ranges t.device)))

let last_mac_cycles t = t.mac_cycles
let sha t = t.sha

let attest t (req : Message.attreq) =
  let resp =
    { Message.echo_challenge = req.challenge; echo_freshness = req.freshness; report = "" }
  in
  let body = Message.response_body resp in
  let key = Auth.blob_sym_key (read_key_blob t) in
  let segments =
    Sha1_asm.Bytes body
    :: List.map (fun (base, len) -> Sha1_asm.Range (base, len)) (Device.attested_ranges t.device)
  in
  let before = Cpu.cycles (cpu t) in
  let report = Sha1_asm.hmac_segments t.sha (cpu t) ~key segments in
  t.mac_cycles <- Int64.sub (Cpu.cycles (cpu t)) before;
  { resp with Message.report }

let authenticate t (req : Message.attreq) =
  match t.scheme with
  | None -> Ok ()
  | Some scheme ->
    Cpu.consume_cycles (cpu t) (Timing.request_auth_cycles scheme);
    let key_blob = read_key_blob t in
    let body = Message.request_body ~challenge:req.challenge ~freshness:req.freshness in
    if Auth.verify_request scheme ~key_blob ~body req.tag then Ok ()
    else Error Code_attest.Bad_auth

let handle_request t req =
  try
    Cpu.with_context (cpu t) Device.region_attest (fun () ->
        match authenticate t req with
        | Error e -> Error e
        | Ok () ->
          (match Freshness.check_and_update t.freshness req.Message.freshness with
          | Error e -> Error (Code_attest.Not_fresh e)
          | Ok () -> Ok (attest t req)))
  with Cpu.Protection_fault fault -> Error (Code_attest.Anchor_fault fault)

let handle_request_r t req =
  Result.map_error Code_attest.to_verdict (handle_request t req)
