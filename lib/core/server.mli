(** The verifier-as-a-service: an open-loop attestation-report sink.

    The paper studies the {e prover's} side of the DoS asymmetry — §4.1
    authenticates requests so bogus traffic cannot trigger the 754 ms
    MAC sweep. At production scale the same asymmetry appears on the
    verifier: a fleet of 100k devices streams reports at the server,
    and an [Adv_ext] flood of forged reports tries to drown the
    authentic ones. This module is that server:

    - {b Admission first} ({!Admission}): per-device token buckets and
      a two-class triage queue turn the flood away before any crypto,
      so drops under attack are attributed to [rate_limited] /
      [queue_full] — never to verification starvation ([timed_out]).
    - {b Batched verification}: queued reports are drained in batches
      of up to [sc_batch]; one precomputed HMAC key context (PR 1's
      midstate cache, held by the {!Verifier}) serves the whole batch,
      so per-report cost drops by the two pad compressions an
      unbatched server pays per report ({!Batch} exposes both paths;
      the bench gates the ratio).
    - {b Event-driven}: the server lives on a {!Sched} timeline.
      Verification occupies the single server for a simulated duration
      proportional to the SHA-1 blocks it hashes ([sc_block_s] per
      64-byte block), so queueing, latency percentiles and deadlines
      are all properties of the discrete-event schedule — deterministic
      and shardable ({!Load.run} [~engine:(`Shards k)]).

    Rejections on this side of the wire use the same {!Verdict.reason}
    vocabulary (and Prometheus [reason] label values) as the
    prover-side {!Service} stats. *)

type config = {
  sc_verifier : Verifier.Config.t;  (** the only way to configure the verifier *)
  sc_admission : Admission.config;
  sc_batch : int;  (** max reports drained per verification batch, >= 1 *)
  sc_linger_s : float;
      (** max simulated wait for a batch to fill before a partial drain *)
  sc_block_s : float;
      (** simulated verification time per SHA-1 block hashed, > 0 *)
  sc_deadline_s : float;
      (** a report still queued this long after arrival is dropped as
          [Timed_out] — without running its crypto *)
}

val default_config : Verifier.Config.t -> config
(** Batch 64, linger 50 ms, 1 µs/block, 2 s deadline, default admission. *)

type request = {
  rq_device : string option;
      (** claimed device identity; [None] = anonymous. Claims are only
          trusted as far as admission class — the report MAC is what
          authenticates. *)
  rq_tag : int;  (** caller correlation tag (e.g. per-source sequence) *)
  rq_frame : string;  (** serialized {!Message.wire} bytes *)
}

type outcome = {
  oc_device : string option;
  oc_tag : int;
  oc_arrived : float;
  oc_done : float;
  oc_result : (unit, Verdict.reason) result;  (** [Ok ()] = trusted *)
}

type t

val create :
  ?record_outcomes:bool ->
  ?capture:bool ->
  sched:Sched.t ->
  config ->
  (t, string) result
(** Validation errors (bad verifier config, batch < 1, non-positive
    block time, ...) come back as [Error] — construction is
    {!Verifier.of_config} all the way down. With [capture] (default
    false) every deadline-missed request additionally records a
    {!Ra_obs.Forensics.Deadline_miss} capsule — see {!capsules}. *)

val register_device : t -> string -> unit
(** Known-class admission (private token bucket) + a freshness slot for
    the device's report counter. *)

val submit : t -> request -> unit
(** One report arriving now ([Sched.now]). Triage parses the frame
    ([malformed] rejects immediately), a stale report counter rejects
    as [not_fresh] before any crypto, admission classifies and
    rate-limits, and an admitted report waits for a batch drain. *)

val flush : t -> unit
(** Force one batch drain now, regardless of linger. *)

type stats = {
  sv_requests : int;
  sv_admitted : int;
  sv_trusted : int;
  sv_breakdown : (Verdict.reason * int) list;
      (** every rejection, admission and verification alike, in
          {!Verdict.Reason.all} order — same shape as
          [Service.stats.breakdown] *)
  sv_batches : int;
  sv_batched_reports : int;
  sv_max_queue : int;
  sv_latencies_ms : float list;
      (** arrival→verdict service latency per verified report,
          completion order *)
}

val stats : t -> stats

val outcomes : t -> outcome list
(** Chronological; empty unless created with [~record_outcomes:true]. *)

val capsules : t -> Ra_obs.Forensics.capsule list
(** Deadline-miss capsules, chronological; empty unless created with
    [~capture:true]. Buffered on the server itself (not pushed into a
    shared ring) so sharded runs stay race-free — {!Load.run} merges
    them in shard order. *)

val publish : ?registry:Ra_obs.Registry.t -> t -> unit
(** Push the server's totals into the metric registry:
    [ra_server_requests_total], [ra_server_rejections_total{reason}],
    [ra_server_verdicts_total{verdict}], the [ra_server_latency_ms]
    histogram and the [ra_server_queue_depth_max] gauge. Call once per
    server after a run (counters are monotone; publishing twice
    double-counts). *)

(** The two verification paths the throughput gate compares. *)
module Batch : sig
  val verify_one :
    sym_key:string -> reference_image:string -> Message.attresp -> Verdict.t
  (** The unbatched baseline: derives the HMAC key context (ipad/opad
      midstates) per call, as a server checking each report in
      isolation would. Pure — no metrics, no freshness. *)

  val verify : Verifier.t -> Message.attresp array -> Verdict.t array
  (** {!Verifier.check_reports_r}: one key context for the whole batch. *)

  val report_blocks : body_len:int -> image_len:int -> int
  (** SHA-1 blocks one batched report check hashes (inner stream over
      body+image, plus the outer finalization); the unbatched path adds
      {!key_blocks} on top. Backs the simulated [sc_block_s] cost. *)

  val key_blocks : int
  (** Extra blocks for a per-report key-context derivation (= 2: the
      ipad and opad compressions the midstate cache amortizes away). *)
end

(** Open-loop load generation over {!Arrival} processes. *)
module Load : sig
  type traffic = {
    tr_devices : int;  (** registered (known-class) report sources *)
    tr_rate : float;  (** per-device reports per second *)
    tr_process : [ `Poisson | `Bursty ];
        (** inter-arrival law per device ({!Ra_net.Arrival}) *)
    tr_horizon_s : float;  (** generate arrivals in [\[0, horizon)] *)
    tr_seed : int64;
        (** root seed; every source draws from
            [Impairment.derive_seed ~root ~index], so its stream is
            independent of sharding *)
    tr_flood_sources : int;  (** [Adv_ext] forged-report streams *)
    tr_flood_rate : float;  (** forged reports per second per source *)
    tr_impairment : Ra_net.Impairment.profile option;
        (** optional wire impairment on the way in: drops thin the load,
            delays shift arrivals, duplicates become replays (stale
            counter), corruptions turn authentic reports untrusted *)
  }

  val default_traffic : traffic
  (** 64 devices at 0.5 rps each, Poisson, 30 s horizon, seed 7, no
      flood, pristine wire. *)

  type report = {
    rp_devices : int;
    rp_shards : int;
    rp_requests : int;
    rp_trusted : int;
    rp_breakdown : (Verdict.reason * int) list;
    rp_goodput_rps : float;  (** trusted verdicts per simulated second *)
    rp_p50_ms : float;  (** service latency percentiles over verified reports *)
    rp_p99_ms : float;
    rp_max_queue : int;  (** deepest triage backlog on any one server *)
    rp_batches : int;
    rp_avg_batch : float;  (** mean reports per verification drain *)
  }

  val run :
    ?engine:[ `Seq | `Shards of int ] ->
    ?pool:Pool.t ->
    ?record_outcomes:bool ->
    ?forensics:Ra_obs.Forensics.t ->
    config ->
    traffic ->
    report * outcome list
  (** Drive the traffic through server instance(s) on a discrete-event
      timeline. [`Shards k] partitions the sources over [k] independent
      server instances run on the {!Pool} (default {!Pool.shared}):
      positional seeds make each source's arrival stream identical under
      any shard count (and, as long as triage never saturates, each
      device's admission/verdict sequence too); the merged report sums
      tallies and pools latency samples in shard order, and each shard's
      totals are published into the default metric registry. Outcomes
      are empty unless [record_outcomes] (concatenated in shard order).
      With [forensics], every shard server captures deadline-miss
      capsules, merged into the given ring in shard order after the run.
      @raise Invalid_argument on an invalid [config] or [shards < 1]. *)

  val slo_watch :
    ?max_p99_ms:float -> ?min_goodput_rps:float -> report -> Ra_obs.Slo.check list
  (** Judge [server_p99_latency] (default limit 250 ms) and
      [server_goodput] (default 0 — always compliant unless a floor is
      given) against the run. *)

  val render : report -> string
end
