module Bucket = struct
  type t = {
    rate : float;
    burst : float;
    mutable tokens : float;
    mutable updated : float; (* simulated time of the last refill *)
  }

  let create ~rate ~burst =
    if rate <= 0.0 then invalid_arg "Admission.Bucket.create: rate must be > 0";
    if burst < 1.0 then invalid_arg "Admission.Bucket.create: burst must be >= 1";
    { rate; burst; tokens = burst; updated = 0.0 }

  let refill t ~now =
    if now > t.updated then begin
      t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.updated) *. t.rate));
      t.updated <- now
    end

  let tokens t ~now =
    refill t ~now;
    t.tokens

  let try_take t ~now =
    refill t ~now;
    if t.tokens >= 1.0 then begin
      t.tokens <- t.tokens -. 1.0;
      true
    end
    else false
end

type config = {
  device_rate : float;
  device_burst : float;
  unknown_rate : float;
  unknown_burst : float;
  triage_capacity : int;
  unknown_share : float;
}

let default_config =
  {
    device_rate = 1.0;
    device_burst = 4.0;
    unknown_rate = 32.0;
    unknown_burst = 64.0;
    triage_capacity = 256;
    unknown_share = 0.25;
  }

type decision = Admitted | Rejected of Verdict.reason

type 'a entry = { it : 'a; e_known : bool; mutable alive : bool }

type 'a t = {
  cfg : config;
  devices : (string, Bucket.t) Hashtbl.t;
  unknown_bucket : Bucket.t;
  queue : 'a entry Queue.t; (* FIFO across both classes; dead entries skipped *)
  unknown_queue : 'a entry Queue.t; (* the same unknown entries, oldest first *)
  mutable live : int;
  mutable unknown_live : int;
  mutable evicted_rev : 'a list;
}

let create ?(config = default_config) () =
  if config.triage_capacity < 1 then
    invalid_arg "Admission.create: triage_capacity must be >= 1";
  if not (config.unknown_share >= 0.0 && config.unknown_share <= 1.0) then
    invalid_arg "Admission.create: unknown_share must be in [0, 1]";
  ignore (Bucket.create ~rate:config.device_rate ~burst:config.device_burst);
  {
    cfg = config;
    devices = Hashtbl.create 64;
    unknown_bucket =
      Bucket.create ~rate:config.unknown_rate ~burst:config.unknown_burst;
    queue = Queue.create ();
    unknown_queue = Queue.create ();
    live = 0;
    unknown_live = 0;
    evicted_rev = [];
  }

let register t identity =
  if not (Hashtbl.mem t.devices identity) then
    Hashtbl.add t.devices identity
      (Bucket.create ~rate:t.cfg.device_rate ~burst:t.cfg.device_burst)

let known t identity = Hashtbl.mem t.devices identity

let unknown_slots t =
  int_of_float (Float.round (t.cfg.unknown_share *. float_of_int t.cfg.triage_capacity))

(* pop the oldest live unknown entry, mark it dead, surface it *)
let evict_oldest_unknown t =
  let rec pop () =
    match Queue.take_opt t.unknown_queue with
    | None -> false
    | Some e when not e.alive -> pop ()
    | Some e ->
      e.alive <- false;
      t.live <- t.live - 1;
      t.unknown_live <- t.unknown_live - 1;
      t.evicted_rev <- e.it :: t.evicted_rev;
      true
  in
  pop ()

let offer t ~identity ~now item =
  let bucket =
    match identity with
    | Some id -> (
      match Hashtbl.find_opt t.devices id with
      | Some b -> Some b
      | None -> None (* claimed identity we never registered: unknown class *))
    | None -> None
  in
  let is_known = bucket <> None in
  let bucket = Option.value bucket ~default:t.unknown_bucket in
  if not (Bucket.try_take bucket ~now) then Rejected Verdict.Reason.Rate_limited
  else begin
    let enqueue () =
      let e = { it = item; e_known = is_known; alive = true } in
      Queue.add e t.queue;
      t.live <- t.live + 1;
      if not is_known then begin
        Queue.add e t.unknown_queue;
        t.unknown_live <- t.unknown_live + 1
      end;
      Admitted
    in
    if (not is_known) && t.unknown_live >= unknown_slots t then
      Rejected Verdict.Reason.Queue_full
    else if t.live < t.cfg.triage_capacity then enqueue ()
    else if is_known && evict_oldest_unknown t then enqueue ()
    else Rejected Verdict.Reason.Queue_full
  end

let take t =
  let rec pop () =
    match Queue.take_opt t.queue with
    | None -> None
    | Some e when not e.alive -> pop ()
    | Some e ->
      e.alive <- false;
      t.live <- t.live - 1;
      if not e.e_known then t.unknown_live <- t.unknown_live - 1;
      Some e.it
  in
  pop ()

let depth t = t.live
let unknown_depth t = t.unknown_live

let evicted t =
  let items = List.rev t.evicted_rev in
  t.evicted_rev <- [];
  items
