module Impairment = Ra_net.Impairment
module Arrival = Ra_net.Arrival
module Channel = Ra_net.Channel
module Registry = Ra_obs.Registry
module Slo = Ra_obs.Slo
module Prng = Ra_crypto.Prng

type config = {
  sc_verifier : Verifier.Config.t;
  sc_admission : Admission.config;
  sc_batch : int;
  sc_linger_s : float;
  sc_block_s : float;
  sc_deadline_s : float;
}

let default_config verifier =
  {
    sc_verifier = verifier;
    sc_admission = Admission.default_config;
    sc_batch = 64;
    sc_linger_s = 0.05;
    sc_block_s = 1e-6;
    sc_deadline_s = 2.0;
  }

type request = { rq_device : string option; rq_tag : int; rq_frame : string }

type outcome = {
  oc_device : string option;
  oc_tag : int;
  oc_arrived : float;
  oc_done : float;
  oc_result : (unit, Verdict.reason) result;
}

type pending = {
  p_device : string option;
  p_tag : int;
  p_arrived : float;
  p_resp : Message.attresp;
}

type t = {
  cfg : config;
  sched : Sched.t;
  verifier : Verifier.t;
  admission : pending Admission.t;
  counters : (string, int64) Hashtbl.t; (* last counter accepted as Trusted *)
  record : bool;
  capture : bool; (* record a forensic capsule per deadline miss *)
  mutable capsules_rev : Ra_obs.Forensics.capsule list;
  mutable outcomes_rev : outcome list;
  mutable requests : int;
  mutable admitted : int;
  mutable trusted : int;
  mutable untrusted : int;
  tally : Verdict.Tally.t;
  mutable batches : int;
  mutable batched_reports : int;
  mutable max_queue : int;
  mutable latencies_rev : float list;
  mutable busy_until : float; (* the single verification unit frees up here *)
  mutable flush_armed : bool;
}

module Batch = struct
  (* SHA-1 compressions one batched report check costs. Inner hash:
     midstate already past the ipad block, so ceil((body+image+9)/64)
     blocks remain over the padded tail; outer finalization from the opad
     midstate is one more. *)
  let report_blocks ~body_len ~image_len = (body_len + image_len + 73 + 63) / 64

  (* ipad + opad compressions a per-report key derivation repays *)
  let key_blocks = 2

  let verify_one ~sym_key ~reference_image resp =
    let body = Message.response_body resp in
    let expected =
      Auth.response_report ~sym_key ~body ~memory_image:reference_image
    in
    if Ra_crypto.Hexutil.equal_ct expected resp.Message.report then Verdict.Trusted
    else Verdict.Untrusted_state

  let verify verifier resps = Verifier.check_reports_r verifier resps
end

let create ?(record_outcomes = false) ?(capture = false) ~sched cfg =
  if cfg.sc_batch < 1 then Error "Server.create: batch must be >= 1"
  else if cfg.sc_linger_s < 0.0 then Error "Server.create: linger must be >= 0"
  else if cfg.sc_block_s <= 0.0 then Error "Server.create: block time must be > 0"
  else if cfg.sc_deadline_s <= 0.0 then Error "Server.create: deadline must be > 0"
  else
    match Verifier.of_config cfg.sc_verifier with
    | Error _ as e -> e
    | Ok verifier -> (
      match Admission.create ~config:cfg.sc_admission () with
      | exception Invalid_argument msg -> Error msg
      | admission ->
        Ok
          {
            cfg;
            sched;
            verifier;
            admission;
            counters = Hashtbl.create 64;
            record = record_outcomes;
            capture;
            capsules_rev = [];
            outcomes_rev = [];
            requests = 0;
            admitted = 0;
            trusted = 0;
            untrusted = 0;
            tally = Verdict.Tally.create ();
            batches = 0;
            batched_reports = 0;
            max_queue = 0;
            latencies_rev = [];
            busy_until = 0.0;
            flush_armed = false;
          })

let register_device t identity = Admission.register t.admission identity

let note t ~device ~tag ~arrived ~done_ result =
  if t.record then
    t.outcomes_rev <-
      {
        oc_device = device;
        oc_tag = tag;
        oc_arrived = arrived;
        oc_done = done_;
        oc_result = result;
      }
      :: t.outcomes_rev

let reject t ~device ~tag ~arrived ~done_ reason =
  Verdict.Tally.add t.tally reason;
  note t ~device ~tag ~arrived ~done_ (Error reason)

(* counter-freshness triage: cheap, before any admission or crypto. Only a
   Trusted verdict advances the stored counter, so a flood replaying or
   inventing counters cannot lock a legitimate device out. *)
let stale t ~identity resp =
  match (identity, resp.Message.echo_freshness) with
  | Some id, Message.F_counter c -> (
    match Hashtbl.find_opt t.counters id with
    | Some stored -> Int64.compare c stored <= 0
    | None -> false)
  | _ -> false

let flush t =
  let now = Sched.now t.sched in
  let start = Float.max now t.busy_until in
  let rec drain acc n =
    if n = 0 then List.rev acc
    else
      match Admission.take t.admission with
      | None -> List.rev acc
      | Some p -> drain (p :: acc) (n - 1)
  in
  let items = drain [] t.cfg.sc_batch in
  if items <> [] then begin
    let fresh, expired =
      List.partition (fun p -> start -. p.p_arrived < t.cfg.sc_deadline_s) items
    in
    List.iter
      (fun p ->
        reject t ~device:p.p_device ~tag:p.p_tag ~arrived:p.p_arrived ~done_:start
          Verdict.Reason.Timed_out;
        if t.capture then
          t.capsules_rev <-
            Ra_obs.Forensics.deadline_miss ~device:p.p_device ~tag:p.p_tag
              ~arrived:p.p_arrived ~done_:start
              ~verdict:
                (Ra_obs.Json.Str (Verdict.Reason.label Verdict.Reason.Timed_out))
            :: t.capsules_rev)
      expired;
    if fresh <> [] then begin
      let arr = Array.of_list fresh in
      let verdicts = Batch.verify (t.verifier) (Array.map (fun p -> p.p_resp) arr) in
      let image_len = String.length t.cfg.sc_verifier.Verifier.Config.reference_image in
      let blocks =
        Array.fold_left
          (fun acc p ->
            acc
            + Batch.report_blocks
                ~body_len:(String.length (Message.response_body p.p_resp))
                ~image_len)
          0 arr
      in
      let finish = start +. (float_of_int blocks *. t.cfg.sc_block_s) in
      t.busy_until <- finish;
      t.batches <- t.batches + 1;
      t.batched_reports <- t.batched_reports + Array.length arr;
      Array.iteri
        (fun i p ->
          match verdicts.(i) with
          | Verdict.Trusted ->
            t.trusted <- t.trusted + 1;
            t.latencies_rev <- ((finish -. p.p_arrived) *. 1000.0) :: t.latencies_rev;
            (match (p.p_device, p.p_resp.Message.echo_freshness) with
            | Some id, Message.F_counter c -> Hashtbl.replace t.counters id c
            | _ -> ());
            note t ~device:p.p_device ~tag:p.p_tag ~arrived:p.p_arrived
              ~done_:finish (Ok ())
          | v ->
            if v = Verdict.Untrusted_state then t.untrusted <- t.untrusted + 1;
            let reason =
              Option.value (Verdict.reason_of v)
                ~default:Verdict.Reason.Untrusted_state
            in
            reject t ~device:p.p_device ~tag:p.p_tag ~arrived:p.p_arrived
              ~done_:finish reason)
        arr
    end
  end

let rec arm_flush t =
  if (not t.flush_armed) && Admission.depth t.admission > 0 then begin
    t.flush_armed <- true;
    let now = Sched.now t.sched in
    let at =
      if Admission.depth t.admission >= t.cfg.sc_batch then
        Float.max now t.busy_until
      else now +. t.cfg.sc_linger_s
    in
    Sched.at t.sched ~at (fun () ->
        t.flush_armed <- false;
        flush t;
        arm_flush t)
  end

let submit t rq =
  let now = Sched.now t.sched in
  t.requests <- t.requests + 1;
  match Message.wire_of_bytes rq.rq_frame with
  | Some (Message.Response resp) ->
    if stale t ~identity:rq.rq_device resp then
      reject t ~device:rq.rq_device ~tag:rq.rq_tag ~arrived:now ~done_:now
        Verdict.Reason.Not_fresh
    else begin
      let p =
        { p_device = rq.rq_device; p_tag = rq.rq_tag; p_arrived = now; p_resp = resp }
      in
      (match Admission.offer t.admission ~identity:rq.rq_device ~now p with
      | Admission.Admitted ->
        t.admitted <- t.admitted + 1;
        t.max_queue <- max t.max_queue (Admission.depth t.admission);
        arm_flush t
      | Admission.Rejected reason ->
        reject t ~device:rq.rq_device ~tag:rq.rq_tag ~arrived:now ~done_:now reason);
      (* a known-class offer at a full queue may have displaced unknowns *)
      List.iter
        (fun e ->
          reject t ~device:e.p_device ~tag:e.p_tag ~arrived:e.p_arrived ~done_:now
            Verdict.Reason.Queue_full)
        (Admission.evicted t.admission)
    end
  | Some _ | None ->
    reject t ~device:rq.rq_device ~tag:rq.rq_tag ~arrived:now ~done_:now
      Verdict.Reason.Malformed

type stats = {
  sv_requests : int;
  sv_admitted : int;
  sv_trusted : int;
  sv_breakdown : (Verdict.reason * int) list;
  sv_batches : int;
  sv_batched_reports : int;
  sv_max_queue : int;
  sv_latencies_ms : float list;
}

let stats t =
  {
    sv_requests = t.requests;
    sv_admitted = t.admitted;
    sv_trusted = t.trusted;
    sv_breakdown = Verdict.Tally.to_list t.tally;
    sv_batches = t.batches;
    sv_batched_reports = t.batched_reports;
    sv_max_queue = t.max_queue;
    sv_latencies_ms = List.rev t.latencies_rev;
  }

let outcomes t = List.rev t.outcomes_rev
let capsules t = List.rev t.capsules_rev

let publish ?registry t =
  let inc ?labels name by =
    if by > 0 then Registry.Counter.inc ~by (Registry.Counter.get ?registry ?labels name)
  in
  inc "ra_server_requests_total" t.requests;
  List.iter
    (fun (r, n) ->
      inc ~labels:[ ("reason", Verdict.Reason.label r) ] "ra_server_rejections_total" n)
    (Verdict.Tally.to_list t.tally);
  inc ~labels:[ ("verdict", "trusted") ] "ra_server_verdicts_total" t.trusted;
  inc
    ~labels:[ ("verdict", "untrusted_state") ]
    "ra_server_verdicts_total" t.untrusted;
  let h = Registry.Histogram.get ?registry "ra_server_latency_ms" in
  List.iter (Registry.Histogram.observe h) (List.rev t.latencies_rev);
  Registry.Gauge.set
    (Registry.Gauge.get ?registry "ra_server_queue_depth_max")
    (float_of_int t.max_queue)

module Load = struct
  type traffic = {
    tr_devices : int;
    tr_rate : float;
    tr_process : [ `Poisson | `Bursty ];
    tr_horizon_s : float;
    tr_seed : int64;
    tr_flood_sources : int;
    tr_flood_rate : float;
    tr_impairment : Impairment.profile option;
  }

  let default_traffic =
    {
      tr_devices = 64;
      tr_rate = 0.5;
      tr_process = `Poisson;
      tr_horizon_s = 30.0;
      tr_seed = 7L;
      tr_flood_sources = 0;
      tr_flood_rate = 0.0;
      tr_impairment = None;
    }

  type report = {
    rp_devices : int;
    rp_shards : int;
    rp_requests : int;
    rp_trusted : int;
    rp_breakdown : (Verdict.reason * int) list;
    rp_goodput_rps : float;
    rp_p50_ms : float;
    rp_p99_ms : float;
    rp_max_queue : int;
    rp_batches : int;
    rp_avg_batch : float;
  }

  let device_name i = Printf.sprintf "dev-%06d" i

  (* distinct per-purpose seed roots so the arrival stream, the wire
     impairment and the flood's junk bytes draw from unrelated PRNGs *)
  let arrival_root seed = seed
  let impair_root seed = Int64.lognot seed
  let junk_root seed = Int64.add seed 0x5eed_f00dL

  let run_shard cfg traffic ~record_outcomes ~capture (range : Shard.range) =
    let sched = Sched.create () in
    let server =
      match create ~record_outcomes ~capture ~sched cfg with
      | Ok s -> s
      | Error msg -> invalid_arg ("Server.Load.run: " ^ msg)
    in
    let keyed = Auth.keyed cfg.sc_verifier.Verifier.Config.sym_key in
    let image = cfg.sc_verifier.Verifier.Config.reference_image in
    let horizon = traffic.tr_horizon_s in
    for i = range.Shard.sh_lo to range.Shard.sh_hi - 1 do
      if i < traffic.tr_devices then register_device server (device_name i)
    done;
    let source i =
      let legit = i < traffic.tr_devices in
      let process =
        if legit then
          match traffic.tr_process with
          | `Poisson -> Arrival.Poisson { rate = traffic.tr_rate }
          | `Bursty -> Arrival.bursty ~rate:traffic.tr_rate ()
        else Arrival.Poisson { rate = traffic.tr_flood_rate }
      in
      let arrivals =
        Arrival.create
          ~seed:(Impairment.derive_seed ~root:(arrival_root traffic.tr_seed) ~index:i)
          process
      in
      let imp =
        Option.map
          (fun profile ->
            Impairment.create ~to_verifier:profile
              ~seed:
                (Impairment.derive_seed ~root:(impair_root traffic.tr_seed) ~index:i)
              ())
          traffic.tr_impairment
      in
      let junk =
        if legit then None
        else
          Some
            (Prng.create
               (Impairment.derive_seed ~root:(junk_root traffic.tr_seed) ~index:i))
      in
      let device = if legit then Some (device_name i) else None in
      let counter = ref 0L in
      let tag = ref 0 in
      let next_frame () =
        counter := Int64.add !counter 1L;
        let resp0 =
          {
            Message.echo_challenge = "";
            echo_freshness = Message.F_counter !counter;
            report = "";
          }
        in
        let report =
          match junk with
          | None ->
            Auth.response_report_keyed ~keyed
              ~body:(Message.response_body resp0)
              ~memory_image:image
          | Some prng -> Prng.bytes prng 20
        in
        Message.wire_to_bytes (Message.Response { resp0 with report })
      in
      let deliver frame =
        let tag = !tag in
        let submit_now frame = submit server { rq_device = device; rq_tag = tag; rq_frame = frame } in
        match imp with
        | None -> submit_now frame
        | Some imp -> (
          match Impairment.decide imp ~dir:Impairment.To_verifier with
          | Impairment.Pass | Impairment.Reorder -> submit_now frame
          | Impairment.Drop -> ()
          | Impairment.Duplicate ->
            submit_now frame;
            submit_now frame
          | Impairment.Corrupt { salt } ->
            submit_now (Channel.mangle_string frame ~salt)
          | Impairment.Delay d ->
            Sched.at sched ~at:(Sched.now sched +. d) (fun () -> submit_now frame))
      in
      (* lazy chaining: each arrival event schedules the next, so the heap
         holds one event per live source, not the whole horizon *)
      let rec arm () =
        let at = Arrival.next arrivals in
        if at < horizon then
          Sched.at sched ~at (fun () ->
              incr tag;
              deliver (next_frame ());
              arm ())
      in
      arm ()
    in
    for i = range.Shard.sh_lo to range.Shard.sh_hi - 1 do
      source i
    done;
    ignore (Sched.run sched);
    (* the linger chain drains the queue before the heap empties, but a
       final sweep costs nothing and guarantees it *)
    while Admission.depth server.admission > 0 do
      flush server
    done;
    server

  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else
      let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))

  let run ?(engine = `Seq) ?pool ?(record_outcomes = false) ?forensics cfg traffic =
    (match create ~sched:(Sched.create ()) cfg with
    | Ok _ -> ()
    | Error msg -> invalid_arg ("Server.Load.run: " ^ msg));
    if traffic.tr_devices < 0 || traffic.tr_flood_sources < 0 then
      invalid_arg "Server.Load.run: negative source count";
    let shards = match engine with `Seq -> 1 | `Shards k -> k in
    let members = traffic.tr_devices + traffic.tr_flood_sources in
    let parts = Shard.partition ~members ~shards in
    let servers = Array.make shards None in
    let capture = Option.is_some forensics in
    Shard.run ?pool ~shards (fun s ->
        servers.(s) <- Some (run_shard cfg traffic ~record_outcomes ~capture parts.(s)));
    let servers =
      Array.map
        (function Some s -> s | None -> assert false (* Shard.run ran every shard *))
        servers
    in
    (* capsules buffered per shard during the run, merged into the ring
       in shard order on the coordinator — the Recorder is not
       thread-safe, and shard order makes the stream deterministic *)
    (match forensics with
    | None -> ()
    | Some f ->
      Array.iter
        (fun s -> List.iter (Ra_obs.Forensics.capture f) (capsules s))
        servers);
    let per_shard = Array.map stats servers in
    let sum f = Array.fold_left (fun acc s -> acc + f s) 0 per_shard in
    let counts = Array.make Verdict.Reason.count 0 in
    Array.iter
      (fun s ->
        List.iter
          (fun (r, n) ->
            let i = Verdict.Reason.index r in
            counts.(i) <- counts.(i) + n)
          s.sv_breakdown)
      per_shard;
    let breakdown =
      List.filter_map
        (fun r ->
          let n = counts.(Verdict.Reason.index r) in
          if n > 0 then Some (r, n) else None)
        Verdict.Reason.all
    in
    let latencies =
      Array.of_list (List.concat_map (fun s -> s.sv_latencies_ms) (Array.to_list per_shard))
    in
    Array.sort compare latencies;
    let trusted = sum (fun s -> s.sv_trusted) in
    let batches = sum (fun s -> s.sv_batches) in
    let batched = sum (fun s -> s.sv_batched_reports) in
    Array.iter (fun s -> publish s) servers;
    let report =
      {
        rp_devices = traffic.tr_devices;
        rp_shards = shards;
        rp_requests = sum (fun s -> s.sv_requests);
        rp_trusted = trusted;
        rp_breakdown = breakdown;
        rp_goodput_rps =
          (if traffic.tr_horizon_s > 0.0 then
             float_of_int trusted /. traffic.tr_horizon_s
           else 0.0);
        rp_p50_ms = percentile latencies 0.50;
        rp_p99_ms = percentile latencies 0.99;
        rp_max_queue =
          Array.fold_left (fun acc s -> max acc s.sv_max_queue) 0 per_shard;
        rp_batches = batches;
        rp_avg_batch =
          (if batches > 0 then float_of_int batched /. float_of_int batches else 0.0);
      }
    in
    let outcome_log =
      if record_outcomes then
        List.concat_map (fun s -> outcomes s) (Array.to_list servers)
      else []
    in
    (report, outcome_log)

  let slo_watch ?(max_p99_ms = 250.0) ?(min_goodput_rps = 0.0) rp =
    [
      Slo.evaluate ~scope:"server"
        (Slo.objective ~unit:"ms" ~name:"server_p99_latency" ~limit:max_p99_ms
           Slo.At_most)
        ~observed:rp.rp_p99_ms;
      Slo.evaluate ~scope:"server"
        (Slo.objective ~unit:"rps" ~name:"server_goodput" ~limit:min_goodput_rps
           Slo.At_least)
        ~observed:rp.rp_goodput_rps;
    ]

  let render rp =
    let b = Buffer.create 256 in
    Printf.bprintf b
      "server: %d devices over %d shard%s — %d requests, %d trusted (%.1f rps goodput)\n"
      rp.rp_devices rp.rp_shards
      (if rp.rp_shards = 1 then "" else "s")
      rp.rp_requests rp.rp_trusted rp.rp_goodput_rps;
    Printf.bprintf b
      "  latency p50 %.2f ms, p99 %.2f ms; %d batches (avg %.1f reports), max queue %d\n"
      rp.rp_p50_ms rp.rp_p99_ms rp.rp_batches rp.rp_avg_batch rp.rp_max_queue;
    (match rp.rp_breakdown with
    | [] -> Buffer.add_string b "  rejections: none\n"
    | bd ->
      Buffer.add_string b "  rejections:";
      List.iter
        (fun (r, n) -> Printf.bprintf b " %s=%d" (Verdict.Reason.label r) n)
        bd;
      Buffer.add_char b '\n');
    Buffer.contents b
end
