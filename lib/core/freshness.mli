(** Prover-side freshness policies (§4.2) and their state.

    - {b Nonce history}: remember every nonce ever accepted. Detects
      replay only, and the history consumes non-volatile memory without
      bound — both §4.2 objections are observable here ([history_bytes],
      and bounded histories evict, re-enabling replay of evicted nonces).
    - {b Counter}: accept a counter iff it lies in the forward
      half-window of the stored value under serial-number arithmetic
      (RFC 1982): the wrapped difference [got - stored] must be a
      positive signed [Int64]. This keeps acceptance well-defined at the
      2^64 wraparound — a cell parked at all-ones (Adv_roam rollforward,
      or 2^64 honest rounds) does not brick the prover, while post-wrap
      replays of pre-wrap counters land in the backward half-window and
      stay rejected. 8 bytes of non-volatile state ([counter_R]),
      read/written through the MPU so the roaming adversary's rollback
      is mediated.
    - {b Timestamp}: accept timestamps newer than the last accepted one
      and within a window of the prover's clock; requires a real-time
      clock, detects replay, reorder *and* delay.

    The 8-byte non-volatile cell at [Device.counter_addr] stores the
    counter, or the last-accepted timestamp under the timestamp policy. *)

type policy =
  | No_freshness
  | Nonce_history of { max_entries : int option } (* None = unbounded *)
  | Counter
  | Timestamp of { window_ms : int64 }

(** Re-export of {!Verdict.freshness_reject}: the same value flows
    unchanged into a [Not_fresh] verdict, so the two types are one. *)
type reject = Verdict.freshness_reject =
  | Missing_field (* request lacks the field the policy needs *)
  | Wrong_field (* field of another policy's type *)
  | Replayed_nonce
  | Stale_counter of { got : int64; stored : int64 }
  | Stale_or_reordered_timestamp of { got : int64; last : int64 }
  | Delayed_timestamp of { got : int64; now : int64; window : int64 }
  | Future_timestamp of { got : int64; now : int64; window : int64 }

type state

val init :
  ?cell_addr:int -> ?now_ms_fn:(unit -> int64) -> Ra_mcu.Device.t -> policy -> state
(** [cell_addr] overrides where the 8-byte freshness cell lives (several
    services can coexist, each with its own cell — see [Service]);
    [now_ms_fn] overrides the prover's time source (used by [Clock_sync]
    to supply an offset-corrected clock).
    @raise Invalid_argument for a timestamp policy on a clock-less device
    when no [now_ms_fn] is given. *)

val policy : state -> policy

val prover_now_ms : state -> int64
(** The prover's own idea of wall-clock time, read from its (attackable)
    on-device clock. 0 for clock-less devices. *)

val check_and_update : state -> Message.freshness_field -> (unit, reject) result
(** Evaluate a request's freshness field and, on acceptance, persist the
    new state (counter / last timestamp / nonce history). Must be called
    in the trust anchor's execution context: counter writes go through
    the EA-MPU. *)

val history_bytes : state -> int
(** Non-volatile bytes the nonce history currently occupies (0 for the
    other policies beyond their fixed 8-byte cell). *)

val history_length : state -> int

val current_cell : state -> int64
(** Read the 8-byte freshness cell (stored counter / last accepted
    timestamp) through the MPU — test hook for monotonicity checks. *)

val pp_reject : Format.formatter -> reject -> unit
