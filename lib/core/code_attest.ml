module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu
module Timing = Ra_mcu.Timing

type reject =
  | Bad_auth
  | Not_fresh of Freshness.reject
  | Anchor_fault of Cpu.fault

type stats = {
  requests_seen : int;
  requests_rejected : int;
  attestations_performed : int;
}

type t = {
  device : Device.t;
  scheme : Timing.auth_scheme option;
  freshness : Freshness.state;
  precomputed_key_schedule : bool;
  spans : Ra_obs.Span.t;
  mutable stats : stats;
  (* HMAC ipad/opad midstates for the current K_attest, rebuilt only if the
     key blob in protected storage changes. Pure wall-clock optimization:
     the modeled cycle charges and memory reads are untouched. *)
  mutable keyed_cache : (string * Ra_crypto.Hmac.key_ctx) option;
}

(* outcome counters precreated at module init: one atomic add per request *)
module M = struct
  let result r =
    Ra_obs.Registry.Counter.get ~labels:[ ("result", r) ] "ra_attest_requests_total"

  let attested = result "attested"
  let bad_auth = result "bad_auth"
  let not_fresh = result "not_fresh"
  let fault = result "fault"
end

(* Modeled instruction cost of the bookkeeping around the crypto
   (parsing, comparisons, the freshness branch). Negligible next to the
   Table 1 costs, but not zero. *)
let bookkeeping_cycles = 200L

let install device ~scheme ~policy ?(precomputed_key_schedule = false) () =
  let cpu = Device.cpu device in
  {
    device;
    scheme;
    freshness = Freshness.init device policy;
    precomputed_key_schedule;
    spans = Ra_obs.Span.create ~clock:(fun () -> Cpu.elapsed_seconds cpu) ();
    stats = { requests_seen = 0; requests_rejected = 0; attestations_performed = 0 };
    keyed_cache = None;
  }

let device t = t.device
let freshness t = t.freshness
let scheme t = t.scheme
let stats t = t.stats
let spans t = t.spans

let cpu t = Device.cpu t.device

let read_key_blob t =
  Cpu.load_bytes (cpu t) (Device.key_addr t.device) (Device.key_len t.device)

let read_attested_memory t =
  String.concat ""
    (List.map
       (fun (base, len) -> Cpu.load_bytes (cpu t) base len)
       (Device.attested_ranges t.device))

let measure_memory t =
  Cpu.with_context (cpu t) Device.region_attest (fun () -> read_attested_memory t)

let keyed_for t sym_key =
  match t.keyed_cache with
  | Some (k, kc) when String.equal k sym_key -> kc
  | Some _ | None ->
    let kc = Auth.keyed sym_key in
    t.keyed_cache <- Some (sym_key, kc);
    kc

let authenticate t (req : Message.attreq) =
  match t.scheme with
  | None -> Ok () (* unauthenticated baseline: trust anything *)
  | Some scheme ->
    Cpu.consume_cycles (cpu t)
      (Timing.request_auth_cycles ~precomputed_key_schedule:t.precomputed_key_schedule
         scheme);
    let key_blob = read_key_blob t in
    let body = Message.request_body ~challenge:req.challenge ~freshness:req.freshness in
    let hmac_keyed = keyed_for t (Auth.blob_sym_key key_blob) in
    if Auth.verify_request ~hmac_keyed scheme ~key_blob ~body req.tag then Ok ()
    else Error Bad_auth

let attest t (req : Message.attreq) =
  let len = Device.attested_total_len t.device in
  Cpu.consume_cycles (cpu t) (Timing.memory_mac_cycles ~bytes_len:len);
  let image = read_attested_memory t in
  let resp =
    {
      Message.echo_challenge = req.challenge;
      echo_freshness = req.freshness;
      report = "";
    }
  in
  let body = Message.response_body resp in
  let key = Auth.blob_sym_key (read_key_blob t) in
  {
    resp with
    Message.report =
      Auth.response_report_keyed ~keyed:(keyed_for t key) ~body ~memory_image:image;
  }

let bump_seen t = t.stats <- { t.stats with requests_seen = t.stats.requests_seen + 1 }

let bump_rejected t =
  t.stats <- { t.stats with requests_rejected = t.stats.requests_rejected + 1 }

let bump_attested t =
  t.stats <-
    { t.stats with attestations_performed = t.stats.attestations_performed + 1 }

let handle_request t req =
  bump_seen t;
  let run () =
    Cpu.consume_cycles (cpu t) bookkeeping_cycles;
    match Ra_obs.Span.with_span t.spans "anchor.auth" (fun () -> authenticate t req) with
    | Error e -> Error e
    | Ok () ->
      (match
         Ra_obs.Span.with_span t.spans "anchor.freshness" (fun () ->
             Freshness.check_and_update t.freshness req.Message.freshness)
       with
      | Error e -> Error (Not_fresh e)
      | Ok () -> Ok (Ra_obs.Span.with_span t.spans "anchor.mac" (fun () -> attest t req)))
  in
  let result =
    try Cpu.with_context (cpu t) Device.region_attest run
    with Cpu.Protection_fault fault -> Error (Anchor_fault fault)
  in
  (match result with
  | Ok _ ->
    Ra_obs.Registry.Counter.inc M.attested;
    bump_attested t
  | Error e ->
    Ra_obs.Registry.Counter.inc
      (match e with
      | Bad_auth -> M.bad_auth
      | Not_fresh _ -> M.not_fresh
      | Anchor_fault _ -> M.fault);
    bump_rejected t);
  result

(* The channel-authenticated path: a request arriving inside an
   established secure session already carries channel-level authenticity
   (CMAC over the record) and freshness (the anti-replay window), so the
   anchor skips its own auth tag and strict-counter checks — which would
   reject legitimately reordered in-session requests — and goes straight
   to the measured MAC sweep. Bookkeeping and memory-MAC cycle charges,
   the protected execution context and the [anchor.mac] span are
   identical to the one-shot path. *)
let handle_channel_request t req =
  bump_seen t;
  let run () =
    Cpu.consume_cycles (cpu t) bookkeeping_cycles;
    Ok (Ra_obs.Span.with_span t.spans "anchor.mac" (fun () -> attest t req))
  in
  let result =
    try Cpu.with_context (cpu t) Device.region_attest run
    with Cpu.Protection_fault fault -> Error (Anchor_fault fault)
  in
  (match result with
  | Ok _ ->
    Ra_obs.Registry.Counter.inc M.attested;
    bump_attested t
  | Error _ ->
    Ra_obs.Registry.Counter.inc M.fault;
    bump_rejected t);
  result

let to_verdict = function
  | Bad_auth -> Verdict.Bad_auth
  | Not_fresh r -> Verdict.Not_fresh r
  | Anchor_fault f ->
    Verdict.Fault { fault_addr = f.Cpu.fault_addr; fault_code = f.Cpu.fault_code }

let handle_request_r t req =
  Result.map_error to_verdict (handle_request t req)

let handle_channel_request_r t req =
  Result.map_error to_verdict (handle_channel_request t req)

let pp_reject fmt = function
  | Bad_auth -> Format.pp_print_string fmt "authentication failed"
  | Not_fresh r -> Format.fprintf fmt "not fresh: %a" Freshness.pp_reject r
  | Anchor_fault f ->
    Format.fprintf fmt "trust anchor denied access at 0x%06x (context %s)"
      f.Cpu.fault_addr f.Cpu.fault_code
