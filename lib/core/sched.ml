module Simtime = Ra_net.Simtime
module Trace = Ra_net.Trace

type event = { ev_at : float; ev_seq : int; ev_fn : unit -> unit }

(* How a scheduler reports into the metrics layer. The default sink hits
   the shared atomic registry handles directly; the sharded engines give
   each shard an [Ra_obs.Arena]-backed sink instead, so the per-event hot
   path touches only domain-local memory and the registry sees one bulk
   merge per shard, in shard order. *)
type metrics = {
  mx_scheduled : unit -> unit;
  mx_fired : unit -> unit;
  mx_depth : int -> unit;
  mx_lag : float -> unit;
}

type t = {
  mutable now : float;
  mutable heap : event array; (* binary min-heap, first [size] slots live *)
  mutable size : int;
  mutable seq : int; (* insertion order, the deterministic tie-break *)
  mutable fired : int;
  trace : Trace.t option;
  mx : metrics;
  track : Ra_obs.Profiler.Track.t option; (* queue depth over sim time *)
}

(* Handles precreated at module init: per-event cost is atomic adds, never
   a registry mutex. *)
module M = struct
  open Ra_obs.Registry

  let scheduled = Counter.get ~labels:[ ("kind", "scheduled") ] "ra_sched_events_total"
  let fired = Counter.get ~labels:[ ("kind", "fired") ] "ra_sched_events_total"
  let depth = Gauge.get "ra_sched_queue_depth"

  (* seconds of member-clock lead over the shared timeline; members run
     ahead by exactly the anchor/pump work their events performed, so the
     buckets span micro-work to whole reply windows *)
  let lag_buckets = [| 0.001; 0.01; 0.1; 0.5; 1.0; 5.0; 30.0; 120.0; 600.0 |]
  let lag = Histogram.get ~buckets:lag_buckets "ra_sched_lag_seconds"
end

let global_metrics =
  {
    mx_scheduled = (fun () -> Ra_obs.Registry.Counter.inc M.scheduled);
    mx_fired = (fun () -> Ra_obs.Registry.Counter.inc M.fired);
    mx_depth = (fun d -> Ra_obs.Registry.Gauge.set M.depth (float_of_int d));
    mx_lag = (fun l -> Ra_obs.Registry.Histogram.observe M.lag l);
  }

let arena_metrics arena =
  let open Ra_obs.Arena in
  let scheduled = Counter.make arena M.scheduled in
  let fired = Counter.make arena M.fired in
  let depth = Gauge.make arena M.depth in
  let lag = Histogram.make arena M.lag in
  {
    mx_scheduled = (fun () -> Counter.inc scheduled);
    mx_fired = (fun () -> Counter.inc fired);
    mx_depth = (fun d -> Gauge.set depth (float_of_int d));
    mx_lag = (fun l -> Histogram.observe lag l);
  }

let create ?(start = 0.0) ?trace ?(metrics = global_metrics) ?track () =
  { now = start; heap = [||]; size = 0; seq = 0; fired = 0; trace; mx = metrics;
    track }

let now t = t.now
let pending t = t.size
let fired t = t.fired

(* (at, seq) lexicographic order: earlier time first, insertion order on
   ties — the whole determinism guarantee lives in this comparison *)
let before a b = a.ev_at < b.ev_at || (a.ev_at = b.ev_at && a.ev_seq < b.ev_seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let at t ~at:when_ fn =
  (* never schedule into the past: an event "due" before the shared clock
     (a member resumed out of a wait its private clock already served)
     fires at the next step instead of rewinding the timeline *)
  let when_ = Float.max when_ t.now in
  let ev = { ev_at = when_; ev_seq = t.seq; ev_fn = fn } in
  t.seq <- t.seq + 1;
  if t.size = Array.length t.heap then begin
    let grown = Array.make (max 16 (2 * t.size)) ev in
    Array.blit t.heap 0 grown 0 t.size;
    t.heap <- grown
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  t.mx.mx_scheduled ();
  t.mx.mx_depth t.size;
  match t.track with
  | None -> ()
  | Some tr -> Ra_obs.Profiler.Track.push tr ~at:t.now (float_of_int t.size)

let after t ~delay fn =
  if not (delay >= 0.0) then invalid_arg "Sched.after: delay must be >= 0";
  at t ~at:(t.now +. delay) fn

let next_at t = if t.size = 0 then None else Some t.heap.(0).ev_at

let pop t =
  let ev = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  ev

let observe_lag t ~member_now = t.mx.mx_lag (Float.max 0.0 (member_now -. t.now))

let step t =
  if t.size = 0 then false
  else begin
    let ev = pop t in
    (* virtual time jumps to the event — monotone because insertions are
       clamped to [now] *)
    t.now <- ev.ev_at;
    t.fired <- t.fired + 1;
    t.mx.mx_fired ();
    t.mx.mx_depth t.size;
    (match t.track with
    | None -> ()
    | Some tr -> Ra_obs.Profiler.Track.push tr ~at:t.now (float_of_int t.size));
    (match t.trace with
    | None -> ()
    | Some trace ->
      Trace.causal_instant trace ~cat:"sched"
        ~labels:[ ("at", Printf.sprintf "%.6f" ev.ev_at) ]
        "sched.fire");
    ev.ev_fn ();
    true
  end

let run ?until t =
  let within () =
    match (until, next_at t) with
    | _, None -> false
    | None, Some _ -> true
    | Some horizon, Some at -> at <= horizon
  in
  let n = ref 0 in
  while within () do
    ignore (step t);
    incr n
  done;
  !n
