(** The trust anchor on the prover: the paper's [Code_attest].

    It is the only code allowed to read K_attest and the only code
    allowed to write counter_R — when the EA-MPU rules of §6.2 are in
    place. All its memory accesses run in the ["rom_attest"] execution
    context through {!Ra_mcu.Cpu}, so if an architecture forgets a rule
    (or malware disabled the MPU before lockdown), the consequences are
    real in the simulation too.

    Cycle/energy cost: handling a request charges the Table-1-calibrated
    cycle cost of the authentication check; an accepted request
    additionally charges the full memory-MAC sweep (§3.1, ≈754 ms for
    512 KB). Both are visible on the device's battery. *)

type reject =
  | Bad_auth
  | Not_fresh of Freshness.reject
  | Anchor_fault of Ra_mcu.Cpu.fault
      (* the anchor itself was denied access — broken configuration *)

type stats = {
  requests_seen : int;
  requests_rejected : int;
  attestations_performed : int;
}

type t

val install :
  Ra_mcu.Device.t ->
  scheme:Ra_mcu.Timing.auth_scheme option ->
  policy:Freshness.policy ->
  ?precomputed_key_schedule:bool ->
  unit ->
  t
(** [scheme = None] models the unauthenticated baseline: every request —
    genuine or bogus — triggers a full attestation. *)

val device : t -> Ra_mcu.Device.t
val freshness : t -> Freshness.state
val scheme : t -> Ra_mcu.Timing.auth_scheme option
val stats : t -> stats

val spans : t -> Ra_obs.Span.t
(** Span context clocked by the device CPU's elapsed seconds:
    [anchor.auth], [anchor.freshness] and [anchor.mac] spans time the
    phases of each {!handle_request} in simulated milliseconds. *)

val handle_request_r : t -> Message.attreq -> (Message.attresp, Verdict.t) result
(** The primary entry point: process one attestation request end to end,
    errors in the unified {!Verdict.t} vocabulary. *)

val handle_channel_request_r :
  t -> Message.attreq -> (Message.attresp, Verdict.t) result
(** Like {!handle_request_r} for a request that arrived {e inside} an
    established secure session: authenticity and freshness are already
    established by the record layer (CMAC + anti-replay window), so the
    per-request auth-tag and monotone-counter checks are skipped — they
    would wrongly reject in-session requests the impairment layer
    reordered. The measured memory-MAC sweep, its cycle/energy charges
    and the protected execution context are unchanged. *)

val to_verdict : reject -> Verdict.t
(** Embed an anchor reject into the unified {!Verdict.t}. *)

val measure_memory : t -> string
(** The raw attested-memory image as [Code_attest] reads it (for tests
    and for provisioning the verifier's reference image). *)

val pp_reject : Format.formatter -> reject -> unit
