(** Shard partitioning and the parallel shard runner.

    A shard is a contiguous slice of the member index range — shard [s]
    of [S] owns [\[s*n/S, (s+1)*n/S)]. Contiguity makes the merge
    trivial and deterministic: per-member outputs land at the member's
    own index (disjoint ranges), so reading results back in index order
    reproduces the sequential oracle's order with no cross-shard
    ordering decision left to make; everything else (metrics arenas,
    aggregate accumulators) is merged by the coordinator in shard order.
    The partition depends only on [(members, shards)], never on which
    domain runs which shard. *)

type range = { sh_lo : int; sh_hi : int }
(** Half-open member-index interval [\[sh_lo, sh_hi)]. *)

val partition : members:int -> shards:int -> range array
(** Balanced contiguous split: sizes differ by at most one, every index
    covered exactly once, [shards] entries (possibly empty ranges when
    [shards > members]).
    @raise Invalid_argument on [members < 0] or [shards < 1]. *)

val size : range -> int

val run : ?pool:Pool.t -> shards:int -> (int -> unit) -> unit
(** [run ~shards f] executes [f s] for every shard id [s] in
    [0 .. shards-1] on the calling domain plus pool helpers (default
    {!Pool.shared}); returns when all shards completed, re-raising the
    first exception. Shard ids are distributed dynamically — shard
    bodies must touch only their own member range and their own arena.
    [shards = 1] degrades to a plain call on the caller.
    @raise Invalid_argument on [shards < 1]. *)
