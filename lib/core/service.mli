(** Future-work item 3 of the paper: "generalize proposed techniques to
    other network protocols (beyond attestation) to mitigate DoS attacks
    on other security services on embedded devices".

    Any request/response service on the prover can be wrapped in the same
    envelope the attestation protocol uses — verifier authentication
    (§4.1) plus a freshness policy (§4.2) whose state lives in protected
    memory — so that bogus or replayed invocations are rejected before
    the expensive service body runs. Secure memory erasure and code
    update are the examples the paper's introduction names. *)

type command =
  | Secure_erase (* zero the attested RAM *)
  | Code_update of { image : string } (* install new application code *)
  | Ping (* cheap liveness check *)

type request = {
  command : command;
  freshness : Message.freshness_field;
  tag : Message.auth_tag;
}

type ack = {
  acked_command : string; (* name echo *)
  ack_report : string; (* HMAC under K_attest over the result *)
}

type reject =
  | Service_bad_auth
  | Service_not_fresh of Freshness.reject
  | Service_fault of Ra_mcu.Cpu.fault

type stats = {
  invocations : int; (* accepted and executed *)
  breakdown : (Verdict.reason * int) list;
      (** non-zero rejection counts in {!Verdict.Reason.all} order — the
          same [(reason * int)] shape (and Prometheus [reason] label set)
          the verifier-side [Server] exports *)
}

val rejections : stats -> int
(** Total across all rejection reasons. *)

val rejected : stats -> Verdict.reason -> int
(** Count for one reason (0 if absent from the breakdown). *)

type t

val service_cell_offset : int
(** NVRAM byte offset of the service's own freshness cell (disjoint from
    attestation's and clock-sync's cells). *)

val rule_protect_service_state : Ra_mcu.Device.t -> Ra_mcu.Ea_mpu.rule

val install :
  Ra_mcu.Device.t ->
  scheme:Ra_mcu.Timing.auth_scheme option ->
  policy:Freshness.policy ->
  t

val stats : t -> stats

val spans : t -> Ra_obs.Span.t
(** The service's span context, clocked by the device CPU's elapsed
    seconds: [service.auth], [service.freshness] and [service.execute]
    spans cover each {!handle}. *)

val command_name : command -> string

val request_body : command -> Message.freshness_field -> string
(** What the request tag covers. *)

val make_request :
  sym_key:string ->
  scheme:Ra_mcu.Timing.auth_scheme option ->
  freshness:Message.freshness_field ->
  command ->
  request
(** Verifier-side construction (symmetric schemes). *)

val handle_r : t -> request -> (ack, Verdict.t) result
(** The primary entry point: authenticate, check freshness, then execute
    the command body with its modeled cycle cost (erase: one write per
    byte; update: one flash word program per 4 bytes; ping: bookkeeping
    only). Errors are the unified {!Verdict.t}. *)

val to_verdict : reject -> Verdict.t
(** Embed a service reject into the unified {!Verdict.t}. *)

val request_to_wire : request -> Message.wire
(** Serialize for the channel (frame type [V]). *)

val request_of_wire : Message.wire -> request option
(** [None] for non-service frames or unknown command names. *)

val ack_to_wire : ack -> Message.wire

val pp_reject : Format.formatter -> reject -> unit
