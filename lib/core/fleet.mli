(** Fleet management — the paper's future-work item 1 ("trial-deploy
    proposed methods in the context of connected devices, such as
    Internet of Things").

    One verifier operates many provers: periodic sweeps, a per-device
    health ledger derived from attestation verdicts, and staggered sweep
    scheduling so a large fleet does not synchronize its 754 ms
    attestation bursts (which would turn the *verifier's own schedule*
    into the §3.1 availability problem). *)

type health =
  | Healthy (* latest sweep: trusted *)
  | Compromised (* latest sweep: untrusted state / invalid response *)
  | Unresponsive (* latest sweep produced no response *)
  | Unknown (* never swept *)

type member

val member_name : member -> string
val member_session : member -> Session.t
val member_health : member -> health
val sweeps_of : member -> int

val member_history : member -> (float * Verifier.verdict option) list
(** Every sweep's (simulated completion time, verdict), chronological. *)

type t

val create : ?spec:Architecture.spec -> ?ram_size:int -> names:string list -> unit -> t
(** One independent prover world per name (default spec:
    {!Architecture.trustlite_base}).
    @raise Invalid_argument on duplicate or empty names. *)

val members : t -> member list

val find : t -> string -> member
(** @raise Not_found *)

val advance : t -> seconds:float -> unit
(** Let time pass everywhere. *)

val sweep_one : t -> string -> Verifier.verdict option
(** Attest one device now and update its ledger. *)

val sweep : t -> (string * Verifier.verdict option) list
(** Attest every device, staggered by {!stagger_seconds} of simulated
    time between consecutive devices. Sequential — the default, and the
    reference semantics for {!sweep_par}. *)

val sweep_par : ?domains:int -> t -> (string * Verifier.verdict option) list
(** Same verdicts, health ledger and per-member simulated clocks as
    {!sweep} (members are independent prover worlds), computed on up to
    [domains] OCaml domains (default 4, clamped to the member count).
    Results are returned in member order regardless of completion order.
    Wall-clock scaling is measured by [bench/main.exe hotpath]. *)

val stagger_seconds : float
(** 1 s between consecutive devices in a sweep. *)

val summary : t -> (string * health * int) list
(** (name, current health, sweeps performed) for every member. *)

val compromised : t -> string list
(** Names currently flagged. *)

val pp_health : Format.formatter -> health -> unit

val health_label : health -> string
(** Lower-case metric label (["healthy"], ["compromised"], ...). *)

(** {2 Health snapshot (observability export)}

    Sweep latencies are recorded per sweep into the
    [ra_fleet_sweep_latency_ms] histogram (simulated milliseconds from
    request send to verdict, including any DoS-induced queueing). *)

type member_report = {
  r_name : string;
  r_health : health;
  r_sweeps : int;
  r_history : (float * Verifier.verdict option) list; (* chronological *)
  r_service_stats : Service.stats; (* rejection breakdown by reason *)
  r_anchor_stats : Code_attest.stats;
}

type snapshot = {
  s_members : member_report list;
  s_healthy : int;
  s_compromised : int;
  s_unresponsive : int;
  s_unknown : int;
  s_sweep_latency_p50_ms : float;
  s_sweep_latency_p90_ms : float;
  s_sweep_latency_p99_ms : float;
}

val sweep_latency_buckets : float array

val health_snapshot : ?registry:Ra_obs.Registry.t -> t -> snapshot
(** Build the fleet health snapshot and mirror it into gauges:
    [ra_fleet_members{health=...}] plus every member's device meters via
    {!Ra_mcu.Device.observe_gauges} with a [device="<name>"] label. *)

val render_health : snapshot -> string
(** Human-readable health table (used by [ra_cli stats]). *)
