(** Fleet management — the paper's future-work item 1 ("trial-deploy
    proposed methods in the context of connected devices, such as
    Internet of Things").

    One verifier operates many provers: periodic sweeps, a per-device
    health ledger derived from attestation verdicts, and staggered sweep
    scheduling so a large fleet does not synchronize its 754 ms
    attestation bursts (which would turn the *verifier's own schedule*
    into the §3.1 availability problem). *)

type health =
  | Healthy (* latest sweep: trusted *)
  | Compromised (* latest sweep: untrusted state / invalid response *)
  | Unresponsive (* latest sweep produced no response *)
  | Unknown (* never swept *)

type member

val member_name : member -> string
val member_session : member -> Session.t
val member_health : member -> health
val sweeps_of : member -> int

val member_history : member -> (float * Verdict.t option) list
(** Every sweep's (simulated completion time, verdict), chronological. *)

type t

val create : ?spec:Architecture.spec -> ?ram_size:int -> names:string list -> unit -> t
(** One independent prover world per name (default spec:
    {!Architecture.trustlite_base}).
    @raise Invalid_argument on duplicate or empty names. *)

val members : t -> member list

val find : t -> string -> member
(** @raise Not_found *)

val advance : t -> seconds:float -> unit
(** Let time pass everywhere. *)

val sweep_one : t -> string -> Verdict.t option
(** Attest one device now and update its ledger. *)

val sweep :
  ?engine:[ `Seq | `Events | `Shards of int ] ->
  t ->
  (string * Verdict.t option) list
(** Attest every device, staggered by {!stagger_seconds} of simulated
    time between consecutive devices: member [i]'s round happens at
    [(i+1) *. stagger_seconds] past the sweep start, and every member
    exits the sweep with its clock advanced by the whole fleet's stagger
    plus its own round work. Offsets are index-based (one multiplication
    per member), so the sweep is O(n) and member clocks carry no
    accumulated rounding drift at 10k+ members.

    [`Seq] (the default) folds over the members in order — the reference
    oracle. [`Events] runs the identical per-member operations as events
    on a {!Sched} timeline; verdicts, transcripts, ledgers and member
    clocks are bit-identical to [`Seq], plus [ra_sched_*] metrics.
    [`Shards k] partitions the members into [k] contiguous ranges
    ({!Shard.partition}), runs one event timeline per shard on the
    persistent domain pool, and merges deterministically: results are
    read back in member order and each shard's buffered metrics arena is
    flushed in shard order — verdicts, ledgers, clocks, transcripts and
    metric totals are identical to [`Seq] at {e every} shard count.
    @raise Invalid_argument on [`Shards k] with [k < 1]. *)

val sweep_shards :
  ?pool:Pool.t ->
  ?tracks:Ra_obs.Profiler.Track.t array ->
  shards:int ->
  t ->
  (string * Verdict.t option) list
(** The [`Shards] engine directly, with two extra knobs: [pool]
    substitutes a private domain pool, and [tracks] (one track per
    shard) lets each shard's scheduler record its [(sim_time, depth)]
    queue-depth series — merge them with {!Ra_obs.Profiler.Track.merge}
    into a deterministic [ra_sched_queue_depth] Perfetto counter track.
    @raise Invalid_argument when [tracks] has a different length than
    [shards]. *)

val sweep_par :
  ?domains:int ->
  ?spawn:[ `Pool | `Fresh ] ->
  t ->
  (string * Verdict.t option) list
(** Same verdicts, health ledger and per-member simulated clocks as
    {!sweep} (members are independent prover worlds), computed on up to
    [domains] OCaml domains (default 4, clamped to the member count).
    Results are returned in member order regardless of completion order.
    [`Pool] (the default) borrows helper domains from the persistent
    {!Pool.shared} pool; [`Fresh] spawns and joins throwaway domains on
    every call — the pre-pool behaviour, kept so
    [bench/main.exe hotpath] can measure what the pool buys. *)

val stagger_seconds : float
(** 1 s between consecutive devices in a sweep. *)

(** {2 Chaos sweeps}

    A chaos sweep runs the retry engine against a deliberately impaired
    wire, over a grid of loss rates × backoff policies, and reports how
    often — and how fast — rounds still converge. This is the §3.1
    availability question asked from the network side: the paper hardens
    the prover against bogus requests; the chaos sweep measures what the
    *benign* protocol machinery must tolerate. *)

type chaos_cell = {
  c_loss : float;  (** per-direction i.i.d. loss probability *)
  c_policy : string;  (** policy name as given to {!chaos_sweep} *)
  c_rounds : int;  (** members × rounds_per_member *)
  c_converged : int;  (** rounds that produced a verdict *)
  c_mean_attempts : float;  (** transmissions per round, averaged *)
  c_p50_s : float;
      (** convergence-time percentiles (simulated s), over converged
          rounds only; 0 when nothing converged *)
  c_p90_s : float;
  c_p99_s : float;
}

type workload = [ `Attest | `Session of int ]
(** What one chaos "round" executes. [`Attest] is the classic one-shot
    retry round ({!Session.round_begin}); [`Session n] is one full
    secure-session lifecycle — attested handshake, [n] streamed
    encrypt-then-MAC attestation records, best-effort close
    ({!Secure_session.round_begin}). Both produce a {!Session.round},
    so accumulators, ledgers and capsules are workload-agnostic. *)

val workload_label : workload -> string
(** ["attest"] or ["session:<n>"] — the form capsules embed. *)

val workload_of_label : string -> workload option
(** Total inverse of {!workload_label}. *)

val chaos_latency_buckets : float array
(** Buckets of [ra_chaos_round_time_ms] — wider than the sweep-latency
    buckets, since backed-off rounds legitimately take tens of seconds. *)

val classify_verdict : Verdict.t -> health
(** Unified-verdict analogue of the sweep classifier: [Trusted] is
    healthy; wrong state, invalid responses and anchor faults are
    compromised; timeouts and rejected requests are unresponsive. *)

val chaos_sweep :
  ?seed:int64 ->
  ?domains:int ->
  ?rounds_per_member:int ->
  ?engine:[ `Seq | `Events | `Shards of int ] ->
  ?workload:workload ->
  losses:float list ->
  policies:(string * Retry.policy) list ->
  t ->
  chaos_cell list
(** For every (loss, policy) cell: give each member its own
    deterministically-seeded impairment, run [rounds_per_member]
    rounds of [workload] (default [`Attest]) per member with the usual
    1 s stagger, then restore a pristine wire. Updates each member's health ledger from
    its last round, feeds [ra_chaos_rounds_total{result}] and
    [ra_chaos_round_time_ms], and remembers the grid for
    {!health_snapshot}.

    Seeding is positional: each cell draws one root from [seed], and
    member [i]'s impairment seed is
    [Impairment.derive_seed ~root ~index:i] — a pure function of the
    pair, so the wire schedule member [i] experiences is identical
    across [domains] settings, shard counts and engines.

    With [engine:`Seq] (the default), members run on up to [domains]
    OCaml domains (default 4, helpers borrowed from {!Pool.shared});
    results are deterministic in [seed] regardless. With
    [engine:`Events], every retry timeout and backoff wait becomes an
    event on one shared {!Sched} timeline ([domains] is ignored — the
    engine is single-threaded and deterministic by construction); each
    member executes the identical operation sequence as the sequential
    engine, so the grid, ledgers, transcripts and member clocks are
    bit-identical between engines. With [engine:`Shards k], each of [k]
    contiguous member ranges drives its own timeline on the pool with
    its own buffered metrics arena; the deterministic merge (member
    order for results, shard order for arena flushes) makes every
    output identical to the other engines at every shard count.
    @raise Invalid_argument on an empty grid, an invalid policy, or
    [`Shards k] with [k < 1]. *)

val last_chaos : t -> chaos_cell list
(** The grid from the most recent {!chaos_sweep} (empty before any). *)

val convergence_pct : chaos_cell -> float
(** [100 * converged / rounds]. *)

(** {2 Failure forensics}

    With forensics enabled, every chaos sweep records {e replay
    capsules} (see {!Ra_obs.Forensics}) into a bounded ring next to the
    flight recorder: one [Failure] capsule per round that ends
    non-[Trusted], plus one [Slowest] capsule per cell — the slowest
    converged round, the latency-SLO exemplar. Capture is out-of-band:
    it only reads member-local state, so verdicts, transcripts, ledgers
    and clocks are byte-identical with capture on or off, and the
    capsule stream itself is identical at every [domains]/[shards]/
    engine setting (candidates are member-local; the coordinator merges
    them in member-index order after each cell). *)

val enable_forensics : ?capacity:int -> t -> Ra_obs.Forensics.t
(** Attach a capsule ring ([capacity] capsules, default 256) if none is
    attached yet; returns the ring (idempotent). *)

val disable_forensics : t -> unit
val forensics : t -> Ra_obs.Forensics.t option

val capsules : t -> Ra_obs.Forensics.capsule list
(** Captured capsules, oldest first; empty when forensics is off. *)

val config_digest : t -> string
(** Hex digest of the fleet's world recipe (spec name, RAM size) — the
    replay-target guard embedded in every capsule. *)

type replay = {
  rp_verdict : Verdict.t;
  rp_attempts : int;
  rp_elapsed_s : float;
  rp_started_at : float;  (** member clock at round start *)
  rp_digest : string;  (** wire digest of the re-executed round *)
  rp_match : bool;
      (** verdict, attempts, elapsed time, start clock {e and} wire
          digest all byte-identical to the capture *)
  rp_round : Ra_obs.Trace.round option;  (** the round's causal trace *)
  rp_profile : Ra_obs.Profiler.t option;  (** its cycle/energy profile *)
}

val replay_capsule : t -> Ra_obs.Forensics.capsule -> (replay, string) result
(** Re-execute exactly the captured round in a fresh session, with
    tracing and profiling forced on (both are out-of-band, so forcing
    them cannot perturb the outcome). The capsule pins the sweep seed,
    grid and member position; the member's full pre-capture history
    (prior cells, earlier rounds of the captured cell) is fast-forwarded
    first so every PRNG draw lines up, then the captured round runs and
    is compared byte-for-byte. [Error] explains why a capsule cannot be
    replayed against this fleet (deadline-miss kind, config mismatch,
    pre-sweep member history, out-of-range indices, or an impairment
    seed that does not re-derive — a tampered capsule). *)

val annotate_exemplars : t -> int
(** Stamp the captured capsules into [ra_chaos_round_time_ms] as bucket
    exemplars ({!Ra_obs.Forensics.annotate_exemplars}); returns how many
    carried a trace id and were stamped. Requires tracing to have been
    on during the sweep for non-zero effect. *)

(** {2 Streaming sweeps}

    A materialised member world costs ~88 KB (dominated by the device's
    flash image), so a million-member {!t} would need ~88 GB. The
    streaming sweep keeps {e one} live session per shard at a time:
    create member [i]'s world, run exactly the staggered operation
    sequence {!sweep} runs, fold the outcome into per-shard tallies and
    an order-independent fingerprint, drop the world. Peak memory is
    O(shards), independent of the fleet size. *)

type stream_report = {
  st_members : int;
  st_shards : int;
  st_healthy : int;
  st_compromised : int;
  st_unresponsive : int;
  st_fingerprint : string;
      (** XOR of per-member SHA-1 digests over (name, verdict, final
          member clock, full wire transcript), hex-encoded. XOR makes it
          invariant under any partition of the member range — the
          checkable analogue of the materialised engines' byte-identity:
          equal across shard counts, and equal to {!fingerprint} of a
          materialised fleet that ran the same sweep. *)
}

val stream_sweep :
  ?spec:Architecture.spec ->
  ?ram_size:int ->
  ?shards:int ->
  ?pool:Pool.t ->
  ?name_of:(int -> string) ->
  members:int ->
  unit ->
  stream_report
(** Sweep a fleet of [members] freshly-created devices without ever
    materialising it, on [shards] pool-backed shards (default 1).
    [name_of] (default [dev-%07d]) names member [i] — it must be pure.
    The report is a pure function of [(spec, ram_size, members)]:
    tallies merge by sums and fingerprints by XOR, both
    order-independent, so shard count and domain schedule are
    unobservable.
    @raise Invalid_argument on [members < 1] or [shards < 1]. *)

val fingerprint : t -> string
(** The XOR-of-digests fingerprint of a materialised fleet's current
    state (each member's latest ledger verdict, clock and transcript) —
    comparable against {!stream_report.st_fingerprint} when both ran
    the same sweep over the same specs and names. *)

(** {2 Causal tracing}

    With tracing enabled every member session carries a flight recorder
    (see {!Session.enable_tracing}); each retry-engine round — including
    every chaos round — is recorded as one {!Ra_obs.Trace.round} under
    its own trace id, exportable with {!Ra_obs.Export.perfetto}. *)

val enable_tracing : ?capacity:int -> ?max_events:int -> t -> unit
(** Enable per-member flight recorders; the member name becomes the
    Perfetto process name. *)

val disable_tracing : t -> unit

val recent_rounds : t -> Ra_obs.Trace.round list
(** Sealed rounds still held in the members' rings, member order then
    oldest first. Empty when tracing was never enabled. *)

(** {2 Cycle/energy profiling}

    With profiling enabled every member session attributes its exact
    per-round cycle and energy spend to phases (see
    {!Session.enable_profiling}); {!profile} merges the per-member
    profiles into one fleet-wide profile, shard by shard. *)

val enable_profiling : ?capacity:int -> t -> unit
(** Attach a fresh profile to every member; the member name tags its
    phase samples (and becomes the Perfetto process name). *)

val disable_profiling : t -> unit

val profile : ?shards:int -> t -> Ra_obs.Profiler.t
(** Merge the members' profiles: contiguous member ranges per shard
    ({!Shard.partition}), members absorbed in index order into per-shard
    accumulators, accumulators absorbed in shard order — Arena-style.
    The folded stacks, phase totals and sample ring of the result are
    byte-identical at every shard count.
    @raise Invalid_argument when [shards < 1]. *)

(** {2 SLO watchdog}

    Typed objectives evaluated over the most recent chaos grid and the
    members' sweep ledgers, emitting [ra_slo_*] metrics (see
    {!Ra_obs.Slo}). *)

type slo_policy = {
  slo_min_convergence_pct : float;
      (** per chaos cell, [At_least] ({!default_slo_policy}: 99%) *)
  slo_max_p99_s : float;
      (** per chaos cell with ≥ 1 converged round, [At_most] (60 s) *)
  slo_max_rejection_pct : float;
      (** fleet-wide share of ledger entries that are not [Trusted] —
          rejections {e and} unanswered sweeps, [At_most] (1%) *)
}

val default_slo_policy : slo_policy

val slo_watch : ?policy:slo_policy -> t -> Ra_obs.Slo.check list
(** Evaluate the objectives now: two checks per chaos cell (latency
    skipped for cells where nothing converged) plus the fleet rejection
    rate (skipped while the ledgers are empty — an empty sweep yields no
    checks rather than vacuous passes). *)

val summary : t -> (string * health * int) list
(** (name, current health, sweeps performed) for every member. *)

val compromised : t -> string list
(** Names currently flagged. *)

val pp_health : Format.formatter -> health -> unit

val health_label : health -> string
(** Lower-case metric label (["healthy"], ["compromised"], ...). *)

(** {2 Health snapshot (observability export)}

    Sweep latencies are recorded per sweep into the
    [ra_fleet_sweep_latency_ms] histogram (simulated milliseconds from
    request send to verdict, including any DoS-induced queueing). *)

type member_report = {
  r_name : string;
  r_health : health;
  r_sweeps : int;
  r_history : (float * Verdict.t option) list; (* chronological *)
  r_service_stats : Service.stats; (* rejection breakdown by reason *)
  r_anchor_stats : Code_attest.stats;
}

type snapshot = {
  s_members : member_report list;
  s_healthy : int;
  s_compromised : int;
  s_unresponsive : int;
  s_unknown : int;
  s_sweep_latency_p50_ms : float;
  s_sweep_latency_p90_ms : float;
  s_sweep_latency_p99_ms : float;
  s_chaos : chaos_cell list; (* last chaos grid, empty before any sweep *)
  s_slo : Ra_obs.Slo.check list; (* = slo_watch with the default policy *)
}

val sweep_latency_buckets : float array

val health_snapshot : ?registry:Ra_obs.Registry.t -> t -> snapshot
(** Build the fleet health snapshot and mirror it into gauges:
    [ra_fleet_members{health=...}] plus every member's device meters via
    {!Ra_mcu.Device.observe_gauges} with a [device="<name>"] label. *)

val render_health : snapshot -> string
(** Human-readable health table (used by [ra_cli stats]). *)
