type health = Healthy | Compromised | Unresponsive | Unknown

type member = {
  name : string;
  session : Session.t;
  mutable health : health;
  mutable sweeps : int;
}

type t = {
  members : member list;
  index : (string, member) Hashtbl.t; (* name -> member, O(1) find *)
}

let member_name m = m.name
let member_session m = m.session
let member_health m = m.health
let sweeps_of m = m.sweeps

let stagger_seconds = 1.0

let create ?(spec = Architecture.trustlite_base) ?ram_size ~names () =
  if names = [] then invalid_arg "Fleet.create: no members";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then invalid_arg "Fleet.create: duplicate member name";
      Hashtbl.replace seen n ())
    names;
  let members =
    List.map
      (fun name ->
        { name; session = Session.create ~spec ?ram_size (); health = Unknown; sweeps = 0 })
      names
  in
  let index = Hashtbl.create (List.length members) in
  List.iter (fun m -> Hashtbl.replace index m.name m) members;
  { members; index }

let members t = t.members

let find t name =
  match Hashtbl.find_opt t.index name with
  | Some m -> m
  | None -> raise Not_found

let advance t ~seconds =
  List.iter (fun m -> Session.advance_time m.session ~seconds) t.members

let classify = function
  | Some Verifier.Trusted -> Healthy
  | Some Verifier.Untrusted_state | Some Verifier.Invalid_response -> Compromised
  | None -> Unresponsive

let sweep_member m =
  let verdict = Session.attest_round m.session in
  m.health <- classify verdict;
  m.sweeps <- m.sweeps + 1;
  verdict

let sweep_one t name = sweep_member (find t name)

let sweep t =
  List.map
    (fun m ->
      advance t ~seconds:stagger_seconds;
      (m.name, sweep_member m))
    t.members

(* Parallel sweep. Sessions are fully independent prover worlds (own
   Simtime/Trace/Channel/Verifier, no shared mutable state anywhere in the
   library), so independent members can be swept on separate domains.

   Equivalence with [sweep]: there, every member's clock is advanced by
   [stagger_seconds] once per member (n advances total), and member i is
   swept after i+1 of those advances. Sweeping a member only touches its
   own session, and advancing session A commutes with anything done to
   session B. So per member i it is equivalent to: advance its own clock
   i+1 steps, sweep it, advance the remaining n-i-1 steps — which needs no
   cross-member coordination at all. The advances are performed in the same
   unit steps as [sweep] so float accumulation (and therefore timestamp
   freshness) is bit-identical to the sequential path. *)
let sweep_par ?(domains = 4) t =
  let members = Array.of_list t.members in
  let n = Array.length members in
  let domains = max 1 (min domains n) in
  if domains = 1 then sweep t
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let m = members.(i) in
        for _ = 1 to i + 1 do
          Session.advance_time m.session ~seconds:stagger_seconds
        done;
        let verdict = sweep_member m in
        for _ = 1 to n - i - 1 do
          Session.advance_time m.session ~seconds:stagger_seconds
        done;
        results.(i) <- Some verdict;
        worker ()
      end
    in
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.to_list
      (Array.mapi
         (fun i m ->
           match results.(i) with
           | Some verdict -> (m.name, verdict)
           | None -> assert false)
         members)
  end

let summary t = List.map (fun m -> (m.name, m.health, m.sweeps)) t.members

let compromised t =
  List.filter_map
    (fun m -> match m.health with
      | Compromised -> Some m.name
      | Healthy | Unresponsive | Unknown -> None)
    t.members

let pp_health fmt = function
  | Healthy -> Format.pp_print_string fmt "healthy"
  | Compromised -> Format.pp_print_string fmt "COMPROMISED"
  | Unresponsive -> Format.pp_print_string fmt "unresponsive"
  | Unknown -> Format.pp_print_string fmt "unknown"
