type health = Healthy | Compromised | Unresponsive | Unknown

type member = {
  name : string;
  session : Session.t;
  mutable health : health;
  mutable sweeps : int;
  mutable history : (float * Verdict.t option) list; (* newest first *)
}

type chaos_cell = {
  c_loss : float;
  c_policy : string;
  c_rounds : int;
  c_converged : int;
  c_mean_attempts : float;
  c_p50_s : float;
  c_p90_s : float;
  c_p99_s : float;
}

type t = {
  members : member list;
  index : (string, member) Hashtbl.t; (* name -> member, O(1) find *)
  spec : Architecture.spec; (* every member's world recipe *)
  ram_size : int option;
  mutable last_chaos : chaos_cell list; (* most recent chaos_sweep grid *)
  mutable forensics : Ra_obs.Forensics.t option; (* capsule ring when capturing *)
}

let member_name m = m.name
let member_session m = m.session
let member_health m = m.health
let sweeps_of m = m.sweeps
let member_history m = List.rev m.history

let sweep_latency_buckets =
  [| 1.0; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 750.0; 1000.0; 2500.0 |]

(* observed from sweep_par workers too: handle is atomic, created once *)
let sweep_latency =
  Ra_obs.Registry.Histogram.get ~buckets:sweep_latency_buckets
    "ra_fleet_sweep_latency_ms"

let chaos_latency_buckets =
  [|
    1.0; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0; 2500.0; 5000.0;
    10000.0; 30000.0; 60000.0; 120000.0;
  |]

(* observed from chaos workers on several domains: handles are atomic *)
module Mc = struct
  let round r =
    Ra_obs.Registry.Counter.get ~labels:[ ("result", r) ] "ra_chaos_rounds_total"

  let converged = round "converged"
  let timed_out = round "timed_out"

  let time =
    Ra_obs.Registry.Histogram.get ~buckets:chaos_latency_buckets
      "ra_chaos_round_time_ms"
end

(* Where sweep and chaos rounds report their observations. The default
   sink is the shared registry (atomic handles, safe from any domain);
   the sharded engines substitute a per-shard {!Ra_obs.Arena} sink so
   the per-round hot path touches only domain-local memory, and the
   coordinator merges arenas in shard order — same totals, same
   registry families, deterministic merge. *)
type obs = {
  o_sweep_ms : float -> unit;
  o_chaos_ms : float -> unit;
  o_converged : unit -> unit;
  o_timed_out : unit -> unit;
}

let global_obs =
  {
    o_sweep_ms = Ra_obs.Registry.Histogram.observe sweep_latency;
    o_chaos_ms = Ra_obs.Registry.Histogram.observe Mc.time;
    o_converged = (fun () -> Ra_obs.Registry.Counter.inc Mc.converged);
    o_timed_out = (fun () -> Ra_obs.Registry.Counter.inc Mc.timed_out);
  }

let arena_obs arena =
  let module A = Ra_obs.Arena in
  let sweep_ms = A.Histogram.make arena sweep_latency in
  let chaos_ms = A.Histogram.make arena Mc.time in
  let converged = A.Counter.make arena Mc.converged in
  let timed_out = A.Counter.make arena Mc.timed_out in
  {
    o_sweep_ms = A.Histogram.observe sweep_ms;
    o_chaos_ms = A.Histogram.observe chaos_ms;
    o_converged = (fun () -> A.Counter.inc converged);
    o_timed_out = (fun () -> A.Counter.inc timed_out);
  }

let stagger_seconds = 1.0

let create ?(spec = Architecture.trustlite_base) ?ram_size ~names () =
  if names = [] then invalid_arg "Fleet.create: no members";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then invalid_arg "Fleet.create: duplicate member name";
      Hashtbl.replace seen n ())
    names;
  let members =
    List.map
      (fun name ->
        {
          name;
          session = Session.create ~spec ?ram_size ();
          health = Unknown;
          sweeps = 0;
          history = [];
        })
      names
  in
  let index = Hashtbl.create (List.length members) in
  List.iter (fun m -> Hashtbl.replace index m.name m) members;
  { members; index; spec; ram_size; last_chaos = []; forensics = None }

let members t = t.members

let find t name =
  match Hashtbl.find_opt t.index name with
  | Some m -> m
  | None -> raise Not_found

let advance t ~seconds =
  List.iter (fun m -> Session.advance_time m.session ~seconds) t.members

(* ---- forensic capture plumbing ---- *)

(* One wire frame's contribution to a digest — shared between the
   whole-transcript [session_digest] and the per-round [window_digest],
   so a replayed round window can be checked against a capture made by
   either. *)
let feed_frames ctx frames =
  List.iter
    (fun { Ra_net.Channel.sent_at; src; payload } ->
      Ra_crypto.Sha1.feed ctx
        (Printf.sprintf "|%h|%s|%d|" sent_at
           (match src with
           | Ra_net.Channel.Verifier_side -> "v"
           | Ra_net.Channel.Prover_side -> "p")
           (String.length payload));
      Ra_crypto.Sha1.feed ctx payload)
    frames

(* Hex SHA-1 over the transcript entries in [\[tstart, tend)] — the wire
   activity of exactly one round, byte-for-byte. *)
let window_digest session ~tstart ~tend =
  let frames =
    List.filteri
      (fun i _ -> i < tend - tstart)
      (Ra_net.Channel.transcript_from (Session.channel session) ~pos:tstart)
  in
  let ctx = Ra_crypto.Sha1.init () in
  feed_frames ctx frames;
  Ra_crypto.Hexutil.to_hex (Ra_crypto.Sha1.finalize ctx)

(* The replay-target guard a capsule carries: a fleet with a different
   spec or RAM size would re-execute a different world. *)
let config_digest t =
  let ctx = Ra_crypto.Sha1.init () in
  Ra_crypto.Sha1.feed ctx t.spec.Architecture.spec_name;
  Ra_crypto.Sha1.feed ctx
    (match t.ram_size with None -> "|-" | Some n -> Printf.sprintf "|%d" n);
  Ra_crypto.Hexutil.to_hex (Ra_crypto.Sha1.finalize ctx)

let enable_forensics ?capacity t =
  match t.forensics with
  | Some f -> f
  | None ->
    let f = Ra_obs.Forensics.create ?capacity () in
    t.forensics <- Some f;
    f

let disable_forensics t = t.forensics <- None
let forensics t = t.forensics

let capsules t =
  match t.forensics with None -> [] | Some f -> Ra_obs.Forensics.capsules f

let classify_verdict = function
  | Verdict.Trusted -> Healthy
  | Verdict.Untrusted_state | Verdict.Invalid_response | Verdict.Fault _ -> Compromised
  | Verdict.Timed_out _ | Verdict.Bad_auth | Verdict.Not_fresh _ -> Unresponsive

let classify = function
  | Some Verdict.Trusted -> Healthy
  | Some v -> classify_verdict v
  | None -> Unresponsive

let sweep_member obs m =
  let time = Session.time m.session in
  let before = Ra_net.Simtime.now time in
  let verdict = Session.attest_round m.session in
  let after = Ra_net.Simtime.now time in
  obs.o_sweep_ms ((after -. before) *. 1000.0);
  m.health <- classify verdict;
  m.sweeps <- m.sweeps + 1;
  m.history <- (after, verdict) :: m.history;
  verdict

let sweep_one t name = sweep_member global_obs (find t name)

(* Index-based stagger offsets. Member i (0-based, of n) is swept after
   i+1 stagger steps and ends the sweep with n steps total; the offsets
   are computed by one multiplication instead of accumulating [+. stagger]
   per step, so a 10k-member sweep is O(n) session operations, not O(n²),
   and member clocks carry no accumulated rounding drift — [sweep],
   [sweep_par] and the event engine all place member i's round at the
   {e same} float, bit for bit. (With the 1 s default stagger both forms
   are exact integers, so the switch is also bit-compatible with the old
   unit-step accumulation.) *)
let pre_offset i = float_of_int (i + 1) *. stagger_seconds
let post_offset ~n i = (float_of_int n *. stagger_seconds) -. pre_offset i

(* One member's share of a sweep: advance its private clock to its
   staggered slot, attest, then advance it past everyone else's slots so
   the whole fleet exits the sweep at the same clock. Touches only the
   member's own world. *)
let sweep_slot obs ~n i m =
  Session.advance_time m.session ~seconds:(pre_offset i);
  let verdict = sweep_member obs m in
  Session.advance_time m.session ~seconds:(post_offset ~n i);
  verdict

let sweep_seq t =
  let n = List.length t.members in
  List.mapi (fun i m -> (m.name, sweep_slot global_obs ~n i m)) t.members

(* results arrays are written at the member's own index — disjoint
   writes under any partition — and read back in index order, so the
   returned list's order never depends on which domain ran what *)
let collect members results =
  Array.to_list
    (Array.mapi
       (fun i m ->
         match results.(i) with
         | Some verdict -> (m.name, verdict)
         | None -> assert false)
       members)

(* Event-engine sweep over one member range: the staggered slots become
   events on the given timeline — member i's round fires at
   [pre_offset i] relative to the sweep start. Sessions are independent
   worlds, so ordering execution through the heap instead of a list fold
   changes nothing observable; the scheduler records its depth/lag
   metrics (into whatever sink it was created with) on the way through. *)
let sweep_events_range obs sched members ~n ~lo ~hi results =
  for i = lo to hi - 1 do
    let m = members.(i) in
    Sched.at sched ~at:(pre_offset i) (fun () ->
        (* same operation sequence as [sweep_slot], with the lag probe
           between round and fast-forward: the lead over the timeline
           is the round's own simulated work, not the bookkeeping jump
           to the sweep's end *)
        Session.advance_time m.session ~seconds:(pre_offset i);
        let verdict = sweep_member obs m in
        Sched.observe_lag sched
          ~member_now:(Ra_net.Simtime.now (Session.time m.session));
        Session.advance_time m.session ~seconds:(post_offset ~n i);
        results.(i) <- Some verdict)
  done

let sweep_events t =
  let members = Array.of_list t.members in
  let n = Array.length members in
  let results = Array.make n None in
  let sched = Sched.create () in
  sweep_events_range global_obs sched members ~n ~lo:0 ~hi:n results;
  let (_ : int) = Sched.run sched in
  collect members results

(* Sharded event-engine sweep: each shard owns a contiguous member
   range, its own heap and its own metrics arena; shard bodies touch no
   shared mutable state except their disjoint slice of [results]. The
   deterministic merge is the combination of [collect] (member order)
   and flushing the arenas in shard order after every shard quiesced. *)
let sweep_shards ?pool ?tracks ~shards t =
  if shards < 1 then invalid_arg "Fleet.sweep: shards must be >= 1";
  (match tracks with
  | Some arr when Array.length arr <> shards ->
    invalid_arg "Fleet.sweep: tracks array must have one track per shard"
  | Some _ | None -> ());
  let members = Array.of_list t.members in
  let n = Array.length members in
  let results = Array.make n None in
  let parts = Shard.partition ~members:n ~shards in
  let arenas = Array.init shards (fun _ -> Ra_obs.Arena.create ()) in
  Shard.run ?pool ~shards (fun s ->
      let arena = arenas.(s) in
      let track = Option.map (fun arr -> arr.(s)) tracks in
      let sched = Sched.create ~metrics:(Sched.arena_metrics arena) ?track () in
      let { Shard.sh_lo; sh_hi } = parts.(s) in
      sweep_events_range (arena_obs arena) sched members ~n ~lo:sh_lo ~hi:sh_hi
        results;
      let (_ : int) = Sched.run sched in
      ());
  Array.iter Ra_obs.Arena.flush arenas;
  collect members results

let sweep ?(engine = `Seq) t =
  match engine with
  | `Seq -> sweep_seq t
  | `Events -> sweep_events t
  | `Shards shards -> sweep_shards ~shards t

(* Parallel sweep. Sessions are fully independent prover worlds (own
   Simtime/Trace/Channel/Verifier, no shared mutable state anywhere in the
   library), so independent members can be swept on separate domains.
   Each worker runs the same [sweep_slot] as the sequential engine —
   identical float operations in identical order per member, so verdicts,
   ledgers and member clocks are bit-identical to [sweep]. [`Pool] (the
   default) borrows helpers from the shared persistent pool; [`Fresh]
   keeps the old spawn-per-sweep behaviour so the bench can measure what
   the pool buys. *)
let sweep_par ?(domains = 4) ?(spawn = `Pool) t =
  let members = Array.of_list t.members in
  let n = Array.length members in
  let domains = max 1 (min domains n) in
  if domains = 1 then sweep t
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (sweep_slot global_obs ~n i members.(i));
          go ()
        end
      in
      go ()
    in
    (match spawn with
    | `Pool -> Pool.run (Pool.shared ()) ~helpers:(domains - 1) worker
    | `Fresh ->
      let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join spawned);
    collect members results
  end

(* ---- chaos sweeps: convergence under an impaired wire ---- *)

(* history entries keep the closed-loop verdict where one exists so the
   pre-chaos ledger format (and the fingerprint's tag set) is unchanged *)
let ledger_verdict = function
  | (Verdict.Trusted | Verdict.Untrusted_state | Verdict.Invalid_response) as v ->
    Some v
  | Verdict.Bad_auth | Verdict.Not_fresh _ | Verdict.Fault _ | Verdict.Timed_out _ ->
    None

(* nearest-rank percentile over an already-sorted sample *)
let percentile_of_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

(* Per-member accumulator for one (loss, policy) cell; both engines feed
   it through [chaos_record], so the ledgers and metrics a cell produces
   are independent of which engine ran it. *)
type chaos_acc = {
  mutable ca_converged : int;
  mutable ca_attempts : int;
  mutable ca_durations : float list;
}

(* What one chaos "round" executes: the classic one-shot retry round, or
   one full secure-session lifecycle (handshake + [n] streamed records +
   close). Both yield a [Session.round], so every consumer downstream —
   accumulators, ledgers, capsules — is workload-agnostic. *)
type workload = [ `Attest | `Session of int ]

let workload_label = function
  | `Attest -> "attest"
  | `Session n -> Printf.sprintf "session:%d" n

let workload_of_label s =
  if String.equal s "attest" then Some `Attest
  else
    match String.index_opt s ':' with
    | Some i when String.equal (String.sub s 0 i) "session" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some n when n >= 0 -> Some (`Session n)
      | Some _ | None -> None)
    | Some _ | None -> None

let workload_round_begin ~workload ~policy session =
  match workload with
  | `Attest -> Session.round_begin ~policy session
  | `Session records -> Secure_session.round_begin ~policy ~records session

let workload_round ~workload ~policy session =
  Session.drive_round (workload_round_begin ~workload ~policy session)

let chaos_install session ~imp_seed ~loss =
  let profile =
    if loss <= 0.0 then Ra_net.Impairment.pristine else Ra_net.Impairment.lossy loss
  in
  Session.set_impairment session
    (Some
       (Ra_net.Impairment.create ~to_prover:profile ~to_verifier:profile ~seed:imp_seed
          ()))

(* One completed round's bookkeeping: metrics, cell accumulator, and the
   member's health ledger. [at] is the member's clock at round start. *)
let chaos_record obs m acc ~at (r : Session.round) =
  obs.o_chaos_ms (r.Session.r_elapsed_s *. 1000.0);
  acc.ca_attempts <- acc.ca_attempts + r.Session.r_attempts;
  (match r.Session.r_verdict with
  | Verdict.Timed_out _ -> obs.o_timed_out ()
  | _ ->
    obs.o_converged ();
    acc.ca_converged <- acc.ca_converged + 1;
    acc.ca_durations <- r.Session.r_elapsed_s :: acc.ca_durations);
  m.health <- classify_verdict r.Session.r_verdict;
  m.sweeps <- m.sweeps + 1;
  m.history <-
    (at +. r.Session.r_elapsed_s, ledger_verdict r.Session.r_verdict) :: m.history

(* Run one member through one (loss, policy) cell: install its private
   seeded impairment, attest [rounds] times with the 1 s stagger advance
   between rounds (same advances as [sweep], so timestamp freshness
   behaves identically), then put the wire back to pristine. Touches only
   the member's own world — safe to run members on separate domains. *)
let chaos_member ?fcap ?(workload = `Attest) obs m ~imp_seed ~loss ~policy ~rounds =
  let session = m.session in
  chaos_install session ~imp_seed ~loss;
  let acc = { ca_converged = 0; ca_attempts = 0; ca_durations = [] } in
  for round = 1 to rounds do
    Session.advance_time session ~seconds:stagger_seconds;
    let at = Ra_net.Simtime.now (Session.time session) in
    let tstart = Ra_net.Channel.transcript_length (Session.channel session) in
    let r = workload_round ~workload ~policy session in
    chaos_record obs m acc ~at r;
    match fcap with None -> () | Some f -> f ~round ~at ~tstart r
  done;
  Session.set_impairment session None;
  (acc.ca_converged, acc.ca_attempts, acc.ca_durations)

(* Event-engine chaos member: the same rounds, but every [Round_wait] of
   the retry machine becomes a scheduled event instead of an inline
   advance. Event keys are the member's own absolute clock (its next
   round start or wait expiry); a member's keys are strictly increasing
   and the heap pops the globally earliest, so the shared timeline is
   monotone and round work from thousands of members interleaves in
   deterministic (time, insertion) order. [Session.round_begin]'s resume
   performs the identical [advance_time] the sequential driver performs,
   so per-member results are bit-identical to [chaos_member]. *)
let chaos_member_events ?fcap ?(workload = `Attest) obs sched m ~imp_seed ~loss
    ~policy ~rounds ~finished =
  let session = m.session in
  chaos_install session ~imp_seed ~loss;
  let acc = { ca_converged = 0; ca_attempts = 0; ca_durations = [] } in
  let member_now () = Ra_net.Simtime.now (Session.time session) in
  let rec schedule_round rounds_left =
    Sched.at sched
      ~at:(member_now () +. stagger_seconds)
      (fun () ->
        Session.advance_time session ~seconds:stagger_seconds;
        let at = member_now () in
        let tstart = Ra_net.Channel.transcript_length (Session.channel session) in
        drive rounds_left ~at ~tstart (workload_round_begin ~workload ~policy session);
        Sched.observe_lag sched ~member_now:(member_now ()))
  and drive rounds_left ~at ~tstart = function
    | Session.Round_done r ->
      chaos_record obs m acc ~at r;
      (match fcap with
      | None -> ()
      | Some f -> f ~round:(rounds - rounds_left + 1) ~at ~tstart r);
      if rounds_left > 1 then schedule_round (rounds_left - 1)
      else begin
        Session.set_impairment session None;
        finished (acc.ca_converged, acc.ca_attempts, acc.ca_durations)
      end
    | Session.Round_wait { wait_s; resume } ->
      Sched.at sched
        ~at:(member_now () +. wait_s)
        (fun () ->
          drive rounds_left ~at ~tstart (resume ());
          Sched.observe_lag sched ~member_now:(member_now ()))
  in
  schedule_round rounds

(* ---- forensic candidate retention (one cell, one member) ---- *)

(* A candidate round retained during a cell: enough to build a capsule at
   merge time without copying wire bytes — the digest window is re-read
   from the member's transcript, which only grows. *)
type fcand = {
  fc_round : int; (* 1-based within the cell *)
  fc_at : float; (* member clock at round start *)
  fc_verdict : Verdict.t;
  fc_attempts : int;
  fc_elapsed : float;
  fc_trace_id : int option;
  fc_tstart : int; (* transcript window [tstart, tend) *)
  fc_tend : int;
}

type fcand_cell = {
  mutable fc_fails : fcand list; (* newest first; reversed at merge *)
  mutable fc_slow : fcand option; (* slowest converged round so far *)
}

(* The per-round hook a capturing sweep threads into the chaos drivers.
   Runs on the member's own domain and touches only member-local state
   (its slot of the candidate array and its own session/tracer), so
   capture is safe under every engine and changes nothing on the wire. *)
let fcap_hook fcands i m =
  match fcands with
  | None -> None
  | Some arr ->
    let cell = { fc_fails = []; fc_slow = None } in
    arr.(i) <- Some cell;
    Some
      (fun ~round ~at ~tstart (r : Session.round) ->
        let tend = Ra_net.Channel.transcript_length (Session.channel m.session) in
        let trace_id =
          match Session.tracing m.session with
          | None -> None
          | Some tr -> (
            match Ra_obs.Recorder.latest (Ra_obs.Trace.recorder tr) with
            | Some rd -> Some rd.Ra_obs.Trace.rd_trace_id
            | None -> None)
        in
        let cand =
          {
            fc_round = round;
            fc_at = at;
            fc_verdict = r.Session.r_verdict;
            fc_attempts = r.Session.r_attempts;
            fc_elapsed = r.Session.r_elapsed_s;
            fc_trace_id = trace_id;
            fc_tstart = tstart;
            fc_tend = tend;
          }
        in
        match r.Session.r_verdict with
        | Verdict.Trusted -> (
          (* keep the strictly slowest converged round; first wins ties *)
          match cell.fc_slow with
          | Some s when s.fc_elapsed >= cand.fc_elapsed -> ()
          | Some _ | None -> cell.fc_slow <- Some cand)
        | _ -> cell.fc_fails <- cand :: cell.fc_fails)

let chaos_sweep ?(seed = 0xC4A05L) ?(domains = 4) ?(rounds_per_member = 10)
    ?(engine = `Seq) ?(workload = `Attest) ~losses ~policies t =
  if losses = [] then invalid_arg "Fleet.chaos_sweep: no loss rates";
  if policies = [] then invalid_arg "Fleet.chaos_sweep: no policies";
  if rounds_per_member < 1 then invalid_arg "Fleet.chaos_sweep: rounds_per_member < 1";
  (match workload with
  | `Session n when n < 0 -> invalid_arg "Fleet.chaos_sweep: negative session records"
  | `Session _ | `Attest -> ());
  List.iter (fun (_, p) -> Retry.validate p) policies;
  let members = Array.of_list t.members in
  let n = Array.length members in
  let domains = max 1 (min domains n) in
  let seeder = Ra_crypto.Prng.create seed in
  let cells =
    List.concat_map
      (fun loss -> List.map (fun (name, policy) -> (loss, name, policy)) policies)
      losses
  in
  (* capture context: the sweep parameters every capsule embeds *)
  let prior = Array.map (fun m -> m.sweeps) members in
  let cap_policies =
    List.map
      (fun (name, (p : Retry.policy)) ->
        ( name,
          {
            Ra_obs.Forensics.cp_max_attempts = p.Retry.max_attempts;
            cp_base_timeout_s = p.Retry.base_timeout_s;
            cp_multiplier = p.Retry.multiplier;
            cp_max_timeout_s = p.Retry.max_timeout_s;
            cp_jitter = p.Retry.jitter;
          } ))
      policies
  in
  let config = config_digest t in
  let run_cell cell_idx (loss, policy_name, policy) =
    (* one root draw per cell; member i's impairment seed is the pure
       function [Impairment.derive_seed ~root ~index:i] of it, so the
       schedule member i experiences is identical however the cell is
       partitioned — any [domains], any shard count, either engine *)
    let root = Ra_crypto.Prng.next_int64 seeder in
    let seed_of i = Ra_net.Impairment.derive_seed ~root ~index:i in
    let results = Array.make n (0, 0, []) in
    let fcands =
      match t.forensics with None -> None | Some _ -> Some (Array.make n None)
    in
    (match engine with
    | `Events ->
      (* single-domain by design: determinism is the point; the heap
         interleaves all members' rounds on one shared timeline *)
      let sched = Sched.create () in
      Array.iteri
        (fun i m ->
          chaos_member_events
            ?fcap:(fcap_hook fcands i m)
            ~workload global_obs sched m ~imp_seed:(seed_of i) ~loss ~policy
            ~rounds:rounds_per_member
            ~finished:(fun r -> results.(i) <- r))
        members;
      let (_ : int) = Sched.run sched in
      ()
    | `Shards shards ->
      (* each shard drives its own timeline over its own member range
         and buffers metrics in its own arena; the merge is [results]
         by member index plus arena flushes in shard order *)
      if shards < 1 then invalid_arg "Fleet.chaos_sweep: shards must be >= 1";
      let parts = Shard.partition ~members:n ~shards in
      let arenas = Array.init shards (fun _ -> Ra_obs.Arena.create ()) in
      Shard.run ~shards (fun s ->
          let arena = arenas.(s) in
          let obs = arena_obs arena in
          let sched = Sched.create ~metrics:(Sched.arena_metrics arena) () in
          let { Shard.sh_lo; sh_hi } = parts.(s) in
          for i = sh_lo to sh_hi - 1 do
            chaos_member_events
              ?fcap:(fcap_hook fcands i members.(i))
              ~workload obs sched members.(i) ~imp_seed:(seed_of i) ~loss ~policy
              ~rounds:rounds_per_member
              ~finished:(fun r -> results.(i) <- r)
          done;
          let (_ : int) = Sched.run sched in
          ());
      Array.iter Ra_obs.Arena.flush arenas
    | `Seq ->
      let next = Atomic.make 0 in
      let work () =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <-
              chaos_member
                ?fcap:(fcap_hook fcands i members.(i))
                ~workload global_obs members.(i) ~imp_seed:(seed_of i) ~loss ~policy
                ~rounds:rounds_per_member;
            go ()
          end
        in
        go ()
      in
      if domains = 1 then work ()
      else Pool.run (Pool.shared ()) ~helpers:(domains - 1) work);
    (* merge retained candidates into the capsule ring — coordinator
       only, member-index order, so the capsule stream is identical at
       every domains/shards/engine setting *)
    (match (t.forensics, fcands) with
    | Some f, Some arr ->
      let capsule kind i (c : fcand) =
        let m = members.(i) in
        let reason =
          match Verdict.reason_of c.fc_verdict with
          | Some r -> Verdict.Reason.label r
          | None -> Verdict.label c.fc_verdict
        in
        let phase =
          match (Session.profiling m.session, c.fc_trace_id) with
          | Some p, Some id ->
            Ra_obs.Forensics.dominant_phase
              (Ra_obs.Profiler.Phases.samples p.Ra_obs.Profiler.phases)
              ~trace_id:id
          | (Some _ | None), _ -> None
        in
        {
          Ra_obs.Forensics.cap_kind = kind;
          cap_member = i;
          cap_name = m.name;
          cap_sweep_seed = seed;
          cap_losses = losses;
          cap_policies;
          cap_rounds_per_member = rounds_per_member;
          cap_cell = cell_idx;
          cap_loss = loss;
          cap_policy = policy_name;
          cap_round = c.fc_round;
          cap_workload = workload_label workload;
          cap_imp_seed = seed_of i;
          cap_prior_sweeps = prior.(i);
          cap_started_at = c.fc_at;
          cap_elapsed_s = c.fc_elapsed;
          cap_attempts = c.fc_attempts;
          cap_verdict = Verdict.to_json c.fc_verdict;
          cap_reason = reason;
          cap_trace_id = c.fc_trace_id;
          cap_phase = phase;
          cap_wire_digest =
            window_digest m.session ~tstart:c.fc_tstart ~tend:c.fc_tend;
          cap_config = config;
        }
      in
      Array.iteri
        (fun i slot ->
          match slot with
          | None -> ()
          | Some cell ->
            List.iter
              (fun c ->
                Ra_obs.Forensics.capture f (capsule Ra_obs.Forensics.Failure i c))
              (List.rev cell.fc_fails))
        arr;
      (* one cell-wide slowest-converged capsule — the latency exemplar;
         strictly-greater wins, so ties keep the earliest member *)
      let slowest = ref None in
      Array.iteri
        (fun i slot ->
          match slot with
          | None -> ()
          | Some cell -> (
            match (cell.fc_slow, !slowest) with
            | None, _ -> ()
            | Some c, Some (_, best) when c.fc_elapsed <= best.fc_elapsed -> ()
            | Some c, (Some _ | None) -> slowest := Some (i, c)))
        arr;
      (match !slowest with
      | None -> ()
      | Some (i, c) ->
        Ra_obs.Forensics.capture f (capsule Ra_obs.Forensics.Slowest i c))
    | (Some _ | None), _ -> ());
    let total = n * rounds_per_member in
    let converged = Array.fold_left (fun acc (c, _, _) -> acc + c) 0 results in
    let attempts = Array.fold_left (fun acc (_, a, _) -> acc + a) 0 results in
    let durations =
      Array.of_list
        (Array.fold_left (fun acc (_, _, ds) -> List.rev_append ds acc) [] results)
    in
    Array.sort compare durations;
    {
      c_loss = loss;
      c_policy = policy_name;
      c_rounds = total;
      c_converged = converged;
      c_mean_attempts = float_of_int attempts /. float_of_int total;
      c_p50_s = percentile_of_sorted durations 50.0;
      c_p90_s = percentile_of_sorted durations 90.0;
      c_p99_s = percentile_of_sorted durations 99.0;
    }
  in
  let grid = List.mapi run_cell cells in
  t.last_chaos <- grid;
  grid

(* ---- capsule replay: re-execute exactly one captured round ---- *)

type replay = {
  rp_verdict : Verdict.t;
  rp_attempts : int;
  rp_elapsed_s : float;
  rp_started_at : float;
  rp_digest : string;
  rp_match : bool;
  rp_round : Ra_obs.Trace.round option;
  rp_profile : Ra_obs.Profiler.t option;
}

(* A capsule pins (sweep seed, grid, member index, cell, round), and the
   whole pipeline under it is deterministic: [Session.create] builds a
   bit-identical world from the spec, the retry PRNG is fixed per
   session, and the impairment schedule is the pure function of
   (seed, cell, member index) the capsule re-derives. So replay =
   re-execute the member's full history up to the captured round from a
   fresh session — every PRNG draw happens in the same order — then run
   the captured round with tracing and profiling forced on. *)
let replay_capsule t (cap : Ra_obs.Forensics.capsule) =
  let open Ra_obs.Forensics in
  let n_cells = List.length cap.cap_losses * List.length cap.cap_policies in
  if cap.cap_kind = Deadline_miss then
    Error
      "deadline-miss capsules record an open-loop server queue; not replayable \
       standalone"
  else if cap.cap_config <> config_digest t then
    Error "capsule was captured on a different fleet configuration"
  else if cap.cap_prior_sweeps <> 0 then
    Error "member had pre-sweep history; fresh-session replay is unsound"
  else if cap.cap_cell < 0 || cap.cap_cell >= n_cells then
    Error "capsule cell index is outside its own loss x policy grid"
  else if cap.cap_round < 1 || cap.cap_round > cap.cap_rounds_per_member then
    Error "capsule round index is outside rounds_per_member"
  else if cap.cap_member < 0 then Error "negative member index"
  else
    match workload_of_label cap.cap_workload with
    | None -> Error ("unknown capsule workload: " ^ cap.cap_workload)
    | Some workload ->
  begin
    let policies =
      List.map
        (fun (name, p) ->
          ( name,
            {
              Retry.max_attempts = p.cp_max_attempts;
              base_timeout_s = p.cp_base_timeout_s;
              multiplier = p.cp_multiplier;
              max_timeout_s = p.cp_max_timeout_s;
              jitter = p.cp_jitter;
            } ))
        cap.cap_policies
    in
    match List.iter (fun (_, p) -> Retry.validate p) policies with
    | exception Invalid_argument msg -> Error ("capsule retry policy: " ^ msg)
    | () ->
      let cells =
        List.concat_map
          (fun loss -> List.map (fun (_, policy) -> (loss, policy)) policies)
          cap.cap_losses
      in
      let seeder = Ra_crypto.Prng.create cap.cap_sweep_seed in
      let roots =
        Array.init (cap.cap_cell + 1) (fun _ -> Ra_crypto.Prng.next_int64 seeder)
      in
      let target_seed =
        Ra_net.Impairment.derive_seed ~root:roots.(cap.cap_cell)
          ~index:cap.cap_member
      in
      if target_seed <> cap.cap_imp_seed then
        Error
          "impairment seed mismatch: capsule position does not re-derive its \
           recorded seed"
      else begin
        let session = Session.create ~spec:t.spec ?ram_size:t.ram_size () in
        let cells = Array.of_list cells in
        (* fast-forward: the member's rounds in every cell before the
           captured one, then the captured cell's earlier rounds — the
           identical operation sequence the sweep ran, so every PRNG
           draw (retry jitter, impairment schedule) lines up *)
        for ci = 0 to cap.cap_cell - 1 do
          let loss, policy = cells.(ci) in
          chaos_install session
            ~imp_seed:(Ra_net.Impairment.derive_seed ~root:roots.(ci) ~index:cap.cap_member)
            ~loss;
          for _ = 1 to cap.cap_rounds_per_member do
            Session.advance_time session ~seconds:stagger_seconds;
            ignore (workload_round ~workload ~policy session)
          done;
          Session.set_impairment session None
        done;
        let loss, policy = cells.(cap.cap_cell) in
        chaos_install session ~imp_seed:target_seed ~loss;
        for _ = 1 to cap.cap_round - 1 do
          Session.advance_time session ~seconds:stagger_seconds;
          ignore (workload_round ~workload ~policy session)
        done;
        (* the captured round itself, with full observability forced on
           (out-of-band by invariant: neither touches wire or PRNGs) *)
        let tracer = Session.enable_tracing ~device:cap.cap_name session in
        let profiler = Session.enable_profiling ~device:cap.cap_name session in
        Session.advance_time session ~seconds:stagger_seconds;
        let at = Ra_net.Simtime.now (Session.time session) in
        let tstart = Ra_net.Channel.transcript_length (Session.channel session) in
        let r = workload_round ~workload ~policy session in
        let tend = Ra_net.Channel.transcript_length (Session.channel session) in
        let digest = window_digest session ~tstart ~tend in
        Session.set_impairment session None;
        let rp_match =
          String.equal digest cap.cap_wire_digest
          && Verdict.to_json r.Session.r_verdict = cap.cap_verdict
          && r.Session.r_attempts = cap.cap_attempts
          && r.Session.r_elapsed_s = cap.cap_elapsed_s
          && at = cap.cap_started_at
        in
        Ok
          {
            rp_verdict = r.Session.r_verdict;
            rp_attempts = r.Session.r_attempts;
            rp_elapsed_s = r.Session.r_elapsed_s;
            rp_started_at = at;
            rp_digest = digest;
            rp_match;
            rp_round =
              Ra_obs.Recorder.latest (Ra_obs.Trace.recorder tracer);
            rp_profile = Some profiler;
          }
      end
  end

let annotate_exemplars t =
  match t.forensics with
  | None -> 0
  | Some f ->
    Ra_obs.Forensics.annotate_exemplars ~histogram:Mc.time
      (Ra_obs.Forensics.capsules f)

let last_chaos t = t.last_chaos

let convergence_pct cell =
  100.0 *. float_of_int cell.c_converged /. float_of_int cell.c_rounds

(* ---- streaming sweeps: million-device fleets in bounded memory ---- *)

(* A materialised session is ~88 KB (dominated by the device's flash
   image), so a 1M-member [t] would need ~88 GB. The streaming sweep
   holds ONE live session per shard at a time: create member i's world,
   run exactly the operation sequence [sweep_slot] runs, fold the
   outcome into per-shard tallies and an order-independent fingerprint,
   drop the world. The fingerprint XORs per-member SHA-1 digests, so it
   is invariant under any partition of the member range — the checkable
   analogue of the materialised engines' byte-identity. *)

(* byte-stable: Verdict.label yields exactly the historical tag set
   ("trusted", "untrusted_state", "invalid_response") for every verdict a
   benign sweep can produce *)
let verdict_tag = function
  | None -> "|none|"
  | Some v -> "|" ^ Verdict.label v ^ "|"

(* Everything observable about one swept member's world: name, verdict,
   final private clock, and the full wire transcript (timestamps,
   directions, raw frames). Two runs agree on this digest only if the
   member saw byte-identical traffic and time. *)
let session_digest ~name ~verdict session =
  let ctx = Ra_crypto.Sha1.init () in
  Ra_crypto.Sha1.feed ctx name;
  Ra_crypto.Sha1.feed ctx (verdict_tag verdict);
  Ra_crypto.Sha1.feed ctx
    (Printf.sprintf "%h" (Ra_net.Simtime.now (Session.time session)));
  feed_frames ctx (Ra_net.Channel.transcript (Session.channel session));
  Ra_crypto.Sha1.finalize ctx

let zero_digest = String.make Ra_crypto.Sha1.digest_size '\000'

let last_verdict m = match m.history with [] -> None | (_, v) :: _ -> v

(* XOR of per-member digests over a materialised fleet — comparable
   against [stream_sweep]'s fingerprint when both ran the same sweep. *)
let fingerprint t =
  Ra_crypto.Hexutil.to_hex
    (List.fold_left
       (fun acc m ->
         Ra_crypto.Hexutil.xor acc
           (session_digest ~name:m.name ~verdict:(last_verdict m) m.session))
       zero_digest t.members)

type stream_report = {
  st_members : int;
  st_shards : int;
  st_healthy : int;
  st_compromised : int;
  st_unresponsive : int;
  st_fingerprint : string;
}

let default_stream_name i = Printf.sprintf "dev-%07d" i

let stream_sweep ?(spec = Architecture.trustlite_base) ?ram_size ?(shards = 1)
    ?pool ?(name_of = default_stream_name) ~members () =
  if members < 1 then invalid_arg "Fleet.stream_sweep: members < 1";
  if shards < 1 then invalid_arg "Fleet.stream_sweep: shards must be >= 1";
  let parts = Shard.partition ~members ~shards in
  (* per-shard tallies merged by sums and XOR — both order-independent,
     so the report is a pure function of (spec, members), not of the
     shard count or domain schedule *)
  let healthy = Array.make shards 0 in
  let compromised = Array.make shards 0 in
  let unresponsive = Array.make shards 0 in
  let fingers = Array.make shards zero_digest in
  Shard.run ?pool ~shards (fun s ->
      let { Shard.sh_lo; sh_hi } = parts.(s) in
      for i = sh_lo to sh_hi - 1 do
        let name = name_of i in
        let session = Session.create ~spec ?ram_size () in
        Session.advance_time session ~seconds:(pre_offset i);
        let verdict = Session.attest_round session in
        Session.advance_time session ~seconds:(post_offset ~n:members i);
        (match classify verdict with
        | Healthy -> healthy.(s) <- healthy.(s) + 1
        | Compromised -> compromised.(s) <- compromised.(s) + 1
        | Unresponsive | Unknown -> unresponsive.(s) <- unresponsive.(s) + 1);
        fingers.(s) <-
          Ra_crypto.Hexutil.xor fingers.(s) (session_digest ~name ~verdict session)
      done);
  let sum a = Array.fold_left ( + ) 0 a in
  {
    st_members = members;
    st_shards = shards;
    st_healthy = sum healthy;
    st_compromised = sum compromised;
    st_unresponsive = sum unresponsive;
    st_fingerprint =
      Ra_crypto.Hexutil.to_hex (Array.fold_left Ra_crypto.Hexutil.xor zero_digest fingers);
  }

(* ---- causal tracing: per-member flight recorders ---- *)

let enable_tracing ?capacity ?max_events t =
  List.iter
    (fun m ->
      ignore
        (Session.enable_tracing ?capacity ?max_events ~device:m.name m.session))
    t.members

let disable_tracing t = List.iter (fun m -> Session.disable_tracing m.session) t.members

let recent_rounds t =
  List.concat_map
    (fun m ->
      match Session.tracing m.session with
      | None -> []
      | Some tracer -> Ra_obs.Trace.rounds tracer)
    t.members

(* ---- cycle/energy profiling: per-member profiles, shard-order merge ---- *)

let enable_profiling ?capacity t =
  List.iter
    (fun m ->
      ignore (Session.enable_profiling ?capacity ~device:m.name m.session))
    t.members

let disable_profiling t =
  List.iter (fun m -> Session.disable_profiling m.session) t.members

(* Fleet-wide profile: per-shard accumulators over contiguous member
   ranges, bulk-merged in shard order — the Arena discipline applied to
   profiles. Within a shard, members absorb in index order; shards absorb
   in shard order; contiguous partition makes the global absorb sequence
   the member-index order at {e every} shard count, so the merged profile
   (sorted stack rows, sorted phase totals, ring in push order) is
   byte-identical for shards = 1, 2, 4, ... The merge rings are sized to
   the surviving sample count so the two-stage merge never evicts. *)
let profile ?(shards = 1) t =
  if shards < 1 then invalid_arg "Fleet.profile: shards must be >= 1";
  let members = Array.of_list t.members in
  let n = Array.length members in
  let member_profiles = Array.map (fun m -> Session.profiling m.session) members in
  let total_samples =
    Array.fold_left
      (fun acc p ->
        match p with
        | None -> acc
        | Some p -> acc + Ra_obs.Profiler.Phases.length p.Ra_obs.Profiler.phases)
      0 member_profiles
  in
  let capacity = max 1 total_samples in
  let parts = Shard.partition ~members:n ~shards in
  let accs = Array.init shards (fun _ -> Ra_obs.Profiler.create ~capacity ()) in
  Array.iteri
    (fun s { Shard.sh_lo; sh_hi } ->
      for i = sh_lo to sh_hi - 1 do
        match member_profiles.(i) with
        | None -> ()
        | Some p -> Ra_obs.Profiler.absorb accs.(s) p
      done)
    parts;
  let merged = Ra_obs.Profiler.create ~capacity () in
  Array.iter (fun acc -> Ra_obs.Profiler.absorb merged acc) accs;
  merged

(* ---- SLO watchdog over chaos cells and member ledgers ---- *)

type slo_policy = {
  slo_min_convergence_pct : float;
  slo_max_p99_s : float;
  slo_max_rejection_pct : float;
}

let default_slo_policy =
  { slo_min_convergence_pct = 99.0; slo_max_p99_s = 60.0; slo_max_rejection_pct = 1.0 }

let slo_watch ?(policy = default_slo_policy) t =
  let open Ra_obs in
  let convergence =
    Slo.objective ~unit:"%" ~name:"chaos_convergence"
      ~limit:policy.slo_min_convergence_pct Slo.At_least
  in
  let p99 =
    Slo.objective ~unit:"s" ~name:"chaos_p99_latency" ~limit:policy.slo_max_p99_s
      Slo.At_most
  in
  let rejection =
    Slo.objective ~unit:"%" ~name:"fleet_rejection_rate"
      ~limit:policy.slo_max_rejection_pct Slo.At_most
  in
  let cell_checks =
    List.concat_map
      (fun c ->
        let scope =
          Printf.sprintf "loss=%.0f%% policy=%s" (100.0 *. c.c_loss) c.c_policy
        in
        let conv = Slo.evaluate ~scope convergence ~observed:(convergence_pct c) in
        (* p99 over converged rounds only; a cell where nothing converged
           has no latency distribution to judge (convergence already
           flags it) *)
        if c.c_converged > 0 then
          [ conv; Slo.evaluate ~scope p99 ~observed:c.c_p99_s ]
        else [ conv ])
      t.last_chaos
  in
  let total, rejected =
    List.fold_left
      (fun acc m ->
        List.fold_left
          (fun (total, rejected) (_, verdict) ->
            match verdict with
            | Some Verdict.Trusted -> (total + 1, rejected)
            | Some _ | None -> (total + 1, rejected + 1))
          acc m.history)
      (0, 0) t.members
  in
  let ledger_checks =
    (* an empty ledger (no sweeps yet) yields no checks rather than a
       vacuous 0% pass *)
    if total = 0 then []
    else
      [
        Slo.evaluate ~scope:"fleet"
          rejection
          ~observed:(100.0 *. float_of_int rejected /. float_of_int total);
      ]
  in
  cell_checks @ ledger_checks

let summary t = List.map (fun m -> (m.name, m.health, m.sweeps)) t.members

let compromised t =
  List.filter_map
    (fun m -> match m.health with
      | Compromised -> Some m.name
      | Healthy | Unresponsive | Unknown -> None)
    t.members

let pp_health fmt = function
  | Healthy -> Format.pp_print_string fmt "healthy"
  | Compromised -> Format.pp_print_string fmt "COMPROMISED"
  | Unresponsive -> Format.pp_print_string fmt "unresponsive"
  | Unknown -> Format.pp_print_string fmt "unknown"

let health_label = function
  | Healthy -> "healthy"
  | Compromised -> "compromised"
  | Unresponsive -> "unresponsive"
  | Unknown -> "unknown"

type member_report = {
  r_name : string;
  r_health : health;
  r_sweeps : int;
  r_history : (float * Verdict.t option) list; (* chronological *)
  r_service_stats : Service.stats;
  r_anchor_stats : Code_attest.stats;
}

type snapshot = {
  s_members : member_report list;
  s_healthy : int;
  s_compromised : int;
  s_unresponsive : int;
  s_unknown : int;
  s_sweep_latency_p50_ms : float;
  s_sweep_latency_p90_ms : float;
  s_sweep_latency_p99_ms : float;
  s_chaos : chaos_cell list;
  s_slo : Ra_obs.Slo.check list;
}

let count_health members h =
  List.length (List.filter (fun m -> m.health = h) members)

let health_snapshot ?(registry = Ra_obs.Registry.default) t =
  let reports =
    List.map
      (fun m ->
        Ra_mcu.Device.observe_gauges ~registry
          ~labels:[ ("device", m.name) ]
          (Session.device m.session);
        {
          r_name = m.name;
          r_health = m.health;
          r_sweeps = m.sweeps;
          r_history = member_history m;
          r_service_stats = Service.stats (Session.service m.session);
          r_anchor_stats = Code_attest.stats (Session.anchor m.session);
        })
      t.members
  in
  let set_members h n =
    Ra_obs.Registry.Gauge.set
      (Ra_obs.Registry.Gauge.get ~registry
         ~labels:[ ("health", health_label h) ]
         "ra_fleet_members")
      (float_of_int n)
  in
  let healthy = count_health t.members Healthy in
  let comp = count_health t.members Compromised in
  let unresp = count_health t.members Unresponsive in
  let unknown = count_health t.members Unknown in
  set_members Healthy healthy;
  set_members Compromised comp;
  set_members Unresponsive unresp;
  set_members Unknown unknown;
  {
    s_members = reports;
    s_healthy = healthy;
    s_compromised = comp;
    s_unresponsive = unresp;
    s_unknown = unknown;
    s_sweep_latency_p50_ms = Ra_obs.Registry.Histogram.percentile sweep_latency 50.0;
    s_sweep_latency_p90_ms = Ra_obs.Registry.Histogram.percentile sweep_latency 90.0;
    s_sweep_latency_p99_ms = Ra_obs.Registry.Histogram.percentile sweep_latency 99.0;
    s_chaos = t.last_chaos;
    s_slo = slo_watch t;
  }

let pp_verdict_opt fmt = function
  | None -> Format.pp_print_string fmt "no response"
  | Some v -> Verdict.pp fmt v

let render_health snapshot =
  let buf = Buffer.create 512 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "fleet: %d healthy, %d compromised, %d unresponsive, %d unknown@."
    snapshot.s_healthy snapshot.s_compromised snapshot.s_unresponsive
    snapshot.s_unknown;
  (* the percentiles are nan when no plain sweep ever fed the histogram
     (e.g. a chaos-only run) — skip the line rather than print nan *)
  if Float.is_finite snapshot.s_sweep_latency_p50_ms then
    Format.fprintf fmt
      "sweep latency: p50 <= %.0f ms, p90 <= %.0f ms, p99 <= %.0f ms@."
      snapshot.s_sweep_latency_p50_ms snapshot.s_sweep_latency_p90_ms
      snapshot.s_sweep_latency_p99_ms;
  if snapshot.s_chaos <> [] then begin
    Format.fprintf fmt "chaos sweep (loss x policy -> convergence):@.";
    List.iter
      (fun c ->
        Format.fprintf fmt
          "  loss=%4.0f%% policy=%-10s %5.1f%% converged (%d/%d) mean attempts %.2f \
           p50 %.3f s p90 %.3f s p99 %.3f s@."
          (100.0 *. c.c_loss) c.c_policy (convergence_pct c) c.c_converged c.c_rounds
          c.c_mean_attempts c.c_p50_s c.c_p90_s c.c_p99_s)
      snapshot.s_chaos
  end;
  if snapshot.s_slo <> [] then begin
    let breaches = Ra_obs.Slo.breaches snapshot.s_slo in
    if breaches = [] then
      Format.fprintf fmt "slo: all %d objectives met@."
        (List.length snapshot.s_slo)
    else
      List.iter
        (fun c -> Format.fprintf fmt "  slo: %a@." Ra_obs.Slo.pp_check c)
        breaches
  end;
  List.iter
    (fun r ->
      let last =
        match List.rev r.r_history with
        | [] -> Format.asprintf "never swept"
        | (at, v) :: _ -> Format.asprintf "last %a at %.1f s" pp_verdict_opt v at
      in
      Format.fprintf fmt
        "  %-12s %-12s sweeps=%-3d attested=%d/%d svc ok=%d bad_auth=%d \
         not_fresh=%d fault=%d (%s)@."
        r.r_name
        (health_label r.r_health)
        r.r_sweeps r.r_anchor_stats.Code_attest.attestations_performed
        r.r_anchor_stats.Code_attest.requests_seen r.r_service_stats.Service.invocations
        (Service.rejected r.r_service_stats Verdict.Reason.Bad_auth)
        (Service.rejected r.r_service_stats Verdict.Reason.Not_fresh)
        (Service.rejected r.r_service_stats Verdict.Reason.Fault)
        last)
    snapshot.s_members;
  Format.pp_print_flush fmt ();
  Buffer.contents buf
