type health = Healthy | Compromised | Unresponsive | Unknown

type member = {
  name : string;
  session : Session.t;
  mutable health : health;
  mutable sweeps : int;
  mutable history : (float * Verifier.verdict option) list; (* newest first *)
}

type t = {
  members : member list;
  index : (string, member) Hashtbl.t; (* name -> member, O(1) find *)
}

let member_name m = m.name
let member_session m = m.session
let member_health m = m.health
let sweeps_of m = m.sweeps
let member_history m = List.rev m.history

let sweep_latency_buckets =
  [| 1.0; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 750.0; 1000.0; 2500.0 |]

(* observed from sweep_par workers too: handle is atomic, created once *)
let sweep_latency =
  Ra_obs.Registry.Histogram.get ~buckets:sweep_latency_buckets
    "ra_fleet_sweep_latency_ms"

let stagger_seconds = 1.0

let create ?(spec = Architecture.trustlite_base) ?ram_size ~names () =
  if names = [] then invalid_arg "Fleet.create: no members";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then invalid_arg "Fleet.create: duplicate member name";
      Hashtbl.replace seen n ())
    names;
  let members =
    List.map
      (fun name ->
        {
          name;
          session = Session.create ~spec ?ram_size ();
          health = Unknown;
          sweeps = 0;
          history = [];
        })
      names
  in
  let index = Hashtbl.create (List.length members) in
  List.iter (fun m -> Hashtbl.replace index m.name m) members;
  { members; index }

let members t = t.members

let find t name =
  match Hashtbl.find_opt t.index name with
  | Some m -> m
  | None -> raise Not_found

let advance t ~seconds =
  List.iter (fun m -> Session.advance_time m.session ~seconds) t.members

let classify = function
  | Some Verifier.Trusted -> Healthy
  | Some Verifier.Untrusted_state | Some Verifier.Invalid_response -> Compromised
  | None -> Unresponsive

let sweep_member m =
  let time = Session.time m.session in
  let before = Ra_net.Simtime.now time in
  let verdict = Session.attest_round m.session in
  let after = Ra_net.Simtime.now time in
  Ra_obs.Registry.Histogram.observe sweep_latency ((after -. before) *. 1000.0);
  m.health <- classify verdict;
  m.sweeps <- m.sweeps + 1;
  m.history <- (after, verdict) :: m.history;
  verdict

let sweep_one t name = sweep_member (find t name)

let sweep t =
  List.map
    (fun m ->
      advance t ~seconds:stagger_seconds;
      (m.name, sweep_member m))
    t.members

(* Parallel sweep. Sessions are fully independent prover worlds (own
   Simtime/Trace/Channel/Verifier, no shared mutable state anywhere in the
   library), so independent members can be swept on separate domains.

   Equivalence with [sweep]: there, every member's clock is advanced by
   [stagger_seconds] once per member (n advances total), and member i is
   swept after i+1 of those advances. Sweeping a member only touches its
   own session, and advancing session A commutes with anything done to
   session B. So per member i it is equivalent to: advance its own clock
   i+1 steps, sweep it, advance the remaining n-i-1 steps — which needs no
   cross-member coordination at all. The advances are performed in the same
   unit steps as [sweep] so float accumulation (and therefore timestamp
   freshness) is bit-identical to the sequential path. *)
let sweep_par ?(domains = 4) t =
  let members = Array.of_list t.members in
  let n = Array.length members in
  let domains = max 1 (min domains n) in
  if domains = 1 then sweep t
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let m = members.(i) in
        for _ = 1 to i + 1 do
          Session.advance_time m.session ~seconds:stagger_seconds
        done;
        let verdict = sweep_member m in
        for _ = 1 to n - i - 1 do
          Session.advance_time m.session ~seconds:stagger_seconds
        done;
        results.(i) <- Some verdict;
        worker ()
      end
    in
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.to_list
      (Array.mapi
         (fun i m ->
           match results.(i) with
           | Some verdict -> (m.name, verdict)
           | None -> assert false)
         members)
  end

let summary t = List.map (fun m -> (m.name, m.health, m.sweeps)) t.members

let compromised t =
  List.filter_map
    (fun m -> match m.health with
      | Compromised -> Some m.name
      | Healthy | Unresponsive | Unknown -> None)
    t.members

let pp_health fmt = function
  | Healthy -> Format.pp_print_string fmt "healthy"
  | Compromised -> Format.pp_print_string fmt "COMPROMISED"
  | Unresponsive -> Format.pp_print_string fmt "unresponsive"
  | Unknown -> Format.pp_print_string fmt "unknown"

let health_label = function
  | Healthy -> "healthy"
  | Compromised -> "compromised"
  | Unresponsive -> "unresponsive"
  | Unknown -> "unknown"

type member_report = {
  r_name : string;
  r_health : health;
  r_sweeps : int;
  r_history : (float * Verifier.verdict option) list; (* chronological *)
  r_service_stats : Service.stats;
  r_anchor_stats : Code_attest.stats;
}

type snapshot = {
  s_members : member_report list;
  s_healthy : int;
  s_compromised : int;
  s_unresponsive : int;
  s_unknown : int;
  s_sweep_latency_p50_ms : float;
  s_sweep_latency_p90_ms : float;
  s_sweep_latency_p99_ms : float;
}

let count_health members h =
  List.length (List.filter (fun m -> m.health = h) members)

let health_snapshot ?(registry = Ra_obs.Registry.default) t =
  let reports =
    List.map
      (fun m ->
        Ra_mcu.Device.observe_gauges ~registry
          ~labels:[ ("device", m.name) ]
          (Session.device m.session);
        {
          r_name = m.name;
          r_health = m.health;
          r_sweeps = m.sweeps;
          r_history = member_history m;
          r_service_stats = Service.stats (Session.service m.session);
          r_anchor_stats = Code_attest.stats (Session.anchor m.session);
        })
      t.members
  in
  let set_members h n =
    Ra_obs.Registry.Gauge.set
      (Ra_obs.Registry.Gauge.get ~registry
         ~labels:[ ("health", health_label h) ]
         "ra_fleet_members")
      (float_of_int n)
  in
  let healthy = count_health t.members Healthy in
  let comp = count_health t.members Compromised in
  let unresp = count_health t.members Unresponsive in
  let unknown = count_health t.members Unknown in
  set_members Healthy healthy;
  set_members Compromised comp;
  set_members Unresponsive unresp;
  set_members Unknown unknown;
  {
    s_members = reports;
    s_healthy = healthy;
    s_compromised = comp;
    s_unresponsive = unresp;
    s_unknown = unknown;
    s_sweep_latency_p50_ms = Ra_obs.Registry.Histogram.percentile sweep_latency 50.0;
    s_sweep_latency_p90_ms = Ra_obs.Registry.Histogram.percentile sweep_latency 90.0;
    s_sweep_latency_p99_ms = Ra_obs.Registry.Histogram.percentile sweep_latency 99.0;
  }

let pp_verdict_opt fmt = function
  | None -> Format.pp_print_string fmt "no response"
  | Some v -> Verifier.pp_verdict fmt v

let render_health snapshot =
  let buf = Buffer.create 512 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "fleet: %d healthy, %d compromised, %d unresponsive, %d unknown@."
    snapshot.s_healthy snapshot.s_compromised snapshot.s_unresponsive
    snapshot.s_unknown;
  Format.fprintf fmt "sweep latency: p50 <= %.0f ms, p90 <= %.0f ms, p99 <= %.0f ms@."
    snapshot.s_sweep_latency_p50_ms snapshot.s_sweep_latency_p90_ms
    snapshot.s_sweep_latency_p99_ms;
  List.iter
    (fun r ->
      let last =
        match List.rev r.r_history with
        | [] -> Format.asprintf "never swept"
        | (at, v) :: _ -> Format.asprintf "last %a at %.1f s" pp_verdict_opt v at
      in
      Format.fprintf fmt
        "  %-12s %-12s sweeps=%-3d attested=%d/%d svc ok=%d bad_auth=%d \
         not_fresh=%d fault=%d (%s)@."
        r.r_name
        (health_label r.r_health)
        r.r_sweeps r.r_anchor_stats.Code_attest.attestations_performed
        r.r_anchor_stats.Code_attest.requests_seen r.r_service_stats.Service.invocations
        r.r_service_stats.Service.rejected_bad_auth
        r.r_service_stats.Service.rejected_not_fresh
        r.r_service_stats.Service.rejected_fault last)
    snapshot.s_members;
  Format.pp_print_flush fmt ();
  Buffer.contents buf
