module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu
module Clock = Ra_mcu.Clock

type policy =
  | No_freshness
  | Nonce_history of { max_entries : int option }
  | Counter
  | Timestamp of { window_ms : int64 }

type reject = Verdict.freshness_reject =
  | Missing_field
  | Wrong_field
  | Replayed_nonce
  | Stale_counter of { got : int64; stored : int64 }
  | Stale_or_reordered_timestamp of { got : int64; last : int64 }
  | Delayed_timestamp of { got : int64; now : int64; window : int64 }
  | Future_timestamp of { got : int64; now : int64; window : int64 }

type state = {
  device : Device.t;
  policy : policy;
  cell_addr : int;
  now_ms_fn : (unit -> int64) option;
  mutable nonces : string list; (* newest first *)
  mutable nonce_count : int;
}

let init ?cell_addr ?now_ms_fn device policy =
  (match policy with
  | Timestamp _ when Device.clock device = None && now_ms_fn = None ->
    invalid_arg "Freshness.init: timestamp policy requires a clock"
  | Timestamp _ | No_freshness | Nonce_history _ | Counter -> ());
  let cell_addr =
    match cell_addr with Some a -> a | None -> Device.counter_addr device
  in
  { device; policy; cell_addr; now_ms_fn; nonces = []; nonce_count = 0 }

let policy t = t.policy

let prover_now_ms t =
  match t.now_ms_fn with
  | Some f -> f ()
  | None ->
    (match Device.clock t.device with
    | None -> 0L
    | Some clock -> Int64.of_float (Clock.seconds clock *. 1000.0))

let cell_addr t = t.cell_addr
let load_cell t = Cpu.load_u64 (Device.cpu t.device) (cell_addr t)
let store_cell t v = Cpu.store_u64 (Device.cpu t.device) (cell_addr t) v

let check_nonce t max_entries nonce =
  if List.mem nonce t.nonces then Error Replayed_nonce
  else begin
    t.nonces <- nonce :: t.nonces;
    t.nonce_count <- t.nonce_count + 1;
    (match max_entries with
    | Some cap when t.nonce_count > cap ->
      (* bounded non-volatile memory: evict the oldest entry *)
      (match List.rev t.nonces with
      | [] -> ()
      | _oldest :: rest_oldest_first ->
        t.nonces <- List.rev rest_oldest_first;
        t.nonce_count <- t.nonce_count - 1)
    | Some _ | None -> ());
    Ok ()
  end

(* Serial-number acceptance (RFC 1982 style). The 8-byte cell is a point
   on a 2^64 circle; [c] is fresh iff it lies in the forward half-window
   of the stored value, i.e. the wrapped difference [c - stored] is in
   [1, 2^63 - 1] — exactly a positive signed Int64. An unsigned
   strictly-greater check looks equivalent until the cell nears the top
   of the range: once an Adv_roam rollback (or 2^64 honest requests)
   parks the cell at all-ones, no counter is ever "greater" again and
   the prover is bricked — a permanent availability loss the paper's
   §3.1 argument exists to prevent. Under serial arithmetic the
   verifier's natural wrap to 0, 1, 2, ... keeps being accepted, while
   any replay of a pre-wrap transmission sits in the backward
   half-window and stays rejected. *)
let check_counter t c =
  let stored = load_cell t in
  if Int64.compare (Int64.sub c stored) 0L > 0 then begin
    store_cell t c;
    Ok ()
  end
  else Error (Stale_counter { got = c; stored })

let check_timestamp t window ts =
  let now = prover_now_ms t in
  let last = load_cell t in
  if Int64.compare ts last <= 0 then
    Error (Stale_or_reordered_timestamp { got = ts; last })
  else if Int64.compare (Int64.sub now ts) window > 0 then
    Error (Delayed_timestamp { got = ts; now; window })
  else if Int64.compare (Int64.sub ts now) window > 0 then
    Error (Future_timestamp { got = ts; now; window })
  else begin
    store_cell t ts;
    Ok ()
  end

let policy_label = function
  | No_freshness -> "no_freshness"
  | Nonce_history _ -> "nonce_history"
  | Counter -> "counter"
  | Timestamp _ -> "timestamp"

let reject_label = Verdict.freshness_label

let check_counter_name = "ra_freshness_checks_total"

(* ok-path handles precreated per policy (hot path); the reject arms are
   rare, so those handles are looked up on demand *)
let ok_counters =
  List.map
    (fun p ->
      ( p,
        Ra_obs.Registry.Counter.get
          ~labels:[ ("policy", p); ("result", "ok") ]
          check_counter_name ))
    [ "no_freshness"; "nonce_history"; "counter"; "timestamp" ]

let count_check policy outcome =
  match outcome with
  | Ok () -> Ra_obs.Registry.Counter.inc (List.assoc (policy_label policy) ok_counters)
  | Error r ->
    Ra_obs.Registry.Counter.inc
      (Ra_obs.Registry.Counter.get
         ~labels:[ ("policy", policy_label policy); ("result", reject_label r) ]
         check_counter_name)

let check_and_update t field =
  let outcome =
    match (t.policy, field) with
    | No_freshness, _ -> Ok ()
    | Nonce_history { max_entries }, Message.F_nonce n -> check_nonce t max_entries n
    | Counter, Message.F_counter c -> check_counter t c
    | Timestamp { window_ms }, Message.F_timestamp ts -> check_timestamp t window_ms ts
    | (Nonce_history _ | Counter | Timestamp _), Message.F_none -> Error Missing_field
    | ( (Nonce_history _ | Counter | Timestamp _),
        (Message.F_nonce _ | Message.F_counter _ | Message.F_timestamp _) ) ->
      Error Wrong_field
  in
  count_check t.policy outcome;
  outcome

let history_bytes t = List.fold_left (fun acc n -> acc + String.length n) 0 t.nonces
let history_length t = t.nonce_count

let pp_reject = Verdict.pp_freshness_reject
let current_cell = load_cell
