module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu
module Clock = Ra_mcu.Clock
module Ea_mpu = Ra_mcu.Ea_mpu
module C = Ra_crypto

type reject =
  | Sync_bad_auth
  | Sync_stale_counter of { got : int64; stored : int64 }
  | Sync_no_clock

type t = {
  device : Device.t;
  (* HMAC midstates for the current K_attest (see Code_attest.keyed_cache) *)
  mutable keyed_cache : (string * C.Hmac.key_ctx) option;
}

let sync_counter_offset = 8
let offset_offset = 16

let u64_be v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (7 - i))) 0xFFL)))

let sync_body ~verifier_time_ms ~sync_counter =
  "SYNC" ^ u64_be verifier_time_ms ^ u64_be sync_counter

let ack_body ~acked_counter = "SYNCACK" ^ u64_be acked_counter

let rule_protect_sync_state device =
  {
    Ea_mpu.rule_name = "sync_state";
    data_base = Device.counter_addr device + sync_counter_offset;
    data_size = 16;
    read_by = Ea_mpu.Anyone;
    write_by = Ea_mpu.Code_in [ Device.region_attest ];
  }

module M = struct
  let result r =
    Ra_obs.Registry.Counter.get ~labels:[ ("result", r) ] "ra_clock_sync_requests_total"

  let ok = result "ok"
  let bad_auth = result "bad_auth"
  let stale_counter = result "stale_counter"
  let no_clock = result "no_clock"
end

let install device = { device; keyed_cache = None }

let cpu t = Device.cpu t.device
let sync_counter_addr t = Device.counter_addr t.device + sync_counter_offset
let offset_addr t = Device.counter_addr t.device + offset_offset

let raw_clock_ms t =
  match Device.clock t.device with
  | None -> None
  | Some clock -> Some (Int64.of_float (Clock.seconds clock *. 1000.0))

(* The offset is stored as a biased unsigned value so the cell is a plain
   u64: stored = offset + 2^62. *)
let bias = Int64.shift_left 1L 62

let load_offset t =
  Cpu.with_context (cpu t) Device.region_attest (fun () ->
      let raw = Cpu.load_u64 (cpu t) (offset_addr t) in
      if Int64.equal raw 0L then 0L (* never synchronized *)
      else Int64.sub raw bias)

let offset_ms = load_offset

let now_ms t =
  match raw_clock_ms t with
  | None -> 0L
  | Some clock_ms -> Int64.add clock_ms (load_offset t)

let key t =
  Auth.blob_sym_key
    (Cpu.load_bytes (cpu t) (Device.key_addr t.device) (Device.key_len t.device))

let keyed_for t sym_key =
  match t.keyed_cache with
  | Some (k, kc) when String.equal k sym_key -> kc
  | Some _ | None ->
    let kc = Auth.keyed sym_key in
    t.keyed_cache <- Some (sym_key, kc);
    kc

let handle_raw t wire =
  match wire with
  | Message.Sync_request { verifier_time_ms; sync_counter; sync_tag } ->
    Cpu.with_context (cpu t) Device.region_attest (fun () ->
        match raw_clock_ms t with
        | None -> Error Sync_no_clock
        | Some clock_ms ->
          Cpu.consume_cycles (cpu t)
            (Ra_mcu.Timing.request_auth_cycles Ra_mcu.Timing.Auth_hmac_sha1);
          let body = sync_body ~verifier_time_ms ~sync_counter in
          let kc = keyed_for t (key t) in
          if not (C.Hmac.verify_with kc ~msg:body ~tag:sync_tag) then
            Error Sync_bad_auth
          else begin
            let stored = Cpu.load_u64 (cpu t) (sync_counter_addr t) in
            if Int64.unsigned_compare sync_counter stored <= 0 then
              Error (Sync_stale_counter { got = sync_counter; stored })
            else begin
              Cpu.store_u64 (cpu t) (sync_counter_addr t) sync_counter;
              let offset = Int64.sub verifier_time_ms clock_ms in
              Cpu.store_u64 (cpu t) (offset_addr t) (Int64.add offset bias);
              let ack_tag =
                C.Hmac.mac_with kc (ack_body ~acked_counter:sync_counter)
              in
              Ok (Message.Sync_response { acked_counter = sync_counter; ack_tag })
            end
          end)
  | Message.Request _ | Message.Response _ | Message.Sync_response _
  | Message.Service_request _ | Message.Service_ack _ | Message.Hs_init _
  | Message.Hs_resp _ | Message.Hs_fin _ | Message.Record _ ->
    Error Sync_bad_auth

let handle t wire =
  let result = handle_raw t wire in
  Ra_obs.Registry.Counter.inc
    (match result with
    | Ok _ -> M.ok
    | Error Sync_bad_auth -> M.bad_auth
    | Error (Sync_stale_counter _) -> M.stale_counter
    | Error Sync_no_clock -> M.no_clock);
  result

let make_sync_request ~sym_key ~time ~counter =
  let verifier_time_ms = Int64.of_float (Ra_net.Simtime.now time *. 1000.0) in
  let sync_tag =
    C.Hmac.mac C.Hmac.sha1 ~key:sym_key
      (sync_body ~verifier_time_ms ~sync_counter:counter)
  in
  Message.Sync_request { verifier_time_ms; sync_counter = counter; sync_tag }

let check_sync_ack ~sym_key ~counter wire =
  match wire with
  | Message.Sync_response { acked_counter; ack_tag } ->
    Int64.equal acked_counter counter
    && C.Hmac.verify C.Hmac.sha1 ~key:sym_key
         ~msg:(ack_body ~acked_counter:counter)
         ~tag:ack_tag
  | Message.Request _ | Message.Response _ | Message.Sync_request _
  | Message.Service_request _ | Message.Service_ack _ | Message.Hs_init _
  | Message.Hs_resp _ | Message.Hs_fin _ | Message.Record _ ->
    false

let pp_reject fmt = function
  | Sync_bad_auth -> Format.pp_print_string fmt "sync authentication failed"
  | Sync_stale_counter { got; stored } ->
    Format.fprintf fmt "stale sync counter (got %Ld, stored %Ld)" got stored
  | Sync_no_clock -> Format.pp_print_string fmt "prover has no clock"
