type policy = {
  max_attempts : int;
  base_timeout_s : float;
  multiplier : float;
  max_timeout_s : float;
  jitter : float;
}

let default =
  {
    max_attempts = 8;
    base_timeout_s = 0.5;
    multiplier = 2.0;
    max_timeout_s = 30.0;
    jitter = 0.1;
  }

let no_retry = { default with max_attempts = 1; jitter = 0.0 }
let impatient = { default with max_attempts = 3; base_timeout_s = 0.2 }

let validate p =
  if p.max_attempts < 1 then invalid_arg "Retry: max_attempts must be >= 1";
  if not (p.base_timeout_s > 0.0) then invalid_arg "Retry: base_timeout_s must be > 0";
  if not (p.multiplier >= 1.0) then invalid_arg "Retry: multiplier must be >= 1";
  if not (p.max_timeout_s >= p.base_timeout_s) then
    invalid_arg "Retry: max_timeout_s must be >= base_timeout_s";
  if not (p.jitter >= 0.0 && p.jitter <= 1.0) then
    invalid_arg "Retry: jitter must be in [0, 1]"

let timeout_s p ~attempt ~u =
  if attempt < 1 then invalid_arg "Retry.timeout_s: attempt is 1-based";
  let raw = p.base_timeout_s *. (p.multiplier ** float_of_int (attempt - 1)) in
  let capped = Float.min raw p.max_timeout_s in
  capped *. (1.0 -. (p.jitter /. 2.0) +. (p.jitter *. u))

let max_total_s p =
  let worst = 1.0 +. (p.jitter /. 2.0) in
  let total = ref 0.0 in
  for attempt = 1 to p.max_attempts do
    let raw = p.base_timeout_s *. (p.multiplier ** float_of_int (attempt - 1)) in
    total := !total +. (Float.min raw p.max_timeout_s *. worst)
  done;
  !total
