module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu
module Timing = Ra_mcu.Timing
module Ea_mpu = Ra_mcu.Ea_mpu
module C = Ra_crypto

type command =
  | Secure_erase
  | Code_update of { image : string }
  | Ping

type request = {
  command : command;
  freshness : Message.freshness_field;
  tag : Message.auth_tag;
}

type ack = { acked_command : string; ack_report : string }

type reject =
  | Service_bad_auth
  | Service_not_fresh of Freshness.reject
  | Service_fault of Cpu.fault

type stats = { invocations : int; breakdown : (Verdict.reason * int) list }

let rejections s = List.fold_left (fun acc (_, n) -> acc + n) 0 s.breakdown

let rejected s reason =
  match List.assoc_opt reason s.breakdown with Some n -> n | None -> 0

type t = {
  device : Device.t;
  scheme : Timing.auth_scheme option;
  freshness : Freshness.state;
  spans : Ra_obs.Span.t;
  mutable invocations : int;
  tally : Verdict.Tally.t; (* rejection counts, shared reason vocabulary *)
  (* HMAC midstates for the current K_attest (see Code_attest.keyed_cache) *)
  mutable keyed_cache : (string * C.Hmac.key_ctx) option;
}

(* one atomic add per outcome; handles created at module init *)
module M = struct
  let invocations = Ra_obs.Registry.Counter.get "ra_service_invocations_total"

  let rejected reason =
    Ra_obs.Registry.Counter.get
      ~labels:[ ("reason", Verdict.Reason.label reason) ]
      "ra_service_rejections_total"

  let bad_auth = rejected Verdict.Reason.Bad_auth
  let not_fresh = rejected Verdict.Reason.Not_fresh
  let fault = rejected Verdict.Reason.Fault
end

let service_cell_offset = 24

let rule_protect_service_state device =
  {
    Ea_mpu.rule_name = "service_state";
    data_base = Device.counter_addr device + service_cell_offset;
    data_size = 8;
    read_by = Ea_mpu.Anyone;
    write_by = Ea_mpu.Code_in [ Device.region_attest ];
  }

let install device ~scheme ~policy =
  let cpu = Device.cpu device in
  {
    device;
    scheme;
    freshness =
      Freshness.init ~cell_addr:(Device.counter_addr device + service_cell_offset)
        device policy;
    spans = Ra_obs.Span.create ~clock:(fun () -> Cpu.elapsed_seconds cpu) ();
    invocations = 0;
    tally = Verdict.Tally.create ();
    keyed_cache = None;
  }

let stats t =
  { invocations = t.invocations; breakdown = Verdict.Tally.to_list t.tally }
let spans t = t.spans

let command_name = function
  | Secure_erase -> "secure-erase"
  | Code_update _ -> "code-update"
  | Ping -> "ping"

let request_body command freshness =
  let payload =
    match command with
    | Secure_erase -> "ERASE"
    | Code_update { image } -> "UPDATE" ^ image
    | Ping -> "PING"
  in
  "SVC" ^ command_name command ^ "|" ^ payload ^ Message.freshness_bytes freshness

let make_request ~sym_key ~scheme ~freshness command =
  let tag =
    match scheme with
    | None -> Message.Tag_none
    | Some scheme ->
      Auth.tag_request scheme (Auth.Vs_symmetric sym_key)
        ~body:(request_body command freshness)
  in
  { command; freshness; tag }

let cpu t = Device.cpu t.device

let key_blob t = Cpu.load_bytes (cpu t) (Device.key_addr t.device) (Device.key_len t.device)

let keyed_for t sym_key =
  match t.keyed_cache with
  | Some (k, kc) when String.equal k sym_key -> kc
  | Some _ | None ->
    let kc = Auth.keyed sym_key in
    t.keyed_cache <- Some (sym_key, kc);
    kc

(* Modeled costs of the service bodies: a RAM write per erased byte and a
   flash word program (slow: 20 cycles/word here) per 4 image bytes. *)
let erase_cycles len = Int64.of_int (2 * len)
let update_cycles len = Int64.of_int (20 * ((len + 3) / 4))

let execute t command =
  match command with
  | Ping -> "pong"
  | Secure_erase ->
    let base = Device.attested_base t.device in
    let len = Device.attested_len t.device in
    Cpu.consume_cycles (cpu t) (erase_cycles len);
    let chunk = 4096 in
    let zeros = String.make chunk '\x00' in
    let rec wipe off =
      if off < len then begin
        let n = min chunk (len - off) in
        Cpu.store_bytes (cpu t) (base + off) (String.sub zeros 0 n);
        wipe (off + n)
      end
    in
    wipe 0;
    "erased"
  | Code_update { image } ->
    let region = Ra_mcu.Memory.region_named (Device.memory t.device) Device.region_app in
    if String.length image > region.Ra_mcu.Region.size then "image too large"
    else begin
      Cpu.consume_cycles (cpu t) (update_cycles (String.length image));
      Cpu.store_bytes (cpu t) region.Ra_mcu.Region.base image;
      "updated to " ^ C.Hexutil.to_hex (C.Sha256.digest image)
    end

let handle t req =
  let run () =
    Cpu.consume_cycles (cpu t) 200L;
    let authenticated =
      match t.scheme with
      | None -> true
      | Some scheme ->
        Ra_obs.Span.with_span t.spans "service.auth" (fun () ->
            Cpu.consume_cycles (cpu t) (Timing.request_auth_cycles scheme);
            let blob = key_blob t in
            Auth.verify_request
              ~hmac_keyed:(keyed_for t (Auth.blob_sym_key blob))
              scheme ~key_blob:blob
              ~body:(request_body req.command req.freshness)
              req.tag)
    in
    if not authenticated then Error Service_bad_auth
    else
      match
        Ra_obs.Span.with_span t.spans "service.freshness" (fun () ->
            Freshness.check_and_update t.freshness req.freshness)
      with
      | Error e -> Error (Service_not_fresh e)
      | Ok () ->
        let result =
          Ra_obs.Span.with_span t.spans
            ~labels:[ ("command", command_name req.command) ]
            "service.execute"
            (fun () -> execute t req.command)
        in
        let key = Auth.blob_sym_key (key_blob t) in
        Ok
          {
            acked_command = command_name req.command;
            ack_report = C.Hmac.mac_parts (keyed_for t key) [ "ACK"; result ];
          }
  in
  let result =
    try Cpu.with_context (cpu t) Device.region_attest run
    with Cpu.Protection_fault fault -> Error (Service_fault fault)
  in
  (match result with
  | Ok _ ->
    Ra_obs.Registry.Counter.inc M.invocations;
    t.invocations <- t.invocations + 1
  | Error Service_bad_auth ->
    Ra_obs.Registry.Counter.inc M.bad_auth;
    Verdict.Tally.add t.tally Verdict.Reason.Bad_auth
  | Error (Service_not_fresh _) ->
    Ra_obs.Registry.Counter.inc M.not_fresh;
    Verdict.Tally.add t.tally Verdict.Reason.Not_fresh
  | Error (Service_fault _) ->
    Ra_obs.Registry.Counter.inc M.fault;
    Verdict.Tally.add t.tally Verdict.Reason.Fault);
  result

let command_payload = function
  | Secure_erase -> ""
  | Code_update { image } -> image
  | Ping -> ""

let request_to_wire req =
  Message.Service_request
    {
      command_name = command_name req.command;
      payload = command_payload req.command;
      service_freshness = req.freshness;
      service_tag = req.tag;
    }

let request_of_wire = function
  | Message.Service_request { command_name; payload; service_freshness; service_tag }
    ->
    let command =
      match command_name with
      | "secure-erase" -> Some Secure_erase
      | "code-update" -> Some (Code_update { image = payload })
      | "ping" -> Some Ping
      | _ -> None
    in
    Option.map
      (fun command -> { command; freshness = service_freshness; tag = service_tag })
      command
  | Message.Request _ | Message.Response _ | Message.Sync_request _
  | Message.Sync_response _ | Message.Service_ack _ | Message.Hs_init _
  | Message.Hs_resp _ | Message.Hs_fin _ | Message.Record _ ->
    None

let ack_to_wire ack =
  Message.Service_ack { acked_command = ack.acked_command; ack_report = ack.ack_report }

let to_verdict = function
  | Service_bad_auth -> Verdict.Bad_auth
  | Service_not_fresh r -> Verdict.Not_fresh r
  | Service_fault f ->
    Verdict.Fault { fault_addr = f.Cpu.fault_addr; fault_code = f.Cpu.fault_code }

let handle_r t req = Result.map_error to_verdict (handle t req)

let pp_reject fmt = function
  | Service_bad_auth -> Format.pp_print_string fmt "service authentication failed"
  | Service_not_fresh r -> Format.fprintf fmt "service not fresh: %a" Freshness.pp_reject r
  | Service_fault f ->
    Format.fprintf fmt "service denied access at 0x%06x" f.Cpu.fault_addr
