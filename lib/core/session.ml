module Simtime = Ra_net.Simtime
module Trace = Ra_net.Trace
module Channel = Ra_net.Channel
module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu

type t = {
  time : Simtime.t;
  trace : Trace.t;
  channel : string Channel.t;
  verifier : Verifier.t;
  prover : Architecture.prover;
  clock_sync : Clock_sync.t option;
  service : Service.t;
  sym_key : string;
  pending : (string, Message.attreq) Hashtbl.t; (* challenge -> request *)
  mutable verdicts : (float * Verdict.t) list; (* newest first *)
  mutable verdict_count : int; (* = List.length verdicts, O(1) *)
  retry_prng : Ra_crypto.Prng.t; (* jitter draws for the retry engine *)
  mutable sync_counter : int64;
  mutable sync_acks : int;
  mutable service_counter : int64;
  mutable service_acks : string list;
  mutable profiler : Ra_obs.Profiler.t option;
  mutable profile_device : string;
  mutable in_flight : bool; (* a retry round is awaiting its verdict *)
}

let default_sym_key = "K_attest_0123456789." (* 20 bytes *)

let freshness_kind_of_policy = function
  | Freshness.No_freshness -> Verifier.Fk_none
  | Freshness.Nonce_history _ -> Verifier.Fk_nonce
  | Freshness.Counter -> Verifier.Fk_counter
  | Freshness.Timestamp _ -> Verifier.Fk_timestamp

let create ?(spec = Architecture.trustlite_base) ?(sym_key = default_sym_key)
    ?ram_seed ?ram_size () =
  let time = Simtime.create () in
  let trace = Trace.create time in
  let channel = Channel.create time trace in
  (* The verifier needs its ECDSA public key inside the prover's blob, so
     build the verifier first with a placeholder reference image. *)
  let verifier =
    match
      Verifier.of_config
        (Verifier.Config.v ?scheme:spec.Architecture.scheme
           ~freshness_kind:(freshness_kind_of_policy spec.Architecture.policy)
           ~sym_key ~time ())
    with
    | Ok v -> v
    | Error msg -> invalid_arg ("Session.create: " ^ msg)
  in
  let prover =
    Architecture.build ?ram_seed ?ram_size
      ~key_blob:(Verifier.prover_key_blob verifier)
      spec
  in
  Verifier.set_reference_image verifier (Code_attest.measure_memory prover.anchor);
  let clock_sync =
    match Ra_mcu.Device.clock prover.Architecture.device with
    | Some _ -> Some (Clock_sync.install prover.Architecture.device)
    | None -> None
  in
  let service =
    Service.install prover.Architecture.device ~scheme:spec.Architecture.scheme
      ~policy:Freshness.Counter
  in
  let t =
    {
      time;
      trace;
      channel;
      verifier;
      prover;
      clock_sync;
      service;
      sym_key;
      pending = Hashtbl.create 8;
      verdicts = [];
      verdict_count = 0;
      retry_prng = Ra_crypto.Prng.create 0x5e551017L;
      sync_counter = 0L;
      sync_acks = 0;
      service_counter = 0L;
      service_acks = [];
      profiler = None;
      profile_device = "prover";
      in_flight = false;
    }
  in
  (* Phase attribution is out-of-band: one option match when profiling is
     off, and nothing here ever writes device or wire state. *)
  let profile_phase phase ~cycles ~nj =
    match t.profiler with
    | None -> ()
    | Some p ->
      let trace_id =
        Option.bind (Trace.tracer t.trace) Ra_obs.Trace.current_trace_id
      in
      Ra_obs.Profiler.Phases.record p.Ra_obs.Profiler.phases
        {
          Ra_obs.Profiler.ps_at = Simtime.now t.time;
          ps_trace_id = trace_id;
          ps_device = t.profile_device;
          ps_phase = phase;
          ps_cycles = cycles;
          ps_nj = nj;
        }
  in
  let profile_radio ~bytes =
    match t.profiler with
    | None -> ()
    | Some _ ->
      let uj =
        Ra_mcu.Energy.radio_uj_per_byte (Device.energy prover.Architecture.device)
      in
      profile_phase "radio" ~cycles:0L ~nj:(float_of_int bytes *. uj *. 1e3)
  in
  (* Prover side: parse the frame (total parser -- malformed input is
     dropped with a trace record, the radio cost is still paid), run the
     trust anchor, keep wall time in lock-step with consumed device
     cycles, answer on the wire. *)
  let (_ : string Channel.Endpoint.handle) =
    Channel.Endpoint.attach channel Channel.Prover_side (fun frame ->
      match Message.wire_of_bytes frame with
      | None ->
        Ra_mcu.Energy.consume_radio
          (Device.energy prover.Architecture.device)
          ~bytes:(String.length frame);
        Trace.record trace "prover: malformed frame dropped"
      | Some wire ->
      (* the radio burns energy on every received frame, bogus or not *)
      Ra_mcu.Energy.consume_radio
        (Device.energy prover.Architecture.device)
        ~bytes:(Message.wire_size wire);
      profile_radio ~bytes:(Message.wire_size wire);
      match wire with
      | Message.Request req ->
        Trace.causal_span trace ~cat:"prover" "prover.attest" (fun () ->
        let cpu = Device.cpu prover.Architecture.device in
        let before = Cpu.elapsed_seconds cpu in
        (* the span closes after Simtime catches up with the consumed
           cycles, so its duration equals the anchor's simulated work *)
        let span = Ra_obs.Span.enter (Trace.spans trace) "prover.attest" in
        let result = Code_attest.handle_request_r prover.Architecture.anchor req in
        let spent = Cpu.elapsed_seconds cpu -. before in
        Simtime.advance_by time spent;
        let result_label =
          match result with Ok _ -> "attested" | Error v -> Verdict.label v
        in
        Ra_obs.Span.exit (Trace.spans trace)
          ~labels:[ ("result", result_label) ]
          span;
        Trace.causal_instant trace ~cat:"prover"
          ~labels:[ ("result", result_label) ]
          "prover.result";
        match result with
        | Ok resp ->
          Trace.recordf trace "prover: attested (%.3f ms of work)" (spent *. 1000.0);
          Ra_mcu.Energy.consume_radio
            (Device.energy prover.Architecture.device)
            ~bytes:(Message.wire_size (Message.Response resp));
          profile_radio ~bytes:(Message.wire_size (Message.Response resp));
          Channel.send channel ~src:Channel.Prover_side
            (Message.wire_to_bytes (Message.Response resp))
        | Error reject ->
          Trace.recordf trace "prover: rejected request: %a" Verdict.pp reject)
      | Message.Sync_request _ as sync_req ->
        (match t.clock_sync with
        | None -> Trace.record trace "prover: no clock, sync ignored"
        | Some sync ->
          (match Clock_sync.handle sync sync_req with
          | Ok ack ->
            Trace.record trace "prover: clock synchronized";
            Channel.send channel ~src:Channel.Prover_side (Message.wire_to_bytes ack)
          | Error reject ->
            Trace.recordf trace "prover: sync rejected: %a" Clock_sync.pp_reject reject))
      | Message.Service_request _ as svc_frame ->
        (match Service.request_of_wire svc_frame with
        | None -> Trace.record trace "prover: unknown service command dropped"
        | Some svc_req ->
          (match Service.handle_r t.service svc_req with
          | Ok ack ->
            Trace.recordf trace "prover: service %s executed" ack.Service.acked_command;
            Channel.send channel ~src:Channel.Prover_side
              (Message.wire_to_bytes (Service.ack_to_wire ack))
          | Error reject ->
            Trace.recordf trace "prover: service rejected: %a" Verdict.pp reject))
      | Message.Sync_response _ | Message.Response _ | Message.Service_ack _
      | Message.Hs_init _ | Message.Hs_resp _ | Message.Hs_fin _
      | Message.Record _ ->
        (* session frames are handled by the Secure_session endpoint
           attached above this one; reaching here means no session is
           listening *)
        Trace.record trace "prover: ignored non-request message")
  in
  let (_ : string Channel.Endpoint.handle) =
    Channel.Endpoint.attach channel Channel.Verifier_side (fun frame ->
      match Message.wire_of_bytes frame with
      | None -> Trace.record trace "verifier: malformed frame dropped"
      | Some wire ->
      match wire with
      | Message.Response resp ->
        (match Hashtbl.find_opt t.pending resp.Message.echo_challenge with
        | None -> Trace.record trace "verifier: unsolicited response ignored"
        | Some req ->
          Hashtbl.remove t.pending resp.Message.echo_challenge;
          let verdict =
            Trace.causal_span trace ~cat:"verifier" "verifier.check" (fun () ->
                Verifier.check_response_r verifier ~request:req resp)
          in
          t.verdicts <- (Simtime.now time, verdict) :: t.verdicts;
          t.verdict_count <- t.verdict_count + 1;
          Trace.causal_instant trace ~cat:"verifier"
            ~labels:[ ("verdict", Verdict.label verdict) ]
            "verifier.verdict";
          Trace.recordf trace "verifier: verdict %a" Verdict.pp verdict)
      | Message.Sync_response _ as ack ->
        if Clock_sync.check_sync_ack ~sym_key:t.sym_key ~counter:t.sync_counter ack then begin
          t.sync_acks <- t.sync_acks + 1;
          Trace.record trace "verifier: sync acknowledged"
        end
        else Trace.record trace "verifier: bad sync ack ignored"
      | Message.Service_ack { acked_command; _ } ->
        t.service_acks <- acked_command :: t.service_acks;
        Trace.recordf trace "verifier: service %s acknowledged" acked_command
      | Message.Request _ | Message.Sync_request _ | Message.Service_request _
      | Message.Hs_init _ | Message.Hs_resp _ | Message.Hs_fin _
      | Message.Record _ ->
        Trace.record trace "verifier: ignored non-response message")
  in
  (* Permanent out-of-band observers over the anchor's CPU-clocked spans
     and the CPU's idle advances. Both the causal-trace mirror and the
     profiler phase attribution live behind one dispatcher installed
     here, so enabling tracing and profiling compose in either order.
     Each costs one option match when its consumer is off. *)
  let cpu = Device.cpu prover.Architecture.device in
  let energy = Device.energy prover.Architecture.device in
  let hz = float_of_int (Cpu.clock_hz cpu) in
  let nj_per_cycle = Ra_mcu.Energy.active_nj_per_cycle energy in
  let sleep_uw = Ra_mcu.Energy.sleep_microwatt energy in
  (* CPU-clocked sub-step spans (anchor.auth, anchor.freshness, anchor.mac
     and the service ones) mirror into the causal timeline as instants at
     the current simulated time carrying the work as a cpu_ms label —
     their clock is prover CPU work, not Simtime, and mixing the two
     timebases as span bounds would skew the timeline. *)
  let mirror cat (f : Ra_obs.Span.finished) =
    Trace.causal_instant t.trace ~cat
      ~labels:
        (("cpu_ms", Printf.sprintf "%.4f" (Ra_obs.Span.duration_ms f))
        :: f.Ra_obs.Span.f_labels)
      f.Ra_obs.Span.f_name
  in
  Ra_obs.Span.on_finish (Code_attest.spans prover.Architecture.anchor) (fun f ->
      mirror "prover" f;
      match t.profiler with
      | None -> ()
      | Some _ ->
        (* f_start/f_stop are Cpu.elapsed_seconds values (= cycles / hz),
           so the rounding recovers the exact integer cycle count. *)
        let cycles =
          Int64.of_float
            (Float.round ((f.Ra_obs.Span.f_stop -. f.Ra_obs.Span.f_start) *. hz))
        in
        let phase =
          let n = f.Ra_obs.Span.f_name in
          if String.length n > 7 && String.sub n 0 7 = "anchor." then
            String.sub n 7 (String.length n - 7)
          else n
        in
        profile_phase phase ~cycles ~nj:(Int64.to_float cycles *. nj_per_cycle));
  Ra_obs.Span.on_finish (Service.spans service) (mirror "service");
  (* Channel wait: idle cycles spent inside a retry round (reply windows,
     backoff) are the paper's "device waits on the radio" share. Idle
     advances outside a round — fleet stagger, inter-round gaps — are not
     attributed. *)
  Cpu.on_advance cpu (fun _ delta kind ->
      match (kind, t.profiler) with
      | Cpu.Idle, Some _ when t.in_flight ->
        let seconds = Int64.to_float delta /. hz in
        profile_phase "wait" ~cycles:delta ~nj:(seconds *. sleep_uw *. 1e3)
      | _ -> ());
  t

let time t = t.time
let trace t = t.trace
let channel t = t.channel
let verifier t = t.verifier
let prover t = t.prover
let anchor t = t.prover.Architecture.anchor
let device t = t.prover.Architecture.device
let service t = t.service
let sym_key t = t.sym_key
let verdicts t = List.rev t.verdicts

let send_request t =
  let req = Verifier.make_request t.verifier in
  Hashtbl.replace t.pending req.Message.challenge req;
  Channel.send t.channel ~src:Channel.Verifier_side
    (Message.wire_to_bytes (Message.Request req));
  req

let deliver_to_prover t req =
  Channel.deliver t.channel ~dst:Channel.Prover_side
    (Message.wire_to_bytes (Message.Request req))

let deliver_frame_to_prover t frame =
  Channel.deliver t.channel ~dst:Channel.Prover_side frame

let deliver_next_to_prover t = Channel.forward_next t.channel ~dst:Channel.Prover_side

let deliver_next_to_verifier t =
  Channel.forward_next t.channel ~dst:Channel.Verifier_side

let attest_round t =
  Trace.with_span t.trace "attest.round" (fun () ->
      let before = t.verdict_count in
      let _req = send_request t in
      let _ = deliver_next_to_prover t in
      (* drain the prover->verifier direction until this round's verdict
         lands or the wire is empty — under a DoS flood the sweep's response
         queues behind the attacker's junk *)
      let rec drain () =
        if t.verdict_count = before && deliver_next_to_verifier t then drain ()
      in
      drain ();
      if t.verdict_count > before then Some (snd (List.nth t.verdicts 0)) else None)

let sync_round t =
  Trace.with_span t.trace "sync.round" (fun () ->
      t.sync_counter <- Int64.add t.sync_counter 1L;
      let req = Clock_sync.make_sync_request ~sym_key:t.sym_key ~time:t.time
          ~counter:t.sync_counter
      in
      let before = t.sync_acks in
      Channel.send t.channel ~src:Channel.Verifier_side (Message.wire_to_bytes req);
      let _ = deliver_next_to_prover t in
      let rec drain () =
        if t.sync_acks = before && deliver_next_to_verifier t then drain ()
      in
      drain ();
      t.sync_acks > before)

let service_round t command =
  Trace.with_span t.trace
    ~labels:[ ("command", Service.command_name command) ]
    "service.round"
    (fun () ->
      t.service_counter <- Int64.add t.service_counter 1L;
      let req =
        Service.make_request ~sym_key:t.sym_key ~scheme:(Verifier.scheme t.verifier)
          ~freshness:(Message.F_counter t.service_counter)
          command
      in
      let before = List.length t.service_acks in
      Channel.send t.channel ~src:Channel.Verifier_side
        (Message.wire_to_bytes (Service.request_to_wire req));
      let _ = deliver_next_to_prover t in
      let rec drain () =
        if List.length t.service_acks = before && deliver_next_to_verifier t then drain ()
      in
      drain ();
      List.length t.service_acks > before)

let prover_wall_ms t =
  match t.clock_sync with None -> 0L | Some sync -> Clock_sync.now_ms sync

let advance_time t ~seconds =
  Simtime.advance_by t.time seconds;
  Device.idle t.prover.Architecture.device ~seconds

let set_in_flight t v = t.in_flight <- v

(* ---- impaired channel + retry engine ---- *)

let set_impairment t imp =
  match imp with
  | None -> Channel.set_impairment t.channel None
  | Some _ -> Channel.set_impairment t.channel ~mangle:Channel.mangle_string imp

type round = { r_verdict : Verdict.t; r_attempts : int; r_elapsed_s : float }

(* per-verdict round counters, precreated: one atomic add per round *)
module Mr = struct
  let round v =
    Ra_obs.Registry.Counter.get ~labels:[ ("verdict", v) ] "ra_session_rounds_total"

  let handles =
    List.map
      (fun v -> (v, round v))
      [
        "trusted";
        "untrusted_state";
        "invalid_response";
        "bad_auth";
        "not_fresh";
        "fault";
        "timed_out";
      ]

  let count verdict =
    Ra_obs.Registry.Counter.inc (List.assoc (Verdict.label verdict) handles)
end

(* ---- causal tracing -------------------------------------------------- *)

let tracing t = Trace.tracer t.trace

let enable_tracing ?capacity ?max_events ?(device = "prover") t =
  let tracer =
    Ra_obs.Trace.create ?capacity ?max_events ~device
      ~clock:(fun () -> Simtime.now t.time)
      ()
  in
  Trace.set_tracer t.trace (Some tracer);
  (* The CPU-clocked sub-step spans are mirrored into the causal timeline
     by the permanent dispatcher installed at [create]; nothing to hook
     here. *)
  tracer

let disable_tracing t = Trace.set_tracer t.trace None

(* ---- cycle/energy phase profiling ------------------------------------ *)

let profiling t = t.profiler

let enable_profiling ?capacity ?(device = "prover") t =
  let p = Ra_obs.Profiler.create ?capacity () in
  t.profile_device <- device;
  t.profiler <- Some p;
  p

let disable_profiling t = t.profiler <- None

(* The round is a resumable machine: it runs until it either has a
   verdict or needs simulated time to pass, and in the latter case it
   yields a [Round_wait] instead of advancing the clock itself. The
   sequential driver ([attest_round_r]) resumes immediately; the event
   engine ([Sched] via [Fleet ~engine:`Events]) enqueues the resume at
   [now + wait_s]. [resume] performs the [advance_time] itself, so both
   drivers execute literally the same sequence of operations on the
   session — byte-identity between engines is by construction, not by
   careful duplication. *)
type step =
  | Round_done of round
  | Round_wait of { wait_s : float; resume : unit -> step }

let round_begin ?(policy = Retry.default) t =
  Retry.validate policy;
  t.in_flight <- true;
  let started = Simtime.now t.time in
  let tracer = Trace.tracer t.trace in
  let cspan ?(labels = []) name =
    Option.map (fun tr -> Ra_obs.Trace.span tr ~cat:"retry" ~labels name) tracer
  in
  let cfinish ?labels sp =
    match (tracer, sp) with
    | Some tr, Some sp -> Ra_obs.Trace.finish_span tr ?labels sp
    | _ -> ()
  in
  let finish ~attempts verdict =
    Mr.count verdict;
    (match tracer with
    | Some tr ->
      (* the final verdict instant hangs off the round root, after the
         last attempt span has closed *)
      Trace.causal_instant t.trace ~cat:"verdict"
        ~labels:[ ("verdict", Verdict.label verdict) ]
        "verdict";
      Ra_obs.Trace.end_round tr ~verdict:(Verdict.label verdict) ~attempts
    | None -> ());
    { r_verdict = verdict; r_attempts = attempts; r_elapsed_s = Simtime.now t.time -. started }
  in
  Option.iter (fun tr -> ignore (Ra_obs.Trace.begin_round tr)) tracer;
  (* the machine spans suspensions, so the root span is opened and closed
     by hand; [finish] runs before the exit, exactly as it nested inside
     [with_span] before *)
  let root_sp = Ra_obs.Span.enter (Trace.spans t.trace) "attest.round" in
  let round_done ~attempts verdict =
    t.in_flight <- false;
    let r = finish ~attempts verdict in
    Ra_obs.Span.exit (Trace.spans t.trace) root_sp;
    Round_done r
  in
  let rec attempt n =
    (* A fresh request per attempt — never a byte-identical
       retransmission. The freshness counter/timestamp advances with
       every attempt, so a replay of any earlier transmission stays
       rejectable and the prover's cell is monotone across the whole
       retry schedule. *)
    let before = t.verdict_count in
    let attempt_sp =
      cspan ~labels:[ ("attempt", string_of_int n) ] "retry.attempt"
    in
    let _req = send_request t in
    let window =
      Retry.timeout_s policy ~attempt:n ~u:(Ra_crypto.Prng.float t.retry_prng 1.0)
    in
    let deadline = Simtime.deadline t.time ~after:window in
    (* Pump both directions until a verdict lands or the wire goes
       quiet. In-flight traffic is always processed — the reply
       window only governs how long the device idles once nothing is
       moving. A step cap keeps this total under pathological
       impairments (reorder probability 1 ping-pongs two messages
       forever). *)
    let rec pump steps =
      if t.verdict_count > before then ()
      else begin
        let moved_fwd = deliver_next_to_prover t in
        let moved_back = deliver_next_to_verifier t in
        if t.verdict_count = before && (moved_fwd || moved_back) then
          if steps < 100_000 then pump (steps + 1)
          else Trace.record t.trace "retry: pump step cap hit, backing off"
      end
    in
    pump 0;
    if t.verdict_count > before then begin
      let verdict = snd (List.nth t.verdicts 0) in
      Trace.recordf t.trace "retry: verdict on attempt %d" n;
      cfinish ~labels:[ ("outcome", "verdict") ] attempt_sp;
      round_done ~attempts:n verdict
    end
    else begin
      (* wire is quiet: the device idles away the rest of the reply
         window (battery drains while it waits) *)
      let rest = Simtime.remaining t.time deadline in
      if rest > 0.0 then begin
        let backoff_sp =
          cspan
            ~labels:
              [
                ("attempt", string_of_int n);
                ("wait_s", Printf.sprintf "%.6f" rest);
              ]
            "retry.backoff"
        in
        Round_wait
          {
            wait_s = rest;
            resume =
              (fun () ->
                advance_time t ~seconds:rest;
                cfinish backoff_sp;
                attempt_over n attempt_sp);
          }
      end
      else attempt_over n attempt_sp
    end
  and attempt_over n attempt_sp =
    cfinish ~labels:[ ("outcome", "timeout") ] attempt_sp;
    if n < policy.Retry.max_attempts then begin
      Trace.recordf t.trace "retry: attempt %d timed out, retransmitting" n;
      attempt (n + 1)
    end
    else begin
      Trace.recordf t.trace "retry: giving up after %d attempts" n;
      round_done ~attempts:n
        (Verdict.Timed_out { attempts = n; waited_s = Simtime.now t.time -. started })
    end
  in
  attempt 1

let rec drive_round = function
  | Round_done r -> r
  | Round_wait { wait_s = _; resume } -> drive_round (resume ())

let attest_round_r ?policy t = drive_round (round_begin ?policy t)
