(** DoS-aware admission control for the verifier-as-a-service.

    The paper's prover-side defense authenticates requests {e before}
    the expensive MAC sweep so bogus traffic costs the device almost
    nothing. The server needs the mirror image: an [Adv_ext] flood of
    forged reports must be turned away {e before} the HMAC check, and it
    must degrade unauthenticated traffic first. Two mechanisms compose:

    - {b Token buckets.} Every registered device identity has a private
      bucket (a legitimate device attests at a bounded rate, so a bucket
      sized to that rate never throttles it); everything else — unknown
      identities, anonymous frames — shares one bucket, so the flood's
      aggregate rate is clipped no matter how many fake identities it
      invents. Refill is computed lazily from elapsed simulated time.
    - {b Two-class triage queue.} A bounded queue in front of
      verification. Unknown-class entries may hold at most a configured
      share of the slots, and when a known device arrives at a full
      queue the oldest unknown entry is evicted to make room — so under
      backlog, authenticated traffic waits behind authenticated traffic
      only.

    All rejections are {!Verdict.reason}s ([Rate_limited],
    [Queue_full]), the same vocabulary the service-side stats use. *)

(** A lazily-refilled token bucket over simulated time. *)
module Bucket : sig
  type t

  val create : rate:float -> burst:float -> t
  (** Starts full ([burst] tokens); refills at [rate] tokens per
      simulated second, capped at [burst].
      @raise Invalid_argument if [rate <= 0] or [burst < 1]. *)

  val tokens : t -> now:float -> float
  (** Current level after refilling to [now]. Time never runs backwards:
      a [now] earlier than the last observation refills nothing. *)

  val try_take : t -> now:float -> bool
  (** Take one token if a whole one is available. *)
end

type config = {
  device_rate : float;  (** tokens/s for each registered device *)
  device_burst : float;
  unknown_rate : float;  (** one shared bucket for ALL unknown traffic *)
  unknown_burst : float;
  triage_capacity : int;  (** bounded pre-verification queue length *)
  unknown_share : float;
      (** max fraction of triage slots unknown entries may occupy, in
          [0, 1] *)
}

val default_config : config
(** 1 token/s per device (burst 4), 32/s shared unknown (burst 64),
    256-slot triage with a 25% unknown share. *)

type decision = Admitted | Rejected of Verdict.reason

type 'a t

val create : ?config:config -> unit -> 'a t
(** @raise Invalid_argument on non-positive rates/capacity or an
    [unknown_share] outside [0, 1]. *)

val register : 'a t -> string -> unit
(** Give [identity] a private token bucket. Unregistered identities are
    unknown-class: a flood claiming fresh names gains nothing. *)

val known : 'a t -> string -> bool

val offer : 'a t -> identity:string option -> now:float -> 'a -> decision
(** Classify, rate-limit, and enqueue one item. [Rejected Rate_limited]
    when the class's bucket is empty; [Rejected Queue_full] when the
    triage queue cannot take the item (unknown over its share, unknown
    at a full queue, or known at a queue full of known). A known-class
    offer at a full queue evicts the oldest unknown entry instead of
    being rejected, when one exists. *)

val take : 'a t -> 'a option
(** Dequeue the oldest live entry (FIFO across both classes). *)

val depth : 'a t -> int
(** Live entries queued. *)

val unknown_depth : 'a t -> int

val evicted : 'a t -> 'a list
(** Items evicted by known-class pressure since the last call, oldest
    first; draining resets the list. The server counts each as a
    [Queue_full] rejection. *)
