(** Wiring of one verifier and one prover over a Dolev-Yao channel, with
    simulated time kept consistent: while the prover's trust anchor
    burns cycles, the shared wall clock advances by the same amount, so
    timestamps, delays and battery drain all line up.

    The channel delivers nothing by itself — call {!attest_round} for a
    benign exchange (the "adversary" forwards promptly) or drive the
    channel by hand / through {!Adversary} for attacks. *)

type t

val create :
  ?spec:Architecture.spec ->
  ?sym_key:string ->
  ?ram_seed:int64 ->
  ?ram_size:int ->
  unit ->
  t
(** Build a fresh world: simulated time at 0, booted prover (default
    {!Architecture.trustlite_base}), verifier provisioned with the
    matching key blob and the prover's actual memory image as reference. *)

val time : t -> Ra_net.Simtime.t
val trace : t -> Ra_net.Trace.t
val channel : t -> string Ra_net.Channel.t
(** The wire carries serialized frames ({!Message.wire_to_bytes}); both
    endpoints parse with the total {!Message.wire_of_bytes} and drop
    malformed frames (paying the radio cost). *)

val verifier : t -> Verifier.t
val prover : t -> Architecture.prover
val anchor : t -> Code_attest.t
val device : t -> Ra_mcu.Device.t
val service : t -> Service.t
val sym_key : t -> string

val verdicts : t -> (float * Verdict.t) list
(** Every response verdict the verifier reached, with its time,
    chronological order. *)

val send_request : t -> Message.attreq
(** Verifier builds and sends a request (lands on the wire only). *)

val deliver_to_prover : t -> Message.attreq -> unit
(** Push a request into the prover; the trust anchor runs, time and
    energy advance, any response goes onto the wire. *)

val deliver_frame_to_prover : t -> string -> unit
(** Deliver raw bytes — replayed recordings, fuzz, garbage. *)

val deliver_next_to_prover : t -> bool
(** Forward the oldest undelivered verifier→prover message. *)

val deliver_next_to_verifier : t -> bool

val attest_round : t -> Verdict.t option
(** One benign end-to-end round; [None] if the prover sent no response
    (rejected request). *)

val set_impairment : t -> Ra_net.Impairment.t option -> unit
(** Install (or clear) a seeded impairment model on the session's
    channel; frames corrupt via {!Ra_net.Channel.mangle_string}. *)

type round = {
  r_verdict : Verdict.t;
  r_attempts : int;  (** transmissions used, ≥ 1 *)
  r_elapsed_s : float;  (** simulated seconds from first send to verdict *)
}

type step =
  | Round_done of round
  | Round_wait of { wait_s : float; resume : unit -> step }
      (** The round needs [wait_s] simulated seconds to pass (a reply
          window idling out). [resume] advances the session's time by
          exactly [wait_s] itself — via {!advance_time}, so the device
          idles and drains battery — and continues the machine; the
          caller only decides {e when} to call it. *)

val round_begin : ?policy:Retry.policy -> t -> step
(** Start one attestation round under the retry engine as a resumable
    machine. Runs synchronously until the round either completes
    ([Round_done]) or needs simulated time to pass ([Round_wait]).
    Driving every wait immediately is exactly {!attest_round_r}; an
    event scheduler instead enqueues each [resume] at [now + wait_s],
    interleaving thousands of sessions on one timeline. Both drivers
    execute the identical operation sequence per session, so verdicts,
    transcripts and metrics are bit-identical between them. *)

val drive_round : step -> round
(** Resume every wait immediately until the round completes — the
    sequential reference driver. *)

val attest_round_r : ?policy:Retry.policy -> t -> round
(** One attestation round under the retry engine: send, pump the
    (possibly impaired) wire until it goes quiet, idle out whatever
    remains of the jittered reply window, retransmit with an
    exponentially grown window —
    until a verdict lands or the policy's attempts run out, which yields
    [Timed_out]. Every attempt is a {e fresh} request (new challenge,
    advanced freshness field), so retransmissions never weaken replay
    protection and the prover's freshness cell stays monotone. With no
    impairment installed this is byte-for-byte the classic benign round,
    resolved on attempt 1. *)

val sync_round : t -> bool
(** One authenticated clock-synchronization exchange (future-work
    item 2) over the same channel; [true] when the verifier receives a
    valid acknowledgement. Always [false] on clock-less provers. *)

val service_round : t -> Service.command -> bool
(** One authenticated service invocation (future-work item 3) over the
    channel: secure erase, code update or ping; [true] on a received
    acknowledgement. The service layer uses its own freshness cell with
    a counter policy and the session's symmetric key. *)

val prover_wall_ms : t -> int64
(** The prover's offset-corrected wall-clock (0 without a clock). *)

(** {2 Causal tracing}

    When enabled, every {!attest_round_r} call mints a trace id and
    records one {!Ra_obs.Trace.round}: retry attempts and backoff waits
    as child spans, channel tx/impairment events as instants, the
    prover's anchor work and the verifier's check as child spans of the
    delivery that caused them, and the final verdict — all under the
    round's single trace id. The id is carried in process (through the
    session's {!Ra_net.Trace.t}), never in a wire message; recording
    only reads the simulated clock, so transcripts are byte-identical
    with tracing on or off. *)

val enable_tracing :
  ?capacity:int -> ?max_events:int -> ?device:string -> t -> Ra_obs.Trace.t
(** Attach a flight recorder ([capacity] sealed rounds, default 64) to
    the session and mirror the prover-side CPU sub-step spans
    (anchor/service auth, freshness, MAC) into it as instants carrying a
    [cpu_ms] label. [device] (default ["prover"]) names the Perfetto
    process. *)

val disable_tracing : t -> unit
(** Detach the tracer; already-sealed rounds stay readable via the
    returned tracer. *)

val tracing : t -> Ra_obs.Trace.t option

(** {2 Cycle/energy phase profiling}

    When enabled, every anchor sub-step span closing attributes its
    exact CPU cycle count (and the battery model's energy for those
    cycles) to a phase — [auth], [freshness], [mac] — and idle cycles
    spent inside a retry round become the [wait] phase (sleep-power
    energy); received/sent prover frames add [radio] energy samples.
    Samples carry the current causal trace id when tracing is also
    enabled, so spans and profiles cross-link. Attribution is
    out-of-band (one option match when off) and never touches device or
    wire state: transcripts are byte-identical with profiling on or
    off, and profiles are deterministic under seed. *)

val enable_profiling : ?capacity:int -> ?device:string -> t -> Ra_obs.Profiler.t
(** Attach a fresh profile to the session ([capacity] bounds its
    phase-sample ring, default 1024). [device] (default ["prover"])
    tags the samples. Replaces any previous profile. *)

val disable_profiling : t -> unit
val profiling : t -> Ra_obs.Profiler.t option

val advance_time : t -> seconds:float -> unit
(** Let wall-clock time pass for everyone: the network clock and the
    prover's sleeping device. *)

val set_in_flight : t -> bool -> unit
(** Mark a retry round as in flight for the profiler's wait-phase
    attribution (idle cycles inside a round count as [wait]; idle outside
    does not). {!round_begin} manages this itself; external round
    machines over the same session — {!Secure_session.round_begin} —
    bracket their work with it. *)
