(** The one vocabulary every handler's outcome is expressed in.

    Before this module, the library had three ad-hoc rejection types —
    [Code_attest.reject], [Service.reject] and the verifier's bare
    [verdict] — that all said overlapping things ("authentication
    failed", "not fresh", "the MPU faulted") in incompatible ways, and no
    way at all to say "the round never resolved". Each of those types
    survives as a thin alias/conversion so existing callers compile, but
    the [*_r] handler variants and the retry engine speak {!t}.

    Depends on nothing above the obs layer, so every core module
    (including {!Freshness}, whose reject type is re-exported from here)
    can use it without cycles. *)

(** Why a freshness check failed — shared by the attestation anchor, the
    service envelope and the clock-sync handler. [Freshness.reject] is an
    equation for this type. *)
type freshness_reject =
  | Missing_field  (** request lacks the field the policy needs *)
  | Wrong_field  (** field of another policy's type *)
  | Replayed_nonce
  | Stale_counter of { got : int64; stored : int64 }
  | Stale_or_reordered_timestamp of { got : int64; last : int64 }
  | Delayed_timestamp of { got : int64; now : int64; window : int64 }
  | Future_timestamp of { got : int64; now : int64; window : int64 }

type t =
  | Trusted  (** report matches the reference state *)
  | Untrusted_state  (** authentic-looking response, wrong memory *)
  | Invalid_response  (** echo mismatch / malformed *)
  | Bad_auth  (** request/invocation authentication failed *)
  | Not_fresh of freshness_reject
  | Fault of { fault_addr : int; fault_code : string }
      (** the EA-MPU denied the handler an access *)
  | Timed_out of { attempts : int; waited_s : float }
      (** the round never resolved: every attempt's reply window expired *)

val accepted : t -> bool
(** [true] only for [Trusted]. *)

val label : t -> string
(** Stable lower-snake metric label ([trusted], [untrusted_state],
    [invalid_response], [bad_auth], [not_fresh], [fault], [timed_out]). *)

(** {2 Rejection reasons}

    The payload-free projection of every way a request can be turned
    away, on {e either} side of the wire: the prover-side service rejects
    ([bad_auth], [not_fresh], [fault]) and the verifier-side server's
    admission/verification rejects ([rate_limited], [queue_full],
    [malformed], [untrusted_state], ...). Prover and verifier rejection
    breakdowns are both [(reason * int) list]s keyed by this one type, so
    the Prometheus [reason] label carries the same names in
    [ra_service_rejections_total] and [ra_server_rejections_total]. *)

module Reason : sig
  type t =
    | Untrusted_state
    | Invalid_response
    | Bad_auth
    | Not_fresh
    | Fault
    | Timed_out
    | Malformed  (** frame failed to parse at triage *)
    | Rate_limited  (** admission token bucket empty *)
    | Queue_full  (** triage queue at capacity (or evicted from it) *)
    | Bad_record
        (** secure-session record failed to open. Deliberately a single
            reason for {e every} decrypt-side failure (bad tag, bad
            length, inner parse) so rejection behavior leaks nothing
            about where the open failed — no padding-oracle shape. *)

  val all : t list
  (** Every reason, in a fixed order ({!index} order). *)

  val count : int
  val index : t -> int
  (** Dense index into [0 .. count-1]; stable within a build. *)

  val label : t -> string
  (** Same strings as {!Verdict.label} for the shared constructors, plus
      [malformed], [rate_limited], [queue_full]. *)

  val pp : Format.formatter -> t -> unit
end

type reason = Reason.t

val reason_of : t -> reason option
(** The reason a verdict rejects; [None] for [Trusted]. *)

(** Shared accumulator behind every [(reason * int) list] breakdown
    (service stats, server stats): one int cell per reason, O(1) adds. *)
module Tally : sig
  type t

  val create : unit -> t
  val add : t -> reason -> unit
  val get : t -> reason -> int
  val total : t -> int

  val to_list : t -> (reason * int) list
  (** Non-zero entries in {!Reason.all} order. *)
end

val freshness_label : freshness_reject -> string
(** The label set {!Freshness} has always exported ([missing_field],
    [stale_counter], ...). *)

val pp : Format.formatter -> t -> unit
val pp_freshness_reject : Format.formatter -> freshness_reject -> unit

(** {2 Obs JSON sink}

    Int64 payloads are encoded as decimal strings (JSON numbers are
    doubles; counters are not). *)

val to_json : t -> Ra_obs.Json.t
val of_json : Ra_obs.Json.t -> t option
(** Total inverse of {!to_json}; [None] on anything else. *)
