module C = Ra_crypto
module Timing = Ra_mcu.Timing
module Simtime = Ra_net.Simtime

type freshness_kind = Fk_none | Fk_nonce | Fk_counter | Fk_timestamp

type verdict = Trusted | Untrusted_state | Invalid_response

type t = {
  scheme : Timing.auth_scheme option;
  freshness_kind : freshness_kind;
  sym_key : string;
  keyed : C.Hmac.key_ctx; (* K_attest ipad/opad midstates, derived once *)
  ecdsa : C.Ecdsa.keypair option;
  time : Simtime.t;
  drbg : C.Drbg.t;
  mutable counter : int64;
  mutable reference_image : string;
}

module Config = struct
  type t = {
    scheme : Timing.auth_scheme option;
    freshness_kind : freshness_kind;
    sym_key : string;
    ecdsa_seed : string;
    time : Simtime.t;
    reference_image : string;
  }

  let v ?scheme ?(freshness_kind = Fk_nonce) ?(ecdsa_seed = "verifier")
      ?(reference_image = "") ~sym_key ~time () =
    { scheme; freshness_kind; sym_key; ecdsa_seed; time; reference_image }
end

let of_config (cfg : Config.t) =
  if String.length cfg.Config.sym_key <> Auth.k_attest_len then
    Error
      (Printf.sprintf "sym_key must be %d bytes (got %d)" Auth.k_attest_len
         (String.length cfg.Config.sym_key))
  else if cfg.Config.ecdsa_seed = "" then Error "ecdsa_seed must be non-empty"
  else begin
    let ecdsa =
      match cfg.Config.scheme with
      | Some Timing.Auth_ecdsa_verify ->
        Some (C.Ecdsa.generate_keypair C.Ec.secp160r1 ~seed:cfg.Config.ecdsa_seed)
      | Some
          ( Timing.Auth_hmac_sha1 | Timing.Auth_aes128_cbc_mac
          | Timing.Auth_speck64_cbc_mac )
      | None ->
        None
    in
    Ok
      {
        scheme = cfg.Config.scheme;
        freshness_kind = cfg.Config.freshness_kind;
        sym_key = cfg.Config.sym_key;
        keyed = Auth.keyed cfg.Config.sym_key;
        ecdsa;
        time = cfg.Config.time;
        drbg =
          C.Drbg.create ~personalization:"verifier-challenges"
            ~seed:cfg.Config.sym_key ();
        counter = 0L;
        reference_image = cfg.Config.reference_image;
      }
  end

let prover_key_blob t =
  Auth.prover_key_blob ~sym_key:t.sym_key
    ~public:(Option.map (fun kp -> kp.C.Ecdsa.public) t.ecdsa)

let scheme t = t.scheme
let next_counter_value t = Int64.add t.counter 1L

let now_ms t = Int64.of_float (Simtime.now t.time *. 1000.0)

let make_freshness t =
  match t.freshness_kind with
  | Fk_none -> Message.F_none
  | Fk_nonce -> Message.F_nonce (C.Drbg.generate t.drbg 16)
  | Fk_counter ->
    t.counter <- Int64.add t.counter 1L;
    Message.F_counter t.counter
  | Fk_timestamp -> Message.F_timestamp (now_ms t)

(* verdict/request counters precreated at module init *)
module M = struct
  let requests = Ra_obs.Registry.Counter.get "ra_verifier_requests_total"

  let verdict v =
    Ra_obs.Registry.Counter.get ~labels:[ ("verdict", v) ] "ra_verifier_verdicts_total"

  let trusted = verdict "trusted"
  let untrusted_state = verdict "untrusted_state"
  let invalid_response = verdict "invalid_response"
end

let make_request t =
  Ra_obs.Registry.Counter.inc M.requests;
  let challenge = C.Drbg.generate t.drbg 16 in
  let freshness = make_freshness t in
  let body = Message.request_body ~challenge ~freshness in
  let tag =
    match t.scheme with
    | None -> Message.Tag_none
    | Some scheme ->
      let secret =
        match t.ecdsa with
        | Some kp -> Auth.Vs_ecdsa kp
        | None -> Auth.Vs_symmetric t.sym_key
      in
      Auth.tag_request ~hmac_keyed:t.keyed scheme secret ~body
  in
  { Message.challenge; freshness; tag }

(* In-session request: the secure channel supplies authenticity and
   freshness (record CMAC + anti-replay window), so the inner request
   carries neither a tag nor a freshness field — per-round freshness is
   the challenge echo. *)
let make_session_request t =
  Ra_obs.Registry.Counter.inc M.requests;
  {
    Message.challenge = C.Drbg.generate t.drbg 16;
    freshness = Message.F_none;
    tag = Message.Tag_none;
  }

let session_nonce t = C.Drbg.generate t.drbg 16

let count_verdict verdict =
  Ra_obs.Registry.Counter.inc
    (match verdict with
    | Trusted -> M.trusted
    | Untrusted_state -> M.untrusted_state
    | Invalid_response -> M.invalid_response)

(* the report check alone, against the precomputed midstates — no echo
   matching, no metrics: shared by the closed-loop and open-loop paths *)
let report_matches t (resp : Message.attresp) =
  let body = Message.response_body resp in
  let expected =
    Auth.response_report_keyed ~keyed:t.keyed ~body ~memory_image:t.reference_image
  in
  C.Hexutil.equal_ct expected resp.Message.report

let check_response t ~request (resp : Message.attresp) =
  let verdict =
    if
      resp.Message.echo_challenge <> request.Message.challenge
      || resp.Message.echo_freshness <> request.Message.freshness
    then Invalid_response
    else if report_matches t resp then Trusted
    else Untrusted_state
  in
  count_verdict verdict;
  verdict

let to_verdict = function
  | Trusted -> Verdict.Trusted
  | Untrusted_state -> Verdict.Untrusted_state
  | Invalid_response -> Verdict.Invalid_response

let check_response_r t ~request resp = to_verdict (check_response t ~request resp)

(* ---- open-loop (server-side) report checks ---- *)

let check_report_r t (resp : Message.attresp) =
  let verdict = if report_matches t resp then Trusted else Untrusted_state in
  count_verdict verdict;
  to_verdict verdict

let check_reports_r t resps =
  (* one key context — [t.keyed] — serves the whole batch; the per-report
     work is the report MAC itself *)
  Array.map (fun resp -> check_report_r t resp) resps

let set_reference_image t image = t.reference_image <- image

let pp_verdict fmt = function
  | Trusted -> Format.pp_print_string fmt "trusted"
  | Untrusted_state -> Format.pp_print_string fmt "untrusted state"
  | Invalid_response -> Format.pp_print_string fmt "invalid response"
