(* SHA-1 over unboxed native ints, 64-byte blocks. The compression function
   follows FIPS 180-4 §6.1.2 with the usual 80-step expansion.

   Hot-path notes: state words live in a flat [int array] (no Int32 boxing),
   block words are loaded big-endian as two [Bytes.get_uint16_be] halves
   (allocation-free, unlike [get_int32_be] which boxes an Int32 in the
   non-flambda compiler), and the 80-word message schedule is preallocated
   in the context so compressing a block allocates nothing. All word
   arithmetic is on the native [int] with explicit masking to 32 bits —
   several times cheaper than the boxed [Int32] kernel this replaced (the
   seed kernel is kept in bench/main.ml, section "hotpath", as baseline). *)

let digest_size = 20
let block_size = 64
let mask32 = 0xFFFFFFFF

type ctx = {
  state : int array; (* h0..h4, each < 2^32 *)
  w : int array; (* preallocated 80-word message schedule *)
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  mutable total : int64; (* bytes absorbed *)
}

let init () =
  {
    state = [| 0x67452301; 0xEFCDAB89; 0x98BADCFE; 0x10325476; 0xC3D2E1F0 |];
    w = Array.make 80 0;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
  }

let copy t =
  {
    state = Array.copy t.state;
    w = Array.make 80 0;
    buf = Bytes.copy t.buf;
    buf_len = t.buf_len;
    total = t.total;
  }

let[@inline] rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

(* The working variables rotate through tail-call arguments, which the
   compiler keeps in registers — refs would be heap loads/stores on every
   one of the 80 rounds. Top-level (not nested in [compress]) so no closure
   is allocated per block. *)
let rec q4 w state i a b c d e =
  if i = 80 then begin
    state.(0) <- (state.(0) + a) land mask32;
    state.(1) <- (state.(1) + b) land mask32;
    state.(2) <- (state.(2) + c) land mask32;
    state.(3) <- (state.(3) + d) land mask32;
    state.(4) <- (state.(4) + e) land mask32
  end
  else
    let f = b lxor c lxor d in
    let temp = (rotl32 a 5 + f + e + 0xCA62C1D6 + Array.unsafe_get w i) land mask32 in
    q4 w state (i + 1) temp a (rotl32 b 30) c d

let rec q3 w state i a b c d e =
  if i = 60 then q4 w state i a b c d e
  else
    let f = (b land c) lor (b land d) lor (c land d) in
    let temp = (rotl32 a 5 + f + e + 0x8F1BBCDC + Array.unsafe_get w i) land mask32 in
    q3 w state (i + 1) temp a (rotl32 b 30) c d

let rec q2 w state i a b c d e =
  if i = 40 then q3 w state i a b c d e
  else
    let f = b lxor c lxor d in
    let temp = (rotl32 a 5 + f + e + 0x6ED9EBA1 + Array.unsafe_get w i) land mask32 in
    q2 w state (i + 1) temp a (rotl32 b 30) c d

let rec q1 w state i a b c d e =
  if i = 20 then q2 w state i a b c d e
  else
    (* (b lxor mask32) = lnot b on clean 32-bit words, one op cheaper *)
    let f = (b land c) lor ((b lxor mask32) land d) in
    let temp = (rotl32 a 5 + f + e + 0x5A827999 + Array.unsafe_get w i) land mask32 in
    q1 w state (i + 1) temp a (rotl32 b 30) c d

let compress t block off =
  let w = t.w in
  for i = 0 to 15 do
    (* four unchecked byte loads: big-endian word without boxing an Int32 *)
    let base = off + (4 * i) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get block base) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (base + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (base + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (base + 3)))
  done;
  for i = 16 to 79 do
    let x =
      Array.unsafe_get w (i - 3)
      lxor Array.unsafe_get w (i - 8)
      lxor Array.unsafe_get w (i - 14)
      lxor Array.unsafe_get w (i - 16)
    in
    Array.unsafe_set w i (((x lsl 1) lor (x lsr 31)) land mask32)
  done;
  let state = t.state in
  q1 w state 0 state.(0) state.(1) state.(2) state.(3) state.(4)

let feed_bytes t b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Sha1.feed_bytes";
  t.total <- Int64.add t.total (Int64.of_int len);
  let pos = ref pos in
  let remaining = ref len in
  (* fill a partial buffered block first *)
  if t.buf_len > 0 then begin
    let take = min (block_size - t.buf_len) !remaining in
    Bytes.blit b !pos t.buf t.buf_len take;
    t.buf_len <- t.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if t.buf_len = block_size then begin
      compress t t.buf 0;
      t.buf_len <- 0
    end
  end;
  (* full blocks straight from the caller's buffer, no copy *)
  while !remaining >= block_size do
    compress t b !pos;
    pos := !pos + block_size;
    remaining := !remaining - block_size
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos t.buf t.buf_len !remaining;
    t.buf_len <- t.buf_len + !remaining
  end

let feed t s =
  (* [feed_bytes] never mutates its input, so viewing the immutable string
     as bytes is safe and saves a copy of every full block *)
  feed_bytes t (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let finalize t =
  let bits = Int64.mul t.total 8L in
  (* append 0x80, pad with zeros to 56 mod 64, then 64-bit length *)
  Bytes.set t.buf t.buf_len '\x80';
  t.buf_len <- t.buf_len + 1;
  if t.buf_len > block_size - 8 then begin
    Bytes.fill t.buf t.buf_len (block_size - t.buf_len) '\x00';
    compress t t.buf 0;
    t.buf_len <- 0
  end;
  Bytes.fill t.buf t.buf_len (block_size - 8 - t.buf_len) '\x00';
  Bytes.set_int64_be t.buf (block_size - 8) bits;
  compress t t.buf 0;
  let out = Bytes.create digest_size in
  for i = 0 to 4 do
    Bytes.set_int32_be out (4 * i) (Int32.of_int t.state.(i))
  done;
  Bytes.unsafe_to_string out

let digest s =
  let t = init () in
  feed t s;
  finalize t

let digest_bytes b =
  let t = init () in
  feed_bytes t b ~pos:0 ~len:(Bytes.length b);
  finalize t
