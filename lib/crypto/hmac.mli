(** HMAC (RFC 2104) over a pluggable hash.

    §4.1 of the paper authenticates attestation requests with SHA1-HMAC;
    the attestation *response* is likewise an HMAC over prover memory.

    For long-lived keys (the prover's K_attest lives for the device's whole
    deployment), derive a {!key_ctx} once and use {!mac_with}: the ipad and
    opad midstates are precomputed per key instead of being re-hashed on
    every message. *)

type kind = Kind_sha1 | Kind_sha256

type hash = {
  kind : kind;
  digest : string -> string;
  digest_size : int;
  block_size : int;
}
(** First-class hash description so HMAC is generic over SHA-1/SHA-256. *)

val sha1 : hash
val sha256 : hash

type key_ctx
(** Precomputed per-key HMAC state: the hash midstates after absorbing the
    ipad and opad blocks. Immutable once built; safe to reuse across
    messages and across domains (each MAC works on copies). *)

val key : hash -> key:string -> key_ctx
(** [key h ~key] normalizes the key per RFC 2104 (hashing keys longer than
    the block size) and absorbs both pads once. *)

val mac_with : key_ctx -> string -> string
(** [mac_with kc msg] is HMAC(key, msg) for the key baked into [kc],
    without re-deriving the pads. [mac_with (key h ~key) msg = mac h ~key msg]. *)

val mac_parts : key_ctx -> string list -> string
(** [mac_parts kc parts] is [mac_with kc (String.concat "" parts)] without
    materializing the concatenation — the parts stream through the inner
    hash in order. *)

val mac : hash -> key:string -> string -> string
(** [mac h ~key msg] is HMAC_h(key, msg). Keys longer than the hash block
    are first hashed, as RFC 2104 requires. One-shot; prefer {!mac_with}
    when the key is reused. *)

val verify : hash -> key:string -> msg:string -> tag:string -> bool
(** Constant-time tag comparison. *)

val verify_with : key_ctx -> msg:string -> tag:string -> bool
(** {!verify} against a precomputed key context. *)
