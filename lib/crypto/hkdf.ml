let hash = Hmac.sha256
let hash_len = 32

let extract ?salt ~ikm () =
  let salt = match salt with Some s -> s | None -> String.make hash_len '\x00' in
  Hmac.mac hash ~key:salt ikm

let expand ~prk ~info ~length =
  if length <= 0 || length > 255 * hash_len then invalid_arg "Hkdf.expand: bad length";
  let blocks = (length + hash_len - 1) / hash_len in
  let buf = Buffer.create (blocks * hash_len) in
  (* every T(i) is keyed by the same PRK: absorb the pads once *)
  let kc = Hmac.key hash ~key:prk in
  let prev = ref "" in
  for i = 1 to blocks do
    prev := Hmac.mac_parts kc [ !prev; info; String.make 1 (Char.chr i) ];
    Buffer.add_string buf !prev
  done;
  Buffer.sub buf 0 length

let derive ?salt ~ikm ~info ~length () =
  expand ~prk:(extract ?salt ~ikm ()) ~info ~length
