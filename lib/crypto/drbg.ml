(* HMAC-DRBG with SHA-256: state is (K, V); update/generate follow
   SP 800-90A §10.1.2 (no prediction resistance, no explicit reseed
   counter enforcement — our seeds are test/simulation inputs).

   K changes only inside [update]; every HMAC between two K-changes reuses
   the same key, so the state carries the precomputed {!Hmac.key_ctx} and
   the generate loop never re-absorbs the pads. *)

type t = { mutable k : string; mutable v : string; mutable kc : Hmac.key_ctx }

let hash = Hmac.sha256

let set_key t k =
  t.k <- k;
  t.kc <- Hmac.key hash ~key:k

let update t provided =
  set_key t (Hmac.mac_parts t.kc [ t.v; "\x00"; provided ]);
  t.v <- Hmac.mac_with t.kc t.v;
  if String.length provided > 0 then begin
    set_key t (Hmac.mac_parts t.kc [ t.v; "\x01"; provided ]);
    t.v <- Hmac.mac_with t.kc t.v
  end

let create ?(personalization = "") ~seed () =
  let k0 = String.make hash.Hmac.digest_size '\x00' in
  let t =
    { k = k0; v = String.make hash.Hmac.digest_size '\x01'; kc = Hmac.key hash ~key:k0 }
  in
  update t (seed ^ personalization);
  t

let reseed t entropy = update t entropy

let generate t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- Hmac.mac_with t.kc t.v;
    Buffer.add_string buf t.v
  done;
  update t "";
  Buffer.sub buf 0 n
