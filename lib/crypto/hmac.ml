type kind = Kind_sha1 | Kind_sha256

type hash = {
  kind : kind;
  digest : string -> string;
  digest_size : int;
  block_size : int;
}

let sha1 =
  {
    kind = Kind_sha1;
    digest = Sha1.digest;
    digest_size = Sha1.digest_size;
    block_size = Sha1.block_size;
  }

let sha256 =
  {
    kind = Kind_sha256;
    digest = Sha256.digest;
    digest_size = Sha256.digest_size;
    block_size = Sha256.block_size;
  }

let normalize_key h key =
  let key = if String.length key > h.block_size then h.digest key else key in
  key ^ String.make (h.block_size - String.length key) '\x00'

(* A keyed context stores the compression-function midstates reached after
   absorbing the ipad and opad blocks. Deriving them costs two compressions
   and two block-sized allocations; [mac_with] then pays neither — exactly
   the paper's "fixed" vs "per 64B block" HMAC cost split (Table 1), realized
   in the implementation. *)
type key_ctx =
  | Kc_sha1 of { inner : Sha1.ctx; outer : Sha1.ctx }
  | Kc_sha256 of { inner : Sha256.ctx; outer : Sha256.ctx }

let key h ~key:k =
  let k = normalize_key h k in
  let ipad = Hexutil.xor k (String.make h.block_size '\x36') in
  let opad = Hexutil.xor k (String.make h.block_size '\x5c') in
  match h.kind with
  | Kind_sha1 ->
    let inner = Sha1.init () in
    Sha1.feed inner ipad;
    let outer = Sha1.init () in
    Sha1.feed outer opad;
    Kc_sha1 { inner; outer }
  | Kind_sha256 ->
    let inner = Sha256.init () in
    Sha256.feed inner ipad;
    let outer = Sha256.init () in
    Sha256.feed outer opad;
    Kc_sha256 { inner; outer }

let mac_parts kc parts =
  match kc with
  | Kc_sha1 { inner; outer } ->
    let i = Sha1.copy inner in
    List.iter (Sha1.feed i) parts;
    let o = Sha1.copy outer in
    Sha1.feed o (Sha1.finalize i);
    Sha1.finalize o
  | Kc_sha256 { inner; outer } ->
    let i = Sha256.copy inner in
    List.iter (Sha256.feed i) parts;
    let o = Sha256.copy outer in
    Sha256.feed o (Sha256.finalize i);
    Sha256.finalize o

let mac_with kc msg = mac_parts kc [ msg ]

let mac h ~key:k msg = mac_with (key h ~key:k) msg

let verify h ~key ~msg ~tag = Hexutil.equal_ct (mac h ~key msg) tag

let verify_with kc ~msg ~tag = Hexutil.equal_ct (mac_with kc msg) tag
