(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used by the secure-boot measurement (the boot ROM hashes the loaded
    image and compares it to the reference digest) and available as an
    alternative HMAC hash. Same unboxed-int kernel design as {!Sha1}. *)

type ctx

val init : unit -> ctx

val copy : ctx -> ctx
(** Independent snapshot of a context's midstate (see {!Sha1.copy}). *)

val feed : ctx -> string -> unit

val feed_bytes : ctx -> Bytes.t -> pos:int -> len:int -> unit
(** Absorb [len] bytes of [b] starting at [pos], compressing full blocks
    straight out of [b]. The input is never mutated.
    @raise Invalid_argument if [pos]/[len] do not denote a valid range. *)

val finalize : ctx -> string
(** 32-byte digest; the context must not be reused. *)

val digest : string -> string

val digest_bytes : Bytes.t -> string
(** One-shot over a byte buffer, zero-copy. *)

val digest_size : int
(** 32 bytes. *)

val block_size : int
(** 64 bytes. *)
