(** SHA-1 (FIPS 180-4), implemented from scratch.

    The paper's Table 1 measures SHA1-HMAC on the prover, and §3.1 costs a
    SHA1-HMAC over the prover's whole writable memory; this module is the
    functional core of both. Streaming interface plus one-shot digest.

    The compression function runs on unboxed native [int] words with a
    preallocated message schedule — see "Hot-path performance" in DESIGN.md. *)

type ctx
(** Mutable hashing context. *)

val init : unit -> ctx

val copy : ctx -> ctx
(** Independent snapshot of a context's midstate. Feeding the copy leaves
    the original untouched — this is what lets HMAC cache the ipad/opad
    midstates once per key ({!Hmac.key}). *)

val feed : ctx -> string -> unit
(** Absorb bytes; may be called repeatedly. *)

val feed_bytes : ctx -> Bytes.t -> pos:int -> len:int -> unit
(** Absorb [len] bytes of [b] starting at [pos]. Full blocks are compressed
    straight out of [b] without copying. The input is never mutated.
    @raise Invalid_argument if [pos]/[len] do not denote a valid range. *)

val finalize : ctx -> string
(** Complete the hash and return the 20-byte digest. The context must not
    be used afterwards. *)

val digest : string -> string
(** One-shot: [digest s = finalize (feed (init ()) s)]. *)

val digest_bytes : Bytes.t -> string
(** One-shot over a byte buffer, zero-copy. *)

val digest_size : int
(** 20 bytes. *)

val block_size : int
(** 64 bytes — the size the per-block cost in Table 1 refers to. *)
