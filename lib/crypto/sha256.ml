(* SHA-256 with the same streaming skeleton and unboxed-int kernel as
   {!Sha1}: flat [int array] state, [Bytes.get_int32_be] word loads, a
   preallocated 64-word schedule, and explicit 32-bit masking on native
   ints so compressing a block allocates nothing. *)

let digest_size = 32
let block_size = 64
let mask32 = 0xFFFFFFFF

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b;
     0x59f111f1; 0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01;
     0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7;
     0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
     0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152;
     0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
     0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
     0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819;
     0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116; 0x1e376c08;
     0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f;
     0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  state : int array;
  w : int array; (* preallocated 64-word schedule *)
  buf : Bytes.t;
  mutable buf_len : int;
  mutable total : int64;
}

let init () =
  {
    state =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    w = Array.make 64 0;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
  }

let copy t =
  {
    state = Array.copy t.state;
    w = Array.make 64 0;
    buf = Bytes.copy t.buf;
    buf_len = t.buf_len;
    total = t.total;
  }

let[@inline] rotr32 x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

(* Working variables rotate through tail-call arguments (registers), not
   refs (heap traffic); top-level so no closure is allocated per block —
   see the same structure in {!Sha1}. *)
let rec round w state i a b c d e f g h =
  if i = 64 then begin
    state.(0) <- (state.(0) + a) land mask32;
    state.(1) <- (state.(1) + b) land mask32;
    state.(2) <- (state.(2) + c) land mask32;
    state.(3) <- (state.(3) + d) land mask32;
    state.(4) <- (state.(4) + e) land mask32;
    state.(5) <- (state.(5) + f) land mask32;
    state.(6) <- (state.(6) + g) land mask32;
    state.(7) <- (state.(7) + h) land mask32
  end
  else
    let s1 = rotr32 e 6 lxor rotr32 e 11 lxor rotr32 e 25 in
    let ch = (e land f) lxor ((e lxor mask32) land g) in
    let temp1 =
      (h + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i) land mask32
    in
    let s0 = rotr32 a 2 lxor rotr32 a 13 lxor rotr32 a 22 in
    let maj = (a land b) lxor (a land c) lxor (b land c) in
    let temp2 = (s0 + maj) land mask32 in
    round w state (i + 1)
      ((temp1 + temp2) land mask32)
      a b c
      ((d + temp1) land mask32)
      e f g

let compress t block off =
  let w = t.w in
  for i = 0 to 15 do
    (* four unchecked byte loads: big-endian word without boxing an Int32 *)
    let base = off + (4 * i) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get block base) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (base + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (base + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (base + 3)))
  done;
  for i = 16 to 63 do
    let x15 = Array.unsafe_get w (i - 15) and x2 = Array.unsafe_get w (i - 2) in
    let s0 = rotr32 x15 7 lxor rotr32 x15 18 lxor (x15 lsr 3) in
    let s1 = rotr32 x2 17 lxor rotr32 x2 19 lxor (x2 lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1) land mask32)
  done;
  let state = t.state in
  round w state 0 state.(0) state.(1) state.(2) state.(3) state.(4) state.(5)
    state.(6) state.(7)

let feed_bytes t b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Sha256.feed_bytes";
  t.total <- Int64.add t.total (Int64.of_int len);
  let pos = ref pos in
  let remaining = ref len in
  if t.buf_len > 0 then begin
    let take = min (block_size - t.buf_len) !remaining in
    Bytes.blit b !pos t.buf t.buf_len take;
    t.buf_len <- t.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if t.buf_len = block_size then begin
      compress t t.buf 0;
      t.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress t b !pos;
    pos := !pos + block_size;
    remaining := !remaining - block_size
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos t.buf t.buf_len !remaining;
    t.buf_len <- t.buf_len + !remaining
  end

let feed t s =
  feed_bytes t (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let finalize t =
  let bits = Int64.mul t.total 8L in
  Bytes.set t.buf t.buf_len '\x80';
  t.buf_len <- t.buf_len + 1;
  if t.buf_len > block_size - 8 then begin
    Bytes.fill t.buf t.buf_len (block_size - t.buf_len) '\x00';
    compress t t.buf 0;
    t.buf_len <- 0
  end;
  Bytes.fill t.buf t.buf_len (block_size - 8 - t.buf_len) '\x00';
  Bytes.set_int64_be t.buf (block_size - 8) bits;
  compress t t.buf 0;
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    Bytes.set_int32_be out (4 * i) (Int32.of_int t.state.(i))
  done;
  Bytes.unsafe_to_string out

let digest s =
  let t = init () in
  feed t s;
  finalize t

let digest_bytes b =
  let t = init () in
  feed_bytes t b ~pos:0 ~len:(Bytes.length b);
  finalize t
