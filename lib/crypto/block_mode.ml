type cipher = {
  block_size : int;
  encrypt : string -> string;
  decrypt : string -> string;
}

let aes k =
  {
    block_size = Aes.block_size;
    encrypt = Aes.encrypt_block k;
    decrypt = Aes.decrypt_block k;
  }

let speck k =
  {
    block_size = Speck.block_size;
    encrypt = Speck.encrypt_block k;
    decrypt = Speck.decrypt_block k;
  }

let simon k =
  {
    block_size = Simon.block_size;
    encrypt = Simon.encrypt_block k;
    decrypt = Simon.decrypt_block k;
  }

let pad_pkcs7 block_size s =
  let pad = block_size - (String.length s mod block_size) in
  s ^ String.make pad (Char.chr pad)

let unpad_pkcs7 s =
  let n = String.length s in
  if n = 0 then None
  else
    let pad = Char.code s.[n - 1] in
    if pad = 0 || pad > n then None
    else
      let ok = ref true in
      for i = n - pad to n - 1 do
        if Char.code s.[i] <> pad then ok := false
      done;
      if !ok then Some (String.sub s 0 (n - pad)) else None

let cbc_encrypt c ~iv pt =
  if String.length iv <> c.block_size then invalid_arg "Block_mode.cbc_encrypt: iv";
  let padded = pad_pkcs7 c.block_size pt in
  let blocks = Hexutil.chunks c.block_size padded in
  let buf = Buffer.create (String.length padded) in
  let _last =
    List.fold_left
      (fun prev block ->
        let ct = c.encrypt (Hexutil.xor prev block) in
        Buffer.add_string buf ct;
        ct)
      iv blocks
  in
  Buffer.contents buf

let cbc_decrypt c ~iv ct =
  if String.length iv <> c.block_size then invalid_arg "Block_mode.cbc_decrypt: iv";
  if String.length ct = 0 || String.length ct mod c.block_size <> 0 then None
  else begin
    let blocks = Hexutil.chunks c.block_size ct in
    let buf = Buffer.create (String.length ct) in
    let _last =
      List.fold_left
        (fun prev block ->
          Buffer.add_string buf (Hexutil.xor prev (c.decrypt block));
          block)
        iv blocks
    in
    unpad_pkcs7 (Buffer.contents buf)
  end

let ctr_crypt c ~nonce s =
  let nlen = c.block_size - 8 in
  if nlen < 0 then invalid_arg "Block_mode.ctr_crypt: block size < 8";
  if String.length nonce <> nlen then invalid_arg "Block_mode.ctr_crypt: nonce";
  let n = String.length s in
  let out = Bytes.create n in
  let counter = Bytes.create 8 in
  let nblocks = (n + c.block_size - 1) / c.block_size in
  for b = 0 to nblocks - 1 do
    Bytes.set_int64_be counter 0 (Int64.of_int b);
    let keystream = c.encrypt (nonce ^ Bytes.to_string counter) in
    let off = b * c.block_size in
    let len = min c.block_size (n - off) in
    for i = 0 to len - 1 do
      Bytes.set out (off + i)
        (Char.chr (Char.code s.[off + i] lxor Char.code keystream.[i]))
    done
  done;
  Bytes.to_string out

let encode_length block_size n =
  (* big-endian length in one block *)
  String.init block_size (fun i ->
      let shift = 8 * (block_size - 1 - i) in
      if shift >= 63 then '\x00' else Char.chr ((n lsr shift) land 0xff))

let cbc_mac c msg =
  let prefixed = encode_length c.block_size (String.length msg) ^ msg in
  let padded = pad_pkcs7 c.block_size prefixed in
  let blocks = Hexutil.chunks c.block_size padded in
  List.fold_left
    (fun prev block -> c.encrypt (Hexutil.xor prev block))
    (String.make c.block_size '\x00')
    blocks

let cbc_mac_verify c ~msg ~tag = Hexutil.equal_ct (cbc_mac c msg) tag
