(** Generic block-cipher modes: CBC encryption (with PKCS#7 padding) and
    CBC-MAC. §3.1 of the paper notes a prover MAC is "usually implemented
    as either a CBC-based function based on a block cipher (such as AES)
    or a keyed hash function"; this module provides the former for both
    AES-128 and Speck 64/128. *)

type cipher = {
  block_size : int;
  encrypt : string -> string; (* one block *)
  decrypt : string -> string; (* one block *)
}
(** A block cipher with its key already expanded. *)

val aes : Aes.key -> cipher
val speck : Speck.key -> cipher
val simon : Simon.key -> cipher

val pad_pkcs7 : int -> string -> string
(** Pad to a multiple of the block size; always adds at least one byte. *)

val unpad_pkcs7 : string -> string option
(** [None] if the padding is malformed. *)

val cbc_encrypt : cipher -> iv:string -> string -> string
(** PKCS#7-padded CBC encryption.
    @raise Invalid_argument if [iv] is not one block. *)

val cbc_decrypt : cipher -> iv:string -> string -> string option
(** Inverse of {!cbc_encrypt}; [None] on bad length or padding.

    Note the asymmetry with {!ctr_crypt}: CBC decryption can {e fail}
    (bad length, bad padding) and callers can tell those failures apart
    from a MAC mismatch — a padding-oracle-shaped signal. Authenticated
    framing must verify the MAC first and never branch on padding; the
    secure-session record layer therefore uses encrypt-then-MAC over
    CTR, where decryption is total. CBC stays for the paper tables. *)

val ctr_crypt : cipher -> nonce:string -> string -> string
(** Counter-mode keystream XOR: block [i] of the keystream is
    [encrypt (nonce ^ u64_be i)]. Encryption and decryption are the same
    operation, total on any input length — there is no padding to leak.
    [nonce] must be [block_size - 8] bytes and must never repeat under
    one key (the record layer uses the record sequence number).
    @raise Invalid_argument if [nonce] has the wrong length. *)

val cbc_mac : cipher -> string -> string
(** Length-prepended CBC-MAC (zero IV): prefixing the message length makes
    plain CBC-MAC secure for variable-length messages. Tag is one block. *)

val cbc_mac_verify : cipher -> msg:string -> tag:string -> bool
(** Constant-time tag check. *)
