(** Request-scoped causal tracing for attestation rounds.

    A tracer mints one monotonically-increasing trace id per round and
    collects a tree of timed events (spans and instants) under it. Sealed
    rounds land in a bounded {!Recorder} ring — the per-device "flight
    recorder" — and can be exported via {!Export.perfetto} /
    {!Export.rounds_jsonl}.

    Recording only {e reads} the supplied clock: it never advances
    simulated time and never draws randomness, so enabling tracing cannot
    change protocol transcripts (see DESIGN.md, "Causal tracing & SLOs").
    Trace ids are propagated out-of-band through in-process context and
    never appear in any wire message. *)

type kind = Span_event | Instant_event

type event = {
  ev_id : int; (* unique within the round; root span is id 0 *)
  ev_parent : int option; (* [None] only for the root span *)
  ev_name : string;
  ev_cat : string;
  ev_kind : kind;
  ev_start : float;
  ev_stop : float; (* = [ev_start] for instants *)
  ev_labels : Registry.labels;
}

type round = {
  rd_trace_id : int;
  rd_device : string;
  rd_start : float;
  rd_stop : float;
  rd_verdict : string;
  rd_attempts : int;
  rd_dropped : int; (* events discarded beyond [max_events] *)
  rd_events : event list; (* sorted by start time; root span first *)
}

type span
(** Handle for an open span; becomes inert once finished. *)

type t

val create :
  ?capacity:int -> ?max_events:int -> device:string -> clock:(unit -> float) ->
  unit -> t
(** [capacity] (default 64) bounds the sealed-round ring; [max_events]
    (default 4096, min 2) bounds events per round — beyond it events are
    dropped and counted in [rd_dropped]. [clock] is typically
    [Simtime.now] so event times share the protocol timeline. *)

val device : t -> string

val recorder : t -> round Recorder.t

val rounds : t -> round list
(** Sealed rounds still in the ring, oldest first. *)

val round_open : t -> bool

val current_trace_id : t -> int option

val root_span_name : string
(** ["attest.round"] — the name of every round's root span (event id 0). *)

val begin_round : t -> int
(** Open a new round and its root span; returns the trace id. An
    already-open round is sealed first with verdict ["abandoned"]. *)

val span : t -> ?cat:string -> ?labels:Registry.labels -> string -> span
(** Open a child span under the innermost open span. A no-op handle is
    returned when no round is open or the event budget is exhausted. *)

val finish_span : t -> ?labels:Registry.labels -> span -> unit
(** Close [span]; extra [labels] are appended. Unknown or inert handles
    are ignored. *)

val with_span : t -> ?cat:string -> ?labels:Registry.labels -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; an escaping exception closes the span
    with label [outcome="raised"] and re-raises. *)

val instant : t -> ?cat:string -> ?labels:Registry.labels -> string -> unit
(** Record a point event under the innermost open span. No-op when no
    round is open. *)

val end_round : t -> verdict:string -> attempts:int -> unit
(** Seal the open round: closes any spans still open at the round's stop
    time, sorts events and pushes the round into the ring. No-op when no
    round is open. *)

(** {2 JSON round-trip}

    Used by {!Export.rounds_jsonl}; [round_of_json (round_to_json r) = Some r]
    for rounds with finite timestamps. *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> event option
val round_to_json : round -> Json.t
val round_of_json : Json.t -> round option
