(** Service-level objectives over fleet sweeps: typed objectives, breach
    records and [ra_slo_*] metrics.

    An {!objective} states a bound on an observed quantity ([At_most] for
    latencies and rejection rates, [At_least] for convergence). Each
    {!evaluate} call emits [ra_slo_evaluations_total{objective}],
    [ra_slo_breaches_total{objective}] on violation, and the signed
    headroom gauge [ra_slo_margin{objective,scope}] (positive = inside
    the objective for both comparison senses).

    Exactly meeting the limit is {e compliant}: "p99 <= 60 s" is not
    breached by an observed p99 of precisely 60 s. *)

type comparison = At_most | At_least

type objective = {
  slo_name : string;
  slo_limit : float;
  slo_cmp : comparison;
  slo_unit : string; (* display only, e.g. "s" or "%" *)
}

type check = {
  ck_objective : objective;
  ck_scope : string; (* e.g. "loss=20% policy=default" *)
  ck_observed : float;
  ck_ok : bool;
}

val objective : ?unit:string -> name:string -> limit:float -> comparison -> objective
(** @raise Invalid_argument on a non-finite limit. *)

val compliant : objective -> observed:float -> bool

val margin : objective -> observed:float -> float
(** Signed headroom; positive when inside the objective. *)

val evaluate : scope:string -> objective -> observed:float -> check
(** Judge one observation and record the [ra_slo_*] metrics (in the
    default registry). *)

val breaches : check list -> check list
(** The failing subset, in order. *)

val check_to_json : check -> Json.t
val pp_check : Format.formatter -> check -> unit
