type labels = (string * string) list

let canonical labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

type counter = { c_value : int Atomic.t }
type gauge = { g_bits : int64 Atomic.t (* IEEE bits of the float value *) }

type exemplar = { ex_value : float; ex_trace_id : string; ex_at : float }

type histogram = {
  h_bounds : float array; (* strictly increasing upper bounds *)
  h_buckets : int Atomic.t array; (* length = bounds + 1 (overflow) *)
  h_count : int Atomic.t;
  h_sum_bits : int64 Atomic.t;
  h_exemplars : exemplar option Atomic.t array; (* one slot per bucket *)
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

type kind = K_counter | K_gauge | K_histogram

type t = {
  mutex : Mutex.t;
  table : (string * labels, metric) Hashtbl.t;
  kinds : (string, kind) Hashtbl.t;
  series : (string, int) Hashtbl.t; (* series count per metric name *)
  mutable max_series : int; (* cardinality cap per metric family *)
}

let default_max_series = 1024

let create () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    kinds = Hashtbl.create 32;
    series = Hashtbl.create 32;
    max_series = default_max_series;
  }

let default = create ()

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let kind_name = function
  | K_counter -> "counter"
  | K_gauge -> "gauge"
  | K_histogram -> "histogram"

let dropped_series_name = "ra_obs_dropped_series_total"

(* Caller holds the mutex. Finds or creates the per-family dropped-series
   counter directly (the mutex is not reentrant, so [Counter.get] cannot be
   used from inside [register]) and bumps it. *)
let note_dropped_series_unlocked t name =
  let key = (dropped_series_name, canonical [ ("metric", name) ]) in
  let counter =
    match Hashtbl.find_opt t.table key with
    | Some (M_counter c) -> c
    | Some (M_gauge _ | M_histogram _) -> assert false
    | None ->
      if not (Hashtbl.mem t.kinds dropped_series_name) then
        Hashtbl.replace t.kinds dropped_series_name K_counter;
      let c = { c_value = Atomic.make 0 } in
      Hashtbl.replace t.table key (M_counter c);
      c
  in
  ignore (Atomic.fetch_and_add counter.c_value 1)

let register t name labels kind make =
  let labels = canonical labels in
  with_lock t (fun () ->
      (match Hashtbl.find_opt t.kinds name with
      | Some k when k <> kind ->
        invalid_arg
          (Printf.sprintf "Ra_obs.Registry: %s is already registered as a %s" name
             (kind_name k))
      | Some _ -> ()
      | None -> Hashtbl.replace t.kinds name kind);
      match Hashtbl.find_opt t.table (name, labels) with
      | Some m -> m
      | None ->
        let count = Option.value ~default:0 (Hashtbl.find_opt t.series name) in
        if count >= t.max_series && name <> dropped_series_name then begin
          (* Cardinality cap: hand back a live but unregistered handle so
             the instrument site keeps working; the series is not exported. *)
          note_dropped_series_unlocked t name;
          make ()
        end
        else begin
          let m = make () in
          Hashtbl.replace t.table (name, labels) m;
          Hashtbl.replace t.series name (count + 1);
          m
        end)

let series_limit t = t.max_series

let set_series_limit t limit =
  if limit < 1 then invalid_arg "Ra_obs.Registry.set_series_limit: limit must be >= 1";
  with_lock t (fun () -> t.max_series <- limit)

let series_count t name =
  with_lock t (fun () -> Option.value ~default:0 (Hashtbl.find_opt t.series name))

let zero_bits = Int64.bits_of_float 0.0

let reset t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | M_counter c -> Atomic.set c.c_value 0
          | M_gauge g -> Atomic.set g.g_bits zero_bits
          | M_histogram h ->
            Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
            Atomic.set h.h_count 0;
            Atomic.set h.h_sum_bits zero_bits;
            Array.iter (fun e -> Atomic.set e None) h.h_exemplars)
        t.table)

(* lock-free float accumulation: CAS on the IEEE bit pattern *)
let atomic_float_add bits delta =
  let rec loop () =
    let old = Atomic.get bits in
    let updated = Int64.bits_of_float (Int64.float_of_bits old +. delta) in
    if not (Atomic.compare_and_set bits old updated) then loop ()
  in
  loop ()

module Counter = struct
  type nonrec t = counter

  let get ?(registry = default) ?(labels = []) name =
    match
      register registry name labels K_counter (fun () ->
          M_counter { c_value = Atomic.make 0 })
    with
    | M_counter c -> c
    | M_gauge _ | M_histogram _ -> assert false

  let inc ?(by = 1) c =
    if by < 0 then invalid_arg "Ra_obs counter: negative increment";
    ignore (Atomic.fetch_and_add c.c_value by)

  let value c = Atomic.get c.c_value
end

module Gauge = struct
  type nonrec t = gauge

  let get ?(registry = default) ?(labels = []) name =
    match
      register registry name labels K_gauge (fun () ->
          M_gauge { g_bits = Atomic.make zero_bits })
    with
    | M_gauge g -> g
    | M_counter _ | M_histogram _ -> assert false

  let set g v = Atomic.set g.g_bits (Int64.bits_of_float v)
  let add g d = atomic_float_add g.g_bits d
  let value g = Int64.float_of_bits (Atomic.get g.g_bits)
end

module Histogram = struct
  type nonrec t = histogram

  let default_buckets =
    [|
      0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0;
      100.0; 250.0; 500.0; 1000.0; 2500.0;
    |]

  let validate_bounds bounds =
    if Array.length bounds = 0 then
      invalid_arg "Ra_obs histogram: empty bucket bounds";
    Array.iteri
      (fun i b ->
        if i > 0 && b <= bounds.(i - 1) then
          invalid_arg "Ra_obs histogram: bucket bounds must be strictly increasing")
      bounds

  let get ?(registry = default) ?(labels = []) ?(buckets = default_buckets) name =
    match
      register registry name labels K_histogram (fun () ->
          validate_bounds buckets;
          M_histogram
            {
              h_bounds = Array.copy buckets;
              h_buckets = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
              h_count = Atomic.make 0;
              h_sum_bits = Atomic.make zero_bits;
              h_exemplars =
                Array.init (Array.length buckets + 1) (fun _ -> Atomic.make None);
            })
    with
    | M_histogram h -> h
    | M_counter _ | M_gauge _ -> assert false

  let bucket_index h v =
    let n = Array.length h.h_bounds in
    let rec idx i = if i >= n || v <= h.h_bounds.(i) then i else idx (i + 1) in
    idx 0

  let observe h v =
    ignore (Atomic.fetch_and_add h.h_buckets.(bucket_index h v) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    atomic_float_add h.h_sum_bits v

  (* Exemplars are annotation, not measurement: they ride next to the
     bucket counters but are never written by [observe] or [absorb], so
     the deterministic Arena flush discipline is untouched and a
     histogram with no exemplars set exports byte-identically to one
     that predates them. *)
  let set_exemplar h ~value ~trace_id ~at =
    Atomic.set
      h.h_exemplars.(bucket_index h value)
      (Some { ex_value = value; ex_trace_id = trace_id; ex_at = at })

  let exemplars h =
    let out = ref [] in
    for i = Array.length h.h_exemplars - 1 downto 0 do
      match Atomic.get h.h_exemplars.(i) with
      | None -> ()
      | Some e ->
        let bound =
          if i < Array.length h.h_bounds then h.h_bounds.(i) else infinity
        in
        out := (bound, e) :: !out
    done;
    !out

  let count h = Atomic.get h.h_count
  let sum h = Int64.float_of_bits (Atomic.get h.h_sum_bits)
  let bounds h = Array.copy h.h_bounds

  (* Merge a locally-accumulated bucket vector (same bounds, plus the
     overflow slot) into the shared histogram in one pass — the bulk
     counterpart of [observe] for single-domain arenas. *)
  let absorb h ~counts ~sum:s =
    if Array.length counts <> Array.length h.h_buckets then
      invalid_arg "Ra_obs histogram: absorb bucket count mismatch";
    let total = ref 0 in
    Array.iteri
      (fun i n ->
        if n < 0 then invalid_arg "Ra_obs histogram: negative absorb count";
        if n > 0 then begin
          ignore (Atomic.fetch_and_add h.h_buckets.(i) n);
          total := !total + n
        end)
      counts;
    if !total > 0 then ignore (Atomic.fetch_and_add h.h_count !total);
    if s <> 0.0 then atomic_float_add h.h_sum_bits s

  let buckets h =
    List.init
      (Array.length h.h_buckets)
      (fun i ->
        let bound =
          if i < Array.length h.h_bounds then h.h_bounds.(i) else infinity
        in
        (bound, Atomic.get h.h_buckets.(i)))

  let percentile h p =
    if p < 0.0 || p > 100.0 then invalid_arg "Ra_obs percentile: p must be 0..100";
    let total = count h in
    if total = 0 then nan
    else begin
      (* Nearest-rank: r = ceil(p/100 * n), clamped to >= 1. Rounding
         (instead of ceiling) under-reports whenever p*n/100 has a
         fractional part < 0.5 — e.g. p50 of 5 samples picked rank 2,
         not the median at rank 3. The sorted-sample oracle in the
         qcheck suite pins this definition. *)
      let rank = Float.max 1.0 (Float.ceil (p /. 100.0 *. float_of_int total)) in
      let rec walk i cum =
        if i >= Array.length h.h_buckets then infinity
        else begin
          let cum = cum + Atomic.get h.h_buckets.(i) in
          if float_of_int cum >= rank then
            if i < Array.length h.h_bounds then h.h_bounds.(i) else infinity
          else walk (i + 1) cum
        end
      in
      walk 0 0
    end
end

type sample =
  | Counter_sample of int
  | Gauge_sample of float
  | Histogram_sample of {
      hs_sum : float;
      hs_count : int;
      hs_buckets : (float * int) list;
      hs_exemplars : (float * exemplar) list;
    }

let snapshot t =
  let rows =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun (name, labels) m acc ->
            let sample =
              match m with
              | M_counter c -> Counter_sample (Counter.value c)
              | M_gauge g -> Gauge_sample (Gauge.value g)
              | M_histogram h ->
                Histogram_sample
                  {
                    hs_sum = Histogram.sum h;
                    hs_count = Histogram.count h;
                    hs_buckets = Histogram.buckets h;
                    hs_exemplars = Histogram.exemplars h;
                  }
            in
            (name, labels, sample) :: acc)
          t.table [])
  in
  List.sort
    (fun (n1, l1, _) (n2, l2, _) ->
      match String.compare n1 n2 with 0 -> compare l1 l2 | c -> c)
    rows
