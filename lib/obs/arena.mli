(** Single-domain metrics arena: buffered counters/gauges/histograms
    with no synchronization, bulk-merged into a {!Registry} on demand.

    Registry handles are already safe across domains, but every
    observation is an atomic RMW on a shared cache line. On a sharded
    hot loop (one event per member per round, thousands of members per
    shard on several domains) that cross-domain traffic is measurable —
    it is one of the two costs that made the pre-pool [sweep_par] slower
    than sequential. An arena gives each shard plain mutable
    accumulators; after the shards quiesce, the coordinator calls
    {!flush} on each arena {e in shard order}, so the merged registry
    state is deterministic and independent of which domain ran which
    shard.

    Ownership contract: between flushes an arena (and every instrument
    made from it) is used by exactly one domain; {!flush} runs on the
    coordinating domain after joining the owner. Flushing resets the
    local state, so arenas are reusable across runs. *)

type t

val create : unit -> t

val flush : t -> unit
(** Fold every instrument's buffered values into its registry target and
    reset the local accumulators (registration order; gauges keep
    last-write-wins in that order). *)

val on_flush : t -> (unit -> unit) -> unit
(** Register an extra flush action (for merges that do not fit the three
    instrument shapes). Actions run in registration order. *)

type arena := t

module Counter : sig
  type t

  val make : arena -> Registry.Counter.t -> t
  (** A local accumulator that {!flush} adds onto the registry counter. *)

  val inc : ?by:int -> t -> unit
  val value : t -> int
  (** Buffered (unflushed) value. *)
end

module Gauge : sig
  type t

  val make : arena -> Registry.Gauge.t -> t
  val set : t -> float -> unit
  (** Last value wins; {!flush} writes it through only if [set] ran
      since the previous flush. *)
end

module Histogram : sig
  type t

  val make : arena -> Registry.Histogram.t -> t
  (** Local bucket vector with the target's bounds. *)

  val observe : t -> float -> unit
end
