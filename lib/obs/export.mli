(** Sinks: Prometheus text exposition and JSONL export for metrics and
    spans, plus a line-oriented parser used by round-trip tests and the
    [ra_cli stats --selftest] gate. *)

val render_prometheus : Registry.t -> string
(** Prometheus text exposition format, version 0.0.4: one [# TYPE] line
    per metric family, histograms expanded into cumulative
    [_bucket{le="..."}] series plus [_sum] and [_count]. Families are
    sorted by name, series by label set, so output is deterministic. *)

val metrics_jsonl : Registry.t -> string
(** One JSON object per line:
    [{"metric": name, "type": "counter"|"gauge"|"histogram",
      "labels": {...}, ...value fields...}]. Histogram lines carry
    ["sum"], ["count"] and ["buckets"] (le/count pairs; the overflow
    bound is the string ["+Inf"]). *)

val spans_jsonl : Span.t -> string
(** One JSON object per finished span, chronological:
    [{"span": name, "id", "parent" (or null), "depth",
      "start_s", "stop_s", "duration_ms", "labels": {...}}]. *)

val parse_jsonl : string -> (Json.t list, string) result
(** Parse a JSONL document (blank lines skipped); the first bad line
    aborts with its line number in the error. *)
