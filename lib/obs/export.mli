(** Sinks: Prometheus text exposition and JSONL export for metrics and
    spans, plus a line-oriented parser used by round-trip tests and the
    [ra_cli stats --selftest] gate. *)

val render_prometheus : Registry.t -> string
(** Prometheus text exposition format, version 0.0.4: one [# TYPE] line
    per metric family, histograms expanded into cumulative
    [_bucket{le="..."}] series plus [_sum] and [_count]. Families are
    sorted by name, series by label set, so output is deterministic.
    Buckets carrying an {!Registry.exemplar} get the OpenMetrics suffix
    [# {trace_id="..."} value timestamp]; exemplar-free output is
    byte-identical to the pre-exemplar exposition. *)

val metrics_jsonl : Registry.t -> string
(** One JSON object per line:
    [{"metric": name, "type": "counter"|"gauge"|"histogram",
      "labels": {...}, ...value fields...}]. Histogram lines carry
    ["sum"], ["count"] and ["buckets"] (le/count pairs; the overflow
    bound is the string ["+Inf"]). *)

val spans_jsonl : Span.t -> string
(** One JSON object per finished span, chronological:
    [{"span": name, "id", "parent" (or null), "depth",
      "start_s", "stop_s", "duration_ms", "labels": {...}}]. *)

val parse_jsonl : string -> (Json.t list, string) result
(** Parse a JSONL document (blank lines skipped); the first bad line
    aborts with its line number in the error. *)

(** {2 Causal rounds (flight recorder)} *)

val perfetto :
  ?counters:Profiler.Track.t list ->
  ?phases:Profiler.phase_sample list ->
  Trace.round list ->
  Json.t
(** Chrome/Perfetto trace-event JSON ([chrome://tracing] /
    [ui.perfetto.dev] loadable). Each device becomes a process (pid in
    first-appearance order, with a [process_name] metadata event), each
    round a track (tid = trace id). Spans are complete events
    ([ph:"X"], microsecond [ts]/[dur]); instants are [ph:"i"]. Every
    event's [args] carries [trace_id], [id], [parent] and the event's
    labels, so causal links survive viewer re-sorting.

    [counters] render as [ph:"C"] counter tracks under a dedicated
    pid 0 "counters" process (e.g. [ra_sched_queue_depth] over sim
    time). [phases] render as instants on their device's process with
    tid = the phase's trace id (0 when untraced), cross-linking
    profiler phase attribution to the causal round spans. *)

val perfetto_string :
  ?counters:Profiler.Track.t list ->
  ?phases:Profiler.phase_sample list ->
  Trace.round list ->
  string

val profile_jsonl : Profiler.t -> string
(** One JSON object per line, in three deterministic groups: ["stack"]
    rows (sorted folded stacks with cycle/sample weights), then
    ["phase_total"] rows (sorted by phase), then ["phase_sample"] rows
    (ring order, oldest first). *)

val rounds_jsonl : Trace.round list -> string
(** One {!Trace.round_to_json} object per line, in the given order. *)
