(** Typed metrics registry: monotonic counters, gauges and fixed-bucket
    histograms keyed by [(name, labels)].

    Registration ([get]) takes a mutex; the returned handle updates with
    plain atomics, so hot paths on separate domains (e.g.
    [Fleet.sweep_par] workers) can record without races or locks. Handles
    survive {!reset}, which zeroes values in place — instrument sites can
    therefore create their handles once at module initialisation. *)

type t
(** A registry. Metric families are typed: re-registering a name with a
    different metric kind raises [Invalid_argument]. *)

val create : unit -> t

val default : t
(** The process-wide registry every built-in instrumentation site uses. *)

val reset : t -> unit
(** Zero every metric in place (handles stay valid). Test helper. *)

(** {2 Cardinality cap}

    Each metric family (name) holds at most {!series_limit} label
    combinations — unbounded label values (e.g. per-device names during
    large fleet sweeps) cannot grow the registry without bound. Past the
    cap, [get] still returns a live handle, but the series is not stored
    or exported and [ra_obs_dropped_series_total{metric="<name>"}] is
    incremented instead. *)

val default_max_series : int
(** 1024. *)

val series_limit : t -> int

val set_series_limit : t -> int -> unit
(** @raise Invalid_argument when [limit < 1]. *)

val series_count : t -> string -> int
(** Registered (non-dropped) series for a metric family. *)

val dropped_series_name : string
(** ["ra_obs_dropped_series_total"] — itself exempt from the cap. *)

type labels = (string * string) list
(** Label pairs; order is irrelevant (canonicalised by key). *)

type registry := t
(** Local alias so submodule signatures can refer to the registry while
    shadowing [t] with their own handle type. *)

module Counter : sig
  type t

  val get : ?registry:registry -> ?labels:labels -> string -> t
  (** Register (or fetch) the counter [(name, labels)]. *)

  val inc : ?by:int -> t -> unit
  (** @raise Invalid_argument on a negative increment (monotonic). *)

  val value : t -> int
end

module Gauge : sig
  type t

  val get : ?registry:registry -> ?labels:labels -> string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

type exemplar = {
  ex_value : float;  (** the observation the exemplar stands for *)
  ex_trace_id : string;  (** causal trace reference, e.g. ["dev-3/17"] *)
  ex_at : float;
      (** {e simulated} seconds — the two-timebase rule: exemplar
          timestamps always carry sim-time, never CPU-cycle time, so
          they line up with the Perfetto timeline the trace id points
          into. *)
}

module Histogram : sig
  type t

  val default_buckets : float array
  (** Upper bounds in milliseconds, 0.005 .. 2500 (log-ish spacing). *)

  val get :
    ?registry:registry -> ?labels:labels -> ?buckets:float array -> string -> t
  (** [buckets] must be strictly increasing; it is fixed by the first
      registration of the family instance and ignored afterwards. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val buckets : t -> (float * int) list
  (** Per-bucket (upper bound, count); the final overflow bucket has
      bound [infinity]. *)

  val bounds : t -> float array
  (** The upper bounds the family was registered with (a copy). *)

  val absorb : t -> counts:int array -> sum:float -> unit
  (** Bulk-merge a locally accumulated bucket vector: [counts] must have
      [length (bounds h) + 1] entries (the last is the overflow bucket).
      Equivalent to the corresponding sequence of {!observe} calls, in
      one atomic add per non-empty bucket — the flush half of
      {!Ra_obs.Arena.Histogram}.
      @raise Invalid_argument on a length mismatch or negative count. *)

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0..100]: the upper bound of the
      bucket holding the p-th percentile observation; [nan] when empty,
      [infinity] when it falls in the overflow bucket. *)

  (** {2 Exemplars}

      Prometheus/OpenMetrics-style exemplars: each bucket can carry one
      representative observation with a trace reference, linking the
      latency distribution back to a concrete causal round. Exemplars
      are {e annotation}, set out-of-band by the forensics layer — never
      written by {!observe} or {!absorb} — so they perturb neither the
      hot path nor the deterministic Arena merge, and a histogram with
      no exemplars exports byte-identically to one that predates them.
      {!Ra_obs.Registry.reset} clears them. *)

  val set_exemplar : t -> value:float -> trace_id:string -> at:float -> unit
  (** Attach an exemplar to the bucket [value] falls in (overwriting any
      previous exemplar of that bucket). [at] is simulated seconds — see
      {!type:exemplar} for the two-timebase rule. *)

  val exemplars : t -> (float * exemplar) list
  (** [(bucket upper bound, exemplar)] for every bucket that has one, in
      bound order; the overflow bucket reports bound [infinity]. *)
end

(** {2 Snapshots (for exporters)} *)

type sample =
  | Counter_sample of int
  | Gauge_sample of float
  | Histogram_sample of {
      hs_sum : float;
      hs_count : int;
      hs_buckets : (float * int) list; (* per-bucket, not cumulative *)
      hs_exemplars : (float * exemplar) list; (* only buckets that have one *)
    }

val snapshot : t -> (string * labels * sample) list
(** Consistent point-in-time view, sorted by name then labels. *)
