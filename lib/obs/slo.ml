type comparison = At_most | At_least

type objective = {
  slo_name : string;
  slo_limit : float;
  slo_cmp : comparison;
  slo_unit : string;
}

type check = {
  ck_objective : objective;
  ck_scope : string;
  ck_observed : float;
  ck_ok : bool;
}

let objective ?(unit = "") ~name ~limit cmp =
  if not (Float.is_finite limit) then
    invalid_arg "Ra_obs.Slo.objective: limit must be finite";
  { slo_name = name; slo_limit = limit; slo_cmp = cmp; slo_unit = unit }

(* Exactly meeting the limit is compliant: an SLO of "p99 <= 60 s" is not
   breached by an observed p99 of precisely 60 s. *)
let compliant obj ~observed =
  match obj.slo_cmp with
  | At_most -> observed <= obj.slo_limit
  | At_least -> observed >= obj.slo_limit

(* limit - observed signed so that positive = headroom for both senses *)
let margin obj ~observed =
  match obj.slo_cmp with
  | At_most -> obj.slo_limit -. observed
  | At_least -> observed -. obj.slo_limit

module M = struct
  let evaluations name =
    Registry.Counter.get ~labels:[ ("objective", name) ] "ra_slo_evaluations_total"

  let breaches name =
    Registry.Counter.get ~labels:[ ("objective", name) ] "ra_slo_breaches_total"

  let margin_gauge name scope =
    Registry.Gauge.get
      ~labels:[ ("objective", name); ("scope", scope) ]
      "ra_slo_margin"
end

let evaluate ~scope obj ~observed =
  let ok = compliant obj ~observed in
  Registry.Counter.inc (M.evaluations obj.slo_name);
  if not ok then Registry.Counter.inc (M.breaches obj.slo_name);
  Registry.Gauge.set (M.margin_gauge obj.slo_name scope) (margin obj ~observed);
  { ck_objective = obj; ck_scope = scope; ck_observed = observed; ck_ok = ok }

let breaches checks = List.filter (fun c -> not c.ck_ok) checks

let cmp_label = function At_most -> "at_most" | At_least -> "at_least"

let check_to_json c =
  Json.Obj
    [
      ("objective", Json.Str c.ck_objective.slo_name);
      ("comparison", Json.Str (cmp_label c.ck_objective.slo_cmp));
      ("limit", Json.Num c.ck_objective.slo_limit);
      ("unit", Json.Str c.ck_objective.slo_unit);
      ("scope", Json.Str c.ck_scope);
      ("observed", Json.Num c.ck_observed);
      ("ok", Json.Bool c.ck_ok);
      ("margin", Json.Num (margin c.ck_objective ~observed:c.ck_observed));
    ]

let pp_check fmt c =
  Format.fprintf fmt "%s [%s]: observed %g %s limit %g%s%s -> %s"
    c.ck_objective.slo_name c.ck_scope c.ck_observed
    (match c.ck_objective.slo_cmp with At_most -> "vs max" | At_least -> "vs min")
    c.ck_objective.slo_limit
    (if c.ck_objective.slo_unit = "" then "" else " ")
    c.ck_objective.slo_unit
    (if c.ck_ok then "ok" else "BREACH")
