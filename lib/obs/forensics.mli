(** Failure forensics: replay capsules, root-cause triage, and SLO
    exemplar wiring.

    A {e replay capsule} is a self-contained record of one interesting
    attestation round — a round that ended non-trusted, the slowest
    converged round of a chaos cell, or a server-side deadline miss. It
    carries everything the fleet layer needs to re-execute exactly that
    round standalone ([Ra_core.Fleet.replay_capsule]): the sweep seed,
    the full cell grid, the member's position (its impairment seed is the
    pure function [Impairment.derive_seed ~root ~index] of them), the
    retry policy, and the round's observed outcome — verdict, sim-time
    window, and a SHA-1 digest of the wire frames the round produced, so
    a replay can be checked byte-identical, not just verdict-identical.

    Capsules live in a bounded {!Recorder} ring next to the flight
    recorder and round-trip through JSON. Capture is out-of-band like
    tracing and profiling: it never touches wire or device state and
    draws no randomness, so transcripts are byte-identical with capture
    on or off.

    {e Triage} buckets captured failures by signature —
    verdict reason × impairment pattern × dominant profiler phase — and
    ranks the buckets into a diagnosis report (JSONL and human-readable).
    {!annotate_exemplars} completes the loop by stamping representative
    capsules into {!Registry.Histogram} buckets, so an SLO breach on a
    latency histogram links directly to a replayable round. *)

(** {1 Capsules} *)

type retry_policy = {
  cp_max_attempts : int;
  cp_base_timeout_s : float;
  cp_multiplier : float;
  cp_max_timeout_s : float;
  cp_jitter : float;
}
(** Mirror of [Ra_core.Retry.policy] as plain scalars (this library sits
    below the core and cannot name its types). *)

type kind =
  | Failure  (** a chaos round that ended non-trusted *)
  | Slowest  (** the slowest converged round of a chaos cell *)
  | Deadline_miss  (** a server request expired in the queue *)

type capsule = {
  cap_kind : kind;
  cap_member : int;  (** member index in the sweep (request tag for servers) *)
  cap_name : string;  (** member/device name *)
  cap_sweep_seed : int64;  (** the [chaos_sweep ~seed] root *)
  cap_losses : float list;  (** the sweep's loss grid, outer axis *)
  cap_policies : (string * retry_policy) list;  (** inner axis, in order *)
  cap_rounds_per_member : int;
  cap_cell : int;  (** 0-based cell index into losses × policies *)
  cap_loss : float;  (** this cell's loss rate *)
  cap_policy : string;  (** this cell's policy name *)
  cap_round : int;  (** 1-based round within the cell *)
  cap_workload : string;
      (** what one "round" executed: ["attest"] (one-shot retry round) or
          ["session:<n>"] (secure-session lifecycle streaming [n]
          records). Replay re-runs the same workload; capsules from
          before workloads existed parse as ["attest"]. *)
  cap_imp_seed : int64;
      (** the member's derived positional impairment seed for the cell —
          redundant with (seed, cell, member) and re-derived on replay as
          a tamper check *)
  cap_prior_sweeps : int;
      (** ledger entries the member had {e before} this sweep; replay
          from a fresh session is only sound when 0 *)
  cap_started_at : float;  (** member sim-time at round start *)
  cap_elapsed_s : float;
  cap_attempts : int;
  cap_verdict : Json.t;  (** the full [Verdict.to_json] value *)
  cap_reason : string;  (** verdict label, e.g. ["timed_out"] *)
  cap_trace_id : int option;  (** causal round id, when tracing was on *)
  cap_phase : string option;  (** dominant profiler phase, when profiled *)
  cap_wire_digest : string;
      (** hex SHA-1 over the frames the round appended to the wire
          transcript (timestamps, directions, lengths, payloads) *)
  cap_config : string;  (** fleet config digest — replay-target guard *)
}

val kind_label : kind -> string
(** ["failure"] / ["slowest"] / ["deadline_miss"]. *)

val deadline_miss :
  device:string option ->
  tag:int ->
  arrived:float ->
  done_:float ->
  verdict:Json.t ->
  capsule
(** The server-side capsule: a request that expired in the admission
    queue before verification. Not replayable standalone (no positional
    seed reconstructs an open-loop arrival process mid-run) — it exists
    for triage and exemplars, with [cap_policy = "deadline"] as its
    impairment pattern. *)

(** {1 Capture ring} *)

type t
(** A bounded capsule ring (a {!Recorder}); oldest capsules are evicted
    first. Not thread-safe — the fleet engines buffer per-shard and merge
    in member order, so the ring's contents are deterministic at every
    shard count. *)

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the ring (default 256). *)

val capture : t -> capsule -> unit
(** Push a capsule and count it in
    [ra_forensics_capsules_total{kind=...}]. *)

val capsules : t -> capsule list
(** Oldest first. *)

val latest : t -> capsule option
val length : t -> int
val evicted : t -> int
val clear : t -> unit

(** {1 JSON round-trip} *)

val capsule_to_json : capsule -> Json.t
(** Seeds are encoded as decimal strings (64-bit values do not survive
    a float round-trip). *)

val capsule_of_json : Json.t -> capsule option
val capsules_jsonl : capsule list -> string

(** {1 Triage} *)

val dominant_phase : Profiler.phase_sample list -> trace_id:int -> string option
(** The phase with the most attributed cycles among the samples carrying
    [trace_id] (ties break to the lexicographically smallest phase);
    [None] when no sample matches. *)

type signature = {
  sig_reason : string;  (** verdict label *)
  sig_impairment : string;  (** e.g. ["loss=20% policy=none"] *)
  sig_phase : string;  (** dominant phase, ["-"] when unprofiled *)
}

type diagnosis = {
  dg_signature : signature;
  dg_count : int;
  dg_share_pct : float;  (** of all triaged capsules *)
  dg_example : capsule;  (** first-captured representative *)
}

val signature_of : capsule -> signature

val triage : capsule list -> diagnosis list
(** Bucket the {!Failure} and {!Deadline_miss} capsules ([Slowest]
    capsules are latency exemplars, not failures) by {!signature_of} and
    rank: highest count first, ties in signature order. Deterministic in
    the capsule list. *)

val diagnosis_jsonl : diagnosis list -> string
(** One JSON object per diagnosis row, rank order. *)

val render_diagnosis : diagnosis list -> string
(** Human-readable ranked table. *)

(** {1 SLO exemplar wiring} *)

val exemplar_id : capsule -> string option
(** ["<name>/<trace id>"] when the capsule carries a trace id. *)

val annotate_exemplars : histogram:Registry.Histogram.t -> capsule list -> int
(** Stamp each capsule that carries a trace id into [histogram] as the
    exemplar of the bucket its round time (milliseconds) falls in —
    walked in capture order, so the annotation is deterministic and later
    capsules of a bucket win. The exemplar timestamp is the round's
    sim-time completion ({!Registry.exemplar} documents the two-timebase
    rule). Returns the number of capsules stamped. *)
