(* Deterministic profile accumulators. See profiler.mli for the contract;
   the short version is: no wall clocks, no hash-order exports, and every
   merge is a plain sum — so profiles replay bit-for-bit under a seed and
   shard-merge byte-identically at every shard count. *)

let clean_frame s =
  if s = "" then "?"
  else begin
    let needs_fix = ref false in
    String.iter
      (fun c -> if c = ';' || c = ' ' || Char.code c < 0x20 then needs_fix := true)
      s;
    if not !needs_fix then s
    else
      String.map
        (fun c ->
          if c = ';' then ','
          else if c = ' ' then '_'
          else if Char.code c < 0x20 then '?'
          else c)
        s
  end

module Pc = struct
  (* cycles are an unboxed native int internally (63-bit is ample for
     cycle counts) so the per-sample bump never allocates; the external
     API stays int64 *)
  type cell = { frames : string list; mutable cycles : int; mutable samples : int }
  type t = { tbl : (string, cell) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 64 }
  let clear t = Hashtbl.reset t.tbl

  let key_of frames = String.concat ";" frames

  let add t ~frames ~cycles =
    let frames = List.map clean_frame frames in
    let key = key_of frames in
    let cycles = Int64.to_int cycles in
    (match Hashtbl.find_opt t.tbl key with
    | Some c ->
      c.cycles <- c.cycles + cycles;
      c.samples <- c.samples + 1
    | None -> Hashtbl.replace t.tbl key { frames; cycles; samples = 1 })

  let absorb dst src =
    Hashtbl.iter
      (fun key c ->
        if c.samples > 0 then
          match Hashtbl.find_opt dst.tbl key with
          | Some d ->
            d.cycles <- d.cycles + c.cycles;
            d.samples <- d.samples + c.samples
          | None ->
            Hashtbl.replace dst.tbl key
              { frames = c.frames; cycles = c.cycles; samples = c.samples })
      src.tbl

  let samples t = Hashtbl.fold (fun _ c acc -> acc + c.samples) t.tbl 0

  let cycles t =
    Int64.of_int (Hashtbl.fold (fun _ c acc -> acc + c.cycles) t.tbl 0)

  let rows t =
    Hashtbl.fold
      (fun key c acc -> if c.samples > 0 then (key, c) :: acc else acc)
      t.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (_, c) -> (c.frames, Int64.of_int c.cycles, c.samples))

  let folded t =
    let buf = Buffer.create 256 in
    Hashtbl.fold
      (fun key c acc -> if c.samples > 0 then (key, c.cycles) :: acc else acc)
      t.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.iter (fun (key, cycles) ->
           Buffer.add_string buf key;
           Buffer.add_char buf ' ';
           Buffer.add_string buf (string_of_int cycles);
           Buffer.add_char buf '\n');
    Buffer.contents buf

  (* Hot-path memoization: [handle] resolves a stack to its cell once,
     so a sampler can bump the same stack repeatedly without rebuilding
     the frame list, the folded key, or the hash lookup per sample. A
     handle's cell starts at zero and only becomes visible through a
     bump, so an unused handle never pollutes the export. *)
  type handle = cell

  let handle t ~frames =
    let frames = List.map clean_frame frames in
    let key = key_of frames in
    match Hashtbl.find_opt t.tbl key with
    | Some c -> c
    | None ->
      let c = { frames; cycles = 0; samples = 0 } in
      Hashtbl.replace t.tbl key c;
      c

  let bump (c : handle) ~cycles =
    c.cycles <- c.cycles + cycles;
    c.samples <- c.samples + 1

  let cycles_matching t ~f =
    Hashtbl.fold
      (fun _ c acc ->
        let leaf =
          match List.rev c.frames with [] -> "" | leaf :: _ -> leaf
        in
        if f leaf then acc + c.cycles else acc)
      t.tbl 0
    |> Int64.of_int
end

type phase_sample = {
  ps_at : float;
  ps_trace_id : int option;
  ps_device : string;
  ps_phase : string;
  ps_cycles : int64;
  ps_nj : float;
}

module Phases = struct
  type total = { mutable t_cycles : int64; mutable t_nj : float; mutable t_n : int }

  type t = {
    totals : (string, total) Hashtbl.t;
    ring : phase_sample Recorder.t;
  }

  let create ?(capacity = 1024) () =
    { totals = Hashtbl.create 8; ring = Recorder.create ~capacity }

  let bump t ~phase ~cycles ~nj ~n =
    match Hashtbl.find_opt t.totals phase with
    | Some tot ->
      tot.t_cycles <- Int64.add tot.t_cycles cycles;
      tot.t_nj <- tot.t_nj +. nj;
      tot.t_n <- tot.t_n + n
    | None ->
      Hashtbl.replace t.totals phase { t_cycles = cycles; t_nj = nj; t_n = n }

  let record t ps =
    bump t ~phase:ps.ps_phase ~cycles:ps.ps_cycles ~nj:ps.ps_nj ~n:1;
    Recorder.push t.ring ps

  let samples t = Recorder.to_list t.ring
  let length t = Recorder.length t.ring
  let dropped t = Recorder.evicted t.ring

  let totals t =
    Hashtbl.fold
      (fun phase tot acc -> (phase, (tot.t_cycles, tot.t_nj, tot.t_n)) :: acc)
      t.totals []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let absorb dst src =
    Hashtbl.iter
      (fun phase tot ->
        bump dst ~phase ~cycles:tot.t_cycles ~nj:tot.t_nj ~n:tot.t_n)
      src.totals;
    Recorder.iter src.ring (fun ps -> Recorder.push dst.ring ps)
end

module Track = struct
  type t = { tk_name : string; mutable rev_points : (float * float) list }

  let create name = { tk_name = name; rev_points = [] }
  let name t = t.tk_name
  let push t ~at v = t.rev_points <- (at, v) :: t.rev_points
  let points t = List.rev t.rev_points

  let merge ~name tracks =
    let all = List.concat_map points tracks in
    let sorted = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) all in
    { tk_name = name; rev_points = List.rev sorted }
end

type t = { pc : Pc.t; phases : Phases.t }

let create ?capacity () = { pc = Pc.create (); phases = Phases.create ?capacity () }

let absorb dst src =
  Pc.absorb dst.pc src.pc;
  Phases.absorb dst.phases src.phases

let folded t = Pc.folded t.pc
