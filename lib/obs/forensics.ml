type retry_policy = {
  cp_max_attempts : int;
  cp_base_timeout_s : float;
  cp_multiplier : float;
  cp_max_timeout_s : float;
  cp_jitter : float;
}

type kind = Failure | Slowest | Deadline_miss

type capsule = {
  cap_kind : kind;
  cap_member : int;
  cap_name : string;
  cap_sweep_seed : int64;
  cap_losses : float list;
  cap_policies : (string * retry_policy) list;
  cap_rounds_per_member : int;
  cap_cell : int;
  cap_loss : float;
  cap_policy : string;
  cap_round : int;
  cap_workload : string;
  cap_imp_seed : int64;
  cap_prior_sweeps : int;
  cap_started_at : float;
  cap_elapsed_s : float;
  cap_attempts : int;
  cap_verdict : Json.t;
  cap_reason : string;
  cap_trace_id : int option;
  cap_phase : string option;
  cap_wire_digest : string;
  cap_config : string;
}

let kind_label = function
  | Failure -> "failure"
  | Slowest -> "slowest"
  | Deadline_miss -> "deadline_miss"

let kind_of_label = function
  | "failure" -> Some Failure
  | "slowest" -> Some Slowest
  | "deadline_miss" -> Some Deadline_miss
  | _ -> None

let deadline_miss ~device ~tag ~arrived ~done_ ~verdict =
  {
    cap_kind = Deadline_miss;
    cap_member = tag;
    cap_name = Option.value ~default:"?" device;
    cap_sweep_seed = 0L;
    cap_losses = [];
    cap_policies = [];
    cap_rounds_per_member = 0;
    cap_cell = 0;
    cap_loss = 0.0;
    cap_policy = "deadline";
    cap_round = 0;
    cap_workload = "attest";
    cap_imp_seed = 0L;
    cap_prior_sweeps = 0;
    cap_started_at = arrived;
    cap_elapsed_s = done_ -. arrived;
    cap_attempts = 1;
    cap_verdict = verdict;
    cap_reason = "timed_out";
    cap_trace_id = None;
    cap_phase = None;
    cap_wire_digest = "";
    cap_config = "";
  }

(* --- capture ring --- *)

type t = { ring : capsule Recorder.t }

let captured_total kind =
  Registry.Counter.get
    ~labels:[ ("kind", kind_label kind) ]
    "ra_forensics_capsules_total"

let create ?(capacity = 256) () = { ring = Recorder.create ~capacity }

let capture t cap =
  Recorder.push t.ring cap;
  Registry.Counter.inc (captured_total cap.cap_kind)

let capsules t = Recorder.to_list t.ring
let latest t = Recorder.latest t.ring
let length t = Recorder.length t.ring
let evicted t = Recorder.evicted t.ring
let clear t = Recorder.clear t.ring

(* --- JSON round-trip --- *)

(* 64-bit seeds don't survive a JSON float; encode as decimal strings
   (the [Verdict.to_json] convention). *)
let i64 v = Json.Str (Int64.to_string v)
let num n = Json.Num n
let int n = Json.Num (float_of_int n)

let opt_str = function None -> Json.Null | Some s -> Json.Str s
let opt_int = function None -> Json.Null | Some n -> int n

let policy_to_json (name, p) =
  Json.Obj
    [
      ("name", Json.Str name);
      ("max_attempts", int p.cp_max_attempts);
      ("base_timeout_s", num p.cp_base_timeout_s);
      ("multiplier", num p.cp_multiplier);
      ("max_timeout_s", num p.cp_max_timeout_s);
      ("jitter", num p.cp_jitter);
    ]

let capsule_to_json c =
  Json.Obj
    [
      ("kind", Json.Str (kind_label c.cap_kind));
      ("member", int c.cap_member);
      ("name", Json.Str c.cap_name);
      ("sweep_seed", i64 c.cap_sweep_seed);
      ("losses", Json.Arr (List.map num c.cap_losses));
      ("policies", Json.Arr (List.map policy_to_json c.cap_policies));
      ("rounds_per_member", int c.cap_rounds_per_member);
      ("cell", int c.cap_cell);
      ("loss", num c.cap_loss);
      ("policy", Json.Str c.cap_policy);
      ("round", int c.cap_round);
      ("workload", Json.Str c.cap_workload);
      ("imp_seed", i64 c.cap_imp_seed);
      ("prior_sweeps", int c.cap_prior_sweeps);
      ("started_at", num c.cap_started_at);
      ("elapsed_s", num c.cap_elapsed_s);
      ("attempts", int c.cap_attempts);
      ("verdict", c.cap_verdict);
      ("reason", Json.Str c.cap_reason);
      ("trace_id", opt_int c.cap_trace_id);
      ("phase", opt_str c.cap_phase);
      ("wire_digest", Json.Str c.cap_wire_digest);
      ("config", Json.Str c.cap_config);
    ]

let ( let* ) = Option.bind

let member_str name j = Option.bind (Json.member name j) Json.as_string
let member_num name j = Option.bind (Json.member name j) Json.as_float

let member_int name j =
  let* f = member_num name j in
  Some (int_of_float f)

let member_i64 name j =
  let* s = member_str name j in
  Int64.of_string_opt s

let member_opt conv name j =
  match Json.member name j with
  | None | Some Json.Null -> Some None
  | Some v -> (
    match conv v with Some x -> Some (Some x) | None -> None)

let policy_of_json j =
  let* name = member_str "name" j in
  let* cp_max_attempts = member_int "max_attempts" j in
  let* cp_base_timeout_s = member_num "base_timeout_s" j in
  let* cp_multiplier = member_num "multiplier" j in
  let* cp_max_timeout_s = member_num "max_timeout_s" j in
  let* cp_jitter = member_num "jitter" j in
  Some
    ( name,
      { cp_max_attempts; cp_base_timeout_s; cp_multiplier; cp_max_timeout_s;
        cp_jitter } )

let all_some xs =
  List.fold_right
    (fun x acc ->
      let* x = x in
      let* acc = acc in
      Some (x :: acc))
    xs (Some [])

let capsule_of_json j =
  let* kind = member_str "kind" j in
  let* cap_kind = kind_of_label kind in
  let* cap_member = member_int "member" j in
  let* cap_name = member_str "name" j in
  let* cap_sweep_seed = member_i64 "sweep_seed" j in
  let* losses = Json.member "losses" j in
  let* cap_losses =
    match losses with
    | Json.Arr xs -> all_some (List.map Json.as_float xs)
    | _ -> None
  in
  let* policies = Json.member "policies" j in
  let* cap_policies =
    match policies with
    | Json.Arr xs -> all_some (List.map policy_of_json xs)
    | _ -> None
  in
  let* cap_rounds_per_member = member_int "rounds_per_member" j in
  let* cap_cell = member_int "cell" j in
  let* cap_loss = member_num "loss" j in
  let* cap_policy = member_str "policy" j in
  let* cap_round = member_int "round" j in
  (* capsules captured before workloads existed are attest sweeps *)
  let* cap_workload =
    match Json.member "workload" j with
    | None | Some Json.Null -> Some "attest"
    | Some v -> Json.as_string v
  in
  let* cap_imp_seed = member_i64 "imp_seed" j in
  let* cap_prior_sweeps = member_int "prior_sweeps" j in
  let* cap_started_at = member_num "started_at" j in
  let* cap_elapsed_s = member_num "elapsed_s" j in
  let* cap_attempts = member_int "attempts" j in
  let* cap_verdict = Json.member "verdict" j in
  let* cap_reason = member_str "reason" j in
  let* cap_trace_id =
    member_opt (fun v -> Option.map int_of_float (Json.as_float v)) "trace_id" j
  in
  let* cap_phase = member_opt Json.as_string "phase" j in
  let* cap_wire_digest = member_str "wire_digest" j in
  let* cap_config = member_str "config" j in
  Some
    {
      cap_kind; cap_member; cap_name; cap_sweep_seed; cap_losses; cap_policies;
      cap_rounds_per_member; cap_cell; cap_loss; cap_policy; cap_round;
      cap_workload; cap_imp_seed; cap_prior_sweeps; cap_started_at; cap_elapsed_s;
      cap_attempts; cap_verdict; cap_reason; cap_trace_id; cap_phase;
      cap_wire_digest; cap_config;
    }

let capsules_jsonl caps =
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      Buffer.add_string buf (Json.to_string (capsule_to_json c));
      Buffer.add_char buf '\n')
    caps;
  Buffer.contents buf

(* --- triage --- *)

let dominant_phase samples ~trace_id =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if s.Profiler.ps_trace_id = Some trace_id then begin
        let prev =
          Option.value ~default:0L (Hashtbl.find_opt totals s.Profiler.ps_phase)
        in
        Hashtbl.replace totals s.Profiler.ps_phase
          (Int64.add prev s.Profiler.ps_cycles)
      end)
    samples;
  Hashtbl.fold
    (fun phase cycles best ->
      match best with
      | None -> Some (phase, cycles)
      | Some (bp, bc) ->
        (* most cycles wins; ties break to the lexicographically
           smallest phase so the answer is set-deterministic *)
        if cycles > bc || (cycles = bc && String.compare phase bp < 0) then
          Some (phase, cycles)
        else best)
    totals None
  |> Option.map fst

type signature = {
  sig_reason : string;
  sig_impairment : string;
  sig_phase : string;
}

type diagnosis = {
  dg_signature : signature;
  dg_count : int;
  dg_share_pct : float;
  dg_example : capsule;
}

let signature_of c =
  let sig_impairment =
    match c.cap_kind with
    | Deadline_miss -> "deadline"
    | Failure | Slowest ->
      Printf.sprintf "loss=%.0f%% policy=%s" (100.0 *. c.cap_loss) c.cap_policy
  in
  {
    sig_reason = c.cap_reason;
    sig_impairment;
    sig_phase = Option.value ~default:"-" c.cap_phase;
  }

let compare_signature a b =
  match String.compare a.sig_reason b.sig_reason with
  | 0 -> (
    match String.compare a.sig_impairment b.sig_impairment with
    | 0 -> String.compare a.sig_phase b.sig_phase
    | c -> c)
  | c -> c

let triage caps =
  let caps =
    List.filter
      (fun c ->
        match c.cap_kind with
        | Failure | Deadline_miss -> true
        | Slowest -> false)
      caps
  in
  let total = List.length caps in
  if total = 0 then []
  else begin
    let buckets : (signature, int * capsule) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun c ->
        let s = signature_of c in
        match Hashtbl.find_opt buckets s with
        | None -> Hashtbl.replace buckets s (1, c)
        | Some (n, first) -> Hashtbl.replace buckets s (n + 1, first))
      caps;
    Hashtbl.fold
      (fun s (n, first) acc ->
        {
          dg_signature = s;
          dg_count = n;
          dg_share_pct = 100.0 *. float_of_int n /. float_of_int total;
          dg_example = first;
        }
        :: acc)
      buckets []
    |> List.sort (fun a b ->
           match compare b.dg_count a.dg_count with
           | 0 -> compare_signature a.dg_signature b.dg_signature
           | c -> c)
  end

let diagnosis_jsonl rows =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i d ->
      let j =
        Json.Obj
          [
            ("rank", int (i + 1));
            ("reason", Json.Str d.dg_signature.sig_reason);
            ("impairment", Json.Str d.dg_signature.sig_impairment);
            ("phase", Json.Str d.dg_signature.sig_phase);
            ("count", int d.dg_count);
            ("share_pct", num d.dg_share_pct);
            ("example", capsule_to_json d.dg_example);
          ]
      in
      Buffer.add_string buf (Json.to_string j);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let render_diagnosis rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "forensic triage: failure signatures, ranked\n";
  if rows = [] then Buffer.add_string buf "  (no failures captured)\n"
  else
    List.iteri
      (fun i d ->
        Buffer.add_string buf
          (Printf.sprintf "  #%d  %4d  %5.1f%%  reason=%s  %s  phase=%s\n"
             (i + 1) d.dg_count d.dg_share_pct d.dg_signature.sig_reason
             d.dg_signature.sig_impairment d.dg_signature.sig_phase);
        Buffer.add_string buf
          (Printf.sprintf "       e.g. %s cell=%d round=%d attempts=%d\n"
             d.dg_example.cap_name d.dg_example.cap_cell d.dg_example.cap_round
             d.dg_example.cap_attempts))
      rows;
  Buffer.contents buf

(* --- exemplar wiring --- *)

let exemplar_id c =
  Option.map (fun id -> Printf.sprintf "%s/%d" c.cap_name id) c.cap_trace_id

let annotate_exemplars ~histogram caps =
  List.fold_left
    (fun n c ->
      match exemplar_id c with
      | None -> n
      | Some trace_id ->
        Registry.Histogram.set_exemplar histogram
          ~value:(1000.0 *. c.cap_elapsed_s)
          ~trace_id
          ~at:(c.cap_started_at +. c.cap_elapsed_s);
        n + 1)
    0 caps
