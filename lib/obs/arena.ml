(* Single-domain metrics arena.

   The registry's instruments are safe to hit from any domain, but every
   observation is an atomic RMW on shared cache lines — on a hot loop
   running on several domains at once (one event per member per round,
   thousands of members per shard) that contention is the cost that made
   `sweep_par` slower than sequential. An arena buffers a domain's
   observations in plain mutable fields with no synchronization at all;
   [flush] folds the accumulated values into the shared registry in one
   bulk operation per instrument.

   The contract: an arena is owned by exactly one domain between
   flushes, and [flush] is called from a single coordinating domain
   after the owners have quiesced (the shard engine flushes arenas in
   shard order, so the merged registry state is deterministic). Flushing
   resets the local values, so an arena can be reused across runs. *)

type flusher = unit -> unit
type t = { mutable flushers : flusher list (* newest first *) }

let create () = { flushers = [] }

let on_flush t f = t.flushers <- f :: t.flushers

(* Flush in registration order: the merged totals are sums so the order
   is invisible for counters/histograms, but gauges keep last-write-wins
   semantics aligned with registration order. *)
let flush t = List.iter (fun f -> f ()) (List.rev t.flushers)

module Counter = struct
  type nonrec t = { mutable n : int; target : Registry.Counter.t }

  let make arena target =
    let c = { n = 0; target } in
    on_flush arena (fun () ->
        if c.n > 0 then begin
          Registry.Counter.inc ~by:c.n c.target;
          c.n <- 0
        end);
    c

  let inc ?(by = 1) c = c.n <- c.n + by
  let value c = c.n
end

module Gauge = struct
  type nonrec t = {
    mutable v : float;
    mutable dirty : bool;
    target : Registry.Gauge.t;
  }

  let make arena target =
    let g = { v = 0.0; dirty = false; target } in
    on_flush arena (fun () ->
        if g.dirty then begin
          Registry.Gauge.set g.target g.v;
          g.dirty <- false
        end);
    g

  let set g v =
    g.v <- v;
    g.dirty <- true
end

module Histogram = struct
  type nonrec t = {
    bounds : float array;
    counts : int array; (* length = bounds + 1 (overflow) *)
    mutable sum : float;
    target : Registry.Histogram.t;
  }

  let make arena target =
    let bounds = Registry.Histogram.bounds target in
    let h = { bounds; counts = Array.make (Array.length bounds + 1) 0; sum = 0.0; target } in
    on_flush arena (fun () ->
        Registry.Histogram.absorb h.target ~counts:h.counts ~sum:h.sum;
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.sum <- 0.0);
    h

  let observe h v =
    let n = Array.length h.bounds in
    let rec idx i = if i >= n || v <= h.bounds.(i) then i else idx (i + 1) in
    h.counts.(idx 0) <- h.counts.(idx 0) + 1;
    h.sum <- h.sum +. v
end
