(** Span-based tracing over an arbitrary clock.

    A span context owns a clock (e.g. [Ra_net.Simtime.now] for wall-clock
    spans, or a device's [Cpu.elapsed_seconds] for prover-work spans), a
    stack of open spans (children nest under the innermost open span) and
    the finished-span log. On exit, the span's duration is mirrored into a
    registry histogram [ra_span_ms{span="<name>"}] so percentile queries
    and the Prometheus exposition see every span family.

    A context is {e not} domain-safe — give each session/world its own,
    as [Ra_net.Trace] does. The registry histogram it reports into is
    atomic, so many contexts on many domains may share one registry. *)

type t
(** A span context. *)

type span
(** An open span (returned by {!enter}, consumed by {!exit}). *)

type finished = {
  f_name : string;
  f_labels : Registry.labels;
  f_id : int;
  f_parent : int option; (* id of the enclosing span, if any *)
  f_parent_name : string option;
  f_depth : int; (* 0 for root spans *)
  f_start : float; (* clock units (seconds on Simtime/Cpu clocks) *)
  f_stop : float;
}

val create :
  ?registry:Registry.t ->
  ?histogram:string ->
  clock:(unit -> float) ->
  unit ->
  t
(** [histogram] defaults to ["ra_span_ms"]; [registry] defaults to
    {!Registry.default}. *)

val no_registry : clock:(unit -> float) -> unit -> t
(** A context that keeps its span log but reports into no registry. *)

val enter : t -> ?labels:Registry.labels -> string -> span

val exit : t -> ?labels:Registry.labels -> span -> unit
(** Close a span; [labels] are appended to the ones given at {!enter}
    (e.g. an outcome decided late). Closing a span that is not the
    innermost open one simply removes it from the open set. *)

val with_span : t -> ?labels:Registry.labels -> string -> (unit -> 'a) -> 'a
(** Enter/exit around [f]; on exception the span is closed with
    [outcome="raised"] and the exception re-raised. *)

val finished : t -> finished list
(** Completion order (chronological). *)

val open_count : t -> int
(** Number of still-open spans — 0 when enter/exit calls balance. *)

val duration_ms : finished -> float
(** [(f_stop - f_start) * 1000.] — simulated milliseconds under the
    Simtime and Cpu clocks used in this repository. *)

val on_finish : t -> (finished -> unit) -> unit
(** Install a callback run at every span exit (used by [Ra_net.Trace] to
    mirror spans into its free-form event log). Replaces any previous. *)

val add_on_finish : t -> (finished -> unit) -> unit
(** Like {!on_finish} but composes: the new callback runs after any
    previously installed one, so tracing mirrors and profiler phase
    attribution can observe the same span context without clobbering
    each other. *)
