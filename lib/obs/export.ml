(* Symbol and region names flow into label values verbatim, so every
   control byte needs an escape — a bare \r or \t in the exposition (or
   in Perfetto JSON) corrupts the line-oriented formats. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let format_labels labels =
  match labels with
  | [] -> ""
  | _ ->
    let parts =
      List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels
    in
    "{" ^ String.concat "," parts ^ "}"

(* %g gives "0.005"/"1"/"+Inf"-free bounds; infinity is special-cased. *)
let format_bound b = if b = infinity then "+Inf" else Printf.sprintf "%g" b

let format_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let sample_type = function
  | Registry.Counter_sample _ -> "counter"
  | Registry.Gauge_sample _ -> "gauge"
  | Registry.Histogram_sample _ -> "histogram"

let render_prometheus registry =
  let rows = Registry.snapshot registry in
  let buf = Buffer.create 1024 in
  let last_family = ref "" in
  List.iter
    (fun (name, labels, sample) ->
      if name <> !last_family then begin
        last_family := name;
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name (sample_type sample))
      end;
      match sample with
      | Registry.Counter_sample v ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" name (format_labels labels) v)
      | Registry.Gauge_sample v ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" name (format_labels labels) (format_value v))
      | Registry.Histogram_sample { hs_sum; hs_count; hs_buckets; hs_exemplars } ->
        let cumulative = ref 0 in
        List.iter
          (fun (bound, n) ->
            cumulative := !cumulative + n;
            let le = ("le", format_bound bound) in
            (* OpenMetrics exemplar suffix: only on buckets the forensics
               layer annotated, so exemplar-free output is byte-identical
               to the pre-exemplar exposition *)
            let exemplar =
              match List.assoc_opt bound hs_exemplars with
              | None -> ""
              | Some e ->
                Printf.sprintf " # {trace_id=\"%s\"} %s %s"
                  (escape_label_value e.Registry.ex_trace_id)
                  (format_value e.Registry.ex_value)
                  (format_value e.Registry.ex_at)
            in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d%s\n" name
                 (format_labels (labels @ [ le ]))
                 !cumulative exemplar))
          hs_buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" name (format_labels labels)
             (format_value hs_sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" name (format_labels labels) hs_count))
    rows;
  Buffer.contents buf

let labels_obj labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let metrics_jsonl registry =
  let rows = Registry.snapshot registry in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, labels, sample) ->
      let base =
        [
          ("metric", Json.Str name);
          ("type", Json.Str (sample_type sample));
          ("labels", labels_obj labels);
        ]
      in
      let value_fields =
        match sample with
        | Registry.Counter_sample v -> [ ("value", Json.Num (float_of_int v)) ]
        | Registry.Gauge_sample v -> [ ("value", Json.Num v) ]
        | Registry.Histogram_sample { hs_sum; hs_count; hs_buckets; hs_exemplars }
          ->
          [
            ("sum", Json.Num hs_sum);
            ("count", Json.Num (float_of_int hs_count));
            ( "buckets",
              Json.Arr
                (List.map
                   (fun (bound, n) ->
                     Json.Obj
                       [
                         ( "le",
                           if bound = infinity then Json.Str "+Inf"
                           else Json.Num bound );
                         ("count", Json.Num (float_of_int n));
                       ])
                   hs_buckets) );
          ]
          @
          (* absent (not empty) when no exemplars were set, keeping
             exemplar-free lines byte-identical to the old format *)
          (if hs_exemplars = [] then []
           else
             [
               ( "exemplars",
                 Json.Arr
                   (List.map
                      (fun (bound, e) ->
                        Json.Obj
                          [
                            ( "le",
                              if bound = infinity then Json.Str "+Inf"
                              else Json.Num bound );
                            ("value", Json.Num e.Registry.ex_value);
                            ("trace_id", Json.Str e.Registry.ex_trace_id);
                            ("at_s", Json.Num e.Registry.ex_at);
                          ])
                      hs_exemplars) );
             ])
      in
      Buffer.add_string buf (Json.to_string (Json.Obj (base @ value_fields)));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let spans_jsonl ctx =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (f : Span.finished) ->
      let obj =
        Json.Obj
          [
            ("span", Json.Str f.f_name);
            ("id", Json.Num (float_of_int f.f_id));
            ( "parent",
              match f.f_parent with
              | None -> Json.Null
              | Some p -> Json.Num (float_of_int p) );
            ("depth", Json.Num (float_of_int f.f_depth));
            ("start_s", Json.Num f.f_start);
            ("stop_s", Json.Num f.f_stop);
            ("duration_ms", Json.Num (Span.duration_ms f));
            ("labels", labels_obj f.f_labels);
          ]
      in
      Buffer.add_string buf (Json.to_string obj);
      Buffer.add_char buf '\n')
    (Span.finished ctx);
  Buffer.contents buf

(* ---- Causal rounds: Chrome/Perfetto trace-event JSON ------------------- *)

let us_of_s s = s *. 1e6

(* One pid per device (first-appearance order, from 1), one tid per trace
   id: Perfetto then renders each device as a process and each round as
   its own track. Every event carries args.trace_id so causal membership
   survives re-sorting in the viewer. [counters] become ph:"C" counter
   tracks under a dedicated pid 0 "counters" process; [phases] become
   instants on the device/round track they belong to, so profiler phase
   attribution and causal spans cross-link by trace id. *)
let perfetto ?(counters = []) ?(phases = []) rounds =
  let pids = Hashtbl.create 8 in
  let pid_events = ref [] in
  let pid_of device =
    match Hashtbl.find_opt pids device with
    | Some pid -> pid
    | None ->
      let pid = Hashtbl.length pids + 1 in
      Hashtbl.replace pids device pid;
      pid_events :=
        Json.Obj
          [
            ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.Num (float_of_int pid));
            ("args", Json.Obj [ ("name", Json.Str ("device:" ^ device)) ]);
          ]
        :: !pid_events;
      pid
  in
  let event_json pid (rd : Trace.round) (ev : Trace.event) =
    let args =
      ("trace_id", Json.Num (float_of_int rd.Trace.rd_trace_id))
      :: ("id", Json.Num (float_of_int ev.Trace.ev_id))
      :: ( "parent",
           match ev.Trace.ev_parent with
           | None -> Json.Null
           | Some p -> Json.Num (float_of_int p) )
      :: List.map (fun (k, v) -> (k, Json.Str v)) ev.Trace.ev_labels
    in
    let base =
      [
        ("name", Json.Str ev.Trace.ev_name);
        ("cat", Json.Str ev.Trace.ev_cat);
        ("pid", Json.Num (float_of_int pid));
        ("tid", Json.Num (float_of_int rd.Trace.rd_trace_id));
        ("ts", Json.Num (us_of_s ev.Trace.ev_start));
        ("args", Json.Obj args);
      ]
    in
    match ev.Trace.ev_kind with
    | Trace.Span_event ->
      Json.Obj
        (base
        @ [
            ("ph", Json.Str "X");
            ("dur", Json.Num (us_of_s (ev.Trace.ev_stop -. ev.Trace.ev_start)));
          ])
    | Trace.Instant_event ->
      Json.Obj (base @ [ ("ph", Json.Str "i"); ("s", Json.Str "t") ])
  in
  let round_events =
    List.concat_map
      (fun (rd : Trace.round) ->
        let pid = pid_of rd.Trace.rd_device in
        List.map (event_json pid rd) rd.Trace.rd_events)
      rounds
  in
  let counter_meta =
    if counters = [] then []
    else
      [
        Json.Obj
          [
            ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.Num 0.0);
            ("args", Json.Obj [ ("name", Json.Str "counters") ]);
          ];
      ]
  in
  let counter_events =
    List.concat_map
      (fun track ->
        let name = Profiler.Track.name track in
        List.map
          (fun (at, v) ->
            Json.Obj
              [
                ("name", Json.Str name);
                ("ph", Json.Str "C");
                ("pid", Json.Num 0.0);
                ("tid", Json.Num 0.0);
                ("ts", Json.Num (us_of_s at));
                ("args", Json.Obj [ ("value", Json.Num v) ]);
              ])
          (Profiler.Track.points track))
      counters
  in
  let phase_events =
    List.map
      (fun (ps : Profiler.phase_sample) ->
        let tid =
          match ps.Profiler.ps_trace_id with None -> 0 | Some id -> id
        in
        Json.Obj
          [
            ("name", Json.Str ("phase." ^ ps.Profiler.ps_phase));
            ("cat", Json.Str "profile");
            ("ph", Json.Str "i");
            ("s", Json.Str "t");
            ("pid", Json.Num (float_of_int (pid_of ps.Profiler.ps_device)));
            ("tid", Json.Num (float_of_int tid));
            ("ts", Json.Num (us_of_s ps.Profiler.ps_at));
            ( "args",
              Json.Obj
                [
                  ( "trace_id",
                    match ps.Profiler.ps_trace_id with
                    | None -> Json.Null
                    | Some id -> Json.Num (float_of_int id) );
                  ("phase", Json.Str ps.Profiler.ps_phase);
                  ("cycles", Json.Num (Int64.to_float ps.Profiler.ps_cycles));
                  ("nj", Json.Num ps.Profiler.ps_nj);
                ] );
          ])
      phases
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr
          (List.rev !pid_events @ counter_meta @ round_events @ phase_events
         @ counter_events) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let perfetto_string ?counters ?phases rounds =
  Json.to_string (perfetto ?counters ?phases rounds)

(* ---- Profiles: JSONL sink ---------------------------------------------- *)

let profile_jsonl (p : Profiler.t) =
  let buf = Buffer.create 1024 in
  let line obj =
    Buffer.add_string buf (Json.to_string obj);
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (frames, cycles, samples) ->
      line
        (Json.Obj
           [
             ("kind", Json.Str "stack");
             ("frames", Json.Arr (List.map (fun f -> Json.Str f) frames));
             ("cycles", Json.Num (Int64.to_float cycles));
             ("samples", Json.Num (float_of_int samples));
           ]))
    (Profiler.Pc.rows p.Profiler.pc);
  List.iter
    (fun (phase, (cycles, nj, n)) ->
      line
        (Json.Obj
           [
             ("kind", Json.Str "phase_total");
             ("phase", Json.Str phase);
             ("cycles", Json.Num (Int64.to_float cycles));
             ("nj", Json.Num nj);
             ("samples", Json.Num (float_of_int n));
           ]))
    (Profiler.Phases.totals p.Profiler.phases);
  List.iter
    (fun (ps : Profiler.phase_sample) ->
      line
        (Json.Obj
           [
             ("kind", Json.Str "phase_sample");
             ("at_s", Json.Num ps.Profiler.ps_at);
             ( "trace_id",
               match ps.Profiler.ps_trace_id with
               | None -> Json.Null
               | Some id -> Json.Num (float_of_int id) );
             ("device", Json.Str ps.Profiler.ps_device);
             ("phase", Json.Str ps.Profiler.ps_phase);
             ("cycles", Json.Num (Int64.to_float ps.Profiler.ps_cycles));
             ("nj", Json.Num ps.Profiler.ps_nj);
           ]))
    (Profiler.Phases.samples p.Profiler.phases);
  Buffer.contents buf

let rounds_jsonl rounds =
  let buf = Buffer.create 1024 in
  List.iter
    (fun rd ->
      Buffer.add_string buf (Json.to_string (Trace.round_to_json rd));
      Buffer.add_char buf '\n')
    rounds;
  Buffer.contents buf

let parse_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec loop lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" then loop (lineno + 1) acc rest
      else begin
        match Json.of_string trimmed with
        | Ok v -> loop (lineno + 1) (v :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
      end
  in
  loop 1 [] lines
