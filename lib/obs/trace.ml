(* Request-scoped causal tracing: one {!round} per attestation round,
   holding a tree of timed events under a single trace id. Recording only
   reads the clock — it never advances simulated time and never draws
   randomness, so enabling tracing cannot perturb protocol transcripts. *)

type kind = Span_event | Instant_event

type event = {
  ev_id : int;
  ev_parent : int option; (* None only for the root span (id 0) *)
  ev_name : string;
  ev_cat : string;
  ev_kind : kind;
  ev_start : float;
  ev_stop : float; (* = ev_start for instants *)
  ev_labels : Registry.labels;
}

type round = {
  rd_trace_id : int;
  rd_device : string;
  rd_start : float;
  rd_stop : float;
  rd_verdict : string;
  rd_attempts : int;
  rd_dropped : int; (* events discarded past max_events *)
  rd_events : event list; (* in start order; root span first *)
}

type span = { s_id : int }

type open_span = {
  os_id : int;
  os_parent : int option;
  os_name : string;
  os_cat : string;
  os_start : float;
  os_labels : Registry.labels;
}

type open_round = {
  or_trace : int;
  or_start : float;
  mutable or_events : event list; (* finished events, newest first *)
  mutable or_stack : open_span list; (* innermost first *)
  mutable or_next_id : int;
  mutable or_count : int; (* events recorded (finished + open) *)
  mutable or_dropped : int;
}

type t = {
  device : string;
  clock : unit -> float;
  max_events : int;
  recorder : round Recorder.t;
  mutable next_trace : int;
  mutable cur : open_round option;
}

module M = struct
  let rounds = Registry.Counter.get "ra_trace_rounds_total"
  let events = Registry.Counter.get "ra_trace_events_total"
  let dropped = Registry.Counter.get "ra_trace_dropped_events_total"
end

let create ?(capacity = 64) ?(max_events = 4096) ~device ~clock () =
  if max_events < 2 then invalid_arg "Ra_obs.Trace.create: max_events must be >= 2";
  {
    device;
    clock;
    max_events;
    recorder = Recorder.create ~capacity;
    next_trace = 0;
    cur = None;
  }

let device t = t.device
let recorder t = t.recorder
let rounds t = Recorder.to_list t.recorder
let round_open t = t.cur <> None
let root_span_name = "attest.round"

let sort_events evs =
  List.stable_sort
    (fun a b ->
      match compare a.ev_start b.ev_start with
      | 0 -> compare a.ev_id b.ev_id
      | c -> c)
    evs

(* Close any spans left open (abandoned rounds), seal and record. *)
let seal t (r : open_round) ~verdict ~attempts =
  let stop = t.clock () in
  List.iter
    (fun os ->
      r.or_events <-
        {
          ev_id = os.os_id;
          ev_parent = os.os_parent;
          ev_name = os.os_name;
          ev_cat = os.os_cat;
          ev_kind = Span_event;
          ev_start = os.os_start;
          ev_stop = stop;
          ev_labels = os.os_labels;
        }
        :: r.or_events)
    r.or_stack;
  r.or_stack <- [];
  let round =
    {
      rd_trace_id = r.or_trace;
      rd_device = t.device;
      rd_start = r.or_start;
      rd_stop = stop;
      rd_verdict = verdict;
      rd_attempts = attempts;
      rd_dropped = r.or_dropped;
      rd_events = sort_events (List.rev r.or_events);
    }
  in
  Recorder.push t.recorder round;
  Registry.Counter.inc M.rounds;
  if r.or_dropped > 0 then Registry.Counter.inc ~by:r.or_dropped M.dropped

let begin_round t =
  (match t.cur with
  | Some r -> seal t r ~verdict:"abandoned" ~attempts:0
  | None -> ());
  let start = t.clock () in
  let trace_id = t.next_trace in
  t.next_trace <- t.next_trace + 1;
  let root =
    {
      os_id = 0;
      os_parent = None;
      os_name = root_span_name;
      os_cat = "retry";
      os_start = start;
      os_labels = [];
    }
  in
  t.cur <-
    Some
      {
        or_trace = trace_id;
        or_start = start;
        or_events = [];
        or_stack = [ root ];
        or_next_id = 1;
        or_count = 1;
        or_dropped = 0;
      };
  trace_id

let current_trace_id t = Option.map (fun r -> r.or_trace) t.cur

(* A dummy id for dropped/out-of-round spans: finish_span ignores it. *)
let null_span = { s_id = -1 }

let span t ?(cat = "trace") ?(labels = []) name =
  match t.cur with
  | None -> null_span
  | Some r ->
    if r.or_count >= t.max_events then begin
      r.or_dropped <- r.or_dropped + 1;
      null_span
    end
    else begin
      let parent = match r.or_stack with [] -> None | os :: _ -> Some os.os_id in
      let os =
        {
          os_id = r.or_next_id;
          os_parent = parent;
          os_name = name;
          os_cat = cat;
          os_start = t.clock ();
          os_labels = labels;
        }
      in
      r.or_next_id <- r.or_next_id + 1;
      r.or_count <- r.or_count + 1;
      r.or_stack <- os :: r.or_stack;
      Registry.Counter.inc M.events;
      { s_id = os.os_id }
    end

let finish_span t ?(labels = []) sp =
  if sp.s_id >= 0 then
    match t.cur with
    | None -> ()
    | Some r ->
      let stop = t.clock () in
      let rec split acc = function
        | [] -> None
        | os :: rest when os.os_id = sp.s_id -> Some (os, List.rev_append acc rest)
        | os :: rest -> split (os :: acc) rest
      in
      (match split [] r.or_stack with
      | None -> ()
      | Some (os, rest) ->
        r.or_stack <- rest;
        r.or_events <-
          {
            ev_id = os.os_id;
            ev_parent = os.os_parent;
            ev_name = os.os_name;
            ev_cat = os.os_cat;
            ev_kind = Span_event;
            ev_start = os.os_start;
            ev_stop = stop;
            ev_labels = os.os_labels @ labels;
          }
          :: r.or_events)

let with_span t ?cat ?labels name f =
  let sp = span t ?cat ?labels name in
  match f () with
  | v ->
    finish_span t sp;
    v
  | exception e ->
    finish_span t ~labels:[ ("outcome", "raised") ] sp;
    raise e

let instant t ?(cat = "trace") ?(labels = []) name =
  match t.cur with
  | None -> ()
  | Some r ->
    if r.or_count >= t.max_events then r.or_dropped <- r.or_dropped + 1
    else begin
      let now = t.clock () in
      let parent = match r.or_stack with [] -> None | os :: _ -> Some os.os_id in
      r.or_events <-
        {
          ev_id = r.or_next_id;
          ev_parent = parent;
          ev_name = name;
          ev_cat = cat;
          ev_kind = Instant_event;
          ev_start = now;
          ev_stop = now;
          ev_labels = labels;
        }
        :: r.or_events;
      r.or_next_id <- r.or_next_id + 1;
      r.or_count <- r.or_count + 1;
      Registry.Counter.inc M.events
    end

let end_round t ~verdict ~attempts =
  match t.cur with
  | None -> ()
  | Some r ->
    t.cur <- None;
    seal t r ~verdict ~attempts

(* ---- JSON round-trip -------------------------------------------------- *)

let kind_label = function Span_event -> "span" | Instant_event -> "instant"
let kind_of_label = function
  | "span" -> Some Span_event
  | "instant" -> Some Instant_event
  | _ -> None

let labels_to_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let event_to_json ev =
  Json.Obj
    [
      ("id", Json.Num (float_of_int ev.ev_id));
      ( "parent",
        match ev.ev_parent with
        | None -> Json.Null
        | Some p -> Json.Num (float_of_int p) );
      ("name", Json.Str ev.ev_name);
      ("cat", Json.Str ev.ev_cat);
      ("kind", Json.Str (kind_label ev.ev_kind));
      ("start", Json.Num ev.ev_start);
      ("stop", Json.Num ev.ev_stop);
      ("labels", labels_to_json ev.ev_labels);
    ]

let round_to_json rd =
  Json.Obj
    [
      ("trace_id", Json.Num (float_of_int rd.rd_trace_id));
      ("device", Json.Str rd.rd_device);
      ("start", Json.Num rd.rd_start);
      ("stop", Json.Num rd.rd_stop);
      ("verdict", Json.Str rd.rd_verdict);
      ("attempts", Json.Num (float_of_int rd.rd_attempts));
      ("dropped", Json.Num (float_of_int rd.rd_dropped));
      ("events", Json.Arr (List.map event_to_json rd.rd_events));
    ]

let ( let* ) = Option.bind

let labels_of_json j =
  match j with
  | Some (Json.Obj fields) ->
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        match v with Json.Str s -> Some ((k, s) :: acc) | _ -> None)
      (Some []) fields
    |> Option.map List.rev
  | _ -> None

let event_of_json j =
  let m k = Json.member k j in
  let* id = Option.bind (m "id") Json.as_float in
  let* parent =
    match m "parent" with
    | Some Json.Null -> Some None
    | Some (Json.Num p) -> Some (Some (int_of_float p))
    | _ -> None
  in
  let* name = Option.bind (m "name") Json.as_string in
  let* cat = Option.bind (m "cat") Json.as_string in
  let* kind = Option.bind (Option.bind (m "kind") Json.as_string) kind_of_label in
  let* start = Option.bind (m "start") Json.as_float in
  let* stop = Option.bind (m "stop") Json.as_float in
  let* labels = labels_of_json (m "labels") in
  Some
    {
      ev_id = int_of_float id;
      ev_parent = parent;
      ev_name = name;
      ev_cat = cat;
      ev_kind = kind;
      ev_start = start;
      ev_stop = stop;
      ev_labels = labels;
    }

let round_of_json j =
  let m k = Json.member k j in
  let* trace_id = Option.bind (m "trace_id") Json.as_float in
  let* device = Option.bind (m "device") Json.as_string in
  let* start = Option.bind (m "start") Json.as_float in
  let* stop = Option.bind (m "stop") Json.as_float in
  let* verdict = Option.bind (m "verdict") Json.as_string in
  let* attempts = Option.bind (m "attempts") Json.as_float in
  let* dropped = Option.bind (m "dropped") Json.as_float in
  let* events =
    match m "events" with
    | Some (Json.Arr evs) ->
      List.fold_left
        (fun acc ev ->
          let* acc = acc in
          let* ev = event_of_json ev in
          Some (ev :: acc))
        (Some []) evs
      |> Option.map List.rev
    | _ -> None
  in
  Some
    {
      rd_trace_id = int_of_float trace_id;
      rd_device = device;
      rd_start = start;
      rd_stop = stop;
      rd_verdict = verdict;
      rd_attempts = int_of_float attempts;
      rd_dropped = int_of_float dropped;
      rd_events = events;
    }
