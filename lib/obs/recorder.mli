(** Bounded flight-recorder ring buffer.

    A fixed-capacity FIFO that overwrites its oldest entry once full —
    the "flight recorder" discipline: memory stays bounded no matter how
    long a device runs, and the most recent history is always retained.
    Not thread-safe; each recorder belongs to one device/session. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Entries currently held, [<= capacity]. *)

val evicted : 'a t -> int
(** Total entries overwritten since creation (or the last {!clear}). *)

val push : 'a t -> 'a -> unit
(** Append; evicts the oldest entry when full. *)

val to_list : 'a t -> 'a list
(** Oldest first. *)

val latest : 'a t -> 'a option
(** Most recently pushed entry. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Oldest first. *)

val clear : 'a t -> unit
(** Drop all entries and zero the eviction count. *)
