(** A dependency-free JSON value type with printer and parser — just
    enough for the JSONL metric/span sinks and their round-trip tests.
    Non-finite numbers print as [null] (JSON has no Inf/NaN); histogram
    exporters encode the overflow bound as the string ["+Inf"]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> (t, string) result
(** [Error msg] carries a position-annotated description. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)

val as_float : t -> float option
val as_string : t -> string option
