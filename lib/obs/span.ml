type finished = {
  f_name : string;
  f_labels : Registry.labels;
  f_id : int;
  f_parent : int option;
  f_parent_name : string option;
  f_depth : int;
  f_start : float;
  f_stop : float;
}

type span = {
  o_id : int;
  o_name : string;
  o_labels : Registry.labels;
  o_parent : int option;
  o_parent_name : string option;
  o_depth : int;
  o_start : float;
}

type t = {
  clock : unit -> float;
  registry : Registry.t option;
  histogram : string;
  mutable callback : (finished -> unit) option;
  mutable stack : span list; (* innermost first *)
  mutable log : finished list; (* newest first *)
  mutable next_id : int;
}

let make registry ~histogram ~clock =
  { clock; registry; histogram; callback = None; stack = []; log = []; next_id = 0 }

let create ?(registry = Registry.default) ?(histogram = "ra_span_ms") ~clock () =
  make (Some registry) ~histogram ~clock

let no_registry ~clock () = make None ~histogram:"ra_span_ms" ~clock

let on_finish t cb = t.callback <- Some cb

let add_on_finish t cb =
  match t.callback with
  | None -> t.callback <- Some cb
  | Some prev ->
    t.callback <-
      Some
        (fun f ->
          prev f;
          cb f)

let enter t ?(labels = []) name =
  let parent = match t.stack with [] -> None | p :: _ -> Some p in
  let sp =
    {
      o_id = t.next_id;
      o_name = name;
      o_labels = labels;
      o_parent = Option.map (fun p -> p.o_id) parent;
      o_parent_name = Option.map (fun p -> p.o_name) parent;
      o_depth = (match parent with None -> 0 | Some p -> p.o_depth + 1);
      o_start = t.clock ();
    }
  in
  t.next_id <- t.next_id + 1;
  t.stack <- sp :: t.stack;
  sp

let exit t ?(labels = []) sp =
  let stop = t.clock () in
  t.stack <- List.filter (fun o -> o.o_id <> sp.o_id) t.stack;
  let f =
    {
      f_name = sp.o_name;
      f_labels = sp.o_labels @ labels;
      f_id = sp.o_id;
      f_parent = sp.o_parent;
      f_parent_name = sp.o_parent_name;
      f_depth = sp.o_depth;
      f_start = sp.o_start;
      f_stop = stop;
    }
  in
  t.log <- f :: t.log;
  (match t.registry with
  | None -> ()
  | Some registry ->
    let h =
      Registry.Histogram.get ~registry ~labels:[ ("span", sp.o_name) ] t.histogram
    in
    Registry.Histogram.observe h ((stop -. sp.o_start) *. 1000.0));
  match t.callback with None -> () | Some cb -> cb f

let with_span t ?labels name f =
  let sp = enter t ?labels name in
  match f () with
  | v ->
    exit t sp;
    v
  | exception e ->
    exit t ~labels:[ ("outcome", "raised") ] sp;
    raise e

let finished t = List.rev t.log
let open_count t = List.length t.stack
let duration_ms f = (f.f_stop -. f.f_start) *. 1000.0
