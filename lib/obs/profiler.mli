(** Deterministic cycle-exact profiles: PC-sample accumulators, phase
    attribution, and counter tracks.

    This module is pure bookkeeping over strings and integers — the ISA
    sampler that feeds {!Pc} lives in [Ra_isa.Sampler], and the phase
    attribution that feeds {!Phases} lives in [Ra_core.Session]. Keeping
    the accumulators here means a fleet of per-shard profiles can be
    bulk-merged ([Arena]-style, in shard order) without the merge code
    knowing anything about devices.

    Everything is deterministic: samples are taken every N {e cycles}
    (never wall time), accumulators iterate in sorted key order, and
    [absorb] is a plain sum — so a merged fleet profile is byte-identical
    at every shard count. *)

val clean_frame : string -> string
(** Sanitize a frame name for the folded-stack format, where [';'] and
    [' '] are structural: [';'] becomes [','], [' '] becomes ['_'], and
    control bytes (including newlines) become ['?']. Empty frames become
    ["?"]. Idempotent. *)

(** {1 PC-sample accumulator} *)

module Pc : sig
  type t
  (** Folded call stacks -> (samples, cycles). Not domain-safe; use one
      per shard and merge with {!absorb}. *)

  val create : unit -> t
  val clear : t -> unit

  val add : t -> frames:string list -> cycles:int64 -> unit
  (** Record one sample: [frames] is root-first (the folded-stack
      order); [cycles] is the whole-cycle weight attributed to it.
      Frames are sanitized with {!clean_frame} on entry. *)

  val absorb : t -> t -> unit
  (** [absorb dst src] adds every stack of [src] into [dst]. [src] is
      left untouched. Commutative up to the sorted export order, so
      merging per-shard accumulators in shard order is byte-identical
      to merging the same members in any sharding. *)

  val samples : t -> int
  val cycles : t -> int64

  val rows : t -> (string list * int64 * int) list
  (** [(frames, cycles, samples)] sorted by folded key — deterministic. *)

  val folded : t -> string
  (** flamegraph.pl-compatible folded stacks: one
      ["frame;frame;frame <cycles>"] line per stack, sorted. *)

  val cycles_matching : t -> f:(string -> bool) -> int64
  (** Total cycles of stacks whose {e leaf} frame satisfies [f] — used
      to compute the symbolized fraction of a profile. *)

  (** {2 Hot-path bump handles}

      [handle] resolves a stack to its accumulator cell once (frame
      sanitization, folded key, hash lookup), so a sampler that stays
      on the same stack can {!bump} per sample with two field writes.
      A handle that is never bumped stays invisible to {!rows},
      {!folded} and {!absorb}. *)

  type handle

  val handle : t -> frames:string list -> handle

  val bump : handle -> cycles:int -> unit
  (** [cycles] is a native [int] so the per-sample bump is two unboxed
      field writes — no [int64] allocation on the sampling hot path. *)
end

(** {1 Phase attribution} *)

type phase_sample = {
  ps_at : float;  (** simulated time (seconds) when the phase closed *)
  ps_trace_id : int option;  (** causal round trace id, when tracing is on *)
  ps_device : string;
  ps_phase : string;  (** "auth" | "freshness" | "mac" | "wait" | "radio" *)
  ps_cycles : int64;  (** prover CPU cycles attributed to the phase *)
  ps_nj : float;  (** energy attributed to the phase, nanojoules *)
}

module Phases : sig
  type t
  (** Per-phase running totals plus a bounded ring of recent samples
      (the ring is a {!Recorder}, so wraparound drops oldest-first and
      counts evictions). *)

  val create : ?capacity:int -> unit -> t
  (** [capacity] bounds the sample ring (default 1024). *)

  val record : t -> phase_sample -> unit
  val samples : t -> phase_sample list

  val length : t -> int
  (** Samples currently held in the ring, without materializing them. *)

  val dropped : t -> int

  val totals : t -> (string * (int64 * float * int)) list
  (** [phase -> (cycles, nanojoules, samples)], sorted by phase name. *)

  val absorb : t -> t -> unit
  (** Adds [src] totals into [dst] and appends [src]'s sample ring in
      order (oldest first). *)
end

(** {1 Counter tracks} *)

module Track : sig
  type t
  (** A named time series of [(sim_time, value)] points, for Perfetto
      counter tracks ([ph:"C"]). *)

  val create : string -> t
  val name : t -> string
  val push : t -> at:float -> float -> unit
  val points : t -> (float * float) list
  (** Chronological (stable-sorted by time, insertion order preserved
      among equal timestamps). *)

  val merge : name:string -> t list -> t
  (** Concatenate in list order, then stable-sort by timestamp — so
      per-shard tracks merged in shard order yield the same series at
      every shard count. *)
end

(** {1 Whole profile} *)

type t = { pc : Pc.t; phases : Phases.t }

val create : ?capacity:int -> unit -> t
val absorb : t -> t -> unit
val folded : t -> string
