type 'a t = {
  slots : 'a option array;
  mutable head : int; (* next write position *)
  mutable len : int;
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ra_obs.Recorder.create: capacity must be >= 1";
  { slots = Array.make capacity None; head = 0; len = 0; evicted = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let evicted t = t.evicted

let push t x =
  let cap = Array.length t.slots in
  if t.len = cap then t.evicted <- t.evicted + 1;
  t.slots.(t.head) <- Some x;
  t.head <- (t.head + 1) mod cap;
  if t.len < cap then t.len <- t.len + 1

let to_list t =
  let cap = Array.length t.slots in
  let first = (t.head - t.len + cap * 2) mod cap in
  List.init t.len (fun i ->
      match t.slots.((first + i) mod cap) with
      | Some x -> x
      | None -> assert false)

let latest t =
  if t.len = 0 then None else t.slots.((t.head - 1 + Array.length t.slots) mod Array.length t.slots)

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.len <- 0;
  t.evicted <- 0

let iter t f = List.iter f (to_list t)
