type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf n =
  if not (Float.is_finite n) then Buffer.add_string buf "null"
  else if Float.is_integer n && Float.abs n < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" n)
  else Buffer.add_string buf (Printf.sprintf "%.17g" n)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num n -> add_num buf n
  | Str s -> add_escaped buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- parsing: recursive descent ---- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> error (Printf.sprintf "expected %C, got %C" c got)
    | None -> error (Printf.sprintf "expected %C, got end of input" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error ("invalid literal, expected " ^ word)
  in
  let utf8_of_code buf code =
    (* encode a Unicode scalar value as UTF-8 *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then error "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> utf8_of_code buf code
          | None -> error "bad \\u escape")
        | Some c -> error (Printf.sprintf "bad escape \\%C" c)
        | None -> error "unterminated escape");
        loop ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let slice = String.sub s start (!pos - start) in
    match float_of_string_opt slice with
    | Some f -> Num f
    | None -> error ("bad number " ^ slice)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']' in array"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> error "expected ',' or '}' in object"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

let as_float = function Num f -> Some f | _ -> None
let as_string = function Str s -> Some s | _ -> None
