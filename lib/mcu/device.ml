type clock_impl =
  | Clock_none
  | Clock_hw of { width : int; divider_log2 : int }
  | Clock_sw of { lsb_width : int; divider_log2 : int }

type key_location = Key_in_rom | Key_in_flash

let region_boot = "rom_boot"
let region_attest = "rom_attest"
let region_clock = "rom_clock"
let region_app = "flash_app"
let region_untrusted = "untrusted"

let timer_vector = 1
let code_clock_entry = 0x003000

(* Fixed memory map; sizes chosen so the attested RAM matches the paper's
   512 KB Siskiyou Peak figure by default. *)
let base_rom_boot = 0x000000
let base_rom_attest = 0x001000
let base_rom_clock = 0x003000
let base_rom_key = 0x004000
let base_flash_app = 0x010000
let base_nvram = 0x020000
let base_ram = 0x100000
let base_idt = 0x800000
let base_irq_ctrl = 0x800100
let base_clock_msb = 0x800200
let base_actuator = 0x800300
let base_anchor_scratch = 0x800400

type genesis = {
  g_ram_size : int;
  g_mpu_capacity : int;
  g_clock_impl : clock_impl;
  g_key_location : key_location;
  g_key : string;
  g_attest_app_flash : bool;
}

type t = {
  memory : Memory.t;
  cpu : Cpu.t;
  mpu : Ea_mpu.t;
  interrupt : Interrupt.t;
  energy : Energy.t;
  clock : Clock.t option;
  clock_impl : clock_impl;
  key_addr : int;
  key_len : int;
  ram_size : int;
  attest_app_flash : bool;
  genesis : genesis;
}

let rec create ?(ram_size = 512 * 1024) ?(mpu_capacity = 8) ?(clock_impl = Clock_none)
    ?(key_location = Key_in_rom) ?energy ?(rom_images = []) ?(attest_app_flash = false)
    ~key () =
  if String.length key = 0 || String.length key > 64 then
    invalid_arg "Device.create: key must be 1..64 bytes";
  let open Region in
  let regions =
    [
      make ~name:region_boot ~base:base_rom_boot ~size:4096 ~kind:Rom;
      make ~name:region_attest ~base:base_rom_attest ~size:8192 ~kind:Rom;
      make ~name:region_clock ~base:base_rom_clock ~size:1024 ~kind:Rom;
      make ~name:"rom_key" ~base:base_rom_key ~size:64 ~kind:Rom;
      make ~name:region_app ~base:base_flash_app ~size:65536 ~kind:Flash;
      make ~name:"nvram" ~base:base_nvram ~size:256 ~kind:Flash;
      make ~name:"ram" ~base:base_ram ~size:ram_size ~kind:Ram;
      make ~name:"idt" ~base:base_idt ~size:256 ~kind:Ram;
      make ~name:"irq_ctrl" ~base:base_irq_ctrl ~size:16 ~kind:Mmio;
      make ~name:"clock_msb" ~base:base_clock_msb ~size:8 ~kind:Ram;
      make ~name:"actuator" ~base:base_actuator ~size:16 ~kind:Mmio;
      make ~name:"anchor_scratch" ~base:base_anchor_scratch ~size:512 ~kind:Ram;
    ]
  in
  let memory = Memory.create regions in
  let mpu = Ea_mpu.create ~capacity:mpu_capacity in
  let cpu = Cpu.create memory mpu ~clock_hz:Timing.siskiyou_hz in
  let interrupt =
    Interrupt.create cpu ~idt_base:base_idt ~vectors:64 ~ctrl_addr:base_irq_ctrl
  in
  let energy =
    match energy with Some e -> e | None -> Energy.create ()
  in
  Cpu.on_advance cpu (fun _ n kind ->
      match kind with
      | Cpu.Work -> Energy.consume_cycles energy n
      | Cpu.Idle ->
        Energy.consume_sleep energy
          ~seconds:(Int64.to_float n /. float_of_int Timing.siskiyou_hz));
  (* provision the key, then seal ROM *)
  let key_addr, key_len =
    match key_location with
    | Key_in_rom -> (base_rom_key, String.length key)
    | Key_in_flash -> (base_nvram + 0x80, String.length key)
  in
  Memory.write_bytes memory key_addr key;
  List.iter
    (fun (region_name, code) ->
      let r = Memory.region_named memory region_name in
      if String.length code > r.Region.size then
        invalid_arg
          (Printf.sprintf "Device.create: image for %s exceeds region" region_name);
      Memory.write_bytes memory r.Region.base code)
    rom_images;
  Memory.seal_rom memory;
  let clock =
    match clock_impl with
    | Clock_none -> None
    | Clock_hw { width; divider_log2 } ->
      Some (Clock.create_hw_counter cpu ~width ~divider_log2)
    | Clock_sw { lsb_width; divider_log2 } ->
      Some
        (Clock.create_sw_clock cpu interrupt ~lsb_width ~divider_log2
           ~msb_addr:base_clock_msb ~timer_vector ~handler_entry:code_clock_entry
           ~handler_region:region_clock)
  in
  {
    memory;
    cpu;
    mpu;
    interrupt;
    energy;
    clock;
    clock_impl;
    key_addr;
    key_len;
    ram_size;
    attest_app_flash;
    genesis =
      {
        g_ram_size = ram_size;
        g_mpu_capacity = mpu_capacity;
        g_clock_impl = clock_impl;
        g_key_location = key_location;
        g_key = key;
        g_attest_app_flash = attest_app_flash;
      };
  }

(* Reboot: non-volatile regions (ROM + flash) carry over byte-exact; the
   battery object is shared (charge does not reset); everything else is
   rebuilt from the genesis configuration. *)
and power_cycle t =
  let g = t.genesis in
  let fresh =
    create ~ram_size:g.g_ram_size ~mpu_capacity:g.g_mpu_capacity
      ~clock_impl:g.g_clock_impl ~key_location:g.g_key_location ~energy:t.energy
      ~attest_app_flash:g.g_attest_app_flash ~key:g.g_key ()
  in
  (* the fresh ROM is sealed, so copy non-volatile contents via a
     transiently unsealed memory image: rebuild region by region *)
  List.iter
    (fun r ->
      match r.Region.kind with
      | Region.Rom | Region.Flash ->
        let contents = Memory.read_bytes t.memory r.Region.base r.Region.size in
        Memory.copy_raw (memory_of fresh) ~base:r.Region.base contents
      | Region.Ram | Region.Mmio -> ())
    (Memory.regions t.memory);
  fresh

and memory_of t = t.memory

let memory t = t.memory
let cpu t = t.cpu
let mpu t = t.mpu
let interrupt t = t.interrupt
let energy t = t.energy
let clock t = t.clock
let clock_impl t = t.clock_impl
let key_addr t = t.key_addr
let key_len t = t.key_len
let counter_addr _ = base_nvram
let clock_msb_addr _ = base_clock_msb
let idt_base _ = base_idt
let idt_size t = Interrupt.idt_size t.interrupt
let irq_ctrl_addr _ = base_irq_ctrl
let attested_base _ = base_ram
let attested_len t = t.ram_size

let attested_ranges t =
  (base_ram, t.ram_size)
  :: (if t.attest_app_flash then [ (base_flash_app, 65536) ] else [])

let attested_total_len t =
  List.fold_left (fun acc (_, len) -> acc + len) 0 (attested_ranges t)

let rule_protect_key t =
  {
    Ea_mpu.rule_name = "K_attest";
    data_base = t.key_addr;
    data_size = t.key_len;
    read_by = Ea_mpu.Code_in [ region_attest ];
    write_by = Ea_mpu.Nobody;
  }

let rule_protect_counter _ =
  {
    Ea_mpu.rule_name = "counter_R";
    data_base = base_nvram;
    data_size = 8;
    read_by = Ea_mpu.Anyone;
    write_by = Ea_mpu.Code_in [ region_attest ];
  }

let rule_protect_clock_msb _ =
  {
    Ea_mpu.rule_name = "Clock_MSB";
    data_base = base_clock_msb;
    data_size = 8;
    read_by = Ea_mpu.Anyone;
    write_by = Ea_mpu.Code_in [ region_clock ];
  }

let rule_protect_idt t =
  {
    Ea_mpu.rule_name = "IDT";
    data_base = base_idt;
    data_size = idt_size t;
    read_by = Ea_mpu.Anyone;
    write_by = Ea_mpu.Nobody;
  }

let actuator_addr _ = base_actuator
let anchor_scratch_addr _ = base_anchor_scratch

let rule_protect_actuator _ =
  {
    Ea_mpu.rule_name = "actuator";
    data_base = base_actuator;
    data_size = 16;
    read_by = Ea_mpu.Anyone;
    write_by = Ea_mpu.Code_in [ region_app ];
  }

let rule_protect_irq_ctrl _ =
  {
    Ea_mpu.rule_name = "IRQ_ctrl";
    data_base = base_irq_ctrl;
    data_size = 16;
    read_by = Ea_mpu.Anyone;
    write_by = Ea_mpu.Nobody;
  }

let fill_ram_deterministic t ~seed =
  let prng = Ra_crypto.Prng.create seed in
  (* chunked writes keep allocation bounded for large RAM sizes *)
  let chunk = 4096 in
  let rec loop off =
    if off < t.ram_size then begin
      let n = min chunk (t.ram_size - off) in
      Memory.write_bytes t.memory (base_ram + off) (Ra_crypto.Prng.bytes prng n);
      loop (off + n)
    end
  in
  loop 0

let idle t ~seconds = Cpu.idle_seconds t.cpu seconds

let observe_gauges ?registry ?(labels = []) t =
  let set name v =
    Ra_obs.Registry.Gauge.set (Ra_obs.Registry.Gauge.get ?registry ~labels name) v
  in
  set "ra_device_cycles" (Int64.to_float (Cpu.cycles t.cpu));
  set "ra_device_work_cycles" (Int64.to_float (Cpu.work_cycles t.cpu));
  set "ra_device_energy_consumed_joules" (Energy.consumed_joules t.energy);
  set "ra_device_energy_remaining_joules" (Energy.remaining_joules t.energy);
  set "ra_device_faults" (float_of_int (List.length (Cpu.faults t.cpu)))
