type stats = {
  delivered : int;
  lost_no_handler : int;
  suppressed_disabled : int;
}

type registered = { code_region : string; handler : unit -> unit }

(* One atomic add per IRQ; handles created at module init. *)
module M = struct
  let outcome o = Ra_obs.Registry.Counter.get ~labels:[ ("outcome", o) ] "ra_interrupts_total"
  let delivered = outcome "delivered"
  let lost_no_handler = outcome "lost_no_handler"
  let suppressed_disabled = outcome "suppressed_disabled"
end

type t = {
  cpu : Cpu.t;
  idt_base : int;
  vectors : int;
  ctrl_addr : int;
  registry : (int, registered) Hashtbl.t;
  mutable stats : stats;
}

let create cpu ~idt_base ~vectors ~ctrl_addr =
  if vectors <= 0 then invalid_arg "Interrupt.create: vectors must be positive";
  {
    cpu;
    idt_base;
    vectors;
    ctrl_addr;
    registry = Hashtbl.create 8;
    stats = { delivered = 0; lost_no_handler = 0; suppressed_disabled = 0 };
  }

let idt_base t = t.idt_base
let idt_size t = 4 * t.vectors
let ctrl_addr t = t.ctrl_addr

let register_handler t ~entry_addr ~code_region ~handler =
  Hashtbl.replace t.registry entry_addr { code_region; handler }

let check_vector t vector =
  if vector < 0 || vector >= t.vectors then invalid_arg "Interrupt: bad vector"

let set_vector_raw t ~vector ~entry_addr =
  check_vector t vector;
  Memory.write_u32 (Cpu.memory t.cpu) (t.idt_base + (4 * vector)) entry_addr

let set_vector t ~vector ~entry_addr =
  check_vector t vector;
  Cpu.store_u32 t.cpu (t.idt_base + (4 * vector)) entry_addr

let vector_entry t ~vector =
  check_vector t vector;
  Memory.read_u32 (Cpu.memory t.cpu) (t.idt_base + (4 * vector))

let enable_all_raw t = Memory.write_byte (Cpu.memory t.cpu) t.ctrl_addr 1
let set_enabled t on = Cpu.store_byte t.cpu t.ctrl_addr (if on then 1 else 0)
let enabled t = Memory.read_byte (Cpu.memory t.cpu) t.ctrl_addr land 1 = 1

let raise_irq t ~vector =
  check_vector t vector;
  if not (enabled t) then begin
    t.stats <- { t.stats with suppressed_disabled = t.stats.suppressed_disabled + 1 };
    Ra_obs.Registry.Counter.inc M.suppressed_disabled
  end
  else begin
    let entry = vector_entry t ~vector in
    match Hashtbl.find_opt t.registry entry with
    | None ->
      t.stats <- { t.stats with lost_no_handler = t.stats.lost_no_handler + 1 };
      Ra_obs.Registry.Counter.inc M.lost_no_handler
    | Some { code_region; handler } ->
      t.stats <- { t.stats with delivered = t.stats.delivered + 1 };
      Ra_obs.Registry.Counter.inc M.delivered;
      Cpu.with_context t.cpu code_region handler
  end

let stats t = t.stats
