type fault = {
  fault_code : string;
  fault_addr : int;
  fault_mode : Ea_mpu.mode;
}

exception Protection_fault of fault

type advance = Work | Idle

type t = {
  memory : Memory.t;
  mpu : Ea_mpu.t;
  clock_hz : int;
  mutable cycles : int64;
  mutable work_cycles : int64;
  mutable context : string;
  mutable faults : fault list;
  mutable listeners : (t -> int64 -> advance -> unit) list;
}

let create memory mpu ~clock_hz =
  if clock_hz <= 0 then invalid_arg "Cpu.create: clock_hz must be positive";
  {
    memory;
    mpu;
    clock_hz;
    cycles = 0L;
    work_cycles = 0L;
    context = "untrusted";
    faults = [];
    listeners = [];
  }

let memory t = t.memory
let mpu t = t.mpu
let clock_hz t = t.clock_hz
let cycles t = t.cycles
let work_cycles t = t.work_cycles

let on_advance t f = t.listeners <- f :: t.listeners

let advance t n kind =
  if Int64.compare n 0L < 0 then invalid_arg "Cpu: negative cycle advance";
  t.cycles <- Int64.add t.cycles n;
  (match kind with Work -> t.work_cycles <- Int64.add t.work_cycles n | Idle -> ());
  List.iter (fun f -> f t n kind) t.listeners

let consume_cycles t n = advance t n Work
let idle_cycles t n = advance t n Idle

let idle_seconds t s =
  if s < 0.0 then invalid_arg "Cpu.idle_seconds: negative";
  idle_cycles t (Int64.of_float (s *. float_of_int t.clock_hz))

let elapsed_seconds t = Int64.to_float t.cycles /. float_of_int t.clock_hz

let context t = t.context

let with_context t ctx f =
  let prev = t.context in
  t.context <- ctx;
  Fun.protect ~finally:(fun () -> t.context <- prev) f

let faults t = t.faults

let deny t addr mode =
  let fault = { fault_code = t.context; fault_addr = addr; fault_mode = mode } in
  t.faults <- fault :: t.faults;
  Ra_obs.Registry.Counter.inc
    (Ra_obs.Registry.Counter.get
       ~labels:[ ("context", t.context) ]
       "ra_mpu_violations_total");
  raise (Protection_fault fault)

let guard t addr len mode =
  if not (Ea_mpu.check_range t.mpu ~code:t.context ~addr ~len mode) then deny t addr mode

let load_byte t addr =
  guard t addr 1 Ea_mpu.Read;
  Memory.read_byte t.memory addr

let store_byte t addr v =
  guard t addr 1 Ea_mpu.Write;
  Memory.write_byte t.memory addr v

let load_bytes t addr len =
  if len = 0 then ""
  else begin
    guard t addr len Ea_mpu.Read;
    Memory.read_bytes t.memory addr len
  end

let store_bytes t addr s =
  if String.length s > 0 then begin
    guard t addr (String.length s) Ea_mpu.Write;
    Memory.write_bytes t.memory addr s
  end

let load_u32 t addr =
  guard t addr 4 Ea_mpu.Read;
  Memory.read_u32 t.memory addr

let store_u32 t addr v =
  guard t addr 4 Ea_mpu.Write;
  Memory.write_u32 t.memory addr v

let load_u64 t addr =
  guard t addr 8 Ea_mpu.Read;
  Memory.read_u64 t.memory addr

let store_u64 t addr v =
  guard t addr 8 Ea_mpu.Write;
  Memory.write_u64 t.memory addr v
