exception Bus_fault of string

type t = {
  regions : Region.t list;
  store : (string, Bytes.t) Hashtbl.t; (* region name -> backing bytes *)
  mutable rom_sealed : bool;
}

let create regions =
  let rec check = function
    | [] -> ()
    | r :: rest ->
      List.iter
        (fun r' ->
          if Region.overlaps r r' then
            invalid_arg
              (Format.asprintf "Memory.create: %a overlaps %a" Region.pp r Region.pp r'))
        rest;
      check rest
  in
  check regions;
  let store = Hashtbl.create 8 in
  List.iter
    (fun r -> Hashtbl.replace store r.Region.name (Bytes.make r.Region.size '\x00'))
    regions;
  { regions; store; rom_sealed = false }

let regions t = t.regions

let region_named t name =
  match List.find_opt (fun r -> r.Region.name = name) t.regions with
  | Some r -> r
  | None -> raise Not_found

let region_of_addr t addr = List.find_opt (fun r -> Region.contains r addr) t.regions

let seal_rom t = t.rom_sealed <- true

let locate t addr =
  match region_of_addr t addr with
  | Some r -> (r, Hashtbl.find t.store r.Region.name, addr - r.Region.base)
  | None -> raise (Bus_fault (Printf.sprintf "no region at address 0x%06x" addr))

let read_byte t addr =
  let _, bytes, off = locate t addr in
  Char.code (Bytes.get bytes off)

let write_byte t addr v =
  let r, bytes, off = locate t addr in
  if t.rom_sealed && r.Region.kind = Region.Rom then
    raise (Bus_fault (Printf.sprintf "ROM write at 0x%06x (%s)" addr r.Region.name));
  Bytes.set bytes off (Char.chr (v land 0xff))

(* Bulk accessors locate each region once and blit whole runs instead of
   paying a region lookup per byte — attestation reads the prover's entire
   writable memory through here, which made this the simulator's real
   (wall-clock) bottleneck. Faults surface exactly as in the byte-wise
   versions: at the first unmapped/ROM byte, with prior runs applied. *)
let read_bytes t addr len =
  if len = 0 then ""
  else begin
    let buf = Bytes.create len in
    let rec fill off =
      if off < len then begin
        let r, bytes, roff = locate t (addr + off) in
        let n = min (len - off) (r.Region.size - roff) in
        Bytes.blit bytes roff buf off n;
        fill (off + n)
      end
    in
    fill 0;
    Bytes.unsafe_to_string buf
  end

let write_bytes t addr s =
  let len = String.length s in
  let rec store off =
    if off < len then begin
      let r, bytes, roff = locate t (addr + off) in
      if t.rom_sealed && r.Region.kind = Region.Rom then
        raise
          (Bus_fault (Printf.sprintf "ROM write at 0x%06x (%s)" (addr + off) r.Region.name));
      let n = min (len - off) (r.Region.size - roff) in
      Bytes.blit_string s off bytes roff n;
      store (off + n)
    end
  in
  store 0

let read_u32 t addr =
  read_byte t addr
  lor (read_byte t (addr + 1) lsl 8)
  lor (read_byte t (addr + 2) lsl 16)
  lor (read_byte t (addr + 3) lsl 24)

let write_u32 t addr v =
  for i = 0 to 3 do
    write_byte t (addr + i) ((v lsr (8 * i)) land 0xff)
  done

let copy_raw t ~base s =
  let sealed = t.rom_sealed in
  t.rom_sealed <- false;
  Fun.protect
    ~finally:(fun () -> t.rom_sealed <- sealed)
    (fun () -> write_bytes t base s)

let read_u64 t addr =
  let lo = Int64.of_int (read_u32 t addr) in
  let hi = Int64.of_int (read_u32 t (addr + 4)) in
  Int64.logor (Int64.logand lo 0xFFFFFFFFL) (Int64.shift_left hi 32)

let write_u64 t addr v =
  write_u32 t addr (Int64.to_int (Int64.logand v 0xFFFFFFFFL));
  write_u32 t (addr + 4) (Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xFFFFFFFFL))
