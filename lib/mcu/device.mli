(** A complete simulated prover platform in the image of the paper's
    Figure 1: boot ROM, [Code_attest] and [Code_clock] in ROM, the
    attestation key in ROM or write-protected flash, application code in
    flash, 512 KB of attested RAM, an IDT, interrupt control registers,
    the request counter in non-volatile memory, and one of the paper's
    clock implementations — all behind one EA-MPU and one cycle/energy
    meter.

    The module only builds and wires the platform; the trust-anchor
    *logic* ([Code_attest]) lives in the [ra_core] library and talks to
    the device exclusively through MPU-mediated {!Cpu} accesses. *)

type clock_impl =
  | Clock_none (* counter-only or nonce-only provers *)
  | Clock_hw of { width : int; divider_log2 : int } (* Fig. 1a *)
  | Clock_sw of { lsb_width : int; divider_log2 : int } (* Fig. 1b *)

type key_location = Key_in_rom | Key_in_flash

type t

val create :
  ?ram_size:int ->
  ?mpu_capacity:int ->
  ?clock_impl:clock_impl ->
  ?key_location:key_location ->
  ?energy:Energy.t ->
  ?rom_images:(string * string) list ->
  ?attest_app_flash:bool ->
  key:string ->
  unit ->
  t
(** Build and provision a device. Defaults: 512 KB RAM (the paper's
    Siskiyou Peak figure), MPU capacity 8 rules, [Clock_none],
    [Key_in_rom], fresh default battery. [rom_images] are
    (region name, code bytes) pairs mask-programmed into ROM regions —
    e.g. an interpreted [Code_attest] routine for {!region_attest}. The
    key and images are written during manufacture and the ROM sealed
    before the device is returned.
    @raise Invalid_argument if an image does not fit its region. *)

(** {2 Components} *)

val memory : t -> Memory.t
val cpu : t -> Cpu.t
val mpu : t -> Ea_mpu.t
val interrupt : t -> Interrupt.t
val energy : t -> Energy.t
val clock : t -> Clock.t option
val clock_impl : t -> clock_impl

(** {2 Well-known locations} *)

val key_addr : t -> int
val key_len : t -> int
val counter_addr : t -> int
(** 64-bit monotonic request counter in non-volatile memory. *)

val clock_msb_addr : t -> int
val idt_base : t -> int
val idt_size : t -> int
val irq_ctrl_addr : t -> int
val attested_base : t -> int
val attested_len : t -> int
(** Base/length of the attested RAM (the paper's 512 KB figure). *)

val attested_ranges : t -> (int * int) list
(** Every (base, length) range an attestation measurement covers: the
    RAM, plus the application flash when the device was created with
    [attest_app_flash] (§3.1 speaks of the prover's {e entire} writable
    memory — flash is writable too, and code updates land there). *)

val attested_total_len : t -> int

(** {2 Code identities (region names used as EA-MPU subjects)} *)

val region_boot : string
val region_attest : string
val region_clock : string
val region_app : string
val region_untrusted : string

(** {2 Canonical protection rules (§6.2)} *)

val rule_protect_key : t -> Ea_mpu.rule
(** K_attest readable only by [Code_attest], writable by nobody. *)

val rule_protect_counter : t -> Ea_mpu.rule
(** counter_R writable only by [Code_attest]. *)

val rule_protect_clock_msb : t -> Ea_mpu.rule
(** Clock_MSB writable only by [Code_clock]. *)

val rule_protect_idt : t -> Ea_mpu.rule
(** IDT location immutable to software. *)

val rule_protect_irq_ctrl : t -> Ea_mpu.rule
(** Timer-interrupt enable bit immutable to software. *)

val anchor_scratch_addr : t -> int
(** A small non-attested RAM region for the trust anchor's working
    memory (the interpreted SHA-1's block/state/schedule buffers) —
    outside the measured ranges so measurement does not perturb itself. *)

val actuator_addr : t -> int
(** A memory-mapped peripheral (§2: TrustLite's EA-MPU "can be used to
    control access to hardware components such as peripherals"). *)

val rule_protect_actuator : t -> Ea_mpu.rule
(** Actuator registers writable only by the application code region —
    compromised code elsewhere cannot drive the hardware. *)

(** {2 Convenience} *)

val timer_vector : int

val fill_ram_deterministic : t -> seed:int64 -> unit
(** Populate RAM with a reproducible pseudorandom image (the benign
    device state that attestation measures). *)

val idle : t -> seconds:float -> unit
(** Let wall-clock time pass with the CPU asleep: clock ticks advance,
    sleep energy is charged. *)

val observe_gauges :
  ?registry:Ra_obs.Registry.t -> ?labels:Ra_obs.Registry.labels -> t -> unit
(** Snapshot the device's meters into gauges: [ra_device_cycles],
    [ra_device_work_cycles], [ra_device_energy_consumed_joules],
    [ra_device_energy_remaining_joules] and [ra_device_faults], all
    carrying [labels] (callers add e.g. [("device", name)]). *)

val power_cycle : t -> t
(** Reboot the device: a new platform with the same configuration and
    battery, whose {e non-volatile} contents (ROM, flash — thus the key,
    counter_R and the installed application) carry over, while RAM, the
    EA-MPU rule table and lock, the interrupt state and the clock are
    reset — clocks restart from zero, which is precisely why the paper's
    future-work item 2 (clock resynchronization) exists, and why the
    request counter must live in NVM (§4.2). Secure boot must run again
    on the new instance. *)
