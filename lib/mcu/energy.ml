let default_capacity_joules = 2340.0 (* CR2032: ~225 mAh x 2.9 V *)
let default_active_nj_per_cycle = 0.5
let default_sleep_microwatt = 2.0
let default_radio_uj_per_byte = 2.0

type t = {
  capacity : float;
  active_nj_per_cycle : float;
  sleep_microwatt : float;
  radio_uj_per_byte : float;
  mutable consumed : float; (* joules *)
}

let create ?(capacity_joules = default_capacity_joules)
    ?(active_nj_per_cycle = default_active_nj_per_cycle)
    ?(sleep_microwatt = default_sleep_microwatt)
    ?(radio_uj_per_byte = default_radio_uj_per_byte) () =
  if capacity_joules <= 0.0 then invalid_arg "Energy.create: capacity";
  {
    capacity = capacity_joules;
    active_nj_per_cycle;
    sleep_microwatt;
    radio_uj_per_byte;
    consumed = 0.0;
  }

let consume_cycles t cycles =
  t.consumed <- t.consumed +. (Int64.to_float cycles *. t.active_nj_per_cycle *. 1e-9)

let consume_sleep t ~seconds =
  if seconds < 0.0 then invalid_arg "Energy.consume_sleep: negative time";
  t.consumed <- t.consumed +. (seconds *. t.sleep_microwatt *. 1e-6)

let consume_radio t ~bytes =
  if bytes < 0 then invalid_arg "Energy.consume_radio: negative size";
  t.consumed <- t.consumed +. (float_of_int bytes *. t.radio_uj_per_byte *. 1e-6)

let consumed_joules t = t.consumed
let active_nj_per_cycle t = t.active_nj_per_cycle
let sleep_microwatt t = t.sleep_microwatt
let radio_uj_per_byte t = t.radio_uj_per_byte
let remaining_joules t = Float.max 0.0 (t.capacity -. t.consumed)
let depleted t = t.consumed >= t.capacity

let lifetime_seconds t ~duty_cycles_per_second =
  let active_watt = duty_cycles_per_second *. t.active_nj_per_cycle *. 1e-9 in
  let sleep_watt = t.sleep_microwatt *. 1e-6 in
  t.capacity /. (active_watt +. sleep_watt)
