(** Battery / energy model for quantifying the paper's DoS claims (§1,
    §3.1: bogus attestation requests "waste energy (deplete batteries)").

    The model is deliberately simple and documented: active execution
    costs a fixed energy per cycle, idle time a fixed sleep power. The
    defaults approximate a low-power 32-bit MCU (~0.5 nJ/cycle active,
    ~2 µW sleep) on a CR2032-class cell (~2340 J); the benches sweep the
    request rate, so the *shape* of the depletion curve — not the exact
    constants — carries the result. *)

type t

val create :
  ?capacity_joules:float ->
  ?active_nj_per_cycle:float ->
  ?sleep_microwatt:float ->
  ?radio_uj_per_byte:float ->
  unit ->
  t

val default_capacity_joules : float
val default_active_nj_per_cycle : float
val default_sleep_microwatt : float

val default_radio_uj_per_byte : float
(** ~2 µJ/byte: an 802.15.4-class radio (~90 mW at 250 kbit/s). *)

val consume_cycles : t -> int64 -> unit
(** Charge active energy for executed cycles. *)

val consume_sleep : t -> seconds:float -> unit
(** Charge sleep power for idle wall-clock time. *)

val consume_radio : t -> bytes:int -> unit
(** Charge radio energy for transmitting or receiving a frame. Protocol
    messages cost energy too — a flood hurts even before the CPU runs. *)

val consumed_joules : t -> float
val remaining_joules : t -> float
val depleted : t -> bool

val active_nj_per_cycle : t -> float
val sleep_microwatt : t -> float
val radio_uj_per_byte : t -> float
(** The model constants this battery was created with — read by the
    profiler to attribute per-phase energy with exactly the same
    arithmetic the battery itself uses. *)

val lifetime_seconds : t -> duty_cycles_per_second:float -> float
(** Predicted lifetime from full charge if the device executes
    [duty_cycles_per_second] cycles each second and sleeps otherwise.
    Used for the DoS sweep: attestation floods raise the duty cycle. *)
