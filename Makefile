# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-smoke chaos-smoke trace-smoke sched-smoke shard-smoke prof-smoke server-smoke forensics-smoke session-smoke examples docs clean loc

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# quick hot-path regression check (reduced quotas + small fleet)
bench-smoke:
	BENCH_SMOKE=1 dune exec bench/main.exe -- hotpath obs-overhead

# impairment + retry-engine sanity: CLI selftest, then a reduced chaos grid
chaos-smoke:
	dune exec bin/ra_cli.exe -- chaos --selftest
	BENCH_SMOKE=1 dune exec bench/main.exe -- chaos

# causal-tracing sanity: CLI selftest (Perfetto export, wire neutrality,
# SLO edge cases), then the tracing-overhead gate
trace-smoke:
	dune exec bin/ra_cli.exe -- trace --selftest
	BENCH_SMOKE=1 dune exec bench/main.exe -- trace

# event-queue scheduler sanity: CLI selftest (engine equivalence, deferred
# delivery, determinism), then the 10k-device sweep gate (BENCH_sched.json)
sched-smoke:
	dune exec bin/ra_cli.exe -- sched --selftest
	BENCH_SMOKE=1 dune exec bench/main.exe -- sched

# sharded-engine sanity: CLI selftest at 4 shards (sharded sweep/chaos vs
# the sequential oracle, pooled sweep_par, stream-fingerprint invariance),
# then the reduced sched bench (scaling grid + stream + gate bookkeeping)
shard-smoke:
	dune exec bin/ra_cli.exe -- sched --selftest --shards 4
	BENCH_SMOKE=1 dune exec bench/main.exe -- sched

# profiler sanity: CLI selftest (cycle-exact attribution, symbolization,
# shard-invariant merges, folded/JSONL/Perfetto exports), then the
# sampling-overhead + wire-neutrality gates (BENCH_prof.json); also leaves
# profile.folded and profile.perfetto.json behind for artifact upload
prof-smoke:
	dune exec bin/ra_cli.exe -- profile --selftest --folded profile.folded --out profile.perfetto.json
	BENCH_SMOKE=1 dune exec bench/main.exe -- prof

# verifier-as-a-service sanity: CLI selftest (batched-vs-single verdicts,
# Seq-vs-Shards admission determinism, flood goodput + drop attribution,
# shared rejection-reason labels), then the reduced server bench
# (BENCH_server.json: batching speedup, flood goodput and p99 gates)
server-smoke:
	dune exec bin/ra_cli.exe -- serve --selftest
	BENCH_SMOKE=1 dune exec bench/main.exe -- server

# failure-forensics sanity: CLI selftest (capsule JSON round-trips,
# engine/shard-invariant capsule streams, byte-identical replay, ranked
# triage, bucket exemplars, capture wire-neutrality), then the reduced
# forensics bench (BENCH_forensics.json: capture-overhead gate + replay
# identity at 10k devices in the full run); leaves the diagnosis report
# and the replayed round's Perfetto trace behind for artifact upload
forensics-smoke:
	dune exec bin/ra_cli.exe -- replay --selftest --diagnosis diagnosis.jsonl --perfetto replay.perfetto.json
	BENCH_SMOKE=1 dune exec bench/main.exe -- forensics

# secure-session sanity: CLI selftest (deterministic transcripts, engine
# identity, observability wire-neutrality, loss convergence, and the
# MITM/splice/replay/tamper adversary suite), then the reduced session
# bench (BENCH_session.json: record throughput, handshake amortization,
# engine-identical convergence under 20% loss)
session-smoke:
	dune exec bin/ra_cli.exe -- session --selftest
	BENCH_SMOKE=1 dune exec bench/main.exe -- session

examples:
	dune exec examples/quickstart.exe
	dune exec examples/dos_battery.exe
	dune exec examples/roaming_adversary.exe
	dune exec examples/iot_fleet.exe
	dune exec examples/secure_update.exe
	dune exec examples/isa_attest.exe
	dune exec examples/interpreted_anchor.exe

clean:
	dune clean

loc:
	@find lib test bench bin examples -name '*.ml' -o -name '*.mli' | xargs wc -l | tail -1
