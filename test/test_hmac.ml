(* HMAC against RFC 2202 (SHA-1) and RFC 4231 (SHA-256) vectors. *)
open Ra_crypto

let hex = Hexutil.to_hex
let check = Alcotest.(check string)

let test_rfc2202 () =
  check "tc1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (hex (Hmac.mac Hmac.sha1 ~key:(String.make 20 '\x0b') "Hi There"));
  check "tc2" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (hex (Hmac.mac Hmac.sha1 ~key:"Jefe" "what do ya want for nothing?"));
  check "tc3" "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
    (hex (Hmac.mac Hmac.sha1 ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')));
  (* tc6: key longer than the block size forces the key-hash path *)
  check "tc6 long key" "aa4ae5e15272d00e95705637ce8a3b55ed402112"
    (hex
       (Hmac.mac Hmac.sha1 ~key:(String.make 80 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_rfc4231 () =
  check "tc1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (Hmac.mac Hmac.sha256 ~key:(String.make 20 '\x0b') "Hi There"));
  check "tc2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (Hmac.mac Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?"))

let test_verify () =
  let key = "k3y" and msg = "msg" in
  let tag = Hmac.mac Hmac.sha1 ~key msg in
  Alcotest.(check bool) "accepts" true (Hmac.verify Hmac.sha1 ~key ~msg ~tag);
  Alcotest.(check bool) "rejects msg change" false
    (Hmac.verify Hmac.sha1 ~key ~msg:"msG" ~tag);
  Alcotest.(check bool) "rejects key change" false
    (Hmac.verify Hmac.sha1 ~key:"k3y2" ~msg ~tag);
  Alcotest.(check bool) "rejects truncated tag" false
    (Hmac.verify Hmac.sha1 ~key ~msg ~tag:(String.sub tag 0 19))

let test_keyed_rfc_vectors () =
  (* the midstate path must reproduce the RFC vectors, including long keys *)
  let kc = Hmac.key Hmac.sha1 ~key:(String.make 20 '\x0b') in
  check "tc1 via key_ctx" "b617318655057264e28bc0b6fb378c8ef146be00"
    (hex (Hmac.mac_with kc "Hi There"));
  let kc_long = Hmac.key Hmac.sha1 ~key:(String.make 80 '\xaa') in
  check "tc6 long key via key_ctx" "aa4ae5e15272d00e95705637ce8a3b55ed402112"
    (hex
       (Hmac.mac_with kc_long
          "Test Using Larger Than Block-Size Key - Hash Key First"));
  let kc256 = Hmac.key Hmac.sha256 ~key:"Jefe" in
  check "rfc4231 tc2 via key_ctx"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (Hmac.mac_with kc256 "what do ya want for nothing?"))

let test_keyed_reuse () =
  (* a single key_ctx must stay valid across many messages (midstates are
     copied, never consumed) and match the one-shot path every time *)
  let key = "attestation-key" in
  let kc = Hmac.key Hmac.sha1 ~key in
  for i = 1 to 20 do
    let msg = Printf.sprintf "nonce-%04d" i in
    check msg (hex (Hmac.mac Hmac.sha1 ~key msg)) (hex (Hmac.mac_with kc msg))
  done

let test_verify_with () =
  let kc = Hmac.key Hmac.sha1 ~key:"k3y" in
  let tag = Hmac.mac_with kc "msg" in
  Alcotest.(check bool) "accepts" true (Hmac.verify_with kc ~msg:"msg" ~tag);
  Alcotest.(check bool) "rejects" false (Hmac.verify_with kc ~msg:"msG" ~tag)

let qcheck_keyed_equiv =
  QCheck.Test.make ~name:"hmac: mac_with (key k) = mac ~key:k" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 100)) (string_of_size Gen.(0 -- 200)))
    (fun (key, msg) ->
      Hmac.mac_with (Hmac.key Hmac.sha1 ~key) msg = Hmac.mac Hmac.sha1 ~key msg
      && Hmac.mac_with (Hmac.key Hmac.sha256 ~key) msg
         = Hmac.mac Hmac.sha256 ~key msg)

let qcheck_mac_parts =
  QCheck.Test.make ~name:"hmac: mac_parts = mac of concatenation" ~count:200
    QCheck.(pair small_string (list_of_size Gen.(0 -- 5) small_string))
    (fun (key, parts) ->
      let kc = Hmac.key Hmac.sha1 ~key in
      Hmac.mac_parts kc parts = Hmac.mac Hmac.sha1 ~key (String.concat "" parts))

let qcheck_key_sensitivity =
  QCheck.Test.make ~name:"hmac: different keys give different tags" ~count:100
    QCheck.(triple (string_of_size Gen.(1 -- 40)) (string_of_size Gen.(1 -- 40)) small_string)
    (fun (k1, k2, msg) ->
      QCheck.assume (k1 <> k2);
      (* normalized equal keys (e.g. trailing NULs) are the only collision
         class we tolerate *)
      let pad k = if String.length k < 64 then k ^ String.make (64 - String.length k) '\x00' else k in
      QCheck.assume (pad k1 <> pad k2);
      Hmac.mac Hmac.sha1 ~key:k1 msg <> Hmac.mac Hmac.sha1 ~key:k2 msg)

let qcheck_deterministic =
  QCheck.Test.make ~name:"hmac is deterministic" ~count:100
    QCheck.(pair small_string small_string)
    (fun (key, msg) -> Hmac.mac Hmac.sha1 ~key msg = Hmac.mac Hmac.sha1 ~key msg)

let tests =
  [
    Alcotest.test_case "RFC 2202 vectors" `Quick test_rfc2202;
    Alcotest.test_case "RFC 4231 vectors" `Quick test_rfc4231;
    Alcotest.test_case "verify" `Quick test_verify;
    Alcotest.test_case "keyed midstates: RFC vectors" `Quick test_keyed_rfc_vectors;
    Alcotest.test_case "keyed midstates: reuse" `Quick test_keyed_reuse;
    Alcotest.test_case "verify_with" `Quick test_verify_with;
    QCheck_alcotest.to_alcotest qcheck_keyed_equiv;
    QCheck_alcotest.to_alcotest qcheck_mac_parts;
    QCheck_alcotest.to_alcotest qcheck_key_sensitivity;
    QCheck_alcotest.to_alcotest qcheck_deterministic;
  ]
