open Ra_crypto

let unhex = Hexutil.of_hex
let hex = Hexutil.to_hex

let aes_cipher () = Block_mode.aes (Aes.expand (String.make 16 'k'))
let speck_cipher () = Block_mode.speck (Speck.expand (String.make 16 'k'))

let test_pkcs7 () =
  Alcotest.(check string) "pads to block" "ab\x02\x02" (Block_mode.pad_pkcs7 4 "ab");
  Alcotest.(check string)
    "full block when aligned" "abcd\x04\x04\x04\x04"
    (Block_mode.pad_pkcs7 4 "abcd");
  Alcotest.(check (option string)) "unpad" (Some "ab")
    (Block_mode.unpad_pkcs7 "ab\x02\x02");
  Alcotest.(check (option string)) "bad padding value" None
    (Block_mode.unpad_pkcs7 "ab\x02\x03");
  Alcotest.(check (option string)) "zero padding byte" None
    (Block_mode.unpad_pkcs7 "abc\x00");
  Alcotest.(check (option string)) "empty" None (Block_mode.unpad_pkcs7 "")

let test_cbc_nist_vector () =
  (* SP 800-38A F.2.1: first CBC block (padding only affects later blocks) *)
  let c = Block_mode.aes (Aes.expand (unhex "2b7e151628aed2a6abf7158809cf4f3c")) in
  let iv = unhex "000102030405060708090a0b0c0d0e0f" in
  let ct = Block_mode.cbc_encrypt c ~iv (unhex "6bc1bee22e409f96e93d7e117393172a") in
  Alcotest.(check string) "first ct block" "7649abac8119b246cee98e9b12e9197d"
    (hex (String.sub ct 0 16))

let test_cbc_roundtrip_basic () =
  let c = aes_cipher () in
  let iv = String.make 16 'i' in
  let pt = "the quick brown fox" in
  Alcotest.(check (option string)) "roundtrip" (Some pt)
    (Block_mode.cbc_decrypt c ~iv (Block_mode.cbc_encrypt c ~iv pt));
  Alcotest.(check (option string)) "wrong iv corrupts" None
    (* first-block corruption usually breaks padding; if padding survives
       the plaintext differs — accept either by checking inequality *)
    (match Block_mode.cbc_decrypt c ~iv:(String.make 16 'j')
             (Block_mode.cbc_encrypt c ~iv pt) with
     | Some p when p = pt -> Some p
     | Some _ | None -> None)

let test_cbc_rejects_bad_ct () =
  let c = aes_cipher () in
  let iv = String.make 16 'i' in
  Alcotest.(check (option string)) "empty ct" None (Block_mode.cbc_decrypt c ~iv "");
  Alcotest.(check (option string)) "ragged ct" None
    (Block_mode.cbc_decrypt c ~iv (String.make 17 'x'))

let test_cbc_mac_properties () =
  let c = aes_cipher () in
  let tag = Block_mode.cbc_mac c "message" in
  Alcotest.(check int) "tag is one block" 16 (String.length tag);
  Alcotest.(check bool) "verifies" true
    (Block_mode.cbc_mac_verify c ~msg:"message" ~tag);
  Alcotest.(check bool) "rejects change" false
    (Block_mode.cbc_mac_verify c ~msg:"messagE" ~tag);
  (* length prefix defeats the classic extension forgery where
     mac(m1) is reused as the IV-equivalent state for m1 || m2 *)
  Alcotest.(check bool) "length-distinct" true
    (Block_mode.cbc_mac c "aa" <> Block_mode.cbc_mac c "aa\x00")

let qcheck_cbc_roundtrip_aes =
  QCheck.Test.make ~name:"cbc(aes): decrypt . encrypt = id" ~count:100
    QCheck.(pair (string_of_size Gen.(return 16)) (string_of_size Gen.(0 -- 200)))
    (fun (iv, pt) ->
      let c = aes_cipher () in
      Block_mode.cbc_decrypt c ~iv (Block_mode.cbc_encrypt c ~iv pt) = Some pt)

let qcheck_cbc_roundtrip_speck =
  QCheck.Test.make ~name:"cbc(speck): decrypt . encrypt = id" ~count:100
    QCheck.(pair (string_of_size Gen.(return 8)) (string_of_size Gen.(0 -- 100)))
    (fun (iv, pt) ->
      let c = speck_cipher () in
      Block_mode.cbc_decrypt c ~iv (Block_mode.cbc_encrypt c ~iv pt) = Some pt)

let qcheck_cbc_mac_msg_sensitivity =
  QCheck.Test.make ~name:"cbc-mac: distinct messages, distinct tags" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 60)) (string_of_size Gen.(0 -- 60)))
    (fun (m1, m2) ->
      QCheck.assume (m1 <> m2);
      let c = speck_cipher () in
      Block_mode.cbc_mac c m1 <> Block_mode.cbc_mac c m2)

let test_ctr_basics () =
  let c = aes_cipher () in
  let nonce = String.make 8 'n' in
  let pt = "stream me, any length at all" in
  let ct = Block_mode.ctr_crypt c ~nonce pt in
  Alcotest.(check int) "length-preserving" (String.length pt) (String.length ct);
  Alcotest.(check bool) "ciphertext differs" true (ct <> pt);
  Alcotest.(check string) "crypt is an involution" pt
    (Block_mode.ctr_crypt c ~nonce ct);
  Alcotest.(check string) "empty input" "" (Block_mode.ctr_crypt c ~nonce "");
  Alcotest.(check bool) "nonce matters" true
    (Block_mode.ctr_crypt c ~nonce:(String.make 8 'm') pt <> ct);
  Alcotest.check_raises "wrong nonce length"
    (Invalid_argument "Block_mode.ctr_crypt: nonce")
    (fun () -> ignore (Block_mode.ctr_crypt c ~nonce:"short" pt))

let test_ctr_keystream_position_dependent () =
  (* the keystream is positional: the same plaintext block encrypts
     differently in block 0 and block 1, unlike ECB *)
  let c = aes_cipher () in
  let nonce = String.make 8 'n' in
  let ct = Block_mode.ctr_crypt c ~nonce (String.make 32 'a') in
  Alcotest.(check bool) "block 0 <> block 1" true
    (String.sub ct 0 16 <> String.sub ct 16 16)

let qcheck_ctr_involution =
  QCheck.Test.make ~name:"ctr: crypt . crypt = id, any length" ~count:100
    QCheck.(pair (string_of_size Gen.(return 8)) (string_of_size Gen.(0 -- 200)))
    (fun (nonce, pt) ->
      let c = aes_cipher () in
      Block_mode.ctr_crypt c ~nonce (Block_mode.ctr_crypt c ~nonce pt) = pt)

let qcheck_ctr_speck_involution =
  QCheck.Test.make ~name:"ctr(speck): crypt . crypt = id" ~count:100
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun pt ->
      let c = speck_cipher () in
      let nonce = "" (* speck block is 8: nonce is block_size - 8 = 0 bytes *) in
      Block_mode.ctr_crypt c ~nonce (Block_mode.ctr_crypt c ~nonce pt) = pt)

let tests =
  [
    Alcotest.test_case "pkcs7" `Quick test_pkcs7;
    Alcotest.test_case "cbc NIST vector" `Quick test_cbc_nist_vector;
    Alcotest.test_case "cbc roundtrip" `Quick test_cbc_roundtrip_basic;
    Alcotest.test_case "cbc rejects bad ct" `Quick test_cbc_rejects_bad_ct;
    Alcotest.test_case "cbc-mac" `Quick test_cbc_mac_properties;
    QCheck_alcotest.to_alcotest qcheck_cbc_roundtrip_aes;
    QCheck_alcotest.to_alcotest qcheck_cbc_roundtrip_speck;
    QCheck_alcotest.to_alcotest qcheck_cbc_mac_msg_sensitivity;
    Alcotest.test_case "ctr basics" `Quick test_ctr_basics;
    Alcotest.test_case "ctr keystream positional" `Quick
      test_ctr_keystream_position_dependent;
    QCheck_alcotest.to_alcotest qcheck_ctr_involution;
    QCheck_alcotest.to_alcotest qcheck_ctr_speck_involution;
  ]
