open Ra_net

(* ---- deterministic, replayable schedules ------------------------------ *)

let draw_schedule ~profile ~seed n =
  let imp =
    Impairment.create ~to_prover:profile ~to_verifier:profile ~seed ()
  in
  List.init n (fun i ->
      let dir =
        if i mod 2 = 0 then Impairment.To_prover else Impairment.To_verifier
      in
      Impairment.decide imp ~dir)

let prop_schedule_deterministic =
  let gen = QCheck.Gen.(map Int64.of_int int) in
  QCheck.Test.make ~count:200
    ~name:"same seed => identical impairment schedule"
    (QCheck.make gen ~print:Int64.to_string)
    (fun seed ->
      draw_schedule ~profile:Impairment.noisy ~seed 200
      = draw_schedule ~profile:Impairment.noisy ~seed 200)

let prop_distinct_seeds_diverge =
  (* not a hard guarantee for any single pair, but over a 400-draw noisy
     schedule two streams colliding by chance is astronomically unlikely;
     a failure here means the seed is being ignored *)
  let gen = QCheck.Gen.(map Int64.of_int int) in
  QCheck.Test.make ~count:50 ~name:"different seeds => different schedule"
    (QCheck.make gen ~print:Int64.to_string)
    (fun seed ->
      draw_schedule ~profile:Impairment.noisy ~seed 400
      <> draw_schedule ~profile:Impairment.noisy ~seed:(Int64.add seed 1L) 400)

let test_pristine_always_passes () =
  let actions = draw_schedule ~profile:Impairment.pristine ~seed:42L 500 in
  Alcotest.(check bool) "all pass" true
    (List.for_all (fun a -> a = Impairment.Pass) actions)

let test_certain_loss_always_drops () =
  let actions = draw_schedule ~profile:(Impairment.lossy 1.0) ~seed:42L 500 in
  Alcotest.(check bool) "all drop" true
    (List.for_all (fun a -> a = Impairment.Drop) actions)

let drop_fraction actions =
  let drops =
    List.length (List.filter (fun a -> a = Impairment.Drop) actions)
  in
  float_of_int drops /. float_of_int (List.length actions)

let test_iid_loss_rate () =
  let f = drop_fraction (draw_schedule ~profile:(Impairment.lossy 0.3) ~seed:7L 5000) in
  Alcotest.(check bool)
    (Printf.sprintf "iid drop rate %.3f within [0.27, 0.33]" f)
    true
    (f > 0.27 && f < 0.33)

let test_bursty_long_run_rate_and_bursts () =
  (* per-direction stream: draw one direction only so the Markov chain is
     a single chain, then check both the long-run rate and the burstiness
     signature P(drop | previous drop) >> P(drop). *)
  let imp =
    Impairment.create ~to_prover:(Impairment.bursty 0.2) ~seed:11L ()
  in
  let n = 20_000 in
  let actions =
    Array.init n (fun _ -> Impairment.decide imp ~dir:Impairment.To_prover)
  in
  let drops = ref 0 and pairs = ref 0 and drop_after_drop = ref 0 in
  Array.iteri
    (fun i a ->
      if a = Impairment.Drop then incr drops;
      if i > 0 && actions.(i - 1) = Impairment.Drop then begin
        incr pairs;
        if a = Impairment.Drop then incr drop_after_drop
      end)
    actions;
  let rate = float_of_int !drops /. float_of_int n in
  let cond = float_of_int !drop_after_drop /. float_of_int !pairs in
  Alcotest.(check bool)
    (Printf.sprintf "long-run rate %.3f within [0.17, 0.23]" rate)
    true
    (rate > 0.17 && rate < 0.23);
  Alcotest.(check bool)
    (Printf.sprintf "burstiness: P(drop|drop)=%.3f > 1.5 * rate" cond)
    true
    (cond > 1.5 *. rate)

let test_profile_validation () =
  Alcotest.check_raises "lossy out of range"
    (Invalid_argument "Impairment: loss probability 1.5 outside [0,1]")
    (fun () -> ignore (Impairment.lossy 1.5));
  Alcotest.check_raises "bursty out of range"
    (Invalid_argument "Impairment.bursty: long-run rate outside [0, 0.5]")
    (fun () -> ignore (Impairment.bursty 0.7));
  Alcotest.(check bool) "create rejects bad probability" true
    (try
       ignore
         (Impairment.create
            ~to_prover:{ Impairment.pristine with duplicate = -0.1 }
            ~seed:1L ());
       false
     with Invalid_argument _ -> true)

(* ---- channel integration ---------------------------------------------- *)

let make_channel () =
  let time = Simtime.create () in
  let trace = Trace.create time in
  (time, Channel.create time trace)

let test_channel_drop_all () =
  let _, ch = make_channel () in
  let got = ref 0 in
  let _ : string Channel.Endpoint.handle =
    Channel.Endpoint.attach ch Channel.Prover_side (fun _ -> incr got)
  in
  Channel.set_impairment ch ~mangle:Channel.mangle_string
    (Some
       (Impairment.create ~to_prover:(Impairment.lossy 1.0) ~seed:3L ()));
  Channel.send ch ~src:Channel.Verifier_side "req";
  Alcotest.(check bool) "pending consumed" true
    (Channel.forward_next ch ~dst:Channel.Prover_side);
  Alcotest.(check int) "nothing received" 0 !got;
  Alcotest.(check int) "pending drained" 0 (List.length (Channel.undelivered ch))

let test_channel_duplicate_all () =
  let _, ch = make_channel () in
  let got = ref 0 in
  let _ : string Channel.Endpoint.handle =
    Channel.Endpoint.attach ch Channel.Prover_side (fun _ -> incr got)
  in
  Channel.set_impairment ch ~mangle:Channel.mangle_string
    (Some
       (Impairment.create
          ~to_prover:{ Impairment.pristine with duplicate = 1.0 }
          ~seed:3L ()));
  Channel.send ch ~src:Channel.Verifier_side "req";
  ignore (Channel.forward_next ch ~dst:Channel.Prover_side);
  Alcotest.(check int) "delivered twice" 2 !got

let test_channel_corrupt_without_mangler_drops () =
  let _, ch = make_channel () in
  let got = ref 0 in
  let _ : string Channel.Endpoint.handle =
    Channel.Endpoint.attach ch Channel.Prover_side (fun _ -> incr got)
  in
  (* no ~mangle: a Corrupt decision cannot be realized, so it drops *)
  Channel.set_impairment ch
    (Some
       (Impairment.create
          ~to_prover:{ Impairment.pristine with corrupt = 1.0 }
          ~seed:3L ()));
  Channel.send ch ~src:Channel.Verifier_side "req";
  ignore (Channel.forward_next ch ~dst:Channel.Prover_side);
  Alcotest.(check int) "corrupt frame dropped" 0 !got

let test_channel_no_impairment_identical () =
  (* with the model removed again, forwarding is the plain benign path *)
  let _, ch = make_channel () in
  let got = ref [] in
  let _ : string Channel.Endpoint.handle =
    Channel.Endpoint.attach ch Channel.Prover_side (fun m -> got := m :: !got)
  in
  Channel.set_impairment ch ~mangle:Channel.mangle_string
    (Some (Impairment.create ~to_prover:(Impairment.lossy 1.0) ~seed:3L ()));
  Channel.set_impairment ch None;
  Channel.send ch ~src:Channel.Verifier_side "m1";
  Channel.send ch ~src:Channel.Verifier_side "m2";
  ignore (Channel.forward_next ch ~dst:Channel.Prover_side);
  ignore (Channel.forward_next ch ~dst:Channel.Prover_side);
  Alcotest.(check (list string)) "byte-identical benign forwarding"
    [ "m2"; "m1" ] !got

let test_mangle_string () =
  Alcotest.(check string) "empty passes through" ""
    (Channel.mangle_string "" ~salt:17);
  let original = "attestation-frame" in
  let mangled = Channel.mangle_string original ~salt:17 in
  Alcotest.(check bool) "same length" true
    (String.length mangled = String.length original);
  Alcotest.(check bool) "differs from original" true (mangled <> original);
  Alcotest.(check string) "deterministic in salt" mangled
    (Channel.mangle_string original ~salt:17)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_schedule_deterministic;
    QCheck_alcotest.to_alcotest prop_distinct_seeds_diverge;
    Alcotest.test_case "pristine always passes" `Quick test_pristine_always_passes;
    Alcotest.test_case "certain loss always drops" `Quick
      test_certain_loss_always_drops;
    Alcotest.test_case "iid loss rate" `Quick test_iid_loss_rate;
    Alcotest.test_case "bursty rate and bursts" `Quick
      test_bursty_long_run_rate_and_bursts;
    Alcotest.test_case "profile validation" `Quick test_profile_validation;
    Alcotest.test_case "channel: drop-all" `Quick test_channel_drop_all;
    Alcotest.test_case "channel: duplicate-all" `Quick test_channel_duplicate_all;
    Alcotest.test_case "channel: corrupt without mangler" `Quick
      test_channel_corrupt_without_mangler_drops;
    Alcotest.test_case "channel: impairment removal restores benign path" `Quick
      test_channel_no_impairment_identical;
    Alcotest.test_case "mangle_string" `Quick test_mangle_string;
  ]
