(* Ra_obs causal-tracing primitives: the flight-recorder ring, tracer
   event trees, the trace-JSON round-trip, SLO arithmetic, the registry
   cardinality cap and Prometheus label escaping. *)

open Ra_obs

let contains needle hay = Ra_net.Trace.contains_substring ~needle hay

(* --- Recorder: bounded ring --- *)

let test_recorder_eviction_order () =
  let r = Recorder.create ~capacity:3 in
  List.iter (Recorder.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "oldest evicted first" [ 3; 4; 5 ] (Recorder.to_list r);
  Alcotest.(check int) "length capped" 3 (Recorder.length r);
  Alcotest.(check int) "evictions counted" 2 (Recorder.evicted r);
  Alcotest.(check (option int)) "latest" (Some 5) (Recorder.latest r);
  Alcotest.(check int) "capacity" 3 (Recorder.capacity r)

let test_recorder_capacity_one () =
  let r = Recorder.create ~capacity:1 in
  Alcotest.(check (option string)) "empty" None (Recorder.latest r);
  Recorder.push r "a";
  Recorder.push r "b";
  Alcotest.(check (list string)) "only the newest survives" [ "b" ]
    (Recorder.to_list r);
  Alcotest.(check int) "one eviction" 1 (Recorder.evicted r)

let test_recorder_clear () =
  let r = Recorder.create ~capacity:2 in
  List.iter (Recorder.push r) [ 1; 2; 3 ];
  Recorder.clear r;
  Alcotest.(check (list int)) "empty after clear" [] (Recorder.to_list r);
  Alcotest.(check int) "eviction count zeroed" 0 (Recorder.evicted r);
  Recorder.push r 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Recorder.to_list r)

let test_recorder_invalid_capacity () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Ra_obs.Recorder.create: capacity must be >= 1") (fun () ->
      ignore (Recorder.create ~capacity:0))

(* --- Tracer: event trees --- *)

let make_tracer ?capacity ?max_events () =
  let now = ref 0.0 in
  let t =
    Trace.create ?capacity ?max_events ~device:"testdev"
      ~clock:(fun () -> !now)
      ()
  in
  (t, now)

let events_named name rd =
  List.filter (fun e -> e.Trace.ev_name = name) rd.Trace.rd_events

let test_tracer_tree () =
  let t, now = make_tracer () in
  let id = Trace.begin_round t in
  Alcotest.(check (option int)) "round open" (Some id) (Trace.current_trace_id t);
  now := 1.0;
  let s1 = Trace.span t ~cat:"retry" "retry.attempt" in
  now := 2.0;
  Trace.instant t ~cat:"net" "net.tx";
  now := 3.0;
  Trace.finish_span t s1;
  now := 4.0;
  Trace.instant t ~cat:"verdict" ~labels:[ ("verdict", "trusted") ] "verdict";
  now := 5.0;
  Trace.end_round t ~verdict:"trusted" ~attempts:1;
  match Trace.rounds t with
  | [ rd ] ->
    Alcotest.(check int) "trace id" id rd.Trace.rd_trace_id;
    Alcotest.(check string) "device" "testdev" rd.Trace.rd_device;
    Alcotest.(check string) "verdict" "trusted" rd.Trace.rd_verdict;
    Alcotest.(check int) "four events" 4 (List.length rd.Trace.rd_events);
    let root = List.hd rd.Trace.rd_events in
    Alcotest.(check int) "root id 0" 0 root.Trace.ev_id;
    Alcotest.(check string) "root name" Trace.root_span_name root.Trace.ev_name;
    Alcotest.(check bool) "root parentless" true (root.Trace.ev_parent = None);
    Alcotest.(check (float 0.0)) "root spans the round" 5.0 root.Trace.ev_stop;
    let attempt = List.hd (events_named "retry.attempt" rd) in
    Alcotest.(check bool) "attempt under root" true
      (attempt.Trace.ev_parent = Some 0);
    Alcotest.(check (float 0.0)) "attempt closed at finish" 3.0
      attempt.Trace.ev_stop;
    let tx = List.hd (events_named "net.tx" rd) in
    Alcotest.(check bool) "tx under the open attempt" true
      (tx.Trace.ev_parent = Some attempt.Trace.ev_id);
    Alcotest.(check bool) "instants are zero-width" true
      (tx.Trace.ev_start = tx.Trace.ev_stop);
    let verdict = List.hd (events_named "verdict" rd) in
    Alcotest.(check bool) "verdict under root again" true
      (verdict.Trace.ev_parent = Some 0);
    (* ids unique, events chronological *)
    let ids = List.map (fun e -> e.Trace.ev_id) rd.Trace.rd_events in
    Alcotest.(check int) "unique ids" (List.length ids)
      (List.length (List.sort_uniq compare ids));
    let starts = List.map (fun e -> e.Trace.ev_start) rd.Trace.rd_events in
    Alcotest.(check bool) "sorted by start" true
      (starts = List.sort compare starts)
  | rds -> Alcotest.failf "expected one sealed round, got %d" (List.length rds)

let test_tracer_max_events () =
  let t, _ = make_tracer ~max_events:2 () in
  ignore (Trace.begin_round t);
  for _ = 1 to 5 do
    Trace.instant t "tick"
  done;
  Trace.end_round t ~verdict:"done" ~attempts:1;
  match Trace.rounds t with
  | [ rd ] ->
    Alcotest.(check int) "budget kept" 2 (List.length rd.Trace.rd_events);
    Alcotest.(check int) "drops counted" 4 rd.Trace.rd_dropped
  | _ -> Alcotest.fail "expected one sealed round"

let test_tracer_abandoned_round () =
  let t, _ = make_tracer () in
  let first = Trace.begin_round t in
  Trace.instant t "orphan";
  let second = Trace.begin_round t in
  Alcotest.(check bool) "fresh id" true (second <> first);
  Trace.end_round t ~verdict:"trusted" ~attempts:1;
  match Trace.rounds t with
  | [ a; b ] ->
    Alcotest.(check string) "implicit seal" "abandoned" a.Trace.rd_verdict;
    Alcotest.(check int) "first id" first a.Trace.rd_trace_id;
    Alcotest.(check string) "explicit seal" "trusted" b.Trace.rd_verdict
  | rds -> Alcotest.failf "expected two rounds, got %d" (List.length rds)

let test_tracer_with_span_exception () =
  let t, _ = make_tracer () in
  ignore (Trace.begin_round t);
  (try Trace.with_span t "boom" (fun () -> failwith "kaboom")
   with Failure _ -> ());
  Trace.end_round t ~verdict:"faulted" ~attempts:1;
  match Trace.rounds t with
  | [ rd ] ->
    let sp = List.hd (events_named "boom" rd) in
    Alcotest.(check (option string)) "outcome label" (Some "raised")
      (List.assoc_opt "outcome" sp.Trace.ev_labels)
  | _ -> Alcotest.fail "expected one sealed round"

(* --- trace JSON round-trip (qcheck) --- *)

let round_gen =
  let open QCheck.Gen in
  let small_string = string_size ~gen:printable (int_range 0 8) in
  let finite = float_bound_exclusive 1_000_000.0 in
  let label = pair small_string small_string in
  let event i =
    let* parent = if i = 0 then return None else map Option.some (int_range 0 (i - 1)) in
    let* name = small_string in
    let* cat = small_string in
    let* kind = oneofl [ Trace.Span_event; Trace.Instant_event ] in
    let* start = finite in
    let* dur = finite in
    let* labels = list_size (int_range 0 3) label in
    return
      {
        Trace.ev_id = i;
        ev_parent = parent;
        ev_name = name;
        ev_cat = cat;
        ev_kind = kind;
        ev_start = start;
        ev_stop = (match kind with
          | Trace.Instant_event -> start
          | Trace.Span_event -> start +. dur);
        ev_labels = labels;
      }
  in
  let* n = int_range 1 6 in
  let* events =
    (* flatten_l applies each generator in order; ids stay 0..n-1 *)
    flatten_l (List.init n event)
  in
  let* device = small_string in
  let* verdict = small_string in
  let* trace_id = int_range 1 10_000 in
  let* attempts = int_range 1 16 in
  let* dropped = int_range 0 50 in
  let* start = finite in
  let* dur = finite in
  return
    {
      Trace.rd_trace_id = trace_id;
      rd_device = device;
      rd_start = start;
      rd_stop = start +. dur;
      rd_verdict = verdict;
      rd_attempts = attempts;
      rd_dropped = dropped;
      rd_events = events;
    }

let prop_round_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"round json round-trip"
    (QCheck.make round_gen ~print:(fun r -> Json.to_string (Trace.round_to_json r)))
    (fun r ->
      match Json.of_string (Json.to_string (Trace.round_to_json r)) with
      | Error e -> QCheck.Test.fail_reportf "unparseable: %s" e
      | Ok j -> Trace.round_of_json j = Some r)

(* --- SLO arithmetic --- *)

let test_slo_exact_threshold () =
  let p99 = Slo.objective ~unit:"s" ~name:"p99" ~limit:60.0 Slo.At_most in
  Alcotest.(check bool) "at_most meets exactly" true
    (Slo.compliant p99 ~observed:60.0);
  Alcotest.(check bool) "over breaches" false (Slo.compliant p99 ~observed:60.001);
  Alcotest.(check (float 1e-9)) "margin zero at the limit" 0.0
    (Slo.margin p99 ~observed:60.0);
  let conv = Slo.objective ~unit:"%" ~name:"conv" ~limit:99.0 Slo.At_least in
  Alcotest.(check bool) "at_least meets exactly" true
    (Slo.compliant conv ~observed:99.0);
  Alcotest.(check bool) "under breaches" false (Slo.compliant conv ~observed:98.5);
  Alcotest.(check (float 1e-9)) "headroom positive inside" 1.0
    (Slo.margin conv ~observed:100.0);
  Alcotest.(check (float 1e-9)) "headroom negative outside" (-0.5)
    (Slo.margin conv ~observed:98.5)

let test_slo_evaluate_metrics () =
  let obj = Slo.objective ~unit:"s" ~name:"slo_test_latency" ~limit:1.0 Slo.At_most in
  let evals =
    Registry.Counter.get
      ~labels:[ ("objective", "slo_test_latency") ]
      "ra_slo_evaluations_total"
  in
  let breach_counter =
    Registry.Counter.get
      ~labels:[ ("objective", "slo_test_latency") ]
      "ra_slo_breaches_total"
  in
  let e0 = Registry.Counter.value evals in
  let b0 = Registry.Counter.value breach_counter in
  let ok = Slo.evaluate ~scope:"test" obj ~observed:0.5 in
  let bad = Slo.evaluate ~scope:"test" obj ~observed:2.0 in
  Alcotest.(check bool) "ok check" true ok.Slo.ck_ok;
  Alcotest.(check bool) "breach check" false bad.Slo.ck_ok;
  Alcotest.(check int) "evaluations counted" (e0 + 2) (Registry.Counter.value evals);
  Alcotest.(check int) "breaches counted" (b0 + 1)
    (Registry.Counter.value breach_counter);
  Alcotest.(check (list (of_pp Fmt.nop))) "breaches filter" [ bad ]
    (Slo.breaches [ ok; bad ]);
  Alcotest.(check (list (of_pp Fmt.nop))) "no breaches in empty" []
    (Slo.breaches []);
  (* the typed breach record serializes *)
  match Json.of_string (Json.to_string (Slo.check_to_json bad)) with
  | Ok j ->
    Alcotest.(check (option (float 1e-9))) "observed field" (Some 2.0)
      (Option.bind (Json.member "observed" j) Json.as_float)
  | Error e -> Alcotest.failf "check_to_json unparseable: %s" e

(* --- registry cardinality cap --- *)

let test_registry_series_cap () =
  let r = Registry.create () in
  Alcotest.(check int) "default limit" Registry.default_max_series
    (Registry.series_limit r);
  Registry.set_series_limit r 4;
  let handles =
    List.init 6 (fun i ->
        Registry.Counter.get ~registry:r
          ~labels:[ ("dev", Printf.sprintf "dev-%d" i) ]
          "cap_total")
  in
  List.iter Registry.Counter.inc handles;
  Alcotest.(check int) "family capped" 4 (Registry.series_count r "cap_total");
  let dropped =
    Registry.Counter.get ~registry:r
      ~labels:[ ("metric", "cap_total") ]
      Registry.dropped_series_name
  in
  Alcotest.(check int) "drops counted" 2 (Registry.Counter.value dropped);
  (* over-cap handles stay live, they just are not exported *)
  let overflow = List.nth handles 5 in
  Registry.Counter.inc overflow;
  Alcotest.(check int) "overflow handle live" 2 (Registry.Counter.value overflow);
  let text = Export.render_prometheus r in
  Alcotest.(check bool) "registered series exported" true
    (contains "dev=\"dev-0\"" text);
  Alcotest.(check bool) "dropped series absent" false (contains "dev-5" text);
  Alcotest.(check bool) "drop counter exported" true
    (contains "ra_obs_dropped_series_total{metric=\"cap_total\"} 2" text);
  Alcotest.check_raises "limit >= 1"
    (Invalid_argument "Ra_obs.Registry.set_series_limit: limit must be >= 1")
    (fun () -> Registry.set_series_limit r 0)

(* --- Prometheus label escaping (regression) --- *)

let test_prometheus_label_escaping () =
  let r = Registry.create () in
  let hostile = "a\\b\"c\nd" in
  let c = Registry.Counter.get ~registry:r ~labels:[ ("dev", hostile) ] "esc_total" in
  Registry.Counter.inc c;
  let text = Export.render_prometheus r in
  Alcotest.(check bool) "escaped exactly" true
    (contains "esc_total{dev=\"a\\\\b\\\"c\\nd\"} 1" text);
  (* the raw newline must not survive: every exposition line is complete *)
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if contains "esc_total{" line then
           Alcotest.(check bool) "value on the same line" true (contains "} 1" line));
  (* the JSONL sink must stay parseable for the same hostile value *)
  match Export.parse_jsonl (Export.metrics_jsonl r) with
  | Ok lines -> Alcotest.(check bool) "jsonl parses" true (lines <> [])
  | Error e -> Alcotest.failf "metrics_jsonl unparseable: %s" e

let tests =
  [
    Alcotest.test_case "recorder eviction order" `Quick test_recorder_eviction_order;
    Alcotest.test_case "recorder capacity one" `Quick test_recorder_capacity_one;
    Alcotest.test_case "recorder clear" `Quick test_recorder_clear;
    Alcotest.test_case "recorder invalid capacity" `Quick
      test_recorder_invalid_capacity;
    Alcotest.test_case "tracer event tree" `Quick test_tracer_tree;
    Alcotest.test_case "tracer event budget" `Quick test_tracer_max_events;
    Alcotest.test_case "tracer abandoned round" `Quick test_tracer_abandoned_round;
    Alcotest.test_case "tracer span exception" `Quick
      test_tracer_with_span_exception;
    QCheck_alcotest.to_alcotest prop_round_json_roundtrip;
    Alcotest.test_case "slo exact threshold" `Quick test_slo_exact_threshold;
    Alcotest.test_case "slo evaluate metrics" `Quick test_slo_evaluate_metrics;
    Alcotest.test_case "registry series cap" `Quick test_registry_series_cap;
    Alcotest.test_case "prometheus label escaping" `Quick
      test_prometheus_label_escaping;
  ]
