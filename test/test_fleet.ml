open Ra_core
module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu

let make () = Fleet.create ~ram_size:2048 ~names:[ "a"; "b"; "c" ] ()

let test_creation () =
  let fleet = make () in
  Alcotest.(check int) "three members" 3 (List.length (Fleet.members fleet));
  Alcotest.(check bool) "unknown before sweep" true
    (Fleet.member_health (Fleet.find fleet "a") = Fleet.Unknown);
  Alcotest.check_raises "duplicates rejected"
    (Invalid_argument "Fleet.create: duplicate member name") (fun () ->
      ignore (Fleet.create ~names:[ "x"; "x" ] ()));
  Alcotest.check_raises "empty rejected" (Invalid_argument "Fleet.create: no members")
    (fun () -> ignore (Fleet.create ~names:[] ()))

let test_sweep_all_healthy () =
  let fleet = make () in
  Fleet.advance fleet ~seconds:1.0;
  let results = Fleet.sweep fleet in
  Alcotest.(check int) "all swept" 3 (List.length results);
  List.iter
    (fun (name, verdict) ->
      Alcotest.(check bool) (name ^ " trusted") true (verdict = Some Verdict.Trusted))
    results;
  Alcotest.(check (list string)) "none compromised" [] (Fleet.compromised fleet)

let test_infection_flagged () =
  let fleet = make () in
  Fleet.advance fleet ~seconds:1.0;
  let victim = Fleet.find fleet "b" in
  let device = Session.device (Fleet.member_session victim) in
  Cpu.store_bytes (Device.cpu device) (Device.attested_base device) "IMPLANT";
  let _ = Fleet.sweep fleet in
  Alcotest.(check (list string)) "victim flagged" [ "b" ] (Fleet.compromised fleet);
  Alcotest.(check bool) "others healthy" true
    (Fleet.member_health (Fleet.find fleet "a") = Fleet.Healthy)

let test_health_recovers () =
  let fleet = make () in
  Fleet.advance fleet ~seconds:1.0;
  let victim = Fleet.find fleet "c" in
  let device = Session.device (Fleet.member_session victim) in
  let original =
    Ra_mcu.Memory.read_bytes (Device.memory device) (Device.attested_base device) 7
  in
  Cpu.store_bytes (Device.cpu device) (Device.attested_base device) "IMPLANT";
  let _ = Fleet.sweep_one fleet "c" in
  Alcotest.(check bool) "flagged" true (Fleet.member_health victim = Fleet.Compromised);
  (* remediation restores the image; the next sweep clears the flag *)
  Cpu.store_bytes (Device.cpu device) (Device.attested_base device) original;
  Fleet.advance fleet ~seconds:1.0;
  let _ = Fleet.sweep_one fleet "c" in
  Alcotest.(check bool) "healthy again" true (Fleet.member_health victim = Fleet.Healthy);
  Alcotest.(check int) "two sweeps recorded" 2 (Fleet.sweeps_of victim)

let test_sweeps_are_staggered () =
  let fleet = make () in
  let t0 =
    Ra_net.Simtime.now (Session.time (Fleet.member_session (Fleet.find fleet "a")))
  in
  let _ = Fleet.sweep fleet in
  let t1 =
    Ra_net.Simtime.now (Session.time (Fleet.member_session (Fleet.find fleet "a")))
  in
  (* all members' clocks advanced by the whole sweep's stagger *)
  Alcotest.(check bool) "time advanced across the sweep" true
    (t1 -. t0 >= 3.0 *. Fleet.stagger_seconds -. 1e-6)

let test_summary_shape () =
  let fleet = make () in
  Fleet.advance fleet ~seconds:1.0;
  let _ = Fleet.sweep fleet in
  List.iter
    (fun (name, health, sweeps) ->
      Alcotest.(check bool) (name ^ " healthy") true (health = Fleet.Healthy);
      Alcotest.(check int) (name ^ " one sweep") 1 sweeps)
    (Fleet.summary fleet)

let clocks fleet =
  List.map
    (fun m -> Ra_net.Simtime.now (Session.time (Fleet.member_session m)))
    (Fleet.members fleet)

let test_sweep_par_matches_sweep () =
  (* identical fleets, one swept sequentially and one on domains, must end in
     bit-identical states: verdicts, health summary, and simulated clocks *)
  List.iter
    (fun domains ->
      let seq_fleet = make () and par_fleet = make () in
      Fleet.advance seq_fleet ~seconds:1.0;
      Fleet.advance par_fleet ~seconds:1.0;
      let seq_r = Fleet.sweep seq_fleet in
      let par_r = Fleet.sweep_par ~domains par_fleet in
      Alcotest.(check bool)
        (Printf.sprintf "%d domains: same verdicts in same order" domains)
        true (seq_r = par_r);
      Alcotest.(check bool)
        (Printf.sprintf "%d domains: same summary" domains)
        true
        (Fleet.summary seq_fleet = Fleet.summary par_fleet);
      Alcotest.(check (list (float 0.0)))
        (Printf.sprintf "%d domains: same member clocks" domains)
        (clocks seq_fleet) (clocks par_fleet))
    [ 1; 2; 3; 8 (* more domains than members *) ]

let test_sweep_par_flags_infection () =
  let fleet = make () in
  Fleet.advance fleet ~seconds:1.0;
  let victim = Fleet.find fleet "b" in
  let device = Session.device (Fleet.member_session victim) in
  Cpu.store_bytes (Device.cpu device) (Device.attested_base device) "IMPLANT";
  let results = Fleet.sweep_par ~domains:2 fleet in
  Alcotest.(check (list string)) "victim flagged" [ "b" ] (Fleet.compromised fleet);
  Alcotest.(check bool) "verdict present for all members" true
    (List.for_all (fun (_, v) -> v <> None) results)

let test_sweep_par_repeated () =
  (* repeated parallel sweeps stay deterministic against the sequential run *)
  let seq_fleet = make () and par_fleet = make () in
  Fleet.advance seq_fleet ~seconds:1.0;
  Fleet.advance par_fleet ~seconds:1.0;
  for _ = 1 to 3 do
    let a = Fleet.sweep seq_fleet and b = Fleet.sweep_par ~domains:2 par_fleet in
    Alcotest.(check bool) "sweep round matches" true (a = b)
  done;
  Alcotest.(check (list (float 0.0))) "clocks still in lockstep"
    (clocks seq_fleet) (clocks par_fleet)

let test_spawn_modes_agree () =
  (* the pooled fast path and the legacy spawn-per-sweep path are the
     same algorithm on different domains; states must be bit-identical *)
  let pool_fleet = make () and fresh_fleet = make () in
  let a = Fleet.sweep_par ~domains:3 ~spawn:`Pool pool_fleet in
  let b = Fleet.sweep_par ~domains:3 ~spawn:`Fresh fresh_fleet in
  Alcotest.(check bool) "verdicts identical" true (a = b);
  Alcotest.(check (list (float 0.0)))
    "clocks identical" (clocks pool_fleet) (clocks fresh_fleet);
  Alcotest.(check bool) "summaries identical" true
    (Fleet.summary pool_fleet = Fleet.summary fresh_fleet)

let test_pool_reuse () =
  let pool = Pool.create () in
  let total = Atomic.make 0 in
  for _ = 1 to 5 do
    Pool.run pool ~helpers:2 (fun () -> Atomic.incr total)
  done;
  (* caller + 2 helpers, five batches *)
  Alcotest.(check int) "every participant ran every batch" 15 (Atomic.get total);
  Alcotest.(check int) "helpers spawned once and kept" 2 (Pool.size pool);
  Pool.shutdown pool;
  Alcotest.(check int) "helpers joined" 0 (Pool.size pool);
  (* a pool is reusable after shutdown *)
  Pool.run pool ~helpers:1 (fun () -> Atomic.incr total);
  Alcotest.(check int) "post-shutdown batch ran" 17 (Atomic.get total);
  Pool.shutdown pool

let test_pool_propagates_exception () =
  let pool = Pool.create () in
  let boom = Failure "boom" in
  Alcotest.check_raises "worker exception re-raised on caller" boom (fun () ->
      Pool.run pool ~helpers:2 (fun () -> raise boom));
  (* the failed batch must not wedge the pool *)
  let ok = Atomic.make 0 in
  Pool.run pool ~helpers:2 (fun () -> Atomic.incr ok);
  Alcotest.(check int) "pool usable after a failed batch" 3 (Atomic.get ok);
  Pool.shutdown pool

let test_stream_matches_materialised () =
  (* the streaming sweep must reproduce a materialised fleet's
     fingerprint: same specs, same names, same staggered operations *)
  let members = 5 in
  let names = List.init members (fun i -> Printf.sprintf "dev-%07d" i) in
  let fleet = Fleet.create ~ram_size:2048 ~names () in
  let (_ : (string * Verdict.t option) list) = Fleet.sweep fleet in
  let report = Fleet.stream_sweep ~ram_size:2048 ~members () in
  Alcotest.(check string)
    "stream fingerprint = materialised fingerprint" (Fleet.fingerprint fleet)
    report.Fleet.st_fingerprint;
  Alcotest.(check int) "all healthy" members report.Fleet.st_healthy

let test_stream_shard_invariant () =
  let oracle = Fleet.stream_sweep ~ram_size:2048 ~members:7 () in
  List.iter
    (fun shards ->
      let r = Fleet.stream_sweep ~ram_size:2048 ~shards ~members:7 () in
      Alcotest.(check string)
        (Printf.sprintf "fingerprint invariant at %d shards" shards)
        oracle.Fleet.st_fingerprint r.Fleet.st_fingerprint;
      Alcotest.(check int)
        (Printf.sprintf "healthy tally invariant at %d shards" shards)
        oracle.Fleet.st_healthy r.Fleet.st_healthy)
    [ 2; 3; 4 ]

let tests =
  [
    Alcotest.test_case "creation" `Quick test_creation;
    Alcotest.test_case "sweep all healthy" `Quick test_sweep_all_healthy;
    Alcotest.test_case "infection flagged" `Quick test_infection_flagged;
    Alcotest.test_case "health recovers after remediation" `Quick test_health_recovers;
    Alcotest.test_case "sweeps staggered" `Quick test_sweeps_are_staggered;
    Alcotest.test_case "summary" `Quick test_summary_shape;
    Alcotest.test_case "sweep_par = sweep" `Quick test_sweep_par_matches_sweep;
    Alcotest.test_case "sweep_par flags infection" `Quick test_sweep_par_flags_infection;
    Alcotest.test_case "sweep_par repeated determinism" `Quick test_sweep_par_repeated;
    Alcotest.test_case "spawn modes agree" `Quick test_spawn_modes_agree;
    Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "pool propagates exceptions" `Quick test_pool_propagates_exception;
    Alcotest.test_case "stream = materialised fingerprint" `Quick
      test_stream_matches_materialised;
    Alcotest.test_case "stream shard-count invariant" `Quick test_stream_shard_invariant;
  ]
