open Ra_core
module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu

let make () = Fleet.create ~ram_size:2048 ~names:[ "a"; "b"; "c" ] ()

let test_creation () =
  let fleet = make () in
  Alcotest.(check int) "three members" 3 (List.length (Fleet.members fleet));
  Alcotest.(check bool) "unknown before sweep" true
    (Fleet.member_health (Fleet.find fleet "a") = Fleet.Unknown);
  Alcotest.check_raises "duplicates rejected"
    (Invalid_argument "Fleet.create: duplicate member name") (fun () ->
      ignore (Fleet.create ~names:[ "x"; "x" ] ()));
  Alcotest.check_raises "empty rejected" (Invalid_argument "Fleet.create: no members")
    (fun () -> ignore (Fleet.create ~names:[] ()))

let test_sweep_all_healthy () =
  let fleet = make () in
  Fleet.advance fleet ~seconds:1.0;
  let results = Fleet.sweep fleet in
  Alcotest.(check int) "all swept" 3 (List.length results);
  List.iter
    (fun (name, verdict) ->
      Alcotest.(check bool) (name ^ " trusted") true (verdict = Some Verifier.Trusted))
    results;
  Alcotest.(check (list string)) "none compromised" [] (Fleet.compromised fleet)

let test_infection_flagged () =
  let fleet = make () in
  Fleet.advance fleet ~seconds:1.0;
  let victim = Fleet.find fleet "b" in
  let device = Session.device (Fleet.member_session victim) in
  Cpu.store_bytes (Device.cpu device) (Device.attested_base device) "IMPLANT";
  let _ = Fleet.sweep fleet in
  Alcotest.(check (list string)) "victim flagged" [ "b" ] (Fleet.compromised fleet);
  Alcotest.(check bool) "others healthy" true
    (Fleet.member_health (Fleet.find fleet "a") = Fleet.Healthy)

let test_health_recovers () =
  let fleet = make () in
  Fleet.advance fleet ~seconds:1.0;
  let victim = Fleet.find fleet "c" in
  let device = Session.device (Fleet.member_session victim) in
  let original =
    Ra_mcu.Memory.read_bytes (Device.memory device) (Device.attested_base device) 7
  in
  Cpu.store_bytes (Device.cpu device) (Device.attested_base device) "IMPLANT";
  let _ = Fleet.sweep_one fleet "c" in
  Alcotest.(check bool) "flagged" true (Fleet.member_health victim = Fleet.Compromised);
  (* remediation restores the image; the next sweep clears the flag *)
  Cpu.store_bytes (Device.cpu device) (Device.attested_base device) original;
  Fleet.advance fleet ~seconds:1.0;
  let _ = Fleet.sweep_one fleet "c" in
  Alcotest.(check bool) "healthy again" true (Fleet.member_health victim = Fleet.Healthy);
  Alcotest.(check int) "two sweeps recorded" 2 (Fleet.sweeps_of victim)

let test_sweeps_are_staggered () =
  let fleet = make () in
  let t0 =
    Ra_net.Simtime.now (Session.time (Fleet.member_session (Fleet.find fleet "a")))
  in
  let _ = Fleet.sweep fleet in
  let t1 =
    Ra_net.Simtime.now (Session.time (Fleet.member_session (Fleet.find fleet "a")))
  in
  (* all members' clocks advanced by the whole sweep's stagger *)
  Alcotest.(check bool) "time advanced across the sweep" true
    (t1 -. t0 >= 3.0 *. Fleet.stagger_seconds -. 1e-6)

let test_summary_shape () =
  let fleet = make () in
  Fleet.advance fleet ~seconds:1.0;
  let _ = Fleet.sweep fleet in
  List.iter
    (fun (name, health, sweeps) ->
      Alcotest.(check bool) (name ^ " healthy") true (health = Fleet.Healthy);
      Alcotest.(check int) (name ^ " one sweep") 1 sweeps)
    (Fleet.summary fleet)

let clocks fleet =
  List.map
    (fun m -> Ra_net.Simtime.now (Session.time (Fleet.member_session m)))
    (Fleet.members fleet)

let test_sweep_par_matches_sweep () =
  (* identical fleets, one swept sequentially and one on domains, must end in
     bit-identical states: verdicts, health summary, and simulated clocks *)
  List.iter
    (fun domains ->
      let seq_fleet = make () and par_fleet = make () in
      Fleet.advance seq_fleet ~seconds:1.0;
      Fleet.advance par_fleet ~seconds:1.0;
      let seq_r = Fleet.sweep seq_fleet in
      let par_r = Fleet.sweep_par ~domains par_fleet in
      Alcotest.(check bool)
        (Printf.sprintf "%d domains: same verdicts in same order" domains)
        true (seq_r = par_r);
      Alcotest.(check bool)
        (Printf.sprintf "%d domains: same summary" domains)
        true
        (Fleet.summary seq_fleet = Fleet.summary par_fleet);
      Alcotest.(check (list (float 0.0)))
        (Printf.sprintf "%d domains: same member clocks" domains)
        (clocks seq_fleet) (clocks par_fleet))
    [ 1; 2; 3; 8 (* more domains than members *) ]

let test_sweep_par_flags_infection () =
  let fleet = make () in
  Fleet.advance fleet ~seconds:1.0;
  let victim = Fleet.find fleet "b" in
  let device = Session.device (Fleet.member_session victim) in
  Cpu.store_bytes (Device.cpu device) (Device.attested_base device) "IMPLANT";
  let results = Fleet.sweep_par ~domains:2 fleet in
  Alcotest.(check (list string)) "victim flagged" [ "b" ] (Fleet.compromised fleet);
  Alcotest.(check bool) "verdict present for all members" true
    (List.for_all (fun (_, v) -> v <> None) results)

let test_sweep_par_repeated () =
  (* repeated parallel sweeps stay deterministic against the sequential run *)
  let seq_fleet = make () and par_fleet = make () in
  Fleet.advance seq_fleet ~seconds:1.0;
  Fleet.advance par_fleet ~seconds:1.0;
  for _ = 1 to 3 do
    let a = Fleet.sweep seq_fleet and b = Fleet.sweep_par ~domains:2 par_fleet in
    Alcotest.(check bool) "sweep round matches" true (a = b)
  done;
  Alcotest.(check (list (float 0.0))) "clocks still in lockstep"
    (clocks seq_fleet) (clocks par_fleet)

let tests =
  [
    Alcotest.test_case "creation" `Quick test_creation;
    Alcotest.test_case "sweep all healthy" `Quick test_sweep_all_healthy;
    Alcotest.test_case "infection flagged" `Quick test_infection_flagged;
    Alcotest.test_case "health recovers after remediation" `Quick test_health_recovers;
    Alcotest.test_case "sweeps staggered" `Quick test_sweeps_are_staggered;
    Alcotest.test_case "summary" `Quick test_summary_shape;
    Alcotest.test_case "sweep_par = sweep" `Quick test_sweep_par_matches_sweep;
    Alcotest.test_case "sweep_par flags infection" `Quick test_sweep_par_flags_infection;
    Alcotest.test_case "sweep_par repeated determinism" `Quick test_sweep_par_repeated;
  ]
