open Ra_core
module Device = Ra_mcu.Device
module Memory = Ra_mcu.Memory
module Timing = Ra_mcu.Timing

let sym_key = String.make 20 's'
let blob = Auth.prover_key_blob ~sym_key ~public:None

let make ?(scheme = Some Timing.Auth_hmac_sha1) () =
  let device = Device.create ~ram_size:1024 ~key:blob () in
  let svc = Service.install device ~scheme ~policy:Freshness.Counter in
  (device, svc)

let req ?(key = sym_key) ~scheme ~counter command =
  Service.make_request ~sym_key:key ~scheme ~freshness:(Message.F_counter counter) command

let test_ping () =
  let _, svc = make () in
  (match Service.handle_r svc (req ~scheme:(Some Timing.Auth_hmac_sha1) ~counter:1L Service.Ping) with
  | Ok ack -> Alcotest.(check string) "echo" "ping" ack.Service.acked_command
  | Error e -> Alcotest.failf "ping rejected: %a" Verdict.pp e)

let test_secure_erase_wipes_ram () =
  let device, svc = make () in
  Device.fill_ram_deterministic device ~seed:1L;
  (match Service.handle_r svc (req ~scheme:(Some Timing.Auth_hmac_sha1) ~counter:1L Service.Secure_erase) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "erase rejected: %a" Verdict.pp e);
  let image = Memory.read_bytes (Device.memory device) (Device.attested_base device) 1024 in
  Alcotest.(check string) "zeroed" (String.make 1024 '\x00') image

let test_code_update_installs () =
  let device, svc = make () in
  let image = "new firmware v2" in
  (match
     Service.handle_r svc
       (req ~scheme:(Some Timing.Auth_hmac_sha1) ~counter:1L (Service.Code_update { image }))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "update rejected: %a" Verdict.pp e);
  let region = Memory.region_named (Device.memory device) Device.region_app in
  Alcotest.(check string) "installed" image
    (Memory.read_bytes (Device.memory device) region.Ra_mcu.Region.base
       (String.length image))

let test_bad_auth_rejected () =
  let _, svc = make () in
  let forged = req ~key:(String.make 20 'x') ~scheme:(Some Timing.Auth_hmac_sha1) ~counter:1L Service.Secure_erase in
  (match Service.handle_r svc forged with
  | Error Verdict.Bad_auth -> ()
  | Ok _ -> Alcotest.fail "forged erase accepted!"
  | Error e -> Alcotest.failf "wrong reject: %a" Verdict.pp e);
  Alcotest.(check int) "counted" 1 (Service.rejected (Service.stats svc) Verdict.Reason.Bad_auth);
  Alcotest.(check int) "total" 1 (Service.rejections (Service.stats svc))

let test_replay_rejected () =
  let _, svc = make () in
  let r = req ~scheme:(Some Timing.Auth_hmac_sha1) ~counter:3L Service.Ping in
  (match Service.handle_r svc r with Ok _ -> () | Error _ -> Alcotest.fail "first");
  (match Service.handle_r svc r with
  | Error (Verdict.Not_fresh _) -> ()
  | Ok _ -> Alcotest.fail "replayed command accepted!"
  | Error e -> Alcotest.failf "wrong reject: %a" Verdict.pp e)

let test_tag_binds_command () =
  (* a tag minted for Ping must not authorize Secure_erase *)
  let _, svc = make () in
  let ping = req ~scheme:(Some Timing.Auth_hmac_sha1) ~counter:1L Service.Ping in
  let transplanted = { ping with Service.command = Service.Secure_erase } in
  (match Service.handle_r svc transplanted with
  | Error Verdict.Bad_auth -> ()
  | Ok _ -> Alcotest.fail "transplanted tag accepted!"
  | Error e -> Alcotest.failf "wrong reject: %a" Verdict.pp e)

let test_service_counter_independent_of_attestation () =
  let device, svc = make () in
  let anchor =
    Code_attest.install device ~scheme:(Some Timing.Auth_hmac_sha1)
      ~policy:Freshness.Counter ()
  in
  (* consume attestation counter 5 *)
  let body_freshness = Message.F_counter 5L in
  let challenge = "c" in
  let tag =
    Auth.tag_request Timing.Auth_hmac_sha1 (Auth.Vs_symmetric sym_key)
      ~body:(Message.request_body ~challenge ~freshness:body_freshness)
  in
  (match Code_attest.handle_request_r anchor { Message.challenge; freshness = body_freshness; tag } with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "attestation failed: %a" Verdict.pp e);
  (* the service still accepts counter 1: separate cells *)
  (match Service.handle_r svc (req ~scheme:(Some Timing.Auth_hmac_sha1) ~counter:1L Service.Ping) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "service cell not isolated: %a" Verdict.pp e)

let test_unauthenticated_service_is_dosable () =
  let device, svc = make ~scheme:None () in
  let before = Ra_mcu.Cpu.work_cycles (Device.cpu device) in
  (match Service.handle_r svc { Service.command = Service.Secure_erase; freshness = Message.F_counter 1L; tag = Message.Tag_none } with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected reject: %a" Verdict.pp e);
  let spent = Int64.sub (Ra_mcu.Cpu.work_cycles (Device.cpu device)) before in
  (* the expensive body ran on a completely unauthenticated request *)
  Alcotest.(check bool) "erase cost incurred" true (Int64.compare spent 2000L > 0)

let tests =
  [
    Alcotest.test_case "ping" `Quick test_ping;
    Alcotest.test_case "secure erase" `Quick test_secure_erase_wipes_ram;
    Alcotest.test_case "code update" `Quick test_code_update_installs;
    Alcotest.test_case "bad auth rejected" `Quick test_bad_auth_rejected;
    Alcotest.test_case "replay rejected" `Quick test_replay_rejected;
    Alcotest.test_case "tag binds command" `Quick test_tag_binds_command;
    Alcotest.test_case "counter cells isolated" `Quick
      test_service_counter_independent_of_attestation;
    Alcotest.test_case "unauthenticated service DoSable" `Quick
      test_unauthenticated_service_is_dosable;
  ]
